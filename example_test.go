package parbox_test

import (
	"context"
	"fmt"

	parbox "repro"
)

// The quick-start flow: fragment, deploy, evaluate.
func ExampleDeploy() {
	doc, _ := parbox.ParseXMLString(`<a><b/><c>hi</c></a>`)
	forest := parbox.NewForest(doc)
	forest.Split(doc.Children[0]) // <b/> becomes fragment 1
	sys, _ := parbox.Deploy(forest, parbox.Assignment{0: "S0", 1: "S1"})

	q, _ := parbox.ParseQuery(`//b && //c[text() = "hi"]`)
	ok, _ := sys.Evaluate(context.Background(), q)
	fmt.Println(ok)
	// Output: true
}

// Queries compile to the paper's QList; its size is the |q| of all cost
// bounds.
func ExampleParseQuery() {
	q, _ := parbox.ParseQuery(`//stock[code/text() = "YHOO"]`)
	fmt.Println(q.QListSize())
	// Output: 10
}

// A materialized Boolean XPath view maintained incrementally: only the
// updated fragment's site is contacted.
func ExampleSystem_Materialize() {
	doc, _ := parbox.ParseXMLString(`<portfolio><stock><code>GOOG</code><sell>373</sell></stock></portfolio>`)
	forest := parbox.NewForest(doc)
	forest.Split(doc.Children[0]) // the stock subtree → fragment 1
	sys, _ := parbox.Deploy(forest, parbox.Assignment{0: "desktop", 1: "nasdaq"})

	ctx := context.Background()
	view, _ := sys.Materialize(ctx, parbox.MustQuery(`//stock[sell = "376"]`))
	fmt.Println(view.Answer())

	// The price ticks at the nasdaq site: stock/sell is child 1.
	view.Update(ctx, 1, []parbox.UpdateOp{{Op: parbox.OpSetText, Path: []int{1}, Text: "376"}})
	fmt.Println(view.Answer())
	// Output:
	// false
	// true
}

// Data selection (Section 8): locate matching nodes without moving data.
func ExampleSystem_Select() {
	doc, _ := parbox.ParseXMLString(`<lib><book><t>A</t></book><book><t>B</t></book></lib>`)
	forest := parbox.NewForest(doc)
	forest.Split(doc.Children[1])
	sys, _ := parbox.Deploy(forest, parbox.Assignment{0: "S0", 1: "S1"})

	res, _ := sys.Select(context.Background(), `//book[t = "B"]`)
	fmt.Println(res.Count)
	// Output: 1
}

// COUNT aggregation ships a single integer per fragment.
func ExampleSystem_Count() {
	doc, _ := parbox.ParseXMLString(`<lib><book/><book/><book/></lib>`)
	forest := parbox.NewForest(doc)
	forest.Split(doc.Children[2])
	sys, _ := parbox.Deploy(forest, parbox.Assignment{0: "S0", 1: "S1"})

	res, _ := sys.Count(context.Background(), `//book`)
	fmt.Println(res.Count)
	// Output: 3
}

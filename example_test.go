package parbox_test

import (
	"context"
	"fmt"

	parbox "repro"
)

// The quick-start flow: fragment, deploy, prepare once, execute.
func ExampleSystem_Exec() {
	doc, _ := parbox.ParseXMLString(`<a><b/><c>hi</c></a>`)
	forest := parbox.NewForest(doc)
	forest.Split(doc.Children[0]) // <b/> becomes fragment 1
	sys, _ := parbox.Deploy(forest, parbox.Assignment{0: "S0", 1: "S1"})

	q, _ := parbox.Prepare(`//b && //c[text() = "hi"]`)
	res, _ := sys.Exec(context.Background(), q)
	fmt.Println(res.Answer)
	// Output: true
}

// Functional options select the algorithm; the prepared query is compiled
// once and shared by every call.
func ExampleWithAlgorithm() {
	doc, _ := parbox.ParseXMLString(`<a><b/><c>hi</c></a>`)
	forest := parbox.NewForest(doc)
	forest.Split(doc.Children[0])
	sys, _ := parbox.Deploy(forest, parbox.Assignment{0: "S0", 1: "S1"})

	q, _ := parbox.Prepare(`//b`)
	for _, algo := range []parbox.Algorithm{parbox.AlgoParBoX, parbox.AlgoFullDist} {
		res, _ := sys.Exec(context.Background(), q, parbox.WithAlgorithm(algo))
		fmt.Printf("%s: %v\n", res.Algorithm, res.Answer)
	}
	// Output:
	// parbox: true
	// fulldist: true
}

// Queries compile to the paper's QList; its size is the |q| of all cost
// bounds.
func ExamplePrepare() {
	q, _ := parbox.Prepare(`//stock[code/text() = "YHOO"]`)
	fmt.Println(q.QListSize())
	// Output: 10
}

// A materialized Boolean XPath view maintained incrementally: only the
// updated fragment's site is contacted.
func ExampleModeMaterialize() {
	doc, _ := parbox.ParseXMLString(`<portfolio><stock><code>GOOG</code><sell>373</sell></stock></portfolio>`)
	forest := parbox.NewForest(doc)
	forest.Split(doc.Children[0]) // the stock subtree → fragment 1
	sys, _ := parbox.Deploy(forest, parbox.Assignment{0: "desktop", 1: "nasdaq"})

	ctx := context.Background()
	res, _ := sys.Exec(ctx, parbox.MustPrepare(`//stock[sell = "376"]`), parbox.WithMode(parbox.ModeMaterialize))
	view := res.View
	fmt.Println(view.Answer())

	// The price ticks at the nasdaq site: stock/sell is child 1.
	view.Update(ctx, 1, []parbox.UpdateOp{{Op: parbox.OpSetText, Path: []int{1}, Text: "376"}})
	fmt.Println(view.Answer())
	// Output:
	// false
	// true
}

// Data selection (Section 8): locate matching nodes without moving data.
func ExampleModeSelect() {
	doc, _ := parbox.ParseXMLString(`<lib><book><t>A</t></book><book><t>B</t></book></lib>`)
	forest := parbox.NewForest(doc)
	forest.Split(doc.Children[1])
	sys, _ := parbox.Deploy(forest, parbox.Assignment{0: "S0", 1: "S1"})

	q, _ := parbox.Prepare(`//book[t = "B"]`)
	res, _ := sys.Exec(context.Background(), q, parbox.WithMode(parbox.ModeSelect))
	fmt.Println(res.Matched)
	// Output: 1
}

// COUNT aggregation ships a single integer per fragment.
func ExampleModeCount() {
	doc, _ := parbox.ParseXMLString(`<lib><book/><book/><book/></lib>`)
	forest := parbox.NewForest(doc)
	forest.Split(doc.Children[2])
	sys, _ := parbox.Deploy(forest, parbox.Assignment{0: "S0", 1: "S1"})

	q, _ := parbox.Prepare(`//book`)
	res, _ := sys.Exec(context.Background(), q, parbox.WithMode(parbox.ModeCount))
	fmt.Println(res.Matched)
	// Output: 3
}

// A whole subscription set is answered in one ParBoX round: one shared
// QList, one visit per site, one solve.
func ExampleWithBatch() {
	doc, _ := parbox.ParseXMLString(`<lib><book><t>A</t></book><book><t>B</t></book></lib>`)
	forest := parbox.NewForest(doc)
	forest.Split(doc.Children[1])
	sys, _ := parbox.Deploy(forest, parbox.Assignment{0: "S0", 1: "S1"})

	a, _ := parbox.Prepare(`//book[t = "A"]`)
	b, _ := parbox.Prepare(`//book[t = "B"]`)
	c, _ := parbox.Prepare(`//book[t = "C"]`)
	res, _ := sys.Exec(context.Background(), a, parbox.WithBatch(b, c))
	fmt.Println(res.Answers)
	// Output: [true true false]
}

package parbox

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestCostModelOption(t *testing.T) {
	doc := NewElement("r", "", NewElement("a", ""))
	forest := NewForest(doc)
	if _, err := forest.Split(doc.Children[0]); err != nil {
		t.Fatal(err)
	}
	slow := CostModel{
		Latency:        5 * time.Millisecond,
		BytesPerSecond: 1e3,
		StepsPerSecond: 1e3,
	}
	sys, err := Deploy(forest, Assignment{0: "S0", 1: "S1"}, WithCostModel(slow))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Exec(context.Background(), MustPrepare(`//a`))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer {
		t.Error("expected true")
	}
	// At 1 kB/s and 5 ms latency even the tiny exchange models ≥ 10 ms.
	if res.SimTime < 10*time.Millisecond {
		t.Errorf("custom cost model ignored: SimTime = %v", res.SimTime)
	}
	d := DefaultCostModel()
	if d.StepsPerSecond <= 0 || d.BytesPerSecond <= 0 {
		t.Error("default cost model not populated")
	}
}

func TestWriteXMLAndPathOf(t *testing.T) {
	doc, err := ParseXMLString(`<a><b><c>x</c></b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteXML(&sb, doc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<c>x</c>") {
		t.Errorf("WriteXML output: %q", sb.String())
	}
	c := doc.FindFirst("c")
	p := PathOf(c)
	if len(p) != 2 || p[0] != 0 || p[1] != 0 {
		t.Errorf("PathOf(c) = %v", p)
	}
}

func TestBuildSourceTreeFacade(t *testing.T) {
	doc := NewElement("r", "", NewElement("a", ""))
	forest := NewForest(doc)
	if _, err := forest.Split(doc.Children[0]); err != nil {
		t.Fatal(err)
	}
	st, err := BuildSourceTree(forest, Assignment{0: "X", 1: "Y"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Count() != 2 {
		t.Errorf("count = %d", st.Count())
	}
	if _, err := BuildSourceTree(forest, Assignment{0: "X"}); err == nil {
		t.Error("partial assignment accepted")
	}
}

func TestAddSiteEnablesSplitTarget(t *testing.T) {
	sys, _ := deployPortfolio(t)
	ctx := context.Background()
	view, err := sys.Materialize(ctx, MustQuery(`//stock`))
	if err != nil {
		t.Fatal(err)
	}
	sys.AddSite("fresh")
	// F0's first market subtree is at path [1 1] (broker Bache, market).
	newID, _, err := view.Split(ctx, 0, []int{1, 1}, "fresh")
	if err != nil {
		t.Fatal(err)
	}
	e, ok := view.v.SourceTree().Entry(newID)
	if !ok || e.Site != "fresh" {
		t.Errorf("split target entry = %+v, %v", e, ok)
	}
	if !view.Answer() {
		t.Error("answer changed")
	}
}

func TestSelectAndCountFacadeErrors(t *testing.T) {
	sys, _ := deployPortfolio(t)
	ctx := context.Background()
	if _, err := sys.Select(ctx, `//a && //b`); err == nil {
		t.Error("boolean query accepted as selection")
	}
	if _, err := sys.Count(ctx, `bad[`); err == nil {
		t.Error("bad query accepted by Count")
	}
}

func TestExecTimeoutOption(t *testing.T) {
	sys, _ := deployPortfolio(t)
	// An already-expired timeout must cancel the run before any site call,
	// including the zero/negative durations a budget-computing caller
	// produces past its deadline.
	for _, d := range []time.Duration{time.Nanosecond, 0, -time.Second} {
		if _, err := sys.Exec(context.Background(), MustPrepare(`//stock`), WithTimeout(d)); err == nil {
			t.Errorf("expired timeout %v did not fail the call", d)
		}
	}
	// A generous timeout must not interfere.
	res, err := sys.Exec(context.Background(), MustPrepare(`//stock`), WithTimeout(time.Minute))
	if err != nil || !res.Answer {
		t.Errorf("Exec with timeout = %+v, %v", res, err)
	}
}

func TestExecTraceOption(t *testing.T) {
	sys, _ := deployPortfolio(t)
	var sb strings.Builder
	res, err := sys.Exec(context.Background(), MustPrepare(`//stock`), WithTrace(&sb))
	if err != nil || !res.Answer {
		t.Fatalf("Exec with trace = %+v, %v", res, err)
	}
	out := sb.String()
	if !strings.Contains(out, "parbox.evalQual") || !strings.Contains(out, "S1") {
		t.Errorf("trace missing expected calls:\n%s", out)
	}
	// The trace is per-call: an untraced Exec must not extend it.
	if _, err := sys.Exec(context.Background(), MustPrepare(`//stock`)); err != nil {
		t.Fatal(err)
	}
	if sb.String() != out {
		t.Error("untraced Exec appended to an earlier call's trace")
	}
}

func TestExecTraceReleasesView(t *testing.T) {
	sys, _ := deployPortfolio(t)
	ctx := context.Background()
	var sb strings.Builder
	res, err := sys.Exec(ctx, MustPrepare(`//stock[sell = "376"]`),
		WithMode(ModeMaterialize), WithTrace(&sb))
	if err != nil {
		t.Fatal(err)
	}
	traced := sb.String()
	if traced == "" {
		t.Error("materialize run produced no trace")
	}
	// The view outlives the run on the durable transport: maintenance
	// must not extend the finished run's trace.
	if _, err := res.View.Update(ctx, 3, []UpdateOp{{Op: OpSetText, Path: []int{1, 2}, Text: "376"}}); err != nil {
		t.Fatal(err)
	}
	if sb.String() != traced {
		t.Error("view maintenance appended to the materialize run's trace")
	}
	if !res.View.Answer() {
		t.Error("view did not maintain after the transport handoff")
	}
}

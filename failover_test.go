package parbox

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/xmark"
)

// failoverForest builds the standard 4-fragment star document; built twice
// with the same seed it yields identical trees, so one deployment can serve
// as the never-faulted reference for another.
func failoverForest(t *testing.T) (*Forest, Assignment) {
	t.Helper()
	root, sites, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       23,
		Parents:    xmark.StarParents(4),
		MBs:        []float64{0.2, 0.4, 0.3, 0.3},
		NodesPerMB: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := xmark.Fragment(root, sites)
	if err != nil {
		t.Fatal(err)
	}
	assign := Assignment{}
	for i := range sites {
		assign[FragmentID(i)] = SiteID(fmt.Sprintf("S%d", i))
	}
	return forest, assign
}

// deployFaulty deploys a 2x-replicated failover system whose transport
// runs through a FaultyTransport, returning both. The background prober
// is disabled so health transitions happen only on scripted CheckHealth
// calls and passive query signals — fully deterministic.
func deployFaulty(t *testing.T, opts ...Option) (*System, *cluster.FaultyTransport) {
	t.Helper()
	forest, assign := failoverForest(t)
	var ft *cluster.FaultyTransport
	all := append([]Option{
		WithReplication(2),
		WithFailover(),
		withServeOptions(serve.Options{ProbeInterval: -1, DownAfter: 2}),
		withTransportWrapper(func(tr cluster.Transport) cluster.Transport {
			ft = &cluster.FaultyTransport{Inner: tr}
			return ft
		}),
	}, opts...)
	sys, err := Deploy(forest, assign, all...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys, ft
}

var failoverQueries = []string{
	`//item[quantity]`,
	`//item[quantity] && //name`,
	`//keyword || //emph`,
	`//listitem`,
}

// referenceAnswers computes every query's answer on an identical but
// never-faulted, never-replicated deployment.
func referenceAnswers(t *testing.T) map[string]bool {
	t.Helper()
	forest, assign := failoverForest(t)
	ref, err := Deploy(forest, assign)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })
	ctx := context.Background()
	out := make(map[string]bool, len(failoverQueries))
	for _, src := range failoverQueries {
		ans, err := ref.Evaluate(ctx, MustQuery(src))
		if err != nil {
			t.Fatal(err)
		}
		out[src] = ans
	}
	return out
}

// pickVictim returns a replica site that is not the coordinator (the
// coordinator's calls to itself are local and cannot be failed by the
// transport wrapper).
func pickVictim(t *testing.T, sys *System) SiteID {
	t.Helper()
	for _, sites := range sys.Replicas() {
		for _, s := range sites {
			if s != sys.Coordinator() {
				return s
			}
		}
	}
	t.Fatal("no non-coordinator replica site")
	return ""
}

// TestFailoverSingleSiteKill is the deterministic half of the
// differential test: kill one replica site and verify every algorithm
// still produces exactly the reference answers, with the recovery visible
// in Result.Failovers and the tier's health snapshot. The site dies
// before the first query, while every health score is still virgin: the
// first round is guaranteed to plan onto it, so the recovery must happen
// in flight.
func TestFailoverSingleSiteKill(t *testing.T) {
	ref := referenceAnswers(t)
	sys, ft := deployFaulty(t)
	ctx := context.Background()
	victim := pickVictim(t, sys)

	ft.SiteDown(victim)
	res, err := sys.Exec(ctx, MustQuery(failoverQueries[0]))
	if err != nil {
		t.Fatalf("query with %s down: %v", victim, err)
	}
	if res.Answer != ref[failoverQueries[0]] {
		t.Fatalf("failover answer %v, reference %v", res.Answer, ref[failoverQueries[0]])
	}
	if res.Failovers == 0 {
		t.Fatal("expected in-flight failovers with the planned site down")
	}
	if st := sys.ServeStats(); st.Reassigns == 0 {
		t.Fatal("serving tier recorded no reassignments")
	}

	// Probe sweeps take the victim the rest of the way to Down
	// (DownAfter=2; the in-flight failure above already counted once)...
	sys.CheckHealth(ctx)
	sys.CheckHealth(ctx)
	if got := sys.Health()[victim].State; got != SiteDown {
		t.Fatalf("victim state = %v, want down", got)
	}
	// ...after which every algorithm routes around it: correct answers,
	// and no victim visits for the default algorithm.
	for _, src := range failoverQueries {
		for _, algo := range Algorithms() {
			res, err := sys.Exec(ctx, MustQuery(src), WithAlgorithm(algo))
			if err != nil {
				t.Fatalf("%v %s with %s down: %v", algo, src, victim, err)
			}
			if res.Answer != ref[src] {
				t.Fatalf("%v: %s = %v, reference %v", algo, src, res.Answer, ref[src])
			}
		}
		res, err := sys.Exec(ctx, MustQuery(src))
		if err != nil {
			t.Fatal(err)
		}
		if res.Visits[victim] != 0 {
			t.Fatalf("down victim %s still visited %d times", victim, res.Visits[victim])
		}
	}
	// Select and count survive too (facade-level round retry).
	cnt, err := sys.Exec(ctx, MustQuery(`//item`), WithMode(ModeCount))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := sys.Exec(ctx, MustQuery(`//item`), WithMode(ModeSelect))
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Matched != sel.Matched {
		t.Fatalf("count %d != select %d with a site down", cnt.Matched, sel.Matched)
	}

	// Revive: successful probes promote Down -> Suspect -> Up, and
	// serving returns to normal — exact answers, zero recoveries.
	ft.ReviveSite(victim)
	sys.CheckHealth(ctx)
	sys.CheckHealth(ctx)
	if got := sys.Health()[victim].State; got != SiteUp {
		t.Fatalf("revived victim state = %v, want up", got)
	}
	for _, src := range failoverQueries {
		res, err := sys.Exec(ctx, MustQuery(src))
		if err != nil {
			t.Fatal(err)
		}
		if res.Answer != ref[src] {
			t.Fatalf("post-revive: %s = %v, reference %v", src, res.Answer, ref[src])
		}
		if res.Failovers != 0 {
			t.Fatalf("post-revive: %s reported %d failovers on a healthy cluster", src, res.Failovers)
		}
	}
}

// TestFailoverFragmentUnavailable pins the loud-degradation contract:
// when every replica of a fragment is dead the query fails with
// ErrFragmentUnavailable — never a silently partial answer.
func TestFailoverFragmentUnavailable(t *testing.T) {
	sys, ft := deployFaulty(t)
	ctx := context.Background()

	// Kill every replica of some fragment served away from the
	// coordinator (the coordinator's own calls cannot be failed).
	var doomed []SiteID
	for _, sites := range sys.Replicas() {
		coordHeld := false
		for _, s := range sites {
			if s == sys.Coordinator() {
				coordHeld = true
			}
		}
		if !coordHeld {
			doomed = sites
			break
		}
	}
	if doomed == nil {
		t.Skip("every fragment has a coordinator-local replica")
	}
	for _, s := range doomed {
		ft.SiteDown(s)
	}

	// In-flight path: health still says Up, so the round plans onto the
	// dead sites, exhausts both replicas and fails loudly.
	_, err := sys.Exec(ctx, MustQuery(failoverQueries[0]))
	if !errors.Is(err, ErrFragmentUnavailable) {
		t.Fatalf("in-flight exhaustion: err = %v, want ErrFragmentUnavailable", err)
	}

	// Planning path: once probes mark the sites Down, the round refuses
	// to plan at all — same typed error.
	sys.CheckHealth(ctx)
	sys.CheckHealth(ctx)
	_, err = sys.Exec(ctx, MustQuery(failoverQueries[0]))
	if !errors.Is(err, ErrFragmentUnavailable) {
		t.Fatalf("planning: err = %v, want ErrFragmentUnavailable", err)
	}

	// Revival restores exact service.
	for _, s := range doomed {
		ft.ReviveSite(s)
	}
	sys.CheckHealth(ctx)
	sys.CheckHealth(ctx)
	if _, err := sys.Exec(ctx, MustQuery(failoverQueries[0])); err != nil {
		t.Fatalf("post-revive: %v", err)
	}
}

// TestFailoverConcurrentKillRevive is the concurrent half of the
// differential test (run under -race): workers stream queries over every
// algorithm while a fault script kills and revives a site mid-stream.
// Every answer must match the never-faulted reference; with a replica
// surviving throughout, no query may fail.
func TestFailoverConcurrentKillRevive(t *testing.T) {
	ref := referenceAnswers(t)
	sys, ft := deployFaulty(t)
	victim := pickVictim(t, sys)
	ctx := context.Background()

	var failoversSeen atomic.Int64
	stop := make(chan struct{})
	var script sync.WaitGroup
	script.Add(1)
	go func() {
		defer script.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				ft.SiteDown(victim)
			} else {
				ft.ReviveSite(victim)
				sys.CheckHealth(ctx)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	algos := Algorithms()
	var workers sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 8; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 12; i++ {
				src := failoverQueries[(w+i)%len(failoverQueries)]
				algo := algos[(w*3+i)%len(algos)]
				res, err := sys.Exec(ctx, MustQuery(src), WithAlgorithm(algo))
				if err != nil {
					errc <- fmt.Errorf("%v %s: %w", algo, src, err)
					return
				}
				if res.Answer != ref[src] {
					errc <- fmt.Errorf("%v: %s = %v, reference %v", algo, src, res.Answer, ref[src])
					return
				}
				failoversSeen.Add(res.Failovers)
			}
		}(w)
	}
	workers.Wait()
	close(stop)
	script.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The script left the victim in an unknown state; recover and verify
	// exact service once more.
	ft.ReviveSite(victim)
	sys.CheckHealth(ctx)
	sys.CheckHealth(ctx)
	for _, src := range failoverQueries {
		res, err := sys.Exec(ctx, MustQuery(src))
		if err != nil {
			t.Fatal(err)
		}
		if res.Answer != ref[src] {
			t.Fatalf("final: %s = %v, reference %v", src, res.Answer, ref[src])
		}
	}
}

// TestRebalanceMovesHotFragment deploys with the coordinator holding only
// the root fragment while two other sites share everything else. Remote
// traffic then lands entirely on those two — the coordinator's own calls
// are local and free — so a rebalancing pass must migrate a fragment from
// the hottest site onto the idle coordinator, bumping the migration
// counter and widening the fragment's replica list.
func TestRebalanceMovesHotFragment(t *testing.T) {
	forest, _ := failoverForest(t)
	sys, err := DeployReplicated(forest, ReplicaMap{
		0: {"A"},
		1: {"B", "C"},
		2: {"B", "C"},
		3: {"B", "C"},
	}, PlaceFirst,
		WithFailover(),
		WithRebalancing(0), // manual passes only
		withServeOptions(serve.Options{ProbeInterval: -1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()

	for i := 0; i < 20; i++ {
		if _, err := sys.Exec(ctx, MustQuery(failoverQueries[i%len(failoverQueries)])); err != nil {
			t.Fatal(err)
		}
	}
	before := sys.Replicas()
	moved, err := sys.Rebalance(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("rebalance moved %d fragments, want 1", moved)
	}
	if got := sys.ServeStats().Migrations; got != 1 {
		t.Fatalf("migrations counter %d, want 1", got)
	}
	after := sys.Replicas()
	widened := FragmentID(-1)
	for id, sites := range after {
		if len(sites) > len(before[id]) {
			widened = id
		}
	}
	if widened < 0 {
		t.Fatal("migration reported but no replica list widened")
	}
	onCoord := false
	for _, s := range after[widened] {
		if s == "A" {
			onCoord = true
		}
	}
	if !onCoord {
		t.Fatalf("fragment %d widened to %v, expected the idle coordinator A", widened, after[widened])
	}
	// Service is still exact after the move.
	ref := referenceAnswers(t)
	for _, src := range failoverQueries {
		res, err := sys.Exec(ctx, MustQuery(src))
		if err != nil {
			t.Fatal(err)
		}
		if res.Answer != ref[src] {
			t.Fatalf("post-migration: %s = %v, reference %v", src, res.Answer, ref[src])
		}
	}
}

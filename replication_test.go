package parbox

import (
	"context"
	"testing"

	"repro/internal/xmark"
)

func TestReplicatedDeployAndReplan(t *testing.T) {
	root, sites, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       11,
		Parents:    xmark.StarParents(4),
		MBs:        []float64{0.2, 0.8, 0.3, 0.3},
		NodesPerMB: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := xmark.Fragment(root, sites)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := DeployReplicated(forest, ReplicaMap{
		0: {"A", "B"},
		1: {"B", "C"},
		2: {"C", "A"},
		3: {"A", "B", "C"},
	}, PlaceBalanced)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := MustQuery(`//item[quantity]`)
	ok, err := sys.Evaluate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("expected true")
	}
	// Replanning changes the source tree but not the answer.
	if err := sys.Replan(PlaceMinSites); err != nil {
		t.Fatal(err)
	}
	ok2, err := sys.Evaluate(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if ok2 != ok {
		t.Error("replan changed the answer")
	}
	// Count aggregation over the replicated deployment.
	cnt, err := sys.Count(ctx, `//item`)
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Count <= 0 {
		t.Errorf("count = %d", cnt.Count)
	}
	// Selection agrees with the count.
	sel, err := sys.Select(ctx, `//item`)
	if err != nil {
		t.Fatal(err)
	}
	if int64(sel.Count) != cnt.Count {
		t.Errorf("select %d != count %d", sel.Count, cnt.Count)
	}
}

func TestReplanRequiresReplicatedDeploy(t *testing.T) {
	doc := NewElement("r", "", NewElement("a", ""))
	sys, err := Deploy(NewForest(doc), Assignment{0: "S0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replan(PlaceBalanced); err == nil {
		t.Error("Replan on a non-replicated system accepted")
	}
}

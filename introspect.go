package parbox

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"

	"repro/internal/obs"
)

// WithIntrospection serves the system's live introspection plane over
// HTTP on addr (e.g. ":9090"; ":0" picks a free port — read it back
// with IntrospectionAddr). Endpoints, all stdlib-only:
//
//   - /metrics — Prometheus text exposition: per-site visits, messages,
//     bytes, steps, cache hits/misses, sheds, deadline expiries, errors
//     and the full request-latency histogram, plus the coalescing
//     scheduler's counters and the coordinator's per-call service-time
//     histograms.
//   - /healthz — liveness, with the serving tier's per-site states as
//     the detail body on WithFailover deployments.
//   - /tracez — the retained slow-query trace ring, rendered as span
//     trees (?min=50ms filters); Exec calls made with WithSpans or
//     WithTrace land here.
//   - /debug/pprof/* — the standard Go profiles.
//
// The server starts at deployment and stops on Close.
func WithIntrospection(addr string) Option {
	return func(o *options) { o.introspect = addr }
}

// IntrospectionAddr returns the introspection server's bound address
// ("" without WithIntrospection) — useful when deployed on ":0".
func (s *System) IntrospectionAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// startIntrospection binds the introspection HTTP server and arms the
// coordinator's trace ring (Exec feeds it only when the ring exists, so
// systems without introspection retain no spans).
func (s *System) startIntrospection(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("parbox: WithIntrospection listen %s: %w", addr, err)
	}
	s.obsRing = obs.NewTraceRing(0)
	mux := obs.NewMux(obs.MuxConfig{
		Metrics: s.fillMetrics,
		Healthz: s.healthz,
		Tracez:  s.obsRing.Records,
	})
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln)
	return nil
}

// fillMetrics renders the whole system's exposition: the per-site
// always-on SiteStats blocks, the coordinator's per-call service-time
// view (cluster metrics), and the scheduler counters.
func (s *System) fillMetrics(p *obs.Prom) {
	ids := s.cluster.Sites()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	snaps := make([]obs.SiteStatsSnapshot, 0, len(ids))
	for _, id := range ids {
		site, ok := s.cluster.Site(id)
		if !ok {
			continue
		}
		snap := site.Stats().Snapshot()
		snap.Site = string(id)
		snaps = append(snaps, snap)
	}
	p.SiteStatsProm(snaps...)

	// The coordinator's remote-call view: service time as the caller
	// experienced it, per callee site (count equals that site's remote
	// MessagesIn — the symmetry the invariant tests pin).
	mets := s.cluster.Metrics().Snapshot()
	mids := make([]SiteID, 0, len(mets))
	for id := range mets {
		mids = append(mids, id)
	}
	sort.Slice(mids, func(i, j int) bool { return mids[i] < mids[j] })
	for _, id := range mids {
		p.Histogram("parbox_call_service_seconds",
			"Per-call service time of remote calls, as observed by the coordinator.",
			mets[id].ServiceHist, 1e9, "site", string(id))
	}

	st := s.sched.stats()
	p.Counter("parbox_sched_rounds_total", "ParBoX rounds run by the coalescing scheduler.", float64(st.Rounds))
	p.Counter("parbox_sched_queries_total", "Exec calls served through the scheduler.", float64(st.Queries))
	p.Counter("parbox_sched_coalesced_queries_total", "Served calls that shared their round.", float64(st.CoalescedQueries))
	for _, f := range []struct {
		reason string
		n      int64
	}{
		{"idle", st.FlushIdle}, {"timer", st.FlushTimer},
		{"lanes", st.FlushLanes}, {"drain", st.FlushDrain},
	} {
		p.Counter("parbox_sched_flush_total", "Rounds by what flushed their window.", float64(f.n), "reason", f.reason)
	}
}

// healthz reports the coordinator as live; on WithFailover deployments
// the detail body lists every site's health state and the check fails
// only when no site is routable at all.
func (s *System) healthz() (bool, string) {
	if s.tier == nil {
		return true, "ok\n"
	}
	health := s.tier.Health()
	ids := make([]SiteID, 0, len(health))
	for id := range health {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	anyUp := false
	var b strings.Builder
	for _, id := range ids {
		h := health[id]
		if h.State != SiteDown {
			anyUp = true
		}
		fmt.Fprintf(&b, "%s %s ewma=%v p95=%v inflight=%d fails=%d\n",
			id, h.State, h.EWMA, h.P95, h.Inflight, h.Fails)
	}
	return anyUp, b.String()
}

package parbox

import (
	"context"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/xpath"
)

// Scheduler defaults: the admission window a round collects callers over,
// and the fused-lane budget that flushes a window early. 64 lanes keeps the
// shared QList — the per-node cost every fragment pays in the round — of
// the order of a handful of individual queries, while heavily overlapping
// subscription sets fit tens of queries under it thanks to cross-query
// hash-consing.
const (
	// DefaultCoalesceWindow is how long an open window waits for further
	// callers before flushing. It is deliberately a fraction of a typical
	// round's wall time: waiting longer would add caller latency without
	// materially improving grouping, since a round in flight already
	// absorbs the arrivals of its duration into the next window.
	DefaultCoalesceWindow = 250 * time.Microsecond
	// DefaultCoalesceLanes is the fused QList size at which a window
	// flushes immediately.
	DefaultCoalesceLanes = 64
)

// SchedInfo reports how the coalescing scheduler served one Exec call; it
// is attached to Result.Sched for calls that went through the scheduler.
type SchedInfo struct {
	// Coalesced is true when the round answered more than one caller.
	Coalesced bool
	// RoundQueries is the number of callers that shared the round.
	RoundQueries int
	// RoundLanes is the fused QList size of the round's shared program —
	// thanks to cross-query sharing it is at most (usually far below) the
	// sum of the member queries' own QList sizes.
	RoundLanes int
	// FlushReason says what closed the window: "idle" (no concurrent
	// callers, flushed immediately), "timer" (admission window elapsed
	// with no round in flight), "lanes" (fused-lane budget reached), or
	// "drain" (a round completed and took the window accumulated during
	// it — the group-commit path that sizes rounds to the load).
	FlushReason string
	// Waited is the time from this caller's arrival to the round starting.
	Waited time.Duration
	// Round is the shared round's full report. It is the same object for
	// every caller of the round (callers can detect round-mates by pointer
	// identity); treat it as read-only.
	Round *BatchResult
}

// SchedulerStats are the scheduler's cumulative counters since deployment.
type SchedulerStats struct {
	// Rounds is the number of ParBoX rounds the scheduler ran.
	Rounds int64
	// Queries is the number of Exec calls served through the scheduler.
	Queries int64
	// CoalescedQueries counts the served calls that shared their round
	// with at least one other call.
	CoalescedQueries int64
	// FlushIdle/FlushTimer/FlushLanes/FlushDrain count rounds by what
	// flushed them (see SchedInfo.FlushReason).
	FlushIdle, FlushTimer, FlushLanes, FlushDrain int64
}

// scheduler groups concurrent Boolean-mode ParBoX Exec calls into shared
// rounds. The first arrival opens an adaptive window; the window flushes
// when the fused-lane budget is reached, immediately when the opener is
// the only caller in flight (idle — the uncontended path pays no added
// latency), on the admission-window time bound, or — the load-adaptive
// group-commit path — the moment an in-flight round completes, taking
// everything that accumulated during it (while a round runs, the time
// bound defers to this drain, so round size scales with arrival rate ×
// round duration instead of fragmenting into timer-sized slivers). The
// flusher fuses the waiters' parsed queries into one shared program
// (incremental CompileBatch), runs a single Engine.ParBoXBatch, and
// demultiplexes per-caller answers and accounting.
type scheduler struct {
	sys    *System
	window time.Duration
	lanes  int

	mu  sync.Mutex
	win *schedWindow
	// spare is the recycled batch builder: flush Resets the round's builder
	// (keeping its hash-consing intern table's storage) and parks it here,
	// so steady-state windows compile through one builder instead of
	// allocating a fresh compiler + intern map per round.
	spare *xpath.BatchBuilder

	// inflight counts Exec calls currently inside the scheduler; the
	// opener of a window uses it to detect the uncontended case. running
	// counts rounds in flight; the timer defers to the end-of-round drain
	// while it is nonzero.
	inflight atomic.Int64
	running  atomic.Int64

	rounds, queries, coalesced                   atomic.Int64
	flushIdle, flushTimer, flushLane, flushDrain atomic.Int64
}

type schedWindow struct {
	builder *xpath.BatchBuilder
	waiters []*schedWaiter
	timer   *time.Timer
}

type schedWaiter struct {
	q   *Prepared
	enq time.Time
	// spans asks the flusher to attach the round's span tree (plus this
	// caller's lane span) to the demultiplexed Result. Text rendering, if
	// any, happens back on the caller's goroutine — the flusher never
	// writes to a caller-owned writer, so a caller that stopped waiting
	// races nothing.
	spans bool
	// done receives the caller's demultiplexed outcome; buffered so the
	// flusher never blocks on a caller that stopped waiting.
	done chan schedOutcome
}

type schedOutcome struct {
	res *Result
	err error
}

func newScheduler(sys *System, window time.Duration, lanes int) *scheduler {
	if window <= 0 {
		window = DefaultCoalesceWindow
	}
	if lanes <= 0 {
		lanes = DefaultCoalesceLanes
	}
	return &scheduler{sys: sys, window: window, lanes: lanes}
}

func (sch *scheduler) stats() SchedulerStats {
	return SchedulerStats{
		Rounds:           sch.rounds.Load(),
		Queries:          sch.queries.Load(),
		CoalescedQueries: sch.coalesced.Load(),
		FlushIdle:        sch.flushIdle.Load(),
		FlushTimer:       sch.flushTimer.Load(),
		FlushLanes:       sch.flushLane.Load(),
		FlushDrain:       sch.flushDrain.Load(),
	}
}

// exec runs one prepared Boolean query through the scheduler and blocks
// until its round delivers (or ctx expires — the shared round itself is
// not cancelled by one caller abandoning it). When trace is non-nil the
// round's span tree is rendered into it after the outcome arrives; when
// spans (or trace) is set, Result.Spans carries the tree.
func (sch *scheduler) exec(ctx context.Context, q *Prepared, trace io.Writer, spans bool) (*Result, error) {
	sch.inflight.Add(1)
	defer sch.inflight.Add(-1)
	sch.queries.Add(1)

	w := &schedWaiter{q: q, enq: time.Now(), spans: spans || trace != nil, done: make(chan schedOutcome, 1)}

	sch.mu.Lock()
	opened := sch.win == nil
	if opened {
		b := sch.spare
		if b != nil {
			sch.spare = nil
		} else {
			b = xpath.NewBatchBuilder()
		}
		sch.win = &schedWindow{builder: b}
	}
	win := sch.win
	win.waiters = append(win.waiters, w)
	win.builder.Add(q.expr)
	full := win.builder.Lanes() >= sch.lanes
	sch.mu.Unlock()

	switch {
	case full:
		// Budget reached: this caller flushes the window it just joined.
		if sch.detach(win) != nil {
			sch.flushLane.Add(1)
			sch.flush(win, "lanes")
		}
	case opened && sch.idleAfterYield():
		// Nobody else is in flight: flushing now costs no coalescing
		// opportunity and saves the window latency.
		if sch.detach(win) != nil {
			sch.flushIdle.Add(1)
			sch.flush(win, "idle")
		}
	case opened:
		timer := time.AfterFunc(sch.window, func() {
			// With a round in flight, leave the window for the
			// end-of-round drain: flushing timer-sized slivers under load
			// would fragment the very batches coalescing exists to build.
			if sch.running.Load() > 0 {
				return
			}
			sch.settle(win)
			if sch.detach(win) != nil {
				sch.flushTimer.Add(1)
				sch.flush(win, "timer")
			}
		})
		// Publish the timer under the lock (detach reads it there); if a
		// lane-budget flush already detached the window in the meantime,
		// the timer has nothing to do.
		sch.mu.Lock()
		if sch.win == win {
			win.timer = timer
			sch.mu.Unlock()
		} else {
			sch.mu.Unlock()
			timer.Stop()
		}
	}

	select {
	case out := <-w.done:
		if trace != nil && out.res != nil && len(out.res.Spans) > 0 {
			obs.RenderTrace(trace, obs.TraceRecord{
				TraceID: out.res.Spans[0].TraceID,
				Root:    "coalesced round",
				Dur:     out.res.Duration,
				At:      w.enq,
				Spans:   out.res.Spans,
			})
		}
		return out.res, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// idleAfterYield reports whether the window opener is still the only
// caller in flight after giving up its scheduling quantum once. The
// callers of a subscription burst are released in the same instant but are
// merely runnable, not yet enqueued — on a loaded single-P server,
// reliably so — and an opener that trusted a bare inflight check would
// flush solo and leave the rest of the burst to a second full round. One
// cooperative yield lets same-instant arrivals join this window, turning
// two back-to-back forest walks into one fused round; a genuinely
// uncontended caller pays one Gosched (sub-microsecond) before the idle
// flush.
func (sch *scheduler) idleAfterYield() bool {
	if sch.inflight.Load() > 1 {
		return false
	}
	runtime.Gosched()
	return sch.inflight.Load() == 1
}

// settle yields until every caller already inside exec has enqueued into
// the expired window (or a bounded number of tries runs out). The timer
// can fire while the tail of a burst is runnable but not yet enqueued —
// on a loaded single-P server, reliably so — and flushing at that instant
// strands those callers in a follow-up round that re-walks the whole
// forest for a sliver of the burst. The wait is bounded (≤16 yields), so
// the window-latency contract moves by microseconds, not another window.
func (sch *scheduler) settle(win *schedWindow) {
	for i := 0; i < 16; i++ {
		sch.mu.Lock()
		enqueued := 0
		if sch.win == win {
			enqueued = len(win.waiters)
		}
		sch.mu.Unlock()
		if enqueued == 0 || int64(enqueued) >= sch.inflight.Load() {
			return
		}
		runtime.Gosched()
	}
}

// detach removes win from the scheduler if it is still the open window,
// returning win exactly once (nil for every later caller); the winner runs
// the flush.
func (sch *scheduler) detach(win *schedWindow) *schedWindow {
	sch.mu.Lock()
	defer sch.mu.Unlock()
	if sch.win != win {
		return nil
	}
	sch.win = nil
	if win.timer != nil {
		win.timer.Stop()
	}
	return win
}

// detachCurrent removes and returns whatever window is open (nil if none)
// — the end-of-round drain takes the waiters that accumulated while the
// round ran.
func (sch *scheduler) detachCurrent() *schedWindow {
	sch.mu.Lock()
	defer sch.mu.Unlock()
	win := sch.win
	if win == nil {
		return nil
	}
	sch.win = nil
	if win.timer != nil {
		win.timer.Stop()
	}
	return win
}

// flush runs one shared round for the window's waiters and demultiplexes
// the outcome, then drains any window that accumulated while the round was
// in flight into a follow-up round (in a fresh goroutine, so the flushing
// caller gets back to its own result). The round runs under
// context.Background(): it serves every waiter, so no single caller's
// cancellation may abort it (a caller whose context expires simply stops
// waiting; see exec).
func (sch *scheduler) flush(win *schedWindow, reason string) {
	sch.rounds.Add(1)
	sch.running.Add(1)
	defer func() {
		sch.running.Add(-1)
		if next := sch.detachCurrent(); next != nil {
			sch.flushDrain.Add(1)
			go sch.flush(next, "drain")
		}
	}()
	prog, roots := win.builder.Program()
	// The returned program and roots don't alias builder state Reset
	// reuses, so the builder can go straight back into rotation while the
	// round runs.
	win.builder.Reset()
	sch.mu.Lock()
	if sch.spare == nil {
		sch.spare = win.builder
	}
	sch.mu.Unlock()
	win.builder = nil
	// One shared trace for the whole round when any member asked for
	// spans: the round runs once, so its tree is recorded once and every
	// traced caller receives the same slice, lane spans included.
	traced := false
	for _, w := range win.waiters {
		if w.spans {
			traced = true
			break
		}
	}
	rctx := context.Background()
	var spanCol *obs.Collector
	var rootSpan obs.Span
	if traced {
		spanCol = obs.NewCollector()
		rootSpan = obs.Span{TraceID: obs.NewTraceID(), ID: obs.NewSpanID(),
			Site: "coordinator", Name: "round"}
		rctx = obs.WithTrace(rctx, obs.TraceContext{TraceID: rootSpan.TraceID, SpanID: rootSpan.ID, Collector: spanCol})
	}
	start := time.Now()
	rep, err := sch.sys.eng().ParBoXBatch(rctx, prog, roots)
	if err != nil {
		for _, w := range win.waiters {
			w.done <- schedOutcome{err: err}
		}
		return
	}
	k := len(win.waiters)
	if k > 1 {
		sch.coalesced.Add(int64(k))
	}
	shared := &rep
	var tree []obs.Span
	if traced {
		rootSpan.Start = start.UnixNano()
		rootSpan.Dur = time.Since(start).Nanoseconds()
		rootSpan.Attrs = []obs.Attr{
			{Key: "queries", Val: int64(k)},
			{Key: "lanes", Val: int64(prog.QListSize())},
		}
		// One immutable tree shared by every traced round-mate: the
		// round's collected spans, the root, and one lane span per
		// traced caller. A per-caller copy would cost k×tree allocations
		// per round — the difference between passing and blowing the
		// observed-burst overhead gate.
		collected := spanCol.Spans()
		tree = make([]obs.Span, 0, len(collected)+1+k)
		tree = append(tree, collected...)
		tree = append(tree, rootSpan)
		now := time.Now()
		for i, w := range win.waiters {
			if !w.spans {
				continue
			}
			// Lane attribution: which slot of the fused program answered
			// this caller, how many queries rode the round, and how long
			// the caller waited for admission.
			tree = append(tree, obs.Span{
				TraceID: rootSpan.TraceID, ID: obs.NewSpanID(), Parent: rootSpan.ID,
				Site: "coordinator", Name: "lane",
				Start: w.enq.UnixNano(), Dur: now.Sub(w.enq).Nanoseconds(),
				Attrs: []obs.Attr{
					{Key: "lane", Val: int64(i)},
					{Key: "lanes", Val: int64(k)},
					{Key: "waited_ns", Val: start.Sub(w.enq).Nanoseconds()},
				},
			})
		}
		if ring := sch.sys.obsRing; ring != nil {
			ring.Add(obs.TraceRecord{TraceID: rootSpan.TraceID, Root: "round",
				Dur: time.Duration(rootSpan.Dur), At: start, Spans: tree})
		}
	}
	// Deterministic site order for splitting the visit counts.
	sites := make([]SiteID, 0, len(rep.Visits))
	for s := range rep.Visits {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for i, w := range win.waiters {
		res := &Result{
			Mode:      ModeBoolean,
			Algorithm: AlgoParBoX,
			Answer:    rep.Answers[i],
			// Fair-share accounting: the round's totals are split over its
			// callers such that the per-caller shares sum exactly back to
			// the round (the metrics-sum invariant differential tests
			// pin). SimTime is deliberately NOT split — it is a makespan,
			// and every caller of the round waited through all of it.
			// Failovers, like SimTime, is a round-level fact: every caller
			// of the round rode through the same recoveries.
			Failovers:   rep.Failovers,
			SimTime:     rep.SimTime,
			Bytes:       fairShare(rep.Bytes, i, k),
			Messages:    fairShare(rep.Messages, i, k),
			TotalSteps:  fairShare(rep.TotalSteps, i, k),
			CacheHits:   fairShare(rep.CacheHits, i, k),
			CacheMisses: fairShare(rep.CacheMisses, i, k),
			Sched: &SchedInfo{
				Coalesced:    k > 1,
				RoundQueries: k,
				RoundLanes:   prog.QListSize(),
				FlushReason:  reason,
				Waited:       start.Sub(w.enq),
				Round:        shared,
			},
		}
		if len(sites) > 0 {
			res.Visits = make(map[SiteID]int64, len(sites))
			for _, s := range sites {
				if v := fairShare(rep.Visits[s], i, k); v > 0 {
					res.Visits[s] = v
				}
			}
		}
		res.Duration = time.Since(w.enq)
		if w.spans {
			res.Spans = tree
		}
		w.done <- schedOutcome{res: res}
	}
}

// fairShare splits total into k near-equal non-negative parts that sum to
// exactly total; part i gets the remainder's i-th unit.
func fairShare(total int64, i, k int) int64 {
	share := total / int64(k)
	if int64(i) < total%int64(k) {
		share++
	}
	return share
}

package parbox

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/frag"
	"repro/internal/store"
)

// durableDoc builds the deterministic document the durability tests
// fragment; calling it twice yields structurally identical twins for the
// durable system and its never-restarted in-memory reference.
func durableDoc() *Node {
	return NewElement("catalog", "",
		NewElement("sec", "",
			NewElement("a", "x"),
			NewElement("b", "y", NewElement("bb", "deep"))),
		NewElement("sec", "",
			NewElement("c", "z", NewElement("d", "w"))),
		NewElement("sec", "",
			NewElement("e", "v"),
			NewElement("f", "")),
	)
}

// durableForest fragments a durableDoc into four fragments over three
// sites: root at S0, the three sections at S0/S1/S2.
func durableForest(t *testing.T) (*Forest, Assignment) {
	t.Helper()
	doc := durableDoc()
	forest := NewForest(doc)
	for _, sec := range doc.FindAll("sec") {
		if _, err := forest.Split(sec); err != nil {
			t.Fatal(err)
		}
	}
	return forest, Assignment{0: "S0", 1: "S0", 2: "S1", 3: "S2"}
}

var durableQueries = []string{
	`//a[text() = "x"] && //d`,
	`//bb[text() = "deep"]`,
	`//e && !(//zzz)`,
	`//sec`,
}

// captureVersions reads every site's fragment-version counters (live and
// dead) up to a generous id bound.
func captureVersions(s *System) map[SiteID]map[FragmentID]uint64 {
	out := make(map[SiteID]map[FragmentID]uint64)
	for _, id := range s.cluster.Sites() {
		site, _ := s.cluster.Site(id)
		vs := make(map[FragmentID]uint64)
		for fid := FragmentID(0); fid < 64; fid++ {
			if v := site.FragmentVersion(fid); v != 0 {
				vs[fid] = v
			}
		}
		out[id] = vs
	}
	return out
}

// assertVersionsMonotonic fails if any counter in next moved backwards
// relative to prev.
func assertVersionsMonotonic(t *testing.T, prev, next map[SiteID]map[FragmentID]uint64) {
	t.Helper()
	for sid, vs := range prev {
		for fid, v := range vs {
			if nv := next[sid][fid]; nv < v {
				t.Fatalf("site %s fragment %d version regressed %d -> %d", sid, fid, v, nv)
			}
		}
	}
}

// applyUpdates drives an identical topology-preserving maintenance stream
// (content updates on two fragments) through a system's view layer. Exec
// topology is fixed at Deploy, so the streams the differential tests share
// with a never-redeployed reference must not split or merge.
func applyUpdates(t *testing.T, ctx context.Context, s *System) *View {
	t.Helper()
	v, err := s.Materialize(ctx, MustPrepare(durableQueries[0]))
	if err != nil {
		t.Fatal(err)
	}
	// Content update on fragment 2 (S1): the query's //d lives there.
	if _, err := v.Update(ctx, 2, []UpdateOp{
		{Op: OpSetText, Path: []int{0, 0}, Text: "w2"},
		{Op: OpInsert, Path: []int{0}, Label: "g", Text: "new"},
	}); err != nil {
		t.Fatal(err)
	}
	// And one on fragment 1 (S0): deepen <bb>.
	if _, err := v.Update(ctx, 1, []UpdateOp{
		{Op: OpSetText, Path: []int{1, 0}, Text: "deeper"},
	}); err != nil {
		t.Fatal(err)
	}
	return v
}

// assertSameAnswers runs every algorithm (Boolean) and a count query on
// both systems and requires identical results.
func assertSameAnswers(t *testing.T, ctx context.Context, got, want *System) {
	t.Helper()
	for _, src := range durableQueries {
		q := MustPrepare(src)
		for _, algo := range Algorithms() {
			rg, err := got.Exec(ctx, q, WithAlgorithm(algo))
			if err != nil {
				t.Fatalf("restored %s %q: %v", algo, src, err)
			}
			rw, err := want.Exec(ctx, q, WithAlgorithm(algo))
			if err != nil {
				t.Fatalf("reference %s %q: %v", algo, src, err)
			}
			if rg.Answer != rw.Answer {
				t.Errorf("%s %q: restored=%v reference=%v", algo, src, rg.Answer, rw.Answer)
			}
		}
	}
	cg, err := got.Exec(ctx, MustPrepare(`//sec//*`), WithMode(ModeCount))
	if err != nil {
		t.Fatal(err)
	}
	cw, err := want.Exec(ctx, MustPrepare(`//sec//*`), WithMode(ModeCount))
	if err != nil {
		t.Fatal(err)
	}
	if cg.Counting.Count != cw.Counting.Count {
		t.Errorf("count: restored=%d reference=%d", cg.Counting.Count, cw.Counting.Count)
	}
}

// TestCrashRecoveryDifferential is the acceptance gate: a durable system
// and an in-memory twin receive the same maintenance stream; the durable
// one crashes (dropped without Close) and is restored from WAL+snapshot.
// All algorithm answers must match the never-restarted reference, the
// recovered fragment versions must be identical to the pre-crash ones,
// and a repeated query must answer entirely from the warmed triplet cache
// with zero bottomUp steps.
func TestCrashRecoveryDifferential(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	forest, assign := durableForest(t)
	dur, err := Deploy(forest, assign, WithDurability(dir), WithTripletCache())
	if err != nil {
		t.Fatal(err)
	}
	refForest, refAssign := durableForest(t)
	ref, err := Deploy(refForest, refAssign, WithTripletCache())
	if err != nil {
		t.Fatal(err)
	}

	applyUpdates(t, ctx, dur)
	applyUpdates(t, ctx, ref)
	assertSameAnswers(t, ctx, dur, ref)

	// One serving round after the maintenance stream fills — and journals —
	// every site's triplet cache at the final fragment versions.
	warmQ := MustPrepare(durableQueries[0])
	if _, err := dur.Exec(ctx, warmQ); err != nil {
		t.Fatal(err)
	}
	preCrash := captureVersions(dur)

	// Crash: the durable system is abandoned mid-flight, never Closed.
	dur = nil

	rest, err := Restore(dir, WithTripletCache())
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Close()

	restored := captureVersions(rest)
	for sid, vs := range preCrash {
		for fid, v := range vs {
			if rv := restored[sid][fid]; rv != v {
				t.Errorf("site %s fragment %d: restored version %d, want %d", sid, fid, rv, v)
			}
		}
	}
	assertSameAnswers(t, ctx, rest, ref)

	// The warmed cache must survive the restart: the same query answers
	// with every fragment a cache hit and zero bottomUp computation.
	res, err := rest.Exec(ctx, warmQ)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != 0 || res.CacheHits == 0 {
		t.Errorf("post-restart warm query: hits=%d misses=%d, want all hits", res.CacheHits, res.CacheMisses)
	}
	if bottomUp := res.TotalSteps - res.Boolean.SolveWork; bottomUp != 0 {
		t.Errorf("post-restart warm query ran %d bottomUp steps, want 0", bottomUp)
	}
}

// TestVersionMonotonicityAndStaleCacheRejection covers the maintenance
// satellites: versions only ever move forward — across Split and Merge and
// across a crash-restart — and a triplet journaled before a later mutation
// is never served after recovery (the stale entry misses instead).
func TestVersionMonotonicityAndStaleCacheRejection(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	forest, assign := durableForest(t)
	dur, err := Deploy(forest, assign, WithDurability(dir), WithTripletCache())
	if err != nil {
		t.Fatal(err)
	}
	refForest, refAssign := durableForest(t)
	ref, err := Deploy(refForest, refAssign)
	if err != nil {
		t.Fatal(err)
	}

	q := MustPrepare(durableQueries[1]) // //bb[text()="deep"]
	if _, err := dur.Exec(ctx, q); err != nil {
		t.Fatal(err)
	}
	snap0 := captureVersions(dur)

	v, err := dur.Materialize(ctx, MustPrepare(durableQueries[0]))
	if err != nil {
		t.Fatal(err)
	}
	newID, _, err := v.Split(ctx, 1, []int{1}, "S2")
	if err != nil {
		t.Fatal(err)
	}
	snap1 := captureVersions(dur)
	assertVersionsMonotonic(t, snap0, snap1)
	if _, err := v.Merge(ctx, 1, newID); err != nil {
		t.Fatal(err)
	}
	snap2 := captureVersions(dur)
	assertVersionsMonotonic(t, snap1, snap2)
	// The merged-away fragment's counter survives at S2 even though the
	// fragment is gone — its ids must never be reusable by a cache.
	if snap2["S2"][newID] == 0 {
		t.Fatalf("merged fragment %d lost its version counter: %v", newID, snap2["S2"])
	}

	// Mutate fragment 1 AFTER its triplet was journaled, then crash
	// without re-executing: recovery sees a cached entry at the old
	// version and must reject it rather than serve the dead answer.
	refV, err := ref.Materialize(ctx, MustPrepare(durableQueries[0]))
	if err != nil {
		t.Fatal(err)
	}
	ops := []UpdateOp{{Op: OpDelete, Path: []int{1, 0}}} // delete <bb>
	if _, err := v.Update(ctx, 1, ops); err != nil {
		t.Fatal(err)
	}
	refNewID, _, err := refV.Split(ctx, 1, []int{1}, "S2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refV.Merge(ctx, 1, refNewID); err != nil {
		t.Fatal(err)
	}
	if _, err := refV.Update(ctx, 1, ops); err != nil {
		t.Fatal(err)
	}
	preCrash := captureVersions(dur)
	dur = nil // crash

	rest, err := Restore(dir, WithTripletCache())
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Close()
	assertVersionsMonotonic(t, preCrash, captureVersions(rest))

	res, err := rest.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer != refRes.Answer {
		t.Errorf("post-restart answer %v, reference %v", res.Answer, refRes.Answer)
	}
	if res.Answer {
		t.Error("deleted <bb> still matches: a dead cache entry was served")
	}
	if res.CacheMisses == 0 {
		t.Error("mutated fragment produced no cache miss; its stale entry must not be restored")
	}

	// Versions keep climbing after the restart, too.
	postV, err := rest.Materialize(ctx, MustPrepare(durableQueries[0]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := postV.Update(ctx, 1, []UpdateOp{{Op: OpSetText, Path: []int{0}, Text: "zz"}}); err != nil {
		t.Fatal(err)
	}
	assertVersionsMonotonic(t, captureVersions(rest), captureVersions(rest))
}

// TestGracefulCloseAndRestore exercises the snapshot-only restart: Close
// checkpoints, Restore replays no WAL, and Deploy refuses a dir that
// already holds state.
func TestGracefulCloseAndRestore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	forest, assign := durableForest(t)
	dur, err := Deploy(forest, assign, WithDurability(dir), WithTripletCache())
	if err != nil {
		t.Fatal(err)
	}
	applyUpdates(t, ctx, dur)
	if err := dur.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}

	refForest, refAssign := durableForest(t)
	ref, err := Deploy(refForest, refAssign)
	if err != nil {
		t.Fatal(err)
	}
	applyUpdates(t, ctx, ref)

	if _, err := Deploy(forest, assign, WithDurability(dir)); err == nil ||
		!strings.Contains(err.Error(), "use Restore") {
		t.Fatalf("Deploy on a used data dir: err = %v, want 'use Restore'", err)
	}

	rest, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Close()
	assertSameAnswers(t, ctx, rest, ref)
}

// TestResidentFragmentBound restores with a one-fragment resident table:
// every query lazily loads what it needs, answers stay correct, and the
// table never exceeds its bound between operations.
func TestResidentFragmentBound(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	forest, assign := durableForest(t)
	dur, err := Deploy(forest, assign, WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}
	refForest, refAssign := durableForest(t)
	ref, err := Deploy(refForest, refAssign)
	if err != nil {
		t.Fatal(err)
	}

	rest, err := Restore(dir, WithResidentFragments(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Close()
	for round := 0; round < 2; round++ {
		assertSameAnswers(t, ctx, rest, ref)
	}
	for _, sid := range rest.cluster.Sites() {
		site, _ := rest.cluster.Site(sid)
		if n := site.ResidentFragments(); n > 1 {
			t.Errorf("site %s holds %d resident fragments, bound is 1", sid, n)
		}
	}
}

// TestRestoreEmptyDir documents the failure mode, and that foreign
// subdirectories (anything without store files) are skipped rather than
// registered as bogus sites — or worse, written into.
func TestRestoreEmptyDir(t *testing.T) {
	dir := t.TempDir()
	foreign := filepath.Join(dir, "lost+found")
	if err := os.MkdirAll(foreign, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(dir); err == nil {
		t.Fatal("Restore on a dir with no site state succeeded")
	}
	entries, err := os.ReadDir(foreign)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("Restore wrote into a foreign directory: %v", entries)
	}
}

// TestDeployDurableFailureLeavesDirClean forces attachStores to fail on
// the second site and checks the first site's half-seeded store was
// removed, so the retried Deploy succeeds.
func TestDeployDurableFailureLeavesDirClean(t *testing.T) {
	dir := t.TempDir()
	doc := NewElement("r", "", NewElement("a", ""))
	forest := NewForest(doc)
	if _, err := forest.Split(doc.Children[0]); err != nil {
		t.Fatal(err)
	}
	// "S/1" cannot name a data subdirectory; S0 is seeded first (sites
	// are walked in sorted order) and must be rolled back.
	if _, err := Deploy(forest, Assignment{0: "S0", 1: "S/1"}, WithDurability(dir)); err == nil {
		t.Fatal("Deploy with an unusable site name succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed Deploy left %v behind", entries)
	}
	doc2 := NewElement("r", "", NewElement("a", ""))
	forest2 := NewForest(doc2)
	if _, err := forest2.Split(doc2.Children[0]); err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(forest2, Assignment{0: "S0", 1: "S1"}, WithDurability(dir))
	if err != nil {
		t.Fatalf("retry on the cleaned dir failed: %v", err)
	}
	sys.Close()
}

// TestRestoreDropsMergeCrashDuplicate hand-builds the torn state a crash
// inside a same-site merge leaves behind — the merged-into fragment's log
// already holds the absorbed content, the child's deletion never made it —
// and checks Restore repairs it by dropping the unreferenced duplicate.
func TestRestoreDropsMergeCrashDuplicate(t *testing.T) {
	dir := t.TempDir()
	// Root fragment: merged state, <a> absorbed, no virtual node left.
	st0, err := store.Open(filepath.Join(dir, "S0"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	root := NewElement("r", "", NewElement("a", "x"))
	if err := st0.PutFragment(&frag.Fragment{ID: 0, Parent: frag.NoParent, Root: root}, 2); err != nil {
		t.Fatal(err)
	}
	if err := st0.Close(); err != nil {
		t.Fatal(err)
	}
	// Child site: fragment 1 still live — the un-deleted duplicate.
	st1, err := store.Open(filepath.Join(dir, "S1"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st1.PutFragment(&frag.Fragment{ID: 1, Parent: 0, Root: NewElement("a", "x")}, 1); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	rest, err := Restore(dir)
	if err != nil {
		t.Fatalf("Restore did not repair the merge-crash duplicate: %v", err)
	}
	defer rest.Close()
	if got := rest.SourceTree().Count(); got != 1 {
		t.Fatalf("restored %d fragments, want 1 (duplicate dropped)", got)
	}
	res, err := rest.Exec(context.Background(), MustPrepare(`//a[text() = "x"]`))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer {
		t.Error("absorbed content lost")
	}
}

// TestIncompleteSeedWipedAndReseeded covers the seed-completion marker: a
// store holding state but no snapshot is a first start that crashed while
// seeding — Deploy wipes and reseeds it, Restore refuses it.
func TestIncompleteSeedWipedAndReseeded(t *testing.T) {
	dir := t.TempDir()
	torn, err := store.Open(filepath.Join(dir, "S0"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := torn.PutFragment(&frag.Fragment{ID: 0, Parent: frag.NoParent,
		Root: NewElement("stale", "")}, 1); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, so no checkpoint — the seed never completed.

	if _, err := Restore(dir); err == nil || !strings.Contains(err.Error(), "never fully seeded") {
		t.Fatalf("Restore on a torn seed: err = %v, want 'never fully seeded'", err)
	}

	doc := NewElement("r", "", NewElement("a", ""))
	forest := NewForest(doc)
	if _, err := forest.Split(doc.Children[0]); err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(forest, Assignment{0: "S0", 1: "S1"}, WithDurability(dir))
	if err != nil {
		t.Fatalf("Deploy did not reseed over the torn seed: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	rest, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Close()
	res, err := rest.Exec(context.Background(), MustPrepare(`//stale`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer {
		t.Error("stale torn-seed content survived the reseed")
	}
}

// TestTopologyChangeRecovery crashes after maintenance that reshapes the
// forest — a cross-site split (whose adoption re-parents the subtree at a
// different site) and a merge that dissolves a fragment — and restores.
// Restore reconstructs the source tree from the recovered fragments (Exec
// against the pre-crash System would be stale: its topology is fixed at
// Deploy), so every algorithm must agree with centralized evaluation of
// the reassembled recovered document.
func TestTopologyChangeRecovery(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	forest, assign := durableForest(t)
	dur, err := Deploy(forest, assign, WithDurability(dir), WithTripletCache())
	if err != nil {
		t.Fatal(err)
	}
	v, err := dur.Materialize(ctx, MustPrepare(durableQueries[0]))
	if err != nil {
		t.Fatal(err)
	}
	// Split <b> (with its <bb> child) out of fragment 1 over to S2, edit
	// it at its new home, then dissolve fragment 3 into the root.
	newID, _, err := v.Split(ctx, 1, []int{1}, "S2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Update(ctx, newID, []UpdateOp{
		{Op: OpSetText, Path: []int{0}, Text: "deeper"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Merge(ctx, 0, 3); err != nil {
		t.Fatal(err)
	}
	dur = nil // crash

	rest, err := Restore(dir, WithTripletCache())
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Close()
	if got := rest.SourceTree().Count(); got != 4 {
		t.Fatalf("restored source tree has %d fragments, want 4 (split added one, merge removed one)", got)
	}
	whole, err := rest.forest.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	queries := append([]string{`//bb[text() = "deeper"]`, `//f`}, durableQueries...)
	for _, src := range queries {
		q := MustPrepare(src)
		want, err := EvaluateLocal(whole, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range Algorithms() {
			res, err := rest.Exec(ctx, q, WithAlgorithm(algo))
			if err != nil {
				t.Fatalf("%s %q: %v", algo, src, err)
			}
			if res.Answer != want {
				t.Errorf("%s %q = %v, centralized reference says %v", algo, src, res.Answer, want)
			}
		}
	}
}

// TestRestoreTrustsSplitMovedParents pins the serving-time-split /
// durable-parent contract: when a split carves out a subtree containing
// other fragments' virtual nodes, the moved sub-fragments are
// re-journaled under their new parent at split time — locally by the
// owning site, remotely through views.setParent — so a crash-Restore
// finds every persisted Parent exact and performs no structural repair
// (the repair path warns; this test requires silence).
func TestRestoreTrustsSplitMovedParents(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	doc := NewElement("catalog", "",
		NewElement("wrap", "",
			NewElement("seca", "", NewElement("a", "x")),
			NewElement("secb", "", NewElement("b", "y")),
			NewElement("k", "v")),
		NewElement("tail", "t"))
	forest := NewForest(doc)
	secA, err := forest.Split(doc.FindAll("seca")[0])
	if err != nil {
		t.Fatal(err)
	}
	secB, err := forest.Split(doc.FindAll("secb")[0])
	if err != nil {
		t.Fatal(err)
	}
	// secA shares the split owner's site (local re-journal path); secB
	// lives elsewhere (remote views.setParent path).
	dur, err := Deploy(forest, Assignment{0: "S0", secA: "S0", secB: "S1"}, WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	v, err := dur.Materialize(ctx, MustPrepare(`//a`))
	if err != nil {
		t.Fatal(err)
	}
	// Split fragment 0 at <wrap>: the carved subtree carries both virtual
	// nodes, so secA and secB now nest under the new fragment.
	wrapID, _, err := v.Split(ctx, 0, []int{0}, "S1")
	if err != nil {
		t.Fatal(err)
	}
	// The view's (cloned) source tree re-parents immediately; the
	// system's own tree is rebuilt from the persisted parents on Restore.
	for _, id := range []FragmentID{secA, secB} {
		e, ok := v.v.SourceTree().Entry(id)
		if !ok || e.Parent != wrapID {
			t.Fatalf("view source tree: fragment %d parent = %+v, want %d", id, e, wrapID)
		}
	}
	dur = nil // crash: recovery replays the WAL, snapshots never taken

	warns := 0
	oldWarn := restoreWarnf
	restoreWarnf = func(format string, args ...any) { warns++ }
	defer func() { restoreWarnf = oldWarn }()

	rest, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Close()
	if warns != 0 {
		t.Fatalf("restore repaired %d persisted parents; split should have journaled them exactly", warns)
	}
	for _, id := range []FragmentID{secA, secB} {
		e, ok := rest.SourceTree().Entry(id)
		if !ok || e.Parent != wrapID {
			t.Fatalf("restored source tree: fragment %d parent = %+v, want %d", id, e, wrapID)
		}
	}
	whole, err := rest.forest.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{`//a[text() = "x"]`, `//b && //k`, `//tail`} {
		q := MustPrepare(src)
		want, err := EvaluateLocal(whole, q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rest.Exec(ctx, q)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if res.Answer != want {
			t.Errorf("%q = %v, centralized reference says %v", src, res.Answer, want)
		}
	}
}

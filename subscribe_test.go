package parbox

import (
	"context"
	"testing"
	"time"
)

// subRecv reads one notification with a timeout.
func subRecv(t *testing.T, sub *Subscription) Notification {
	t.Helper()
	select {
	case n, ok := <-sub.C():
		if !ok {
			t.Fatal("subscription channel closed")
		}
		return n
	case <-time.After(5 * time.Second):
		t.Fatal("no notification within 5s")
	}
	panic("unreachable")
}

// TestSubscribePushesFlips: a standing subscription's answer follows
// content updates through pushed deltas alone — no polling Exec calls —
// and two subscribers of one query share state and both hear the flips.
func TestSubscribePushesFlips(t *testing.T) {
	doc := NewElement("r", "", NewElement("a", ""))
	forest := NewForest(doc)
	if _, err := forest.Split(doc.Children[0]); err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(forest, Assignment{0: "S0", 1: "S1"}, WithTripletCache())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()

	q := MustPrepare(`//b`)
	sub, err := sys.Subscribe(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Answer() {
		t.Fatal("baseline answer true, want false (no <b> yet)")
	}
	// A second subscriber of the same query rides the same solver state.
	sub2, err := sys.Subscribe(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	view, err := sys.Materialize(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a <b> into fragment 1: the site's standing program flips and
	// pushes; both subscribers are notified without any further calls.
	if _, err := view.Update(ctx, 1, []UpdateOp{{Op: OpInsert, Label: "b"}}); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Subscription{sub, sub2} {
		n := subRecv(t, s)
		if !n.Flipped || !n.Answer {
			t.Fatalf("insert notification = %+v, want Flipped && Answer", n)
		}
		if n.Frag != 1 {
			t.Fatalf("notification names fragment %d, want 1", n.Frag)
		}
	}
	if !sub.Answer() || !sub2.Answer() {
		t.Fatal("answers not true after flip")
	}

	// Delete it again: the answer flips back.
	if _, err := view.Update(ctx, 1, []UpdateOp{{Op: OpDelete, Path: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Subscription{sub, sub2} {
		n := subRecv(t, s)
		if !n.Flipped || n.Answer {
			t.Fatalf("delete notification = %+v, want Flipped && !Answer", n)
		}
	}

	// Cancel closes Done; the survivor keeps hearing flips.
	sub2.Cancel()
	select {
	case <-sub2.Done():
	default:
		t.Fatal("cancelled subscription's Done still open")
	}
	if _, err := view.Update(ctx, 1, []UpdateOp{{Op: OpInsert, Label: "b"}}); err != nil {
		t.Fatal(err)
	}
	if n := subRecv(t, sub); !n.Flipped || !n.Answer {
		t.Fatalf("post-cancel notification = %+v, want Flipped && Answer", n)
	}
	select {
	case n := <-sub2.C():
		t.Fatalf("cancelled subscription received %+v", n)
	default:
	}
}

// TestSubscribeBaselineTrue: the registration baseline solves the
// initial answer without an Exec round.
func TestSubscribeBaselineTrue(t *testing.T) {
	doc := NewElement("r", "", NewElement("a", "", NewElement("b", "hi")))
	forest := NewForest(doc)
	if _, err := forest.Split(doc.Children[0]); err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(forest, Assignment{0: "S0", 1: "S1"})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sub, err := sys.Subscribe(context.Background(), MustPrepare(`//b[text() = "hi"]`))
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Answer() {
		t.Fatal("baseline answer false, want true")
	}
	sub.Cancel()
}

// TestSubscribeAgainstOracle: a stream of randomized updates, with every
// subscription answer checked against a freshly executed query after
// each settled notification batch — the polled oracle the pushed path
// must match.
func TestSubscribeAgainstOracle(t *testing.T) {
	doc := NewElement("r", "",
		NewElement("a", ""),
		NewElement("c", ""),
	)
	forest := NewForest(doc)
	if _, err := forest.Split(doc.Children[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := forest.Split(doc.Children[1]); err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(forest, Assignment{0: "S0", 1: "S1", 2: "S2"}, WithTripletCache())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()

	queries := []*Prepared{
		MustPrepare(`//b`),
		MustPrepare(`//a[b/text() = "x"]`),
		MustPrepare(`//c && //b`),
	}
	subs := make([]*Subscription, len(queries))
	for i, q := range queries {
		s, err := sys.Subscribe(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
		// Drain in the background: this test polls Answer(), the oracle,
		// not the notification stream.
		go func(s *Subscription) {
			for {
				select {
				case <-s.C():
				case <-s.Done():
					return
				}
			}
		}(s)
	}
	view, err := sys.Materialize(ctx, MustPrepare(`//r`))
	if err != nil {
		t.Fatal(err)
	}

	steps := []struct {
		frag FragmentID
		ops  []UpdateOp
	}{
		{1, []UpdateOp{{Op: OpInsert, Label: "b", Text: "x"}}},
		{2, []UpdateOp{{Op: OpInsert, Label: "b"}}},
		{1, []UpdateOp{{Op: OpSetText, Path: []int{0}, Text: "y"}}},
		{1, []UpdateOp{{Op: OpDelete, Path: []int{0}}}},
		{2, []UpdateOp{{Op: OpDelete, Path: []int{0}}}},
	}
	for i, step := range steps {
		if _, err := view.Update(ctx, step.frag, step.ops); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		for j, q := range queries {
			want, err := sys.Exec(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			// The push is asynchronous; wait for the subscription to
			// converge on the oracle.
			deadline := time.Now().Add(5 * time.Second)
			for subs[j].Answer() != want.Answer {
				if time.Now().After(deadline) {
					t.Fatalf("step %d query %d: subscription answer %v, oracle %v",
						i, j, subs[j].Answer(), want.Answer)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
}

// Command parbox-site is a TCP site daemon: it loads the fragments the
// manifest assigns to this site, registers the full ParBoX + view
// maintenance protocol, and serves peers until interrupted. A deployment
// is one parbox-site per remote site plus a `parbox remote` coordinator.
//
//	parbox-site -name S1 -manifest work/manifest.txt
//
// The listen address defaults to the manifest's entry for the site.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/manifest"
	"repro/internal/views"
)

func main() {
	name := flag.String("name", "", "site name (required, must appear in the manifest)")
	manifestPath := flag.String("manifest", "", "manifest file (required)")
	listen := flag.String("listen", "", "listen address (default: the manifest's address for this site)")
	flag.Parse()

	if err := run(*name, *manifestPath, *listen); err != nil {
		fmt.Fprintf(os.Stderr, "parbox-site: %v\n", err)
		os.Exit(1)
	}
}

func run(name, manifestPath, listen string) error {
	srv, tr, err := setup(name, manifestPath, listen)
	if err != nil {
		return err
	}
	defer tr.Close()
	defer srv.Close()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("parbox-site %s: shutting down\n", name)
	return nil
}

// setup loads the site's fragments, registers the full protocol and
// starts serving; split out of run so tests can drive it.
func setup(name, manifestPath, listen string) (*cluster.Server, *cluster.TCPTransport, error) {
	if name == "" || manifestPath == "" {
		return nil, nil, fmt.Errorf("-name and -manifest are required")
	}
	m, err := manifest.ParseFile(manifestPath)
	if err != nil {
		return nil, nil, err
	}
	siteID := frag.SiteID(name)
	addr, ok := m.Sites[siteID]
	if !ok {
		return nil, nil, fmt.Errorf("site %s not in manifest", name)
	}
	if listen == "" {
		if addr == manifest.LocalAddr {
			return nil, nil, fmt.Errorf("site %s is declared local; give -listen explicitly", name)
		}
		listen = addr
	}

	// Peers (for FullDist / NaiveDistributed hops between sites).
	peers := make(map[frag.SiteID]string)
	for s, a := range m.Sites {
		if s != siteID && a != manifest.LocalAddr {
			peers[s] = a
		}
	}
	tr := cluster.NewTCPTransport(peers)

	site := cluster.NewSite(siteID)
	frags, _, err := m.LoadFragments(siteID)
	if err != nil {
		tr.Close()
		return nil, nil, err
	}
	total := 0
	for _, fr := range frags {
		site.AddFragment(fr)
		total += fr.Size()
	}
	cost := cluster.DefaultCostModel()
	core.RegisterHandlers(site, tr, cost)
	views.RegisterHandlers(site, tr)

	srv, err := cluster.Serve(site, listen)
	if err != nil {
		tr.Close()
		return nil, nil, err
	}
	fmt.Printf("parbox-site %s: serving %d fragments (%d nodes) on %s\n",
		name, len(frags), total, srv.Addr())
	return srv, tr, nil
}

// Command parbox-site is a TCP site daemon: it loads the fragments the
// manifest assigns to this site, registers the full ParBoX + view
// maintenance protocol, and serves peers until interrupted. A deployment
// is one parbox-site per remote site plus a `parbox remote` coordinator.
//
//	parbox-site -name S1 -manifest work/manifest.txt
//
// The listen address defaults to the manifest's entry for the site.
//
// With -data-dir the site is durable: every fragment mutation is written
// to a segmented, CRC-checked WAL and periodically checkpointed into
// snapshots. On a restart the daemon recovers from the data dir instead of
// the manifest's XML files — fragment versions are restored exactly, so
// coordinators using the versioned triplet cache keep their warm entries —
// and fragments are loaded lazily (bounded by -max-resident, 0 =
// unbounded). SIGTERM/SIGINT trigger a graceful flush-and-checkpoint
// shutdown: the listener closes first and in-flight requests drain —
// their responses are written before the connections close — then the
// store writes a final snapshot, so the next start recovers without
// replaying any WAL.
//
// The daemon speaks the multiplexed wire protocol v2 exclusively: any
// number of coordinator requests are in flight per connection, and a
// legacy v1 peer is rejected with a readable error (see
// internal/cluster/wirev2.go for the frame layout and handshake).
//
// With -http addr the daemon additionally serves a live introspection
// plane: /metrics (Prometheus text: the site's visit/message/byte/step
// counters and latency histogram), /healthz, /tracez (recent traced
// requests as span trees, ?min= filters by duration), and
// /debug/pprof. The same counters are also answered over the data
// plane via the admission-exempt obs.stats RPC, which is what
// `parbox top -manifest …` scrapes.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/views"
)

// config collects the daemon's command-line settings.
type config struct {
	name         string
	manifestPath string
	listen       string
	dataDir      string
	maxResident  int
	syncWrites   bool
	admission    int
	// httpAddr, when non-empty, serves the introspection plane
	// (/metrics, /healthz, /tracez, /debug/pprof) on that address.
	httpAddr string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.name, "name", "", "site name (required, must appear in the manifest)")
	flag.StringVar(&cfg.manifestPath, "manifest", "", "manifest file (required)")
	flag.StringVar(&cfg.listen, "listen", "", "listen address (default: the manifest's address for this site)")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durable store directory: WAL + snapshots; recovers from it on restart")
	flag.IntVar(&cfg.maxResident, "max-resident", 0, "bound on in-memory fragments with -data-dir (0 = unbounded)")
	flag.BoolVar(&cfg.syncWrites, "sync-writes", false, "fsync every WAL append (survive machine crashes, not just process crashes)")
	flag.IntVar(&cfg.admission, "admission", 0, "max concurrently admitted requests; excess is shed with a retryable overload status (0 = unbounded)")
	flag.StringVar(&cfg.httpAddr, "http", "", "introspection HTTP address serving /metrics, /healthz, /tracez and /debug/pprof (empty = off)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "parbox-site: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	d, err := setup(cfg)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("parbox-site %s: shutting down\n", cfg.name)
	return d.Close()
}

// daemon bundles one running site's server, transport and (optional)
// durable store, so shutdown happens in the one safe order.
type daemon struct {
	srv  *cluster.Server
	tr   *cluster.TCPTransport
	st   *store.Store
	site *cluster.Site
	// httpSrv/httpLn are the -http introspection server (nil without it).
	httpSrv *http.Server
	httpLn  net.Listener
}

// Close shuts the daemon down gracefully: stop accepting work, then
// checkpoint and close the store (a flush-and-checkpoint, never an exit
// mid-write), then drop the peer connections. Safe to call once.
func (d *daemon) Close() error {
	var first error
	if d.httpSrv != nil {
		d.httpSrv.Close()
	}
	if d.srv != nil {
		if err := d.srv.Close(); err != nil {
			first = err
		}
	}
	if d.st != nil {
		if err := d.site.StoreErr(); err != nil && first == nil {
			first = err
		}
		if err := d.st.Close(); err != nil && first == nil {
			first = err
		}
	}
	if d.tr != nil {
		if err := d.tr.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// setup loads or recovers the site's fragments, registers the full
// protocol and starts serving; split out of run so tests can drive it.
func setup(cfg config) (*daemon, error) {
	name, manifestPath, listen := cfg.name, cfg.manifestPath, cfg.listen
	dataDir, maxResident := cfg.dataDir, cfg.maxResident
	syncWrites, admission := cfg.syncWrites, cfg.admission
	if name == "" || manifestPath == "" {
		return nil, fmt.Errorf("-name and -manifest are required")
	}
	m, err := manifest.ParseFile(manifestPath)
	if err != nil {
		return nil, err
	}
	siteID := frag.SiteID(name)
	addr, ok := m.Sites[siteID]
	if !ok {
		return nil, fmt.Errorf("site %s not in manifest", name)
	}
	if listen == "" {
		if addr == manifest.LocalAddr {
			return nil, fmt.Errorf("site %s is declared local; give -listen explicitly", name)
		}
		listen = addr
	}

	// Peers (for FullDist / NaiveDistributed hops between sites).
	peers := make(map[frag.SiteID]string)
	for s, a := range m.Sites {
		if s != siteID && a != manifest.LocalAddr {
			peers[s] = a
		}
	}
	tr := cluster.NewTCPTransport(peers)
	fail := func(err error) (*daemon, error) {
		tr.Close()
		return nil, err
	}

	site := cluster.NewSite(siteID)
	// Recursive-algorithm hops addressed to this very site (a fragment
	// whose sub-fragment lives here too) dispatch in-process instead of
	// dialing our own listener.
	tr.Local(site)
	var st *store.Store
	if dataDir != "" {
		// OpenSeedable wipes a first start that crashed mid-seeding (state
		// but no completing checkpoint): the manifest is still
		// authoritative, and only the store's own files are touched — the
		// operator's directory may hold unrelated content.
		if st, err = store.OpenSeedable(dataDir, store.Options{SyncWrites: syncWrites}); err != nil {
			return fail(err)
		}
	}
	var origin string
	var count, total int
	if st != nil && !st.Empty() {
		// Restart: the durable store is authoritative; the manifest's XML
		// files describe the original deployment, not the maintained state.
		// Versions are restored exactly and fragments load lazily, so a
		// site with a big forest is serving again without decoding a tree.
		for id, v := range st.Versions() {
			site.RestoreVersion(id, v)
		}
		site.AttachStore(st, maxResident)
		ts, err := st.Triplets()
		if err != nil {
			st.Discard()
			return fail(err)
		}
		restorer := core.NewTripletRestorer()
		for _, te := range ts {
			restorer.Restore(site, te.Frag, te.Version, te.FP, te.Enc)
		}
		stats := st.Stats()
		count = stats.LiveFragments
		origin = fmt.Sprintf("recovered from %s (snapshot %d, %d cached triplets)",
			dataDir, stats.SnapshotSeq, len(ts))
	} else {
		frags, _, err := m.LoadFragments(siteID)
		if err != nil {
			if st != nil {
				st.Discard()
			}
			return fail(err)
		}
		for _, fr := range frags {
			site.AddFragment(fr)
			total += fr.Size()
		}
		count = len(frags)
		origin = fmt.Sprintf("loaded %d nodes from the manifest", total)
		if st != nil {
			// Seed the fresh store, then journal everything from here on.
			// The checkpoint marks seeding complete: a crash before it
			// leaves a store the next start wipes and reseeds instead of
			// serving a fragment subset.
			for _, fr := range frags {
				if err := st.PutFragment(fr, site.FragmentVersion(fr.ID)); err != nil {
					st.Discard()
					return fail(err)
				}
			}
			if err := st.Checkpoint(); err != nil {
				st.Discard()
				return fail(err)
			}
			site.AttachStore(st, maxResident)
		}
	}
	cost := cluster.DefaultCostModel()
	core.RegisterHandlers(site, tr, cost)
	views.RegisterHandlers(site, tr)
	// Serving-tier protocol: health probes plus the fragment clone/install
	// pair the live rebalancer migrates replicas with.
	serve.RegisterHandlers(site)
	if admission > 0 {
		// Bounded admission: past the cap, requests are shed with a typed,
		// retryable overload status instead of queueing without bound. The
		// cost estimator comes from core.RegisterHandlers above; probes and
		// the rebalancer's control plane stay exempt (serve.RegisterHandlers)
		// so a saturated site still proves it is alive.
		site.SetAdmission(cluster.AdmissionLimits{MaxInflight: admission})
	}

	// The daemon serves wire protocol v2 only: a version-skewed v1
	// coordinator is answered with a clean "requires wire protocol v2"
	// error instead of interleaved-frame corruption. Close drains
	// in-flight v2 requests before the connections go away.
	// Live observability: the obs.stats RPC answers `parbox top` over the
	// ordinary transport (admission-exempt, excluded from its own
	// counters), and -http serves the same data as Prometheus text plus
	// the slow-request trace ring and pprof.
	cluster.RegisterStatsHandler(site)

	srv, err := cluster.ServeWith(site, listen, cluster.ServeConfig{RequireV2: true})
	if err != nil {
		if st != nil {
			st.Discard()
		}
		return fail(err)
	}
	d := &daemon{srv: srv, tr: tr, st: st, site: site}
	if cfg.httpAddr != "" {
		ln, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("introspection listen %s: %w", cfg.httpAddr, err)
		}
		mux := obs.NewMux(obs.MuxConfig{
			Metrics: func(p *obs.Prom) {
				snap := site.Stats().Snapshot()
				snap.Site = name
				p.SiteStatsProm(snap)
			},
			Healthz: func() (bool, string) { return true, fmt.Sprintf("ok site=%s\n", name) },
			Tracez:  site.TraceRing().Records,
		})
		d.httpLn = ln
		d.httpSrv = &http.Server{Handler: mux}
		go d.httpSrv.Serve(ln)
		fmt.Printf("parbox-site %s: introspection on http://%s\n", name, ln.Addr())
	}
	fmt.Printf("parbox-site %s: serving %d fragments on %s (%s)\n",
		name, count, srv.Addr(), origin)
	return d, nil
}

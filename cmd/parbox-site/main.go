// Command parbox-site is a TCP site daemon: it loads the fragments the
// manifest assigns to this site, registers the full ParBoX + view
// maintenance protocol, and serves peers until interrupted. A deployment
// is one parbox-site per remote site plus a `parbox remote` coordinator.
//
//	parbox-site -name S1 -manifest work/manifest.txt
//
// The listen address defaults to the manifest's entry for the site.
//
// With -data-dir the site is durable: every fragment mutation is written
// to a segmented, CRC-checked WAL and periodically checkpointed into
// snapshots. On a restart the daemon recovers from the data dir instead of
// the manifest's XML files — fragment versions are restored exactly, so
// coordinators using the versioned triplet cache keep their warm entries —
// and fragments are loaded lazily (bounded by -max-resident, 0 =
// unbounded). SIGTERM/SIGINT trigger a graceful flush-and-checkpoint
// shutdown: the listener closes first and in-flight requests drain —
// their responses are written before the connections close — then the
// store writes a final snapshot, so the next start recovers without
// replaying any WAL.
//
// The daemon speaks the multiplexed wire protocol v2 exclusively: any
// number of coordinator requests are in flight per connection, and a
// legacy v1 peer is rejected with a readable error (see
// internal/cluster/wirev2.go for the frame layout and handshake).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/manifest"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/views"
)

func main() {
	name := flag.String("name", "", "site name (required, must appear in the manifest)")
	manifestPath := flag.String("manifest", "", "manifest file (required)")
	listen := flag.String("listen", "", "listen address (default: the manifest's address for this site)")
	dataDir := flag.String("data-dir", "", "durable store directory: WAL + snapshots; recovers from it on restart")
	maxResident := flag.Int("max-resident", 0, "bound on in-memory fragments with -data-dir (0 = unbounded)")
	syncWrites := flag.Bool("sync-writes", false, "fsync every WAL append (survive machine crashes, not just process crashes)")
	admission := flag.Int("admission", 0, "max concurrently admitted requests; excess is shed with a retryable overload status (0 = unbounded)")
	flag.Parse()

	if err := run(*name, *manifestPath, *listen, *dataDir, *maxResident, *syncWrites, *admission); err != nil {
		fmt.Fprintf(os.Stderr, "parbox-site: %v\n", err)
		os.Exit(1)
	}
}

func run(name, manifestPath, listen, dataDir string, maxResident int, syncWrites bool, admission int) error {
	d, err := setup(name, manifestPath, listen, dataDir, maxResident, syncWrites, admission)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("parbox-site %s: shutting down\n", name)
	return d.Close()
}

// daemon bundles one running site's server, transport and (optional)
// durable store, so shutdown happens in the one safe order.
type daemon struct {
	srv  *cluster.Server
	tr   *cluster.TCPTransport
	st   *store.Store
	site *cluster.Site
}

// Close shuts the daemon down gracefully: stop accepting work, then
// checkpoint and close the store (a flush-and-checkpoint, never an exit
// mid-write), then drop the peer connections. Safe to call once.
func (d *daemon) Close() error {
	var first error
	if d.srv != nil {
		if err := d.srv.Close(); err != nil {
			first = err
		}
	}
	if d.st != nil {
		if err := d.site.StoreErr(); err != nil && first == nil {
			first = err
		}
		if err := d.st.Close(); err != nil && first == nil {
			first = err
		}
	}
	if d.tr != nil {
		if err := d.tr.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// setup loads or recovers the site's fragments, registers the full
// protocol and starts serving; split out of run so tests can drive it.
func setup(name, manifestPath, listen, dataDir string, maxResident int, syncWrites bool, admission int) (*daemon, error) {
	if name == "" || manifestPath == "" {
		return nil, fmt.Errorf("-name and -manifest are required")
	}
	m, err := manifest.ParseFile(manifestPath)
	if err != nil {
		return nil, err
	}
	siteID := frag.SiteID(name)
	addr, ok := m.Sites[siteID]
	if !ok {
		return nil, fmt.Errorf("site %s not in manifest", name)
	}
	if listen == "" {
		if addr == manifest.LocalAddr {
			return nil, fmt.Errorf("site %s is declared local; give -listen explicitly", name)
		}
		listen = addr
	}

	// Peers (for FullDist / NaiveDistributed hops between sites).
	peers := make(map[frag.SiteID]string)
	for s, a := range m.Sites {
		if s != siteID && a != manifest.LocalAddr {
			peers[s] = a
		}
	}
	tr := cluster.NewTCPTransport(peers)
	fail := func(err error) (*daemon, error) {
		tr.Close()
		return nil, err
	}

	site := cluster.NewSite(siteID)
	// Recursive-algorithm hops addressed to this very site (a fragment
	// whose sub-fragment lives here too) dispatch in-process instead of
	// dialing our own listener.
	tr.Local(site)
	var st *store.Store
	if dataDir != "" {
		// OpenSeedable wipes a first start that crashed mid-seeding (state
		// but no completing checkpoint): the manifest is still
		// authoritative, and only the store's own files are touched — the
		// operator's directory may hold unrelated content.
		if st, err = store.OpenSeedable(dataDir, store.Options{SyncWrites: syncWrites}); err != nil {
			return fail(err)
		}
	}
	var origin string
	var count, total int
	if st != nil && !st.Empty() {
		// Restart: the durable store is authoritative; the manifest's XML
		// files describe the original deployment, not the maintained state.
		// Versions are restored exactly and fragments load lazily, so a
		// site with a big forest is serving again without decoding a tree.
		for id, v := range st.Versions() {
			site.RestoreVersion(id, v)
		}
		site.AttachStore(st, maxResident)
		ts, err := st.Triplets()
		if err != nil {
			st.Discard()
			return fail(err)
		}
		restorer := core.NewTripletRestorer()
		for _, te := range ts {
			restorer.Restore(site, te.Frag, te.Version, te.FP, te.Enc)
		}
		stats := st.Stats()
		count = stats.LiveFragments
		origin = fmt.Sprintf("recovered from %s (snapshot %d, %d cached triplets)",
			dataDir, stats.SnapshotSeq, len(ts))
	} else {
		frags, _, err := m.LoadFragments(siteID)
		if err != nil {
			if st != nil {
				st.Discard()
			}
			return fail(err)
		}
		for _, fr := range frags {
			site.AddFragment(fr)
			total += fr.Size()
		}
		count = len(frags)
		origin = fmt.Sprintf("loaded %d nodes from the manifest", total)
		if st != nil {
			// Seed the fresh store, then journal everything from here on.
			// The checkpoint marks seeding complete: a crash before it
			// leaves a store the next start wipes and reseeds instead of
			// serving a fragment subset.
			for _, fr := range frags {
				if err := st.PutFragment(fr, site.FragmentVersion(fr.ID)); err != nil {
					st.Discard()
					return fail(err)
				}
			}
			if err := st.Checkpoint(); err != nil {
				st.Discard()
				return fail(err)
			}
			site.AttachStore(st, maxResident)
		}
	}
	cost := cluster.DefaultCostModel()
	core.RegisterHandlers(site, tr, cost)
	views.RegisterHandlers(site, tr)
	// Serving-tier protocol: health probes plus the fragment clone/install
	// pair the live rebalancer migrates replicas with.
	serve.RegisterHandlers(site)
	if admission > 0 {
		// Bounded admission: past the cap, requests are shed with a typed,
		// retryable overload status instead of queueing without bound. The
		// cost estimator comes from core.RegisterHandlers above; probes and
		// the rebalancer's control plane stay exempt (serve.RegisterHandlers)
		// so a saturated site still proves it is alive.
		site.SetAdmission(cluster.AdmissionLimits{MaxInflight: admission})
	}

	// The daemon serves wire protocol v2 only: a version-skewed v1
	// coordinator is answered with a clean "requires wire protocol v2"
	// error instead of interleaved-frame corruption. Close drains
	// in-flight v2 requests before the connections go away.
	srv, err := cluster.ServeWith(site, listen, cluster.ServeConfig{RequireV2: true})
	if err != nil {
		if st != nil {
			st.Discard()
		}
		return fail(err)
	}
	fmt.Printf("parbox-site %s: serving %d fragments on %s (%s)\n",
		name, count, srv.Addr(), origin)
	return &daemon{srv: srv, tr: tr, st: st, site: site}, nil
}

package main

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/manifest"
	"repro/internal/serve"
	"repro/internal/xpath"
)

// writeOverloadDeployment is writeReplicatedDeployment's layout — a
// 2x-replicated ring over four daemons — with fat fragments: each
// carries enough padding nodes that one bottomUp pass runs well past
// the Go scheduler's async-preemption slice (~10ms). That matters on a
// small CI host: a site daemon's handlers only genuinely overlap — the
// thing a bound on *concurrently admitted* work can observe — if a
// running handler can be preempted while the next request is admitted.
// Against microsecond toy fragments, a single-core box serializes the
// handlers perfectly and no admission bound is ever hit, whatever the
// offered load.
func writeOverloadDeployment(t *testing.T) (dir string, daemonManifests map[string]string) {
	t.Helper()
	dir = t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fat := func(inner string) string {
		return "<section>" + inner + strings.Repeat("<pad><x>y</x></pad>", 60000) + "</section>"
	}
	write("f0.xml", `<catalog><parbox.fragment id="1"/><parbox.fragment id="2"/><parbox.fragment id="3"/><parbox.fragment id="4"/></catalog>`)
	write("f1.xml", fat(`<name>alpha</name><quantity>2</quantity>`))
	write("f2.xml", fat(`<name>beta</name><keyword>k</keyword>`))
	write("f3.xml", fat(`<emph>e</emph><listitem>x</listitem>`))
	write("f4.xml", fat(`<name>delta</name><quantity>9</quantity>`))

	sites := `
site S0 local
site S1 127.0.0.1:0
site S2 127.0.0.1:0
site S3 127.0.0.1:0
site S4 127.0.0.1:0
`
	write("manifest.txt", sites+`
frag 0 -1 S0 f0.xml
frag 1 0 S1 f1.xml
frag 2 0 S2 f2.xml
frag 3 0 S3 f3.xml
frag 4 0 S4 f4.xml
`)
	// S4 additionally hosts f2: the hedge pass routes fragment 2 to
	// {S2, S4} so the slow site only ever receives singleton, hedgeable
	// fragment-3 jobs. A daemon hosting a fragment the coordinator's
	// replica map ignores is harmless (the shed pass does exactly that).
	daemonManifests = map[string]string{}
	host := map[string][]string{
		"S1": {"frag 1 0 S1 f1.xml", "frag 4 0 S1 f4.xml"},
		"S2": {"frag 2 0 S2 f2.xml", "frag 1 0 S2 f1.xml"},
		"S3": {"frag 3 0 S3 f3.xml", "frag 2 0 S3 f2.xml"},
		"S4": {"frag 4 0 S4 f4.xml", "frag 3 0 S4 f3.xml", "frag 2 0 S4 f2.xml"},
	}
	for name, lines := range host {
		fname := "manifest-" + name + ".txt"
		write(fname, sites+"\nfrag 0 -1 S0 f0.xml\n"+strings.Join(lines, "\n")+"\n")
		daemonManifests[name] = filepath.Join(dir, fname)
	}
	return dir, daemonManifests
}

// overloadWorld is one coordinator wired against running daemons: the
// engine, its serving tier, and the transports underneath.
type overloadWorld struct {
	eng   *core.Engine
	tier  *serve.Tier
	tcp   *cluster.TCPTransport
	ft    *cluster.FaultyTransport
	progs []*xpath.Program
	want  []bool
}

var overloadQueries = []string{
	`//name && //quantity`,
	`//keyword || //absent`,
	`//listitem[text() = "x"]`,
	`//name[text() = "beta"] && //emph`,
	`//absent`,
}

// newOverloadWorld builds a coordinator over the given daemon addresses:
// local S0 with the root fragment, a replica-aware tier, and reference
// answers from an unfaulted in-memory deployment.
func newOverloadWorld(t *testing.T, m *manifest.Manifest, addrs map[frag.SiteID]string,
	replicas core.ReplicaMap, opt serve.Options, pol backoff.Policy) *overloadWorld {
	t.Helper()
	cost := cluster.DefaultCostModel()
	tcp := cluster.NewTCPTransport(addrs)
	t.Cleanup(func() { tcp.Close() })
	s0 := cluster.NewSite("S0")
	frags, _, err := m.LoadFragments("S0")
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frags {
		s0.AddFragment(fr)
	}
	ft := &cluster.FaultyTransport{Inner: tcp}
	core.RegisterHandlers(s0, ft, cost)
	serve.RegisterHandlers(s0)
	tcp.Local(s0)

	forest, assign, err := loadReferenceForest(m)
	if err != nil {
		t.Fatal(err)
	}
	st, err := frag.BuildSourceTree(forest, assign)
	if err != nil {
		t.Fatal(err)
	}
	tier := serve.NewTier(ft, "S0", forest, replicas, opt)
	eng := core.NewEngine(ft, "S0", st, cost)
	eng.SetTier(tier)
	eng.SetRetryPolicy(pol)

	refEng, err := core.Deploy(cluster.New(cost), forest, assign)
	if err != nil {
		t.Fatal(err)
	}
	w := &overloadWorld{eng: eng, tier: tier, tcp: tcp, ft: ft}
	ctx := context.Background()
	for _, src := range overloadQueries {
		prog := xpath.MustCompileString(src)
		rep, err := refEng.ParBoX(ctx, prog)
		if err != nil {
			t.Fatal(err)
		}
		w.progs = append(w.progs, prog)
		w.want = append(w.want, rep.Answer)
	}
	return w
}

// burst fires workers×perWorker queries, asserts every answer against
// the reference, and returns the sorted per-query latencies plus the
// summed hedge counters.
func (w *overloadWorld) burst(t *testing.T, workers, perWorker int) (lat []time.Duration, hedges, hedgeWins int64) {
	t.Helper()
	lat = make([]time.Duration, workers*perWorker)
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	ctx := context.Background()
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			<-start
			for q := 0; q < perWorker; q++ {
				i := (wk + q) % len(w.progs)
				t0 := time.Now()
				rep, err := w.eng.Run(ctx, core.AlgoParBoX, w.progs[i])
				took := time.Since(t0)
				if err != nil {
					t.Errorf("worker %d %q: %v", wk, overloadQueries[i], err)
					return
				}
				if rep.Answer != w.want[i] {
					t.Errorf("worker %d %q = %v, want %v", wk, overloadQueries[i], rep.Answer, w.want[i])
					return
				}
				mu.Lock()
				lat[wk*perWorker+q] = took
				hedges += rep.Hedges
				hedgeWins += rep.HedgeWins
				mu.Unlock()
			}
		}(wk)
	}
	close(start)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat, hedges, hedgeWins
}

func startDaemons(t *testing.T, bin string, daemonManifests map[string]string, extra ...string) (map[frag.SiteID]*exec.Cmd, map[frag.SiteID]string) {
	t.Helper()
	daemons := map[frag.SiteID]*exec.Cmd{}
	addrs := map[frag.SiteID]string{}
	for _, name := range []string{"S1", "S2", "S3", "S4"} {
		args := append([]string{"-name", name,
			"-manifest", daemonManifests[name], "-listen", "127.0.0.1:0"}, extra...)
		cmd, addr := startDaemon(t, bin, args...)
		daemons[frag.SiteID(name)] = cmd
		addrs[frag.SiteID(name)] = addr
	}
	t.Cleanup(func() {
		for _, cmd := range daemons {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return daemons, addrs
}

// ringReplicas is the coordinator-side replica map matching the
// deployment's 2x ring.
func ringReplicas() core.ReplicaMap {
	return core.ReplicaMap{
		0: {"S0"},
		1: {"S1", "S2"},
		2: {"S2", "S3"},
		3: {"S3", "S4"},
		4: {"S4", "S1"},
	}
}

// TestDaemonOverloadShedding is the overload smoke CI runs, in two
// independent passes against real site daemons serving fat fragments:
//
// Shed pass: daemons run with a tight -admission 2 while a 16-worker
// burst offers far more concurrency. The daemons must shed for real —
// the coordinator's transport metrics record nonzero typed
// StatusOverloaded responses — and every shed must be recovered by a
// failover or a budgeted, backed-off retry: zero wrong answers, zero
// errors.
//
// Hedge pass: fresh unbounded daemons, with the coordinator's transport
// shimmed so one site serves ~50x slower than its siblings. With
// hedging armed, the slow replica's jobs are raced against its sibling,
// so the burst's p99 stays far below the injected delay — while the
// shim guarantees any unhedged path through the slow site would eat the
// full delay.
func TestDaemonOverloadShedding(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives real daemon processes")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "parbox-site")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building parbox-site: %v\n%s", err, out)
	}
	dir, daemonManifests := writeOverloadDeployment(t)
	m, err := manifest.ParseFile(filepath.Join(dir, "manifest.txt"))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("shed", func(t *testing.T) {
		_, addrs := startDaemons(t, bin, daemonManifests, "-admission", "2")
		w := newOverloadWorld(t, m, addrs, ringReplicas(),
			serve.Options{ProbeInterval: -1},
			backoff.Policy{Budget: 64})
		lat, _, _ := w.burst(t, 16, 2)
		sheds := w.tcp.Metrics().TotalSheds()
		if sheds == 0 {
			t.Error("16-worker burst against -admission 2 daemons recorded zero sheds")
		}
		t.Logf("sheds=%d p50=%v max=%v", sheds, lat[len(lat)/2], lat[len(lat)-1])
	})

	t.Run("hedge", func(t *testing.T) {
		_, addrs := startDaemons(t, bin, daemonManifests)
		// The tier's replica map routes only fragment 3 to the slow site,
		// so its jobs always have a sibling to hedge to (a job covering
		// two fragments can only hedge onto a site holding both).
		replicas := ringReplicas()
		replicas[2] = []frag.SiteID{"S2", "S4"}
		w := newOverloadWorld(t, m, addrs, replicas,
			serve.Options{ProbeInterval: -1, Hedging: true, HedgeDelay: 25 * time.Millisecond},
			backoff.Policy{Budget: 16})
		// The shim must dominate any queueing a loaded single-core CI host
		// adds to the healthy sites, or "slow replica" and "busy box"
		// become indistinguishable and a hedge can lose its race to pure
		// CPU contention.
		const slowDelay = 10 * time.Second
		w.ft.SlowSite("S3", slowDelay, nil)

		lat, hedges, hedgeWins := w.burst(t, 16, 7)
		if hedges == 0 {
			t.Error("no hedge fired against a slow replica with a 25ms hedge delay")
		}
		if hedgeWins == 0 {
			t.Error("no hedge ever won against a 10s-slow replica")
		}
		if hedgeWins > hedges {
			t.Errorf("%d hedge wins out of %d hedges (double-counting)", hedgeWins, hedges)
		}
		p99 := lat[len(lat)*99/100]
		if p99 >= slowDelay/2 {
			t.Errorf("query p99 = %v, want < %v (hedging should cut the %v slow-replica tail)",
				p99, slowDelay/2, slowDelay)
		}
		t.Logf("hedges=%d wins=%d p50=%v p99=%v max=%v",
			hedges, hedgeWins, lat[len(lat)/2], p99, lat[len(lat)-1])
	})
}

package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/manifest"
	"repro/internal/xpath"
)

func writeDeployment(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("f0.xml", `<catalog><a>x</a><parbox.fragment id="1"/></catalog>`)
	write("f1.xml", `<section><b>y</b></section>`)
	write("manifest.txt", `
site S0 local
site S1 127.0.0.1:0
frag 0 -1 S0 f0.xml
frag 1 0 S1 f1.xml
`)
	return dir
}

func TestSiteDaemonServesQueries(t *testing.T) {
	dir := writeDeployment(t)
	manifestPath := filepath.Join(dir, "manifest.txt")

	// Start the S1 daemon on an ephemeral port.
	d, err := setup(config{name: "S1", manifestPath: manifestPath, listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := d.srv

	// Coordinator side: local S0 plus the daemon's real address.
	m, err := manifest.ParseFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	coordTr := cluster.NewTCPTransport(map[frag.SiteID]string{"S1": srv.Addr()})
	defer coordTr.Close()
	cost := cluster.DefaultCostModel()
	s0 := cluster.NewSite("S0")
	frags, sizes, err := m.LoadFragments("S0")
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frags {
		s0.AddFragment(fr)
	}
	core.RegisterHandlers(s0, coordTr, cost)
	coordTr.Local(s0)
	st, err := m.SourceTree(sizes)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(coordTr, "S0", st, cost)
	rep, err := eng.ParBoX(context.Background(), xpath.MustCompileString(`//a[text() = "x"] && //b[text() = "y"]`))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Answer {
		t.Error("expected true through the daemon")
	}
	if rep.Visits["S1"] != 1 {
		t.Errorf("daemon visits = %d, want 1", rep.Visits["S1"])
	}
}

// TestSiteDaemonIntrospection: a daemon started with -http serves its
// live counters as Prometheus text and answers health checks; the
// counters move when the daemon serves a query.
func TestSiteDaemonIntrospection(t *testing.T) {
	dir := writeDeployment(t)
	manifestPath := filepath.Join(dir, "manifest.txt")
	d, err := setup(config{name: "S1", manifestPath: manifestPath,
		listen: "127.0.0.1:0", httpAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.httpLn.Addr().String()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/healthz"); !strings.Contains(body, "ok site=S1") {
		t.Errorf("/healthz = %q", body)
	}
	if body := get("/metrics"); !strings.Contains(body, `parbox_site_visits_total{site="S1"} 0`) {
		t.Errorf("/metrics before any query lacks the zero visit counter:\n%s", body)
	}

	// Serve one query through the daemon, then the counter must read 1.
	m, err := manifest.ParseFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	coordTr := cluster.NewTCPTransport(map[frag.SiteID]string{"S1": d.srv.Addr()})
	defer coordTr.Close()
	cost := cluster.DefaultCostModel()
	s0 := cluster.NewSite("S0")
	frags, sizes, err := m.LoadFragments("S0")
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frags {
		s0.AddFragment(fr)
	}
	core.RegisterHandlers(s0, coordTr, cost)
	coordTr.Local(s0)
	st, err := m.SourceTree(sizes)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(coordTr, "S0", st, cost)
	if _, err := eng.ParBoX(context.Background(), xpath.MustCompileString(`//b[text() = "y"]`)); err != nil {
		t.Fatal(err)
	}
	if body := get("/metrics"); !strings.Contains(body, `parbox_site_visits_total{site="S1"} 1`) {
		t.Errorf("/metrics after one query does not show the visit:\n%s", body)
	}
}

func TestSetupErrors(t *testing.T) {
	dir := writeDeployment(t)
	manifestPath := filepath.Join(dir, "manifest.txt")
	cases := []struct {
		name, mpath, listen string
	}{
		{"", manifestPath, ""},                     // missing name
		{"S1", "", ""},                             // missing manifest
		{"SX", manifestPath, ""},                   // unknown site
		{"S0", manifestPath, ""},                   // local site needs -listen
		{"S1", filepath.Join(dir, "nope.txt"), ""}, // missing manifest file
		{"S1", manifestPath, "256.0.0.1:99999"},    // bad listen address
	}
	for _, c := range cases {
		d, err := setup(config{name: c.name, manifestPath: c.mpath, listen: c.listen})
		if err == nil {
			d.Close()
			t.Errorf("setup(%q,%q,%q) succeeded, want error", c.name, c.mpath, c.listen)
		}
	}
}

package main

import (
	"bufio"
	"context"
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/manifest"
	"repro/internal/views"
	"repro/internal/xpath"
)

var servingAddr = regexp.MustCompile(`serving \d+ fragments on ([0-9.]+:\d+)`)

// startDaemon launches the built parbox-site binary and waits for its
// "serving" banner, returning the process and the address it bound.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := servingAddr.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
				break
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("daemon exited before serving")
		}
		return cmd, addr
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("daemon did not report its address in time")
	}
	panic("unreachable")
}

// TestDaemonCrashRecovery is the recovery smoke CI runs: a durable site
// daemon receives view-maintenance updates over TCP, is SIGKILLed without
// any chance to checkpoint, and is restarted from its data dir alone. The
// recovered deployment must answer ParBoX queries exactly like an
// in-memory reference that applied the same updates and never died.
func TestDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon process")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "parbox-site")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building parbox-site: %v\n%s", err, out)
	}

	dir := writeDeployment(t)
	manifestPath := filepath.Join(dir, "manifest.txt")
	dataDir := filepath.Join(tmp, "s1-data")
	args := []string{"-name", "S1", "-manifest", manifestPath,
		"-listen", "127.0.0.1:0", "-data-dir", dataDir}

	m, err := manifest.ParseFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cost := cluster.DefaultCostModel()
	prog := xpath.MustCompileString(`//a[text() = "x"] && //b`)

	// newCoordinator wires a local S0 (fragments from the manifest)
	// against the daemon at addr and returns the transport plus engine.
	newCoordinator := func(addr string) (*cluster.TCPTransport, *core.Engine, *frag.SourceTree) {
		t.Helper()
		tr := cluster.NewTCPTransport(map[frag.SiteID]string{"S1": addr})
		s0 := cluster.NewSite("S0")
		frags, sizes, err := m.LoadFragments("S0")
		if err != nil {
			t.Fatal(err)
		}
		for _, fr := range frags {
			s0.AddFragment(fr)
		}
		core.RegisterHandlers(s0, tr, cost)
		views.RegisterHandlers(s0, tr)
		tr.Local(s0)
		st, err := m.SourceTree(sizes)
		if err != nil {
			t.Fatal(err)
		}
		return tr, core.NewEngine(tr, "S0", st, cost), st
	}

	// Phase 1: run, update, SIGKILL mid-run.
	cmd, addr := startDaemon(t, bin, args...)
	tr1, _, st1 := newCoordinator(addr)
	view, err := views.Materialize(ctx, tr1, "S0", st1, prog)
	if err != nil {
		t.Fatal(err)
	}
	var ops []views.UpdateOp
	for i := 0; i < 5; i++ {
		op := views.UpdateOp{Op: views.OpSetText, Path: []int{0}, Text: fmt.Sprintf("u%d", i)}
		// Every acknowledged update is already in the daemon's WAL: the
		// handler journals before replying, so the kill below can lose
		// nothing that the view layer observed.
		if _, err := view.Update(ctx, 1, []views.UpdateOp{op}); err != nil {
			t.Fatal(err)
		}
		ops = append(ops, op)
	}
	tr1.Close()
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no checkpoint, no flush
		t.Fatal(err)
	}
	cmd.Wait()

	// Phase 2: restart from the data dir and compare against an in-memory
	// reference that applied the same ops and never crashed.
	cmd2, addr2 := startDaemon(t, bin, args...)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	tr2, eng, _ := newCoordinator(addr2)
	defer tr2.Close()

	refCluster := cluster.New(cost)
	refForest, refAssign, err := loadReferenceForest(m)
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := core.Deploy(refCluster, refForest, refAssign)
	if err != nil {
		t.Fatal(err)
	}
	refFrag, _ := refForest.Fragment(1)
	for _, op := range ops {
		if err := op.Apply(refFrag.Root); err != nil {
			t.Fatal(err)
		}
	}

	for _, src := range []string{
		`//a[text() = "x"] && //b`,
		`//b[text() = "u4"]`,
		`//b[text() = "y"]`,
		`//section && //catalog`,
	} {
		q := xpath.MustCompileString(src)
		got, err := eng.ParBoX(ctx, q)
		if err != nil {
			t.Fatalf("recovered daemon %q: %v", src, err)
		}
		want, err := refEng.ParBoX(ctx, q)
		if err != nil {
			t.Fatalf("reference %q: %v", src, err)
		}
		if got.Answer != want.Answer {
			t.Errorf("%q: recovered=%v reference=%v", src, got.Answer, want.Answer)
		}
	}
}

// loadReferenceForest assembles the manifest's full fragment set into a
// forest + assignment for the in-memory reference deployment.
func loadReferenceForest(m *manifest.Manifest) (*frag.Forest, frag.Assignment, error) {
	var frs []*frag.Fragment
	assign := frag.Assignment{}
	for siteID := range m.Sites {
		frags, _, err := m.LoadFragments(siteID)
		if err != nil {
			return nil, nil, err
		}
		for id, fr := range frags {
			frs = append(frs, fr)
			assign[id] = siteID
		}
	}
	forest, err := frag.FromFragments(frs, 0)
	if err != nil {
		return nil, nil, err
	}
	return forest, assign, nil
}

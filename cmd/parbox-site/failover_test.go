package main

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/manifest"
	"repro/internal/serve"
	"repro/internal/xpath"
)

// writeReplicatedDeployment lays out a 2x-replicated ring over four
// daemons: fragment i lives on S_i and S_(i+1) (wrapping), the root stays
// with the local coordinator S0. The manifest format assigns one site per
// fragment, so each daemon gets its own manifest listing exactly the
// replicas it hosts; the shared "reference" manifest assigns primaries
// only and feeds the coordinator's forest and the in-memory reference.
func writeReplicatedDeployment(t *testing.T) (dir string, daemonManifests map[string]string) {
	t.Helper()
	dir = t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("f0.xml", `<catalog><parbox.fragment id="1"/><parbox.fragment id="2"/><parbox.fragment id="3"/><parbox.fragment id="4"/></catalog>`)
	write("f1.xml", `<section><name>alpha</name><quantity>2</quantity></section>`)
	write("f2.xml", `<section><name>beta</name><keyword>k</keyword></section>`)
	write("f3.xml", `<section><emph>e</emph><listitem>x</listitem></section>`)
	write("f4.xml", `<section><name>delta</name><quantity>9</quantity></section>`)

	sites := `
site S0 local
site S1 127.0.0.1:0
site S2 127.0.0.1:0
site S3 127.0.0.1:0
site S4 127.0.0.1:0
`
	write("manifest.txt", sites+`
frag 0 -1 S0 f0.xml
frag 1 0 S1 f1.xml
frag 2 0 S2 f2.xml
frag 3 0 S3 f3.xml
frag 4 0 S4 f4.xml
`)
	// Daemon S_i hosts fragment i plus its ring predecessor's.
	daemonManifests = map[string]string{}
	host := map[string][2]string{
		"S1": {"frag 1 0 S1 f1.xml", "frag 4 0 S1 f4.xml"},
		"S2": {"frag 2 0 S2 f2.xml", "frag 1 0 S2 f1.xml"},
		"S3": {"frag 3 0 S3 f3.xml", "frag 2 0 S3 f2.xml"},
		"S4": {"frag 4 0 S4 f4.xml", "frag 3 0 S4 f3.xml"},
	}
	for name, lines := range host {
		fname := "manifest-" + name + ".txt"
		write(fname, sites+"\nfrag 0 -1 S0 f0.xml\n"+lines[0]+"\n"+lines[1]+"\n")
		daemonManifests[name] = filepath.Join(dir, fname)
	}
	return dir, daemonManifests
}

// TestDaemonFailover is the failover smoke CI runs: four real site
// daemons serve a 2x-replicated forest, one is SIGKILLed with a workload
// in flight, and every query — in flight and subsequent — must still
// return the unfaulted reference answer, with the tier's failover
// counters showing the recovery happened (rather than the kill landing
// in dead air).
func TestDaemonFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real daemon processes")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "parbox-site")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building parbox-site: %v\n%s", err, out)
	}

	dir, daemonManifests := writeReplicatedDeployment(t)
	refManifest := filepath.Join(dir, "manifest.txt")
	m, err := manifest.ParseFile(refManifest)
	if err != nil {
		t.Fatal(err)
	}

	daemons := map[frag.SiteID]*exec.Cmd{}
	addrs := map[frag.SiteID]string{}
	for _, name := range []string{"S1", "S2", "S3", "S4"} {
		cmd, addr := startDaemon(t, bin, "-name", name,
			"-manifest", daemonManifests[name], "-listen", "127.0.0.1:0")
		daemons[frag.SiteID(name)] = cmd
		addrs[frag.SiteID(name)] = addr
	}
	defer func() {
		for _, cmd := range daemons {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// Coordinator: local S0 with the root fragment, replica-aware tier
	// over the daemons' real addresses.
	cost := cluster.DefaultCostModel()
	tr := cluster.NewTCPTransport(addrs)
	defer tr.Close()
	s0 := cluster.NewSite("S0")
	frags, _, err := m.LoadFragments("S0")
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frags {
		s0.AddFragment(fr)
	}
	core.RegisterHandlers(s0, tr, cost)
	serve.RegisterHandlers(s0)
	tr.Local(s0)

	forest, assign, err := loadReferenceForest(m)
	if err != nil {
		t.Fatal(err)
	}
	st, err := frag.BuildSourceTree(forest, assign)
	if err != nil {
		t.Fatal(err)
	}
	replicas := core.ReplicaMap{
		0: {"S0"},
		1: {"S1", "S2"},
		2: {"S2", "S3"},
		3: {"S3", "S4"},
		4: {"S4", "S1"},
	}
	tier := serve.NewTier(tr, "S0", forest, replicas, serve.Options{ProbeInterval: -1, DownAfter: 2})
	eng := core.NewEngine(tr, "S0", st, cost)
	eng.SetTier(tier)

	// The unfaulted in-memory reference.
	refEng, err := core.Deploy(cluster.New(cost), forest, assign)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`//name && //quantity`,
		`//keyword || //absent`,
		`//listitem[text() = "x"]`,
		`//name[text() = "beta"] && //emph`,
		`//absent`,
	}
	ctx := context.Background()
	want := make([]bool, len(queries))
	progs := make([]*xpath.Program, len(queries))
	for i, src := range queries {
		progs[i] = xpath.MustCompileString(src)
		rep, err := refEng.ParBoX(ctx, progs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep.Answer
	}

	// Healthy pass: every query answers through the daemons.
	for i, prog := range progs {
		rep, err := eng.Run(ctx, core.AlgoParBoX, prog)
		if err != nil {
			t.Fatalf("healthy %q: %v", queries[i], err)
		}
		if rep.Answer != want[i] {
			t.Fatalf("healthy %q = %v, want %v", queries[i], rep.Answer, want[i])
		}
	}

	// Workload: 4 workers x 8 queries each; SIGKILL S2 once a few have
	// completed, so the kill lands with queries in flight and more still
	// to start. Fragments 1 and 2 (S2's replicas) survive on S1 and S3 —
	// every query must keep answering correctly.
	const workers, perWorker = 4, 8
	victim := frag.SiteID("S2")
	var done, failovers atomic.Int64
	errCh := make(chan error, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < perWorker; q++ {
				i := (w + q) % len(progs)
				algo := core.AlgoParBoX
				if q%2 == 1 {
					algo = core.AlgoNaiveCentralized
				}
				rep, err := eng.Run(ctx, algo, progs[i])
				if err != nil {
					errCh <- err
				} else if rep.Answer != want[i] {
					t.Errorf("%s %q = %v, want %v", algo, queries[i], rep.Answer, want[i])
				}
				failovers.Add(rep.Failovers)
				done.Add(1)
			}
		}(w)
	}
	for done.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	if err := daemons[victim].Process.Kill(); err != nil { // SIGKILL: no drain
		t.Fatal(err)
	}
	daemons[victim].Wait()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("query failed despite a live replica: %v", err)
	}
	if failovers.Load() == 0 {
		t.Error("no failovers recorded: the kill landed in dead air")
	}

	// The tier's active probes must classify the corpse: two sweeps
	// (DownAfter: 2) take S2 from suspect to down.
	tier.ProbeNow(ctx)
	tier.ProbeNow(ctx)
	if got := tier.Health()[victim].State; got != serve.Down {
		t.Errorf("victim health = %v, want down", got)
	}

	// And the degraded system keeps serving correct answers.
	for i, prog := range progs {
		rep, err := eng.Run(ctx, core.AlgoParBoX, prog)
		if err != nil {
			t.Fatalf("degraded %q: %v", queries[i], err)
		}
		if rep.Answer != want[i] {
			t.Errorf("degraded %q = %v, want %v", queries[i], rep.Answer, want[i])
		}
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	data := `{
  "benchmarks": [
    {"name": "solve/chain32", "ns_per_op": 1000, "allocs_per_op": 100},
    {"name": "triplet/codec", "ns_per_op": 500, "allocs_per_op": 10},
    {"name": "retired/bench", "ns_per_op": 50, "allocs_per_op": 5}
  ]
}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBaseline(t *testing.T) {
	base := writeBaseline(t)
	within := map[string]benchPoint{
		"solve/chain32": {NsPerOp: 1200, AllocsPerOp: 110}, // +20%, +10%: inside 25%
		"triplet/codec": {NsPerOp: 400, AllocsPerOp: 8},    // improvements
		"brand/new":     {NsPerOp: 1e9, AllocsPerOp: 1e6},  // not in baseline: ignored
	}
	if err := compareBaseline(base, "both", 0.25, within); err != nil {
		t.Errorf("within-tolerance run failed: %v", err)
	}
	// retired/bench missing from fresh results must not fail either (CI
	// may run a subset).
	if err := compareBaseline(base, "both", 0.25, map[string]benchPoint{}); err != nil {
		t.Errorf("empty fresh set failed: %v", err)
	}

	nsRegressed := map[string]benchPoint{"solve/chain32": {NsPerOp: 1300, AllocsPerOp: 100}}
	if err := compareBaseline(base, "ns", 0.25, nsRegressed); err == nil {
		t.Error("30% ns regression passed the 25% gate")
	}
	if err := compareBaseline(base, "allocs", 0.25, nsRegressed); err != nil {
		t.Errorf("allocs-only gate flagged an ns regression: %v", err)
	}

	allocRegressed := map[string]benchPoint{"solve/chain32": {NsPerOp: 1000, AllocsPerOp: 140}}
	if err := compareBaseline(base, "allocs", 0.25, allocRegressed); err == nil {
		t.Error("40% alloc regression passed the 25% gate")
	}
	// The +2 absolute slack keeps near-zero counts from tripping on noise.
	smallJitter := map[string]benchPoint{"triplet/codec": {NsPerOp: 500, AllocsPerOp: 12}}
	if err := compareBaseline(base, "allocs", 0.0, smallJitter); err != nil {
		t.Errorf("+2 allocs on a tiny count tripped the gate: %v", err)
	}

	if err := compareBaseline(base, "nonsense", 0.25, within); err == nil {
		t.Error("invalid metric selector accepted")
	}
	if err := compareBaseline(filepath.Join(t.TempDir(), "missing.json"), "both", 0.25, within); err == nil {
		t.Error("missing baseline file accepted")
	}
}

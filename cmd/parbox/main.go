// Command parbox is the workflow CLI of the library:
//
//	parbox gen   -mb 2 -seed 1 -out doc.xml
//	    generate an XMark-style document
//
//	parbox eval  -doc doc.xml -q '//item[quantity]'
//	    centralized evaluation of a Boolean XPath query
//
//	parbox split -doc doc.xml -n 3 -sites S0,S1,S2 -out work/
//	    fragment a document into n pieces, write one XML file per
//	    fragment plus a manifest (edit the site addresses, then start
//	    parbox-site daemons and query with `parbox remote`)
//
//	parbox run   -doc doc.xml -n 4 -sites 3 -algo parbox -q '//item'
//	    fragment, deploy on an in-process simulated cluster, evaluate
//	    with any algorithm and print the full report
//
//	parbox remote -manifest work/manifest.txt -q '//item' -algo parbox
//	    coordinate a query over running parbox-site daemons via TCP
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "split":
		err = cmdSplit(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "remote":
		err = cmdRemote(os.Args[2:])
	case "health":
		err = cmdHealth(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "parbox: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "parbox %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: parbox <gen|eval|split|run|remote|health|top> [flags]

  gen     generate an XMark-style document        (-mb -seed -beacon -out)
  eval    centralized Boolean XPath evaluation    (-doc -q)
  split   fragment a document + write a manifest  (-doc -n -sites -out -seed)
  run     evaluate on an in-process cluster       (-doc -n -sites -algo -q -seed)
  remote  coordinate over TCP parbox-site daemons (-manifest -algo -q)
  health  probe a manifest's sites over TCP and
          print per-site up/down + RTT            (-manifest -timeout)
  top     scrape sites' live counters and print the
          visits/messages/bytes/steps table       (-manifest -watch -timeout)
  bench   run the core-procedure benchmarks and
          write BENCH_parbox.json                 (-out -nodes -query -quiet)

run 'parbox <subcommand> -h' for details`)
}

package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/xmark"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	mb := fs.Float64("mb", 1, "document size in paper megabytes")
	seed := fs.Int64("seed", 1, "generator seed")
	scale := fs.Int("scale", 0, "nodes per paper-MB (default 2500)")
	beacon := fs.String("beacon", "", "plant a beacon element with this text")
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)

	doc := xmark.Generate(xmark.Spec{Seed: *seed, MB: *mb, NodesPerMB: *scale, Beacon: *beacon})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := xmltree.WriteXML(w, doc); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintf(os.Stderr, "generated %d nodes (depth %d)\n", doc.Size(), doc.Depth())
	return nil
}

func loadDoc(path string) (*xmltree.Node, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return xmltree.ParseXML(f)
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	docPath := fs.String("doc", "", "document file (required)")
	query := fs.String("q", "", "Boolean XPath query (required)")
	fs.Parse(args)
	if *docPath == "" || *query == "" {
		return fmt.Errorf("-doc and -q are required")
	}
	doc, err := loadDoc(*docPath)
	if err != nil {
		return err
	}
	prog, err := xpath.CompileString(*query)
	if err != nil {
		return err
	}
	start := time.Now()
	ans, steps, err := eval.Evaluate(doc, prog)
	if err != nil {
		return err
	}
	fmt.Printf("answer: %v\n", ans)
	fmt.Printf("|T| = %d nodes, |QList| = %d, %d steps, %v\n",
		doc.Size(), prog.QListSize(), steps, time.Since(start).Round(time.Microsecond))
	return nil
}

// fragmentDoc splits a document into n fragments at the largest top-level
// split points, falling back to random splits for the remainder.
func fragmentDoc(doc *xmltree.Node, n int, seed int64) (*frag.Forest, error) {
	forest := frag.NewForest(doc)
	// Prefer big subtrees directly under the root (XMark sections or
	// nested sites) — the natural administrative fragmentation.
	type cand struct {
		node *xmltree.Node
		size int
	}
	var cands []cand
	for _, c := range doc.Children {
		cands = append(cands, cand{c, c.Size()})
	}
	for i := 0; i < len(cands)-1; i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].size > cands[i].size {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	for _, c := range cands {
		if forest.Count() >= n {
			break
		}
		if c.size < 3 {
			continue
		}
		if _, err := forest.Split(c.node); err != nil {
			return nil, err
		}
	}
	if forest.Count() < n {
		if err := forest.SplitRandom(rand.New(rand.NewSource(seed)), n-forest.Count()); err != nil {
			return nil, err
		}
	}
	return forest, nil
}

func cmdSplit(args []string) error {
	fs := flag.NewFlagSet("split", flag.ExitOnError)
	docPath := fs.String("doc", "", "document file (required)")
	n := fs.Int("n", 2, "number of fragments")
	sitesFlag := fs.String("sites", "S0,S1", "comma-separated site names (round-robin assignment)")
	out := fs.String("out", "work", "output directory")
	seed := fs.Int64("seed", 1, "seed for fallback random splits")
	basePort := fs.Int("baseport", 7071, "first TCP port for the generated site addresses")
	fs.Parse(args)
	if *docPath == "" {
		return fmt.Errorf("-doc is required")
	}
	doc, err := loadDoc(*docPath)
	if err != nil {
		return err
	}
	forest, err := fragmentDoc(doc, *n, *seed)
	if err != nil {
		return err
	}
	sites := strings.Split(*sitesFlag, ",")
	siteIDs := make([]frag.SiteID, len(sites))
	for i, s := range sites {
		siteIDs[i] = frag.SiteID(strings.TrimSpace(s))
	}
	assign := frag.AssignRoundRobin(forest, siteIDs)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	m := &manifest.Manifest{Dir: *out, Sites: make(map[frag.SiteID]string)}
	m.Sites[siteIDs[0]] = manifest.LocalAddr // coordinator
	port := *basePort
	for _, s := range siteIDs[1:] {
		m.Sites[s] = fmt.Sprintf("127.0.0.1:%d", port)
		port++
	}
	for _, id := range forest.IDs() {
		fr, _ := forest.Fragment(id)
		name := fmt.Sprintf("f%d.xml", id)
		f, err := os.Create(filepath.Join(*out, name))
		if err != nil {
			return err
		}
		if err := xmltree.WriteXML(f, fr.Root); err != nil {
			f.Close()
			return err
		}
		f.Close()
		m.Fragments = append(m.Fragments, manifest.FragmentEntry{
			ID: id, Parent: fr.Parent, Site: assign[id], File: name,
		})
	}
	mf, err := os.Create(filepath.Join(*out, "manifest.txt"))
	if err != nil {
		return err
	}
	defer mf.Close()
	if err := m.Write(mf); err != nil {
		return err
	}
	fmt.Printf("wrote %d fragments and manifest.txt to %s\n", forest.Count(), *out)
	fmt.Printf("next: start the remote sites, e.g.\n")
	for s, addr := range m.Sites {
		if addr != manifest.LocalAddr {
			fmt.Printf("  parbox-site -name %s -manifest %s\n", s, filepath.Join(*out, "manifest.txt"))
		}
	}
	fmt.Printf("then: parbox remote -manifest %s -q '//item[quantity]'\n", filepath.Join(*out, "manifest.txt"))
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	docPath := fs.String("doc", "", "document file (required; or use -mb to generate)")
	mb := fs.Float64("mb", 0, "generate a document of this size instead of reading -doc")
	n := fs.Int("n", 4, "number of fragments")
	nsites := fs.Int("sites", 3, "number of simulated sites")
	algoName := fs.String("algo", core.AlgoParBoX.String(), "algorithm: "+strings.Join(core.AlgorithmNames(), "|"))
	query := fs.String("q", "", "Boolean XPath query (required)")
	seed := fs.Int64("seed", 1, "seed")
	verbose := fs.Bool("v", false, "print per-site metrics")
	trace := fs.Bool("trace", false, "print every message exchanged")
	fs.Parse(args)
	if *query == "" {
		return fmt.Errorf("-q is required")
	}
	algo, err := parseAlgoFlag(*algoName)
	if err != nil {
		return err
	}
	var doc *xmltree.Node
	switch {
	case *mb > 0:
		doc = xmark.Generate(xmark.Spec{Seed: *seed, MB: *mb})
	case *docPath != "":
		doc, err = loadDoc(*docPath)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -doc or -mb is required")
	}
	prog, err := xpath.CompileString(*query)
	if err != nil {
		return err
	}
	forest, err := fragmentDoc(doc, *n, *seed)
	if err != nil {
		return err
	}
	siteIDs := make([]frag.SiteID, *nsites)
	for i := range siteIDs {
		siteIDs[i] = frag.SiteID(fmt.Sprintf("S%d", i))
	}
	assign := frag.AssignRoundRobin(forest, siteIDs)
	c := cluster.New(cluster.DefaultCostModel())
	var tracer *cluster.Tracer
	var eng *core.Engine
	if *trace {
		// Trace mode: register handlers against the tracing transport so
		// site-to-site hops are logged too.
		tracer = cluster.NewTracer()
		tt := &cluster.TracingTransport{Inner: c, Tracer: tracer}
		st, err := frag.BuildSourceTree(forest, assign)
		if err != nil {
			return err
		}
		for _, siteID := range st.Sites() {
			site := c.AddSite(siteID)
			for _, id := range st.FragmentsAt(siteID) {
				fr, _ := forest.Fragment(id)
				site.AddFragment(fr)
			}
			core.RegisterHandlers(site, tt, c.Cost())
		}
		rootEntry, _ := st.Entry(st.Root())
		eng = core.NewEngine(tt, rootEntry.Site, st, c.Cost())
	} else {
		var err error
		eng, err = core.Deploy(c, forest, assign)
		if err != nil {
			return err
		}
	}
	rep, err := eng.Run(context.Background(), algo, prog)
	if err != nil {
		return err
	}
	printReport(rep)
	if tracer != nil {
		fmt.Println("\nmessage trace:")
		fmt.Print(tracer.String())
	}
	if *verbose {
		fmt.Println(eng.SourceTree().String())
		fmt.Println(c.Metrics().String())
	}
	return nil
}

// parseAlgoFlag resolves a -algo flag value; ParseAlgorithm's error
// already names every valid algorithm, so the user sees the full set
// instead of a bare rejection.
func parseAlgoFlag(name string) (core.Algorithm, error) {
	algo, err := core.ParseAlgorithm(name)
	if err != nil {
		return 0, fmt.Errorf("bad -algo: %w", err)
	}
	return algo, nil
}

func printReport(rep core.Report) {
	fmt.Printf("answer:      %v\n", rep.Answer)
	fmt.Printf("algorithm:   %s\n", rep.Algorithm)
	fmt.Printf("model time:  %v   (wall %v)\n", rep.SimTime.Round(time.Microsecond), rep.Wall.Round(time.Microsecond))
	fmt.Printf("traffic:     %d bytes in %d messages\n", rep.Bytes, rep.Messages)
	fmt.Printf("computation: %d node×subquery steps (solve work %d)\n", rep.TotalSteps, rep.SolveWork)
	if len(rep.Visits) > 0 {
		fmt.Printf("visits:      ")
		first := true
		for _, s := range sortedSites(rep.Visits) {
			if !first {
				fmt.Print(", ")
			}
			fmt.Printf("%s=%d", s, rep.Visits[s])
			first = false
		}
		fmt.Println()
	}
}

func sortedSites(m map[frag.SiteID]int64) []frag.SiteID {
	out := make([]frag.SiteID, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	for i := 0; i < len(out)-1; i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func cmdRemote(args []string) error {
	fs := flag.NewFlagSet("remote", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "manifest file (required)")
	algoName := fs.String("algo", core.AlgoParBoX.String(), "algorithm: "+strings.Join(core.AlgorithmNames(), "|"))
	query := fs.String("q", "", "Boolean XPath query (required)")
	timeout := fs.Duration("timeout", 30*time.Second, "overall deadline")
	fs.Parse(args)
	if *manifestPath == "" || *query == "" {
		return fmt.Errorf("-manifest and -q are required")
	}
	algo, err := parseAlgoFlag(*algoName)
	if err != nil {
		return err
	}
	m, err := manifest.ParseFile(*manifestPath)
	if err != nil {
		return err
	}
	prog, err := xpath.CompileString(*query)
	if err != nil {
		return err
	}

	// The coordinator serves every "local" site in-process and dials the
	// rest.
	cost := cluster.DefaultCostModel()
	addrs := make(map[frag.SiteID]string)
	var localSites []frag.SiteID
	for s, addr := range m.Sites {
		if addr == manifest.LocalAddr {
			localSites = append(localSites, s)
		} else {
			addrs[s] = addr
		}
	}
	if len(localSites) == 0 {
		return fmt.Errorf("manifest declares no local site for the coordinator")
	}
	tr := cluster.NewTCPTransport(addrs)
	defer tr.Close()

	sizes := make(map[xmltree.FragmentID]int)
	for _, siteID := range localSites {
		site := cluster.NewSite(siteID)
		frags, szs, err := m.LoadFragments(siteID)
		if err != nil {
			return err
		}
		for id, fr := range frags {
			site.AddFragment(fr)
			sizes[id] = szs[id]
		}
		core.RegisterHandlers(site, tr, cost)
		tr.Local(site)
	}
	st, err := m.SourceTree(sizes)
	if err != nil {
		return err
	}
	rootID, err := m.RootID()
	if err != nil {
		return err
	}
	coordEntry, _ := st.Entry(rootID)
	eng := core.NewEngine(tr, coordEntry.Site, st, cost)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	rep, err := eng.Run(ctx, algo, prog)
	if err != nil {
		return err
	}
	printReport(rep)
	return nil
}

// cmdHealth probes every remote site of a manifest over TCP and prints a
// status line per site: the serving tier's health check as an operator
// command. A site answering the probe is up; a dial/handshake/timeout
// failure prints the error. Exits nonzero if any site is unreachable.
func cmdHealth(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "manifest file (required)")
	timeout := fs.Duration("timeout", 3*time.Second, "per-site probe deadline")
	fs.Parse(args)
	if *manifestPath == "" {
		return fmt.Errorf("-manifest is required")
	}
	m, err := manifest.ParseFile(*manifestPath)
	if err != nil {
		return err
	}
	addrs := make(map[frag.SiteID]string)
	var sites []frag.SiteID
	for s, addr := range m.Sites {
		if addr != manifest.LocalAddr {
			addrs[s] = addr
			sites = append(sites, s)
		}
	}
	if len(sites) == 0 {
		return fmt.Errorf("manifest declares no remote sites")
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	tr := cluster.NewTCPTransport(addrs)
	defer tr.Close()

	down := 0
	for _, s := range sites {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		start := time.Now()
		resp, _, err := tr.Call(ctx, "health", s, cluster.Request{Kind: serve.KindProbe})
		rtt := time.Since(start)
		cancel()
		if err != nil {
			down++
			fmt.Printf("%-8s down  %-21s %v\n", s, addrs[s], err)
			continue
		}
		status := "up"
		if string(resp.Payload) != string(s) {
			status = "confused" // a daemon serving under another name
		}
		fmt.Printf("%-8s %-5s %-21s rtt %s\n", s, status, addrs[s], rtt.Round(10*time.Microsecond))
	}
	if down > 0 {
		return fmt.Errorf("%d of %d sites down", down, len(sites))
	}
	return nil
}

// cmdTop scrapes every remote site's always-on counters (the obs.stats
// RPC) over the ordinary transport and renders the paper's evaluation
// quantities — visits, messages, bytes, steps — plus cache, shed and
// latency-quantile columns as a live table. With -watch it refreshes at
// that interval until interrupted. The scrape is admission-exempt and
// excluded from the counters it reports, so watching a site does not
// perturb what it measures.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "manifest file (required)")
	timeout := fs.Duration("timeout", 3*time.Second, "per-site scrape deadline")
	watch := fs.Duration("watch", 0, "refresh interval (0 = scrape once)")
	fs.Parse(args)
	if *manifestPath == "" {
		return fmt.Errorf("-manifest is required")
	}
	m, err := manifest.ParseFile(*manifestPath)
	if err != nil {
		return err
	}
	addrs := make(map[frag.SiteID]string)
	var sites []frag.SiteID
	for s, addr := range m.Sites {
		if addr != manifest.LocalAddr {
			addrs[s] = addr
			sites = append(sites, s)
		}
	}
	if len(sites) == 0 {
		return fmt.Errorf("manifest declares no remote sites")
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	tr := cluster.NewTCPTransport(addrs)
	defer tr.Close()
	for {
		if err := topOnce(tr, sites, *timeout); err != nil {
			return err
		}
		if *watch <= 0 {
			return nil
		}
		time.Sleep(*watch)
		fmt.Println()
	}
}

// topOnce scrapes and prints one round of the per-site stats table. The
// spine/full/noop/push columns are the update-path health counters: a
// healthy incremental deployment shows spine recomputes dwarfing full
// recomputes, and noop updates absorbing irrelevant edits.
func topOnce(tr *cluster.TCPTransport, sites []frag.SiteID, timeout time.Duration) error {
	fmt.Printf("%-8s %8s %8s %8s %11s %11s %11s %7s %7s %6s %7s %6s %6s %6s %9s %9s %9s\n",
		"site", "visits", "msgsIn", "msgsOut", "bytesIn", "bytesOut", "steps",
		"hits", "miss", "sheds", "spine", "full", "noop", "push", "p50", "p95", "p99")
	var firstErr error
	for _, s := range sites {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		resp, _, err := tr.Call(ctx, "top", s, cluster.Request{Kind: cluster.StatsKind})
		cancel()
		if err != nil {
			fmt.Printf("%-8s down: %v\n", s, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("site %s: %w", s, err)
			}
			continue
		}
		snap, err := obs.DecodeSiteStats(resp.Payload)
		if err != nil {
			return fmt.Errorf("site %s sent a bad stats payload: %w", s, err)
		}
		q := func(p float64) time.Duration {
			return time.Duration(snap.Latency.Quantile(p)).Round(time.Microsecond)
		}
		fmt.Printf("%-8s %8d %8d %8d %11d %11d %11d %7d %7d %6d %7d %6d %6d %6d %9v %9v %9v\n",
			s, snap.Visits, snap.MessagesIn, snap.MessagesOut,
			snap.BytesIn, snap.BytesOut, snap.Steps,
			snap.CacheHits, snap.CacheMisses, snap.Sheds,
			snap.SpineRecomputes, snap.FullRecomputes, snap.NoopUpdates, snap.DeltasPushed,
			q(0.50), q(0.95), q(0.99))
	}
	return firstErr
}

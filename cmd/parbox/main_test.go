package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/manifest"
	"repro/internal/views"
)

func TestGenEvalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.xml")
	if err := cmdGen([]string{"-mb", "0.3", "-seed", "5", "-out", doc}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if fi, err := os.Stat(doc); err != nil || fi.Size() == 0 {
		t.Fatalf("gen produced no file: %v", err)
	}
	if err := cmdEval([]string{"-doc", doc, "-q", `//item[quantity]`}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if err := cmdEval([]string{"-doc", doc, "-q", `bad &&`}); err == nil {
		t.Error("eval accepted a bad query")
	}
	if err := cmdEval([]string{"-doc", filepath.Join(dir, "missing.xml"), "-q", `//a`}); err == nil {
		t.Error("eval accepted a missing file")
	}
	if err := cmdEval([]string{}); err == nil {
		t.Error("eval without flags accepted")
	}
}

func TestRunInProcess(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.xml")
	if err := cmdGen([]string{"-mb", "0.3", "-seed", "5", "-out", doc}); err != nil {
		t.Fatal(err)
	}
	for _, algo := range core.Algorithms() {
		if err := cmdRun([]string{"-doc", doc, "-n", "4", "-sites", "3", "-algo", algo.String(), "-q", `//item[quantity]`}); err != nil {
			t.Errorf("run -algo %s: %v", algo, err)
		}
	}
	// Generate on the fly with -mb.
	if err := cmdRun([]string{"-mb", "0.2", "-q", `//person`}); err != nil {
		t.Errorf("run -mb: %v", err)
	}
	// A bad -algo must be rejected with the full valid set in the error.
	err := cmdRun([]string{"-doc", doc, "-algo", "bogus", "-q", `//person`})
	if err == nil {
		t.Error("run accepted -algo bogus")
	} else {
		for _, name := range core.AlgorithmNames() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("bad-algo error %q does not name %q", err, name)
			}
		}
	}
	if err := cmdRun([]string{"-doc", doc}); err == nil {
		t.Error("run without -q accepted")
	}
	if err := cmdRun([]string{"-q", `//a`}); err == nil {
		t.Error("run without -doc/-mb accepted")
	}
}

func TestSplitAndRemote(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.xml")
	if err := cmdGen([]string{"-mb", "0.3", "-seed", "5", "-out", doc}); err != nil {
		t.Fatal(err)
	}
	work := filepath.Join(dir, "work")
	if err := cmdSplit([]string{"-doc", doc, "-n", "3", "-sites", "S0,S1,S2", "-out", work}); err != nil {
		t.Fatalf("split: %v", err)
	}
	manifestPath := filepath.Join(work, "manifest.txt")
	m, err := manifest.ParseFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Fragments) != 3 {
		t.Fatalf("manifest has %d fragments, want 3", len(m.Fragments))
	}

	// Start the remote sites in-process (what parbox-site does), on
	// ephemeral ports, then rewrite the manifest with the real addresses.
	cost := cluster.DefaultCostModel()
	peers := cluster.NewTCPTransport(nil)
	defer peers.Close()
	addrs := map[frag.SiteID]string{}
	var servers []*cluster.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for siteID, addr := range m.Sites {
		if addr == manifest.LocalAddr {
			continue
		}
		site := cluster.NewSite(siteID)
		frags, _, err := m.LoadFragments(siteID)
		if err != nil {
			t.Fatal(err)
		}
		for _, fr := range frags {
			site.AddFragment(fr)
		}
		core.RegisterHandlers(site, peers, cost)
		views.RegisterHandlers(site, peers)
		srv, err := cluster.Serve(site, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs[siteID] = srv.Addr()
	}
	peers.SetAddrs(addrs)
	for siteID, addr := range addrs {
		m.Sites[siteID] = addr
	}
	mf, err := os.Create(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	for _, algo := range []string{"parbox", "central", "lazy"} {
		if err := cmdRemote([]string{"-manifest", manifestPath, "-algo", algo, "-q", `//item[quantity]`}); err != nil {
			t.Errorf("remote -algo %s: %v", algo, err)
		}
	}
	if err := cmdRemote([]string{"-manifest", manifestPath, "-q", `bad &&`}); err == nil {
		t.Error("remote accepted a bad query")
	}
	if err := cmdRemote([]string{"-q", `//a`}); err == nil {
		t.Error("remote without manifest accepted")
	}
}

func TestFragmentDocPrefersLargeSubtrees(t *testing.T) {
	docStr := `<r><big>` + strings.Repeat("<x/>", 50) + `</big><small/><tiny/></r>`
	dir := t.TempDir()
	doc := filepath.Join(dir, "d.xml")
	if err := os.WriteFile(doc, []byte(docStr), 0o644); err != nil {
		t.Fatal(err)
	}
	tree, err := loadDoc(doc)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := fragmentDoc(tree, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if forest.Count() != 2 {
		t.Fatalf("count = %d", forest.Count())
	}
	fr, _ := forest.Fragment(1)
	if fr.Root.Label != "big" {
		t.Errorf("fragment 1 is %q, want the big subtree", fr.Root.Label)
	}
	// Requesting more fragments than natural split points falls back to
	// random splits.
	tree2, _ := loadDoc(doc)
	forest2, err := fragmentDoc(tree2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if forest2.Count() < 4 {
		t.Errorf("fallback splitting produced only %d fragments", forest2.Count())
	}
	if err := forest2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSortedSitesHelper(t *testing.T) {
	m := map[frag.SiteID]int64{"S2": 1, "S0": 2, "S1": 3}
	got := sortedSites(m)
	want := []frag.SiteID{"S0", "S1", "S2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("sortedSites = %v", got)
	}
}

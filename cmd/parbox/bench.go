package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmark"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// cmdBench is the reproducible perf harness: it runs the core-procedure
// benchmarks in-process (via testing.Benchmark, so ns/op and allocs/op are
// the same quantities `go test -bench` reports) and writes them to a JSON
// file, so the perf trajectory of the hot path is tracked commit over
// commit instead of living in someone's terminal scrollback.
//
//	parbox bench -out BENCH_parbox.json
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_parbox.json", "output JSON file")
	nodes := fs.Int("nodes", 10000, "XMark fragment size (element nodes) for the BottomUp benchmarks")
	query := fs.Int("query", 8, "XMark query size (|QList| key into xmark.Queries)")
	quiet := fs.Bool("quiet", false, "suppress per-benchmark progress output")
	if err := fs.Parse(args); err != nil {
		return err
	}

	type benchResult struct {
		Name        string             `json:"name"`
		NsPerOp     float64            `json:"ns_per_op"`
		AllocsPerOp int64              `json:"allocs_per_op"`
		BytesPerOp  int64              `json:"bytes_per_op"`
		Metrics     map[string]float64 `json:"metrics,omitempty"`
	}
	var results []benchResult
	record := func(name string, r testing.BenchmarkResult, metrics map[string]float64) {
		br := benchResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Metrics:     metrics,
		}
		results = append(results, br)
		if !*quiet {
			fmt.Printf("%-32s %14.0f ns/op %10d allocs/op %12d B/op\n",
				name, br.NsPerOp, br.AllocsPerOp, br.BytesPerOp)
		}
	}

	// --- BottomUp on an all-constant XMark fragment: the constant plane ---
	doc := xmark.Generate(xmark.Spec{Seed: 7, MB: float64(*nodes) / float64(xmark.DefaultNodesPerMB)})
	prog := xpath.MustCompileString(xmark.Queries[*query])
	newRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.BottomUp(doc, prog); err != nil {
				b.Fatal(err)
			}
		}
	})
	legacyRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.LegacyBottomUp(doc, prog); err != nil {
				b.Fatal(err)
			}
		}
	})
	speedup := float64(legacyRes.NsPerOp()) / float64(newRes.NsPerOp())
	allocRatio := float64(legacyRes.AllocsPerOp()) / float64(max64(newRes.AllocsPerOp(), 1))
	record("bottomup/bitset-arena", newRes, map[string]float64{
		"fragment_nodes": float64(doc.Size()),
		"qlist_size":     float64(prog.QListSize()),
	})
	record("bottomup/legacy", legacyRes, nil)
	record("bottomup/spread", testing.BenchmarkResult{N: 1}, map[string]float64{
		"speedup_x":         speedup,
		"alloc_reduction_x": allocRatio,
		"legacy_ns_per_op":  float64(legacyRes.NsPerOp()),
		"arena_ns_per_op":   float64(newRes.NsPerOp()),
		"legacy_allocs_op":  float64(legacyRes.AllocsPerOp()),
		"arena_allocs_op":   float64(newRes.AllocsPerOp()),
	})

	// --- Solve over a 32-fragment chain: the memoized arena unification ---
	chainRoot, chainSites, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       5,
		Parents:    xmark.ChainParents(32),
		MBs:        xmark.EvenMBs(4, 32),
		NodesPerMB: 500,
	})
	if err != nil {
		return err
	}
	chainForest, err := xmark.Fragment(chainRoot, chainSites)
	if err != nil {
		return err
	}
	assign := frag.AssignAll(chainForest, "S")
	st, err := frag.BuildSourceTree(chainForest, assign)
	if err != nil {
		return err
	}
	solveProg := xpath.MustCompileString(xmark.Queries[23])
	triplets, _, err := eval.EvaluateAll(chainForest, solveProg)
	if err != nil {
		return err
	}
	record("solve/chain32", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.Solve(st, triplets, solveProg); err != nil {
				b.Fatal(err)
			}
		}
	}), nil)

	// --- ParBoX end to end on 8 sites: allocs + shipped bytes -------------
	e2eRoot, e2eSites, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       3,
		Parents:    xmark.StarParents(8),
		MBs:        xmark.EvenMBs(float64(8**nodes)/float64(xmark.DefaultNodesPerMB), 8),
		NodesPerMB: xmark.DefaultNodesPerMB,
	})
	if err != nil {
		return err
	}
	e2eForest, err := xmark.Fragment(e2eRoot, e2eSites)
	if err != nil {
		return err
	}
	e2eAssign := frag.Assignment{}
	for i := 0; i < 8; i++ {
		e2eAssign[xmltree.FragmentID(i)] = frag.SiteID(fmt.Sprintf("S%d", i))
	}
	c := cluster.New(cluster.DefaultCostModel())
	eng, err := core.Deploy(c, e2eForest, e2eAssign)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var lastBytes, lastSteps int64
	record("parbox/end-to-end-8sites", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := eng.ParBoX(ctx, prog)
			if err != nil {
				b.Fatal(err)
			}
			lastBytes, lastSteps = rep.Bytes, rep.TotalSteps
		}
	}), map[string]float64{
		"bytes_shipped": float64(lastBytes),
		"total_steps":   float64(lastSteps),
	})

	// --- Triplet wire codec -----------------------------------------------
	fr0, _ := e2eForest.Fragment(0)
	t0, _, err := eval.BottomUp(fr0.Root, solveProg)
	if err != nil {
		return err
	}
	enc := t0.Encode()
	record("triplet/codec", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := t0.Encode()
			if _, err := eval.DecodeTriplet(buf); err != nil {
				b.Fatal(err)
			}
		}
	}), map[string]float64{"triplet_bytes": float64(len(enc))})

	payload := struct {
		Generated  string        `json:"generated"`
		Go         string        `json:"go"`
		Benchmarks []benchResult `json:"benchmarks"`
	}{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	if !*quiet {
		fmt.Printf("wrote %s (bottomup speedup %.1fx, alloc reduction %.0fx)\n", *out, speedup, allocRatio)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

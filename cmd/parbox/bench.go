package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	parbox "repro"
	"repro/internal/backoff"
	"repro/internal/boolexpr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/serve"
	"repro/internal/xmark"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// cmdBench is the reproducible perf harness: it runs the core-procedure
// benchmarks in-process (via testing.Benchmark, so ns/op and allocs/op are
// the same quantities `go test -bench` reports) and writes them to a JSON
// file, so the perf trajectory of the hot path is tracked commit over
// commit instead of living in someone's terminal scrollback.
//
//	parbox bench -out BENCH_parbox.json
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_parbox.json", "output JSON file")
	nodes := fs.Int("nodes", 10000, "XMark fragment size (element nodes) for the BottomUp benchmarks")
	query := fs.Int("query", 8, "XMark query size (|QList| key into xmark.Queries)")
	quiet := fs.Bool("quiet", false, "suppress per-benchmark progress output")
	compare := fs.String("compare", "", "baseline BENCH_parbox.json to diff against; exit nonzero on regression")
	tolerance := fs.Float64("tolerance", 0.25, "allowed relative regression before -compare fails (0.25 = 25%)")
	compareMetric := fs.String("compare-metric", "both", "what -compare gates on: ns, allocs, or both (allocs is machine-independent; use it on shared CI runners)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the whole bench run to this file (go tool pprof attributes kernel wins to functions instead of inferring them from ns/op deltas)")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit, after a final GC")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "bench: memprofile: %v\n", err)
			}
		}()
	}

	type benchResult struct {
		Name        string             `json:"name"`
		NsPerOp     float64            `json:"ns_per_op"`
		AllocsPerOp int64              `json:"allocs_per_op"`
		BytesPerOp  int64              `json:"bytes_per_op"`
		// Derived marks rows whose payload is the Metrics map — ratios
		// computed from other rows, not a measured benchmark. Their
		// ns_per_op is 0 by construction, so the regression gate skips
		// them instead of treating 0 as a baseline.
		Derived bool               `json:"derived,omitempty"`
		Metrics map[string]float64 `json:"metrics,omitempty"`
	}
	var results []benchResult
	record := func(name string, r testing.BenchmarkResult, metrics map[string]float64) {
		br := benchResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Metrics:     metrics,
		}
		results = append(results, br)
		if !*quiet {
			fmt.Printf("%-32s %14.0f ns/op %10d allocs/op %12d B/op\n",
				name, br.NsPerOp, br.AllocsPerOp, br.BytesPerOp)
		}
	}
	recordDerived := func(name string, metrics map[string]float64) {
		results = append(results, benchResult{Name: name, Derived: true, Metrics: metrics})
		if !*quiet {
			fmt.Printf("%-32s        derived  %d metric(s)\n", name, len(metrics))
		}
	}

	// --- BottomUp on an all-constant XMark fragment: the constant plane ---
	doc := xmark.Generate(xmark.Spec{Seed: 7, MB: float64(*nodes) / float64(xmark.DefaultNodesPerMB)})
	prog := xpath.MustCompileString(xmark.Queries[*query])
	newRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.BottomUp(doc, prog); err != nil {
				b.Fatal(err)
			}
		}
	})
	legacyRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.LegacyBottomUp(doc, prog); err != nil {
				b.Fatal(err)
			}
		}
	})
	speedup := float64(legacyRes.NsPerOp()) / float64(newRes.NsPerOp())
	allocRatio := float64(legacyRes.AllocsPerOp()) / float64(max64(newRes.AllocsPerOp(), 1))
	record("bottomup/bitset-arena", newRes, map[string]float64{
		"fragment_nodes": float64(doc.Size()),
		"qlist_size":     float64(prog.QListSize()),
	})
	record("bottomup/legacy", legacyRes, nil)
	recordDerived("bottomup/spread", map[string]float64{
		"speedup_x":         speedup,
		"alloc_reduction_x": allocRatio,
		"legacy_ns_per_op":  float64(legacyRes.NsPerOp()),
		"arena_ns_per_op":   float64(newRes.NsPerOp()),
		"legacy_allocs_op":  float64(legacyRes.AllocsPerOp()),
		"arena_allocs_op":   float64(newRes.AllocsPerOp()),
	})

	// --- Incremental maintenance: spine patch vs full recomputation -------
	// The update path: after a single-leaf edit in the same fragment, the
	// maintenance layer recomputes only the touched-node-to-root spine
	// (O(depth + changed)) instead of re-running bottomUp over all |F|
	// nodes. The acceptance floor is 10x; the expected ratio on a 10k-node
	// fragment is |F|/depth, i.e. hundreds.
	spineProg := xpath.MustCompileString(`//open_auction[bidder/increase = "9.00"]`)
	depthOf := func(n *xmltree.Node) int {
		d := 0
		for m := n; m.Parent != nil; m = m.Parent {
			d++
		}
		return d
	}
	var spineLeaf *xmltree.Node
	spineLeafDepth := 0
	doc.Walk(func(n *xmltree.Node) {
		if len(n.Children) == 0 {
			if d := depthOf(n); spineLeaf == nil || d > spineLeafDepth {
				spineLeaf, spineLeafDepth = n, d
			}
		}
	})
	fullRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.BottomUp(doc, spineProg); err != nil {
				b.Fatal(err)
			}
		}
	})
	plane, _, planeOK := eval.BuildPlane(doc, spineProg)
	if !planeOK {
		return fmt.Errorf("bench update/spine-vs-full: fragment outside the spine kernel's domain")
	}
	spineTexts := [2]string{"spine-a", "spine-b"}
	origText := spineLeaf.Text
	dirtyOne := []*xmltree.Node{spineLeaf}
	spineRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spineLeaf.Text = spineTexts[i&1]
			if _, ok := plane.Patch(nil, dirtyOne, nil); !ok {
				b.Fatal("spine patch fell out of the kernel's domain")
			}
		}
	})
	// Undo the bench's last edit so later sections see the original doc.
	spineLeaf.Text = origText
	updSpeedup := float64(fullRes.NsPerOp()) / float64(max64(spineRes.NsPerOp(), 1))
	record("update/spine-vs-full", spineRes, map[string]float64{
		"fragment_nodes":  float64(doc.Size()),
		"spine_depth":     float64(spineLeafDepth),
		"full_ns_per_op":  float64(fullRes.NsPerOp()),
		"spine_ns_per_op": float64(spineRes.NsPerOp()),
		"speedup_x":       updSpeedup,
	})
	if updSpeedup < 10 {
		return fmt.Errorf("update/spine-vs-full: spine patch only %.1fx cheaper than full bottomUp (acceptance floor 10x)", updSpeedup)
	}

	// --- Lane scaling: one fused bottomUp pass over 8/64/256 lanes --------
	// The fused kernel's pitch is sublinear lane scaling: same-shaped
	// queries over different constants share (level, op, delta) groups, so
	// going from 8 to 256 lanes mostly widens masks instead of adding ops.
	// ns_per_lane_node is the honest per-unit cost — it must FALL as lanes
	// stack, or the fusion is just a loop in disguise.
	for _, target := range []int{8, 64, 256} {
		lb := xpath.NewBatchBuilder()
		for i := 0; lb.Lanes() < target; i++ {
			e, err := xpath.Parse(fmt.Sprintf(`//item%d[//keyword%d[text() = "v%d"] && quantity%d]`, i, i, i, i))
			if err != nil {
				return err
			}
			lb.Add(e)
		}
		laneProg, _ := lb.Program()
		laneRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.BottomUp(doc, laneProg); err != nil {
					b.Fatal(err)
				}
			}
		})
		record(fmt.Sprintf("eval/lanes-%d", target), laneRes, map[string]float64{
			"lanes":            float64(len(laneProg.Subs)),
			"kernel_ops":       float64(laneProg.Kernel().Ops()),
			"fragment_nodes":   float64(doc.Size()),
			"ns_per_lane_node": float64(laneRes.NsPerOp()) / (float64(len(laneProg.Subs)) * float64(doc.Size())),
		})
	}

	// --- Solve over a 32-fragment chain: the memoized arena unification ---
	chainRoot, chainSites, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       5,
		Parents:    xmark.ChainParents(32),
		MBs:        xmark.EvenMBs(4, 32),
		NodesPerMB: 500,
	})
	if err != nil {
		return err
	}
	chainForest, err := xmark.Fragment(chainRoot, chainSites)
	if err != nil {
		return err
	}
	assign := frag.AssignAll(chainForest, "S")
	st, err := frag.BuildSourceTree(chainForest, assign)
	if err != nil {
		return err
	}
	solveProg := xpath.MustCompileString(xmark.Queries[23])
	triplets, _, err := eval.EvaluateAll(chainForest, solveProg)
	if err != nil {
		return err
	}
	record("solve/chain32", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.Solve(st, triplets, solveProg); err != nil {
				b.Fatal(err)
			}
		}
	}), nil)

	// --- ParBoX end to end on 8 sites: allocs + shipped bytes -------------
	e2eRoot, e2eSites, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       3,
		Parents:    xmark.StarParents(8),
		MBs:        xmark.EvenMBs(float64(8**nodes)/float64(xmark.DefaultNodesPerMB), 8),
		NodesPerMB: xmark.DefaultNodesPerMB,
	})
	if err != nil {
		return err
	}
	e2eForest, err := xmark.Fragment(e2eRoot, e2eSites)
	if err != nil {
		return err
	}
	e2eAssign := frag.Assignment{}
	for i := 0; i < 8; i++ {
		e2eAssign[xmltree.FragmentID(i)] = frag.SiteID(fmt.Sprintf("S%d", i))
	}
	c := cluster.New(cluster.DefaultCostModel())
	eng, err := core.Deploy(c, e2eForest, e2eAssign)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var lastBytes, lastSteps int64
	record("parbox/end-to-end-8sites", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := eng.ParBoX(ctx, prog)
			if err != nil {
				b.Fatal(err)
			}
			lastBytes, lastSteps = rep.Bytes, rep.TotalSteps
		}
	}), map[string]float64{
		"bytes_shipped": float64(lastBytes),
		"total_steps":   float64(lastSteps),
	})

	// --- Triplet wire codec -----------------------------------------------
	fr0, _ := e2eForest.Fragment(0)
	t0, _, err := eval.BottomUp(fr0.Root, solveProg)
	if err != nil {
		return err
	}
	enc := t0.Encode()
	// The production shape: one long-lived slab per connection/run drains
	// the stream, so per-formula allocations amortize to one per chunk.
	codecSlab := boolexpr.NewSlab()
	record("triplet/codec", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := t0.Encode()
			if _, err := eval.DecodeTripletSlab(buf, codecSlab); err != nil {
				b.Fatal(err)
			}
		}
	}), map[string]float64{"triplet_bytes": float64(len(enc))})

	// --- Serving: 64 concurrent overlapping queries, coalesced vs not -----
	// The subscription workload the paper cites as Boolean XPath's home
	// turf: six distinct standing queries shared by 64 subscribers, fired
	// concurrently against the 8-site forest. The distinct set fuses to
	// ~53 QList lanes — inside the scheduler's 64-lane budget, so the
	// whole burst fits in a round or two. Sequential is the naive server
	// (one ParBoX round per call); coalesced groups the burst via the
	// scheduler (no triplet cache here, so the speedup is attributable to
	// coalescing alone).
	subSrcs := []string{
		xmark.NamedQueries["BQ1-person-lookup"],
		xmark.NamedQueries["BQ2-bidder-increase"],
		xmark.NamedQueries["BQ3-closed-price"],
		xmark.NamedQueries["BQ5-absence"],
		xmark.NamedQueries["BQ6-region-items"],
		xmark.Queries[8],
	}
	const subscribers = 64
	subs := make([]*parbox.Prepared, subscribers)
	for i := range subs {
		q, err := parbox.Prepare(subSrcs[i%len(subSrcs)])
		if err != nil {
			return err
		}
		subs[i] = q
	}
	seqSys, err := parbox.Deploy(e2eForest, e2eAssign)
	if err != nil {
		return err
	}
	coSys, err := parbox.Deploy(e2eForest, e2eAssign, parbox.WithCoalescedServing(0, 0))
	if err != nil {
		return err
	}
	// solve_work/bottomup_steps split the round's site-side bottomUp
	// traversal from the coordinator's solve, so a profile regression can
	// be attributed to the right half without rerunning under pprof.
	var seqSolveWork, seqBottomUpSteps int64
	seqServe := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seqSolveWork, seqBottomUpSteps = 0, 0
			for _, q := range subs {
				res, err := seqSys.Exec(ctx, q, parbox.WithNoCoalesce())
				if err != nil {
					b.Fatal(err)
				}
				seqSolveWork += res.Boolean.SolveWork
				seqBottomUpSteps += res.TotalSteps - res.Boolean.SolveWork
			}
		}
	})
	var coSolveWork, coBottomUpSteps int64
	coResults := make([]*parbox.Result, subscribers)
	coBurst := func(b *testing.B, opts ...parbox.ExecOption) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A start barrier makes the 64 subscribers genuinely
			// concurrent in-flight callers (goroutine launch skew would
			// otherwise serialize arrivals behind the first round's CPU
			// load and understate what a loaded server sees).
			start := make(chan struct{})
			var wg sync.WaitGroup
			for si, q := range subs {
				wg.Add(1)
				go func(si int, q *parbox.Prepared) {
					defer wg.Done()
					<-start
					res, err := coSys.Exec(ctx, q, opts...)
					if err != nil {
						b.Error(err)
					}
					coResults[si] = res
				}(si, q)
			}
			close(start)
			wg.Wait()
			// Round reports are shared between round-mates (pointer
			// identity), so dedupe before summing the burst's work.
			coSolveWork, coBottomUpSteps = 0, 0
			seen := make(map[*parbox.BatchResult]bool)
			for _, res := range coResults {
				if res == nil || res.Sched == nil || seen[res.Sched.Round] {
					continue
				}
				seen[res.Sched.Round] = true
				rep := res.Sched.Round
				coSolveWork += rep.SolveWork
				coBottomUpSteps += rep.TotalSteps - rep.SolveWork
			}
		}
	}
	coServe := testing.Benchmark(func(b *testing.B) { coBurst(b) })
	coStats := coSys.SchedulerStats()
	serveSpeedup := float64(seqServe.NsPerOp()) / float64(coServe.NsPerOp())
	record("serve/sequential-64q", seqServe, map[string]float64{
		"queries":        subscribers,
		"solve_work":     float64(seqSolveWork),
		"bottomup_steps": float64(seqBottomUpSteps),
	})
	record("serve/coalesced-64q", coServe, map[string]float64{
		"queries":           subscribers,
		"speedup_x":         serveSpeedup,
		"rounds":            float64(coStats.Rounds),
		"queries_coalesced": float64(coStats.CoalescedQueries),
		"solve_work":        float64(coSolveWork),
		"bottomup_steps":    float64(coBottomUpSteps),
	})

	// --- Serving: the whole burst as ONE fused round -----------------------
	// The ceiling the coalescing scheduler approaches: all 64 subscriber
	// queries fused into a single shared QList and answered by one
	// ParBoXBatch round — one word-parallel bottomUp pass per fragment
	// evaluates every lane of every query simultaneously through the
	// precompiled lane kernel. No admission windows, no scheduler; the
	// per-op cost is one round (including the round's batch compile,
	// exactly what a scheduler flush pays), full stop.
	var fusedRep parbox.BatchResult
	var fusedLanes int
	fusedRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := seqSys.Exec(ctx, subs[0], parbox.WithBatch(subs[1:]...))
			if err != nil {
				b.Fatal(err)
			}
			fusedRep = *res.Batch
		}
	})
	fusedExprs := make([]xpath.Expr, subscribers)
	for i := range fusedExprs {
		e, err := xpath.Parse(subSrcs[i%len(subSrcs)])
		if err != nil {
			return err
		}
		fusedExprs[i] = e
	}
	fusedProg, _ := xpath.CompileBatch(fusedExprs)
	fusedLanes = len(fusedProg.Subs)
	record("serve/fused-64q", fusedRes, map[string]float64{
		"queries":        subscribers,
		"lanes":          float64(fusedLanes),
		"speedup_x":      float64(seqServe.NsPerOp()) / float64(fusedRes.NsPerOp()),
		"solve_work":     float64(fusedRep.SolveWork),
		"bottomup_steps": float64(fusedRep.TotalSteps - fusedRep.SolveWork),
	})

	// --- Serving: the coalesced burst with span collection on --------------
	// serve/observed-64q is serve/coalesced-64q's exact workload with
	// WithSpans() on every call: each round grows a span tree (collector,
	// per-lane attribution, trace-ring publication) the caller can
	// introspect. The gate is relative and measured in the same process —
	// observability may cost at most 5% over the untraced burst — so it
	// holds on fast and slow machines alike.
	obsBurst := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			start := make(chan struct{})
			var wg sync.WaitGroup
			for _, q := range subs {
				wg.Add(1)
				go func(q *parbox.Prepared) {
					defer wg.Done()
					<-start
					res, err := coSys.Exec(ctx, q, parbox.WithSpans())
					if err != nil {
						b.Error(err)
					} else if len(res.Spans) == 0 {
						b.Error("observed burst returned no spans")
					}
				}(q)
			}
			close(start)
			wg.Wait()
		}
	}
	obsServe := testing.Benchmark(obsBurst)
	obsOverheadPct := (float64(obsServe.NsPerOp())/float64(coServe.NsPerOp()) - 1) * 100
	if obsOverheadPct > 5 {
		// Concurrent bursts are noisy; re-measure both sides once before
		// declaring a regression.
		coServe2 := testing.Benchmark(func(b *testing.B) { coBurst(b) })
		obsServe2 := testing.Benchmark(obsBurst)
		if co2 := float64(coServe2.NsPerOp()); co2 > 0 {
			obsOverheadPct = (float64(obsServe2.NsPerOp())/co2 - 1) * 100
		}
		obsServe = obsServe2
	}
	record("serve/observed-64q", obsServe, map[string]float64{
		"queries":      subscribers,
		"overhead_pct": obsOverheadPct,
	})
	if obsOverheadPct > 5 {
		return fmt.Errorf("serve/observed-64q: span collection costs %.1f%% over serve/coalesced-64q (gate 5%%)", obsOverheadPct)
	}

	// --- Serving: warm triplet cache, repeated rounds ----------------------
	// A standing query re-executed over unchanged fragments: after the
	// cold round every site answers from its versioned cache, so the only
	// computation left anywhere is the coordinator's solve.
	cacheSys, err := parbox.Deploy(e2eForest, e2eAssign, parbox.WithTripletCache())
	if err != nil {
		return err
	}
	warmQ, err := parbox.Prepare(xmark.Queries[*query])
	if err != nil {
		return err
	}
	if _, err := cacheSys.Exec(ctx, warmQ); err != nil { // cold round
		return err
	}
	var warmHits, warmBottomUpSteps int64
	warmRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := cacheSys.Exec(ctx, warmQ)
			if err != nil {
				b.Fatal(err)
			}
			warmHits = res.CacheHits
			warmBottomUpSteps = res.TotalSteps - res.Boolean.SolveWork
		}
	})
	record("serve/warm-cache", warmRes, map[string]float64{
		"cache_hits_per_round": float64(warmHits),
		"bottomup_steps":       float64(warmBottomUpSteps),
	})

	// --- Transport: 64 concurrent queries against 8 real TCP sites --------
	// The wire-protocol refactor's target metric: v1 holds each peer
	// connection exclusively for one request/response round trip, so 64
	// concurrent Boolean queries serialize behind the per-site
	// connection; v2 multiplexes unlimited requests per connection and
	// the sites serve them concurrently. The p50 per-query latency of
	// the burst is what a subscriber of a loaded dissemination server
	// experiences.
	//
	// The benchmark host is one machine standing in for nine: if the
	// sites' evaluation burned this host's cores, the coordinator and
	// all eight "remote" CPUs would contend and the transport behaviour
	// under test would be swamped (worst on single-core CI runners). So
	// — the same philosophy as CostModel.RealDelays for the in-process
	// cluster — each site charges its evalQual a fixed modeled service
	// time by sleeping, emulating a dedicated remote CPU, and the forest
	// is small enough that real decode/solve work stays marginal.
	const fanoutServiceTime = 2 * time.Millisecond
	fanoutProgs := make([]*xpath.Program, len(subSrcs))
	for i, src := range subSrcs {
		fanoutProgs[i] = xpath.MustCompileString(src)
	}
	fanoutRoot, fanoutSiteRoots, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       17,
		Parents:    xmark.StarParents(8),
		MBs:        xmark.EvenMBs(0.8, 8),
		NodesPerMB: 2500,
	})
	if err != nil {
		return err
	}
	fanoutForest, err := xmark.Fragment(fanoutRoot, fanoutSiteRoots)
	if err != nil {
		return err
	}
	fanoutSt, err := frag.BuildSourceTree(fanoutForest, e2eAssign)
	if err != nil {
		return err
	}
	runFanout := func(forceV1 bool) (testing.BenchmarkResult, float64, float64, error) {
		addrs := make(map[frag.SiteID]string, 8)
		var servers []*cluster.Server
		var trs []*cluster.TCPTransport
		defer func() {
			for _, tr := range trs {
				tr.Close()
			}
			for _, srv := range servers {
				srv.Close()
			}
		}()
		for i := 0; i < 8; i++ {
			id := frag.SiteID(fmt.Sprintf("S%d", i))
			site := cluster.NewSite(id)
			for _, fid := range fanoutSt.FragmentsAt(id) {
				fr, ok := fanoutForest.Fragment(fid)
				if !ok {
					return testing.BenchmarkResult{}, 0, 0, fmt.Errorf("missing fragment %d", fid)
				}
				site.AddFragment(fr)
			}
			siteTr := cluster.NewTCPTransport(nil)
			siteTr.Local(site)
			trs = append(trs, siteTr)
			core.RegisterHandlers(site, siteTr, cluster.DefaultCostModel())
			if inner, ok := site.HandlerFor(core.KindEvalQual); ok {
				site.Handle(core.KindEvalQual, func(ctx context.Context, s *cluster.Site, req cluster.Request) (cluster.Response, error) {
					time.Sleep(fanoutServiceTime) // the emulated remote CPU
					return inner(ctx, s, req)
				})
			}
			srv, err := cluster.Serve(site, "127.0.0.1:0")
			if err != nil {
				return testing.BenchmarkResult{}, 0, 0, err
			}
			servers = append(servers, srv)
			addrs[id] = srv.Addr()
		}
		coordTr := cluster.NewTCPTransport(addrs)
		coordTr.ForceV1 = forceV1
		trs = append(trs, coordTr)
		// A pure coordinator ("C" hosts nothing): every round visits all
		// 8 sites over real sockets.
		eng := core.NewEngine(coordTr, "C", fanoutSt, cluster.DefaultCostModel())
		burst := func() ([]time.Duration, error) {
			lat := make([]time.Duration, subscribers)
			errs := make([]error, subscribers)
			start := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < subscribers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					<-start
					t0 := time.Now()
					_, err := eng.ParBoX(ctx, fanoutProgs[i%len(fanoutProgs)])
					lat[i] = time.Since(t0)
					errs[i] = err
				}(i)
			}
			close(start)
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			return lat, nil
		}
		if _, err := burst(); err != nil { // warmup: dial + handshake + caches
			return testing.BenchmarkResult{}, 0, 0, err
		}
		var all []time.Duration
		var total time.Duration
		for r := 0; r < 3; r++ {
			lat, err := burst()
			if err != nil {
				return testing.BenchmarkResult{}, 0, 0, err
			}
			for _, d := range lat {
				total += d
			}
			all = append(all, lat...)
		}
		sortDurations(all)
		p50 := float64(all[len(all)/2])
		p95 := float64(all[len(all)*95/100])
		return testing.BenchmarkResult{N: len(all), T: total}, p50, p95, nil
	}
	v1Res, v1p50, v1p95, err := runFanout(true)
	if err != nil {
		return err
	}
	v2Res, v2p50, v2p95, err := runFanout(false)
	if err != nil {
		return err
	}
	fanoutSpeedup := v1p50 / v2p50
	record("serve/fanout-8sites-v1", v1Res, map[string]float64{
		"queries_per_burst": subscribers,
		"p50_ns":            v1p50,
		"p95_ns":            v1p95,
	})
	record("serve/fanout-8sites-v2", v2Res, map[string]float64{
		"queries_per_burst": subscribers,
		"p50_ns":            v2p50,
		"p95_ns":            v2p95,
		"p50_speedup_x":     fanoutSpeedup,
	})

	// --- Durability: cold start vs snapshot recovery vs warm restart ------
	// Three restart shapes of the durable fragment store on the same
	// 8-site forest. cold-start pays Deploy + WAL seeding + the first
	// (uncached) query; recover pays Restore from a checkpointed store
	// (snapshot replay, no WAL) + the first query recomputed bottom-up;
	// warm-restart restores with the journaled triplet cache, so the
	// first post-restart query answers with zero bottomUp steps.
	durRoot, err := os.MkdirTemp("", "parbox-bench-durable-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(durRoot)
	record("durable/cold-start", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp(durRoot, "cold-")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			sys, err := parbox.Deploy(e2eForest, e2eAssign,
				parbox.WithDurability(dir), parbox.WithTripletCache())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Exec(ctx, warmQ); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			sys.Close()
			os.RemoveAll(dir)
			b.StartTimer()
		}
	}), map[string]float64{"fragments": 8})

	prepareDir := func(name string, opts ...parbox.Option) (string, error) {
		dir := durRoot + "/" + name
		sys, err := parbox.Deploy(e2eForest, e2eAssign,
			append([]parbox.Option{parbox.WithDurability(dir)}, opts...)...)
		if err != nil {
			return "", err
		}
		if _, err := sys.Exec(ctx, warmQ); err != nil {
			return "", err
		}
		return dir, sys.Close() // checkpoint: recovery replays the snapshot only
	}
	recDir, err := prepareDir("recover")
	if err != nil {
		return err
	}
	record("durable/recover", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys, err := parbox.Restore(recDir)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Exec(ctx, warmQ); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			sys.Close()
			b.StartTimer()
		}
	}), map[string]float64{"fragments": 8})

	warmDir, err := prepareDir("warm", parbox.WithTripletCache())
	if err != nil {
		return err
	}
	var restartHits, restartBottomUp int64
	record("durable/warm-restart", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys, err := parbox.Restore(warmDir, parbox.WithTripletCache())
			if err != nil {
				b.Fatal(err)
			}
			res, err := sys.Exec(ctx, warmQ)
			if err != nil {
				b.Fatal(err)
			}
			restartHits = res.CacheHits
			restartBottomUp = res.TotalSteps - res.Boolean.SolveWork
			b.StopTimer()
			sys.Close()
			b.StartTimer()
		}
	}), map[string]float64{
		"first_query_cache_hits": float64(restartHits),
		"bottomup_steps":         float64(restartBottomUp),
	})

	// --- Serving tier: 64-query burst with one of 8 TCP sites killed ------
	// The failover SLO in wall-clock terms: the fanout forest replicated
	// 2x in a ring (fragment i on S_i and S_(i+1)), served by the
	// replica-aware tier over real sockets. A quarter of the burst is
	// allowed to finish, then one site's server is closed under the
	// remaining queries. Every query must still answer; the p99 carries
	// the failed-call + reassign detour and the failover/reassign counts
	// make the tier's recovery work visible in the JSON.
	failoverReplicas := core.ReplicaMap{}
	for i := 0; i < 8; i++ {
		failoverReplicas[xmltree.FragmentID(i)] = []frag.SiteID{
			frag.SiteID(fmt.Sprintf("S%d", i)),
			frag.SiteID(fmt.Sprintf("S%d", (i+1)%8)),
		}
	}
	runFailover := func() (testing.BenchmarkResult, map[string]float64, error) {
		fail := func(err error) (testing.BenchmarkResult, map[string]float64, error) {
			return testing.BenchmarkResult{}, nil, err
		}
		addrs := make(map[frag.SiteID]string, 8)
		servers := make(map[frag.SiteID]*cluster.Server, 8)
		var trs []*cluster.TCPTransport
		defer func() {
			for _, tr := range trs {
				tr.Close()
			}
			for _, srv := range servers {
				srv.Close()
			}
		}()
		for i := 0; i < 8; i++ {
			id := frag.SiteID(fmt.Sprintf("S%d", i))
			site := cluster.NewSite(id)
			for fid, sites := range failoverReplicas {
				for _, s := range sites {
					if s != id {
						continue
					}
					fr, ok := fanoutForest.Fragment(fid)
					if !ok {
						return fail(fmt.Errorf("missing fragment %d", fid))
					}
					site.AddFragment(fr)
				}
			}
			siteTr := cluster.NewTCPTransport(nil)
			siteTr.Local(site)
			trs = append(trs, siteTr)
			core.RegisterHandlers(site, siteTr, cluster.DefaultCostModel())
			serve.RegisterHandlers(site)
			if inner, ok := site.HandlerFor(core.KindEvalQual); ok {
				site.Handle(core.KindEvalQual, func(ctx context.Context, s *cluster.Site, req cluster.Request) (cluster.Response, error) {
					time.Sleep(fanoutServiceTime) // the emulated remote CPU
					return inner(ctx, s, req)
				})
			}
			// A real site crash does not drain: the millisecond timeout
			// force-closes connections with requests still in flight, so
			// killing the victim actually fails the calls it was serving.
			srv, err := cluster.ServeWith(site, "127.0.0.1:0",
				cluster.ServeConfig{DrainTimeout: time.Millisecond})
			if err != nil {
				return fail(err)
			}
			servers[id] = srv
			addrs[id] = srv.Addr()
		}
		coordTr := cluster.NewTCPTransport(addrs)
		trs = append(trs, coordTr)
		tier := serve.NewTier(coordTr, "C", fanoutForest, failoverReplicas,
			serve.Options{ProbeInterval: -1})
		eng := core.NewEngine(coordTr, "C", fanoutSt, cluster.DefaultCostModel())
		eng.SetTier(tier)
		// 16 workers, 4 sequential queries each: unlike the fanout bench's
		// single wave, queries keep STARTING throughout the burst, so a
		// mid-burst kill is guaranteed to land in front of rounds that have
		// not yet called the victim.
		const failoverWorkers = 16
		perWorker := subscribers / failoverWorkers
		burst := func(victim frag.SiteID) ([]time.Duration, int64, error) {
			lat := make([]time.Duration, subscribers)
			errs := make([]error, subscribers)
			fo := make([]int64, subscribers)
			var done atomic.Int64
			start := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < failoverWorkers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					<-start
					for q := 0; q < perWorker; q++ {
						i := w*perWorker + q
						t0 := time.Now()
						rep, err := eng.Run(ctx, core.AlgoParBoX, fanoutProgs[i%len(fanoutProgs)])
						lat[i] = time.Since(t0)
						errs[i] = err
						fo[i] = rep.Failovers
						done.Add(1)
					}
				}(w)
			}
			close(start)
			if victim != "" {
				// Let a quarter of the burst complete against the healthy
				// ring, then kill one site under the rest.
				for done.Load() < subscribers/4 {
					time.Sleep(200 * time.Microsecond)
				}
				servers[victim].Close()
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, 0, err
				}
			}
			var failovers int64
			for _, n := range fo {
				failovers += n
			}
			return lat, failovers, nil
		}
		if _, _, err := burst(""); err != nil { // warmup: dial + handshake + caches
			return fail(err)
		}
		lat, failovers, err := burst("S3")
		if err != nil {
			return fail(err)
		}
		var total time.Duration
		for _, d := range lat {
			total += d
		}
		sortDurations(lat)
		stats := tier.Stats()
		return testing.BenchmarkResult{N: len(lat), T: total}, map[string]float64{
			"queries_per_burst": subscribers,
			"p50_ns":            float64(lat[len(lat)/2]),
			"p99_ns":            float64(lat[len(lat)*99/100]),
			"failovers":         float64(failovers),
			"reassigns":         float64(stats.Reassigns),
		}, nil
	}
	failRes, failMetrics, err := runFailover()
	if err != nil {
		return err
	}
	record("serve/failover-8sites", failRes, failMetrics)

	// --- Serving tier: hedging and admission under overload ---------------
	// Shared runner for the two overload-protection scenarios: the fanout
	// forest replicated per the given map over 8 real TCP sites, each
	// charging the modeled service time (slow sites charge more), with
	// optional per-site admission bounds. 16 workers × 4 sequential
	// queries, identical to the failover burst; every query must answer.
	runOverload := func(replicas core.ReplicaMap, slow map[frag.SiteID]time.Duration,
		admission int, opt serve.Options, pol backoff.Policy,
	) (lat []time.Duration, sheds, hedges, hedgeWins int64, elapsed time.Duration, err error) {
		addrs := make(map[frag.SiteID]string, 8)
		var servers []*cluster.Server
		var trs []*cluster.TCPTransport
		defer func() {
			for _, tr := range trs {
				tr.Close()
			}
			for _, srv := range servers {
				srv.Close()
			}
		}()
		for i := 0; i < 8; i++ {
			id := frag.SiteID(fmt.Sprintf("S%d", i))
			site := cluster.NewSite(id)
			for fid, sites := range replicas {
				for _, s := range sites {
					if s != id {
						continue
					}
					fr, ok := fanoutForest.Fragment(fid)
					if !ok {
						return nil, 0, 0, 0, 0, fmt.Errorf("missing fragment %d", fid)
					}
					site.AddFragment(fr)
				}
			}
			siteTr := cluster.NewTCPTransport(nil)
			siteTr.Local(site)
			trs = append(trs, siteTr)
			core.RegisterHandlers(site, siteTr, cluster.DefaultCostModel())
			serve.RegisterHandlers(site)
			service := fanoutServiceTime
			if d, ok := slow[id]; ok {
				service = d
			}
			if inner, ok := site.HandlerFor(core.KindEvalQual); ok {
				site.Handle(core.KindEvalQual, func(ctx context.Context, s *cluster.Site, req cluster.Request) (cluster.Response, error) {
					time.Sleep(service) // the emulated remote CPU
					return inner(ctx, s, req)
				})
			}
			if admission > 0 {
				site.SetAdmission(cluster.AdmissionLimits{MaxInflight: admission})
			}
			srv, err := cluster.Serve(site, "127.0.0.1:0")
			if err != nil {
				return nil, 0, 0, 0, 0, err
			}
			servers = append(servers, srv)
			addrs[id] = srv.Addr()
		}
		coordTr := cluster.NewTCPTransport(addrs)
		trs = append(trs, coordTr)
		tier := serve.NewTier(coordTr, "C", fanoutForest, replicas, opt)
		eng := core.NewEngine(coordTr, "C", fanoutSt, cluster.DefaultCostModel())
		eng.SetTier(tier)
		eng.SetRetryPolicy(pol)
		const overloadWorkers = 16
		perWorker := subscribers / overloadWorkers
		burst := func() ([]time.Duration, int64, int64, error) {
			lat := make([]time.Duration, subscribers)
			errs := make([]error, subscribers)
			var h, hw atomic.Int64
			start := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < overloadWorkers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					<-start
					for q := 0; q < perWorker; q++ {
						i := w*perWorker + q
						t0 := time.Now()
						rep, err := eng.Run(ctx, core.AlgoParBoX, fanoutProgs[i%len(fanoutProgs)])
						lat[i] = time.Since(t0)
						errs[i] = err
						h.Add(rep.Hedges)
						hw.Add(rep.HedgeWins)
					}
				}(w)
			}
			close(start)
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, 0, 0, err
				}
			}
			return lat, h.Load(), hw.Load(), nil
		}
		if _, _, _, err := burst(); err != nil { // warmup: dial + handshake + caches
			return nil, 0, 0, 0, 0, err
		}
		shedsBefore := coordTr.Metrics().TotalSheds()
		t0 := time.Now()
		lat, hedges, hedgeWins, err = burst()
		elapsed = time.Since(t0)
		if err != nil {
			return nil, 0, 0, 0, 0, err
		}
		sortDurations(lat)
		return lat, coordTr.Metrics().TotalSheds() - shedsBefore, hedges, hedgeWins, elapsed, nil
	}

	// serve/hedged-8sites: one replica serves 50x slower than its ring
	// siblings. The replica map routes only one fragment to the slow site
	// (with a sibling holding it too), so every job landing there is
	// hedgeable; the p99 contrast against the same cluster with hedging
	// off is the tail the hedge cuts.
	const hedgeSlowdown = 50
	hedgeReplicas := core.ReplicaMap{}
	for fid, sites := range failoverReplicas {
		hedgeReplicas[fid] = append([]frag.SiteID(nil), sites...)
	}
	// Fragment 2 moves off the slow S3 (to the S2/S4 pair), so S3 serves
	// only fragment 3 — singleton jobs a sibling can always cover.
	hedgeReplicas[2] = []frag.SiteID{"S2", "S4"}
	slowSite := map[frag.SiteID]time.Duration{"S3": hedgeSlowdown * fanoutServiceTime}
	unhedgedLat, _, _, _, _, err := runOverload(hedgeReplicas, slowSite, 0,
		serve.Options{ProbeInterval: -1}, backoff.Policy{Budget: 16})
	if err != nil {
		return err
	}
	hedgedLat, _, hedgeCount, hedgeWinCount, hedgedElapsed, err := runOverload(hedgeReplicas, slowSite, 0,
		serve.Options{ProbeInterval: -1, Hedging: true, HedgeDelay: 2 * fanoutServiceTime},
		backoff.Policy{Budget: 16})
	if err != nil {
		return err
	}
	unhedgedP99 := float64(unhedgedLat[len(unhedgedLat)*99/100])
	hedgedP99 := float64(hedgedLat[len(hedgedLat)*99/100])
	record("serve/hedged-8sites", testing.BenchmarkResult{N: len(hedgedLat), T: hedgedElapsed}, map[string]float64{
		"queries_per_burst": subscribers,
		"slowdown_x":        hedgeSlowdown,
		"p50_ns":            float64(hedgedLat[len(hedgedLat)/2]),
		"p99_ns":            hedgedP99,
		"p99_unhedged_ns":   unhedgedP99,
		"tail_cut_x":        unhedgedP99 / hedgedP99,
		"hedges":            float64(hedgeCount),
		"hedge_wins":        float64(hedgeWinCount),
	})

	// serve/shed-overload: every site bounds admission at 2 concurrent
	// requests while the 16-worker burst offers far more. The sheds are
	// real typed refusals observed at the coordinator's transport; the
	// burst still answers every query through budgeted, backed-off
	// retries and replica failover.
	shedLat, shedCount, _, _, shedElapsed, err := runOverload(failoverReplicas, nil, 2,
		serve.Options{ProbeInterval: -1}, backoff.Policy{Budget: 64})
	if err != nil {
		return err
	}
	record("serve/shed-overload", testing.BenchmarkResult{N: len(shedLat), T: shedElapsed}, map[string]float64{
		"queries_per_burst": subscribers,
		"max_inflight":      2,
		"p50_ns":            float64(shedLat[len(shedLat)/2]),
		"p99_ns":            float64(shedLat[len(shedLat)*99/100]),
		"sheds":             float64(shedCount),
	})

	// --- Serving tier: live rebalancing of a skewed replica layout --------
	// Everything except the root starts replicated on just B and C while
	// the coordinator A sits idle (local calls are free, so the cluster's
	// remote-visit counters make it a guaranteed cold site). Rebalance
	// passes, fed traffic between them, migrate the hottest exclusive
	// fragments onto A until a pass declines. Since a fragment served at
	// the coordinator ships zero bytes, the wire bytes of a 32-query
	// burst before vs after measure how much serving the rebalancer moved
	// off the network.
	rbReplicas := parbox.ReplicaMap{0: {"A"}}
	for i := 1; i < 8; i++ {
		rbReplicas[xmltree.FragmentID(i)] = []parbox.SiteID{"B", "C"}
	}
	rbSys, err := parbox.DeployReplicated(e2eForest, rbReplicas, parbox.PlaceFirst,
		parbox.WithFailover(), parbox.WithRebalancing(0))
	if err != nil {
		return err
	}
	rbBurst := func() (int64, error) {
		var bytes int64
		for i := 0; i < 32; i++ {
			res, err := rbSys.Exec(ctx, subs[i%len(subs)])
			if err != nil {
				return 0, err
			}
			bytes += res.Bytes
		}
		return bytes, nil
	}
	bytesBefore, err := rbBurst()
	if err != nil {
		return err
	}
	rbStart := time.Now()
	passes := 0
	for passes < 8 {
		passes++
		moved, err := rbSys.Rebalance(ctx)
		if err != nil {
			return err
		}
		if moved == 0 {
			break
		}
		// Fresh traffic so the next pass judges the post-migration routing
		// rather than an empty window.
		if _, err := rbBurst(); err != nil {
			return err
		}
	}
	rbElapsed := time.Since(rbStart)
	bytesAfter, err := rbBurst()
	if err != nil {
		return err
	}
	onCoord := 0
	for _, sites := range rbSys.Replicas() {
		for _, s := range sites {
			if s == "A" {
				onCoord++
				break
			}
		}
	}
	record("serve/rebalance", testing.BenchmarkResult{N: passes, T: rbElapsed}, map[string]float64{
		"migrations":         float64(rbSys.ServeStats().Migrations),
		"passes":             float64(passes),
		"frags_on_coord":     float64(onCoord),
		"burst_bytes_before": float64(bytesBefore),
		"burst_bytes_after":  float64(bytesAfter),
	})

	// --- Standing subscriptions: per-update cost vs subscriber count ------
	// The pubsub pitch: subscriptions dedupe to per-query solver states, so
	// an update that flips nothing costs the same whether 64 or 10,000
	// subscribers are standing — the sites maintain one triplet per
	// (fragment, program) and push only on root-formula flips. The bench
	// drives non-matching setText updates through a view with both
	// populations and records the ratio, which must stay near 1.
	subRoot, subSiteRoots, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       11,
		Parents:    xmark.StarParents(4),
		MBs:        xmark.EvenMBs(1.0, 4),
		NodesPerMB: xmark.DefaultNodesPerMB,
	})
	if err != nil {
		return err
	}
	subForest, err := xmark.Fragment(subRoot, subSiteRoots)
	if err != nil {
		return err
	}
	subAssign := frag.Assignment{}
	for i := 0; i < 4; i++ {
		subAssign[xmltree.FragmentID(i)] = frag.SiteID(fmt.Sprintf("U%d", i))
	}
	subSys, err := parbox.Deploy(subForest, subAssign, parbox.WithTripletCache())
	if err != nil {
		return err
	}
	defer subSys.Close()
	subView, err := subSys.Materialize(ctx, subs[0])
	if err != nil {
		return err
	}
	// A probe leaf no subscription matches: every update to it is a
	// maintenance no-op for all standing programs (spine recompute, no
	// delta, no notification).
	if _, err := subView.Update(ctx, 1, []parbox.UpdateOp{{Op: parbox.OpInsert, Label: "bench-probe"}}); err != nil {
		return err
	}
	subFr1, _ := subForest.Fragment(1)
	probePath := []int{len(subFr1.Root.Children) - 1}
	measureUpdates := func(nSubs int) (testing.BenchmarkResult, error) {
		held := make([]*parbox.Subscription, nSubs)
		for i := range held {
			s, err := subSys.Subscribe(ctx, subs[i%len(subSrcs)])
			if err != nil {
				return testing.BenchmarkResult{}, err
			}
			held[i] = s
			go func(s *parbox.Subscription) {
				for {
					select {
					case <-s.C():
					case <-s.Done():
						return
					}
				}
			}(s)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := subView.Update(ctx, 1, []parbox.UpdateOp{{
					Op: parbox.OpSetText, Path: probePath, Text: fmt.Sprintf("v%d", i),
				}}); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, s := range held {
			s.Cancel()
		}
		return res, nil
	}
	subSmall, err := measureUpdates(64)
	if err != nil {
		return err
	}
	subLarge, err := measureUpdates(10000)
	if err != nil {
		return err
	}
	subRatio := float64(subLarge.NsPerOp()) / float64(max64(subSmall.NsPerOp(), 1))
	record("serve/subscriptions", subLarge, map[string]float64{
		"standing_subs":     10000,
		"distinct_queries":  float64(len(subSrcs)),
		"ns_per_update_64":  float64(subSmall.NsPerOp()),
		"ns_per_update_10k": float64(subLarge.NsPerOp()),
		"sub_count_cost_x":  subRatio,
	})
	if subRatio > 5 {
		return fmt.Errorf("serve/subscriptions: per-update cost grew %.1fx from 64 to 10k standing subs (want ~1x: cost must not scale with subscriber count)", subRatio)
	}

	payload := struct {
		Generated  string        `json:"generated"`
		Go         string        `json:"go"`
		Benchmarks []benchResult `json:"benchmarks"`
	}{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	if !*quiet {
		fmt.Printf("wrote %s (bottomup speedup %.1fx, alloc reduction %.0fx, serve coalescing %.1fx, v2 fanout p50 %.1fx)\n",
			*out, speedup, allocRatio, serveSpeedup, fanoutSpeedup)
	}
	if *compare != "" {
		m := make(map[string]benchPoint, len(results))
		for _, r := range results {
			m[r.Name] = benchPoint{NsPerOp: r.NsPerOp, AllocsPerOp: r.AllocsPerOp, Derived: r.Derived}
		}
		return compareBaseline(*compare, *compareMetric, *tolerance, m)
	}
	return nil
}

// benchPoint is the (ns/op, allocs/op) pair the regression gate compares.
// Derived rows carry only ratio metrics and are never gated.
type benchPoint struct {
	NsPerOp     float64
	AllocsPerOp int64
	Derived     bool
}

// gateExempt lists benchmarks whose counts depend on goroutine scheduling
// rather than on the code: serve/coalesced-64q's allocs/op scale with how
// many rounds the scheduler forms per burst, which varies with core count
// and load. Gating on them would fail unrelated PRs on busy runners; the
// numbers are still recorded for eyeballing.
var gateExempt = map[string]bool{
	"serve/coalesced-64q":    true,
	"serve/observed-64q":     true, // gated inline against coalesced-64q (≤5% overhead)
	"serve/fanout-8sites-v1": true, // latency of a real-socket burst:
	"serve/fanout-8sites-v2": true, // machine- and scheduler-dependent
	"serve/failover-8sites":  true, // when the kill lands varies per run
	"serve/rebalance":        true, // convergence passes depend on routing noise
	"serve/hedged-8sites":    true, // hedge races are timer- and load-dependent
	"serve/shed-overload":    true, // shed/retry counts depend on arrival timing
	"serve/subscriptions":    true, // gated inline on the 64-vs-10k cost ratio (≤5x)
}

// sortDurations sorts in place, ascending (for percentile extraction).
func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}

// compareBaseline diffs the freshly measured benchmarks against a recorded
// baseline file and fails on regressions beyond the tolerance: ns/op
// and/or allocs/op, per the metric selector. Benchmarks present on only
// one side are ignored (new benchmarks must not fail old baselines, and
// CI may run a benchmark subset), as are the scheduling-dependent ones in
// gateExempt. A small absolute slack on allocs (+2) keeps near-zero
// counts from tripping on ±1 noise.
func compareBaseline(path, metric string, tolerance float64, fresh map[string]benchPoint) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench -compare: %w", err)
	}
	var baseline struct {
		Benchmarks []struct {
			Name        string  `json:"name"`
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp int64   `json:"allocs_per_op"`
			Derived     bool    `json:"derived"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("bench -compare: parsing %s: %w", path, err)
	}
	checkNs := metric == "ns" || metric == "both"
	checkAllocs := metric == "allocs" || metric == "both"
	if !checkNs && !checkAllocs {
		return fmt.Errorf("bench -compare-metric must be ns, allocs or both, not %q", metric)
	}
	var regressions []string
	for _, old := range baseline.Benchmarks {
		cur, ok := fresh[old.Name]
		if !ok || gateExempt[old.Name] || old.Derived || cur.Derived {
			continue
		}
		if checkNs && old.NsPerOp > 0 && cur.NsPerOp > old.NsPerOp*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: ns/op %.0f -> %.0f (+%.0f%%, tolerance %.0f%%)",
				old.Name, old.NsPerOp, cur.NsPerOp,
				100*(cur.NsPerOp/old.NsPerOp-1), 100*tolerance))
		}
		if checkAllocs && cur.AllocsPerOp > int64(float64(old.AllocsPerOp)*(1+tolerance))+2 {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %d -> %d (tolerance %.0f%% + 2)",
				old.Name, old.AllocsPerOp, cur.AllocsPerOp, 100*tolerance))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench -compare: %d regression(s) vs %s:\n  %s",
			len(regressions), path, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("bench -compare: no regressions vs %s (%s, tolerance %.0f%%)\n", path, metric, 100*tolerance)
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Command parbox-bench regenerates the figures and tables of the paper's
// experimental study (Section 6) on the simulated cluster and prints them
// as text tables — one row per x-axis point, one column per series,
// exactly the data behind Figs. 7–13, the Fig. 4 summary table and the
// Section 5 maintenance costs.
//
// Usage:
//
//	parbox-bench -exp all
//	parbox-bench -exp fig7 -scale 2500 -machines 10 -seed 1
//
// -scale converts paper megabytes to nodes (default 2500, the calibrated
// full scale; smaller values run faster with the same shapes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig7|fig8|fig9|fig10|fig11|fig12|fig13|table4|selection|views|all")
		scale    = flag.Int("scale", 0, "nodes per paper-MB (default 2500)")
		machines = flag.Int("machines", 10, "maximum machine count for the sweeps")
		seed     = flag.Int64("seed", 1, "workload generator seed")
	)
	flag.Parse()

	cfg := experiments.Config{
		NodesPerMB:  *scale,
		Seed:        *seed,
		MaxMachines: *machines,
	}

	type figFn func(experiments.Config) (*experiments.Figure, error)
	figs := []struct {
		name string
		fn   figFn
	}{
		{"fig7", experiments.Fig7},
		{"fig8", experiments.Fig8},
		{"fig9", experiments.Fig9},
		{"fig10", experiments.Fig10},
		{"fig11", experiments.Fig11},
		{"fig12", experiments.Fig12},
		{"fig13", experiments.Fig13},
	}

	want := strings.ToLower(*exp)
	ran := false
	for _, f := range figs {
		if want != "all" && want != f.name {
			continue
		}
		ran = true
		start := time.Now()
		fig, err := f.fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbox-bench: %s: %v\n", f.name, err)
			os.Exit(1)
		}
		fmt.Println(fig.String())
		fmt.Printf("(%s computed in %v)\n\n", f.name, time.Since(start).Round(time.Millisecond))
	}
	if want == "all" || want == "table4" {
		ran = true
		rows, err := experiments.Table4(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbox-bench: table4: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FormatTable4(rows))
		fmt.Println()
	}
	if want == "all" || want == "selection" {
		ran = true
		rows, err := experiments.SelectionExp(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbox-bench: selection: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FormatSelection(rows))
		fmt.Println()
	}
	if want == "all" || want == "views" {
		ran = true
		rows, err := experiments.ViewsExp(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbox-bench: views: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FormatViews(rows))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "parbox-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

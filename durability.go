package parbox

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/store"
	"repro/internal/views"
	"repro/internal/xmltree"
)

// restoreWarnf reports a non-fatal inconsistency Restore repaired; tests
// override it to assert on (or silence) the warning.
var restoreWarnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// WithDurability gives every site of the deployment a durable fragment
// store rooted at dir (one subdirectory per site): a segmented, CRC-checked
// write-ahead log of fragment mutations — view-maintenance updates,
// Split/Merge, version bumps — plus periodic snapshots with WAL truncation.
// After a crash, Restore(dir) rebuilds the system from disk with every
// fragment version exactly as it was, so the versioned triplet cache
// (WithTripletCache) warm-starts and unchanged fragments answer with zero
// bottomUp steps immediately after restart.
//
// Deploy seeds the stores from the forest and therefore requires dir to
// hold no previous state; restarting from existing state is Restore's job.
// Shut down with System.Close for a checkpointed (snapshot-only) restart.
func WithDurability(dir string) Option {
	return func(o *options) { o.dataDir = dir }
}

// WithResidentFragments bounds how many fragments each site keeps in
// memory (0 = unbounded, the default). Requires WithDurability: colder
// fragments are evicted from the resident table and transparently
// reloaded from the site's store on access, so a site can host a forest
// larger than RAM. The bound must exceed the number of fragments a site
// serves or mutates concurrently.
func WithResidentFragments(n int) Option {
	return func(o *options) { o.residentLimit = n }
}

// WithSyncWrites makes every WAL append fsync before the mutation is
// acknowledged. Off by default: unsynced writes survive a process crash
// (the OS holds them), and checkpoints always sync; turn this on when the
// failure model includes the whole machine going down mid-write.
func WithSyncWrites() Option {
	return func(o *options) { o.syncWrites = true }
}

func storeOptions(o options) store.Options {
	return store.Options{SyncWrites: o.syncWrites}
}

func siteDirName(id SiteID) (string, error) {
	if id == "" || strings.ContainsAny(string(id), "/\\") || string(id)[0] == '.' {
		return "", fmt.Errorf("parbox: site name %q cannot name a data subdirectory", id)
	}
	return string(id), nil
}

// attachStores opens one store per deployed site, seeds each with the
// site's fragments at their current versions, and attaches them so every
// later mutation is journaled. Called by Deploy when WithDurability is
// given.
//
// It is crash-idempotent across the whole directory, not just per site: a
// previous Deploy that died between per-site seed checkpoints leaves some
// sites completed and others torn or missing — a state neither Restore
// (incomplete) nor a naive per-site check (the completed sites look used)
// could get out of. Since nothing is ever served before Deploy returns,
// any mixed state is a failed seeding: it is wiped wholesale and reseeded
// from the caller's forest. Only a directory where every site completed
// is refused as live state ("use Restore").
func (s *System) attachStores(o options) error {
	s.stores = make(map[SiteID]*store.Store)
	type opened struct {
		id    SiteID
		dir   string
		st    *store.Store
		fresh bool // held no completed state when opened (safe to clean up)
	}
	var all []opened
	abort := func(err error) error {
		// Discard, never Close: a checkpoint would stamp an incomplete
		// seed as complete. Cleanup touches only store-owned files of dirs
		// that held no completed state, and removes a subdirectory only
		// when that leaves it empty.
		for _, op := range all {
			op.st.Discard()
			if op.fresh {
				store.Wipe(op.dir)
				os.Remove(op.dir)
			}
		}
		s.stores = nil
		return err
	}

	// Pass 1 — open and classify every site's store (OpenSeedable already
	// wipes per-site torn seeds).
	completed := 0
	for _, siteID := range s.engine.SourceTree().Sites() {
		name, err := siteDirName(siteID)
		if err != nil {
			return abort(err)
		}
		dir := filepath.Join(o.dataDir, name)
		st, err := store.OpenSeedable(dir, storeOptions(o))
		if err != nil {
			return abort(err)
		}
		fresh := st.Empty()
		if !fresh {
			completed++
		}
		all = append(all, opened{id: siteID, dir: dir, st: st, fresh: fresh})
	}
	if completed == len(all) && completed > 0 {
		return abort(fmt.Errorf("parbox: data dir %s already holds a completed deployment; use Restore to restart from it", o.dataDir))
	}
	if completed > 0 {
		// Mixed: a Deploy crashed between per-site seed checkpoints. The
		// completed sites hold seed data only; wipe and reseed everything.
		for i := range all {
			all[i].st.Discard()
			if err := store.Wipe(all[i].dir); err != nil {
				return abort(err)
			}
			st, err := store.Open(all[i].dir, storeOptions(o))
			if err != nil {
				return abort(err)
			}
			all[i].st, all[i].fresh = st, true
		}
	}

	// Pass 2 — seed, checkpoint (the seed-completion marker), attach.
	for _, op := range all {
		site, _ := s.cluster.Site(op.id)
		for _, id := range site.FragmentIDs() {
			fr, _ := site.Fragment(id)
			if err := op.st.PutFragment(fr, site.FragmentVersion(id)); err != nil {
				return abort(err)
			}
		}
		if err := op.st.Checkpoint(); err != nil {
			return abort(err)
		}
		site.AttachStore(op.st, o.residentLimit)
		s.stores[op.id] = op.st
	}
	return nil
}

func (s *System) closeStores() {
	for _, st := range s.stores {
		st.Close()
	}
	s.stores = nil
}

// isSiteDir reports whether a Restore candidate subdirectory actually
// holds store files (a WAL segment or snapshot). Foreign directories —
// editor backups, lost+found, anything a Deploy could not have created —
// are skipped rather than turned into bogus empty sites (opening them
// would even write a WAL into them).
func isSiteDir(path string) bool {
	entries, err := os.ReadDir(path)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".wal") {
			return true
		}
		if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") {
			return true
		}
	}
	return false
}

// sortedStoreSites returns the durable sites in stable order.
func (s *System) sortedStoreSites() []SiteID {
	ids := make([]SiteID, 0, len(s.stores))
	for id := range s.stores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Checkpoint snapshots every site's store and truncates its WAL, so the
// next Restore replays snapshots only. It also surfaces any persistence
// error a site accumulated while serving. No-op without WithDurability.
func (s *System) Checkpoint() error {
	var first error
	for _, id := range s.sortedStoreSites() {
		if site, ok := s.cluster.Site(id); ok && first == nil {
			first = site.StoreErr()
		}
		if err := s.stores[id].Checkpoint(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close shuts the system down gracefully: standing subscriptions are
// cancelled (their channels close), the serving tier's background
// goroutines stop, and each durable store checkpoints and closes, so a
// subsequent Restore starts from snapshots alone. A system that is
// dropped without Close recovers through WAL replay instead — that is
// the crash path, and it is equally correct. The introspection server
// of a WithIntrospection deployment also stops here. No-op without
// WithDurability, WithFailover, WithIntrospection or subscriptions.
func (s *System) Close() error {
	s.mu.Lock()
	subs := s.subs
	s.subs = nil
	s.mu.Unlock()
	if subs != nil {
		subs.close()
	}
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	if s.tier != nil {
		s.tier.Stop()
	}
	var first error
	for _, id := range s.sortedStoreSites() {
		if site, ok := s.cluster.Site(id); ok && first == nil {
			first = site.StoreErr()
		}
		if err := s.stores[id].Close(); err != nil && first == nil {
			first = err
		}
	}
	s.stores = nil
	return first
}

// Restore rebuilds a durable deployment from its data directory: every
// site subdirectory is recovered (latest snapshot plus WAL replay, torn
// tails truncated), the forest and assignment are reconstructed from the
// recovered fragments, and fragment versions are restored exactly as
// persisted — so with WithTripletCache the sites' triplet caches
// warm-start and unchanged fragments serve evalQual with zero bottomUp
// steps from the first post-restart query. Options mirror Deploy's.
//
// Recovery is per-site atomic: a crash strictly between maintenance
// operations restores the exact pre-crash state, while a crash inside a
// cross-site Split/Merge can leave one site's log ahead of the other's,
// which Restore reports as a forest-validation error instead of serving
// inconsistent answers.
func Restore(dir string, opts ...Option) (*System, error) {
	o := options{cost: cluster.DefaultCostModel()}
	for _, opt := range opts {
		opt(&o)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("parbox: restore: %w", err)
	}
	type siteRec struct {
		id SiteID
		st *store.Store
	}
	var sites []siteRec
	closeAll := func() {
		// Failure paths leave the on-disk state untouched (no checkpoint):
		// a Restore that could not complete must not mutate what it read.
		for _, sr := range sites {
			sr.st.Discard()
		}
	}
	for _, e := range entries {
		if !e.IsDir() || !isSiteDir(filepath.Join(dir, e.Name())) {
			continue
		}
		if _, err := siteDirName(SiteID(e.Name())); err != nil {
			continue
		}
		st, err := store.Open(filepath.Join(dir, e.Name()), storeOptions(o))
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("parbox: restore site %s: %w", e.Name(), err)
		}
		if st.Stats().SnapshotSeq == 0 {
			// Seeding always ends in a checkpoint; a store with no snapshot
			// never finished its first start and must not be trusted.
			st.Discard()
			closeAll()
			return nil, fmt.Errorf("parbox: restore site %s: store was never fully seeded; remove it and redeploy", e.Name())
		}
		sites = append(sites, siteRec{id: SiteID(e.Name()), st: st})
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("parbox: restore: %s holds no site directories", dir)
	}

	assign := Assignment{}
	var frs []*frag.Fragment
	for _, sr := range sites {
		for _, id := range sr.st.FragmentIDs() {
			fr, _, ok, err := sr.st.LoadFragment(id)
			if err != nil || !ok {
				closeAll()
				return nil, fmt.Errorf("parbox: restore: loading fragment %d at %s: %w", id, sr.id, err)
			}
			if prev, dup := assign[id]; dup {
				closeAll()
				return nil, fmt.Errorf("parbox: restore: fragment %d stored at both %s and %s", id, prev, sr.id)
			}
			assign[id] = sr.id
			frs = append(frs, fr)
		}
	}

	// Verify the persisted parent relation against the virtual-node
	// structure. Splits journal parent updates (the split site re-journals
	// its moved sub-fragments, the view sends KindSetParent to remote
	// ones), so the persisted Parent fields are normally exact and are
	// trusted as-is; a mismatch means a crash landed between a split's
	// journal appends, and is repaired from the trees — which remain
	// authoritative — with a warning.
	//
	// A non-root fragment no virtual node references is a merge-crash
	// duplicate: the merged-into fragment journaled its absorbed content
	// (merge logs the parent first) but the crash hit before the child's
	// deletion was logged. Its subtree already lives in the parent, so the
	// stale copy is dropped — iteratively, since the orphan's own virtual
	// nodes must stop counting as references too.
	for {
		parents := make(map[FragmentID]FragmentID, len(frs))
		for _, fr := range frs {
			for _, sub := range fr.SubFragments() {
				parents[sub] = fr.ID
			}
		}
		kept := frs[:0]
		dropped := false
		for _, fr := range frs {
			if _, referenced := parents[fr.ID]; !referenced && fr.Parent != frag.NoParent {
				delete(assign, fr.ID)
				dropped = true
				continue
			}
			kept = append(kept, fr)
		}
		frs = kept
		if !dropped {
			for _, fr := range frs {
				if p, ok := parents[fr.ID]; ok && fr.Parent != p {
					restoreWarnf("parbox: restore: fragment %d persists parent %d but the trees nest it under %d; repairing (crash between a split's journal appends?)",
						fr.ID, fr.Parent, p)
					fr.Parent = p
				}
			}
			break
		}
	}
	rootID := xmltree.FragmentID(0)
	roots := 0
	for _, fr := range frs {
		if fr.Parent == frag.NoParent {
			rootID = fr.ID
			roots++
		}
	}
	if roots != 1 {
		closeAll()
		return nil, fmt.Errorf("parbox: restore: recovered %d root fragments, want exactly 1", roots)
	}
	forest, err := frag.FromFragments(frs, rootID)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("parbox: restore: %w", err)
	}

	c := cluster.New(o.cost)
	eng, err := core.Deploy(c, forest, assign)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("parbox: restore: %w", err)
	}
	deployed := make(map[SiteID]bool)
	for _, siteID := range eng.SourceTree().Sites() {
		site, _ := c.Site(siteID)
		views.RegisterHandlers(site, c)
		deployed[siteID] = true
	}
	stores := make(map[SiteID]*store.Store, len(sites))
	restorer := core.NewTripletRestorer()
	for _, sr := range sites {
		site := c.AddSite(sr.id)
		if !deployed[sr.id] {
			// A recovered site holding no live fragments (everything merged
			// away) still carries dead version counters and may adopt
			// fragments again; give it the full protocol.
			core.RegisterHandlers(site, c, c.Cost())
			views.RegisterHandlers(site, c)
		}
		for id, v := range sr.st.Versions() {
			site.RestoreVersion(id, v)
		}
		site.AttachStore(sr.st, o.residentLimit)
		if o.tripletCache {
			ts, err := sr.st.Triplets()
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("parbox: restore: triplets at %s: %w", sr.id, err)
			}
			for _, te := range ts {
				restorer.Restore(site, te.Frag, te.Version, te.FP, te.Enc)
			}
		}
		stores[sr.id] = sr.st
	}
	eng.EnableTripletCache(o.tripletCache)
	eng.SetMaxInflight(o.maxInflight)
	s := &System{
		cluster: c, engine: eng, forest: forest,
		coalesceDefault: o.coalesce, cacheEnabled: o.tripletCache,
		maxInflight: o.maxInflight, stores: stores,
	}
	s.sched = newScheduler(s, o.coalesceWindow, o.coalesceLanes)
	return s, nil
}

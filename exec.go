package parbox

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/backoff"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/views"
	"repro/internal/xpath"
)

// Mode selects what an Exec call computes from a prepared query.
type Mode uint8

const (
	// ModeBoolean answers the query true/false — the paper's core
	// problem. The default mode; every algorithm supports it.
	ModeBoolean Mode = iota
	// ModeSelect locates every node a path query selects (Section 8
	// extension); results are fragment-local child-index paths, no data
	// moves. ParBoX only.
	ModeSelect
	// ModeCount counts the nodes a path query selects without shipping
	// their identities anywhere (Section 8 aggregation remark). ParBoX
	// only.
	ModeCount
	// ModeMaterialize installs the query as an incrementally maintained
	// Boolean view (Section 5) and returns it in Result.View. ParBoX
	// only.
	ModeMaterialize

	numModes // sentinel; keep last
)

// Valid reports whether m names an implemented mode.
func (m Mode) Valid() bool { return m < numModes }

// String returns the mode's name.
func (m Mode) String() string {
	switch m {
	case ModeBoolean:
		return "boolean"
	case ModeSelect:
		return "select"
	case ModeCount:
		return "count"
	case ModeMaterialize:
		return "materialize"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// ExecOption configures one Exec call.
type ExecOption func(*execConfig)

type execConfig struct {
	algo       Algorithm
	mode       Mode
	timeout    time.Duration
	timeoutSet bool
	trace      io.Writer
	spans      bool
	batch      []*Prepared
	batchSet   bool
	coalesce   bool
	noCoalesce bool
}

// WithAlgorithm selects the evaluation algorithm (default AlgoParBoX).
// Modes other than ModeBoolean run only under AlgoParBoX.
func WithAlgorithm(a Algorithm) ExecOption {
	return func(c *execConfig) { c.algo = a }
}

// WithMode selects what the call computes (default ModeBoolean).
func WithMode(m Mode) ExecOption {
	return func(c *execConfig) { c.mode = m }
}

// WithTimeout bounds the whole call: the context handed to the transport
// carries the deadline, so in-flight site calls are cancelled when it
// expires. A zero or negative duration is an already-expired deadline —
// the call fails immediately, matching a caller passing its remaining
// budget.
func WithTimeout(d time.Duration) ExecOption {
	return func(c *execConfig) { c.timeout = d; c.timeoutSet = true }
}

// WithTrace logs this run's coordinator-side activity to w. A solo run
// writes the message log (one line per remote call, in completion order)
// followed by the reconstructed span tree; a coalesced run — where a
// shared round has no per-caller transport to log messages from — writes
// the round's span tree with this caller's lane attributed. Site-to-site
// hops of the recursive algorithms (AlgoFullDist, AlgoNaiveDistributed)
// happen behind the sites' own transport and are not logged. WithTrace
// implies WithSpans: Result.Spans is filled either way.
func WithTrace(w io.Writer) ExecOption {
	return func(c *execConfig) { c.trace = w }
}

// WithSpans collects wire-propagated trace spans for this call into
// Result.Spans without any text rendering: every hop the run takes —
// transport calls, per-site queue/admission/handler brackets, bottomUp
// and encode phases — is recorded as a Span and reassembled into one
// tree (see obs.Span). Spans ride back piggybacked on the v2 wire
// protocol, so remote sites contribute their server-side timings too.
// Cheaper than WithTrace (no per-run transport wrapper, no rendering);
// composes with every mode and with coalescing.
func WithSpans() ExecOption {
	return func(c *execConfig) { c.spans = true }
}

// WithBatch evaluates additional Boolean queries in the same ParBoX
// round: all queries compile into one shared QList (overlapping
// subexpressions are evaluated once per node), each site is visited once
// for the whole batch, and one equation solve yields every answer —
// Result.Answers holds them in order, the primary query first. The call
// runs as a batch (Result.Batch, Result.Answers filled) even with zero
// extra queries. ModeBoolean and AlgoParBoX only.
//
// The shared QList is compiled from the queries' parsed forms per call —
// parsing is reused from each Prepared, but the combined program is not
// cached across calls. Re-executing a large standing batch at high
// frequency pays that compile each time; a cached batch artifact is
// future work.
func WithBatch(more ...*Prepared) ExecOption {
	return func(c *execConfig) { c.batch = append(c.batch, more...); c.batchSet = true }
}

// WithCoalescing routes this Boolean ParBoX call through the system's
// coalescing scheduler: concurrent calls are transparently grouped into
// shared ParBoX rounds (one fused QList, one visit per site, one solve for
// the whole group) and each caller receives its own answer and a fair
// share of the round's accounting; Result.Sched reports the round. It
// applies only to ModeBoolean under AlgoParBoX without WithBatch —
// combining those is an error. WithTrace and WithSpans compose: the
// shared round records one span tree and every traced caller receives it
// with its own lane attributed. An Optimized()
// query always runs its own round (the scheduler fuses from the parsed
// form, which would discard the minimized program). Systems deployed with
// WithCoalescedServing coalesce by default; use WithNoCoalesce to opt a
// call out.
func WithCoalescing() ExecOption {
	return func(c *execConfig) { c.coalesce = true }
}

// WithNoCoalesce forces this call to run its own ParBoX round even on a
// system deployed with WithCoalescedServing.
func WithNoCoalesce() ExecOption {
	return func(c *execConfig) { c.noCoalesce = true }
}

// Result is the unified outcome of one Exec call: the per-mode report
// plus common accounting, so callers can meter any mode the same way.
type Result struct {
	// Mode and Algorithm echo what ran (AlgoHybrid reports the branch it
	// took as-is, i.e. Algorithm stays AlgoHybrid).
	Mode      Mode
	Algorithm Algorithm

	// Answer is the Boolean answer (ModeBoolean and ModeMaterialize; for
	// batched runs, the primary query's answer).
	Answer bool
	// Answers holds every answer of a batched run, primary query first.
	Answers []bool
	// Matched is the number of selected nodes (ModeSelect, ModeCount).
	Matched int64

	// Common accounting, filled from the per-mode report. For a coalesced
	// call, Bytes/Messages/TotalSteps/Visits (and the cache counters) are
	// the caller's fair share of the shared round — shares across the
	// round's callers sum exactly to the round totals; the full round
	// lives in Sched.Round. SimTime is not split: it is the round's
	// modeled makespan, which every caller of the round experienced in
	// full.
	Bytes      int64
	Messages   int64
	TotalSteps int64
	Visits     map[SiteID]int64
	SimTime    time.Duration
	// CacheHits/CacheMisses count fragments answered from the sites'
	// versioned triplet caches versus fragments that ran bottomUp (always
	// zero unless the system was deployed with WithTripletCache).
	CacheHits, CacheMisses int64
	// Failovers counts recoveries this call needed: failed site calls
	// re-placed onto surviving replicas plus full round retries (always
	// zero unless the system was deployed with WithFailover). A non-zero
	// value means the answer was computed despite failures — it is still
	// exactly correct.
	Failovers int64
	// Hedges counts speculative duplicate calls this run issued against
	// slow replicas' next-best siblings; HedgeWins counts how many of them
	// answered first. Only the winning attempt of a hedged pair counts in
	// Bytes/Messages/TotalSteps. Always zero unless the system was
	// deployed with WithHedging.
	Hedges, HedgeWins int64
	// Duration is the measured wall-clock time of the whole call.
	Duration time.Duration

	// Spans is the call's reconstructed trace — every transport hop plus
	// the remote sites' own queue/admission/handler/bottomUp/encode
	// timings, piggybacked back over the wire — as a flat list linked by
	// parent IDs into one tree. Filled under WithSpans or WithTrace; nil
	// otherwise. For a coalesced call, every traced caller of the round
	// shares ONE slice: the round's spans plus a "lane" span per traced
	// round-mate (the lane attr is the caller's slot). Treat it as
	// read-only — mutating it corrupts the round-mates' results.
	Spans []obs.Span

	// Sched reports the shared round for calls served by the coalescing
	// scheduler (WithCoalescing or a WithCoalescedServing system); nil for
	// calls that ran their own round.
	Sched *SchedInfo

	// Per-mode reports; at most one is non-nil (all nil for a coalesced
	// call, whose round report is Sched.Round).
	Boolean   *Report
	Batch     *BatchResult
	Selection *SelectionResult
	Counting  *CountResult
	View      *View
}

func (r *Result) account(sim time.Duration, bytes, messages, steps int64, visits map[SiteID]int64) {
	r.SimTime = sim
	r.Bytes = bytes
	r.Messages = messages
	r.TotalSteps = steps
	// Copy: the per-mode report keeps its own map, so a caller mutating
	// Result.Visits cannot corrupt the raw report (or vice versa).
	if visits != nil {
		r.Visits = make(map[SiteID]int64, len(visits))
		for k, v := range visits {
			r.Visits[k] = v
		}
	}
}

// retryRound runs one multi-round computation (select/count — Boolean
// rounds retry inside core), retrying it against a freshly probed
// serving tier when a retryable mid-stream failure aborts it. Mirrors
// core's round-retry policy: cancellation, an expired deadline and
// ErrFragmentUnavailable are final; every retry sleeps — exponential
// backoff with full jitter, floored at any server-provided retry-after
// hint — and draws from the deployment's per-query retry budget
// (WithRetryBudget). Returns the attempts spent on retries for
// Result.Failovers.
func retryRound[T any](ctx context.Context, tier *serve.Tier, pol backoff.Policy, run func() (T, error)) (T, int64, error) {
	rep, err := run()
	if err == nil || tier == nil {
		return rep, 0, err
	}
	rr := backoff.New(pol)
	var attempts int64
	for ctx.Err() == nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, core.ErrFragmentUnavailable) {
			break
		}
		d, ok := rr.Next(cluster.RetryAfterHint(err))
		if !ok {
			break
		}
		if backoff.Sleep(ctx, d) != nil {
			break
		}
		tier.Recheck(ctx)
		attempts++
		if rep, err = run(); err == nil {
			return rep, attempts, nil
		}
	}
	return rep, 0, err
}

// Exec runs a prepared query against the deployed document. With no
// options it is the paper's headline configuration: ModeBoolean under
// AlgoParBoX. Exec is safe for concurrent use — any number of calls, of
// any mix of modes and algorithms, may run against one System at once;
// each run keeps its own accounting and the sites key any cached protocol
// state by a unique run identifier.
func (s *System) Exec(ctx context.Context, q *Prepared, opts ...ExecOption) (*Result, error) {
	if q == nil {
		return nil, errors.New("parbox: Exec requires a prepared query (see Prepare)")
	}
	cfg := execConfig{algo: AlgoParBoX}
	for _, opt := range opts {
		opt(&cfg)
	}
	if !cfg.algo.Valid() {
		return nil, fmt.Errorf("parbox: invalid algorithm %v", cfg.algo)
	}
	if !cfg.mode.Valid() {
		return nil, fmt.Errorf("parbox: invalid mode %v", cfg.mode)
	}
	// Only AlgoParBoX implements the non-Boolean modes and batching.
	if cfg.algo != AlgoParBoX && (cfg.mode != ModeBoolean || cfg.batchSet) {
		what := cfg.mode.String() + " mode"
		if cfg.batchSet {
			what = "batched execution"
		}
		return nil, fmt.Errorf("parbox: %s supports only %v, not %v", what, AlgoParBoX, cfg.algo)
	}
	if cfg.mode != ModeBoolean && cfg.batchSet {
		return nil, fmt.Errorf("parbox: WithBatch applies only to %v mode", ModeBoolean)
	}
	if cfg.coalesce && cfg.noCoalesce {
		return nil, errors.New("parbox: WithCoalescing and WithNoCoalesce are mutually exclusive")
	}
	if cfg.coalesce {
		switch {
		case cfg.mode != ModeBoolean || cfg.algo != AlgoParBoX:
			return nil, fmt.Errorf("parbox: WithCoalescing supports only %v mode under %v, not %v/%v",
				ModeBoolean, AlgoParBoX, cfg.mode, cfg.algo)
		case cfg.batchSet:
			return nil, errors.New("parbox: WithCoalescing cannot combine with WithBatch (the scheduler already batches)")
		}
	}
	if cfg.timeoutSet {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	// Route through the coalescing scheduler when asked to (explicitly, or
	// by the system default set at deployment) and the call shape allows
	// it. A precompiled query (Optimized) runs solo — the scheduler fuses
	// from the parsed form, which would silently discard the minimized
	// program. Traced calls ride along: the round collects one shared span
	// tree and the scheduler attributes each caller's lane.
	if (cfg.coalesce || (s.coalesceDefault && !cfg.noCoalesce)) && !q.precompiled &&
		cfg.mode == ModeBoolean && cfg.algo == AlgoParBoX && !cfg.batchSet {
		return s.sched.exec(ctx, q, cfg.trace, cfg.spans)
	}
	eng := s.eng()
	var tracer *cluster.Tracer
	tr := cluster.Transport(s.cluster)
	traceFlushed := false
	if cfg.trace != nil {
		// Route this run's coordinator through a tracing transport. The
		// engine is just a view over (transport, coordinator, source
		// tree), so a per-run engine costs nothing and other concurrent
		// Exec calls stay untraced.
		tracer = cluster.NewTracer()
		tr = &cluster.TracingTransport{Inner: s.cluster, Tracer: tracer}
		eng = core.NewEngine(tr, eng.Coordinator(), eng.SourceTree(), s.cluster.Cost())
		// Flush whatever was traced even when the run fails — a failing
		// run is exactly when the message log matters. (The success path
		// flushes inline so the span tree can follow the message log.)
		defer func() {
			if !traceFlushed {
				fmt.Fprint(cfg.trace, tracer.String())
			}
		}()
	}
	// Span collection: give the run a fresh trace identity so every hop it
	// takes — transport calls here, and queue/admission/handler/bottomUp
	// brackets on the sites, piggybacked back over the wire — lands in one
	// collector. The root span brackets the whole call.
	var spanCol *obs.Collector
	var rootSpan obs.Span
	if cfg.spans || cfg.trace != nil {
		spanCol = obs.NewCollector()
		rootSpan = obs.Span{TraceID: obs.NewTraceID(), ID: obs.NewSpanID(),
			Site: "coordinator", Name: "exec " + cfg.mode.String()}
		ctx = obs.WithTrace(ctx, obs.TraceContext{TraceID: rootSpan.TraceID, SpanID: rootSpan.ID, Collector: spanCol})
	}

	res := &Result{Mode: cfg.mode, Algorithm: cfg.algo}
	start := time.Now()
	switch cfg.mode {
	case ModeBoolean:
		if cfg.batchSet {
			exprs := make([]xpath.Expr, 0, 1+len(cfg.batch))
			exprs = append(exprs, q.expr)
			for _, extra := range cfg.batch {
				if extra == nil {
					return nil, errors.New("parbox: WithBatch given a nil query")
				}
				exprs = append(exprs, extra.expr)
			}
			prog, roots := xpath.CompileBatch(exprs)
			rep, err := eng.ParBoXBatch(ctx, prog, roots)
			if err != nil {
				return nil, err
			}
			res.Batch = &rep
			// Copy, like Visits in account: the raw report keeps its own
			// slice so callers can post-process Result.Answers freely.
			res.Answers = append([]bool(nil), rep.Answers...)
			res.Answer = rep.Answers[0]
			res.account(rep.SimTime, rep.Bytes, rep.Messages, rep.TotalSteps, rep.Visits)
			res.CacheHits, res.CacheMisses = rep.CacheHits, rep.CacheMisses
			res.Failovers = rep.Failovers
			res.Hedges, res.HedgeWins = rep.Hedges, rep.HedgeWins
		} else {
			rep, err := eng.Run(ctx, cfg.algo, q.program())
			if err != nil {
				return nil, err
			}
			res.Boolean = &rep
			res.Answer = rep.Answer
			res.account(rep.SimTime, rep.Bytes, rep.Messages, rep.TotalSteps, rep.Visits)
			res.CacheHits, res.CacheMisses = rep.CacheHits, rep.CacheMisses
			res.Failovers = rep.Failovers
			res.Hedges, res.HedgeWins = rep.Hedges, rep.HedgeWins
		}
	case ModeSelect:
		sp, err := q.selectProgram()
		if err != nil {
			return nil, err
		}
		rep, retries, err := retryRound(ctx, s.tier, s.retryPol, func() (core.SelectReport, error) {
			return eng.SelectParBoX(ctx, sp)
		})
		if err != nil {
			return nil, err
		}
		res.Selection = &rep
		res.Matched = int64(rep.Count)
		res.account(rep.SimTime, rep.Bytes, rep.Messages, rep.TotalSteps, rep.Visits)
		res.Failovers = rep.Failovers + retries
		res.Hedges, res.HedgeWins = rep.Hedges, rep.HedgeWins
	case ModeCount:
		sp, err := q.selectProgram()
		if err != nil {
			return nil, err
		}
		rep, retries, err := retryRound(ctx, s.tier, s.retryPol, func() (core.CountReport, error) {
			return eng.CountParBoX(ctx, sp)
		})
		if err != nil {
			return nil, err
		}
		res.Counting = &rep
		res.Matched = rep.Count
		res.account(rep.SimTime, rep.Bytes, rep.Messages, rep.TotalSteps, rep.Visits)
		res.Failovers = rep.Failovers + retries
		res.Hedges, res.HedgeWins = rep.Hedges, rep.HedgeWins
	case ModeMaterialize:
		meter := core.NewMeteredTransport(tr)
		v, err := views.MaterializeBounded(ctx, meter, eng.Coordinator(), eng.SourceTree(), q.program(), s.maxInflight)
		if err != nil {
			return nil, err
		}
		// The view outlives this run: hand it the durable transport so
		// maintenance traffic does not keep flowing through this run's
		// metering/tracing wrappers.
		v.SetTransport(s.cluster)
		var rep Report
		meter.Fill(&rep)
		res.account(rep.SimTime, rep.Bytes, rep.Messages, rep.TotalSteps, rep.Visits)
		res.View = &View{v: v}
		res.Answer = v.Answer()
	}
	res.Duration = time.Since(start)
	if spanCol != nil {
		rootSpan.Start = start.UnixNano()
		rootSpan.Dur = res.Duration.Nanoseconds()
		spanCol.Add(rootSpan)
		res.Spans = spanCol.Spans()
		rec := obs.TraceRecord{TraceID: rootSpan.TraceID, Root: rootSpan.Name,
			Dur: res.Duration, At: start, Spans: res.Spans}
		if s.obsRing != nil {
			s.obsRing.Add(rec)
		}
		if cfg.trace != nil {
			// Message log first (the historical WithTrace output), then
			// the reconstructed span tree.
			fmt.Fprint(cfg.trace, tracer.String())
			traceFlushed = true
			obs.RenderTrace(cfg.trace, rec)
		}
	}
	return res, nil
}

// Temporal: the paper's Experiment 2 scenario made concrete — "in a
// temporal database each fragment can represent an XMark site at a point
// in time; FT2 represents the version history". Versions form a chain of
// fragments across archive servers; queries about old versions reach ever
// deeper. LazyParBoX trades latency for touching only the versions it
// needs, while ParBoX evaluates all versions in parallel.
//
//	go run ./examples/temporal
package main

import (
	"context"
	"fmt"
	"log"

	parbox "repro"
	"repro/internal/xmark"
)

const versions = 6

func main() {
	// Version i is nested under version i-1 (newest first), each on its
	// own archive server; each version carries a version marker beacon.
	beacons := make([]string, versions)
	for i := range beacons {
		beacons[i] = fmt.Sprintf("version-%d", i)
	}
	root, siteRoots, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       7,
		Parents:    xmark.ChainParents(versions),
		MBs:        xmark.EvenMBs(1.2, versions),
		NodesPerMB: 2500,
		Beacons:    beacons,
	})
	if err != nil {
		log.Fatal(err)
	}
	forest, err := xmark.Fragment(root, siteRoots)
	if err != nil {
		log.Fatal(err)
	}
	assign := parbox.Assignment{}
	for i := 0; i < versions; i++ {
		assign[parbox.FragmentID(i)] = parbox.SiteID(fmt.Sprintf("archive-%d", i))
	}
	sys, err := parbox.Deploy(forest, assign)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Printf("version history: %d versions chained over %d archive servers\n\n", versions, versions)
	fmt.Printf("%-28s %10s %12s %12s\n", "query target", "algorithm", "model time", "visits")
	for _, target := range []int{0, versions / 2, versions - 1} {
		q := parbox.MustPrepare(fmt.Sprintf(`//beacon[text() = "version-%d"]`, target))
		for _, algo := range []parbox.Algorithm{parbox.AlgoParBoX, parbox.AlgoLazy} {
			res, err := sys.Exec(ctx, q, parbox.WithAlgorithm(algo))
			if err != nil {
				log.Fatal(err)
			}
			if !res.Answer {
				log.Fatalf("version %d not found", target)
			}
			visited := 0
			for _, v := range res.Visits {
				visited += int(v)
			}
			fmt.Printf("version-%-20d %10s %12v %12d\n",
				target, res.Algorithm, res.SimTime.Round(1000), visited)
		}
	}
	fmt.Println("\nLazyParBoX touches only the archives above the target version;")
	fmt.Println("ParBoX is faster for deep targets by evaluating all versions in parallel.")
}

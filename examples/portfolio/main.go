// Portfolio: the paper's running example (Fig. 1b / Fig. 2) end to end —
// a stock portfolio spread over a desktop, a broker's servers and a
// market's servers; a standing Boolean XPath view ("did GOOG reach a sell
// price of 376?") maintained incrementally as prices tick, exactly the
// publish-subscribe scenario of the paper's introduction.
//
//	go run ./examples/portfolio
package main

import (
	"context"
	"fmt"
	"log"

	parbox "repro"
	"repro/internal/fixtures"
)

func main() {
	// The document of Fig. 1(b), fragmented as in Fig. 2:
	//   F0 (root + Bache's NYSE data)   → the owner's desktop  (S0)
	//   F1 (Merill Lynch's market)      → the broker's servers (S1)
	//   F2 (a stock inside F1), F3      → NASDAQ's servers     (S2)
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := parbox.Deploy(forest, parbox.Assignment{
		0: "desktop", 1: "merill", 2: "nasdaq", 3: "nasdaq",
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("source tree:")
	fmt.Print(sys.SourceTree().String())

	// Ad-hoc query, evaluated by partial evaluation — each site visited
	// once, no stock data leaves its site.
	q := parbox.MustPrepare(`//stock[code = "YHOO"]`)
	res, err := sys.Exec(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[ad-hoc] holds YHOO? %v  (%d bytes moved, visits %v)\n",
		res.Answer, res.Bytes, res.Visits)

	// The standing query of the introduction: notify when GOOG can be
	// sold at 376 — the materialize mode turns it into a maintained view.
	watch := parbox.MustPrepare(`//stock[code = "GOOG" && sell = "376"]`)
	wres, err := sys.Exec(ctx, watch, parbox.WithMode(parbox.ModeMaterialize))
	if err != nil {
		log.Fatal(err)
	}
	view := wres.View
	fmt.Printf("\n[view] %s → %v\n", watch, view.Answer())

	// NASDAQ ticks: Bache's GOOG sell price moves 373 → 376. Fragment F3
	// is market(name, stock(GOOG), stock(YHOO)); the sell element of the
	// first stock is path [1 2].
	tick := func(price string) {
		mc, err := view.Update(ctx, 3, []parbox.UpdateOp{
			{Op: parbox.OpSetText, Path: []int{1, 2}, Text: price},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[tick] GOOG sell=%s → view=%v (visited %v, %d bytes, re-solved=%v)\n",
			price, view.Answer(), mc.SitesVisited, mc.Bytes, mc.Recomputed)
	}
	tick("374")
	tick("376") // the notification fires
	tick("375")

	// Administrative re-fragmentation (Section 5): NASDAQ splits Bache's
	// NYSE market out of the desktop fragment onto its own server — the
	// cached answer is untouched.
	sys.AddSite("nyse-site")
	f0, _ := forest.Fragment(0)
	nyse := f0.Root.FindAll("market")[0]
	newID, _, err := view.Split(ctx, 0, parbox.PathOf(nyse), "nyse-site")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[split] NYSE market became fragment F%d at nyse-site; view still %v\n",
		newID, view.Answer())
}

// Replicated: the paper's Section 8 replication agenda — fragments stored
// at several sites; a placement strategy picks replicas per query, for
// free, since ParBoX never moves data. Compare the min-sites plan (fewest
// machines bothered) with the load-balanced plan (fastest parallel
// stage 2) on a size-skewed deployment.
//
//	go run ./examples/replicated
package main

import (
	"context"
	"fmt"
	"log"

	parbox "repro"
	"repro/internal/xmark"
)

func main() {
	// Five fragments of very different sizes; fragment 1 dominates.
	root, sites, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       2006,
		Parents:    xmark.StarParents(5),
		MBs:        []float64{0.3, 4, 1, 1, 0.3},
		NodesPerMB: 1500,
	})
	if err != nil {
		log.Fatal(err)
	}
	forest, err := xmark.Fragment(root, sites)
	if err != nil {
		log.Fatal(err)
	}

	// Each fragment is replicated at 2-3 of the 4 data centers.
	replicas := parbox.ReplicaMap{
		0: {"dc-east", "dc-west"},
		1: {"dc-west", "dc-north", "dc-south"},
		2: {"dc-north", "dc-east"},
		3: {"dc-south", "dc-west"},
		4: {"dc-east", "dc-north", "dc-south"},
	}
	sys, err := parbox.DeployReplicated(forest, replicas, parbox.PlaceFirst)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	q := parbox.MustPrepare(`//item[quantity = "1"] && //open_auction[bidder/increase = "9.00"]`)

	fmt.Printf("query: %s\n\n%-11s %12s %10s %s\n", q, "placement", "model time", "traffic", "sites consulted")
	for _, strategy := range []parbox.PlacementStrategy{
		parbox.PlaceFirst, parbox.PlaceMinSites, parbox.PlaceBalanced,
	} {
		if err := sys.Replan(strategy); err != nil {
			log.Fatal(err)
		}
		res, err := sys.Exec(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		consulted := map[parbox.SiteID]bool{}
		st := sys.SourceTree()
		for _, id := range st.Fragments() {
			e, _ := st.Entry(id)
			consulted[e.Site] = true
		}
		names := make([]string, 0, len(consulted))
		for s := range consulted {
			names = append(names, string(s))
		}
		fmt.Printf("%-11v %12v %9dB %d: %v\n",
			strategy, res.SimTime.Round(1000), res.Bytes, len(names), names)
	}
	fmt.Println("\nmin-sites consults the fewest machines; balanced splits the big")
	fmt.Println("fragment's work away from the small ones for the shortest makespan.")
}

// Pubsub: content-based filtering over a distributed XMark auction
// document — the xml data dissemination workload the paper cites as the
// home turf of Boolean XPath (publish-subscribe systems).
//
// Subscriptions are server-pushed: System.Subscribe registers each query
// as a standing program at every site, the sites keep its per-fragment
// triplets incrementally maintained across updates (spine recomputation,
// not full bottomUp), and when an update flips a fragment's root
// formulas the site pushes a delta from which the coordinator re-solves
// and notifies the subscriber. Nobody polls: an update that cannot
// affect a subscription costs that subscription nothing, regardless of
// how many subscribers are standing.
//
//	go run ./examples/pubsub
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	parbox "repro"
	"repro/internal/xmark"
)

func main() {
	// Three auction "sites" (paper terminology) hosted by three servers.
	root, siteRoots, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       42,
		Parents:    xmark.StarParents(3),
		MBs:        []float64{0.4, 0.4, 0.4},
		NodesPerMB: 2500,
	})
	if err != nil {
		log.Fatal(err)
	}
	forest, err := xmark.Fragment(root, siteRoots)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := parbox.Deploy(forest, parbox.Assignment{
		0: "hub", 1: "mirror-eu", 2: "mirror-asia",
	}, parbox.WithTripletCache())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()

	subscriptions := []string{
		`//item[location = "Kenya"]`,
		`//item[quantity = "5" && location = "Japan"]`,
		`//open_auction[bidder/increase = "9.00"]`,
		`//closed_auction[annotation = "mint"]`,
		`//person[address/city = "Edinburgh"]`,
		`//item[payment = "Bitcoin"]`, // never matches in 2006
	}

	fmt.Printf("document: %d nodes over 3 sites\n\n", sys.SourceTree().TotalSize())

	// Register every subscription: one standing program per query at each
	// site, baseline answer solved from the registration triplets.
	subs := make([]*parbox.Subscription, len(subscriptions))
	start := time.Now()
	for i, src := range subscriptions {
		q, err := parbox.Prepare(src)
		if err != nil {
			log.Fatalf("%s: %v", src, err)
		}
		if subs[i], err = sys.Subscribe(ctx, q); err != nil {
			log.Fatalf("%s: %v", src, err)
		}
	}
	took := time.Since(start)
	for i, src := range subscriptions {
		status := "  -  "
		if subs[i].Answer() {
			status = "FIRE "
		}
		fmt.Printf("%s %s\n", status, src)
	}
	fmt.Printf("\nregistered %d standing subscriptions in %v — no polling from here on\n\n",
		len(subscriptions), took.Round(time.Microsecond))

	// The publisher side: content updates to the document. A Bitcoin item
	// appears at the Asian mirror; each update's maintenance runs only
	// the touched spines at one site, and only subscriptions whose root
	// formulas flip hear anything.
	view, err := sys.Materialize(ctx, parbox.MustPrepare(`//item`))
	if err != nil {
		log.Fatal(err)
	}
	bitcoin := subs[5]
	fmt.Println(`publisher: inserting <item><payment>Bitcoin</payment></item> at mirror-asia`)
	frag := parbox.FragmentID(2)
	if _, err := view.Update(ctx, frag, []parbox.UpdateOp{
		{Op: parbox.OpInsert, Label: "item"},
	}); err != nil {
		log.Fatal(err)
	}
	fr, _ := forest.Fragment(frag)
	itemPath := []int{len(fr.Root.Children) - 1}
	if _, err := view.Update(ctx, frag, []parbox.UpdateOp{
		{Op: parbox.OpInsert, Path: itemPath, Label: "payment", Text: "Bitcoin"},
	}); err != nil {
		log.Fatal(err)
	}

	// The pushed notification arrives without any query being re-run.
	select {
	case n := <-bitcoin.C():
		for !n.Flipped {
			n = <-bitcoin.C()
		}
		fmt.Printf("pushed:   %s -> %v (fragment %d, version %d)\n",
			subscriptions[5], n.Answer, n.Frag, n.Version)
	case <-time.After(5 * time.Second):
		log.Fatal("no notification")
	}

	// Retract it: the subscription flips back, again pushed.
	fmt.Println("publisher: deleting the item again")
	if _, err := view.Update(ctx, frag, []parbox.UpdateOp{
		{Op: parbox.OpDelete, Path: itemPath},
	}); err != nil {
		log.Fatal(err)
	}
	select {
	case n := <-bitcoin.C():
		for !n.Flipped {
			n = <-bitcoin.C()
		}
		fmt.Printf("pushed:   %s -> %v\n\n", subscriptions[5], n.Answer)
	case <-time.After(5 * time.Second):
		log.Fatal("no notification")
	}

	// For fired subscriptions a dissemination system needs the matching
	// elements, not just a bit: the selection extension finds them without
	// moving the document either.
	kenya := parbox.MustPrepare(`//item[location = "Kenya"]/name`)
	sel, err := sys.Exec(ctx, kenya, parbox.WithMode(parbox.ModeSelect))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matching Kenyan item names: %d nodes", sel.Matched)
	shown := 0
	for fragID, paths := range sel.Selection.Paths {
		fr, _ := forest.Fragment(fragID)
		for _, p := range paths {
			node := fr.Root
			for _, i := range p {
				node = node.Children[i]
			}
			if shown < 5 {
				fmt.Printf("\n  F%d %v: %q", fragID, p, node.Text)
			}
			shown++
		}
	}
	fmt.Println()
}

// Pubsub: content-based filtering over a distributed XMark auction
// document — the xml data dissemination workload the paper cites as the
// home turf of Boolean XPath (publish-subscribe systems). A batch of
// subscriptions is evaluated with one ParBoX round each, and matching
// subscriptions then run as selection queries to locate the matching
// nodes.
//
//	go run ./examples/pubsub
package main

import (
	"context"
	"fmt"
	"log"

	parbox "repro"
	"repro/internal/xmark"
)

func main() {
	// Three auction "sites" (paper terminology) hosted by three servers.
	root, siteRoots, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       42,
		Parents:    xmark.StarParents(3),
		MBs:        []float64{0.4, 0.4, 0.4},
		NodesPerMB: 2500,
	})
	if err != nil {
		log.Fatal(err)
	}
	forest, err := xmark.Fragment(root, siteRoots)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := parbox.Deploy(forest, parbox.Assignment{
		0: "hub", 1: "mirror-eu", 2: "mirror-asia",
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	subscriptions := []string{
		`//item[location = "Kenya"]`,
		`//item[quantity = "5" && location = "Japan"]`,
		`//open_auction[bidder/increase = "9.00"]`,
		`//closed_auction[annotation = "mint"]`,
		`//person[address/city = "Edinburgh"]`,
		`//item[payment = "Bitcoin"]`, // never matches in 2006
	}

	fmt.Printf("document: %d nodes over 3 sites\n\n", sys.SourceTree().TotalSize())

	// The whole subscription set is answered in ONE ParBoX round: the
	// queries share a QList, each site is visited once for the batch.
	queries := make([]*parbox.Prepared, len(subscriptions))
	for i, sub := range subscriptions {
		q, err := parbox.Prepare(sub)
		if err != nil {
			log.Fatalf("%s: %v", sub, err)
		}
		queries[i] = q
	}
	batch, err := sys.Exec(ctx, queries[0], parbox.WithBatch(queries[1:]...))
	if err != nil {
		log.Fatal(err)
	}
	for i, sub := range subscriptions {
		status := "  -  "
		if batch.Answers[i] {
			status = "FIRE "
		}
		fmt.Printf("%s %s\n", status, sub)
	}
	fmt.Printf("\nbatch of %d subscriptions: %d bytes, %d messages, visits %v\n",
		len(subscriptions), batch.Bytes, batch.Messages, batch.Visits)

	// For fired subscriptions a dissemination system needs the matching
	// elements, not just a bit: the selection extension finds them without
	// moving the document either.
	kenya := parbox.MustPrepare(`//item[location = "Kenya"]/name`)
	sel, err := sys.Exec(ctx, kenya, parbox.WithMode(parbox.ModeSelect))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmatching Kenyan item names: %d nodes", sel.Matched)
	shown := 0
	for fragID, paths := range sel.Selection.Paths {
		fr, _ := forest.Fragment(fragID)
		for _, p := range paths {
			node := fr.Root
			for _, i := range p {
				node = node.Children[i]
			}
			if shown < 5 {
				fmt.Printf("\n  F%d %v: %q", fragID, p, node.Text)
			}
			shown++
		}
	}
	fmt.Println()
}

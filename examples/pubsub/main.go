// Pubsub: content-based filtering over a distributed XMark auction
// document — the xml data dissemination workload the paper cites as the
// home turf of Boolean XPath (publish-subscribe systems).
//
// The system is deployed as a coalescing server: every subscriber issues a
// plain Exec call, and the scheduler transparently groups the concurrent
// calls into shared ParBoX rounds (one fused QList, one visit per site,
// one equation solve for the whole group). The versioned triplet cache
// makes re-notification rounds over an unchanged document answer from the
// sites' memoized partial results — zero bottomUp work anywhere.
//
//	go run ./examples/pubsub
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	parbox "repro"
	"repro/internal/xmark"
)

func main() {
	// Three auction "sites" (paper terminology) hosted by three servers.
	root, siteRoots, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       42,
		Parents:    xmark.StarParents(3),
		MBs:        []float64{0.4, 0.4, 0.4},
		NodesPerMB: 2500,
	})
	if err != nil {
		log.Fatal(err)
	}
	forest, err := xmark.Fragment(root, siteRoots)
	if err != nil {
		log.Fatal(err)
	}
	// Coalesced serving with the defaults (250µs window, 64-lane budget)
	// plus the versioned per-fragment triplet cache.
	sys, err := parbox.Deploy(forest, parbox.Assignment{
		0: "hub", 1: "mirror-eu", 2: "mirror-asia",
	}, parbox.WithCoalescedServing(0, 0), parbox.WithTripletCache())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	subscriptions := []string{
		`//item[location = "Kenya"]`,
		`//item[quantity = "5" && location = "Japan"]`,
		`//open_auction[bidder/increase = "9.00"]`,
		`//closed_auction[annotation = "mint"]`,
		`//person[address/city = "Edinburgh"]`,
		`//item[payment = "Bitcoin"]`, // never matches in 2006
	}
	queries := make([]*parbox.Prepared, len(subscriptions))
	for i, sub := range subscriptions {
		q, err := parbox.Prepare(sub)
		if err != nil {
			log.Fatalf("%s: %v", sub, err)
		}
		queries[i] = q
	}

	fmt.Printf("document: %d nodes over 3 sites\n\n", sys.SourceTree().TotalSize())

	// Each subscriber fires its own Exec, as independent connections
	// would; the scheduler fuses the burst into shared rounds. serve
	// returns each subscriber's answer plus the round shape.
	serve := func() ([]*parbox.Result, time.Duration) {
		results := make([]*parbox.Result, len(queries))
		start := time.Now()
		var wg sync.WaitGroup
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q *parbox.Prepared) {
				defer wg.Done()
				res, err := sys.Exec(ctx, q)
				if err != nil {
					log.Fatalf("%s: %v", subscriptions[i], err)
				}
				results[i] = res
			}(i, q)
		}
		wg.Wait()
		return results, time.Since(start)
	}

	cold, coldTook := serve()
	for i, sub := range subscriptions {
		status := "  -  "
		if cold[i].Answer {
			status = "FIRE "
		}
		fmt.Printf("%s %s\n", status, sub)
	}
	stats := sys.SchedulerStats()
	fmt.Printf("\ncold serve of %d subscriptions: %v, %d shared round(s) (fused QList %d lanes), %d bytes total\n",
		len(subscriptions), coldTook.Round(time.Microsecond),
		stats.Rounds, cold[0].Sched.RoundLanes, sys.TotalBytes())

	// Re-notification over the unchanged document: the sites answer from
	// their versioned triplet caches — all hits, zero bottomUp steps.
	warm, warmTook := serve()
	var hits, misses int64
	for _, res := range warm {
		hits += res.CacheHits
		misses += res.CacheMisses
	}
	fmt.Printf("warm re-serve: %v, triplet cache %d hit / %d miss\n\n",
		warmTook.Round(time.Microsecond), hits, misses)

	// For fired subscriptions a dissemination system needs the matching
	// elements, not just a bit: the selection extension finds them without
	// moving the document either.
	kenya := parbox.MustPrepare(`//item[location = "Kenya"]/name`)
	sel, err := sys.Exec(ctx, kenya, parbox.WithMode(parbox.ModeSelect))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matching Kenyan item names: %d nodes", sel.Matched)
	shown := 0
	for fragID, paths := range sel.Selection.Paths {
		fr, _ := forest.Fragment(fragID)
		for _, p := range paths {
			node := fr.Root
			for _, i := range p {
				node = node.Children[i]
			}
			if shown < 5 {
				fmt.Printf("\n  F%d %v: %q", fragID, p, node.Text)
			}
			shown++
		}
	}
	fmt.Println()
}

// Quickstart: fragment a small document over three simulated sites, run
// the same Boolean XPath query with every algorithm, and show that ParBoX
// ships kilobytes of Boolean formulas where the naive baseline ships the
// data.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	parbox "repro"
)

func main() {
	// A miniature catalog, conceptually one tree...
	doc, err := parbox.ParseXMLString(`
		<catalog>
		  <section>
		    <name>databases</name>
		    <book><title>The Art of DB</title><price>50</price></book>
		    <book><title>Partial Evaluation</title><price>35</price></book>
		  </section>
		  <section>
		    <name>systems</name>
		    <book><title>Distributed Things</title><price>60</price></book>
		  </section>
		</catalog>`)
	if err != nil {
		log.Fatal(err)
	}

	// ...physically fragmented: each section lives at its own site.
	forest := parbox.NewForest(doc)
	for _, section := range doc.FindAll("section") {
		if _, err := forest.Split(section); err != nil {
			log.Fatal(err)
		}
	}
	sys, err := parbox.Deploy(forest, parbox.Assignment{
		0: "laptop", 1: "db-site", 2: "sys-site",
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()

	// The query is prepared once; every Exec below reuses the compiled
	// program.
	q := parbox.MustPrepare(`//book[title = "Partial Evaluation" && price = "35"]`)
	fmt.Printf("query: %s  (|QList| = %d)\n\n", q, q.QListSize())

	for _, algo := range parbox.Algorithms() {
		res, err := sys.Exec(ctx, q, parbox.WithAlgorithm(algo))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s answer=%-5v traffic=%4d bytes  visits=%v\n",
			res.Algorithm, res.Answer, res.Bytes, res.Visits)
	}

	// Data selection (the Section 8 extension): which nodes match? The
	// same entry point, switched by mode.
	sel := parbox.MustPrepare(`//book[price = "50"]/title`)
	res, err := sys.Exec(ctx, sel, parbox.WithMode(parbox.ModeSelect))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselection //book[price=50]/title: %d node(s), per fragment: %v\n",
		res.Matched, res.Selection.Paths)
}

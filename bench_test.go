package parbox

// One benchmark per figure/table of the paper (Figs. 7–13, the Fig. 4
// summary table, the Section 5 maintenance costs) plus micro-benchmarks of
// the core procedures. The figure benchmarks run the full sweep of the
// corresponding experiment at a reduced data scale (the shapes are
// scale-invariant; cmd/parbox-bench runs the calibrated full scale) and
// report the headline quantity of each figure via b.ReportMetric.
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/boolexpr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/frag"
	"repro/internal/xmark"
	"repro/internal/xpath"
)

// benchConfig keeps sweeps fast: 50 paper-MB ≈ 10k nodes.
func benchConfig() experiments.Config {
	return experiments.Config{NodesPerMB: 200, Seed: 1, MaxMachines: 8}
}

func BenchmarkFig7ParBoXvsCentral(b *testing.B) {
	var lastSpeedup float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		pb, _ := fig.Get(8, "ParBox")
		ce, _ := fig.Get(8, "Central")
		lastSpeedup = ce / pb
	}
	b.ReportMetric(lastSpeedup, "central/parbox@8")
}

func BenchmarkFig8QuerySizeScaling(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		q2, _ := fig.Get(8, "|QList|=2")
		q23, _ := fig.Get(8, "|QList|=23")
		ratio = q23 / q2
	}
	b.ReportMetric(ratio, "q23/q2@8")
}

func BenchmarkFig9LazyEqualsParBoX(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		pb, _ := fig.Get(8, "ParBox")
		lz, _ := fig.Get(8, "LZParBox")
		ratio = lz / pb
	}
	b.ReportMetric(ratio, "lazy/parbox@8")
}

func BenchmarkFig10LazyDeepTarget(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig10(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		pb, _ := fig.Get(8, "ParBox")
		lz, _ := fig.Get(8, "LZParBox")
		ratio = lz / pb
	}
	b.ReportMetric(ratio, "lazy/parbox@8")
}

func BenchmarkFig11LazyMidTarget(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		pb, _ := fig.Get(8, "ParBox")
		lz, _ := fig.Get(8, "LZParBox")
		ratio = lz / pb
	}
	b.ReportMetric(ratio, "lazy/parbox@8")
}

func BenchmarkFig12DataScaling(b *testing.B) {
	var growth float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig12(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		first := fig.Rows[0].Values["|QList|=8"]
		last := fig.Rows[len(fig.Rows)-1].Values["|QList|=8"]
		growth = last / first
	}
	b.ReportMetric(growth, "t(160MB)/t(45MB)")
}

func BenchmarkFig13FragmentCountInvariance(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig13(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		min, max := 1e18, 0.0
		for _, r := range fig.Rows {
			v := r.Values["ParBox"]
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		spread = max / min
	}
	b.ReportMetric(spread, "max/min")
}

func BenchmarkTable4Guarantees(b *testing.B) {
	var parboxVisits float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algorithm == core.AlgoParBoX {
				parboxVisits = float64(r.MaxVisitsPerSite)
			}
		}
	}
	b.ReportMetric(parboxVisits, "parbox-max-visits")
}

func BenchmarkViewsMaintenance(b *testing.B) {
	var bytes float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ViewsExp(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		bytes = float64(rows[len(rows)-1].Bytes)
	}
	b.ReportMetric(bytes, "maintenance-bytes")
}

// --- micro-benchmarks of the core procedures ---------------------------

// benchDoc caches a mid-size document per size to keep setup out of the
// timed loop.
var benchDocs = map[int]*Node{}

func benchDoc(nodes int) *Node {
	if d, ok := benchDocs[nodes]; ok {
		return d
	}
	d := xmark.Generate(xmark.Spec{Seed: 7, MB: float64(nodes) / float64(xmark.DefaultNodesPerMB)})
	benchDocs[nodes] = d
	return d
}

func BenchmarkBottomUp(b *testing.B) {
	for _, nodes := range []int{1000, 10000, 100000} {
		doc := benchDoc(nodes)
		prog := xpath.MustCompileString(xmark.Queries[8])
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.BottomUp(doc, prog); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(doc.Size()), "nodes")
		})
	}
}

// BenchmarkBottomUpLegacy runs the reference pointer-formula evaluator on
// the same all-constant XMark fragments as BenchmarkBottomUp. The spread
// between the two is the constant-plane win recorded in BENCH_parbox.json.
func BenchmarkBottomUpLegacy(b *testing.B) {
	for _, nodes := range []int{1000, 10000, 100000} {
		doc := benchDoc(nodes)
		prog := xpath.MustCompileString(xmark.Queries[8])
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.LegacyBottomUp(doc, prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBottomUpQuerySizes(b *testing.B) {
	doc := benchDoc(10000)
	for _, size := range xmark.QuerySizes() {
		prog := xpath.MustCompileString(xmark.Queries[size])
		b.Run(fmt.Sprintf("qlist=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.BottomUp(doc, prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchFragmented builds a deployed star system for end-to-end benches.
func benchFragmented(b *testing.B, n int, nodes int) *core.Engine {
	b.Helper()
	root, sites, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       3,
		Parents:    xmark.StarParents(n),
		MBs:        xmark.EvenMBs(float64(nodes)/float64(xmark.DefaultNodesPerMB), n),
		NodesPerMB: xmark.DefaultNodesPerMB,
	})
	if err != nil {
		b.Fatal(err)
	}
	forest, err := xmark.Fragment(root, sites)
	if err != nil {
		b.Fatal(err)
	}
	assign := frag.Assignment{}
	for i := 0; i < n; i++ {
		assign[FragmentID(i)] = frag.SiteID(fmt.Sprintf("S%d", i))
	}
	c := cluster.New(cluster.DefaultCostModel())
	eng, err := core.Deploy(c, forest, assign)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkCoalescedBurst mirrors the harness's serve/coalesced-64q
// scenario in a profileable shape: 64 concurrent subscribers sharing six
// standing queries against an 8-site star, served by the coalescing
// scheduler. `go test -bench CoalescedBurst -cpuprofile cpu.out .` is the
// way to see where a scheduler round actually spends its time.
func BenchmarkCoalescedBurst(b *testing.B) {
	root, sites, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       3,
		Parents:    xmark.StarParents(8),
		MBs:        xmark.EvenMBs(float64(8*10000)/float64(xmark.DefaultNodesPerMB), 8),
		NodesPerMB: xmark.DefaultNodesPerMB,
	})
	if err != nil {
		b.Fatal(err)
	}
	forest, err := xmark.Fragment(root, sites)
	if err != nil {
		b.Fatal(err)
	}
	assign := frag.Assignment{}
	for i := 0; i < 8; i++ {
		assign[FragmentID(i)] = frag.SiteID(fmt.Sprintf("S%d", i))
	}
	sys, err := Deploy(forest, assign, WithCoalescedServing(0, 0))
	if err != nil {
		b.Fatal(err)
	}
	srcs := []string{
		xmark.NamedQueries["BQ1-person-lookup"],
		xmark.NamedQueries["BQ2-bidder-increase"],
		xmark.NamedQueries["BQ3-closed-price"],
		xmark.NamedQueries["BQ5-absence"],
		xmark.NamedQueries["BQ6-region-items"],
		xmark.Queries[8],
	}
	subs := make([]*Prepared, 64)
	for i := range subs {
		q, err := Prepare(srcs[i%len(srcs)])
		if err != nil {
			b.Fatal(err)
		}
		subs[i] = q
	}
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := make(chan struct{})
		var wg sync.WaitGroup
		for _, q := range subs {
			wg.Add(1)
			go func(q *Prepared) {
				defer wg.Done()
				<-start
				if _, err := sys.Exec(ctx, q); err != nil {
					b.Error(err)
				}
			}(q)
		}
		close(start)
		wg.Wait()
	}
}

func BenchmarkParBoXEndToEnd(b *testing.B) {
	eng := benchFragmented(b, 8, 80000)
	prog := xpath.MustCompileString(xmark.Queries[8])
	ctx := context.Background()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ParBoX(ctx, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullDistEndToEnd(b *testing.B) {
	eng := benchFragmented(b, 8, 80000)
	prog := xpath.MustCompileString(xmark.Queries[8])
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.FullDist(ctx, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectEndToEnd(b *testing.B) {
	eng := benchFragmented(b, 8, 80000)
	sp, err := xpath.CompileSelectString(`//item[location = "Kenya"]/name`)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SelectParBoX(ctx, sp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectRepeated quantifies what the prepared-query API fixes:
// the legacy Select entry point re-parses and re-compiles the path query
// on every call, while Exec on a Prepared reuses the automaton cached at
// first use — repeated calls perform zero recompilation. The spread shows
// up directly in allocs/op.
func BenchmarkSelectRepeated(b *testing.B) {
	sys, _ := deployPortfolio(b)
	ctx := context.Background()
	const src = `//stock[code = "YHOO"]`

	b.Run("legacy-recompile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Select(ctx, src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		q := MustPrepare(src)
		if _, err := sys.Exec(ctx, q, WithMode(ModeSelect)); err != nil {
			b.Fatal(err) // warm the cache outside the timed loop
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Exec(ctx, q, WithMode(ModeSelect)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCountRepeated is the aggregation twin of BenchmarkSelectRepeated.
func BenchmarkCountRepeated(b *testing.B) {
	sys, _ := deployPortfolio(b)
	ctx := context.Background()
	const src = `//stock`

	b.Run("legacy-recompile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Count(ctx, src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		q := MustPrepare(src)
		if _, err := sys.Exec(ctx, q, WithMode(ModeCount)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Exec(ctx, q, WithMode(ModeCount)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSolve(b *testing.B) {
	// A 32-fragment random fragmentation: the coordinator's third phase.
	root, sites, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       5,
		Parents:    xmark.ChainParents(32),
		MBs:        xmark.EvenMBs(4, 32),
		NodesPerMB: 500,
	})
	if err != nil {
		b.Fatal(err)
	}
	forest, err := xmark.Fragment(root, sites)
	if err != nil {
		b.Fatal(err)
	}
	assign := frag.AssignAll(forest, "S")
	st, err := frag.BuildSourceTree(forest, assign)
	if err != nil {
		b.Fatal(err)
	}
	prog := xpath.MustCompileString(xmark.Queries[23])
	triplets, _, err := eval.EvaluateAll(forest, prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := eval.Solve(st, triplets, prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTripletCodec(b *testing.B) {
	doc := NewElement("r", "")
	for i := 0; i < 8; i++ {
		doc.AppendChild(NewElement("a", ""))
	}
	forest := NewForest(doc)
	for i := 0; i < 4; i++ {
		if _, err := forest.Split(doc.Children[i]); err != nil {
			b.Fatal(err)
		}
	}
	prog := xpath.MustCompileString(xmark.Queries[23])
	fr, _ := forest.Fragment(0)
	t, _, err := eval.BottomUp(fr.Root, prog)
	if err != nil {
		b.Fatal(err)
	}
	enc := t.Encode()
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := t.Encode()
			if _, err := eval.DecodeTriplet(buf); err != nil {
				b.Fatal(err)
			}
			_ = buf
		}
		b.ReportMetric(float64(len(enc)), "triplet-bytes")
	})
	// The connection-shaped path: one slab serves the whole stream, so
	// per-formula allocations amortize to one per chunk.
	b.Run("slab", func(b *testing.B) {
		slab := boolexpr.NewSlab()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := t.Encode()
			if _, err := eval.DecodeTripletSlab(buf, slab); err != nil {
				b.Fatal(err)
			}
			_ = buf
		}
		b.ReportMetric(float64(len(enc)), "triplet-bytes")
	})
}

func BenchmarkQueryCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := xpath.CompileString(xmark.Queries[23]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc := xmark.Generate(xmark.Spec{Seed: int64(i), MB: 1})
		if doc.Label != "site" {
			b.Fatal("bad doc")
		}
	}
}

// BenchmarkAblationHashConsing measures what subquery sharing saves: the
// same self-similar query compiled with and without hash-consing, then
// evaluated with Procedure bottomUp. (DESIGN.md §5, ablations.)
func BenchmarkAblationHashConsing(b *testing.B) {
	src := `//item[quantity] && //item[quantity] && //person[address/city = "Seoul"] && //person[address/city = "Seoul"]`
	e, err := xpath.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	doc := benchDoc(10000)
	for _, cons := range []bool{true, false} {
		prog := xpath.CompileWithOptions(e, xpath.CompileOptions{DisableHashCons: !cons})
		name := "shared"
		if !cons {
			name = "duplicated"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.BottomUp(doc, prog); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(prog.QListSize()), "qlist-size")
		})
	}
}

// BenchmarkAblationPlacement compares replica-placement strategies on a
// size-skewed replicated deployment (the Section 8 replication remark).
func BenchmarkAblationPlacement(b *testing.B) {
	root, sites, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       9,
		Parents:    xmark.StarParents(5),
		MBs:        []float64{0.5, 8, 2, 2, 0.5},
		NodesPerMB: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	forest, err := xmark.Fragment(root, sites)
	if err != nil {
		b.Fatal(err)
	}
	replicas := core.ReplicaMap{
		0: {"S0", "S1"},
		1: {"S1", "S2", "S3"},
		2: {"S2", "S0"},
		3: {"S3", "S1"},
		4: {"S0", "S2", "S3"},
	}
	c := cluster.New(cluster.DefaultCostModel())
	if _, err := core.DeployReplicated(c, forest, replicas, core.PlaceFirst); err != nil {
		b.Fatal(err)
	}
	prog := xpath.MustCompileString(xmark.Queries[8])
	ctx := context.Background()
	for _, strategy := range []core.PlacementStrategy{core.PlaceFirst, core.PlaceMinSites, core.PlaceBalanced} {
		eng, err := core.Replan(c, forest, replicas, strategy)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(strategy.String(), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				rep, err := eng.ParBoX(ctx, prog)
				if err != nil {
					b.Fatal(err)
				}
				sim = rep.SimTime.Seconds()
			}
			b.ReportMetric(sim, "model-sec")
		})
	}
}

// BenchmarkSelectionExtension runs the Section 8 selection/aggregation
// experiment, reporting distributed selection's traffic advantage.
func BenchmarkSelectionExtension(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SelectionExp(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		ratio = float64(r.CentralBytes) / float64(r.SelectBytes)
	}
	b.ReportMetric(ratio, "central/select-bytes")
}

package parbox

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fixtures"
	"repro/internal/obs"
)

// checkSpanTree verifies structural integrity of a collected span set:
// one trace ID throughout, exactly one root (Parent not among the set's
// IDs is allowed only for the root), and every other span reachable
// from it through parent links.
func checkSpanTree(t *testing.T, spans []obs.Span) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatal("no spans collected")
	}
	ids := make(map[uint64]obs.Span, len(spans))
	for _, sp := range spans {
		if sp.TraceID != spans[0].TraceID {
			t.Fatalf("span %q has trace %x, want %x", sp.Name, sp.TraceID, spans[0].TraceID)
		}
		if sp.ID == 0 {
			t.Fatalf("span %q has a zero ID", sp.Name)
		}
		if _, dup := ids[sp.ID]; dup {
			t.Fatalf("duplicate span ID %x (%q)", sp.ID, sp.Name)
		}
		ids[sp.ID] = sp
	}
	roots := 0
	for _, sp := range spans {
		if _, ok := ids[sp.Parent]; !ok {
			roots++
			continue
		}
		// Walk up: must terminate at a root, not cycle.
		seen := map[uint64]bool{sp.ID: true}
		cur := sp
		for {
			p, ok := ids[cur.Parent]
			if !ok {
				break
			}
			if seen[p.ID] {
				t.Fatalf("parent cycle at span %q", p.Name)
			}
			seen[p.ID] = true
			cur = p
		}
	}
	if roots != 1 {
		t.Errorf("span set has %d roots, want exactly 1", roots)
	}
}

func spanNames(spans []obs.Span) map[string]int {
	names := make(map[string]int)
	for _, sp := range spans {
		names[sp.Name]++
	}
	return names
}

// TestWithSpansSolo: a plain Exec with WithSpans yields a connected
// span tree rooted at the exec span, with per-site handler and
// bottomUp spans for every remote visit, and no text output anywhere.
func TestWithSpansSolo(t *testing.T) {
	sys, _ := deployPortfolio(t)
	q, err := Prepare(`//stock[price]`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Exec(context.Background(), q, WithSpans())
	if err != nil {
		t.Fatal(err)
	}
	checkSpanTree(t, res.Spans)
	names := spanNames(res.Spans)
	if names["exec boolean"] != 1 {
		t.Errorf("want exactly one root exec span, got %v", names)
	}
	if names["handle parbox.evalQual"] == 0 || names["bottomUp"] == 0 {
		t.Errorf("missing site-side spans: %v", names)
	}
	// Every remotely visited site must appear as a span site.
	siteSeen := make(map[SiteID]bool)
	for _, sp := range res.Spans {
		siteSeen[SiteID(sp.Site)] = true
	}
	for site, v := range res.Visits {
		if v > 0 && !siteSeen[site] {
			t.Errorf("site %s was visited %d times but recorded no span", site, v)
		}
	}

	// Without WithSpans, collection stays off.
	res2, err := sys.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Spans != nil {
		t.Errorf("untraced call collected %d spans", len(res2.Spans))
	}
}

// TestWithTraceRendersSpans: WithTrace keeps its message log and now
// appends the rendered span tree after it.
func TestWithTraceRendersSpans(t *testing.T) {
	sys, _ := deployPortfolio(t)
	q, err := Prepare(`//stock[price]`)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	res, err := sys.Exec(context.Background(), q, WithTrace(&buf))
	if err != nil {
		t.Fatal(err)
	}
	checkSpanTree(t, res.Spans)
	out := buf.String()
	if !strings.Contains(out, "parbox.evalQual") {
		t.Errorf("trace output lost the message log:\n%s", out)
	}
	if !strings.Contains(out, "trace ") || !strings.Contains(out, "exec boolean") {
		t.Errorf("trace output lacks the span tree:\n%s", out)
	}
}

// TestTracedCoalescedMatchesUntraced is the satellite regression for
// lifting the WithTrace×WithCoalescing restriction: a traced coalesced
// call must return exactly the answers and accounting of an untraced
// one, carry the round's span tree with a lane span attributed, and
// render a tree into the trace writer.
func TestTracedCoalescedMatchesUntraced(t *testing.T) {
	sys, _ := deployPortfolio(t)
	ctx := context.Background()
	for _, src := range []string{
		`//stock[price]`,
		`//stock[code = "A"] && //fund`,
		`//bond || //stock`,
	} {
		q, err := Prepare(src)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := sys.Exec(ctx, q, WithCoalescing())
		if err != nil {
			t.Fatalf("%q untraced: %v", src, err)
		}
		var buf strings.Builder
		traced, err := sys.Exec(ctx, q, WithCoalescing(), WithTrace(&buf), WithSpans())
		if err != nil {
			t.Fatalf("%q traced: %v", src, err)
		}
		if plain.Sched == nil || traced.Sched == nil {
			t.Fatalf("%q: a call bypassed the scheduler (plain %v, traced %v)", src, plain.Sched, traced.Sched)
		}
		if traced.Answer != plain.Answer {
			t.Errorf("%q: answer traced=%v untraced=%v", src, traced.Answer, plain.Answer)
		}
		if traced.Bytes != plain.Bytes || traced.Messages != plain.Messages ||
			traced.TotalSteps != plain.TotalSteps {
			t.Errorf("%q: accounting traced (bytes %d, msgs %d, steps %d) != untraced (%d, %d, %d)",
				src, traced.Bytes, traced.Messages, traced.TotalSteps,
				plain.Bytes, plain.Messages, plain.TotalSteps)
		}
		for site, v := range plain.Visits {
			if traced.Visits[site] != v {
				t.Errorf("%q: visits[%s] traced=%d untraced=%d", src, site, traced.Visits[site], v)
			}
		}
		checkSpanTree(t, traced.Spans)
		names := spanNames(traced.Spans)
		if names["round"] != 1 || names["lane"] != 1 {
			t.Errorf("%q: coalesced spans want one round + one lane, got %v", src, names)
		}
		if !strings.Contains(buf.String(), "round") {
			t.Errorf("%q: trace writer did not receive the round tree:\n%s", src, buf.String())
		}
		if plain.Spans != nil {
			t.Errorf("%q: untraced coalesced call collected spans", src)
		}
	}
}

// TestTracedCoalescedConcurrent: traced and untraced callers sharing
// one round — every traced caller receives the shared round tree (one
// lane span per traced round-mate), untraced round-mates receive
// nothing.
func TestTracedCoalescedConcurrent(t *testing.T) {
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(forest, Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"},
		WithCoalescedServing(5*time.Millisecond, 64))
	if err != nil {
		t.Fatal(err)
	}
	q, err := Prepare(`//stock[price]`)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 12
	results := make([]*Result, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	done := make(chan int, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			<-start
			opts := []ExecOption{WithCoalescing()}
			if i%2 == 0 {
				opts = append(opts, WithSpans())
			}
			results[i], errs[i] = sys.Exec(context.Background(), q, opts...)
			done <- i
		}(i)
	}
	close(start)
	for i := 0; i < callers; i++ {
		<-done
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if i%2 == 0 {
			checkSpanTree(t, results[i].Spans)
			// The tree is shared by the round: one lane span per traced
			// round-mate, so at least this caller's own.
			if n := spanNames(results[i].Spans)["lane"]; n < 1 {
				t.Errorf("caller %d: %d lane spans, want >= 1", i, n)
			}
		} else if results[i].Spans != nil {
			t.Errorf("untraced caller %d received %d spans", i, len(results[i].Spans))
		}
	}
}

// TestIntrospectionEndpoints drives the coordinator's WithIntrospection
// plane end to end: /metrics exposes the per-site counters and
// histogram buckets, /healthz answers, /tracez shows traced Exec calls,
// and Close stops the server.
func TestIntrospectionEndpoints(t *testing.T) {
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(forest, Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"},
		WithIntrospection("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	addr := sys.IntrospectionAddr()
	if addr == "" {
		t.Fatal("no introspection address")
	}
	q, err := Prepare(`//stock[price]`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sys.Exec(ctx, q, WithSpans()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec(ctx, q); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"parbox_site_visits_total",
		"parbox_site_messages_in_total",
		"parbox_site_bytes_in_total",
		"parbox_site_steps_total",
		"parbox_site_sheds_total",
		"parbox_site_cache_hits_total",
		"parbox_site_request_seconds_bucket",
		`le="+Inf"`,
		"parbox_sched_rounds_total",
		`site="S1"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// Families must be contiguous: one HELP line per family even with
	// several sites.
	if n := strings.Count(body, "# HELP parbox_site_visits_total"); n != 1 {
		t.Errorf("parbox_site_visits_total family declared %d times, want 1", n)
	}

	if code, body = get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body = get("/tracez"); code != http.StatusOK || !strings.Contains(body, "exec boolean") {
		t.Errorf("/tracez = %d, body lacks the traced exec:\n%s", code, body)
	}
	if code, body = get("/tracez?min=24h"); code != http.StatusOK || !strings.Contains(body, "0/") {
		t.Errorf("/tracez?min=24h = %d %q, want zero traces shown", code, body)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}

	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("introspection server still serving after Close")
	}
}

// TestIntrospectionBadAddr: a malformed listen address fails deployment
// loudly instead of silently dropping the plane.
func TestIntrospectionBadAddr(t *testing.T) {
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Deploy(forest, Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"},
		WithIntrospection("256.0.0.1:99999"))
	if err == nil {
		t.Fatal("Deploy succeeded with an unusable introspection address")
	}
	if !strings.Contains(err.Error(), "WithIntrospection") {
		t.Errorf("error %v does not name the failing option", err)
	}
}

// TestSchedExecContextExpiry: a caller whose context expires while its
// round is in flight still detaches cleanly under tracing (the flusher
// must never write to an abandoned caller's writer).
func TestSchedExecContextExpiry(t *testing.T) {
	sys, _ := deployPortfolio(t)
	q, err := Prepare(`//stock[price]`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf strings.Builder
	// The round runs under context.Background, so it may still complete
	// and win the select even against a cancelled caller context — both
	// outcomes are legal. What must hold: an abandoning caller's writer
	// is never written by the flusher (rendering happens on the caller's
	// goroutine only), so under -race this test doubles as the proof.
	_, err = sys.Exec(ctx, q, WithCoalescing(), WithTrace(&buf))
	time.Sleep(20 * time.Millisecond)
	if err != nil && buf.String() != "" {
		t.Errorf("abandoned caller's writer was written to: %q", buf.String())
	}
}

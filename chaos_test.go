package parbox

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestExecTimeoutAlreadyExpired pins WithTimeout's already-expired
// contract: a zero or negative budget fails immediately with
// context.DeadlineExceeded — matching a caller that passes along an
// exhausted deadline — instead of being treated as "no timeout".
func TestExecTimeoutAlreadyExpired(t *testing.T) {
	forest, assign := failoverForest(t)
	sys, err := Deploy(forest, assign)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, d := range []time.Duration{0, -time.Second} {
		start := time.Now()
		_, err := sys.Exec(context.Background(), MustQuery(failoverQueries[0]), WithTimeout(d))
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("WithTimeout(%v): err = %v, want context.DeadlineExceeded", d, err)
		}
		if took := time.Since(start); took > time.Second {
			t.Fatalf("WithTimeout(%v): already-expired call took %v", d, took)
		}
	}
}

// chaosVictims returns the non-coordinator replica sites, sorted — the
// fault script assigns one failure mode to each.
func chaosVictims(sys *System) []SiteID {
	seen := map[SiteID]bool{}
	var out []SiteID
	for _, sites := range sys.Replicas() {
		for _, s := range sites {
			if s != sys.Coordinator() && !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// chaosRun fires a concurrent query stream at a replicated failover
// deployment with the overload-protection stack armed (retry budget,
// hedging, per-site admission) and, when faulted, a seeded chaos script:
// one replica slow, one flaky, one persistently shedding. It checks
// every answer against ref and returns the per-query results plus the
// total transport call count.
func chaosRun(t *testing.T, ref map[string]bool, seed int64, faulted bool, budget int) ([]*Result, int) {
	t.Helper()
	sys, ft := deployFaulty(t,
		WithRetryBudget(budget),
		WithHedging(500*time.Microsecond),
		WithAdmissionLimit(8),
	)
	if faulted {
		victims := chaosVictims(sys)
		if len(victims) < 3 {
			t.Fatalf("need 3 non-coordinator victims, have %v", victims)
		}
		ft.SlowSite(victims[0], 4*time.Millisecond, rand.NewSource(seed))
		ft.FlakySite(victims[1], 0.10, rand.NewSource(seed+1))
		ft.OverloadSite(victims[2], time.Millisecond)
	}
	const workers, perWorker = 8, 10
	results := make([]*Result, workers*perWorker)
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				src := failoverQueries[(w+i)%len(failoverQueries)]
				res, err := sys.Exec(context.Background(), MustQuery(src))
				if err != nil {
					errc <- fmt.Errorf("worker %d %s: %w", w, src, err)
					return
				}
				if res.Answer != ref[src] {
					errc <- fmt.Errorf("worker %d: %s = %v, reference %v", w, src, res.Answer, ref[src])
					return
				}
				results[w*perWorker+i] = res
			}
		}(w)
	}
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	return results, ft.Calls()
}

// TestChaosDifferentialSeeded is the overload-safety differential (run
// it under -race): against a seeded chaos script — one replica slow,
// one flaky, one shedding every call, plus real per-site admission
// limits — every answer must match the never-faulted reference, every
// query must stay within its retry budget, hedges must never
// double-count, and total transport traffic must stay within a small
// constant factor of the unfaulted baseline (retries recover; they do
// not storm).
func TestChaosDifferentialSeeded(t *testing.T) {
	ref := referenceAnswers(t)
	const budget = 12

	_, baseCalls := chaosRun(t, ref, 0, false, budget)
	results, calls := chaosRun(t, ref, 42, true, budget)

	var hedges, wins, failovers int64
	for i, res := range results {
		if res.Failovers > budget {
			t.Errorf("query %d spent %d recoveries, budget %d", i, res.Failovers, budget)
		}
		if res.HedgeWins > res.Hedges {
			t.Errorf("query %d: %d hedge wins out of %d hedges", i, res.HedgeWins, res.Hedges)
		}
		hedges += res.Hedges
		wins += res.HedgeWins
		failovers += res.Failovers
	}
	if hedges == 0 {
		t.Error("no hedge fired against a 4ms-slow replica with a 500µs hedge delay")
	}
	if wins == 0 {
		t.Error("no hedge ever won against a 4ms-slow replica")
	}
	if failovers == 0 {
		t.Error("chaos script injected faults but no query recorded a recovery")
	}
	// No retry storm: recovery adds re-placements, round retries and
	// re-probes, all drawn from per-query budgets — total traffic stays
	// linear in the number of queries.
	if baseCalls == 0 {
		t.Fatal("baseline run made no transport calls")
	}
	if calls > 4*baseCalls {
		t.Errorf("faulted run made %d transport calls, >4x the unfaulted %d (retry storm?)", calls, baseCalls)
	}
	// The seeded script replays: the same seed drives the same per-site
	// fault schedule (scheduling may interleave differently, but answers
	// and invariants must hold identically).
	results2, _ := chaosRun(t, ref, 42, true, budget)
	for i, res := range results2 {
		if res.Failovers > budget {
			t.Errorf("replay query %d spent %d recoveries, budget %d", i, res.Failovers, budget)
		}
	}
}

package parbox

import (
	"context"
	"io"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentTracedFullDist pins a run-key regression: WithTrace (and
// Replan) build fresh per-run engines, so the FullDist run sequence must
// be process-wide — a per-engine counter makes concurrent traced runs
// collide on the sites' keyed run state ("no state for run" errors, or
// silently swapped triplets).
func TestConcurrentTracedFullDist(t *testing.T) {
	sys, orig := deployPortfolio(t)
	q := MustPrepare(`//stock[code = "YHOO"]`)
	want, err := EvaluateLocal(orig, q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				res, err := sys.Exec(context.Background(), q,
					WithAlgorithm(AlgoFullDist), WithTrace(io.Discard))
				if err != nil {
					t.Error(err)
					return
				}
				if res.Answer != want {
					t.Errorf("answer = %v, want %v", res.Answer, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentExec fires a mixed workload — Boolean queries under every
// algorithm, selections, counts, batches — from many goroutines against
// one System, as a dissemination service under concurrent traffic would.
// Every answer must be correct and the per-run accounting must add up:
// the sum of the runs' Bytes must equal the cluster-wide metered traffic,
// proving no run's accounting bleeds into another's. Run with -race.
func TestConcurrentExec(t *testing.T) {
	sys, orig := deployPortfolio(t)
	ctx := context.Background()

	boolSrcs := []string{
		`//stock[code = "YHOO"]`,
		`//stock[code = "MSFT"]`,
		`//broker && //market`,
		`//market[name = "NYSE"]`,
	}
	boolQs := make([]*Prepared, len(boolSrcs))
	wants := make([]bool, len(boolSrcs))
	for i, src := range boolSrcs {
		boolQs[i] = MustPrepare(src)
		w, err := EvaluateLocal(orig, boolQs[i])
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}
	selQ := MustPrepare(`//stock`)
	wantMatched, err := sys.Exec(ctx, selQ, WithMode(ModeCount))
	if err != nil {
		t.Fatal(err)
	}

	sys.ResetMetrics()
	var totalBytes atomic.Int64
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 6; iter++ {
				// Boolean, rotating over queries × algorithms.
				qi := (w + iter) % len(boolQs)
				algo := Algorithms()[(w*7+iter)%len(Algorithms())]
				res, err := sys.Exec(ctx, boolQs[qi], WithAlgorithm(algo))
				if err != nil {
					t.Errorf("worker %d: %v(%q): %v", w, algo, boolSrcs[qi], err)
					return
				}
				if res.Answer != wants[qi] {
					t.Errorf("worker %d: %v(%q) = %v, want %v", w, algo, boolSrcs[qi], res.Answer, wants[qi])
				}
				totalBytes.Add(res.Bytes)

				// Selection and count share the one cached automaton.
				mode := ModeSelect
				if iter%2 == 1 {
					mode = ModeCount
				}
				mres, err := sys.Exec(ctx, selQ, WithMode(mode))
				if err != nil {
					t.Errorf("worker %d: %v: %v", w, mode, err)
					return
				}
				if mres.Matched != wantMatched.Matched {
					t.Errorf("worker %d: %v matched %d, want %d", w, mode, mres.Matched, wantMatched.Matched)
				}
				totalBytes.Add(mres.Bytes)

				// A small batch round.
				bres, err := sys.Exec(ctx, boolQs[0], WithBatch(boolQs[1:]...))
				if err != nil {
					t.Errorf("worker %d: batch: %v", w, err)
					return
				}
				for i, ans := range bres.Answers {
					if ans != wants[i] {
						t.Errorf("worker %d: batch[%d] = %v, want %v", w, i, ans, wants[i])
					}
				}
				totalBytes.Add(bres.Bytes)
			}
		}(w)
	}
	wg.Wait()

	// Per-run accounting is keyed to the run: summed over all concurrent
	// runs it must reproduce the cluster's global traffic meter exactly.
	if got := sys.TotalBytes(); got != totalBytes.Load() {
		t.Errorf("metrics drift: cluster metered %d bytes, runs reported %d", got, totalBytes.Load())
	}
}

package parbox

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/fixtures"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// deployRandom builds a random fragmented document and deploys it twice
// over the same trees (queries are read-only): once plain, once with
// coalesced serving and the triplet cache — the pair the differential
// tests compare.
func deployRandom(t *testing.T, r *rand.Rand) (seq, co *System) {
	t.Helper()
	tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 150, MaxChildren: 5})
	forest := frag.NewForest(tree)
	if err := forest.SplitRandom(r, 6); err != nil {
		t.Fatal(err)
	}
	sites := []SiteID{"S0", "S1", "S2", "S3"}
	assign := make(Assignment)
	for _, id := range forest.IDs() {
		assign[id] = sites[r.Intn(len(sites))]
	}
	assign[forest.RootID()] = "S0"
	var err error
	seq, err = Deploy(forest, assign)
	if err != nil {
		t.Fatal(err)
	}
	co, err = Deploy(forest, assign, WithCoalescedServing(2*time.Millisecond, 64), WithTripletCache())
	if err != nil {
		t.Fatal(err)
	}
	return seq, co
}

// TestCoalescedMatchesSequential is the differential property test of the
// serving layer: a set of overlapping random Boolean queries fired
// concurrently through the coalescing scheduler (with the triplet cache
// on) must produce exactly the answers of one-at-a-time uncoalesced cold
// Exec — and the demultiplexed per-caller accounting must satisfy the sum
// invariants: within every shared round the callers' shares sum to the
// round's totals, and across rounds the totals reproduce the cluster's
// global traffic meter. Run with -race: the scheduler, the cache and the
// demux are all concurrent machinery.
func TestCoalescedMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			seqSys, coSys := deployRandom(t, r)
			ctx := context.Background()

			// A subscription-shaped workload: few distinct queries, many
			// subscribers — heavy overlap is where coalescing pays.
			distinct := make([]*Prepared, 10)
			for i := range distinct {
				e := xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true})
				distinct[i] = &Prepared{src: e.String(), expr: e}
			}
			queries := make([]*Prepared, 36)
			for i := range queries {
				queries[i] = distinct[r.Intn(len(distinct))]
			}

			// Sequential oracle: cold, uncoalesced, one round per query.
			want := make([]bool, len(queries))
			for i, q := range queries {
				res, err := seqSys.Exec(ctx, q, WithNoCoalesce())
				if err != nil {
					t.Fatalf("sequential %q: %v", q, err)
				}
				if res.Sched != nil {
					t.Fatalf("uncoalesced call got Sched info")
				}
				want[i] = res.Answer
			}

			// Two concurrent passes: the first cold, the second against
			// warm site caches (hits must not change any answer).
			for pass := 0; pass < 2; pass++ {
				coSys.ResetMetrics()
				results := make([]*Result, len(queries))
				var wg sync.WaitGroup
				for i, q := range queries {
					wg.Add(1)
					go func(i int, q *Prepared) {
						defer wg.Done()
						res, err := coSys.Exec(ctx, q) // system default: coalesced
						if err != nil {
							t.Errorf("coalesced %q: %v", q, err)
							return
						}
						results[i] = res
					}(i, q)
				}
				wg.Wait()
				if t.Failed() {
					return
				}

				rounds := make(map[*BatchResult][]*Result)
				for i, res := range results {
					if res.Answer != want[i] {
						t.Errorf("pass %d: query %d (%q) = %v, want %v", pass, i, queries[i], res.Answer, want[i])
					}
					if res.Sched == nil || res.Sched.Round == nil {
						t.Fatalf("pass %d: coalesced call missing Sched info", pass)
					}
					rounds[res.Sched.Round] = append(rounds[res.Sched.Round], res)
				}

				// Per-round sum invariants: fair shares reassemble the round.
				var roundBytes int64
				for rep, members := range rounds {
					if len(members) != len(rep.Answers) {
						t.Errorf("round served %d callers but answered %d queries", len(members), len(rep.Answers))
					}
					var bytes, msgs, steps, hits, misses int64
					visits := make(map[SiteID]int64)
					for _, m := range members {
						bytes += m.Bytes
						msgs += m.Messages
						steps += m.TotalSteps
						hits += m.CacheHits
						misses += m.CacheMisses
						for s, v := range m.Visits {
							visits[s] += v
						}
					}
					if bytes != rep.Bytes || msgs != rep.Messages || steps != rep.TotalSteps {
						t.Errorf("round shares don't sum: bytes %d/%d msgs %d/%d steps %d/%d",
							bytes, rep.Bytes, msgs, rep.Messages, steps, rep.TotalSteps)
					}
					if hits != rep.CacheHits || misses != rep.CacheMisses {
						t.Errorf("cache shares don't sum: hits %d/%d misses %d/%d",
							hits, rep.CacheHits, misses, rep.CacheMisses)
					}
					for s, v := range rep.Visits {
						if visits[s] != v {
							t.Errorf("visit shares for %s don't sum: %d, want %d", s, visits[s], v)
						}
					}
					roundBytes += rep.Bytes
				}
				// Across rounds: the rounds' traffic is the cluster's traffic.
				if got := coSys.TotalBytes(); got != roundBytes {
					t.Errorf("pass %d: cluster metered %d bytes, rounds reported %d", pass, got, roundBytes)
				}
			}

			stats := coSys.SchedulerStats()
			if stats.Queries != int64(2*len(queries)) {
				t.Errorf("scheduler served %d queries, want %d", stats.Queries, 2*len(queries))
			}
			if stats.Rounds == 0 || stats.Rounds > stats.Queries {
				t.Errorf("implausible round count %d for %d queries", stats.Rounds, stats.Queries)
			}
		})
	}
}

// TestWarmCacheZeroBottomUp pins the triplet cache's core promise: on a
// repeat of an identical query over unchanged fragments every site answers
// from cache — all hits, no misses, and the round's total computation is
// exactly the coordinator's solve work (zero bottomUp steps anywhere).
func TestWarmCacheZeroBottomUp(t *testing.T) {
	forest, orig, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	_ = orig
	sys, err := Deploy(forest, Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"}, WithTripletCache())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := MustPrepare(`//stock[code = "YHOO"]`)
	frags := int64(sys.SourceTree().Count())

	cold, err := sys.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 || cold.CacheMisses != frags {
		t.Errorf("cold run: %d hits / %d misses, want 0 / %d", cold.CacheHits, cold.CacheMisses, frags)
	}

	warm, err := sys.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Answer != cold.Answer {
		t.Errorf("warm answer %v != cold %v", warm.Answer, cold.Answer)
	}
	if warm.CacheHits != frags || warm.CacheMisses != 0 {
		t.Errorf("warm run: %d hits / %d misses, want %d / 0", warm.CacheHits, warm.CacheMisses, frags)
	}
	if warm.TotalSteps != warm.Boolean.SolveWork {
		t.Errorf("warm run spent %d steps beyond solve work %d — bottomUp ran despite warm cache",
			warm.TotalSteps, warm.Boolean.SolveWork)
	}
	// Same program through a fresh Prepared: the fingerprint is content-
	// derived, so the cache must hit across Prepared identities too.
	warm2, err := sys.Exec(ctx, MustPrepare(`//stock[code = "YHOO"]`))
	if err != nil {
		t.Fatal(err)
	}
	if warm2.CacheHits != frags {
		t.Errorf("re-prepared query missed the cache: %d hits, want %d", warm2.CacheHits, frags)
	}
}

// TestMaintenancePatchesTouchedFragment: a views-maintenance update
// must leave the cache serving the *new* content without a recompute —
// the maintenance layer patches the updated fragment's cached triplet
// in place (spine recomputation under the bumped version) instead of
// invalidating it, so the next run hits on every fragment and still
// observes the update in its answer. Untouched fragments' entries are
// untouched.
func TestMaintenancePatchesTouchedFragment(t *testing.T) {
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(forest, Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"}, WithTripletCache())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := MustPrepare(`//stock[code = "GOOG" && sell = "376"]`)
	frags := int64(sys.SourceTree().Count())

	if res, err := sys.Exec(ctx, q); err != nil {
		t.Fatal(err)
	} else if res.Answer {
		t.Fatal("query should start false")
	}
	// Warm every site.
	if res, err := sys.Exec(ctx, q); err != nil {
		t.Fatal(err)
	} else if res.CacheHits != frags {
		t.Fatalf("warmup: %d hits, want %d", res.CacheHits, frags)
	}

	// Drive the update through the view layer (the maintenance path that
	// owns in-place mutation): set GOOG's sell price in fragment 3.
	vres, err := sys.Exec(ctx, q, WithMode(ModeMaterialize))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vres.View.Update(ctx, 3, []UpdateOp{{Op: OpSetText, Path: []int{1, 2}, Text: "376"}}); err != nil {
		t.Fatal(err)
	}

	after, err := sys.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Answer {
		t.Error("query still false after the update — stale cached triplet served")
	}
	if after.CacheMisses != 0 || after.CacheHits != frags {
		t.Errorf("after update: %d hits / %d misses, want %d / 0 (fragment 3's entry patched in place, not invalidated)",
			after.CacheHits, after.CacheMisses, frags)
	}
}

// TestCoalesceOptionValidation pins the option-combination errors.
func TestCoalesceOptionValidation(t *testing.T) {
	sys, _ := deployPortfolio(t)
	ctx := context.Background()
	q := MustPrepare(`//stock`)
	if _, err := sys.Exec(ctx, q, WithCoalescing(), WithNoCoalesce()); err == nil {
		t.Error("WithCoalescing+WithNoCoalesce accepted")
	}
	if _, err := sys.Exec(ctx, q, WithCoalescing(), WithMode(ModeCount)); err == nil {
		t.Error("WithCoalescing+ModeCount accepted")
	}
	if _, err := sys.Exec(ctx, q, WithCoalescing(), WithAlgorithm(AlgoLazy)); err == nil {
		t.Error("WithCoalescing+AlgoLazy accepted")
	}
	if _, err := sys.Exec(ctx, q, WithCoalescing(), WithBatch(MustPrepare(`//market`))); err == nil {
		t.Error("WithCoalescing+WithBatch accepted")
	}
	// A single explicit coalesced call on an otherwise idle system must
	// still work (solo round through the scheduler, flushed on idle).
	res, err := sys.Exec(ctx, q, WithCoalescing())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sched == nil || res.Sched.RoundQueries != 1 || res.Sched.Coalesced {
		t.Errorf("solo coalesced call misreported: %+v", res.Sched)
	}
	// An Optimized() query carries a precompiled program the scheduler
	// cannot fuse (it compiles from the parsed form): it must run its own
	// round — and actually use the optimized program, not lose it.
	opt, err := sys.Exec(ctx, q.Optimized(), WithCoalescing())
	if err != nil {
		t.Fatal(err)
	}
	if opt.Sched != nil {
		t.Error("optimized query was coalesced, discarding its minimized program")
	}
	if opt.Answer != res.Answer {
		t.Errorf("optimized answer %v != plain %v", opt.Answer, res.Answer)
	}
}

// TestSchedulerReusesBatchBuilder pins the cross-window builder recycling:
// after a round flushes, its BatchBuilder (Reset, intern storage kept) must
// be the one the next window opens with — steady-state serving compiles
// every round through a single builder instead of allocating a compiler per
// round. (The allocs-per-round bound for the builder cycle itself is pinned
// in xpath's TestBatchBuilderSteadyStateAllocs.)
func TestSchedulerReusesBatchBuilder(t *testing.T) {
	sys, _ := deployPortfolio(t)
	ctx := context.Background()
	q := MustPrepare(`//stock[code = "YHOO"]`)

	if _, err := sys.Exec(ctx, q, WithCoalescing()); err != nil {
		t.Fatal(err)
	}
	sys.sched.mu.Lock()
	spare := sys.sched.spare
	sys.sched.mu.Unlock()
	if spare == nil {
		t.Fatal("no spare builder parked after the first round")
	}
	for i := 0; i < 5; i++ {
		if _, err := sys.Exec(ctx, q, WithCoalescing()); err != nil {
			t.Fatal(err)
		}
		sys.sched.mu.Lock()
		again := sys.sched.spare
		sys.sched.mu.Unlock()
		if again != spare {
			t.Fatalf("round %d flushed through a different builder — recycling broken", i)
		}
	}
	if stats := sys.SchedulerStats(); stats.Rounds != 6 {
		t.Fatalf("expected 6 rounds, got %d", stats.Rounds)
	}
}

# Developer entry points; CI runs the same commands.

.PHONY: all build test vet lint bench bench-smoke bench-diff fuzz fuzz-fused recovery-smoke transport-soak failover-smoke overload-smoke update-churn-smoke

all: build vet test

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

# lint mirrors CI's lint job: vet plus staticcheck at the version CI
# pins (install once with
# `go install honnef.co/go/tools/cmd/staticcheck@2024.1.1`).
lint: vet
	staticcheck ./...

# bench runs the reproducible perf harness and records the hot-path numbers
# (ns/op, allocs/op, bytes shipped) in BENCH_parbox.json, so the perf
# trajectory is tracked in-repo commit over commit.
bench:
	go run ./cmd/parbox bench -out BENCH_parbox.json

# bench-smoke compiles and runs every benchmark once — it validates that
# the benchmarks still build and execute, without measuring anything.
bench-smoke:
	go test -run '^$$' -bench . -benchtime=1x ./...

# bench-diff re-measures the harness and fails on a >25% regression in
# ns/op or allocs/op against the committed baseline. Run it before
# touching BENCH_parbox.json; `make bench` re-records the baseline.
bench-diff:
	go run ./cmd/parbox bench -out /tmp/BENCH_parbox.json -quiet -compare BENCH_parbox.json

# fuzz runs every fuzz target for 30s each, matching CI's fuzz matrix:
# the fused lane kernel differential, the spine-patch differential
# (patched planes must stay byte-equal to full bottomUp), WAL replay,
# and the v2 frame decoder (demux, torn frames, push frames, hostile
# span blocks).
fuzz: fuzz-fused
	go test ./internal/eval -run Fuzz -fuzz FuzzSpinePatch -fuzztime 30s
	go test ./internal/store -run Fuzz -fuzz FuzzWALReplay -fuzztime 30s
	go test ./internal/cluster -run Fuzz -fuzz FuzzV2ResponseDemux -fuzztime 30s

# fuzz-fused differentially fuzzes the fused lane kernel: arbitrary
# (tree, fragmentation, query batch) triples must evaluate identically
# through the word-parallel kernel, the scalar per-lane loop, and the
# legacy pointer evaluator. CI runs the same target for 30s.
fuzz-fused:
	go test ./internal/eval -run Fuzz -fuzz FuzzFusedBottomUp -fuzztime 30s

# recovery-smoke is CI's crash-recovery gate: SIGKILL a durable site
# daemon mid-run and restart it from its data dir, plus the in-process
# crash differential, all under the race detector.
recovery-smoke:
	go test -race -run 'TestDaemonCrashRecovery' ./cmd/parbox-site
	go test -race -run 'TestCrashRecoveryDifferential|TestVersionMonotonicityAndStaleCacheRejection|TestTopologyChangeRecovery' .

# transport-soak is CI's wire-protocol gate: the v2-TCP differential
# (answers and byte/message/cache counters of all six algorithms pinned
# to the in-memory transport), the 64-concurrent-queries × 8-site
# multiplexing soak, and the scheduler fair-share invariants — all under
# the race detector — plus the v2 frame-decoder unit tests.
transport-soak:
	go test -race -run 'TestTransport|TestSchedulerFairShare' ./internal/integration
	go test -race -run 'TestV2|TestV1|TestRequireV2|TestHandshake|TestServerGracefulClose|TestConnFailure' ./internal/cluster

# failover-smoke is CI's replica-failover gate: SIGKILL a real site
# daemon with a workload in flight over a 2x-replicated deployment — the
# coordinator must finish every query with the unfaulted reference
# answers — plus the in-process differential that kills and revives
# sites under all six algorithms, all under the race detector.
failover-smoke:
	go test -race -run 'TestDaemonFailover' ./cmd/parbox-site
	go test -race -run 'TestFailover|TestRebalanceMovesHotFragment' .

# update-churn-smoke is CI's incremental-maintenance gate: real TCP
# sites under a sustained update stream with 1000 standing
# subscriptions — every pushed answer must match a polled oracle, with
# zero dropped deltas — plus the facade subscription lifecycle and the
# empty-update no-op guarantee, all under the race detector.
update-churn-smoke:
	go test -race -run 'TestUpdateChurnSubscriptions' ./internal/integration
	go test -race -run 'TestSubscribe' .
	go test -race -run 'TestUpdateEmptyOpsIsNoOp' ./internal/views

# overload-smoke is CI's overload-protection gate: real site daemons
# serving fat fragments take a 16-worker burst against a tight
# -admission bound (the daemons must shed for real, and every shed must
# be absorbed by a budgeted, backed-off retry with zero wrong answers),
# then a second pass shims one replica 50x slower and hedging must keep
# the burst's p99 far below the injected delay. Plus the in-process
# seeded chaos differential and the already-expired-deadline semantics,
# all under the race detector.
overload-smoke:
	go test -race -run 'TestDaemonOverloadShedding' ./cmd/parbox-site
	go test -race -run 'TestChaosDifferentialSeeded|TestExecTimeoutAlreadyExpired' .

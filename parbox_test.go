package parbox

import (
	"context"
	"strings"
	"testing"

	"repro/internal/fixtures"
)

func deployPortfolio(t *testing.T) (*System, *Node) {
	t.Helper()
	forest, orig, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(forest, Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"})
	if err != nil {
		t.Fatal(err)
	}
	return sys, orig
}

func TestQuickstartFlow(t *testing.T) {
	doc, err := ParseXMLString(`<a><b/><c>hi</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	forest := NewForest(doc)
	if _, err := forest.Split(doc.Children[0]); err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(forest, Assignment{0: "S0", 1: "S1"})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`//b && //c[text() = "hi"]`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sys.Evaluate(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("quickstart query should be true")
	}
}

func TestEvaluateWithAllAlgorithms(t *testing.T) {
	sys, orig := deployPortfolio(t)
	ctx := context.Background()
	for _, src := range []string{
		`//stock[code = "YHOO"]`,
		`//stock[code = "MSFT"]`,
		`//broker && //market`,
	} {
		q := MustQuery(src)
		want, err := EvaluateLocal(orig, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range Algorithms() {
			rep, err := sys.EvaluateWith(ctx, algo, q)
			if err != nil {
				t.Errorf("%s(%q): %v", algo, src, err)
				continue
			}
			if rep.Answer != want {
				t.Errorf("%s(%q) = %v, want %v", algo, src, rep.Answer, want)
			}
		}
	}
}

func TestSystemViewLifecycle(t *testing.T) {
	sys, _ := deployPortfolio(t)
	ctx := context.Background()
	q := MustQuery(`//stock[code = "GOOG" && sell = "376"]`)
	view, err := sys.Materialize(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if view.Answer() {
		t.Fatal("initially false")
	}
	// F3 is Bache's NASDAQ market: market(name, stock(code,buy,sell), ...)
	// The GOOG sell node is child 1 (stock), child 2 (sell).
	if _, err := view.Update(ctx, 3, []UpdateOp{{Op: OpSetText, Path: []int{1, 2}, Text: "376"}}); err != nil {
		t.Fatal(err)
	}
	if !view.Answer() {
		t.Error("view did not flip after the price update")
	}
}

func TestMetricsSurface(t *testing.T) {
	sys, _ := deployPortfolio(t)
	sys.ResetMetrics()
	if _, err := sys.Evaluate(context.Background(), MustQuery(`//stock`)); err != nil {
		t.Fatal(err)
	}
	if sys.TotalBytes() == 0 {
		t.Error("no traffic recorded")
	}
	if !strings.Contains(sys.MetricsTable(), "S2") {
		t.Error("metrics table missing S2")
	}
	if sys.Coordinator() != "S0" {
		t.Errorf("coordinator = %s, want S0", sys.Coordinator())
	}
	if sys.SourceTree().Count() != 4 {
		t.Errorf("source tree count = %d", sys.SourceTree().Count())
	}
}

func TestParseQueryErrors(t *testing.T) {
	if _, err := ParseQuery(`a &&`); err == nil {
		t.Error("bad query accepted")
	}
	if err := ValidateQuery(`a &&`); err == nil {
		t.Error("ValidateQuery accepted a bad query")
	}
	if err := ValidateQuery(`//a`); err != nil {
		t.Errorf("ValidateQuery rejected a good query: %v", err)
	}
	if got := MustQuery(`//a && //b`).QListSize(); got < 5 {
		t.Errorf("QListSize = %d", got)
	}
}

func TestDeployErrors(t *testing.T) {
	doc := NewElement("r", "")
	forest := NewForest(doc)
	if _, err := Deploy(forest, Assignment{}); err == nil {
		t.Error("missing assignment must fail")
	}
}

func TestEvaluateBatch(t *testing.T) {
	sys, orig := deployPortfolio(t)
	ctx := context.Background()
	srcs := []string{
		`//stock[code = "YHOO"]`,
		`//stock[code = "MSFT"]`,
		`//market[name = "NYSE"]`,
	}
	queries := make([]*Query, len(srcs))
	for i, s := range srcs {
		queries[i] = MustQuery(s)
	}
	batch, err := sys.EvaluateBatch(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := EvaluateLocal(orig, q)
		if err != nil {
			t.Fatal(err)
		}
		if batch.Answers[i] != want {
			t.Errorf("batch[%d] = %v, want %v", i, batch.Answers[i], want)
		}
	}
	if batch.Visits["S1"] != 1 || batch.Visits["S2"] != 1 {
		t.Errorf("batch visits = %v", batch.Visits)
	}
}

func TestQueryOptimized(t *testing.T) {
	q := MustQuery(`. && (a || .)`)
	o := q.Optimized()
	if o.QListSize() > q.QListSize() {
		t.Errorf("Optimized grew: %d → %d", q.QListSize(), o.QListSize())
	}
	sys, orig := deployPortfolio(t)
	ctx := context.Background()
	for _, qq := range []*Query{MustQuery(`//stock[code = "YHOO"] && .`), MustQuery(`!(!( //market ))`)} {
		want, err := EvaluateLocal(orig, qq)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys.Evaluate(ctx, qq.Optimized())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("optimized %q = %v, want %v", qq, got, want)
		}
	}
}

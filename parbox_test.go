package parbox

import (
	"context"
	"strings"
	"testing"

	"repro/internal/fixtures"
)

func deployPortfolio(t testing.TB) (*System, *Node) {
	t.Helper()
	forest, orig, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(forest, Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"})
	if err != nil {
		t.Fatal(err)
	}
	return sys, orig
}

func TestQuickstartFlow(t *testing.T) {
	doc, err := ParseXMLString(`<a><b/><c>hi</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	forest := NewForest(doc)
	if _, err := forest.Split(doc.Children[0]); err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(forest, Assignment{0: "S0", 1: "S1"})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Prepare(`//b && //c[text() = "hi"]`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer {
		t.Error("quickstart query should be true")
	}
	if res.Mode != ModeBoolean || res.Algorithm != AlgoParBoX {
		t.Errorf("default Exec ran %v/%v", res.Mode, res.Algorithm)
	}
	if res.Boolean == nil || res.Boolean.Answer != res.Answer {
		t.Error("Result.Boolean not filled")
	}
}

func TestExecAllAlgorithms(t *testing.T) {
	sys, orig := deployPortfolio(t)
	ctx := context.Background()
	for _, src := range []string{
		`//stock[code = "YHOO"]`,
		`//stock[code = "MSFT"]`,
		`//broker && //market`,
	} {
		q := MustPrepare(src)
		want, err := EvaluateLocal(orig, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range Algorithms() {
			res, err := sys.Exec(ctx, q, WithAlgorithm(algo))
			if err != nil {
				t.Errorf("%s(%q): %v", algo, src, err)
				continue
			}
			if res.Answer != want {
				t.Errorf("%s(%q) = %v, want %v", algo, src, res.Answer, want)
			}
			if res.Boolean == nil {
				t.Errorf("%s(%q): no boolean report", algo, src)
			}
		}
	}
}

func TestExecSelectAndCountModes(t *testing.T) {
	sys, _ := deployPortfolio(t)
	ctx := context.Background()
	q := MustPrepare(`//stock`)

	sel, err := sys.Exec(ctx, q, WithMode(ModeSelect))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Selection == nil || sel.Matched == 0 || int64(sel.Selection.Count) != sel.Matched {
		t.Errorf("select result inconsistent: %+v", sel)
	}

	cnt, err := sys.Exec(ctx, q, WithMode(ModeCount))
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Counting == nil || cnt.Matched != sel.Matched {
		t.Errorf("count = %d, select found %d", cnt.Matched, sel.Matched)
	}
	if len(cnt.Visits) == 0 {
		t.Error("count mode reported no visits")
	}
	// Counting ships integers, not paths; it can never cost more.
	if cnt.Bytes > sel.Bytes {
		t.Errorf("count moved %d bytes > select's %d", cnt.Bytes, sel.Bytes)
	}

	// A Boolean query must be rejected by the selection modes.
	boolean := MustPrepare(`//a && //b`)
	if _, err := sys.Exec(ctx, boolean, WithMode(ModeSelect)); err == nil {
		t.Error("boolean query accepted in select mode")
	}
	// Selection modes run only under ParBoX.
	if _, err := sys.Exec(ctx, q, WithMode(ModeCount), WithAlgorithm(AlgoLazy)); err == nil {
		t.Error("count mode accepted a non-ParBoX algorithm")
	}
}

func TestExecBatch(t *testing.T) {
	sys, orig := deployPortfolio(t)
	ctx := context.Background()
	srcs := []string{
		`//stock[code = "YHOO"]`,
		`//stock[code = "MSFT"]`,
		`//market[name = "NYSE"]`,
	}
	queries := make([]*Prepared, len(srcs))
	for i, s := range srcs {
		queries[i] = MustPrepare(s)
	}
	res, err := sys.Exec(ctx, queries[0], WithBatch(queries[1:]...))
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch == nil || len(res.Answers) != len(queries) {
		t.Fatalf("batch result inconsistent: %+v", res)
	}
	for i, q := range queries {
		want, err := EvaluateLocal(orig, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Answers[i] != want {
			t.Errorf("batch[%d] = %v, want %v", i, res.Answers[i], want)
		}
	}
	if res.Answer != res.Answers[0] {
		t.Error("Result.Answer should echo the primary query")
	}
	if res.Visits["S1"] != 1 || res.Visits["S2"] != 1 {
		t.Errorf("batch visits = %v", res.Visits)
	}
	// A batch of one is still a batch: Result.Batch and Answers filled.
	solo, err := sys.Exec(ctx, queries[0], WithBatch())
	if err != nil {
		t.Fatal(err)
	}
	if solo.Batch == nil || len(solo.Answers) != 1 || solo.Answers[0] != res.Answers[0] {
		t.Errorf("solo batch = %+v", solo)
	}
	// Batches are a ParBoX-round feature.
	if _, err := sys.Exec(ctx, queries[0], WithBatch(queries[1]), WithAlgorithm(AlgoFullDist)); err == nil {
		t.Error("batch accepted a non-ParBoX algorithm")
	}
	if _, err := sys.Exec(ctx, queries[0], WithBatch(queries[1]), WithMode(ModeCount)); err == nil {
		t.Error("batch accepted a non-boolean mode")
	}
}

func TestExecMaterializeMode(t *testing.T) {
	sys, _ := deployPortfolio(t)
	ctx := context.Background()
	q := MustPrepare(`//stock[code = "GOOG" && sell = "376"]`)
	res, err := sys.Exec(ctx, q, WithMode(ModeMaterialize))
	if err != nil {
		t.Fatal(err)
	}
	view := res.View
	if view == nil {
		t.Fatal("no view returned")
	}
	// Materialization talks to every remote site; the unified accounting
	// must reflect that like any other mode.
	if res.Bytes == 0 || res.Visits["S1"] == 0 || res.Visits["S2"] == 0 {
		t.Errorf("materialize accounting empty: bytes=%d visits=%v", res.Bytes, res.Visits)
	}
	if view.Answer() || res.Answer {
		t.Fatal("initially false")
	}
	// F3 is Bache's NASDAQ market: market(name, stock(code,buy,sell), ...)
	// The GOOG sell node is child 1 (stock), child 2 (sell).
	if _, err := view.Update(ctx, 3, []UpdateOp{{Op: OpSetText, Path: []int{1, 2}, Text: "376"}}); err != nil {
		t.Fatal(err)
	}
	if !view.Answer() {
		t.Error("view did not flip after the price update")
	}
}

func TestExecInputErrors(t *testing.T) {
	sys, _ := deployPortfolio(t)
	ctx := context.Background()
	if _, err := sys.Exec(ctx, nil); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := sys.Exec(ctx, MustPrepare(`//a`), WithAlgorithm(Algorithm(99))); err == nil {
		t.Error("invalid algorithm accepted")
	}
	if _, err := sys.Exec(ctx, MustPrepare(`//a`), WithMode(Mode(99))); err == nil {
		t.Error("invalid mode accepted")
	}
	if _, err := sys.Exec(ctx, MustPrepare(`//a`), WithBatch(nil)); err == nil {
		t.Error("nil batch entry accepted")
	}
}

// TestLegacyWrappers pins the deprecated surface: each of the six legacy
// entry points must keep working as a delegation to Exec.
func TestLegacyWrappers(t *testing.T) {
	sys, orig := deployPortfolio(t)
	ctx := context.Background()
	q := MustQuery(`//stock[code = "YHOO"]`)
	want, err := EvaluateLocal(orig, q)
	if err != nil {
		t.Fatal(err)
	}

	ans, err := sys.Evaluate(ctx, q)
	if err != nil || ans != want {
		t.Errorf("Evaluate = %v, %v; want %v", ans, err, want)
	}
	rep, err := sys.EvaluateWith(ctx, AlgoFullDist, q)
	if err != nil || rep.Answer != want || rep.Algorithm != AlgoFullDist {
		t.Errorf("EvaluateWith = %+v, %v", rep, err)
	}
	sel, err := sys.Select(ctx, `//stock`)
	if err != nil || sel.Count == 0 {
		t.Errorf("Select = %+v, %v", sel, err)
	}
	cnt, err := sys.Count(ctx, `//stock`)
	if err != nil || cnt.Count != int64(sel.Count) {
		t.Errorf("Count = %+v, %v", cnt, err)
	}
	batch, err := sys.EvaluateBatch(ctx, []*Query{q, MustQuery(`//market`)})
	if err != nil || len(batch.Answers) != 2 || batch.Answers[0] != want {
		t.Errorf("EvaluateBatch = %+v, %v", batch, err)
	}
	empty, err := sys.EvaluateBatch(ctx, nil)
	if err != nil || len(empty.Answers) != 0 {
		t.Errorf("empty batch = %+v, %v; want empty result", empty, err)
	}
	single, err := sys.EvaluateBatch(ctx, []*Query{q})
	if err != nil || len(single.Answers) != 1 || single.Answers[0] != want {
		t.Errorf("single-query batch = %+v, %v", single, err)
	}
	view, err := sys.Materialize(ctx, q)
	if err != nil || view.Answer() != want {
		t.Errorf("Materialize answer = %v, %v", view, err)
	}
}

func TestMetricsSurface(t *testing.T) {
	sys, _ := deployPortfolio(t)
	sys.ResetMetrics()
	if _, err := sys.Exec(context.Background(), MustPrepare(`//stock`)); err != nil {
		t.Fatal(err)
	}
	if sys.TotalBytes() == 0 {
		t.Error("no traffic recorded")
	}
	if !strings.Contains(sys.MetricsTable(), "S2") {
		t.Error("metrics table missing S2")
	}
	if sys.Coordinator() != "S0" {
		t.Errorf("coordinator = %s, want S0", sys.Coordinator())
	}
	if sys.SourceTree().Count() != 4 {
		t.Errorf("source tree count = %d", sys.SourceTree().Count())
	}
}

func TestPrepareErrors(t *testing.T) {
	if _, err := Prepare(`a &&`); err == nil {
		t.Error("bad query accepted")
	}
	if err := ValidateQuery(`a &&`); err == nil {
		t.Error("ValidateQuery accepted a bad query")
	}
	if err := ValidateQuery(`//a`); err != nil {
		t.Errorf("ValidateQuery rejected a good query: %v", err)
	}
	if got := MustPrepare(`//a && //b`).QListSize(); got < 5 {
		t.Errorf("QListSize = %d", got)
	}
}

func TestAlgorithmParsing(t *testing.T) {
	if len(Algorithms()) != 6 {
		t.Fatalf("Algorithms() = %v", Algorithms())
	}
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("nosuch"); err == nil || !strings.Contains(err.Error(), "fulldist") {
		t.Errorf("unknown-algorithm error should list the valid set, got %v", err)
	}
}

func TestDeployErrors(t *testing.T) {
	doc := NewElement("r", "")
	forest := NewForest(doc)
	if _, err := Deploy(forest, Assignment{}); err == nil {
		t.Error("missing assignment must fail")
	}
}

// TestPreparedCachesCompiledForms pins the tentpole guarantee: repeated
// executions of one Prepared query reuse the same compiled artifacts —
// zero recompilation after the first use.
func TestPreparedCachesCompiledForms(t *testing.T) {
	q := MustPrepare(`//stock/code`)
	sp1, err := q.selectProgram()
	if err != nil {
		t.Fatal(err)
	}
	sp2, _ := q.selectProgram()
	if sp1 != sp2 {
		t.Error("selectProgram recompiled on second use")
	}
	if q.Optimized() != q.Optimized() {
		t.Error("Optimized recomputed on second use")
	}

	sys, _ := deployPortfolio(t)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := sys.Exec(ctx, q, WithMode(ModeSelect)); err != nil {
			t.Fatal(err)
		}
	}
	sp3, _ := q.selectProgram()
	if sp3 != sp1 {
		t.Error("Exec recompiled the cached select automaton")
	}
	// Compiled forms are built on demand only: a query used exclusively
	// for selection never builds the Boolean program.
	selOnly := MustPrepare(`//stock`)
	if _, err := sys.Exec(ctx, selOnly, WithMode(ModeSelect)); err != nil {
		t.Fatal(err)
	}
	if selOnly.prog != nil {
		t.Error("select-only use compiled the unused boolean program")
	}
}

func TestQueryOptimized(t *testing.T) {
	q := MustPrepare(`. && (a || .)`)
	o := q.Optimized()
	if o.QListSize() > q.QListSize() {
		t.Errorf("Optimized grew: %d → %d", q.QListSize(), o.QListSize())
	}
	sys, orig := deployPortfolio(t)
	ctx := context.Background()
	for _, qq := range []*Prepared{MustPrepare(`//stock[code = "YHOO"] && .`), MustPrepare(`!(!( //market ))`)} {
		want, err := EvaluateLocal(orig, qq)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Exec(ctx, qq.Optimized())
		if err != nil {
			t.Fatal(err)
		}
		if res.Answer != want {
			t.Errorf("optimized %q = %v, want %v", qq, res.Answer, want)
		}
	}
}

// Package fixtures builds the paper's running examples: the stock
// portfolio of Fig. 1(b) and its fragmentation into F0–F3 of Fig. 2, with
// the site assignment of the source tree (F0→S0, F1→S1, F2,F3→S2). Tests,
// benchmarks and examples all share these builders.
package fixtures

import (
	"fmt"

	"repro/internal/frag"
	"repro/internal/xmltree"
)

// Stock builds one stock element with code, buy and sell children.
func Stock(code, buy, sell string) *xmltree.Node {
	return xmltree.NewElement("stock", "",
		xmltree.NewElement("code", code),
		xmltree.NewElement("buy", buy),
		xmltree.NewElement("sell", sell))
}

// Portfolio builds the document of Fig. 1(b): a portfolio with two brokers
// trading in (overlapping) markets.
func Portfolio() *xmltree.Node {
	return xmltree.NewElement("portofolio", "",
		xmltree.NewElement("broker", "",
			xmltree.NewElement("name", "Merill Lynch"),
			xmltree.NewElement("market", "",
				xmltree.NewElement("name", "NASDAQ"),
				Stock("GOOG", "370", "372"),
				Stock("AAPL", "71", "65"))),
		xmltree.NewElement("broker", "",
			xmltree.NewElement("name", "Bache"),
			xmltree.NewElement("market", "",
				xmltree.NewElement("name", "NYSE"),
				Stock("IBM", "80", "78")),
			xmltree.NewElement("market", "",
				xmltree.NewElement("name", "NASDAQ"),
				Stock("GOOG", "374", "373"),
				Stock("YHOO", "33", "35"))))
}

// Fig2Forest fragments a Portfolio into the four fragments of Fig. 2(a):
// F0 holds the root, Bache's subtree and virtual nodes for F1 and F3; F1 is
// Merill Lynch's market with a virtual node for F2; F2 is a stock subtree
// nested inside F1; F3 is Bache's NASDAQ market. It returns the forest and
// a clone of the unfragmented document.
func Fig2Forest() (*frag.Forest, *xmltree.Node, error) {
	doc := Portfolio()
	orig := doc.Clone()
	f := frag.NewForest(doc)

	merill := doc.Children[0]          // broker Merill Lynch
	merillMarket := merill.Children[1] // its NASDAQ market
	if _, err := f.Split(merillMarket); err != nil {
		return nil, nil, fmt.Errorf("split F1: %w", err)
	}
	googStock := merillMarket.FindAll("stock")[0]
	if _, err := f.Split(googStock); err != nil {
		return nil, nil, fmt.Errorf("split F2: %w", err)
	}
	bache := doc.Children[1]
	bacheNasdaq := bache.Children[2] // Bache's NASDAQ market
	if _, err := f.Split(bacheNasdaq); err != nil {
		return nil, nil, fmt.Errorf("split F3: %w", err)
	}
	return f, orig, nil
}

// Fig2SourceTree builds the source tree of Fig. 2(b): S0 holds F0, S1
// holds F1, and S2 (the NASDAQ site) holds both F2 and F3.
func Fig2SourceTree(f *frag.Forest) (*frag.SourceTree, error) {
	return frag.BuildSourceTree(f, frag.Assignment{
		0: "S0", 1: "S1", 2: "S2", 3: "S2",
	})
}

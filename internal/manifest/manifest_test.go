package manifest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/frag"
)

const sample = `
# a comment
site S0 local
site S1 127.0.0.1:7071

frag 0 -1 S0 f0.xml
frag 1 0 S1 f1.xml
`

func TestParse(t *testing.T) {
	m, err := Parse(strings.NewReader(sample), "/tmp/x")
	if err != nil {
		t.Fatal(err)
	}
	if m.Dir != "/tmp/x" {
		t.Errorf("Dir = %q", m.Dir)
	}
	if m.Sites["S0"] != LocalAddr || m.Sites["S1"] != "127.0.0.1:7071" {
		t.Errorf("Sites = %v", m.Sites)
	}
	if len(m.Fragments) != 2 {
		t.Fatalf("%d fragments", len(m.Fragments))
	}
	if m.Fragments[0].ID != 0 || m.Fragments[0].Parent != frag.NoParent {
		t.Errorf("fragment 0 = %+v", m.Fragments[0])
	}
	if m.Fragments[1].Site != "S1" || m.Fragments[1].File != "f1.xml" {
		t.Errorf("fragment 1 = %+v", m.Fragments[1])
	}
	root, err := m.RootID()
	if err != nil || root != 0 {
		t.Errorf("RootID = %d, %v", root, err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                  // no fragments
		"bogus line here",                   // unknown directive
		"site S0",                           // short site
		"frag 0 -1 S0",                      // short frag
		"frag x -1 S0 f.xml",                // bad id
		"frag 0 y S0 f.xml",                 // bad parent
		"site S0 local\nfrag 0 -1 SX f.xml", // undeclared site
		"site S0 local\nfrag 0 -1 S0 a.xml\nfrag 1 -1 S0 b.xml", // two roots
		"site S0 local\nfrag 0 0 S0 a.xml",                      // no root
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src), "."); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	m, err := Parse(strings.NewReader(sample), ".")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := m.Write(&b); err != nil {
		t.Fatal(err)
	}
	m2, err := Parse(strings.NewReader(b.String()), ".")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, b.String())
	}
	if len(m2.Fragments) != len(m.Fragments) || len(m2.Sites) != len(m.Sites) {
		t.Error("round trip lost entries")
	}
}

func TestLoadFragmentsAndSourceTree(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("f0.xml", `<root><a/><parbox.fragment id="1"/></root>`)
	write("f1.xml", `<sub><b>x</b></sub>`)
	write("manifest.txt", sample)
	m, err := ParseFile(filepath.Join(dir, "manifest.txt"))
	if err != nil {
		t.Fatal(err)
	}

	// Site-filtered load.
	frags, sizes, err := m.LoadFragments("S1")
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || frags[1] == nil {
		t.Fatalf("LoadFragments(S1) = %v", frags)
	}
	if sizes[1] != 2 {
		t.Errorf("size of f1 = %d, want 2", sizes[1])
	}

	// Full load + source tree.
	all, sizes, err := m.LoadFragments("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("LoadFragments(all) = %d", len(all))
	}
	if got := all[0].Root.VirtualNodes(); len(got) != 1 || got[0].Frag != 1 {
		t.Errorf("virtual nodes of f0 = %v", got)
	}
	st, err := m.SourceTree(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if st.Root() != 0 || st.Count() != 2 {
		t.Errorf("source tree root=%d count=%d", st.Root(), st.Count())
	}
	e1, _ := st.Entry(1)
	if e1.Site != "S1" || e1.Depth != 1 || e1.Size != 2 {
		t.Errorf("entry 1 = %+v", e1)
	}
}

func TestLoadFragmentsMissingFile(t *testing.T) {
	m, err := Parse(strings.NewReader(sample), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.LoadFragments("S0"); err == nil {
		t.Error("missing fragment file must fail")
	}
}

func TestSourceTreeFromEntriesErrors(t *testing.T) {
	if _, err := frag.SourceTreeFromEntries(nil); err == nil {
		t.Error("empty entries must fail")
	}
	if _, err := frag.SourceTreeFromEntries([]frag.Entry{
		{Frag: 0, Parent: frag.NoParent, Site: "A"},
		{Frag: 0, Parent: frag.NoParent, Site: "A"},
	}); err == nil {
		t.Error("duplicate fragment must fail")
	}
	if _, err := frag.SourceTreeFromEntries([]frag.Entry{
		{Frag: 0, Parent: frag.NoParent, Site: ""},
	}); err == nil {
		t.Error("empty site must fail")
	}
}

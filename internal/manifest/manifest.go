// Package manifest defines the on-disk description of a fragmented,
// distributed document that the CLI tools share: which fragments exist,
// how they nest, which site stores each, where each site listens, and
// which XML file holds each fragment's subtree.
//
// Format (line-oriented, '#' comments):
//
//	site  S0  local
//	site  S1  127.0.0.1:7071
//	frag  0   -1  S0  fragments/f0.xml
//	frag  1    0  S1  fragments/f1.xml
//
// A site address of "local" means the process reading the manifest serves
// that site in-process (the coordinator's own site).
package manifest

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/frag"
	"repro/internal/xmltree"
)

// LocalAddr marks a site served in-process.
const LocalAddr = "local"

// FragmentEntry is one frag line.
type FragmentEntry struct {
	ID     xmltree.FragmentID
	Parent xmltree.FragmentID // frag.NoParent for the root
	Site   frag.SiteID
	// File is the fragment's XML file, relative to the manifest location.
	File string
}

// Manifest is a parsed manifest.
type Manifest struct {
	// Dir is the directory the manifest was read from; fragment files
	// resolve relative to it.
	Dir string
	// Sites maps site names to addresses ("local" or host:port).
	Sites map[frag.SiteID]string
	// Fragments in ascending ID order.
	Fragments []FragmentEntry
}

// ErrBadManifest is wrapped by parse failures.
var ErrBadManifest = errors.New("manifest: malformed manifest")

// Parse reads a manifest. dir is recorded for file resolution.
func Parse(r io.Reader, dir string) (*Manifest, error) {
	m := &Manifest{Dir: dir, Sites: make(map[frag.SiteID]string)}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "site":
			if len(fields) != 3 {
				return nil, fmt.Errorf("%w: line %d: site needs name and address", ErrBadManifest, lineNo)
			}
			m.Sites[frag.SiteID(fields[1])] = fields[2]
		case "frag":
			if len(fields) != 5 {
				return nil, fmt.Errorf("%w: line %d: frag needs id, parent, site, file", ErrBadManifest, lineNo)
			}
			id, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad fragment id %q", ErrBadManifest, lineNo, fields[1])
			}
			parent, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad parent id %q", ErrBadManifest, lineNo, fields[2])
			}
			m.Fragments = append(m.Fragments, FragmentEntry{
				ID:     xmltree.FragmentID(id),
				Parent: xmltree.FragmentID(parent),
				Site:   frag.SiteID(fields[3]),
				File:   fields[4],
			})
		default:
			return nil, fmt.Errorf("%w: line %d: unknown directive %q", ErrBadManifest, lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(m.Fragments, func(i, j int) bool { return m.Fragments[i].ID < m.Fragments[j].ID })
	return m, m.validate()
}

func (m *Manifest) validate() error {
	if len(m.Fragments) == 0 {
		return fmt.Errorf("%w: no fragments", ErrBadManifest)
	}
	roots := 0
	for _, f := range m.Fragments {
		if f.Parent == frag.NoParent {
			roots++
		}
		if _, ok := m.Sites[f.Site]; !ok {
			return fmt.Errorf("%w: fragment %d references undeclared site %s", ErrBadManifest, f.ID, f.Site)
		}
	}
	if roots != 1 {
		return fmt.Errorf("%w: %d root fragments, want exactly 1", ErrBadManifest, roots)
	}
	return nil
}

// ParseFile reads a manifest from disk.
func ParseFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f, filepath.Dir(path))
}

// Write renders the manifest.
func (m *Manifest) Write(w io.Writer) error {
	var sites []frag.SiteID
	for s := range m.Sites {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	for _, s := range sites {
		if _, err := fmt.Fprintf(w, "site %s %s\n", s, m.Sites[s]); err != nil {
			return err
		}
	}
	for _, f := range m.Fragments {
		if _, err := fmt.Fprintf(w, "frag %d %d %s %s\n", f.ID, f.Parent, f.Site, f.File); err != nil {
			return err
		}
	}
	return nil
}

// RootID returns the root fragment's ID.
func (m *Manifest) RootID() (xmltree.FragmentID, error) {
	for _, f := range m.Fragments {
		if f.Parent == frag.NoParent {
			return f.ID, nil
		}
	}
	return 0, fmt.Errorf("%w: no root fragment", ErrBadManifest)
}

// SourceTree derives the source tree from the manifest, loading each
// fragment file only to count nodes when sizes are needed; to avoid
// reading every file on every site, sizes come from the fragment files of
// the fragments this process loads and are zero elsewhere (the algorithms
// only use sizes for the Hybrid tipping point, which the coordinator can
// refresh via LoadAll).
func (m *Manifest) SourceTree(sizes map[xmltree.FragmentID]int) (*frag.SourceTree, error) {
	entries := make([]frag.Entry, 0, len(m.Fragments))
	for _, f := range m.Fragments {
		entries = append(entries, frag.Entry{
			Frag:   f.ID,
			Parent: f.Parent,
			Site:   f.Site,
			Size:   sizes[f.ID],
		})
	}
	return frag.SourceTreeFromEntries(entries)
}

// LoadFragments reads the XML files of the manifest's fragments stored at
// the given site ("" loads every fragment) and returns them with node
// counts.
func (m *Manifest) LoadFragments(site frag.SiteID) (map[xmltree.FragmentID]*frag.Fragment, map[xmltree.FragmentID]int, error) {
	frags := make(map[xmltree.FragmentID]*frag.Fragment)
	sizes := make(map[xmltree.FragmentID]int)
	for _, fe := range m.Fragments {
		if site != "" && fe.Site != site {
			continue
		}
		path := fe.File
		if !filepath.IsAbs(path) {
			path = filepath.Join(m.Dir, path)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("manifest: fragment %d: %w", fe.ID, err)
		}
		root, err := xmltree.ParseXML(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("manifest: fragment %d (%s): %w", fe.ID, path, err)
		}
		frags[fe.ID] = &frag.Fragment{ID: fe.ID, Parent: fe.Parent, Root: root}
		sizes[fe.ID] = root.Size()
	}
	return frags, sizes, nil
}

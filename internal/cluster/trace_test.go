package cluster

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func tracedPair(t *testing.T) (*Tracer, *TracingTransport, *Cluster) {
	t.Helper()
	c := New(DefaultCostModel())
	c.AddSite("A")
	b := c.AddSite("B")
	b.Handle("echo", echoHandler)
	b.Handle("boom", func(context.Context, *Site, Request) (Response, error) {
		return Response{}, errors.New("kaput")
	})
	tracer := NewTracer()
	return tracer, &TracingTransport{Inner: c, Tracer: tracer}, c
}

func TestTracerRecordsRemoteCallsOnly(t *testing.T) {
	tracer, tt, _ := tracedPair(t)
	ctx := context.Background()
	if _, _, err := tt.Call(ctx, "A", "B", Request{Kind: "echo", Payload: []byte("xy")}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tt.Call(ctx, "B", "B", Request{Kind: "echo", Payload: []byte("local")}); err != nil {
		t.Fatal(err)
	}
	events := tracer.Events()
	if len(events) != 1 {
		t.Fatalf("%d events, want 1 (local calls unlogged)", len(events))
	}
	e := events[0]
	if e.From != "A" || e.To != "B" || e.Kind != "echo" || e.ReqBytes != 2 || e.RespBytes != 2 || e.Steps != 2 {
		t.Errorf("event = %+v", e)
	}
	if e.Seq != 1 || e.At.IsZero() {
		t.Errorf("sequence/timestamp not set: %+v", e)
	}
	if s := e.String(); !strings.Contains(s, "A→B") {
		t.Errorf("event rendering: %q", s)
	}
}

func TestTracerRecordsErrors(t *testing.T) {
	tracer, tt, _ := tracedPair(t)
	if _, _, err := tt.Call(context.Background(), "A", "B", Request{Kind: "boom"}); err == nil {
		t.Fatal("expected handler error")
	}
	events := tracer.Events()
	if len(events) != 1 || events[0].Err == "" {
		t.Errorf("error not traced: %+v", events)
	}
	if s := tracer.String(); !strings.Contains(s, "ERR:") {
		t.Errorf("error missing from rendering: %q", s)
	}
	if got := tracer.KindCounts()["boom"]; got != 1 {
		t.Errorf("KindCounts[boom] = %d", got)
	}
}

func TestTracerConcurrentSequencing(t *testing.T) {
	tracer, tt, _ := tracedPair(t)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tt.Call(context.Background(), "A", "B", Request{Kind: "echo"})
		}()
	}
	wg.Wait()
	events := tracer.Events()
	if len(events) != 50 {
		t.Fatalf("%d events", len(events))
	}
	seen := make(map[int]bool)
	for _, e := range events {
		if seen[e.Seq] {
			t.Fatalf("duplicate sequence number %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestTracingTransportSiteDelegation(t *testing.T) {
	_, tt, c := tracedPair(t)
	if s, ok := tt.Site("A"); !ok || s.ID() != "A" {
		t.Error("Site delegation failed")
	}
	if _, ok := tt.Site("nope"); ok {
		t.Error("unknown site reported present")
	}
	// A TracingTransport over a non-lookup transport reports absence.
	nested := &TracingTransport{Inner: &FaultyTransport{Inner: c}, Tracer: NewTracer()}
	if s, ok := nested.Site("A"); !ok || s.ID() != "A" {
		t.Error("nested delegation through FaultyTransport failed")
	}
}

package cluster

import (
	"errors"
	"testing"

	"repro/internal/frag"
	"repro/internal/xmltree"
)

// memStore is a FragmentStore stub recording the journal, for exercising
// the site-side residency machinery without disk.
type memStore struct {
	frags    map[xmltree.FragmentID]*frag.Fragment
	versions map[xmltree.FragmentID]uint64
	triplets int
	puts     int
	loads    int
	failPut  error
}

func newMemStore() *memStore {
	return &memStore{
		frags:    make(map[xmltree.FragmentID]*frag.Fragment),
		versions: make(map[xmltree.FragmentID]uint64),
	}
}

func (m *memStore) PutFragment(f *frag.Fragment, version uint64) error {
	if m.failPut != nil {
		return m.failPut
	}
	m.puts++
	m.frags[f.ID] = &frag.Fragment{ID: f.ID, Parent: f.Parent, Root: f.Root.Clone()}
	m.versions[f.ID] = version
	return nil
}

func (m *memStore) DeleteFragment(id xmltree.FragmentID, version uint64) error {
	delete(m.frags, id)
	m.versions[id] = version
	return nil
}

func (m *memStore) PutTriplet(xmltree.FragmentID, uint64, uint64, []byte) error {
	m.triplets++
	return nil
}

func (m *memStore) LoadFragment(id xmltree.FragmentID) (*frag.Fragment, uint64, bool, error) {
	m.loads++
	f, ok := m.frags[id]
	if !ok {
		return nil, 0, false, nil
	}
	return &frag.Fragment{ID: f.ID, Parent: f.Parent, Root: f.Root.Clone()}, m.versions[id], true, nil
}

func leaf(id xmltree.FragmentID, label string) *frag.Fragment {
	return &frag.Fragment{ID: id, Parent: 0, Root: xmltree.NewElement(label, "")}
}

func TestSiteJournalsMutations(t *testing.T) {
	site := NewSite("S")
	ms := newMemStore()
	site.AttachStore(ms, 0)

	f1 := leaf(1, "a")
	site.AddFragment(f1)
	if ms.versions[1] != 1 {
		t.Fatalf("journaled version = %d, want 1", ms.versions[1])
	}
	if v := site.BumpFragment(f1); v != 2 || ms.versions[1] != 2 {
		t.Fatalf("bump: site=%d store=%d, want 2", v, ms.versions[1])
	}
	site.RemoveFragment(1)
	if _, ok := ms.frags[1]; ok {
		t.Fatal("removal not journaled")
	}
	if ms.versions[1] != 3 {
		t.Fatalf("dead counter = %d, want 3", ms.versions[1])
	}
	site.PersistTriplet(1, 3, 42, []byte{1})
	if ms.triplets != 1 {
		t.Fatalf("triplet journal count = %d", ms.triplets)
	}
}

func TestSiteLazyLoadAndEviction(t *testing.T) {
	site := NewSite("S")
	ms := newMemStore()
	site.AttachStore(ms, 2)

	for id := xmltree.FragmentID(1); id <= 4; id++ {
		site.AddFragment(leaf(id, "f"))
	}
	if n := site.ResidentFragments(); n != 2 {
		t.Fatalf("resident = %d, want 2", n)
	}
	// Every fragment is still reachable; evicted ones reload from the
	// store at their exact version, without a bump.
	for id := xmltree.FragmentID(1); id <= 4; id++ {
		f, ok := site.Fragment(id)
		if !ok || f.ID != id {
			t.Fatalf("Fragment(%d) = %v, %v", id, f, ok)
		}
		if v := site.FragmentVersion(id); v != 1 {
			t.Fatalf("version after reload = %d, want 1", v)
		}
	}
	if ms.loads == 0 {
		t.Fatal("no lazy loads happened")
	}
	if n := site.ResidentFragments(); n != 2 {
		t.Fatalf("resident after reloads = %d, want 2", n)
	}
	// LRU: touching 3 then 4 leaves exactly those resident.
	site.Fragment(3)
	site.Fragment(4)
	ids := site.FragmentIDs()
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 4 {
		t.Fatalf("resident set = %v, want [3 4]", ids)
	}
	// A removed fragment stays gone even though its counter lives on.
	site.RemoveFragment(2)
	if _, ok := site.Fragment(2); ok {
		t.Fatal("removed fragment reloaded")
	}
	// Bumping via the handler's pointer re-installs the mutated fragment
	// even after an eviction raced it out of the resident table — the
	// mutation is journaled, never lost.
	held, ok := site.Fragment(1)
	if !ok {
		t.Fatal("fragment 1 unreachable")
	}
	site.Fragment(3)
	site.Fragment(4) // LRU-evict 1 again while the handler holds it
	held.Root.Text = "mutated"
	v := site.BumpFragment(held)
	if err := site.StoreErr(); err != nil {
		t.Fatalf("bump after eviction errored: %v", err)
	}
	if ms.versions[1] != v || ms.frags[1].Root.Text != "mutated" {
		t.Fatalf("mutation not journaled: store version=%d text=%q", ms.versions[1], ms.frags[1].Root.Text)
	}
	if got, ok := site.Fragment(1); !ok || got.Root.Text != "mutated" {
		t.Fatal("mutated fragment not re-installed as authoritative")
	}
}

func TestSiteStoreErrSticky(t *testing.T) {
	site := NewSite("S")
	ms := newMemStore()
	boom := errors.New("disk full")
	ms.failPut = boom
	site.AttachStore(ms, 0)
	site.AddFragment(leaf(1, "a"))
	if !errors.Is(site.StoreErr(), boom) {
		t.Fatalf("StoreErr = %v, want %v", site.StoreErr(), boom)
	}
	// The site keeps serving from memory despite the failing journal.
	if _, ok := site.Fragment(1); !ok {
		t.Fatal("fragment lost after journal failure")
	}
}

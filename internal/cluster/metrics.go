package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/frag"
	"repro/internal/obs"
)

// SiteMetrics aggregates one site's activity during a run.
type SiteMetrics struct {
	// Visits counts requests this site handled for other sites — the
	// paper's "number of times each site is visited".
	Visits int64
	// MessagesIn/Out and BytesIn/Out count remote traffic touching the
	// site (local from==to calls are free).
	MessagesIn, MessagesOut int64
	BytesIn, BytesOut       int64
	// Steps is the node×subquery computation performed by handlers at this
	// site (local calls included — local work is still work).
	Steps int64
	// Wall is the summed measured handler time at this site.
	Wall time.Duration
	// Errors counts failed handler dispatches.
	Errors int64
	// TripletCacheHits/Misses count, over the site's evalQual handling,
	// fragments answered from the versioned triplet cache versus fragments
	// that required a bottomUp pass (local calls included — a cache hit is
	// a hit regardless of who asked).
	TripletCacheHits, TripletCacheMisses int64
	// ServiceEWMANanos is an exponentially-weighted moving average of the
	// per-call service time observed at this site (the larger of measured
	// handler wall time and modeled end-to-end time, so it is meaningful
	// over both the simulated in-process transport and real TCP). The
	// serving tier seeds its replica-routing score from it.
	ServiceEWMANanos float64
	// ServiceHist is the full log-bucketed distribution of the same
	// per-call service-time samples the EWMA smooths: one sample per
	// remote call handled by this site, so its count equals MessagesIn.
	// p50/p95/p99 come from here (ServiceHist.Quantile); the EWMA
	// survives as a cheap seed for code that wants one number.
	ServiceHist obs.HistSnapshot
	// Sheds counts requests the site's admission control declined
	// (StatusOverloaded); over TCP the client transport records the sheds
	// it observes, so the counter is meaningful on both ends.
	Sheds int64
	// DeadlineExpired counts requests whose wire-propagated deadline
	// expired at the site (work aborted or never started).
	DeadlineExpired int64
}

// Metrics is the cluster-wide accounting; safe for concurrent use.
type Metrics struct {
	mu    sync.Mutex
	sites map[frag.SiteID]*SiteMetrics

	messages   int64
	bytesTotal int64
}

// NewMetrics returns empty accounting.
func NewMetrics() *Metrics {
	return &Metrics{sites: make(map[frag.SiteID]*SiteMetrics)}
}

func (m *Metrics) site(id frag.SiteID) *SiteMetrics {
	s, ok := m.sites[id]
	if !ok {
		s = &SiteMetrics{}
		m.sites[id] = s
	}
	return s
}

func (m *Metrics) record(from, to frag.SiteID, req Request, resp Response, cost CallCost, remote bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	callee := m.site(to)
	callee.Steps += resp.Steps
	callee.Wall += cost.Wall
	callee.TripletCacheHits += resp.CacheHits
	callee.TripletCacheMisses += resp.CacheMisses
	if !remote {
		return
	}
	sample := float64(cost.Wall)
	if t := float64(cost.Total()); t > sample {
		sample = t
	}
	if callee.ServiceEWMANanos == 0 {
		callee.ServiceEWMANanos = sample
	} else {
		const alpha = 0.3
		callee.ServiceEWMANanos = (1-alpha)*callee.ServiceEWMANanos + alpha*sample
	}
	callee.ServiceHist.Observe(int64(sample))
	caller := m.site(from)
	callee.Visits++
	callee.MessagesIn++
	callee.BytesIn += int64(len(req.Payload))
	callee.MessagesOut++
	callee.BytesOut += int64(len(resp.Payload))
	caller.MessagesOut++
	caller.BytesOut += int64(len(req.Payload))
	caller.MessagesIn++
	caller.BytesIn += int64(len(resp.Payload))
	m.messages += 2 // request + response
	m.bytesTotal += int64(len(req.Payload) + len(resp.Payload))
}

func (m *Metrics) recordError(to frag.SiteID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.site(to).Errors++
}

func (m *Metrics) recordShed(to frag.SiteID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.site(to).Sheds++
}

func (m *Metrics) recordExpired(to frag.SiteID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.site(to).DeadlineExpired++
}

// TotalSheds sums admission sheds over all sites.
func (m *Metrics) TotalSheds() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, s := range m.sites {
		n += s.Sheds
	}
	return n
}

// TotalDeadlineExpired sums remote deadline expiries over all sites.
func (m *Metrics) TotalDeadlineExpired() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, s := range m.sites {
		n += s.DeadlineExpired
	}
	return n
}

// Reset clears all counters; the harness resets between experiment
// iterations.
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sites = make(map[frag.SiteID]*SiteMetrics)
	m.messages = 0
	m.bytesTotal = 0
}

// Snapshot returns a copy of the per-site metrics.
func (m *Metrics) Snapshot() map[frag.SiteID]SiteMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[frag.SiteID]SiteMetrics, len(m.sites))
	for id, s := range m.sites {
		out[id] = *s
	}
	return out
}

// Site returns a copy of one site's metrics.
func (m *Metrics) Site(id frag.SiteID) SiteMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.sites[id]; ok {
		return *s
	}
	return SiteMetrics{}
}

// TotalMessages returns the number of remote messages exchanged (requests
// and responses each count once).
func (m *Metrics) TotalMessages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.messages
}

// TotalBytes returns the total remote payload bytes — the paper's network
// traffic measure.
func (m *Metrics) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesTotal
}

// TotalSteps sums computation over all sites — the paper's total
// computation measure.
func (m *Metrics) TotalSteps() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, s := range m.sites {
		n += s.Steps
	}
	return n
}

// TotalTripletCacheHits sums triplet-cache hits over all sites.
func (m *Metrics) TotalTripletCacheHits() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, s := range m.sites {
		n += s.TripletCacheHits
	}
	return n
}

// TotalTripletCacheMisses sums triplet-cache misses over all sites.
func (m *Metrics) TotalTripletCacheMisses() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, s := range m.sites {
		n += s.TripletCacheMisses
	}
	return n
}

// String renders a per-site table, for the experiment harness.
func (m *Metrics) String() string {
	snap := m.Snapshot()
	ids := make([]frag.SiteID, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %10s %12s %12s %12s\n", "site", "visits", "msgsIn", "bytesIn", "bytesOut", "steps")
	for _, id := range ids {
		s := snap[id]
		fmt.Fprintf(&b, "%-8s %8d %10d %12d %12d %12d\n",
			id, s.Visits, s.MessagesIn, s.BytesIn, s.BytesOut, s.Steps)
	}
	fmt.Fprintf(&b, "total messages %d, total bytes %d, total steps %d, triplet cache %d hit / %d miss\n",
		m.TotalMessages(), m.TotalBytes(), m.TotalSteps(),
		m.TotalTripletCacheHits(), m.TotalTripletCacheMisses())
	return b.String()
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/frag"
)

// ErrInjected marks failures produced by FaultyTransport.
var ErrInjected = errors.New("cluster: injected fault")

// FaultyTransport wraps a Transport and fails calls deterministically —
// the failure-injection harness for testing that the algorithms surface
// errors instead of hanging or answering wrongly.
type FaultyTransport struct {
	Inner Transport

	mu    sync.Mutex
	calls int

	// FailEveryN makes every Nth remote call fail (0 disables).
	FailEveryN int
	// FailSites makes every call to a listed site fail.
	FailSites map[frag.SiteID]bool
	// FailKinds makes every request of a listed kind fail.
	FailKinds map[string]bool
	// CorruptKinds truncates the response payload of listed kinds,
	// exercising the decoders' hostile-input paths end to end.
	CorruptKinds map[string]bool
}

// Call implements Transport.
func (f *FaultyTransport) Call(ctx context.Context, from, to frag.SiteID, req Request) (Response, CallCost, error) {
	if from != to {
		f.mu.Lock()
		f.calls++
		n := f.calls
		f.mu.Unlock()
		if f.FailEveryN > 0 && n%f.FailEveryN == 0 {
			return Response{}, CallCost{}, fmt.Errorf("%w: call %d (%s→%s %s)", ErrInjected, n, from, to, req.Kind)
		}
		if f.FailSites[to] {
			return Response{}, CallCost{}, fmt.Errorf("%w: site %s is down", ErrInjected, to)
		}
		if f.FailKinds[req.Kind] {
			return Response{}, CallCost{}, fmt.Errorf("%w: kind %s blocked", ErrInjected, req.Kind)
		}
	}
	resp, cost, err := f.Inner.Call(ctx, from, to, req)
	if err == nil && from != to && f.CorruptKinds[req.Kind] && len(resp.Payload) > 0 {
		resp.Payload = resp.Payload[:len(resp.Payload)/2]
	}
	return resp, cost, err
}

// Site delegates local site lookup to the wrapped transport, so the
// coordinator can still read its own fragments (faults only affect
// remote calls).
func (f *FaultyTransport) Site(id frag.SiteID) (*Site, bool) {
	if s, ok := f.Inner.(interface {
		Site(frag.SiteID) (*Site, bool)
	}); ok {
		return s.Site(id)
	}
	return nil, false
}

// Calls reports how many remote calls passed through so far.
func (f *FaultyTransport) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

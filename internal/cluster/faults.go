package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/frag"
)

// ErrInjected marks failures produced by FaultyTransport.
var ErrInjected = errors.New("cluster: injected fault")

// FaultyTransport wraps a Transport and fails calls deterministically —
// the failure-injection harness for testing that the algorithms surface
// errors instead of hanging or answering wrongly.
type FaultyTransport struct {
	Inner Transport

	mu    sync.Mutex
	calls int

	// FailEveryN makes every Nth remote call fail (0 disables).
	FailEveryN int
	// FailSites makes every call to a listed site fail.
	FailSites map[frag.SiteID]bool
	// FailKinds makes every request of a listed kind fail.
	FailKinds map[string]bool
	// CorruptKinds truncates the response payload of listed kinds,
	// exercising the decoders' hostile-input paths end to end.
	CorruptKinds map[string]bool

	// Site-level modes, toggled at runtime by SiteDown/SlowSite/FlakySite/
	// OverloadSite and cleared by ReviveSite — the outage-scripting surface
	// failover tests and benches drive while queries are in flight. Each
	// randomized fault owns its PRNG, seeded by the caller's rand.Source,
	// so a chaos schedule replays identically however sites interleave.
	downSites     map[frag.SiteID]bool
	slowSites     map[frag.SiteID]*slowFault
	flakySites    map[frag.SiteID]*flakyFault
	overloadSites map[frag.SiteID]time.Duration
}

// slowFault delays calls by d, jittered down to d/2 when rng is set.
type slowFault struct {
	d   time.Duration
	rng *rand.Rand
}

// flakyFault fails calls with probability p from its own PRNG.
type flakyFault struct {
	p   float64
	rng *rand.Rand
}

// SiteDown marks a site dead: every remote call to it fails with
// ErrInjected until ReviveSite.
func (f *FaultyTransport) SiteDown(id frag.SiteID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.downSites == nil {
		f.downSites = make(map[frag.SiteID]bool)
	}
	f.downSites[id] = true
}

// SlowSite delays every remote call to the site (the call still
// succeeds), modelling an overloaded or distant replica. With a nil src
// the delay is exactly d every call; with a src it is drawn uniformly
// from [d/2, d) by a PRNG owned by this fault, so the same seed replays
// the same latency schedule.
func (f *FaultyTransport) SlowSite(id frag.SiteID, d time.Duration, src rand.Source) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.slowSites == nil {
		f.slowSites = make(map[frag.SiteID]*slowFault)
	}
	sf := &slowFault{d: d}
	if src != nil {
		sf.rng = rand.New(src)
	}
	f.slowSites[id] = sf
}

// FlakySite fails each remote call to the site independently with
// probability p, drawn from a PRNG owned by this fault and seeded by
// src (nil falls back to a fixed-seed source), so chaos schedules
// replay deterministically per site.
func (f *FaultyTransport) FlakySite(id frag.SiteID, p float64, src rand.Source) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.flakySites == nil {
		f.flakySites = make(map[frag.SiteID]*flakyFault)
	}
	if src == nil {
		src = rand.NewSource(1)
	}
	f.flakySites[id] = &flakyFault{p: p, rng: rand.New(src)}
}

// OverloadSite sheds every remote call to the site with a typed
// OverloadError carrying retryAfter as its hint — the injected twin of
// real admission-control shedding, for driving the retry/backoff paths
// without saturating a site for real.
func (f *FaultyTransport) OverloadSite(id frag.SiteID, retryAfter time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.overloadSites == nil {
		f.overloadSites = make(map[frag.SiteID]time.Duration)
	}
	f.overloadSites[id] = retryAfter
}

// ReviveSite clears every site-level mode for the site.
func (f *FaultyTransport) ReviveSite(id frag.SiteID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.downSites, id)
	delete(f.slowSites, id)
	delete(f.flakySites, id)
	delete(f.overloadSites, id)
}

// Call implements Transport.
func (f *FaultyTransport) Call(ctx context.Context, from, to frag.SiteID, req Request) (Response, CallCost, error) {
	if from != to {
		f.mu.Lock()
		f.calls++
		n := f.calls
		down := f.downSites[to]
		var delay time.Duration
		if sf := f.slowSites[to]; sf != nil {
			delay = sf.d
			if sf.rng != nil && sf.d > 0 {
				delay = sf.d/2 + time.Duration(sf.rng.Int63n(int64(sf.d/2)+1))
			}
		}
		var flakyHit bool
		if ff := f.flakySites[to]; ff != nil {
			flakyHit = ff.rng.Float64() < ff.p
		}
		retryAfter, overloaded := f.overloadSites[to]
		f.mu.Unlock()
		if f.FailEveryN > 0 && n%f.FailEveryN == 0 {
			return Response{}, CallCost{}, fmt.Errorf("%w: call %d (%s→%s %s)", ErrInjected, n, from, to, req.Kind)
		}
		if down {
			return Response{}, CallCost{}, fmt.Errorf("%w: site %s is down", ErrInjected, to)
		}
		if overloaded {
			return Response{}, CallCost{}, &OverloadError{Site: to, RetryAfter: retryAfter}
		}
		if flakyHit {
			return Response{}, CallCost{}, fmt.Errorf("%w: site %s flaked (%s)", ErrInjected, to, req.Kind)
		}
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return Response{}, CallCost{}, ctx.Err()
			case <-t.C:
			}
		}
		if f.FailSites[to] {
			return Response{}, CallCost{}, fmt.Errorf("%w: site %s is down", ErrInjected, to)
		}
		if f.FailKinds[req.Kind] {
			return Response{}, CallCost{}, fmt.Errorf("%w: kind %s blocked", ErrInjected, req.Kind)
		}
	}
	resp, cost, err := f.Inner.Call(ctx, from, to, req)
	if err == nil && from != to && f.CorruptKinds[req.Kind] && len(resp.Payload) > 0 {
		resp.Payload = resp.Payload[:len(resp.Payload)/2]
	}
	return resp, cost, err
}

// Site delegates local site lookup to the wrapped transport, so the
// coordinator can still read its own fragments (faults only affect
// remote calls).
func (f *FaultyTransport) Site(id frag.SiteID) (*Site, bool) {
	if s, ok := f.Inner.(interface {
		Site(frag.SiteID) (*Site, bool)
	}); ok {
		return s.Site(id)
	}
	return nil, false
}

// Calls reports how many remote calls passed through so far.
func (f *FaultyTransport) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/frag"
)

// ErrInjected marks failures produced by FaultyTransport.
var ErrInjected = errors.New("cluster: injected fault")

// FaultyTransport wraps a Transport and fails calls deterministically —
// the failure-injection harness for testing that the algorithms surface
// errors instead of hanging or answering wrongly.
type FaultyTransport struct {
	Inner Transport

	mu    sync.Mutex
	calls int

	// FailEveryN makes every Nth remote call fail (0 disables).
	FailEveryN int
	// FailSites makes every call to a listed site fail.
	FailSites map[frag.SiteID]bool
	// FailKinds makes every request of a listed kind fail.
	FailKinds map[string]bool
	// CorruptKinds truncates the response payload of listed kinds,
	// exercising the decoders' hostile-input paths end to end.
	CorruptKinds map[string]bool

	// Site-level modes, toggled at runtime by SiteDown/SlowSite/FlakySite
	// and cleared by ReviveSite — the outage-scripting surface failover
	// tests and benches drive while queries are in flight.
	downSites  map[frag.SiteID]bool
	slowSites  map[frag.SiteID]time.Duration
	flakySites map[frag.SiteID]float64
	rng        *rand.Rand
}

// SiteDown marks a site dead: every remote call to it fails with
// ErrInjected until ReviveSite.
func (f *FaultyTransport) SiteDown(id frag.SiteID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.downSites == nil {
		f.downSites = make(map[frag.SiteID]bool)
	}
	f.downSites[id] = true
}

// SlowSite delays every remote call to the site by d (the call still
// succeeds), modelling an overloaded or distant replica.
func (f *FaultyTransport) SlowSite(id frag.SiteID, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.slowSites == nil {
		f.slowSites = make(map[frag.SiteID]time.Duration)
	}
	f.slowSites[id] = d
}

// FlakySite fails each remote call to the site independently with
// probability p, drawn from a deterministic PRNG (see Seed).
func (f *FaultyTransport) FlakySite(id frag.SiteID, p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.flakySites == nil {
		f.flakySites = make(map[frag.SiteID]float64)
	}
	f.flakySites[id] = p
}

// ReviveSite clears every site-level mode for the site.
func (f *FaultyTransport) ReviveSite(id frag.SiteID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.downSites, id)
	delete(f.slowSites, id)
	delete(f.flakySites, id)
}

// Seed fixes the PRNG behind FlakySite so outage scripts replay
// identically.
func (f *FaultyTransport) Seed(seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng = rand.New(rand.NewSource(seed))
}

// Call implements Transport.
func (f *FaultyTransport) Call(ctx context.Context, from, to frag.SiteID, req Request) (Response, CallCost, error) {
	if from != to {
		f.mu.Lock()
		f.calls++
		n := f.calls
		down := f.downSites[to]
		delay := f.slowSites[to]
		flakyP, flaky := f.flakySites[to]
		var flakyHit bool
		if flaky {
			if f.rng == nil {
				f.rng = rand.New(rand.NewSource(1))
			}
			flakyHit = f.rng.Float64() < flakyP
		}
		f.mu.Unlock()
		if f.FailEveryN > 0 && n%f.FailEveryN == 0 {
			return Response{}, CallCost{}, fmt.Errorf("%w: call %d (%s→%s %s)", ErrInjected, n, from, to, req.Kind)
		}
		if down {
			return Response{}, CallCost{}, fmt.Errorf("%w: site %s is down", ErrInjected, to)
		}
		if flakyHit {
			return Response{}, CallCost{}, fmt.Errorf("%w: site %s flaked (%s)", ErrInjected, to, req.Kind)
		}
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return Response{}, CallCost{}, ctx.Err()
			case <-t.C:
			}
		}
		if f.FailSites[to] {
			return Response{}, CallCost{}, fmt.Errorf("%w: site %s is down", ErrInjected, to)
		}
		if f.FailKinds[req.Kind] {
			return Response{}, CallCost{}, fmt.Errorf("%w: kind %s blocked", ErrInjected, req.Kind)
		}
	}
	resp, cost, err := f.Inner.Call(ctx, from, to, req)
	if err == nil && from != to && f.CorruptKinds[req.Kind] && len(resp.Payload) > 0 {
		resp.Payload = resp.Payload[:len(resp.Payload)/2]
	}
	return resp, cost, err
}

// Site delegates local site lookup to the wrapped transport, so the
// coordinator can still read its own fragments (faults only affect
// remote calls).
func (f *FaultyTransport) Site(id frag.SiteID) (*Site, bool) {
	if s, ok := f.Inner.(interface {
		Site(frag.SiteID) (*Site, bool)
	}); ok {
		return s.Site(id)
	}
	return nil, false
}

// Calls reports how many remote calls passed through so far.
func (f *FaultyTransport) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

package cluster

// Overload protection: typed shed/expiry errors, the retry-after hint
// codec they travel the wire with, and the per-site admission controller.
//
// The contract with the retry layers above: an OverloadError is
// retryable — the site is alive, just saturated, and carries a hint for
// when to come back; a DeadlineError is final — it reports the caller's
// own budget expiring at the site, and errors.Is(err,
// context.DeadlineExceeded) holds so every existing "deadline is final"
// policy applies unchanged.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/frag"
)

// ErrOverloaded matches (errors.Is) every shed response: the site (or
// its connection) was past its admission high-water mark and declined
// the request instead of queueing it unboundedly. Retry after the
// OverloadError's hint.
var ErrOverloaded = errors.New("cluster: site overloaded")

// OverloadError is a typed shed: the site declined the request at
// admission. RetryAfter is the server's hint for when it expects
// capacity; retry layers must wait at least that long.
type OverloadError struct {
	Site       frag.SiteID
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("cluster: site %s overloaded (retry after %v)", e.Site, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) hold for every shed.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// RetryAfterHint extracts a shed's retry-after hint (0 when err carries
// none) — the backoff layers raise their jittered delay to at least it.
func RetryAfterHint(err error) time.Duration {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter
	}
	return 0
}

// DeadlineError reports that the request's wire-propagated deadline
// expired at the serving site: the server aborted (or never started) the
// evaluation instead of silently finishing dead work. It unwraps to
// context.DeadlineExceeded, so callers' deadline handling applies.
type DeadlineError struct {
	Site frag.SiteID
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("cluster: deadline expired at site %s", e.Site)
}

// Unwrap ties the remote expiry to context.DeadlineExceeded.
func (e *DeadlineError) Unwrap() error { return context.DeadlineExceeded }

// --- retry-after wire codec ------------------------------------------------

// maxRetryAfter bounds accepted retry-after hints (10s): a corrupt or
// hostile hint must not park a client forever.
const maxRetryAfter = 10 * time.Second

// appendRetryAfter encodes a shed response body: the retry-after hint in
// microseconds. Values are clamped to [0, maxRetryAfter] so that decode
// ∘ encode is the identity on every body this build emits.
func appendRetryAfter(dst []byte, d time.Duration) []byte {
	if d < 0 {
		d = 0
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return binary.AppendUvarint(dst, uint64(d/time.Microsecond))
}

// decodeRetryAfter decodes a shed response body, clamping absurd values
// to maxRetryAfter. A torn body decodes to a zero hint rather than an
// error: the shed itself is already the signal, the hint is advisory.
func decodeRetryAfter(body []byte) time.Duration {
	v, n := binary.Uvarint(body)
	if n <= 0 {
		return 0
	}
	d := time.Duration(v) * time.Microsecond
	if d < 0 || d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// --- per-site admission control --------------------------------------------

// AdmissionLimits bounds how much work a site accepts concurrently; work
// past a watermark is shed with an OverloadError instead of queued.
type AdmissionLimits struct {
	// MaxInflight bounds concurrently dispatched requests (queue depth);
	// 0 = unbounded.
	MaxInflight int
	// MaxCost bounds the summed estimated cost of in-flight requests, in
	// the units of the estimator (node×subquery steps for the ParBoX
	// handlers); 0 = unbounded. Requests with no estimate weigh 1.
	MaxCost int64
	// RetryAfterBase scales the shed hint: the hint is the base times the
	// number of in-flight requests (deeper queue → later retry). Zero
	// means DefaultRetryAfterBase.
	RetryAfterBase time.Duration
}

// DefaultRetryAfterBase is the per-queued-request retry-after scale.
const DefaultRetryAfterBase = 500 * time.Microsecond

// admission is a site's admission controller. A nil *admission admits
// everything (the default — admission is opt-in per deployment).
type admission struct {
	mu       sync.Mutex
	lim      AdmissionLimits
	estimate func(req Request) int64
	inflight int
	cost     int64
	sheds    int64
}

// admit accepts the request (returning a release func) or sheds it with
// an OverloadError carrying the retry-after hint.
func (a *admission) admit(site frag.SiteID, req Request) (func(), error) {
	if a == nil {
		return func() {}, nil
	}
	var c int64 = 1
	if a.estimate != nil {
		if est := a.estimate(req); est > 1 {
			c = est
		}
	}
	a.mu.Lock()
	over := (a.lim.MaxInflight > 0 && a.inflight >= a.lim.MaxInflight) ||
		// Cost watermark: always admit into an empty site (a single huge
		// request must not deadlock against its own weight).
		(a.lim.MaxCost > 0 && a.inflight > 0 && a.cost+c > a.lim.MaxCost)
	if over {
		base := a.lim.RetryAfterBase
		if base <= 0 {
			base = DefaultRetryAfterBase
		}
		hint := time.Duration(a.inflight) * base
		if hint > maxRetryAfter {
			hint = maxRetryAfter
		}
		a.sheds++
		a.mu.Unlock()
		return nil, &OverloadError{Site: site, RetryAfter: hint}
	}
	a.inflight++
	a.cost += c
	a.mu.Unlock()
	return func() {
		a.mu.Lock()
		a.inflight--
		a.cost -= c
		a.mu.Unlock()
	}, nil
}

// Sheds reports how many requests this controller declined.
func (a *admission) Sheds() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sheds
}

// SetAdmission installs (or, with zero limits, removes) the site's
// admission controller. Call during setup, before the site serves.
func (s *Site) SetAdmission(lim AdmissionLimits) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lim.MaxInflight <= 0 && lim.MaxCost <= 0 {
		s.admit = nil
		return
	}
	est := s.admitEstimate
	s.admit = &admission{lim: lim, estimate: est}
}

// SetAdmissionEstimator installs the per-request cost estimator the
// admission controller weighs requests with (core registers one that
// prices evaluation requests by the fragment sizes they touch). Safe to
// call before or after SetAdmission.
func (s *Site) SetAdmissionEstimator(est func(req Request) int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.admitEstimate = est
	if s.admit != nil {
		s.admit.mu.Lock()
		s.admit.estimate = est
		s.admit.mu.Unlock()
	}
}

// AdmissionSheds reports how many requests the site's admission
// controller has declined (0 without one).
func (s *Site) AdmissionSheds() int64 {
	s.mu.RLock()
	a := s.admit
	s.mu.RUnlock()
	return a.Sheds()
}

// admissionEnabled reports whether the site runs admission control; the
// TCP server's per-connection shedding keys off it (no admission → plain
// backpressure, today's behavior).
func (s *Site) admissionEnabled() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.admit != nil
}

// admissionExempt reports whether a request kind bypasses admission.
func (s *Site) admissionExempt(kind string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.admitExempt[kind]
}

// ExemptFromAdmission marks request kinds the admission controller must
// always accept: control-plane traffic (health probes, fragment
// migration) whose whole point is reaching a site that is busy — shedding
// a probe would make an overloaded site look dead.
func (s *Site) ExemptFromAdmission(kinds ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.admitExempt == nil {
		s.admitExempt = make(map[string]bool, len(kinds))
	}
	for _, k := range kinds {
		s.admitExempt[k] = true
	}
}

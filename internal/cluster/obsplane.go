package cluster

import (
	"context"
)

// StatsKind is the RPC kind answering a site's observability counters:
// the paper's visits/messages/bytes/steps quantities plus cache, shed,
// and latency-histogram data, encoded with obs.SiteStatsSnapshot.
// `parbox top` scrapes it over the ordinary transport, so live
// introspection needs no side channel — any peer that can query a site
// can also ask what it has been doing.
const StatsKind = "obs.stats"

// RegisterStatsHandler installs the obs.stats endpoint on a site. The
// scrape is admission-exempt (monitoring must answer precisely when
// the site is overloaded) and excluded from the counters it reports,
// so scraping does not perturb the measurement.
func RegisterStatsHandler(s *Site) {
	s.Handle(StatsKind, func(ctx context.Context, site *Site, req Request) (Response, error) {
		snap := site.stats.Snapshot()
		snap.Site = string(site.id)
		return Response{Payload: snap.Encode(nil)}, nil
	})
	s.ExemptFromAdmission(StatsKind)
}

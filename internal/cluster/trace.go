package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/frag"
)

// TraceEvent records one remote call, in completion order.
type TraceEvent struct {
	Seq       int
	From, To  frag.SiteID
	Kind      string
	ReqBytes  int
	RespBytes int
	Steps     int64
	Err       string
	At        time.Time
}

// String renders the event as one line: "S0→S1 parbox.evalQual 120B/86B".
func (e TraceEvent) String() string {
	s := fmt.Sprintf("#%d %s→%s %s %dB/%dB steps=%d", e.Seq, e.From, e.To, e.Kind, e.ReqBytes, e.RespBytes, e.Steps)
	if e.Err != "" {
		s += " ERR:" + e.Err
	}
	return s
}

// Tracer collects TraceEvents; attach with TracingTransport or
// Cluster.SetTracer. Safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent
	seq    int
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

func (t *Tracer) record(e TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	e.Seq = t.seq
	e.At = time.Now()
	t.events = append(t.events, e)
}

// Events returns a copy of the recorded events in completion order.
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// Reset clears the log.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = nil
	t.seq = 0
}

// KindCounts tallies events by request kind.
func (t *Tracer) KindCounts() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int)
	for _, e := range t.events {
		out[e.Kind]++
	}
	return out
}

// String renders the whole log, one event per line.
func (t *Tracer) String() string {
	var b strings.Builder
	for _, e := range t.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TracingTransport wraps any Transport, logging every remote call. Local
// (from == to) calls are not logged, mirroring the visit accounting.
type TracingTransport struct {
	Inner  Transport
	Tracer *Tracer
}

// Call implements Transport.
func (t *TracingTransport) Call(ctx context.Context, from, to frag.SiteID, req Request) (Response, CallCost, error) {
	resp, cost, err := t.Inner.Call(ctx, from, to, req)
	if from != to {
		e := TraceEvent{
			From: from, To: to, Kind: req.Kind,
			ReqBytes: len(req.Payload), RespBytes: len(resp.Payload),
			Steps: resp.Steps,
		}
		if err != nil {
			e.Err = err.Error()
		}
		t.Tracer.record(e)
	}
	return resp, cost, err
}

// Site delegates local site lookup to the wrapped transport.
func (t *TracingTransport) Site(id frag.SiteID) (*Site, bool) {
	if s, ok := t.Inner.(interface {
		Site(frag.SiteID) (*Site, bool)
	}); ok {
		return s.Site(id)
	}
	return nil, false
}

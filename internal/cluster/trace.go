package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/frag"
)

// TraceEvent records one remote call, in completion order.
type TraceEvent struct {
	Seq       int
	From, To  frag.SiteID
	Kind      string
	ReqBytes  int
	RespBytes int
	Steps     int64
	Err       string
	At        time.Time
}

// String renders the event as one line: "S0→S1 parbox.evalQual 120B/86B".
func (e TraceEvent) String() string {
	s := fmt.Sprintf("#%d %s→%s %s %dB/%dB steps=%d", e.Seq, e.From, e.To, e.Kind, e.ReqBytes, e.RespBytes, e.Steps)
	if e.Err != "" {
		s += " ERR:" + e.Err
	}
	return s
}

// DefaultTracerLimit bounds a Tracer's retained events unless
// SetLimit raises (or lowers) it. Generous enough for any single
// query's call log; a long-lived traced system retains the most recent
// events at constant memory instead of growing without limit.
const DefaultTracerLimit = 65536

// Tracer collects TraceEvents; attach with TracingTransport or
// Cluster.SetTracer. Safe for concurrent use. Retention is bounded:
// once limit events are held the oldest is overwritten (Seq keeps
// counting, so a trimmed log is detectable — Events()[0].Seq > 1).
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent // circular once len == limit
	start  int          // index of oldest event
	n      int          // events held
	limit  int
	seq    int
}

// NewTracer returns an empty tracer retaining DefaultTracerLimit
// events.
func NewTracer() *Tracer { return &Tracer{limit: DefaultTracerLimit} }

// SetLimit changes the retention bound (minimum 1), keeping the most
// recent events when shrinking.
func (t *Tracer) SetLimit(limit int) {
	if limit < 1 {
		limit = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	evs := t.eventsLocked()
	if len(evs) > limit {
		evs = evs[len(evs)-limit:]
	}
	t.limit = limit
	t.events = evs
	t.start = 0
	t.n = len(evs)
}

func (t *Tracer) record(e TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	e.Seq = t.seq
	e.At = time.Now()
	if t.n < t.limit {
		if len(t.events) < t.limit && t.n == len(t.events) {
			t.events = append(t.events, e)
		} else {
			t.events[(t.start+t.n)%len(t.events)] = e
		}
		t.n++
		return
	}
	t.events[t.start] = e
	t.start = (t.start + 1) % len(t.events)
}

func (t *Tracer) eventsLocked() []TraceEvent {
	out := make([]TraceEvent, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.events[(t.start+i)%len(t.events)])
	}
	return out
}

// Events returns a copy of the retained events in completion order
// (the most recent limit events when the log has wrapped).
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eventsLocked()
}

// Reset clears the log.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = nil
	t.start = 0
	t.n = 0
	t.seq = 0
}

// KindCounts tallies retained events by request kind.
func (t *Tracer) KindCounts() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int)
	for i := 0; i < t.n; i++ {
		out[t.events[(t.start+i)%len(t.events)].Kind]++
	}
	return out
}

// String renders the whole log, one event per line.
func (t *Tracer) String() string {
	var b strings.Builder
	for _, e := range t.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TracingTransport wraps any Transport, logging every remote call. Local
// (from == to) calls are not logged, mirroring the visit accounting.
type TracingTransport struct {
	Inner  Transport
	Tracer *Tracer
}

// Call implements Transport.
func (t *TracingTransport) Call(ctx context.Context, from, to frag.SiteID, req Request) (Response, CallCost, error) {
	resp, cost, err := t.Inner.Call(ctx, from, to, req)
	if from != to {
		e := TraceEvent{
			From: from, To: to, Kind: req.Kind,
			ReqBytes: len(req.Payload), RespBytes: len(resp.Payload),
			Steps: resp.Steps,
		}
		if err != nil {
			e.Err = err.Error()
		}
		t.Tracer.record(e)
	}
	return resp, cost, err
}

// Site delegates local site lookup to the wrapped transport.
func (t *TracingTransport) Site(id frag.SiteID) (*Site, bool) {
	if s, ok := t.Inner.(interface {
		Site(frag.SiteID) (*Site, bool)
	}); ok {
		return s.Site(id)
	}
	return nil, false
}

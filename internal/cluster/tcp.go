package cluster

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/frag"
	"repro/internal/obs"
)

// The legacy (v1) TCP wire format, shared by server and client:
//
//	request:  uvarint kind length, kind bytes, uvarint payload length, payload
//	response: one status byte (0 ok, 1 error), uvarint steps,
//	          uvarint cache hits, uvarint cache misses,
//	          uvarint body length, body (payload or error text)
//
// Frames are written through a bufio.Writer and flushed per message; one
// request is in flight per connection at a time. The transport speaks
// the multiplexed v2 protocol by default (see wirev2.go); v1 remains as
// the compatibility path (TCPTransport.ForceV1) and the server sniffs
// the first byte of every connection to serve both.

const (
	tcpStatusOK  byte = 0
	tcpStatusErr byte = 1
	// tcpStatusDeadline (v2 only) reports the request's wire-propagated
	// deadline expired at the site; work was aborted or never started.
	tcpStatusDeadline byte = 2
	// tcpStatusOverload (v2 only) reports admission control shed the
	// request; the body carries a uvarint retry-after hint in µs.
	tcpStatusOverload byte = 3
	// tcpStatusPush (v2 only, version ≥ 4) marks a server-initiated frame:
	// not a reply to any request, but a maintenance delta pushed to a
	// connection that subscribed with SubscribeDeltasKind. Push frames
	// carry request ID 0 — client-assigned IDs start at 1 — and the body
	// is the delta payload (views.DecodeDelta). The demultiplexer routes
	// them to the connection's push observers and never to a pending call.
	tcpStatusPush byte = 4
)

// SubscribeDeltasKind is the wire request kind that subscribes the
// issuing v2 connection to the site's maintenance deltas: the server
// acks with an empty OK response and thereafter forwards every
// Site.PushDelta payload as a tcpStatusPush frame until the connection
// closes. Handled by the server's connection loop, never dispatched to a
// site handler.
const SubscribeDeltasKind = "cluster.subscribeDeltas"

// maxFrame bounds accepted frame bodies (64 MiB) so a corrupt length prefix
// cannot trigger an absurd allocation.
const maxFrame = 64 << 20

var errFrameTooBig = errors.New("cluster: frame exceeds size limit")

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func writeBytes(w *bufio.Writer, b []byte) error {
	if err := writeUvarint(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readBytes(r *bufio.Reader) ([]byte, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, errFrameTooBig
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// readBytesReuse is readBytes into a connection-scoped scratch buffer: the
// buffer grows to the high-water mark of the connection's frames and is
// reused for every subsequent frame, so a long-lived site connection stops
// allocating per message. The returned slice aliases *scratch and is only
// valid until the next call.
func readBytesReuse(r *bufio.Reader, scratch *[]byte) ([]byte, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, errFrameTooBig
	}
	if uint64(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	b := (*scratch)[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// ServeConfig tunes a Server beyond the defaults.
type ServeConfig struct {
	// RequireV2 rejects legacy v1 peers with a clean v1-framed error
	// response ("wire protocol v2 required") instead of serving them.
	// The site daemon sets it so a version-skewed coordinator gets a
	// readable error, not interleaved-frame corruption.
	RequireV2 bool
	// DrainTimeout bounds how long Close waits for in-flight requests to
	// finish and their responses to flush before force-closing
	// connections. Zero means DefaultDrainTimeout.
	DrainTimeout time.Duration
}

// DefaultDrainTimeout is how long Server.Close waits for in-flight
// requests to drain before force-closing connections.
const DefaultDrainTimeout = 5 * time.Second

// Server exposes one site over TCP. v2 connections serve any number of
// requests concurrently (per-request handler goroutines, responses
// multiplexed by request ID); v1 connections serve sequentially.
// Multiple connections always serve concurrently.
type Server struct {
	site *Site
	ln   net.Listener
	cfg  ServeConfig

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
}

// Serve starts serving the site on addr ("host:port"; ":0" picks a free
// port) with the default configuration. It returns immediately; use Addr
// for the bound address and Close to stop.
func Serve(site *Site, addr string) (*Server, error) {
	return ServeWith(site, addr, ServeConfig{})
}

// ServeWith is Serve with an explicit configuration.
func ServeWith(site *Site, addr string, cfg ServeConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	s := &Server{site: site, ln: ln, cfg: cfg, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and shuts down gracefully: every connection
// stops reading new requests, in-flight requests run to completion and
// their responses are flushed, then the connections close. Connections
// still busy past the drain timeout are force-closed; a handler that
// remains wedged in dispatch past a second drain timeout (handlers run
// uncancelled and a force-closed socket cannot interrupt computation)
// is abandoned — Close returns rather than hang the shutdown path.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		// Kick readers out of their blocking read; writes (in-flight
		// responses) are unaffected.
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	err := s.ln.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		select {
		case <-done:
		case <-time.After(s.cfg.DrainTimeout):
		}
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveConn sniffs the connection's protocol version off its first byte
// (a v2 handshake opens with v2Magic ≥ 0x80; a v1 request opens with a
// short kind length < 0x80) and dispatches to the matching loop.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.forget(conn)
	r := bufio.NewReader(conn)
	first, err := r.Peek(1)
	if err != nil {
		conn.Close()
		return
	}
	if first[0] == v2Magic {
		s.serveV2(conn, r)
		return
	}
	if s.cfg.RequireV2 {
		s.rejectV1(conn, r)
		return
	}
	s.serveV1(conn, r)
}

// rejectV1 answers a legacy peer's every request with a v1-framed error
// — the one clean thing a v2-only server can say in v1. The connection
// is kept (v1 clients pool a connection that answered, even with an
// error) and each request on it gets the same readable message, so a
// retrying peer sees "requires wire protocol v2" consistently instead
// of alternating with EOFs from a closed socket.
func (s *Server) rejectV1(conn net.Conn, r *bufio.Reader) {
	defer conn.Close()
	w := bufio.NewWriter(conn)
	msg := fmt.Sprintf("site %s requires wire protocol v2 (this peer speaks v1)", s.site.ID())
	var scratch []byte
	for {
		if _, err := readBytesReuse(r, &scratch); err != nil { // kind
			return
		}
		if _, err := readBytesReuse(r, &scratch); err != nil { // payload
			return
		}
		if writeResponse(w, tcpStatusErr, Response{Payload: []byte(msg)}) != nil {
			return
		}
	}
}

// serveV1 is the legacy sequential loop: one request in flight per
// connection.
func (s *Server) serveV1(conn net.Conn, r *bufio.Reader) {
	defer conn.Close()
	w := bufio.NewWriter(conn)
	// Per-connection scratch buffers: request frames are consumed
	// synchronously by dispatch (handlers copy what they keep — decoded
	// programs, trees and formulas own their memory), so the same two
	// buffers serve every request on the connection.
	var kindBuf, payloadBuf []byte
	for {
		kind, err := readBytesReuse(r, &kindBuf)
		if err != nil {
			return // EOF, broken frame, or drain kick: drop the connection
		}
		payload, err := readBytesReuse(r, &payloadBuf)
		if err != nil {
			return
		}
		resp, herr := s.site.dispatch(context.Background(), Request{Kind: string(kind), Payload: payload})
		if herr != nil {
			if writeResponse(w, tcpStatusErr, Response{Payload: []byte(herr.Error())}) != nil {
				return
			}
			continue
		}
		if writeResponse(w, tcpStatusOK, resp) != nil {
			return
		}
	}
}

// serveV2 answers the handshake and then demultiplexes: the reader loop
// decodes request frames and hands each to its own handler goroutine
// (bounded per connection); a single writer goroutine serializes the
// response frames in completion order. Close's read-deadline kick stops
// the reader; in-flight handlers then finish, their responses flush,
// and only then does the connection close — the graceful drain.
func (s *Server) serveV2(conn net.Conn, r *bufio.Reader) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		conn.Close()
		return
	}
	w := bufio.NewWriter(conn)
	if hdr[1] != v2Version {
		conn.Write([]byte{v2Magic, v2Reject})
		conn.Close()
		return
	}
	if _, err := conn.Write([]byte{v2Magic, v2Version}); err != nil {
		conn.Close()
		return
	}

	respCh := make(chan []byte, 64)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		broken := false
		for buf := range respCh {
			if broken {
				continue // drain so handlers never block on a dead writer
			}
			if _, err := w.Write(buf); err != nil {
				broken = true
				conn.Close() // unblocks the reader; drain continues
				continue
			}
			if len(respCh) == 0 {
				if err := w.Flush(); err != nil {
					broken = true
					conn.Close()
				}
			}
		}
	}()

	// Delta subscription state. forward runs on the publisher's goroutine
	// (an update handler mid-PushDelta, on any connection): it blocks on
	// respCh rather than drop a delta — the writer goroutine drains the
	// channel even after a write error, so the send always completes —
	// and the closed flag (flipped before respCh closes, under pushMu)
	// makes teardown safe against a concurrent publish.
	var (
		pushMu     sync.Mutex
		pushClosed bool
		cancelSub  func()
	)
	forward := func(payload []byte) {
		pushMu.Lock()
		defer pushMu.Unlock()
		if pushClosed {
			return
		}
		respCh <- appendV2Response(nil, 0, tcpStatusPush, Response{Payload: payload})
	}

	// Per-connection handler concurrency: enough to keep every core busy
	// plus headroom for handlers blocked on waits rather than CPU (peer
	// calls of the recursive algorithms, store I/O) — hence the floor of
	// 64, matching the scheduler's lane budget, even on small hosts.
	// Acquired by the reader, so a flooding peer sees TCP backpressure.
	inflight := 4 * runtime.GOMAXPROCS(0)
	if inflight < 64 {
		inflight = 64
	}
	sem := make(chan struct{}, inflight)
	var handlers sync.WaitGroup
	for {
		id, deadlineMicros, traceID, parentSpan, kind, payload, err := readV2Request(r)
		if err != nil {
			break // EOF, torn frame, or drain kick
		}
		// Delta subscription is a connection-level affair, served by the
		// loop itself (idempotently) — never dispatched to a handler.
		if kind == SubscribeDeltasKind {
			if cancelSub == nil {
				cancelSub = s.site.SubscribeDeltas(forward)
			}
			respCh <- appendV2Response(nil, id, tcpStatusOK, Response{})
			continue
		}
		recv := time.Now()
		// Per-connection admission: when the site runs admission control,
		// a full handler semaphore sheds (status 3 + retry-after hint)
		// instead of parking the reader — bounded queueing end to end.
		// Without admission control the reader blocks as before, so a
		// flooding peer sees TCP backpressure, never errors. Exempt kinds
		// (health probes) always take the blocking path: shedding a probe
		// would make a merely-busy site look dead.
		if s.site.admissionEnabled() && !s.site.admissionExempt(kind) {
			select {
			case sem <- struct{}{}:
			default:
				hint := time.Duration(len(sem)) * DefaultRetryAfterBase
				body := appendRetryAfter(nil, hint)
				s.site.stats.Sheds.Add(1)
				respCh <- appendV2Response(nil, id, tcpStatusOverload, Response{Payload: body})
				continue
			}
		} else {
			sem <- struct{}{}
		}
		handlers.Add(1)
		go func(id, deadlineMicros, traceID, parentSpan uint64, kind string, payload []byte, recv time.Time) {
			defer handlers.Done()
			defer func() { <-sem }()
			// Derive the per-request context from the wire deadline: the
			// relative budget needs no clock sync, and dispatch checks the
			// context before touching the handler, so an already-expired
			// budget does zero evaluation work.
			ctx := context.Background()
			if deadlineMicros > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(deadlineMicros)*time.Microsecond)
				defer cancel()
			}
			// A traced request gets a fresh per-request collector: the
			// server's spans parent under the caller's wire span IDs and
			// ride back on the response frame. The gap between frame read
			// and this goroutine running is the queue-wait span.
			var col *obs.Collector
			if traceID != 0 {
				col = obs.NewCollector()
				ctx = obs.WithTrace(ctx, obs.TraceContext{TraceID: traceID, SpanID: parentSpan, Collector: col})
				col.Add(obs.Span{
					TraceID: traceID, ID: obs.NewSpanID(), Parent: parentSpan,
					Site: string(s.site.id), Name: "queue",
					Start: recv.UnixNano(), Dur: time.Since(recv).Nanoseconds(),
				})
			}
			resp, herr := s.site.dispatch(ctx, Request{Kind: kind, Payload: payload})
			if col != nil {
				resp.Spans = col.Spans()
				s.site.ring.Add(obs.TraceRecord{
					TraceID: traceID, Root: kind, Dur: time.Since(recv), At: recv, Spans: resp.Spans,
				})
			}
			var buf []byte
			switch {
			case herr == nil:
				buf = appendV2Response(nil, id, tcpStatusOK, resp)
			case errors.Is(herr, ErrOverloaded):
				body := appendRetryAfter(nil, RetryAfterHint(herr))
				buf = appendV2Response(nil, id, tcpStatusOverload, Response{Payload: body, Spans: resp.Spans})
			case errors.Is(herr, context.DeadlineExceeded):
				buf = appendV2Response(nil, id, tcpStatusDeadline, Response{Spans: resp.Spans})
			default:
				buf = appendV2Response(nil, id, tcpStatusErr, Response{Payload: []byte(herr.Error()), Spans: resp.Spans})
			}
			respCh <- buf
		}(id, deadlineMicros, traceID, parentSpan, kind, payload, recv)
	}
	// Unsubscribe before closing respCh: cancel stops future publishes
	// from finding the forwarder, and the closed flag stops ones already
	// holding a snapshot of it.
	if cancelSub != nil {
		cancelSub()
	}
	pushMu.Lock()
	pushClosed = true
	pushMu.Unlock()
	handlers.Wait()
	close(respCh)
	<-writerDone
	conn.Close()
}

func writeResponse(w *bufio.Writer, status byte, resp Response) error {
	if err := w.WriteByte(status); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(resp.Steps)); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(resp.CacheHits)); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(resp.CacheMisses)); err != nil {
		return err
	}
	if err := writeBytes(w, resp.Payload); err != nil {
		return err
	}
	return w.Flush()
}

// ErrRemote wraps handler errors reported by a remote site.
var ErrRemote = errors.New("cluster: remote error")

// TCPTransport implements Transport over real sockets, speaking the
// multiplexed v2 wire protocol by default: one connection per peer
// carries any number of concurrent requests (single writer goroutine,
// demux reader), so concurrent rounds to the same site pipeline instead
// of queueing on a per-connection lock. Site names map to addresses;
// the coordinator's own site may be registered with Local so that
// from==to calls bypass the network (free local work, as in the
// in-process cluster).
type TCPTransport struct {
	mu     sync.Mutex
	addrs  map[frag.SiteID]string
	conns  map[frag.SiteID]*tcpConn // v1 pool (ForceV1 only)
	muxes  map[frag.SiteID]*muxConn // v2 pool
	locals map[frag.SiteID]*Site

	// DialTimeout bounds connection establishment, including the v2
	// handshake (default 5s).
	DialTimeout time.Duration

	// ForceV1 pins the transport to the legacy wire protocol: one
	// request in flight per connection, the connection held exclusively
	// across the round trip. It exists for the differential tests and
	// the serialized baseline of the fan-out benchmark; leave it false.
	ForceV1 bool

	metrics *Metrics
	cost    CostModel
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// NewTCPTransport creates a transport over the given site→address map.
func NewTCPTransport(addrs map[frag.SiteID]string) *TCPTransport {
	cp := make(map[frag.SiteID]string, len(addrs))
	for k, v := range addrs {
		cp[k] = v
	}
	return &TCPTransport{
		addrs:       cp,
		conns:       make(map[frag.SiteID]*tcpConn),
		muxes:       make(map[frag.SiteID]*muxConn),
		locals:      make(map[frag.SiteID]*Site),
		DialTimeout: 5 * time.Second,
		metrics:     NewMetrics(),
	}
}

// SetAddrs replaces the site→address map. It exists for the bootstrap
// cycle of multi-site deployments: sites capture the transport at handler
// registration, before the listeners' ports are known.
func (t *TCPTransport) SetAddrs(addrs map[frag.SiteID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs = make(map[frag.SiteID]string, len(addrs))
	for k, v := range addrs {
		t.addrs[k] = v
	}
}

// Local registers an in-process site, served without sockets.
func (t *TCPTransport) Local(site *Site) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.locals[site.ID()] = site
}

// Site returns a locally registered site, satisfying the same lookup
// interface as the in-process cluster (the coordinator reads its own
// fragments through it).
func (t *TCPTransport) Site(id frag.SiteID) (*Site, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.locals[id]
	return s, ok
}

// Metrics returns the transport's accounting.
func (t *TCPTransport) Metrics() *Metrics { return t.metrics }

// Close closes all pooled connections; pending v2 calls fail.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	var first error
	for id, c := range t.conns {
		if err := c.conn.Close(); err != nil && first == nil {
			first = err
		}
		delete(t.conns, id)
	}
	muxes := make([]*muxConn, 0, len(t.muxes))
	for id, c := range t.muxes {
		muxes = append(muxes, c)
		delete(t.muxes, id)
	}
	t.mu.Unlock()
	// Outside the lock: close() fails pending calls, whose completions
	// may call back into the transport (onBroken, metrics).
	for _, c := range muxes {
		c.close()
	}
	return first
}

func (t *TCPTransport) dial(to frag.SiteID) (net.Conn, error) {
	t.mu.Lock()
	addr, ok := t.addrs[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSite, to)
	}
	conn, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s (%s): %w", to, addr, err)
	}
	return conn, nil
}

// muxFor returns the pooled v2 connection to a site, dialing and
// handshaking a fresh one on first use.
func (t *TCPTransport) muxFor(to frag.SiteID) (*muxConn, error) {
	t.mu.Lock()
	if c, ok := t.muxes[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()
	conn, err := t.dial(to)
	if err != nil {
		return nil, err
	}
	r, err := clientHandshake(conn, t.DialTimeout)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: %s: %w", to, err)
	}
	c := newMuxConn(conn, r, to, func(broken *muxConn) { t.dropMux(to, broken) })
	t.mu.Lock()
	if prev, ok := t.muxes[to]; ok {
		t.mu.Unlock()
		c.close()
		return prev, nil
	}
	t.muxes[to] = c
	t.mu.Unlock()
	return c, nil
}

func (t *TCPTransport) dropMux(to frag.SiteID, c *muxConn) {
	t.mu.Lock()
	if t.muxes[to] == c {
		delete(t.muxes, to)
	}
	t.mu.Unlock()
}

func (t *TCPTransport) connFor(to frag.SiteID) (*tcpConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()
	conn, err := t.dial(to)
	if err != nil {
		return nil, err
	}
	c := &tcpConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	t.mu.Lock()
	if prev, ok := t.conns[to]; ok {
		t.mu.Unlock()
		conn.Close()
		return prev, nil
	}
	t.conns[to] = c
	t.mu.Unlock()
	return c, nil
}

func (t *TCPTransport) drop(to frag.SiteID, c *tcpConn) {
	t.mu.Lock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	c.conn.Close()
}

// Call implements Transport synchronously. Over v2 it is a thin wrapper
// around Go — the call shares the peer connection with every other
// in-flight request. Under ForceV1 it takes the legacy exclusive-
// connection path.
func (t *TCPTransport) Call(ctx context.Context, from, to frag.SiteID, req Request) (Response, CallCost, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, CallCost{}, err
	}
	t.mu.Lock()
	local, isLocal := t.locals[to]
	forceV1 := t.ForceV1
	t.mu.Unlock()
	var cost CallCost
	cost.ReqBytes = len(req.Payload)
	if isLocal && from == to {
		start := time.Now()
		resp, err := local.dispatch(ctx, req)
		cost.Wall = time.Since(start)
		cost.Steps = resp.Steps
		if err != nil {
			if errors.Is(err, ErrOverloaded) {
				t.metrics.recordShed(to)
			} else if errors.Is(err, context.DeadlineExceeded) {
				t.metrics.recordExpired(to)
			}
			t.metrics.recordError(to)
			return Response{}, cost, err
		}
		cost.RespBytes = len(resp.Payload)
		t.metrics.record(from, to, req, resp, cost, false)
		return resp, cost, nil
	}
	if !forceV1 {
		r := <-t.goRemote(ctx, from, to, req)
		return r.Resp, r.Cost, r.Err
	}
	c, err := t.connFor(to)
	if err != nil {
		return Response{}, cost, err
	}
	start := time.Now()
	resp, err := c.roundTrip(ctx, req)
	cost.Wall = time.Since(start)
	if err != nil {
		if !errors.Is(err, ErrRemote) {
			// Transport-level failure — including a context deadline or
			// cancellation that fired mid-frame: the connection may hold
			// a half-read response, so it must never be reused.
			t.drop(to, c)
		}
		t.metrics.recordError(to)
		return Response{}, cost, err
	}
	cost.RespBytes = len(resp.Payload)
	cost.Steps = resp.Steps
	cost.Net = cost.Wall // real network: measured, not modeled
	t.metrics.record(from, to, req, resp, cost, true)
	return resp, cost, nil
}

// Go implements AsyncTransport: the request is pipelined onto the
// peer's multiplexed connection and the reply delivered on the returned
// channel. Calls to local sites (and every call under ForceV1) run Call
// in a goroutine instead. The first call to a peer may block briefly to
// dial and handshake its connection.
func (t *TCPTransport) Go(ctx context.Context, from, to frag.SiteID, req Request) <-chan Reply {
	t.mu.Lock()
	_, isLocal := t.locals[to]
	forceV1 := t.ForceV1
	t.mu.Unlock()
	if (isLocal && from == to) || forceV1 {
		ch := make(chan Reply, 1)
		go func() {
			resp, cost, err := t.Call(ctx, from, to, req)
			ch <- Reply{Resp: resp, Cost: cost, Err: err}
		}()
		return ch
	}
	if err := ctx.Err(); err != nil {
		ch := make(chan Reply, 1)
		ch <- Reply{Cost: CallCost{ReqBytes: len(req.Payload)}, Err: err}
		return ch
	}
	return t.goRemote(ctx, from, to, req)
}

// SubscribeDeltas implements DeltaSubscriber. For a local site fn is
// registered directly; for a remote one the pooled v2 connection gains a
// push observer and the server is told (idempotently, on that same
// connection) to start forwarding its deltas as push frames. The
// subscription lives and dies with the connection: a broken connection
// silently ends delivery, so resubscribe after transport errors.
func (t *TCPTransport) SubscribeDeltas(ctx context.Context, from, to frag.SiteID, fn func([]byte)) (func(), error) {
	t.mu.Lock()
	local, isLocal := t.locals[to]
	forceV1 := t.ForceV1
	t.mu.Unlock()
	if isLocal {
		return local.SubscribeDeltas(fn), nil
	}
	if forceV1 {
		return nil, errors.New("cluster: delta subscriptions require wire protocol v2")
	}
	c, err := t.muxFor(to)
	if err != nil {
		return nil, err
	}
	cancel := c.subscribePush(fn)
	// Subscribe on this exact connection — the observer is tied to it.
	done := make(chan error, 1)
	c.send(ctx, SubscribeDeltasKind, nil, 0, 0, func(_ Response, err error) { done <- err })
	if err := <-done; err != nil {
		cancel()
		return nil, err
	}
	return cancel, nil
}

// goRemote issues one v2 call: register, enqueue, and complete with
// accounting from whichever of response / context expiry / connection
// failure happens first.
func (t *TCPTransport) goRemote(ctx context.Context, from, to frag.SiteID, req Request) <-chan Reply {
	ch := make(chan Reply, 1)
	cost := CallCost{ReqBytes: len(req.Payload)}
	c, err := t.muxFor(to)
	if err != nil {
		ch <- Reply{Cost: cost, Err: err}
		return ch
	}
	// A traced call carries its trace ID and a fresh RPC span ID on the
	// wire; the server's spans come back on the response frame and merge
	// into the caller's collector under that span.
	var traceID, parentSpan uint64
	tc, traced := obs.FromContext(ctx)
	var rpcSpan obs.Span
	if traced {
		rpcSpan = obs.Span{
			TraceID: tc.TraceID, ID: obs.NewSpanID(), Parent: tc.SpanID,
			Site: string(to), Name: "rpc " + req.Kind,
		}
		traceID, parentSpan = tc.TraceID, rpcSpan.ID
	}
	start := time.Now()
	c.send(ctx, req.Kind, req.Payload, traceID, parentSpan, func(resp Response, err error) {
		cost.Wall = time.Since(start)
		if traced {
			rpcSpan.Start = start.UnixNano()
			rpcSpan.Dur = cost.Wall.Nanoseconds()
			tc.Collector.Add(rpcSpan)
			tc.Collector.Add(resp.Spans...)
		}
		if err != nil {
			// Typed overload/deadline responses count on the client side
			// too — the coordinator's transport metrics are what the
			// operator (and the smoke tests) can actually see.
			var de *DeadlineError
			if errors.Is(err, ErrOverloaded) {
				t.metrics.recordShed(to)
			} else if errors.As(err, &de) {
				t.metrics.recordExpired(to)
			}
			t.metrics.recordError(to)
			ch <- Reply{Cost: cost, Err: err}
			return
		}
		cost.RespBytes = len(resp.Payload)
		cost.Steps = resp.Steps
		cost.Net = cost.Wall // real network: measured, not modeled
		t.metrics.record(from, to, req, resp, cost, true)
		ch <- Reply{Resp: resp, Cost: cost}
	})
	return ch
}

// roundTrip is the v1 exclusive-connection exchange. The caller's
// context interrupts a blocked read or write via the socket deadline —
// both an expiring deadline and a plain cancellation — and the
// resulting error surfaces as the context's; the caller must then drop
// the connection, which may hold a half-read frame.
func (c *tcpConn) roundTrip(ctx context.Context, req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The context may have expired while this caller queued on the
	// connection mutex; fail now rather than run an unbounded exchange.
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	// Clear any stale deadline BEFORE registering the watcher: in the
	// other order, a context firing in between would have its
	// deadline-kick overwritten and the exchange would run unbounded.
	if err := c.conn.SetDeadline(time.Time{}); err != nil {
		return Response{}, err
	}
	// Interrupt the socket the moment the context fires. time.Unix(1, 0)
	// is an already-expired deadline: pending and future I/O fails
	// immediately.
	stop := context.AfterFunc(ctx, func() {
		c.conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()
	resp, err := c.exchange(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil && !errors.Is(err, ErrRemote) {
			return Response{}, ctxErr
		}
		return Response{}, err
	}
	return resp, nil
}

func (c *tcpConn) exchange(req Request) (Response, error) {
	if err := writeBytes(c.w, []byte(req.Kind)); err != nil {
		return Response{}, err
	}
	if err := writeBytes(c.w, req.Payload); err != nil {
		return Response{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Response{}, err
	}
	status, err := c.r.ReadByte()
	if err != nil {
		return Response{}, err
	}
	steps, err := readUvarint(c.r)
	if err != nil {
		return Response{}, err
	}
	hits, err := readUvarint(c.r)
	if err != nil {
		return Response{}, err
	}
	misses, err := readUvarint(c.r)
	if err != nil {
		return Response{}, err
	}
	body, err := readBytes(c.r)
	if err != nil {
		return Response{}, err
	}
	if status == tcpStatusErr {
		return Response{}, fmt.Errorf("%w: %s", ErrRemote, body)
	}
	return Response{Payload: body, Steps: int64(steps), CacheHits: int64(hits), CacheMisses: int64(misses)}, nil
}

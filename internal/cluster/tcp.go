package cluster

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/frag"
)

// The TCP wire format, shared by server and client:
//
//	request:  uvarint kind length, kind bytes, uvarint payload length, payload
//	response: one status byte (0 ok, 1 error), uvarint steps,
//	          uvarint cache hits, uvarint cache misses,
//	          uvarint body length, body (payload or error text)
//
// Frames are written through a bufio.Writer and flushed per message; one
// request is in flight per connection at a time.

const (
	tcpStatusOK  byte = 0
	tcpStatusErr byte = 1
)

// maxFrame bounds accepted frame bodies (64 MiB) so a corrupt length prefix
// cannot trigger an absurd allocation.
const maxFrame = 64 << 20

var errFrameTooBig = errors.New("cluster: frame exceeds size limit")

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func writeBytes(w *bufio.Writer, b []byte) error {
	if err := writeUvarint(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readBytes(r *bufio.Reader) ([]byte, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, errFrameTooBig
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// readBytesReuse is readBytes into a connection-scoped scratch buffer: the
// buffer grows to the high-water mark of the connection's frames and is
// reused for every subsequent frame, so a long-lived site connection stops
// allocating per message. The returned slice aliases *scratch and is only
// valid until the next call.
func readBytesReuse(r *bufio.Reader, scratch *[]byte) ([]byte, error) {
	n, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, errFrameTooBig
	}
	if uint64(cap(*scratch)) < n {
		*scratch = make([]byte, n)
	}
	b := (*scratch)[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Server exposes one site over TCP. Each accepted connection serves
// requests sequentially; multiple connections serve concurrently.
type Server struct {
	site *Site
	ln   net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
}

// Serve starts serving the site on addr ("host:port"; ":0" picks a free
// port). It returns immediately; use Addr for the bound address and Close
// to stop.
func Serve(site *Site, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	s := &Server{site: site, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes all connections and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	// Per-connection scratch buffers: request frames are consumed
	// synchronously by dispatch (handlers copy what they keep — decoded
	// programs, trees and formulas own their memory), so the same two
	// buffers serve every request on the connection.
	var kindBuf, payloadBuf []byte
	for {
		kind, err := readBytesReuse(r, &kindBuf)
		if err != nil {
			return // EOF or broken frame: drop the connection
		}
		payload, err := readBytesReuse(r, &payloadBuf)
		if err != nil {
			return
		}
		resp, herr := s.site.dispatch(context.Background(), Request{Kind: string(kind), Payload: payload})
		if herr != nil {
			if writeResponse(w, tcpStatusErr, Response{Payload: []byte(herr.Error())}) != nil {
				return
			}
			continue
		}
		if writeResponse(w, tcpStatusOK, resp) != nil {
			return
		}
	}
}

func writeResponse(w *bufio.Writer, status byte, resp Response) error {
	if err := w.WriteByte(status); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(resp.Steps)); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(resp.CacheHits)); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(resp.CacheMisses)); err != nil {
		return err
	}
	if err := writeBytes(w, resp.Payload); err != nil {
		return err
	}
	return w.Flush()
}

// ErrRemote wraps handler errors reported by a remote site.
var ErrRemote = errors.New("cluster: remote error")

// TCPTransport implements Transport over real sockets. Site names map to
// addresses; the coordinator's own site may be registered with Local so
// that from==to calls bypass the network (free local work, as in the
// in-process cluster).
type TCPTransport struct {
	mu     sync.Mutex
	addrs  map[frag.SiteID]string
	conns  map[frag.SiteID]*tcpConn
	locals map[frag.SiteID]*Site

	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration

	metrics *Metrics
	cost    CostModel
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// NewTCPTransport creates a transport over the given site→address map.
func NewTCPTransport(addrs map[frag.SiteID]string) *TCPTransport {
	cp := make(map[frag.SiteID]string, len(addrs))
	for k, v := range addrs {
		cp[k] = v
	}
	return &TCPTransport{
		addrs:       cp,
		conns:       make(map[frag.SiteID]*tcpConn),
		locals:      make(map[frag.SiteID]*Site),
		DialTimeout: 5 * time.Second,
		metrics:     NewMetrics(),
	}
}

// SetAddrs replaces the site→address map. It exists for the bootstrap
// cycle of multi-site deployments: sites capture the transport at handler
// registration, before the listeners' ports are known.
func (t *TCPTransport) SetAddrs(addrs map[frag.SiteID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.addrs = make(map[frag.SiteID]string, len(addrs))
	for k, v := range addrs {
		t.addrs[k] = v
	}
}

// Local registers an in-process site, served without sockets.
func (t *TCPTransport) Local(site *Site) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.locals[site.ID()] = site
}

// Site returns a locally registered site, satisfying the same lookup
// interface as the in-process cluster (the coordinator reads its own
// fragments through it).
func (t *TCPTransport) Site(id frag.SiteID) (*Site, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.locals[id]
	return s, ok
}

// Metrics returns the transport's accounting.
func (t *TCPTransport) Metrics() *Metrics { return t.metrics }

// Close closes all pooled connections.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for id, c := range t.conns {
		if err := c.conn.Close(); err != nil && first == nil {
			first = err
		}
		delete(t.conns, id)
	}
	return first
}

func (t *TCPTransport) connFor(to frag.SiteID) (*tcpConn, error) {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.addrs[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSite, to)
	}
	conn, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s (%s): %w", to, addr, err)
	}
	c := &tcpConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	t.mu.Lock()
	if prev, ok := t.conns[to]; ok {
		t.mu.Unlock()
		conn.Close()
		return prev, nil
	}
	t.conns[to] = c
	t.mu.Unlock()
	return c, nil
}

func (t *TCPTransport) drop(to frag.SiteID, c *tcpConn) {
	t.mu.Lock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	c.conn.Close()
}

// Call implements Transport. A deadline on ctx is applied to the socket.
func (t *TCPTransport) Call(ctx context.Context, from, to frag.SiteID, req Request) (Response, CallCost, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, CallCost{}, err
	}
	t.mu.Lock()
	local, isLocal := t.locals[to]
	t.mu.Unlock()
	var cost CallCost
	cost.ReqBytes = len(req.Payload)
	if isLocal && from == to {
		start := time.Now()
		resp, err := local.dispatch(ctx, req)
		cost.Wall = time.Since(start)
		cost.Steps = resp.Steps
		if err != nil {
			t.metrics.recordError(to)
			return Response{}, cost, err
		}
		cost.RespBytes = len(resp.Payload)
		t.metrics.record(from, to, req, resp, cost, false)
		return resp, cost, nil
	}
	c, err := t.connFor(to)
	if err != nil {
		return Response{}, cost, err
	}
	start := time.Now()
	resp, err := c.roundTrip(ctx, req)
	cost.Wall = time.Since(start)
	if err != nil {
		t.drop(to, c)
		t.metrics.recordError(to)
		return Response{}, cost, err
	}
	cost.RespBytes = len(resp.Payload)
	cost.Steps = resp.Steps
	cost.Net = cost.Wall // real network: measured, not modeled
	t.metrics.record(from, to, req, resp, cost, true)
	return resp, cost, nil
}

func (c *tcpConn) roundTrip(ctx context.Context, req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dl, ok := ctx.Deadline(); ok {
		if err := c.conn.SetDeadline(dl); err != nil {
			return Response{}, err
		}
	} else {
		if err := c.conn.SetDeadline(time.Time{}); err != nil {
			return Response{}, err
		}
	}
	if err := writeBytes(c.w, []byte(req.Kind)); err != nil {
		return Response{}, err
	}
	if err := writeBytes(c.w, req.Payload); err != nil {
		return Response{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Response{}, err
	}
	status, err := c.r.ReadByte()
	if err != nil {
		return Response{}, err
	}
	steps, err := readUvarint(c.r)
	if err != nil {
		return Response{}, err
	}
	hits, err := readUvarint(c.r)
	if err != nil {
		return Response{}, err
	}
	misses, err := readUvarint(c.r)
	if err != nil {
		return Response{}, err
	}
	body, err := readBytes(c.r)
	if err != nil {
		return Response{}, err
	}
	if status == tcpStatusErr {
		return Response{}, fmt.Errorf("%w: %s", ErrRemote, body)
	}
	return Response{Payload: body, Steps: int64(steps), CacheHits: int64(hits), CacheMisses: int64(misses)}, nil
}

package cluster

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/frag"
	"repro/internal/xmltree"
)

func echoHandler(_ context.Context, _ *Site, req Request) (Response, error) {
	return Response{Payload: req.Payload, Steps: int64(len(req.Payload))}, nil
}

func TestCostModelMath(t *testing.T) {
	m := CostModel{Latency: time.Millisecond, BytesPerSecond: 1e6, StepsPerSecond: 1e6, MessageOverhead: 0}
	if got := m.TransferTime(1e6); got != time.Second {
		t.Errorf("TransferTime(1MB) = %v, want 1s", got)
	}
	if got := m.ComputeTime(2e6); got != 2*time.Second {
		t.Errorf("ComputeTime(2M) = %v, want 2s", got)
	}
	if got := m.RoundTrip(0, 0); got != 2*time.Millisecond {
		t.Errorf("RoundTrip(0,0) = %v, want 2ms", got)
	}
	var zero CostModel
	if zero.TransferTime(100) != 0 || zero.ComputeTime(100) != 0 {
		t.Error("zero cost model must charge nothing")
	}
}

func TestCallAndMetrics(t *testing.T) {
	c := New(DefaultCostModel())
	a := c.AddSite("A")
	b := c.AddSite("B")
	b.Handle("echo", echoHandler)
	a.Handle("echo", echoHandler)

	ctx := context.Background()
	resp, cost, err := c.Call(ctx, "A", "B", Request{Kind: "echo", Payload: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "hello" {
		t.Errorf("echo returned %q", resp.Payload)
	}
	if cost.Net <= 0 {
		t.Error("remote call must have network cost")
	}
	if cost.Steps != 5 {
		t.Errorf("steps = %d, want 5", cost.Steps)
	}
	// Local call: no visit, no traffic, but steps counted.
	_, costLocal, err := c.Call(ctx, "A", "A", Request{Kind: "echo", Payload: []byte("xy")})
	if err != nil {
		t.Fatal(err)
	}
	if costLocal.Net != 0 {
		t.Errorf("local call has network cost %v", costLocal.Net)
	}
	m := c.Metrics()
	if got := m.Site("B").Visits; got != 1 {
		t.Errorf("B visits = %d, want 1", got)
	}
	if got := m.Site("A").Visits; got != 0 {
		t.Errorf("A visits = %d, want 0", got)
	}
	if got := m.TotalBytes(); got != 10 { // 5 req + 5 resp
		t.Errorf("TotalBytes = %d, want 10", got)
	}
	if got := m.TotalSteps(); got != 7 { // 5 remote + 2 local
		t.Errorf("TotalSteps = %d, want 7", got)
	}
	if got := m.TotalMessages(); got != 2 {
		t.Errorf("TotalMessages = %d, want 2", got)
	}
	if s := m.String(); !strings.Contains(s, "B") {
		t.Errorf("metrics table missing site B:\n%s", s)
	}
	m.Reset()
	if m.TotalBytes() != 0 || m.TotalSteps() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestCallErrors(t *testing.T) {
	c := New(DefaultCostModel())
	c.AddSite("A")
	ctx := context.Background()
	if _, _, err := c.Call(ctx, "A", "nope", Request{Kind: "x"}); !errors.Is(err, ErrUnknownSite) {
		t.Errorf("unknown site: %v", err)
	}
	if _, _, err := c.Call(ctx, "A", "A", Request{Kind: "unregistered"}); err == nil {
		t.Error("missing handler must fail")
	}
	b := c.AddSite("B")
	b.Handle("boom", func(context.Context, *Site, Request) (Response, error) {
		return Response{}, errors.New("kaput")
	})
	if _, _, err := c.Call(ctx, "A", "B", Request{Kind: "boom"}); err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Errorf("handler error not propagated: %v", err)
	}
	if got := c.Metrics().Site("B").Errors; got != 1 {
		t.Errorf("B errors = %d, want 1", got)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := c.Call(cctx, "A", "B", Request{Kind: "boom"}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: %v", err)
	}
}

func TestSiteStorage(t *testing.T) {
	s := NewSite("X")
	fr := &frag.Fragment{ID: 3, Parent: 0, Root: xmltree.NewElement("a", "")}
	s.AddFragment(fr)
	if got, ok := s.Fragment(3); !ok || got != fr {
		t.Error("Fragment(3) lookup failed")
	}
	s.AddFragment(&frag.Fragment{ID: 1, Parent: 0, Root: xmltree.NewElement("b", "")})
	ids := s.FragmentIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Errorf("FragmentIDs = %v", ids)
	}
	s.RemoveFragment(3)
	if _, ok := s.Fragment(3); ok {
		t.Error("fragment not removed")
	}
	s.Put("k", 42)
	if v, ok := s.Get("k"); !ok || v.(int) != 42 {
		t.Error("state Put/Get failed")
	}
	s.Delete("k")
	if _, ok := s.Get("k"); ok {
		t.Error("state not deleted")
	}
}

func TestAddSiteIdempotent(t *testing.T) {
	c := New(DefaultCostModel())
	a1 := c.AddSite("A")
	a2 := c.AddSite("A")
	if a1 != a2 {
		t.Error("AddSite created a duplicate site")
	}
	if got := c.Sites(); len(got) != 1 {
		t.Errorf("Sites = %v", got)
	}
}

func TestConcurrentCalls(t *testing.T) {
	c := New(DefaultCostModel())
	c.AddSite("A")
	b := c.AddSite("B")
	b.Handle("echo", echoHandler)
	var wg sync.WaitGroup
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Call(ctx, "A", "B", Request{Kind: "echo", Payload: []byte("p")}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := c.Metrics().Site("B").Visits; got != 64 {
		t.Errorf("B visits = %d, want 64", got)
	}
}

func TestRealDelays(t *testing.T) {
	cost := CostModel{Latency: 5 * time.Millisecond, BytesPerSecond: 1e9, RealDelays: true}
	c := New(cost)
	c.AddSite("A")
	b := c.AddSite("B")
	b.Handle("echo", echoHandler)
	start := time.Now()
	if _, _, err := c.Call(context.Background(), "A", "B", Request{Kind: "echo"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("RealDelays call took %v, want ≥ 10ms (two latencies)", elapsed)
	}
}

func TestTCPEcho(t *testing.T) {
	site := NewSite("R")
	site.Handle("echo", echoHandler)
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer tr.Close()
	ctx := context.Background()
	payload := strings.Repeat("data", 10000)
	resp, cost, err := tr.Call(ctx, "C", "R", Request{Kind: "echo", Payload: []byte(payload)})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != payload {
		t.Error("echo payload mismatch")
	}
	if resp.Steps != int64(len(payload)) {
		t.Errorf("steps = %d, want %d", resp.Steps, len(payload))
	}
	if cost.ReqBytes != len(payload) || cost.RespBytes != len(payload) {
		t.Errorf("cost bytes = %d/%d", cost.ReqBytes, cost.RespBytes)
	}
	if got := tr.Metrics().Site("R").Visits; got != 1 {
		t.Errorf("R visits = %d, want 1", got)
	}
}

func TestTCPErrors(t *testing.T) {
	site := NewSite("R")
	site.Handle("boom", func(context.Context, *Site, Request) (Response, error) {
		return Response{}, errors.New("remote kaput")
	})
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer tr.Close()
	ctx := context.Background()

	if _, _, err := tr.Call(ctx, "C", "nope", Request{Kind: "x"}); !errors.Is(err, ErrUnknownSite) {
		t.Errorf("unknown site: %v", err)
	}
	_, _, err = tr.Call(ctx, "C", "R", Request{Kind: "boom"})
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "remote kaput") {
		t.Errorf("remote error: %v", err)
	}
	// The connection survives a handler error (it is a protocol-level
	// response, not a transport failure).
	site.Handle("ok", echoHandler)
	if _, _, err := tr.Call(ctx, "C", "R", Request{Kind: "ok", Payload: []byte("x")}); err != nil {
		t.Errorf("call after remote error: %v", err)
	}
	// Missing handler also travels back as ErrRemote.
	if _, _, err := tr.Call(ctx, "C", "R", Request{Kind: "unregistered"}); !errors.Is(err, ErrRemote) {
		t.Errorf("missing handler: %v", err)
	}
}

func TestTCPLocalSite(t *testing.T) {
	local := NewSite("L")
	local.Handle("echo", echoHandler)
	tr := NewTCPTransport(nil)
	defer tr.Close()
	tr.Local(local)
	resp, cost, err := tr.Call(context.Background(), "L", "L", Request{Kind: "echo", Payload: []byte("in-proc")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "in-proc" {
		t.Error("local dispatch failed")
	}
	if cost.Net != 0 {
		t.Error("local call must be free")
	}
	if got := tr.Metrics().Site("L").Visits; got != 0 {
		t.Errorf("local call counted as visit: %d", got)
	}
}

func TestTCPServerClose(t *testing.T) {
	site := NewSite("R")
	site.Handle("echo", echoHandler)
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer tr.Close()
	if _, _, err := tr.Call(context.Background(), "C", "R", Request{Kind: "echo"}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Calls after close must fail (possibly after a reconnect attempt).
	if _, _, err := tr.Call(context.Background(), "C", "R", Request{Kind: "echo"}); err == nil {
		if _, _, err2 := tr.Call(context.Background(), "C", "R", Request{Kind: "echo"}); err2 == nil {
			t.Error("call to closed server succeeded twice")
		}
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	site := NewSite("R")
	site.Handle("echo", echoHandler)
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer tr.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(strings.Repeat("x", i+1))
			resp, _, err := tr.Call(context.Background(), "C", "R", Request{Kind: "echo", Payload: payload})
			if err != nil {
				t.Error(err)
				return
			}
			if len(resp.Payload) != len(payload) {
				t.Errorf("response length %d, want %d (interleaved frames?)", len(resp.Payload), len(payload))
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPContextDeadline(t *testing.T) {
	site := NewSite("R")
	site.Handle("slow", func(ctx context.Context, _ *Site, _ Request) (Response, error) {
		time.Sleep(200 * time.Millisecond)
		return Response{}, nil
	})
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, err := tr.Call(ctx, "C", "R", Request{Kind: "slow"}); err == nil {
		t.Error("deadline exceeded call succeeded")
	}
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/frag"
)

// TestV2OutOfOrderResponses pins the multiplexing property the refactor
// exists for: a slow request does not head-of-line block a fast one on
// the same connection — the fast response overtakes it.
func TestV2OutOfOrderResponses(t *testing.T) {
	site := NewSite("R")
	release := make(chan struct{})
	site.Handle("slow", func(context.Context, *Site, Request) (Response, error) {
		<-release
		return Response{Payload: []byte("slow")}, nil
	})
	site.Handle("fast", func(context.Context, *Site, Request) (Response, error) {
		return Response{Payload: []byte("fast")}, nil
	})
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer tr.Close()
	ctx := context.Background()

	slowCh := tr.Go(ctx, "C", "R", Request{Kind: "slow"})
	fastCh := tr.Go(ctx, "C", "R", Request{Kind: "fast"})
	select {
	case r := <-fastCh:
		if r.Err != nil {
			t.Fatalf("fast call: %v", r.Err)
		}
		if string(r.Resp.Payload) != "fast" {
			t.Fatalf("fast payload = %q", r.Resp.Payload)
		}
	case <-slowCh:
		t.Fatal("slow response arrived before fast — no multiplexing")
	case <-time.After(5 * time.Second):
		t.Fatal("fast call never completed while slow was pending")
	}
	close(release)
	if r := <-slowCh; r.Err != nil || string(r.Resp.Payload) != "slow" {
		t.Fatalf("slow call: %v %q", r.Err, r.Resp.Payload)
	}
}

// TestV2DeadlineResolvesOnlyItsCall: a caller whose context expires gets
// its error immediately; the shared connection survives and concurrent
// and subsequent calls on it are unaffected.
func TestV2DeadlineResolvesOnlyItsCall(t *testing.T) {
	site := NewSite("R")
	release := make(chan struct{})
	site.Handle("stall", func(context.Context, *Site, Request) (Response, error) {
		<-release
		return Response{Payload: []byte("late")}, nil
	})
	site.Handle("echo", echoHandler)
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer tr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, err := tr.Call(ctx, "C", "R", Request{Kind: "stall"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled call error = %v, want deadline exceeded", err)
	}
	// The connection must still carry other traffic while the stalled
	// handler is unfinished server-side...
	if resp, _, err := tr.Call(context.Background(), "C", "R", Request{Kind: "echo", Payload: []byte("alive")}); err != nil || string(resp.Payload) != "alive" {
		t.Fatalf("call after abandoned request: %v %q", err, resp.Payload)
	}
	// ...and after its late response is discarded by the demultiplexer.
	close(release)
	if resp, _, err := tr.Call(context.Background(), "C", "R", Request{Kind: "echo", Payload: []byte("still")}); err != nil || string(resp.Payload) != "still" {
		t.Fatalf("call after late response: %v %q", err, resp.Payload)
	}
}

// TestV2PipelinedSoak floods one site over one multiplexed connection
// from many goroutines with distinct payloads and verifies every caller
// receives exactly its own answer (the request-ID demux invariant).
func TestV2PipelinedSoak(t *testing.T) {
	site := NewSite("R")
	site.Handle("echo", echoHandler)
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer tr.Close()
	var wg sync.WaitGroup
	for i := 0; i < 128; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("payload-%d-%s", i, strings.Repeat("x", i*7%257)))
			for j := 0; j < 8; j++ {
				resp, _, err := tr.Call(context.Background(), "C", "R", Request{Kind: "echo", Payload: payload})
				if err != nil {
					t.Error(err)
					return
				}
				if string(resp.Payload) != string(payload) {
					t.Errorf("caller %d got someone else's response (%d bytes, want %d)", i, len(resp.Payload), len(payload))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := tr.Metrics().Site("R").Visits; got != 128*8 {
		t.Errorf("visits = %d, want %d", got, 128*8)
	}
}

// TestV1DeadlineDropsConn is the regression test for the legacy path: a
// context that expires mid-response must drop the pooled connection —
// reusing it would leave the next caller reading the first call's
// half-delivered frame.
func TestV1DeadlineDropsConn(t *testing.T) {
	site := NewSite("R")
	site.Handle("slowbig", func(context.Context, *Site, Request) (Response, error) {
		time.Sleep(150 * time.Millisecond)
		return Response{Payload: []byte(strings.Repeat("z", 1<<20))}, nil
	})
	site.Handle("echo", echoHandler)
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	tr.ForceV1 = true
	defer tr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, _, err := tr.Call(ctx, "C", "R", Request{Kind: "slowbig"}); err == nil {
		t.Fatal("expired call succeeded")
	}
	// The timed-out connection held (or was about to receive) a 1 MiB
	// frame this caller never consumed. The next call must see a fresh
	// connection and a correct, un-torn response.
	for i := 0; i < 3; i++ {
		payload := []byte(fmt.Sprintf("after-%d", i))
		resp, _, err := tr.Call(context.Background(), "C", "R", Request{Kind: "echo", Payload: payload})
		if err != nil {
			t.Fatalf("call %d after deadline: %v", i, err)
		}
		if string(resp.Payload) != string(payload) {
			t.Fatalf("call %d read a torn frame: got %d bytes %q...", i, len(resp.Payload), resp.Payload[:min(16, len(resp.Payload))])
		}
	}
}

// TestV1RemoteErrorKeepsConn: a handler error is a protocol-level
// response, fully consumed off the wire — the v1 connection stays
// pooled and is reused.
func TestV1RemoteErrorKeepsConn(t *testing.T) {
	site := NewSite("R")
	site.Handle("boom", func(context.Context, *Site, Request) (Response, error) {
		return Response{}, errors.New("kaput")
	})
	site.Handle("echo", echoHandler)
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	tr.ForceV1 = true
	defer tr.Close()
	if _, _, err := tr.Call(context.Background(), "C", "R", Request{Kind: "boom"}); !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
	tr.mu.Lock()
	pooled := len(tr.conns)
	tr.mu.Unlock()
	if pooled != 1 {
		t.Errorf("connection pool after remote error: %d conns, want 1 (kept)", pooled)
	}
	if resp, _, err := tr.Call(context.Background(), "C", "R", Request{Kind: "echo", Payload: []byte("x")}); err != nil || string(resp.Payload) != "x" {
		t.Fatalf("reuse after remote error: %v", err)
	}
}

// TestRequireV2RejectsV1 pins the daemon-facing handshake guarantee: a
// v1 peer of a RequireV2 server gets a readable error response, not
// frame corruption.
func TestRequireV2RejectsV1(t *testing.T) {
	site := NewSite("R")
	site.Handle("echo", echoHandler)
	srv, err := ServeWith(site, "127.0.0.1:0", ServeConfig{RequireV2: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	v1 := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	v1.ForceV1 = true
	defer v1.Close()
	// Every attempt must see the readable error — including retries on
	// the pooled connection (an ErrRemote response keeps a v1 conn
	// pooled, so the server must keep answering it, not close it).
	for i := 0; i < 3; i++ {
		_, _, err = v1.Call(context.Background(), "C", "R", Request{Kind: "echo", Payload: []byte("hi")})
		if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "wire protocol v2") {
			t.Fatalf("v1 peer rejection (attempt %d) = %v, want ErrRemote mentioning wire protocol v2", i, err)
		}
	}

	// A v2 peer of the same server works.
	v2 := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer v2.Close()
	if resp, _, err := v2.Call(context.Background(), "C", "R", Request{Kind: "echo", Payload: []byte("hi")}); err != nil || string(resp.Payload) != "hi" {
		t.Fatalf("v2 peer: %v", err)
	}
}

// TestHandshakeRejectsUnknownVersion: a server answers an unsupported
// version byte with an explicit rejection, and the client surfaces it
// as ErrProtocolVersion.
func TestHandshakeRejectsUnknownVersion(t *testing.T) {
	site := NewSite("R")
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{v2Magic, 99}); err != nil {
		t.Fatal(err)
	}
	reply := make([]byte, 2)
	if _, err := io.ReadFull(conn, reply); err != nil {
		t.Fatal(err)
	}
	if reply[0] != v2Magic || reply[1] != v2Reject {
		t.Fatalf("rejection reply = %v, want [%#x %#x]", reply, v2Magic, v2Reject)
	}
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("server kept the rejected connection open: %v", err)
	}
}

// TestServerGracefulClose: Close must drain — a request in flight when
// Close begins still gets its response before the connection goes away.
func TestServerGracefulClose(t *testing.T) {
	site := NewSite("R")
	entered := make(chan struct{})
	site.Handle("slow", func(context.Context, *Site, Request) (Response, error) {
		close(entered)
		time.Sleep(100 * time.Millisecond)
		return Response{Payload: []byte("drained")}, nil
	})
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer tr.Close()

	ch := tr.Go(context.Background(), "C", "R", Request{Kind: "slow"})
	<-entered
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	r := <-ch
	if r.Err != nil {
		t.Fatalf("in-flight request lost to Close: %v", r.Err)
	}
	if string(r.Resp.Payload) != "drained" {
		t.Fatalf("drained payload = %q", r.Resp.Payload)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestConnFailureFailsAllPending: a connection-level failure resolves
// every pending call with the error and later calls redial.
func TestConnFailureFailsAllPending(t *testing.T) {
	site := NewSite("R")
	stall := make(chan struct{})
	site.Handle("stall", func(context.Context, *Site, Request) (Response, error) {
		<-stall
		return Response{}, nil
	})
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(stall)
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer tr.Close()

	const n = 8
	chans := make([]<-chan Reply, n)
	for i := range chans {
		chans[i] = tr.Go(context.Background(), "C", "R", Request{Kind: "stall"})
	}
	// Wait until the transport actually has the mux pooled, then break it.
	var mux *muxConn
	for i := 0; i < 100; i++ {
		tr.mu.Lock()
		mux = tr.muxes["R"]
		tr.mu.Unlock()
		if mux != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if mux == nil {
		t.Fatal("no pooled v2 connection")
	}
	mux.conn.Close()
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Err == nil {
				t.Errorf("call %d succeeded across a dead connection", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("call %d still pending after connection failure", i)
		}
	}
	tr.mu.Lock()
	pooled := len(tr.muxes)
	tr.mu.Unlock()
	if pooled != 0 {
		t.Errorf("broken connection still pooled (%d)", pooled)
	}
}

// TestClusterGo pins the in-memory async path: same response and
// deterministic modeled cost as Call, handler running concurrently.
func TestClusterGo(t *testing.T) {
	c := New(DefaultCostModel())
	c.AddSite("A")
	b := c.AddSite("B")
	b.Handle("echo", echoHandler)
	payload := []byte(strings.Repeat("p", 1000))
	r := <-c.Go(context.Background(), "A", "B", Request{Kind: "echo", Payload: payload})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	_, syncCost, err := c.Call(context.Background(), "A", "B", Request{Kind: "echo", Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost.Net != syncCost.Net || r.Cost.Compute != syncCost.Compute {
		t.Errorf("async cost (net %v, compute %v) != sync cost (net %v, compute %v)",
			r.Cost.Net, r.Cost.Compute, syncCost.Net, syncCost.Compute)
	}
}

// TestGoFallbackWrapsCall: a Transport that does not implement
// AsyncTransport still works through cluster.Go, and sees every call
// (the property wrapper transports rely on).
func TestGoFallbackWrapsCall(t *testing.T) {
	c := New(DefaultCostModel())
	c.AddSite("A")
	b := c.AddSite("B")
	b.Handle("echo", echoHandler)
	var calls atomic.Int64
	counted := countingTransport{inner: c, calls: &calls}
	r := <-Go(context.Background(), counted, "A", "B", Request{Kind: "echo", Payload: []byte("x")})
	if r.Err != nil || string(r.Resp.Payload) != "x" {
		t.Fatalf("fallback call: %v", r.Err)
	}
	if calls.Load() != 1 {
		t.Errorf("wrapper saw %d calls, want 1", calls.Load())
	}
}

type countingTransport struct {
	inner Transport
	calls *atomic.Int64
}

func (t countingTransport) Call(ctx context.Context, from, to frag.SiteID, req Request) (Response, CallCost, error) {
	t.calls.Add(1)
	return t.inner.Call(ctx, from, to, req)
}

// TestV2HandshakeAgainstSilentPeer: dialing something that never
// answers the handshake fails with ErrProtocolVersion once the dial
// timeout elapses, instead of hanging.
func TestV2HandshakeAgainstSilentPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Read but never answer — a v1 server parsing our magic byte
			// as a kind length would behave like this.
			go func() { io.Copy(io.Discard, conn) }()
		}
	}()
	tr := NewTCPTransport(map[frag.SiteID]string{"R": ln.Addr().String()})
	tr.DialTimeout = 200 * time.Millisecond
	defer tr.Close()
	_, _, err = tr.Call(context.Background(), "C", "R", Request{Kind: "echo"})
	if !errors.Is(err, ErrProtocolVersion) {
		t.Fatalf("silent peer error = %v, want ErrProtocolVersion", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestV2PushDeltaRoundTrip: a client that subscribes over the wire
// receives every Site.PushDelta payload as a server-initiated push
// frame, interleaved request/response traffic is unaffected, and
// cancelling the subscription stops delivery.
func TestV2PushDeltaRoundTrip(t *testing.T) {
	site := NewSite("R")
	site.Handle("echo", echoHandler)
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer tr.Close()
	ctx := context.Background()

	got := make(chan []byte, 16)
	cancel, err := tr.SubscribeDeltas(ctx, "C", "R", func(b []byte) {
		got <- append([]byte(nil), b...)
	})
	if err != nil {
		t.Fatalf("SubscribeDeltas: %v", err)
	}
	// The subscribe ack round-tripped, so the server-side forward is
	// installed: pushes from here on must arrive.
	for i := 0; i < 3; i++ {
		if n := site.PushDelta([]byte{byte('a' + i)}); n != 1 {
			t.Fatalf("PushDelta fan-out = %d observers, want 1", n)
		}
		// Request/response traffic shares the connection with pushes.
		if resp, _, err := tr.Call(ctx, "C", "R", Request{Kind: "echo", Payload: []byte("mid")}); err != nil || string(resp.Payload) != "mid" {
			t.Fatalf("interleaved call %d: %v %q", i, err, resp.Payload)
		}
		select {
		case b := <-got:
			if want := string(byte('a' + i)); string(b) != want {
				t.Fatalf("push %d = %q, want %q", i, b, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("push %d never delivered", i)
		}
	}
	if got := site.Stats().Snapshot().DeltasPushed; got != 3 {
		t.Fatalf("DeltasPushed = %d, want 3", got)
	}

	cancel()
	// After cancel the client observer is gone; the server may still
	// forward frames, but none may reach fn.
	site.PushDelta([]byte("late"))
	if resp, _, err := tr.Call(ctx, "C", "R", Request{Kind: "echo", Payload: []byte("after")}); err != nil || string(resp.Payload) != "after" {
		t.Fatalf("call after cancel: %v %q", err, resp.Payload)
	}
	select {
	case b := <-got:
		t.Fatalf("push %q delivered after cancel", b)
	default:
	}
}

// TestSubscribeDeltasLocalAndV1: the local fast path registers directly
// on the site, and the v1 wire (no push frames) refuses subscriptions
// instead of silently dropping them.
func TestSubscribeDeltasLocalAndV1(t *testing.T) {
	local := NewSite("L")
	tr := NewTCPTransport(nil)
	tr.Local(local)
	defer tr.Close()
	got := make(chan []byte, 1)
	cancel, err := tr.SubscribeDeltas(context.Background(), "C", "L", func(b []byte) { got <- b })
	if err != nil {
		t.Fatalf("local SubscribeDeltas: %v", err)
	}
	defer cancel()
	local.PushDelta([]byte("direct"))
	select {
	case b := <-got:
		if string(b) != "direct" {
			t.Fatalf("local push = %q", b)
		}
	case <-time.After(time.Second):
		t.Fatal("local push never delivered")
	}

	v1 := NewTCPTransport(map[frag.SiteID]string{"R": "127.0.0.1:1"})
	v1.ForceV1 = true
	defer v1.Close()
	if _, err := v1.SubscribeDeltas(context.Background(), "C", "R", func([]byte) {}); err == nil {
		t.Fatal("v1 SubscribeDeltas succeeded, want error")
	}
}

package cluster

import (
	"bufio"
	"bytes"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// FuzzV2RequestFrame hammers the server-side request decoder with
// arbitrary bytes: it must never panic, and any frame it accepts must
// round-trip through the encoder byte for byte.
func FuzzV2RequestFrame(f *testing.F) {
	f.Add(appendV2Request(nil, 1, 0, 0, 0, "parbox.evalQual", []byte("payload")))
	f.Add(appendV2Request(nil, 0, 0, 0, 0, "", nil))
	f.Add(appendV2Request(appendV2Request(nil, 7, 1, 0, 0, "a", []byte("x")), 8, 250_000, 0, 0, "b", []byte("y")))
	f.Add(appendV2Request(nil, 3, ^uint64(0), 0, 0, "k", nil)) // absurd deadline: clamped
	// Traced frames: trace ID plus parent span ID.
	f.Add(appendV2Request(nil, 4, 1000, 0xdeadbeef, 0xfeedface, "parbox.evalQual", []byte("traced")))
	f.Add(appendV2Request(nil, 5, 0, ^uint64(0), ^uint64(0), "k", nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge uvarint id
	f.Add([]byte{1, 0, 0, 5, 'h', 'i'})                                       // kind truncated
	f.Add(appendV2Request(nil, 2, 9, 0, 0, "k", []byte("p"))[:3])             // torn frame
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			id, deadline, traceID, parentSpan, kind, payload, err := readV2Request(r)
			if err != nil {
				return // torn, truncated or oversized: rejected without panic
			}
			if deadline > maxDeadlineMicros {
				t.Fatalf("decoder admitted deadline %d past the %d clamp", deadline, maxDeadlineMicros)
			}
			if traceID == 0 && parentSpan != 0 {
				t.Fatalf("untraced frame decoded a parent span %d", parentSpan)
			}
			reenc := appendV2Request(nil, id, deadline, traceID, parentSpan, kind, payload)
			id2, deadline2, traceID2, parentSpan2, kind2, payload2, err := readV2Request(bufio.NewReader(bytes.NewReader(reenc)))
			if err != nil {
				t.Fatalf("re-decoding an accepted frame failed: %v", err)
			}
			if id2 != id || deadline2 != deadline || traceID2 != traceID ||
				parentSpan2 != parentSpan || kind2 != kind || !bytes.Equal(payload2, payload) {
				t.Fatalf("request frame round trip changed (%d dl %d tr %d/%d %q %d bytes) -> (%d dl %d tr %d/%d %q %d bytes)",
					id, deadline, traceID, parentSpan, kind, len(payload),
					id2, deadline2, traceID2, parentSpan2, kind2, len(payload2))
			}
		}
	})
}

// FuzzRetryAfter: the shed-hint body codec must never panic, always
// decode into [0, maxRetryAfter], and round-trip every value it emits.
func FuzzRetryAfter(f *testing.F) {
	f.Add(appendRetryAfter(nil, 0))
	f.Add(appendRetryAfter(nil, time.Millisecond))
	f.Add(appendRetryAfter(nil, maxRetryAfter))
	f.Add([]byte{})
	f.Add([]byte{0xff})                                                       // torn uvarint
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // absurd hint
	f.Fuzz(func(t *testing.T, data []byte) {
		d := decodeRetryAfter(data)
		if d < 0 || d > maxRetryAfter {
			t.Fatalf("decoded hint %v outside [0, %v]", d, maxRetryAfter)
		}
		if got := decodeRetryAfter(appendRetryAfter(nil, d)); got != d {
			t.Fatalf("hint round trip changed %v -> %v", d, got)
		}
	})
}

// fuzzSpans is a canonical span set used by the response-frame seeds.
var fuzzSpans = []obs.Span{
	{TraceID: 9, ID: 2, Parent: 1, Site: "s1", Name: "handle parbox.evalQual", Start: 1234, Dur: 56,
		Attrs: []obs.Attr{{Key: "steps", Val: 7}}},
	{TraceID: 9, ID: 3, Parent: 2, Site: "s1", Name: "bottomUp", Start: 1240, Dur: 40},
}

// FuzzV2ResponseDemux feeds an arbitrary byte stream to a live demux
// reader with pending calls and a push observer registered. The
// invariants: no panic, no double completion, and — because a stream
// that ends fails the connection — every pending call completes exactly
// once, whether its response arrived, arrived torn, or never arrived.
// Frames addressed to unknown request IDs must be discarded harmlessly.
// Push frames (tcpStatusPush, version 4) must reach the push observer
// and must never complete a pending call, and every push the observer
// sees must decode back out of the input stream (no invented bodies).
func FuzzV2ResponseDemux(f *testing.F) {
	// Interleaved, out-of-order completions of ids 1..3.
	s := appendV2Response(nil, 2, tcpStatusOK, Response{Payload: []byte("two"), Steps: 7})
	s = appendV2Response(s, 3, tcpStatusErr, Response{Payload: []byte("boom")})
	s = appendV2Response(s, 1, tcpStatusOK, Response{CacheHits: 1, CacheMisses: 2})
	f.Add(s, uint8(3))
	// A traced response carrying piggybacked spans.
	f.Add(appendV2Response(nil, 1, tcpStatusOK, Response{Payload: []byte("ok"), Spans: fuzzSpans}), uint8(1))
	// A response for an id nobody is waiting on (abandoned by ctx expiry).
	f.Add(appendV2Response(nil, 99, tcpStatusOK, Response{Payload: []byte("late")}), uint8(2))
	// Server-initiated push frames: ID 0, interleaved with replies.
	p := appendV2Response(nil, 0, tcpStatusPush, Response{Payload: []byte("delta-1")})
	p = appendV2Response(p, 1, tcpStatusOK, Response{Payload: []byte("reply")})
	p = appendV2Response(p, 0, tcpStatusPush, Response{Payload: []byte("delta-2")})
	f.Add(p, uint8(1))
	// A push frame carrying a pending call's ID: still a push, never a reply.
	f.Add(appendV2Response(nil, 2, tcpStatusPush, Response{Payload: []byte("misaddressed")}), uint8(3))
	// An empty-bodied push.
	f.Add(appendV2Response(nil, 0, tcpStatusPush, Response{}), uint8(1))
	// Torn mid-frame.
	f.Add(s[:len(s)/2], uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f, 0x00}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, npending uint8) {
		n := int(npending%8) + 1
		client, server := net.Pipe()
		defer client.Close()
		defer server.Close()
		c := &muxConn{
			conn:    client,
			wr:      make(chan []byte, 1),
			broken:  make(chan struct{}),
			pending: make(map[uint64]*muxPending),
		}
		var mu sync.Mutex
		completions := make(map[uint64]int, n)
		for id := uint64(1); id <= uint64(n); id++ {
			id := id
			c.pending[id] = &muxPending{complete: func(Response, error) {
				mu.Lock()
				completions[id]++
				mu.Unlock()
			}}
		}
		var pushes [][]byte
		cancel := c.subscribePush(func(body []byte) {
			mu.Lock()
			pushes = append(pushes, append([]byte(nil), body...))
			mu.Unlock()
		})
		defer cancel()
		// What the observer should see: every decodable tcpStatusPush
		// frame in the stream, in order, regardless of its request ID.
		var wantPushes [][]byte
		pr := bufio.NewReader(bytes.NewReader(data))
		for {
			_, status, resp, err := readV2Response(pr)
			if err != nil {
				break
			}
			if status == tcpStatusPush {
				wantPushes = append(wantPushes, resp.Payload)
			}
		}
		// The reader loop runs to stream end, then fails the conn, which
		// must resolve every still-pending call.
		c.readLoop(bufio.NewReader(bytes.NewReader(data)))
		mu.Lock()
		defer mu.Unlock()
		for id := uint64(1); id <= uint64(n); id++ {
			if completions[id] != 1 {
				t.Fatalf("pending id %d completed %d times, want exactly 1", id, completions[id])
			}
		}
		for id, k := range completions {
			if id > uint64(n) {
				t.Fatalf("unregistered id %d completed %d times", id, k)
			}
		}
		if len(pushes) != len(wantPushes) {
			t.Fatalf("push observer saw %d frames, stream carries %d", len(pushes), len(wantPushes))
		}
		for i := range pushes {
			if !bytes.Equal(pushes[i], wantPushes[i]) {
				t.Fatalf("push %d: observer saw %q, stream carries %q", i, pushes[i], wantPushes[i])
			}
		}
	})
}

// FuzzV2ResponseFrame: decode/encode/decode parity for response frames,
// including the piggybacked span block.
func FuzzV2ResponseFrame(f *testing.F) {
	f.Add(appendV2Response(nil, 5, tcpStatusOK, Response{Payload: []byte("ok"), Steps: 3, CacheHits: 1, CacheMisses: 2}))
	f.Add(appendV2Response(nil, 1, tcpStatusErr, Response{Payload: []byte("error text")}))
	f.Add(appendV2Response(nil, 8, tcpStatusOK, Response{Payload: []byte("traced"), Steps: 11, Spans: fuzzSpans}))
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			id, status, resp, err := readV2Response(r)
			if err != nil {
				return
			}
			reenc := appendV2Response(nil, id, status, resp)
			id2, status2, resp2, err := readV2Response(bufio.NewReader(bytes.NewReader(reenc)))
			if err != nil {
				t.Fatalf("re-decoding an accepted response failed: %v", err)
			}
			if id2 != id || status2 != status || resp2.Steps != resp.Steps ||
				resp2.CacheHits != resp.CacheHits || resp2.CacheMisses != resp.CacheMisses ||
				!bytes.Equal(resp2.Payload, resp.Payload) ||
				!reflect.DeepEqual(resp2.Spans, resp.Spans) {
				t.Fatalf("response frame round trip changed: id %d->%d status %d->%d", id, id2, status, status2)
			}
		}
	})
}

// Package cluster is the distributed substrate the ParBoX algorithms run
// on. It replaces the paper's "10 Linux machines distributed over a local
// LAN" with an in-process simulated LAN — sites holding fragments,
// request/response messaging with a configurable latency + bandwidth cost
// model, and per-site accounting of visits, bytes and computation steps —
// plus a real TCP transport (see tcp.go) speaking the same wire format, so
// the same algorithm code runs over actual sockets.
//
// Design notes:
//
//   - Handlers execute in the caller's goroutine (in-process transport);
//     parallelism is created by the algorithms fanning out goroutines, just
//     as the coordinator contacts sites concurrently in the paper.
//   - "Wall time" on a many-core host approximates the paper's parallelism
//     but is noisy; every call therefore also reports a deterministic
//     simulated cost derived from the byte counts and a steps-per-second
//     CPU model. The experiment harness reports the deterministic times.
//   - A visit is a request handled by a site on behalf of another site;
//     local (from == to) work is free, matching the paper's accounting in
//     which the coordinator's own fragment costs no communication.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/frag"
	"repro/internal/obs"
	"repro/internal/xmltree"
)

// Request is a message from one site to another: an operation kind and an
// opaque payload (the algorithms define their own payload codecs).
type Request struct {
	Kind    string
	Payload []byte
}

// Response carries the reply payload plus accounting metadata: Steps is the
// number of node×subquery computation units the handler performed (the
// paper's total-computation measure; in a real deployment each site would
// report its own CPU time the same way). CacheHits/CacheMisses count, for
// handlers that consult the site's versioned triplet cache, how many
// requested fragments answered from cache versus required a bottomUp pass;
// both travel the wire so the coordinator's accounting matches over TCP.
type Response struct {
	Payload     []byte
	Steps       int64
	CacheHits   int64
	CacheMisses int64
	// Spans piggybacks the server-side trace spans of a traced request
	// (wire v2 encodes them after the counters); empty when tracing is
	// off. In-process transports leave it empty and record straight
	// into the caller's collector instead.
	Spans []obs.Span
}

// Handler processes one request at a site.
type Handler func(ctx context.Context, site *Site, req Request) (Response, error)

// CallCost is the per-call accounting returned alongside every response.
type CallCost struct {
	ReqBytes, RespBytes int
	// Net is the modeled network time for the round trip (two latencies
	// plus transfer of both payloads); zero for local calls.
	Net time.Duration
	// Compute is the modeled handler time (Steps / StepsPerSecond).
	Compute time.Duration
	// Steps echoes the handler's reported computation units.
	Steps int64
	// Wall is the measured handler duration.
	Wall time.Duration
}

// Total returns the modeled end-to-end duration of the call.
func (c CallCost) Total() time.Duration { return c.Net + c.Compute }

// CostModel parameterizes the simulated LAN and CPUs.
type CostModel struct {
	// Latency is charged once per message (so twice per call).
	Latency time.Duration
	// BytesPerSecond is the link bandwidth for payload transfer.
	BytesPerSecond float64
	// StepsPerSecond converts handler computation units to modeled time.
	StepsPerSecond float64
	// MessageOverhead is added to every payload's size (framing).
	MessageOverhead int
	// RealDelays, when set, makes the in-process transport actually sleep
	// for the modeled network time, so wall-clock measurements include
	// transfer costs. Off by default (tests, benchmarks use modeled time).
	RealDelays bool
}

// DefaultCostModel is calibrated against the paper's 2006 testbed so the
// reproduced figures keep its compute-to-transfer ratios at this
// repository's data scale (2500 nodes and ≈75 encoded KB per paper-MB):
//
//   - Fig. 7 reports ≈6.8 s to evaluate the 50 MB document (≈1M
//     node×subquery steps here) → StepsPerSecond = 150e3;
//   - shipping the 45 MB remainder cost ≈6.7 s (≈3.4 MB on this wire) →
//     BytesPerSecond = 500e3;
//   - LAN round trips were sub-millisecond → Latency = 0.5 ms one way.
func DefaultCostModel() CostModel {
	return CostModel{
		Latency:         500 * time.Microsecond,
		BytesPerSecond:  500e3,
		StepsPerSecond:  150e3,
		MessageOverhead: 16,
	}
}

// TransferTime models moving n payload bytes across one link.
func (m CostModel) TransferTime(n int) time.Duration {
	if m.BytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(n+m.MessageOverhead) / m.BytesPerSecond * float64(time.Second))
}

// ComputeTime models steps computation units on one site's CPU.
func (m CostModel) ComputeTime(steps int64) time.Duration {
	if m.StepsPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(steps) / m.StepsPerSecond * float64(time.Second))
}

// RoundTrip models a request/response exchange with the given payload
// sizes.
func (m CostModel) RoundTrip(reqBytes, respBytes int) time.Duration {
	return 2*m.Latency + m.TransferTime(reqBytes) + m.TransferTime(respBytes)
}

// Transport lets algorithm code send a request from one site to another,
// independent of whether sites are goroutines or remote processes.
type Transport interface {
	Call(ctx context.Context, from, to frag.SiteID, req Request) (Response, CallCost, error)
}

// Reply is the outcome of one asynchronous call.
type Reply struct {
	Resp Response
	Cost CallCost
	Err  error
}

// AsyncTransport is implemented by transports that can keep many calls
// in flight at once. Go issues a call without blocking on its round
// trip; the reply is delivered exactly once on the returned channel
// (buffered, so the transport never blocks on a slow receiver). A
// context that expires resolves only its own call — shared connection
// state is never torn down by one caller's cancellation.
type AsyncTransport interface {
	Transport
	Go(ctx context.Context, from, to frag.SiteID, req Request) <-chan Reply
}

// DeltaSubscriber is the optional transport capability of delivering
// server-pushed maintenance deltas: fn receives every payload site `to`
// publishes through Site.PushDelta, until cancel is called. The
// in-process cluster registers fn on the site directly; the TCP
// transport subscribes its multiplexed connection (wire v2 push frames).
// fn runs on a delivery goroutine and must be cheap and non-blocking.
type DeltaSubscriber interface {
	SubscribeDeltas(ctx context.Context, from, to frag.SiteID, fn func([]byte)) (cancel func(), err error)
}

// Go issues a call asynchronously on any Transport: natively when tr
// implements AsyncTransport (the TCP transport pipelines it onto the
// peer's multiplexed connection), otherwise by running the synchronous
// Call in a goroutine. Wrapper transports (fault injection, tracing,
// metering) fall to the goroutine path and so keep observing every
// call.
func Go(ctx context.Context, tr Transport, from, to frag.SiteID, req Request) <-chan Reply {
	if at, ok := tr.(AsyncTransport); ok {
		return at.Go(ctx, from, to, req)
	}
	return goViaCall(ctx, tr, from, to, req)
}

// goViaCall adapts a synchronous Call to the async contract: the shared
// fallback of the package-level Go and of transports whose async path
// is simply "Call in a goroutine" (the in-memory cluster).
func goViaCall(ctx context.Context, tr Transport, from, to frag.SiteID, req Request) <-chan Reply {
	ch := make(chan Reply, 1)
	go func() {
		resp, cost, err := tr.Call(ctx, from, to, req)
		ch <- Reply{Resp: resp, Cost: cost, Err: err}
	}()
	return ch
}

// FragmentStore is the durable backing a site may be attached to
// (implemented by internal/store): every fragment add, removal and
// in-place mutation is logged through it, cached triplet encodings are
// persisted for warm restarts, and non-resident fragments are loaded back
// on demand. Implementations must be safe for concurrent use.
type FragmentStore interface {
	// PutFragment records the fragment's full content at the version.
	PutFragment(f *frag.Fragment, version uint64) error
	// DeleteFragment records a removal; the version counter must survive.
	DeleteFragment(id xmltree.FragmentID, version uint64) error
	// PutTriplet records a triplet-cache entry (fragment version, program
	// fingerprint, encoded triplet) for warm-cache restarts.
	PutTriplet(id xmltree.FragmentID, version, fp uint64, enc []byte) error
	// LoadFragment returns the latest persisted content of a live
	// fragment; ok is false for unknown or removed fragments.
	LoadFragment(id xmltree.FragmentID) (*frag.Fragment, uint64, bool, error)
}

// Site is one machine of the cluster: fragment storage, registered
// handlers, and a small keyed store for algorithm state (cached source
// trees, materialized view triplets, ...).
type Site struct {
	id frag.SiteID

	mu        sync.RWMutex
	handlers  map[string]Handler
	fragments map[xmltree.FragmentID]*frag.Fragment
	// versions holds each stored fragment's monotonic version: bumped on
	// every add, removal and in-place mutation (view maintenance calls
	// BumpFragment). Entries survive removal so a re-added fragment keeps
	// counting up — version-keyed caches must never see a number reused.
	versions map[xmltree.FragmentID]uint64
	state    map[string]any

	// store, when attached, journals every fragment mutation and backs the
	// bounded resident table: fragments holds at most maxResident entries
	// (0 = unbounded), evicting by least-recent use (lastUse, stamped from
	// clock); Fragment reloads evicted entries from the store on demand.
	// storeErr is the first persistence failure, surfaced via StoreErr.
	store       FragmentStore
	maxResident int
	clock       uint64
	lastUse     map[xmltree.FragmentID]uint64
	storeErr    error

	// admit, when set, is the site's admission controller (SetAdmission):
	// dispatch sheds requests past its watermarks with an OverloadError
	// instead of queueing them. admitEstimate prices requests for the
	// cost watermark (SetAdmissionEstimator).
	admit         *admission
	admitEstimate func(req Request) int64
	admitExempt   map[string]bool

	// stats is the site's always-on observability counter block
	// (visits, messages, bytes, steps, cache, sheds + a latency
	// histogram), updated lock-free in dispatch and exposed over
	// /metrics and the obs.stats RPC. ring retains recently traced
	// requests for /tracez.
	stats obs.SiteStats
	ring  *obs.TraceRing

	// deltaSubs are the site's maintenance-delta observers (standing
	// subscriptions): every PushDelta payload is fanned out to each
	// registered function. Local subscribers register directly; the TCP
	// server registers one forwarder per subscribed connection.
	deltaMu   sync.Mutex
	deltaSubs map[uint64]func([]byte)
	deltaNext uint64
}

// NewSite creates a detached site (used directly by the TCP server; the
// in-process cluster creates sites via AddSite).
func NewSite(id frag.SiteID) *Site {
	return &Site{
		id:        id,
		handlers:  make(map[string]Handler),
		fragments: make(map[xmltree.FragmentID]*frag.Fragment),
		versions:  make(map[xmltree.FragmentID]uint64),
		state:     make(map[string]any),
		ring:      obs.NewTraceRing(0),
	}
}

// Stats returns the site's observability counters.
func (s *Site) Stats() *obs.SiteStats { return &s.stats }

// SubscribeDeltas registers fn to receive every maintenance delta the
// site publishes (PushDelta) and returns a cancel function. fn is called
// synchronously from the publishing handler, possibly from many
// goroutines at once — it must be cheap and non-blocking (hand the
// payload to a buffered channel or queue).
func (s *Site) SubscribeDeltas(fn func([]byte)) (cancel func()) {
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	if s.deltaSubs == nil {
		s.deltaSubs = make(map[uint64]func([]byte))
	}
	id := s.deltaNext
	s.deltaNext++
	s.deltaSubs[id] = fn
	return func() {
		s.deltaMu.Lock()
		defer s.deltaMu.Unlock()
		delete(s.deltaSubs, id)
	}
}

// PushDelta publishes one encoded maintenance delta to every registered
// observer and returns how many were notified. The payload must be
// immutable — observers on other connections read it concurrently.
func (s *Site) PushDelta(payload []byte) int {
	s.deltaMu.Lock()
	fns := make([]func([]byte), 0, len(s.deltaSubs))
	for _, fn := range s.deltaSubs {
		fns = append(fns, fn)
	}
	s.deltaMu.Unlock()
	for _, fn := range fns {
		fn(payload)
	}
	s.stats.DeltasPushed.Add(uint64(len(fns)))
	return len(fns)
}

// TraceRing returns the site's retained-trace ring (/tracez).
func (s *Site) TraceRing() *obs.TraceRing { return s.ring }

// ID returns the site's name.
func (s *Site) ID() frag.SiteID { return s.id }

// Handle registers a handler for a request kind, replacing any previous
// one.
func (s *Site) Handle(kind string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[kind] = h
}

// HandlerFor returns the registered handler for a kind, if any —
// middleware (metering, modeled-delay emulation in benchmarks) wraps an
// existing handler by reading it here and re-registering with Handle.
func (s *Site) HandlerFor(kind string) (Handler, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.handlers[kind]
	return h, ok
}

// AddFragment stores a fragment at the site and bumps its version. With a
// store attached, the content is journaled and the resident table may
// evict a colder fragment to stay within its bound.
func (s *Site) AddFragment(f *frag.Fragment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fragments[f.ID] = f
	s.versions[f.ID]++
	if s.store != nil {
		s.touchLocked(f.ID)
		s.noteStoreErr(s.store.PutFragment(f, s.versions[f.ID]))
		s.evictLocked(f.ID)
	}
}

// RemoveFragment deletes a fragment from the site's storage. Its version
// counter is bumped, not deleted, so cached triplets of the departed
// fragment can never be mistaken for a later incarnation's.
func (s *Site) RemoveFragment(id xmltree.FragmentID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.fragments, id)
	s.versions[id]++
	if s.store != nil {
		delete(s.lastUse, id)
		s.noteStoreErr(s.store.DeleteFragment(id, s.versions[id]))
	}
}

// BumpFragment advances a fragment's version after an in-place mutation of
// its tree (view maintenance: content updates, split, merge) and returns
// the new version. Every cached triplet of the fragment is thereby
// invalidated — cache keys embed the version. The caller passes the
// mutated fragment itself: it is re-installed in the resident table (the
// mutated tree is authoritative even if the table evicted the fragment
// while the handler held it) and, with a store attached, re-journaled at
// the new version — so an acknowledged mutation can never be lost to a
// concurrent eviction.
func (s *Site) BumpFragment(f *frag.Fragment) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.versions[f.ID]++
	v := s.versions[f.ID]
	s.fragments[f.ID] = f
	if s.store != nil {
		s.touchLocked(f.ID)
		s.noteStoreErr(s.store.PutFragment(f, v))
		s.evictLocked(f.ID)
	}
	return v
}

// SetFragmentParent rewrites a stored fragment's Parent pointer and, with
// a store attached, re-journals it at its CURRENT version: the fragment's
// content is unchanged, so cached triplets keyed by (id, version) stay
// valid — only the durable source-tree edge moves. Split handlers use it
// to persist the re-parenting of sub-fragments under a freshly split-off
// fragment; Restore then trusts the journaled Parent instead of
// recomputing it from virtual-node structure. Returns false when the site
// does not store the fragment.
func (s *Site) SetFragmentParent(id, parent xmltree.FragmentID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.fragments[id]
	if !ok && s.store != nil {
		lf, _, found, err := s.store.LoadFragment(id)
		if err != nil {
			s.noteStoreErr(err)
			return false
		}
		if !found {
			return false
		}
		f, ok = lf, true
		s.fragments[id] = f
	}
	if !ok {
		return false
	}
	if f.Parent == parent {
		return true
	}
	f.Parent = parent
	if s.store != nil {
		s.touchLocked(id)
		s.noteStoreErr(s.store.PutFragment(f, s.versions[id]))
		s.evictLocked(id)
	}
	return true
}

// FragmentVersion returns the fragment's current version (0 if the site
// has never stored it).
func (s *Site) FragmentVersion(id xmltree.FragmentID) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.versions[id]
}

// Fragment returns a stored fragment. With a store attached, a fragment
// evicted from the resident table is transparently reloaded from disk (at
// its exact persisted version — loads never bump). Resident hits stay on
// the read lock unless a residency bound is set (only then is there LRU
// state to stamp), so the evaluation pool's fan-out does not serialize.
// A disk failure during a reload is reported as a miss — handlers answer
// "does not store fragment" — with the underlying cause recorded in
// StoreErr, which Checkpoint/Close surface.
func (s *Site) Fragment(id xmltree.FragmentID) (*frag.Fragment, bool) {
	s.mu.RLock()
	f, ok := s.fragments[id]
	st, bounded := s.store, s.maxResident > 0
	s.mu.RUnlock()
	if ok && !bounded {
		return f, true
	}
	if st == nil {
		return f, ok
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.fragments[id]; ok {
		s.touchLocked(id)
		return f, true
	}
	f, _, ok, err := st.LoadFragment(id)
	if err != nil {
		s.noteStoreErr(err)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	s.fragments[id] = f
	s.touchLocked(id)
	s.evictLocked(id)
	return f, true
}

// AttachStore journals the site's fragment lifecycle through fs and bounds
// the resident-fragment table to maxResident entries (0 = unbounded),
// lazily reloading evicted fragments on access. The bound must exceed the
// number of fragments mutated concurrently; already-resident fragments
// are evicted down to the bound immediately. Attach during setup, before
// the site serves requests.
func (s *Site) AttachStore(fs FragmentStore, maxResident int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store = fs
	s.maxResident = maxResident
	s.lastUse = make(map[xmltree.FragmentID]uint64, len(s.fragments))
	for id := range s.fragments {
		s.touchLocked(id)
	}
	s.evictLocked(noEvictKeep)
}

// noEvictKeep is an id no fragment can have (frag.NoParent is -1), used
// when eviction protects nothing.
const noEvictKeep = xmltree.FragmentID(-2)

// touchLocked stamps the fragment as most recently used.
func (s *Site) touchLocked(id xmltree.FragmentID) {
	if s.lastUse == nil {
		s.lastUse = make(map[xmltree.FragmentID]uint64)
	}
	s.clock++
	s.lastUse[id] = s.clock
}

// evictLocked drops least-recently-used fragments (never keep) until the
// resident table fits its bound. Evicted content is always reloadable:
// every mutation journals the full fragment before eviction can see it —
// which is exactly why eviction stops once a journal write has failed:
// with the store sticky-failed, disk may lag the resident trees, and
// evicting would let a later load resurrect pre-mutation content at a
// bumped version. A site with a broken store serves from memory only.
func (s *Site) evictLocked(keep xmltree.FragmentID) {
	if s.maxResident <= 0 || s.storeErr != nil {
		return
	}
	for len(s.fragments) > s.maxResident {
		var victim xmltree.FragmentID
		best := ^uint64(0)
		found := false
		for id := range s.fragments {
			if id == keep {
				continue
			}
			if u := s.lastUse[id]; u < best {
				best, victim, found = u, id, true
			}
		}
		if !found {
			return
		}
		delete(s.fragments, victim)
		delete(s.lastUse, victim)
	}
}

// RestoreVersion installs a recovered fragment-version counter exactly,
// without journaling — the recovery path's counterpart to the bump in
// AddFragment. Version-keyed caches rely on these counters never moving
// backwards, so restore them before the site serves.
func (s *Site) RestoreVersion(id xmltree.FragmentID, version uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.versions[id] = version
}

// ResidentFragments returns how many fragments are currently in memory
// (at most the AttachStore bound when a store is attached).
func (s *Site) ResidentFragments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.fragments)
}

// PersistTriplet journals a triplet-cache entry when a store is attached;
// otherwise it is a no-op. The serving layer calls it alongside every
// cache fill so a restart can warm-start the cache.
func (s *Site) PersistTriplet(id xmltree.FragmentID, version, fp uint64, enc []byte) {
	s.mu.RLock()
	fs := s.store
	s.mu.RUnlock()
	if fs == nil {
		return
	}
	if err := fs.PutTriplet(id, version, fp, enc); err != nil {
		s.mu.Lock()
		s.noteStoreErr(err)
		s.mu.Unlock()
	}
}

// StoreErr returns the first persistence failure the site observed, if
// any. A site with a failing store keeps serving from memory; operators
// check this (and the store's own sticky error) at checkpoint time.
func (s *Site) StoreErr() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.storeErr
}

// noteStoreErr records the first persistence failure. Callers hold mu.
func (s *Site) noteStoreErr(err error) {
	if err != nil && s.storeErr == nil {
		s.storeErr = err
	}
}

// FragmentIDs returns the stored fragments' IDs in ascending order. With
// a bounded store attached this lists only the resident fragments; the
// store itself knows the full live set.
func (s *Site) FragmentIDs() []xmltree.FragmentID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]xmltree.FragmentID, 0, len(s.fragments))
	for id := range s.fragments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Put stores algorithm state under a key.
func (s *Site) Put(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state[key] = v
}

// Get retrieves algorithm state.
func (s *Site) Get(key string) (any, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.state[key]
	return v, ok
}

// GetOrPut returns the state stored under key, creating it with mk (under
// the site lock, so exactly once) when absent. Handlers use it for
// lazily created per-site singletons like the triplet cache.
func (s *Site) GetOrPut(key string, mk func() any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.state[key]; ok {
		return v
	}
	v := mk()
	s.state[key] = v
	return v
}

// Delete removes algorithm state.
func (s *Site) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.state, key)
}

// dispatch runs the registered handler for the request, behind the
// site's admission controller (when one is set): requests past the
// watermarks are shed with an OverloadError before any work happens, and
// a context that is already expired is declined for free — both the
// in-process transport and both TCP server paths funnel through here, so
// admission is uniform across transports.
func (s *Site) dispatch(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	// observe gates the stats counters: the obs.stats scrape itself is
	// excluded so monitoring does not pollute the paper's per-site
	// visit/message/byte table.
	observe := req.Kind != StatsKind
	var start time.Time
	if observe {
		start = time.Now()
		s.stats.Visits.Add(1)
		s.stats.MessagesIn.Add(1)
		s.stats.BytesIn.Add(uint64(len(req.Payload)))
	}
	s.mu.RLock()
	h, ok := s.handlers[req.Kind]
	adm := s.admit
	if adm != nil && s.admitExempt[req.Kind] {
		adm = nil
	}
	s.mu.RUnlock()
	if !ok {
		return Response{}, fmt.Errorf("cluster: site %s has no handler for %q", s.id, req.Kind)
	}
	release, err := adm.admit(s.id, req)
	if err != nil {
		if observe {
			s.stats.Sheds.Add(1)
		}
		// The admission decision is itself a span-worthy event: a
		// traced request that was shed shows up in the tree as a
		// zero-work "admit" span instead of vanishing.
		_, asp := obs.StartSpan(ctx, string(s.id), "admit "+req.Kind)
		asp.SetAttr("shed", 1)
		asp.End()
		return Response{}, err
	}
	defer release()
	hctx, hsp := obs.StartSpan(ctx, string(s.id), "handle "+req.Kind)
	resp, err := h(hctx, s, req)
	if hsp != nil {
		hsp.SetAttr("steps", resp.Steps)
		hsp.End()
	}
	if observe {
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				s.stats.DeadlineExpired.Add(1)
			} else {
				s.stats.Errors.Add(1)
			}
		} else {
			s.stats.MessagesOut.Add(1)
			s.stats.BytesOut.Add(uint64(len(resp.Payload)))
			s.stats.Steps.Add(uint64(resp.Steps))
			s.stats.CacheHits.Add(uint64(resp.CacheHits))
			s.stats.CacheMisses.Add(uint64(resp.CacheMisses))
			s.stats.Latency.Observe(time.Since(start).Nanoseconds())
		}
	}
	return resp, err
}

// Cluster is the in-process simulated LAN.
type Cluster struct {
	cost CostModel

	mu    sync.RWMutex
	sites map[frag.SiteID]*Site

	metrics *Metrics
}

// New creates an empty cluster with the given cost model.
func New(cost CostModel) *Cluster {
	return &Cluster{
		cost:    cost,
		sites:   make(map[frag.SiteID]*Site),
		metrics: NewMetrics(),
	}
}

// Cost returns the cluster's cost model.
func (c *Cluster) Cost() CostModel { return c.cost }

// Metrics returns the cluster's accounting.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// AddSite creates (or returns the existing) site with the given name.
func (c *Cluster) AddSite(id frag.SiteID) *Site {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.sites[id]; ok {
		return s
	}
	s := NewSite(id)
	c.sites[id] = s
	return s
}

// Site returns the site with the given name.
func (c *Cluster) Site(id frag.SiteID) (*Site, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.sites[id]
	return s, ok
}

// Sites returns all site names, sorted.
func (c *Cluster) Sites() []frag.SiteID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]frag.SiteID, 0, len(c.sites))
	for id := range c.sites {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ErrUnknownSite is returned for calls to sites that do not exist.
var ErrUnknownSite = errors.New("cluster: unknown site")

// Call sends a request from site `from` to site `to`, executing the
// handler synchronously in the caller's goroutine. Local calls (from == to)
// are free of network cost and are not counted as visits, matching the
// paper's accounting.
func (c *Cluster) Call(ctx context.Context, from, to frag.SiteID, req Request) (Response, CallCost, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, CallCost{}, err
	}
	c.mu.RLock()
	site, ok := c.sites[to]
	c.mu.RUnlock()
	if !ok {
		return Response{}, CallCost{}, fmt.Errorf("%w: %s", ErrUnknownSite, to)
	}
	remote := from != to
	var cost CallCost
	cost.ReqBytes = len(req.Payload)
	if remote {
		if c.cost.RealDelays {
			sleepCtx(ctx, c.cost.Latency+c.cost.TransferTime(cost.ReqBytes))
		}
	}
	// A traced remote call gets a client-side "call" span; the callee's
	// handler spans parent under it. The in-process transport shares the
	// caller's collector directly (no wire, no piggyback).
	dctx := ctx
	var callSpan obs.Span
	tc, traced := obs.FromContext(ctx)
	if traced && remote {
		callSpan = obs.Span{
			TraceID: tc.TraceID,
			ID:      obs.NewSpanID(),
			Parent:  tc.SpanID,
			Site:    string(to),
			Name:    "call " + req.Kind,
		}
		child := tc
		child.SpanID = callSpan.ID
		dctx = obs.WithTrace(ctx, child)
	}
	start := time.Now()
	resp, err := site.dispatch(dctx, req)
	cost.Wall = time.Since(start)
	if traced && remote {
		callSpan.Start = start.UnixNano()
		callSpan.Dur = cost.Wall.Nanoseconds()
		tc.Collector.Add(callSpan)
	}
	cost.Steps = resp.Steps
	cost.Compute = c.cost.ComputeTime(resp.Steps)
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			c.metrics.recordShed(to)
		case errors.Is(err, context.DeadlineExceeded):
			c.metrics.recordExpired(to)
		}
		c.metrics.recordError(to)
		return Response{}, cost, fmt.Errorf("cluster: %s→%s %s: %w", from, to, req.Kind, err)
	}
	cost.RespBytes = len(resp.Payload)
	if remote {
		cost.Net = c.cost.RoundTrip(cost.ReqBytes, cost.RespBytes)
		if c.cost.RealDelays {
			sleepCtx(ctx, c.cost.Latency+c.cost.TransferTime(cost.RespBytes))
		}
	}
	c.metrics.record(from, to, req, resp, cost, remote)
	return resp, cost, nil
}

// Go implements AsyncTransport for the in-process cluster: the handler
// runs in its own goroutine, exactly as the engine's fan-outs always
// ran it, so the deterministic CostModel accounting (and RealDelays
// sleeping) of Call is preserved call for call.
func (c *Cluster) Go(ctx context.Context, from, to frag.SiteID, req Request) <-chan Reply {
	return goViaCall(ctx, c, from, to, req)
}

// SubscribeDeltas implements DeltaSubscriber by registering fn directly
// on the target site.
func (c *Cluster) SubscribeDeltas(_ context.Context, _, to frag.SiteID, fn func([]byte)) (func(), error) {
	c.mu.RLock()
	site, ok := c.sites[to]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSite, to)
	}
	return site.SubscribeDeltas(fn), nil
}

func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

package cluster

// Wire protocol v2: the multiplexed, pipelined framing the TCP transport
// speaks by default. Where v1 holds a connection exclusively for one
// request/response round trip (head-of-line blocking every concurrent
// caller to the same site), v2 tags every frame with a varint request ID
// so unlimited requests are in flight per connection and responses
// return in whatever order the site finishes them.
//
// Handshake (once per connection, client first):
//
//	client → server: [v2Magic, version]
//	server → client: [v2Magic, version]  (accept)
//	                 [v2Magic, 0]        (reject: unsupported version)
//
// v2Magic (0xB2) is unambiguous against v1 traffic: a v1 request begins
// with the uvarint length of its kind string, and kinds are short ASCII
// names, so a v1 first byte is always < 0x80. A server therefore sniffs
// the first byte to serve both protocols on one port (or to reject v1
// peers cleanly when configured to, see ServeConfig.RequireV2).
//
// Frames after the handshake:
//
//	request:  uvarint id, uvarint deadline budget (µs, 0 = none),
//	          uvarint trace ID (0 = tracing off; when non-zero a
//	          uvarint parent span ID follows),
//	          uvarint kind length, kind,
//	          uvarint payload length, payload
//	response: uvarint id, one status byte (0 ok, 1 error, 2 deadline
//	          expired, 3 overloaded), uvarint steps,
//	          uvarint cache hits, uvarint cache misses,
//	          uvarint span block length, span block (obs.EncodeSpans;
//	          empty for untraced requests),
//	          uvarint body length, body (payload, error text, or for
//	          status 3 a uvarint retry-after hint in µs)
//
// The deadline field propagates the caller's remaining budget to the
// server as a RELATIVE duration (relative budgets need no clock
// synchronization between peers): the server derives a per-request
// context from it, aborts evaluation when it expires, and answers
// status 2 instead of silently finishing work nobody is waiting for.
// Status 3 is admission control shedding the request with a typed
// retryable error carrying the server's retry-after hint.
//
// Cancellation is per request: a caller whose context expires gets its
// error immediately and its request ID is abandoned — the connection is
// never torn down and the late response, when it eventually arrives, is
// discarded by the demultiplexer. Only a connection-level I/O error
// fails the connection, and then every pending call fails with it.

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/frag"
	"repro/internal/obs"
)

const (
	// v2Magic opens every v2 handshake byte pair. Deliberately ≥ 0x80 so
	// it can never be mistaken for a v1 kind-length byte.
	v2Magic byte = 0xB2
	// v2Version is the protocol version this build speaks. Version 3
	// added the optional trace-context fields on requests and the span
	// block on responses; version 4 added server-initiated push frames
	// (tcpStatusPush, request ID 0) for maintenance-delta subscriptions.
	// The handshake requires an exact match, so version-skewed binaries
	// fail loudly instead of misparsing frames.
	v2Version byte = 4
	// v2Reject is the version byte of a rejection reply.
	v2Reject byte = 0
	// maxKind bounds accepted request kind strings; real kinds are short
	// dotted names ("parbox.evalQual").
	maxKind = 1 << 10
	// maxDeadlineMicros bounds the deadline budget a frame may carry
	// (≈1h in µs): an absurd — corrupt or hostile — value must not arm an
	// effectively-infinite server timer. Encoder and decoder both clamp,
	// so decode ∘ encode is the identity on every frame this build emits.
	maxDeadlineMicros = uint64(time.Hour / time.Microsecond)
)

// ErrProtocolVersion marks handshake failures: the peer does not speak
// wire protocol v2 (or speaks a version this build does not).
var ErrProtocolVersion = errors.New("cluster: wire protocol version mismatch")

// --- frame codecs ----------------------------------------------------------

// appendV2Request appends one encoded v2 request frame. deadlineMicros
// is the caller's remaining budget in microseconds (0 = no deadline),
// clamped to maxDeadlineMicros. traceID 0 means tracing off and adds a
// single zero byte; a non-zero traceID is followed by the parent span
// ID so the server can attach its spans under the caller's RPC span.
func appendV2Request(dst []byte, id, deadlineMicros, traceID, parentSpan uint64, kind string, payload []byte) []byte {
	if deadlineMicros > maxDeadlineMicros {
		deadlineMicros = maxDeadlineMicros
	}
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, deadlineMicros)
	dst = binary.AppendUvarint(dst, traceID)
	if traceID != 0 {
		dst = binary.AppendUvarint(dst, parentSpan)
	}
	dst = binary.AppendUvarint(dst, uint64(len(kind)))
	dst = append(dst, kind...)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// readV2Request reads one request frame. kind and payload are freshly
// allocated: v2 handlers run concurrently with the reader, so frames
// cannot share a connection-scoped scratch buffer the way v1 does.
// deadlineMicros is clamped like the encoder clamps it.
func readV2Request(r *bufio.Reader) (id, deadlineMicros, traceID, parentSpan uint64, kind string, payload []byte, err error) {
	if id, err = binary.ReadUvarint(r); err != nil {
		return 0, 0, 0, 0, "", nil, err
	}
	if deadlineMicros, err = binary.ReadUvarint(r); err != nil {
		return 0, 0, 0, 0, "", nil, err
	}
	if deadlineMicros > maxDeadlineMicros {
		deadlineMicros = maxDeadlineMicros
	}
	if traceID, err = binary.ReadUvarint(r); err != nil {
		return 0, 0, 0, 0, "", nil, err
	}
	if traceID != 0 {
		if parentSpan, err = binary.ReadUvarint(r); err != nil {
			return 0, 0, 0, 0, "", nil, err
		}
	}
	kn, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, 0, 0, "", nil, err
	}
	if kn > maxKind {
		return 0, 0, 0, 0, "", nil, fmt.Errorf("%w (kind %d bytes)", errFrameTooBig, kn)
	}
	kb := make([]byte, kn)
	if _, err = io.ReadFull(r, kb); err != nil {
		return 0, 0, 0, 0, "", nil, err
	}
	pn, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, 0, 0, "", nil, err
	}
	if pn > maxFrame {
		return 0, 0, 0, 0, "", nil, errFrameTooBig
	}
	payload = make([]byte, pn)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, 0, 0, "", nil, err
	}
	return id, deadlineMicros, traceID, parentSpan, string(kb), payload, nil
}

// appendV2Response appends one encoded v2 response frame. The span
// block piggybacks the server-side spans of a traced request; for the
// (overwhelmingly common) untraced case it is a single zero byte.
func appendV2Response(dst []byte, id uint64, status byte, resp Response) []byte {
	dst = binary.AppendUvarint(dst, id)
	dst = append(dst, status)
	dst = binary.AppendUvarint(dst, uint64(resp.Steps))
	dst = binary.AppendUvarint(dst, uint64(resp.CacheHits))
	dst = binary.AppendUvarint(dst, uint64(resp.CacheMisses))
	if len(resp.Spans) == 0 {
		dst = binary.AppendUvarint(dst, 0) // one zero byte when untraced
	} else {
		spanBlock := obs.EncodeSpans(nil, resp.Spans)
		dst = binary.AppendUvarint(dst, uint64(len(spanBlock)))
		dst = append(dst, spanBlock...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(resp.Payload)))
	return append(dst, resp.Payload...)
}

// readV2Response reads one response frame. The body is freshly
// allocated: responses demultiplex to concurrent callers that own their
// payloads.
func readV2Response(r *bufio.Reader) (id uint64, status byte, resp Response, err error) {
	if id, err = binary.ReadUvarint(r); err != nil {
		return 0, 0, Response{}, err
	}
	if status, err = r.ReadByte(); err != nil {
		return 0, 0, Response{}, err
	}
	steps, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, Response{}, err
	}
	hits, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, Response{}, err
	}
	misses, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, Response{}, err
	}
	sn, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, Response{}, err
	}
	if sn > maxFrame {
		return 0, 0, Response{}, errFrameTooBig
	}
	var spans []obs.Span
	if sn > 0 {
		sb := make([]byte, sn)
		if _, err = io.ReadFull(r, sb); err != nil {
			return 0, 0, Response{}, err
		}
		var used int
		spans, used, err = obs.DecodeSpans(sb)
		if err != nil {
			return 0, 0, Response{}, err
		}
		if used != len(sb) {
			return 0, 0, Response{}, errors.New("cluster: span block has trailing bytes")
		}
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, Response{}, err
	}
	if n > maxFrame {
		return 0, 0, Response{}, errFrameTooBig
	}
	body := make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, 0, Response{}, err
	}
	resp = Response{Payload: body, Steps: int64(steps), CacheHits: int64(hits), CacheMisses: int64(misses), Spans: spans}
	return id, status, resp, nil
}

// --- client: multiplexed connection ---------------------------------------

// muxConn is one multiplexed v2 connection. A single writer goroutine
// owns the socket's write side (requests from any number of callers
// funnel through wr), a demux reader goroutine owns the read side and
// matches responses to pending calls by request ID. A per-call context
// that expires resolves only that call; the connection survives. A
// connection-level I/O error fails every pending call, closes the
// socket and reports the conn broken to its owner.
type muxConn struct {
	conn net.Conn
	// peer identifies the site this connection serves; typed shed and
	// deadline errors name it.
	peer frag.SiteID

	wr     chan []byte   // encoded request frames for the writer goroutine
	broken chan struct{} // closed once the conn has failed

	// onBroken, set by the owning transport, removes the conn from its
	// pool; called exactly once, before pending calls are failed.
	onBroken func(*muxConn)

	mu      sync.Mutex
	pending map[uint64]*muxPending
	nextID  uint64
	err     error // sticky connection failure

	// pushSubs are the connection's push-frame observers: every
	// tcpStatusPush body fans out to each. Request IDs start at 1, so a
	// push frame (ID 0) can never race a pending call.
	pushMu   sync.Mutex
	pushSubs map[uint64]func([]byte)
	pushNext uint64
}

// muxPending is one in-flight call: its completion callback (invoked
// exactly once, from whichever of response arrival / context expiry /
// connection failure happens first) and the stop handle of its context
// watcher.
type muxPending struct {
	complete func(Response, error)
	stop     func() bool
}

// newMuxConn wraps an already-handshaken connection and starts its
// writer and reader goroutines.
func newMuxConn(conn net.Conn, r *bufio.Reader, peer frag.SiteID, onBroken func(*muxConn)) *muxConn {
	c := &muxConn{
		conn:     conn,
		peer:     peer,
		wr:       make(chan []byte, 16),
		broken:   make(chan struct{}),
		onBroken: onBroken,
		pending:  make(map[uint64]*muxPending),
	}
	go c.writeLoop()
	go c.readLoop(r)
	return c
}

func (c *muxConn) writeLoop() {
	w := bufio.NewWriter(c.conn)
	for {
		select {
		case buf := <-c.wr:
			if _, err := w.Write(buf); err != nil {
				c.fail(err)
				return
			}
			// Flush only once the queue is momentarily empty: a burst of
			// pipelined requests coalesces into few syscalls.
			if len(c.wr) == 0 {
				if err := w.Flush(); err != nil {
					c.fail(err)
					return
				}
			}
		case <-c.broken:
			return
		}
	}
}

func (c *muxConn) readLoop(r *bufio.Reader) {
	for {
		id, status, resp, err := readV2Response(r)
		if err != nil {
			c.fail(err)
			return
		}
		// Server-initiated push frames are not replies: route them to the
		// push observers and never to a pending call.
		if status == tcpStatusPush {
			c.deliverPush(resp.Payload)
			continue
		}
		// Error statuses keep any piggybacked spans: a traced request
		// that was shed or expired still shows its server-side spans.
		switch status {
		case tcpStatusErr:
			c.finish(id, Response{Spans: resp.Spans}, fmt.Errorf("%w: %s", ErrRemote, resp.Payload))
		case tcpStatusDeadline:
			c.finish(id, Response{Spans: resp.Spans}, &DeadlineError{Site: c.peer})
		case tcpStatusOverload:
			c.finish(id, Response{Spans: resp.Spans}, &OverloadError{Site: c.peer, RetryAfter: decodeRetryAfter(resp.Payload)})
		default:
			c.finish(id, resp, nil)
		}
	}
}

// subscribePush registers fn to receive every push-frame body arriving
// on this connection and returns a cancel function. Delivery runs on the
// connection's reader goroutine — fn must be cheap and non-blocking.
func (c *muxConn) subscribePush(fn func([]byte)) (cancel func()) {
	c.pushMu.Lock()
	defer c.pushMu.Unlock()
	if c.pushSubs == nil {
		c.pushSubs = make(map[uint64]func([]byte))
	}
	id := c.pushNext
	c.pushNext++
	c.pushSubs[id] = fn
	return func() {
		c.pushMu.Lock()
		defer c.pushMu.Unlock()
		delete(c.pushSubs, id)
	}
}

func (c *muxConn) deliverPush(payload []byte) {
	c.pushMu.Lock()
	fns := make([]func([]byte), 0, len(c.pushSubs))
	for _, fn := range c.pushSubs {
		fns = append(fns, fn)
	}
	c.pushMu.Unlock()
	for _, fn := range fns {
		fn(payload)
	}
}

// send registers a new call and enqueues its frame. complete is invoked
// exactly once with the outcome; ctx expiry resolves only this call.
// traceID/parentSpan propagate the caller's trace context to the server
// (0 trace ID = tracing off, costing one zero byte on the wire).
func (c *muxConn) send(ctx context.Context, kind string, payload []byte, traceID, parentSpan uint64, complete func(Response, error)) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		complete(Response{}, err)
		return
	}
	c.nextID++
	id := c.nextID
	p := &muxPending{complete: complete}
	c.pending[id] = p
	c.mu.Unlock()

	// Watch the caller's context. finish() reads p.stop under c.mu, so
	// publish it there; if the call already resolved (response or conn
	// failure raced in), stop the watcher ourselves.
	stop := context.AfterFunc(ctx, func() {
		c.finish(id, Response{}, context.Cause(ctx))
	})
	c.mu.Lock()
	if cur, ok := c.pending[id]; ok && cur == p {
		p.stop = stop
		c.mu.Unlock()
	} else {
		c.mu.Unlock()
		stop()
	}

	// Propagate the caller's remaining budget as a relative deadline. A
	// deadline that has already passed still encodes as 1µs, not 0 (the
	// no-deadline sentinel): the race belongs to the server, which answers
	// status 2 without dispatching.
	var deadlineMicros uint64
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl) / time.Microsecond
		if rem < 1 {
			rem = 1
		}
		deadlineMicros = uint64(rem)
	}
	frame := appendV2Request(make([]byte, 0, 44+len(kind)+len(payload)), id, deadlineMicros, traceID, parentSpan, kind, payload)
	select {
	case c.wr <- frame:
	case <-c.broken:
		// The writer is gone; fail() already resolved (or will resolve)
		// every pending call, including this one.
	case <-ctx.Done():
		// The peer socket has stalled long enough to fill the write
		// queue and this caller's context fired while waiting to
		// enqueue. Resolve this call now — finish() dedupes against the
		// AfterFunc watcher — so a per-request deadline bounds the call
		// even when the frame never made it onto the wire.
		c.finish(id, Response{}, context.Cause(ctx))
	}
}

// finish resolves call id exactly once; late or unknown ids (abandoned
// by context expiry) are dropped silently.
func (c *muxConn) finish(id uint64, resp Response, err error) {
	c.mu.Lock()
	p, ok := c.pending[id]
	var stop func() bool
	if ok {
		delete(c.pending, id)
		stop = p.stop
	}
	c.mu.Unlock()
	if !ok {
		return
	}
	if stop != nil {
		stop()
	}
	p.complete(resp, err)
}

// fail marks the connection broken: every pending call resolves with
// err, the socket closes, and the owner drops the conn from its pool.
func (c *muxConn) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = fmt.Errorf("cluster: connection failed: %w", err)
	failErr := c.err
	pend := c.pending
	c.pending = make(map[uint64]*muxPending)
	close(c.broken)
	c.mu.Unlock()
	c.conn.Close()
	if c.onBroken != nil {
		c.onBroken(c)
	}
	for _, p := range pend {
		if p.stop != nil {
			p.stop()
		}
		p.complete(Response{}, failErr)
	}
}

// close tears the connection down (transport Close): pending calls fail.
func (c *muxConn) close() {
	c.fail(errors.New("transport closed"))
}

// clientHandshake performs the v2 handshake on a fresh connection,
// bounded by timeout. The returned reader may hold buffered bytes and
// must be the one the reader loop consumes.
func clientHandshake(conn net.Conn, timeout time.Duration) (*bufio.Reader, error) {
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	}
	if _, err := conn.Write([]byte{v2Magic, v2Version}); err != nil {
		return nil, fmt.Errorf("%w: sending handshake: %v", ErrProtocolVersion, err)
	}
	r := bufio.NewReader(conn)
	var reply [2]byte
	if _, err := io.ReadFull(r, reply[:]); err != nil {
		return nil, fmt.Errorf("%w: peer closed during handshake (v1 peer?): %v", ErrProtocolVersion, err)
	}
	if reply[0] != v2Magic || reply[1] != v2Version {
		return nil, fmt.Errorf("%w: peer answered [%#x %#x], want [%#x %#x]",
			ErrProtocolVersion, reply[0], reply[1], v2Magic, v2Version)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	return r, nil
}

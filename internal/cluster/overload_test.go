package cluster

// Tests for overload protection: the admission controller, wire-level
// deadline propagation (a budget that expired must provably stop
// server-side work), typed shed responses over TCP, and the seedable
// fault injectors the chaos suites script with.

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/frag"
)

func TestAdmissionInflightWatermark(t *testing.T) {
	a := &admission{lim: AdmissionLimits{MaxInflight: 2}}
	r1, err := a.admit("S", Request{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.admit("S", Request{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.admit("S", Request{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third admit error = %v, want overloaded", err)
	}
	if hint := RetryAfterHint(errShed(t, a)); hint != 2*DefaultRetryAfterBase {
		t.Fatalf("hint = %v, want %v (2 inflight × base)", hint, 2*DefaultRetryAfterBase)
	}
	if a.Sheds() != 2 {
		t.Fatalf("sheds = %d, want 2", a.Sheds())
	}
	r1()
	r3, err := a.admit("S", Request{})
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	r2()
	r3()
}

func errShed(t *testing.T, a *admission) error {
	t.Helper()
	_, err := a.admit("S", Request{})
	if err == nil {
		t.Fatal("admit unexpectedly succeeded")
	}
	return err
}

func TestAdmissionCostWatermark(t *testing.T) {
	a := &admission{
		lim:      AdmissionLimits{MaxCost: 100},
		estimate: func(req Request) int64 { return int64(len(req.Payload)) },
	}
	// A single request heavier than the watermark must still admit into an
	// empty site — otherwise it deadlocks against its own weight.
	release, err := a.admit("S", Request{Payload: make([]byte, 500)})
	if err != nil {
		t.Fatalf("oversized request into empty site: %v", err)
	}
	if _, err := a.admit("S", Request{Payload: make([]byte, 10)}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second admit past cost watermark: err = %v, want overloaded", err)
	}
	release()
	if release, err = a.admit("S", Request{Payload: make([]byte, 10)}); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	release()
	if a == nil {
		t.Fatal("unreachable")
	}
	// nil controller admits everything.
	var nilAdm *admission
	rel, err := nilAdm.admit("S", Request{})
	if err != nil || rel == nil {
		t.Fatalf("nil admission: %v", err)
	}
	rel()
}

// rawV2Call dials the server, handshakes v2, and exchanges exactly one
// frame with an explicit deadline budget — bypassing the transport so the
// test controls the wire deadline independently of any client context.
func rawV2Call(t *testing.T, addr string, deadlineMicros uint64, kind string, payload []byte) (byte, Response) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r, err := clientHandshake(conn, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	frame := appendV2Request(nil, 1, deadlineMicros, 0, 0, kind, payload)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	id, status, resp, err := readV2Response(r)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("response id = %d, want 1", id)
	}
	return status, resp
}

// TestWireDeadlinePreExpired: a request arriving with an (effectively)
// already-expired budget must do zero evaluation work at the site and
// answer status 2. The handler gates all its work on the context, so the
// assertion holds however the 1µs expiry races goroutine scheduling.
func TestWireDeadlinePreExpired(t *testing.T) {
	site := NewSite("R")
	var work atomic.Int64
	site.Handle("eval", func(ctx context.Context, _ *Site, _ Request) (Response, error) {
		select {
		case <-ctx.Done():
			return Response{}, ctx.Err()
		case <-time.After(10 * time.Second):
			work.Add(1)
			return Response{Payload: []byte("did work nobody waited for")}, nil
		}
	})
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	status, _ := rawV2Call(t, srv.Addr(), 1, "eval", nil)
	if status != tcpStatusDeadline {
		t.Fatalf("status = %d, want %d (deadline expired)", status, tcpStatusDeadline)
	}
	if n := work.Load(); n != 0 {
		t.Fatalf("pre-expired request did %d units of work, want 0", n)
	}
}

// TestWireDeadlineMidFlight: a budget that expires while the handler runs
// aborts the evaluation partway — the site answers status 2 and the
// handler provably stopped early (fewer steps than a full run).
func TestWireDeadlineMidFlight(t *testing.T) {
	const totalSteps = 1000
	site := NewSite("R")
	var steps atomic.Int64
	site.Handle("eval", func(ctx context.Context, _ *Site, _ Request) (Response, error) {
		for i := 0; i < totalSteps; i++ {
			if err := ctx.Err(); err != nil {
				return Response{}, err // the per-fragment abort point
			}
			steps.Add(1)
			time.Sleep(time.Millisecond)
		}
		return Response{Payload: []byte("full run")}, nil
	})
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	budget := uint64(50_000) // 50ms: expires mid-loop
	status, _ := rawV2Call(t, srv.Addr(), budget, "eval", nil)
	if status != tcpStatusDeadline {
		t.Fatalf("status = %d, want %d (deadline expired)", status, tcpStatusDeadline)
	}
	if n := steps.Load(); n == 0 || n >= totalSteps {
		t.Fatalf("steps = %d, want mid-flight abort in (0, %d)", n, totalSteps)
	}
}

// TestWireDeadlineZeroMeansNone: budget 0 is the no-deadline sentinel —
// the request runs unbounded, exactly today's behavior for v1 peers and
// deadline-less callers.
func TestWireDeadlineZeroMeansNone(t *testing.T) {
	site := NewSite("R")
	site.Handle("echo", echoHandler)
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	status, resp := rawV2Call(t, srv.Addr(), 0, "echo", []byte("hi"))
	if status != tcpStatusOK || string(resp.Payload) != "hi" {
		t.Fatalf("status %d payload %q, want ok %q", status, resp.Payload, "hi")
	}
}

// TestDeadlinePropagatesThroughTransport: a client context deadline rides
// the wire and aborts server-side work even though the server dispatches
// handlers with no client connection state — the regression test for the
// deadline-propagation tentpole end to end through the real transport.
func TestDeadlinePropagatesThroughTransport(t *testing.T) {
	site := NewSite("R")
	var aborted atomic.Bool
	started := make(chan struct{})
	site.Handle("stall", func(ctx context.Context, _ *Site, _ Request) (Response, error) {
		close(started)
		select {
		case <-ctx.Done():
			aborted.Store(true)
			return Response{}, ctx.Err()
		case <-time.After(30 * time.Second):
			return Response{Payload: []byte("never")}, nil
		}
	})
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer tr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, _, err = tr.Call(ctx, "C", "R", Request{Kind: "stall"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	<-started
	// The server-side handler must observe the expiry via the propagated
	// wire deadline (its own context), not merely the client giving up.
	deadline := time.After(5 * time.Second)
	for !aborted.Load() {
		select {
		case <-deadline:
			t.Fatal("server-side handler never saw the propagated deadline")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestAdmissionShedOverTCP: a saturated site sheds with a typed,
// retryable overload error carrying a retry-after hint; exempt kinds
// (probes) pass; the client transport counts the sheds it observes.
func TestAdmissionShedOverTCP(t *testing.T) {
	site := NewSite("R")
	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	site.Handle("eval", func(ctx context.Context, _ *Site, _ Request) (Response, error) {
		entered <- struct{}{}
		<-block
		return Response{Payload: []byte("done")}, nil
	})
	site.Handle("probe", echoHandler)
	site.SetAdmission(AdmissionLimits{MaxInflight: 1})
	site.ExemptFromAdmission("probe")
	srv, err := Serve(site, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NewTCPTransport(map[frag.SiteID]string{"R": srv.Addr()})
	defer tr.Close()
	ctx := context.Background()

	first := tr.Go(ctx, "C", "R", Request{Kind: "eval"})
	<-entered // the slot is taken

	_, _, err = tr.Call(ctx, "C", "R", Request{Kind: "eval"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated call err = %v, want overloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Site != "R" || oe.RetryAfter <= 0 {
		t.Fatalf("shed error = %#v, want typed with site R and a positive hint", err)
	}
	// Probes must never shed: an overloaded site is busy, not dead.
	if resp, _, err := tr.Call(ctx, "C", "R", Request{Kind: "probe", Payload: []byte("up?")}); err != nil || string(resp.Payload) != "up?" {
		t.Fatalf("probe under overload: %v %q", err, resp.Payload)
	}
	close(block)
	if r := <-first; r.Err != nil {
		t.Fatalf("admitted call failed: %v", r.Err)
	}
	if n := tr.Metrics().TotalSheds(); n != 1 {
		t.Fatalf("client-side shed count = %d, want 1", n)
	}
	if n := site.AdmissionSheds(); n != 1 {
		t.Fatalf("server-side shed count = %d, want 1", n)
	}
}

// okTransport answers every call successfully; the fault injectors wrap
// it so tests observe exactly the injected behavior.
type okTransport struct{}

func (okTransport) Call(ctx context.Context, from, to frag.SiteID, req Request) (Response, CallCost, error) {
	return Response{Payload: req.Payload}, CallCost{}, nil
}

// TestSeededFaultsReplay: the same seeds produce the same flake schedule
// and the same jittered delays, so chaos runs are reproducible.
func TestSeededFaultsReplay(t *testing.T) {
	run := func() []bool {
		ft := &FaultyTransport{Inner: okTransport{}}
		ft.FlakySite("B", 0.5, rand.NewSource(99))
		outcomes := make([]bool, 64)
		for i := range outcomes {
			_, _, err := ft.Call(context.Background(), "A", "B", Request{Kind: "x"})
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(), run()
	sawFail, sawOK := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: same seed, different outcome", i)
		}
		if a[i] {
			sawFail = true
		} else {
			sawOK = true
		}
	}
	if !sawFail || !sawOK {
		t.Fatalf("p=0.5 schedule degenerate (fail=%v ok=%v)", sawFail, sawOK)
	}
}

func TestOverloadSiteFault(t *testing.T) {
	ft := &FaultyTransport{Inner: okTransport{}}
	ft.OverloadSite("B", 3*time.Millisecond)
	_, _, err := ft.Call(context.Background(), "A", "B", Request{Kind: "x"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want overloaded", err)
	}
	if hint := RetryAfterHint(err); hint != 3*time.Millisecond {
		t.Fatalf("hint = %v, want 3ms", hint)
	}
	// Local calls are never faulted.
	if _, _, err := ft.Call(context.Background(), "B", "B", Request{Kind: "x"}); err != nil {
		t.Fatalf("local call faulted: %v", err)
	}
	ft.ReviveSite("B")
	if _, _, err := ft.Call(context.Background(), "A", "B", Request{Kind: "x"}); err != nil {
		t.Fatalf("revived call: %v", err)
	}
}

func TestSlowSiteJitterSeeded(t *testing.T) {
	ft := &FaultyTransport{Inner: okTransport{}}
	ft.SlowSite("B", 4*time.Millisecond, rand.NewSource(7))
	start := time.Now()
	if _, _, err := ft.Call(context.Background(), "A", "B", Request{}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("jittered delay %v below d/2", el)
	}
	// A slow site still honors call cancellation.
	ft.SlowSite("B", 10*time.Second, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := ft.Call(ctx, "A", "B", Request{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow call under deadline: %v", err)
	}
}

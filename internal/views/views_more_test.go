package views

import (
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestRefreshMatchesIncremental(t *testing.T) {
	c, forest, st := deploy(t)
	ctx := context.Background()
	prog := xpath.MustCompileString(`//stock[sell = "999"]`)
	v, err := Materialize(ctx, c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	f3, _ := forest.Fragment(3)
	sell := f3.Root.FindAll("sell")[0]
	if _, err := v.Update(ctx, 3, []UpdateOp{{Op: OpSetText, Path: PathOf(sell), Text: "999"}}); err != nil {
		t.Fatal(err)
	}
	incr := v.Answer()
	if err := v.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if v.Answer() != incr {
		t.Errorf("Refresh answer %v != incremental %v", v.Answer(), incr)
	}
	if !incr {
		t.Error("expected true after the price update")
	}
}

func TestSplitAtRootAndVirtualRejected(t *testing.T) {
	c, forest, st := deploy(t)
	ctx := context.Background()
	prog := xpath.MustCompileString(`//x`)
	v, err := Materialize(ctx, c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Splitting at the fragment root is invalid.
	if _, _, err := v.Split(ctx, 0, nil, ""); err == nil {
		t.Error("split at fragment root accepted")
	}
	// Splitting at a virtual node is invalid: find F1's virtual node path.
	f0, _ := forest.Fragment(0)
	var vpath []int
	for _, vn := range f0.Root.VirtualNodes() {
		vpath = PathOf(vn)
		break
	}
	if _, _, err := v.Split(ctx, 0, vpath, ""); err == nil {
		t.Error("split at virtual node accepted")
	}
	// Unknown fragment.
	if _, _, err := v.Split(ctx, 77, []int{0}, ""); err == nil {
		t.Error("split of unknown fragment accepted")
	}
	// Out-of-range path.
	if _, _, err := v.Split(ctx, 0, []int{44}, ""); err == nil {
		t.Error("split at bad path accepted")
	}
}

func TestMergeOfNestedChildRejected(t *testing.T) {
	c, _, st := deploy(t)
	ctx := context.Background()
	prog := xpath.MustCompileString(`//x`)
	v, err := Materialize(ctx, c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	// F1 still has sub-fragment F2: merging F1 into F0 must be refused
	// until F2 is merged first (the view requires bottom-up merging).
	if _, err := v.Merge(ctx, 0, 1); err == nil {
		t.Error("merge of a fragment with children accepted")
	}
	// Unknown fragments.
	if _, err := v.Merge(ctx, 0, 77); err == nil {
		t.Error("merge of unknown child accepted")
	}
	if _, err := v.Merge(ctx, 77, 1); err == nil {
		t.Error("merge into unknown parent accepted")
	}
	// Bottom-up order works: F2 into F1, then F1 into F0.
	if _, err := v.Merge(ctx, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Merge(ctx, 0, 1); err != nil {
		t.Fatal(err)
	}
	if v.SourceTree().Count() != 2 {
		t.Errorf("count after merges = %d, want 2", v.SourceTree().Count())
	}
}

func TestSplitToSameSite(t *testing.T) {
	c, forest, st := deploy(t)
	ctx := context.Background()
	prog := xpath.MustCompileString(`//stock[code = "IBM"]`)
	v, err := Materialize(ctx, c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	before := v.Answer()
	f0, _ := forest.Fragment(0)
	nyse := f0.Root.FindAll("market")[0]
	// Empty target keeps the new fragment at the same site.
	newID, mc, err := v.Split(ctx, 0, PathOf(nyse), "")
	if err != nil {
		t.Fatal(err)
	}
	if v.Answer() != before {
		t.Error("same-site split changed the answer")
	}
	e, _ := v.SourceTree().Entry(newID)
	if e.Site != "S0" {
		t.Errorf("new fragment at %s, want S0", e.Site)
	}
	if len(mc.SitesVisited) != 1 {
		t.Errorf("same-site split visited %v", mc.SitesVisited)
	}
	// The fragment is now stored at S0.
	s0, _ := c.Site("S0")
	if _, ok := s0.Fragment(newID); !ok {
		t.Error("S0 does not store the new fragment")
	}
}

func TestUpdateOpCodecsReject(t *testing.T) {
	// Truncated / malformed payloads must be rejected by every decoder.
	bad := [][]byte{nil, {1}, {200, 200}, {0, 0}}
	for _, buf := range bad {
		if _, _, _, err := decodeApplyUpdateReq(buf); err == nil {
			t.Errorf("decodeApplyUpdateReq(%v) accepted", buf)
		}
		if _, _, _, _, _, err := decodeSplitReq(buf); err == nil {
			t.Errorf("decodeSplitReq(%v) accepted", buf)
		}
		if _, _, _, _, err := decodeAdoptReq(buf); err == nil {
			t.Errorf("decodeAdoptReq(%v) accepted", buf)
		}
		if _, _, _, _, err := decodeMergeReq(buf); err == nil {
			t.Errorf("decodeMergeReq(%v) accepted", buf)
		}
	}
	// Round trips.
	prog := xpath.MustCompileString(`//a`).Encode()
	ops := []UpdateOp{{Op: OpInsert, Path: []int{1, 2}, Label: "x", Text: "y"}}
	p2, id, ops2, err := decodeApplyUpdateReq(encodeApplyUpdateReq(prog, 7, ops))
	if err != nil || id != 7 || len(ops2) != 1 || ops2[0].Label != "x" || len(p2) != len(prog) {
		t.Errorf("applyUpdate round trip: %v %d %v", err, id, ops2)
	}
	p3, id3, path, newID, target, err := decodeSplitReq(encodeSplitReq(prog, 3, []int{0, 1}, 9, "S7"))
	if err != nil || id3 != 3 || newID != 9 || target != "S7" || len(path) != 2 || len(p3) != len(prog) {
		t.Errorf("split round trip: %v", err)
	}
	p4, id4, parent, sub, err := decodeAdoptReq(encodeAdoptReq(prog, 5, 2, []byte{1, 2, 3}))
	if err != nil || id4 != 5 || parent != 2 || len(sub) != 3 || len(p4) != len(prog) {
		t.Errorf("adopt round trip: %v", err)
	}
	p5, id5, child, site, err := decodeMergeReq(encodeMergeReq(prog, 1, 2, "S9"))
	if err != nil || id5 != 1 || child != 2 || site != "S9" || len(p5) != len(prog) {
		t.Errorf("merge round trip: %v", err)
	}
}

func TestHandlersRejectUnknownFragment(t *testing.T) {
	c := cluster.New(cluster.DefaultCostModel())
	site := c.AddSite("X")
	RegisterHandlers(site, c)
	core.RegisterHandlers(site, c, c.Cost())
	ctx := context.Background()
	prog := xpath.MustCompileString(`//a`).Encode()
	calls := []cluster.Request{
		{Kind: KindApplyUpdate, Payload: encodeApplyUpdateReq(prog, 9, nil)},
		{Kind: KindSplit, Payload: encodeSplitReq(prog, 9, []int{0}, 10, "")},
		{Kind: KindMerge, Payload: encodeMergeReq(prog, 9, 10, "")},
		{Kind: KindYield, Payload: encodeFragIDReq(9)},
	}
	for _, req := range calls {
		if _, _, err := c.Call(ctx, "X", "X", req); err == nil {
			t.Errorf("%s for unknown fragment accepted", req.Kind)
		}
	}
}

func TestAdoptHandler(t *testing.T) {
	c := cluster.New(cluster.DefaultCostModel())
	site := c.AddSite("X")
	RegisterHandlers(site, c)
	ctx := context.Background()
	prog := xpath.MustCompileString(`//b`)
	subtree := xmltree.NewElement("a", "", xmltree.NewElement("b", ""))
	resp, _, err := c.Call(ctx, "X", "X", cluster.Request{
		Kind:    KindAdopt,
		Payload: encodeAdoptReq(prog.Encode(), 4, 0, xmltree.Encode(subtree)),
	})
	if err != nil {
		t.Fatal(err)
	}
	tb, size, err := decodeTripletSizeResp(resp.Payload)
	if err != nil || size != 2 || len(tb) == 0 {
		t.Fatalf("adopt response: %v size=%d", err, size)
	}
	if _, ok := site.Fragment(4); !ok {
		t.Error("fragment not adopted")
	}
	// Bad subtree bytes must fail.
	if _, _, err := c.Call(ctx, "X", "X", cluster.Request{
		Kind:    KindAdopt,
		Payload: encodeAdoptReq(prog.Encode(), 5, 0, []byte{9, 9, 9}),
	}); err == nil {
		t.Error("bad subtree accepted")
	}
}

func TestMaintenanceCostFields(t *testing.T) {
	c, forest, st := deploy(t)
	ctx := context.Background()
	prog := xpath.MustCompileString(`//stock`)
	v, err := Materialize(ctx, c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := forest.Fragment(1)
	name := f1.Root.FindAll("name")[0]
	mc, err := v.Update(ctx, 1, []UpdateOp{{Op: OpSetText, Path: PathOf(name), Text: "zzz"}})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Bytes <= 0 || mc.Steps <= 0 || mc.Elapsed <= 0 {
		t.Errorf("MaintenanceCost not populated: %+v", mc)
	}
	var z frag.SiteID = "S1"
	if len(mc.SitesVisited) != 1 || mc.SitesVisited[0] != z {
		t.Errorf("SitesVisited = %v", mc.SitesVisited)
	}
}

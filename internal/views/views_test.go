package views

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fixtures"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// deploy builds the Fig. 2 cluster with both query and view handlers.
func deploy(t *testing.T) (*cluster.Cluster, *frag.Forest, *frag.SourceTree) {
	t.Helper()
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultCostModel())
	_, err = core.Deploy(c, forest, frag.Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := fixtures.Fig2SourceTree(forest)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range st.Sites() {
		site, _ := c.Site(id)
		RegisterHandlers(site, c)
	}
	return c, forest, st
}

// oracle centrally evaluates the forest's current contents.
func oracle(t *testing.T, forest *frag.Forest, prog *xpath.Program) bool {
	t.Helper()
	doc, err := forest.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := eval.Evaluate(doc, prog)
	if err != nil {
		t.Fatal(err)
	}
	return ans
}

func TestMaterialize(t *testing.T) {
	c, forest, st := deploy(t)
	prog := xpath.MustCompileString(`//stock[code = "GOOG" && sell = "373"]`)
	v, err := Materialize(context.Background(), c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.Answer(), oracle(t, forest, prog); got != want {
		t.Errorf("Answer = %v, want %v", got, want)
	}
	if !v.Answer() {
		t.Error("fixture query should be true")
	}
}

func TestUpdateFlipsAnswer(t *testing.T) {
	c, forest, st := deploy(t)
	ctx := context.Background()
	// "Did GOOG reach a sell price of 376?" — the intro's standing query.
	prog := xpath.MustCompileString(`//stock[code = "GOOG" && sell = "376"]`)
	v, err := Materialize(ctx, c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	if v.Answer() {
		t.Fatal("initially false")
	}
	// F3 (Bache NASDAQ) holds GOOG at sell=373; the sell node is
	// market/stock[0]/sell → path to text holder.
	f3, _ := forest.Fragment(3)
	sell := f3.Root.FindAll("sell")[0]
	mc, err := v.Update(ctx, 3, []UpdateOp{{Op: OpSetText, Path: PathOf(sell), Text: "376"}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Answer() {
		t.Error("view did not flip to true after the price update")
	}
	if !mc.Recomputed {
		t.Error("a flipping update must re-solve")
	}
	if len(mc.SitesVisited) != 1 || mc.SitesVisited[0] != "S2" {
		t.Errorf("visited %v, want [S2] only (localized recomputation)", mc.SitesVisited)
	}
	if got, want := v.Answer(), oracle(t, forest, prog); got != want {
		t.Errorf("Answer = %v, oracle %v", got, want)
	}
	// Flip back.
	if _, err := v.Update(ctx, 3, []UpdateOp{{Op: OpSetText, Path: PathOf(sell), Text: "373"}}); err != nil {
		t.Fatal(err)
	}
	if v.Answer() {
		t.Error("view did not flip back")
	}
}

func TestUpdateIrrelevantSkipsSolve(t *testing.T) {
	c, forest, st := deploy(t)
	ctx := context.Background()
	prog := xpath.MustCompileString(`//stock[code = "GOOG" && sell = "376"]`)
	v, err := Materialize(ctx, c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Insert an unrelated element in F3: triplet unchanged → no re-solve.
	f3, _ := forest.Fragment(3)
	name := f3.Root.FindAll("name")[0]
	mc, err := v.Update(ctx, 3, []UpdateOp{{Op: OpInsert, Path: PathOf(name), Label: "note", Text: "hi"}})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Recomputed {
		t.Error("an irrelevant insert must not re-solve (identical triplet)")
	}
	if got, want := v.Answer(), oracle(t, forest, prog); got != want {
		t.Errorf("Answer = %v, oracle %v", got, want)
	}
}

func TestUpdateVisitsOnlyOwningSite(t *testing.T) {
	c, forest, st := deploy(t)
	ctx := context.Background()
	prog := xpath.MustCompileString(`//stock[code = "YHOO"]`)
	v, err := Materialize(ctx, c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	c.Metrics().Reset()
	f1, _ := forest.Fragment(1)
	target := f1.Root.FindAll("name")[0]
	if _, err := v.Update(ctx, 1, []UpdateOp{{Op: OpInsert, Path: PathOf(target), Label: "x"}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Site("S1").Visits; got != 1 {
		t.Errorf("S1 visits = %d, want 1", got)
	}
	for _, s := range []frag.SiteID{"S2"} {
		if got := c.Metrics().Site(s).Visits; got != 0 {
			t.Errorf("%s visits = %d, want 0 — no other site may be touched", s, got)
		}
	}
}

// TestUpdateTrafficIndependentOfDataAndUpdateSize pins Section 5's cost
// claim: maintenance traffic does not grow with fragment size, nor with
// the number of updated nodes.
func TestUpdateTrafficIndependentOfDataAndUpdateSize(t *testing.T) {
	run := func(padding, opsN int) int64 {
		doc := fixtures.Portfolio()
		market := doc.Children[0].Children[1]
		for i := 0; i < padding; i++ {
			market.AppendChild(fixtures.Stock("PAD", "1", "2"))
		}
		forest := frag.NewForest(doc)
		if _, err := forest.Split(market); err != nil {
			t.Fatal(err)
		}
		c := cluster.New(cluster.DefaultCostModel())
		if _, err := core.Deploy(c, forest, frag.Assignment{0: "S0", 1: "S1"}); err != nil {
			t.Fatal(err)
		}
		st, err := frag.BuildSourceTree(forest, frag.Assignment{0: "S0", 1: "S1"})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range st.Sites() {
			site, _ := c.Site(id)
			RegisterHandlers(site, c)
		}
		ctx := context.Background()
		prog := xpath.MustCompileString(`//stock[code = "ZZZ"]`)
		v, err := Materialize(ctx, c, "S0", st, prog)
		if err != nil {
			t.Fatal(err)
		}
		ops := make([]UpdateOp, opsN)
		for i := range ops {
			ops[i] = UpdateOp{Op: OpInsert, Path: []int{0}, Label: "noise"}
		}
		mc, err := v.Update(ctx, 1, ops)
		if err != nil {
			t.Fatal(err)
		}
		return mc.Bytes - int64(opsSize(ops)) // exclude the request itself
	}
	// The response carries the fragment's node count as a uvarint, so a few
	// bytes of varint-width jitter are expected; anything beyond that would
	// mean the triplet scaled with the data.
	const tol = 4
	smallData := run(5, 1)
	bigData := run(2000, 1)
	if d := bigData - smallData; d > tol || d < -tol {
		t.Errorf("maintenance traffic grew with |T|: %d vs %d", smallData, bigData)
	}
	oneOp := run(50, 1)
	manyOps := run(50, 40)
	if d := manyOps - oneOp; d > tol || d < -tol {
		t.Errorf("response traffic grew with update size: %d vs %d", oneOp, manyOps)
	}
}

func opsSize(ops []UpdateOp) int {
	n := 0
	for _, op := range ops {
		n += len(appendOp(nil, op))
	}
	return n
}

func TestSplitKeepsAnswerAndState(t *testing.T) {
	c, forest, st := deploy(t)
	ctx := context.Background()
	prog := xpath.MustCompileString(`//stock[code = "YHOO"]`)
	v, err := Materialize(ctx, c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	before := v.Answer()

	// Split Bache's NYSE market out of F0 and assign it to a new site S3
	// (the Section 5 example ends with F4 assigned to a new site).
	s3 := c.AddSite("S3")
	core.RegisterHandlers(s3, c, c.Cost())
	RegisterHandlers(s3, c)
	f0, _ := forest.Fragment(0)
	nyse := f0.Root.FindAll("market")[0]
	newID, _, err := v.Split(ctx, 0, PathOf(nyse), "S3")
	if err != nil {
		t.Fatal(err)
	}
	if v.Answer() != before {
		t.Error("splitFragments changed the cached answer")
	}
	vst := v.SourceTree()
	e, ok := vst.Entry(newID)
	if !ok || e.Site != "S3" || e.Parent != 0 {
		t.Errorf("source tree entry for F%d = %+v", newID, e)
	}
	// The view must keep answering correctly after further updates that
	// touch the NEW fragment at its NEW site.
	site3, _ := c.Site("S3")
	fr, ok := site3.Fragment(newID)
	if !ok {
		t.Fatal("S3 did not adopt the new fragment")
	}
	ibmSell := fr.Root.FindAll("sell")[0]
	prog2 := v.Query()
	_ = prog2
	if _, err := v.Update(ctx, newID, []UpdateOp{{Op: OpSetText, Path: PathOf(ibmSell), Text: "999"}}); err != nil {
		t.Fatal(err)
	}
	// Oracle: the forest object no longer reflects S3's copy (the subtree
	// was shipped), so rebuild a fresh engine over the view's source tree.
	eng := core.NewEngine(c, "S0", v.SourceTree(), c.Cost())
	rep, err := eng.ParBoX(ctx, v.Query())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Answer != v.Answer() {
		t.Errorf("view answer %v diverged from fresh evaluation %v", v.Answer(), rep.Answer)
	}
}

func TestMergeRestoresFragmentCount(t *testing.T) {
	c, _, st := deploy(t)
	ctx := context.Background()
	prog := xpath.MustCompileString(`//stock[code = "YHOO"]`)
	v, err := Materialize(ctx, c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	before := v.Answer()
	// F2 lives at S2 while its parent F1 lives at S1: a remote merge.
	mc, err := v.Merge(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Answer() != before {
		t.Error("mergeFragments changed the cached answer")
	}
	if v.SourceTree().Count() != 3 {
		t.Errorf("source tree has %d fragments after merge, want 3", v.SourceTree().Count())
	}
	if len(mc.SitesVisited) != 2 {
		t.Errorf("remote merge visited %v, want the two involved sites", mc.SitesVisited)
	}
	// Fresh evaluation over the updated layout still agrees.
	eng := core.NewEngine(c, "S0", v.SourceTree(), c.Cost())
	rep, err := eng.ParBoX(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Answer != v.Answer() {
		t.Errorf("post-merge evaluation %v != view %v", rep.Answer, v.Answer())
	}
	// Merging a non-sub-fragment must fail.
	if _, err := v.Merge(ctx, 0, 2); err == nil {
		t.Error("merge of a non-child must fail")
	}
}

func TestUpdateErrors(t *testing.T) {
	c, _, st := deploy(t)
	ctx := context.Background()
	prog := xpath.MustCompileString(`//x`)
	v, err := Materialize(ctx, c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Update(ctx, 99, nil); err == nil {
		t.Error("unknown fragment must fail")
	}
	if _, err := v.Update(ctx, 0, []UpdateOp{{Op: OpDelete, Path: nil}}); err == nil {
		t.Error("deleting the fragment root must fail")
	}
	if _, err := v.Update(ctx, 0, []UpdateOp{{Op: OpInsert, Path: []int{99}, Label: "x"}}); err == nil {
		t.Error("out-of-range path must fail")
	}
	// Deleting a subtree containing a virtual node must be refused.
	f0path := []int{0} // broker Merill Lynch, contains virtual F1
	if _, err := v.Update(ctx, 0, []UpdateOp{{Op: OpDelete, Path: f0path}}); err == nil {
		t.Error("deleting a subtree with virtual nodes must fail")
	}
}

// TestPropIncrementalMatchesRecompute: after arbitrary random update
// sequences, the incrementally maintained answer equals recomputation from
// scratch — for random documents, fragmentations and queries.
func TestPropIncrementalMatchesRecompute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 2 + r.Intn(50)})
		forest := frag.NewForest(tree)
		if err := forest.SplitRandom(r, 1+r.Intn(5)); err != nil {
			return false
		}
		sites := []frag.SiteID{"S0", "S1", "S2"}
		assign := make(frag.Assignment)
		for _, id := range forest.IDs() {
			assign[id] = sites[r.Intn(len(sites))]
		}
		c := cluster.New(cluster.DefaultCostModel())
		if _, err := core.Deploy(c, forest, assign); err != nil {
			return false
		}
		st, err := frag.BuildSourceTree(forest, assign)
		if err != nil {
			return false
		}
		for _, id := range st.Sites() {
			site, _ := c.Site(id)
			RegisterHandlers(site, c)
		}
		ctx := context.Background()
		prog := xpath.Compile(xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true}))
		v, err := Materialize(ctx, c, "S0", st, prog)
		if err != nil {
			return false
		}
		// Apply 1..6 random updates, checking the invariant after each.
		for i := 0; i < 1+r.Intn(6); i++ {
			ids := forest.IDs()
			id := ids[r.Intn(len(ids))]
			fr, _ := forest.Fragment(id)
			var nodes []*xmltree.Node
			fr.Root.Walk(func(n *xmltree.Node) {
				if !n.Virtual {
					nodes = append(nodes, n)
				}
			})
			node := nodes[r.Intn(len(nodes))]
			var op UpdateOp
			switch r.Intn(3) {
			case 0:
				op = UpdateOp{Op: OpInsert, Path: PathOf(node), Label: "a", Text: "x"}
			case 1:
				op = UpdateOp{Op: OpSetText, Path: PathOf(node), Text: "y"}
			default:
				if node.Parent == nil || len(node.VirtualNodes()) > 0 {
					op = UpdateOp{Op: OpSetText, Path: PathOf(node), Text: "z"}
				} else {
					op = UpdateOp{Op: OpDelete, Path: PathOf(node)}
				}
			}
			if _, err := v.Update(ctx, id, []UpdateOp{op}); err != nil {
				t.Logf("update: %v (seed %d)", err, seed)
				return false
			}
			want := oracleQuiet(forest, prog)
			if v.Answer() != want {
				t.Logf("incremental %v != recompute %v after op %+v (seed %d)", v.Answer(), want, op, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func oracleQuiet(forest *frag.Forest, prog *xpath.Program) bool {
	doc, err := forest.Assemble()
	if err != nil {
		return false
	}
	ans, _, err := eval.Evaluate(doc, prog)
	if err != nil {
		return false
	}
	return ans
}

func TestPathHelpers(t *testing.T) {
	doc := fixtures.Portfolio()
	code := doc.FindAll("code")[2]
	p := PathOf(code)
	got, err := NodeAt(doc, p)
	if err != nil || got != code {
		t.Errorf("NodeAt(PathOf(code)) = %v, %v", got, err)
	}
	if _, err := NodeAt(doc, []int{9, 9}); err == nil {
		t.Error("bad path must fail")
	}
	if p := PathOf(doc); len(p) != 0 {
		t.Errorf("PathOf(root) = %v, want empty", p)
	}
}

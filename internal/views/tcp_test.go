package views

import (
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/frag"
	"repro/internal/xpath"
)

// TestViewsOverTCP maintains a materialized view across real sockets:
// updates at a remote TCP site, a cross-site split (subtree shipped over
// TCP to another daemon) and a cross-site merge.
func TestViewsOverTCP(t *testing.T) {
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	st, err := fixtures.Fig2SourceTree(forest)
	if err != nil {
		t.Fatal(err)
	}
	cost := cluster.DefaultCostModel()
	tr := cluster.NewTCPTransport(nil)
	defer tr.Close()
	var servers []*cluster.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	addrs := make(map[frag.SiteID]string)
	sitesByID := make(map[frag.SiteID]*cluster.Site)
	for _, siteID := range append(st.Sites(), "S3") {
		site := cluster.NewSite(siteID)
		for _, id := range st.FragmentsAt(siteID) {
			fr, _ := forest.Fragment(id)
			site.AddFragment(fr)
		}
		core.RegisterHandlers(site, tr, cost)
		RegisterHandlers(site, tr)
		sitesByID[siteID] = site
		if siteID == "S0" {
			tr.Local(site)
			continue
		}
		srv, err := cluster.Serve(site, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs[siteID] = srv.Addr()
	}
	tr.SetAddrs(addrs)

	ctx := context.Background()
	prog := xpath.MustCompileString(`//stock[code = "GOOG" && sell = "376"]`)
	v, err := Materialize(ctx, tr, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	if v.Answer() {
		t.Fatal("initially false")
	}

	// Price tick at the remote NASDAQ site (F3 at S2): market's first
	// stock's sell node is path [1 2].
	if _, err := v.Update(ctx, 3, []UpdateOp{{Op: OpSetText, Path: []int{1, 2}, Text: "376"}}); err != nil {
		t.Fatal(err)
	}
	if !v.Answer() {
		t.Error("view did not flip over TCP")
	}

	// Cross-site split: Bache's NYSE market (inside F0 at local S0) moves
	// to the remote S3 daemon — the subtree travels over the socket.
	s0 := sitesByID["S0"]
	f0, _ := s0.Fragment(0)
	nyse := f0.Root.FindAll("market")[0]
	newID, mc, err := v.Split(ctx, 0, PathOf(nyse), "S3")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Answer() {
		t.Error("split changed the answer")
	}
	if len(mc.SitesVisited) != 2 {
		t.Errorf("cross-site split visited %v", mc.SitesVisited)
	}
	if _, ok := sitesByID["S3"].Fragment(newID); !ok {
		t.Error("S3 daemon did not adopt the shipped fragment")
	}

	// Cross-site merge: F2 (at S2) folds into F1 (at S1) over the wire.
	if _, err := v.Merge(ctx, 1, 2); err != nil {
		t.Fatal(err)
	}
	if v.SourceTree().Count() != 4 { // 0, 1, 3, newID
		t.Errorf("fragment count after merge = %d, want 4", v.SourceTree().Count())
	}
	if !v.Answer() {
		t.Error("merge changed the answer")
	}

	// The maintained state still matches a fresh evaluation.
	eng := core.NewEngine(tr, "S0", v.SourceTree(), cost)
	rep, err := eng.ParBoX(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Answer != v.Answer() {
		t.Errorf("fresh evaluation %v != view %v", rep.Answer, v.Answer())
	}
}

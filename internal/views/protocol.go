// Package views implements Section 5 of the paper: materialized Boolean
// XPath views and their incremental maintenance.
//
// A materialized view M(q, T) is the pair (S_T, ans) — the source tree and
// the cached answer — augmented, exactly as the paper prescribes, with the
// triplet (V, CV, DV) of every fragment. The maintenance algorithm has the
// paper's two salient features:
//
//   - recomputation is localized: after updates inside fragment F_j, only
//     the site storing F_j re-runs Procedure bottomUp, and only on F_j;
//   - network traffic depends on neither |T| nor the size of the update —
//     only the O(|q|·card(F_j)) triplet travels.
//
// Updates come in two classes (Section 5): content updates (insNode,
// delNode) and fragmentation updates (splitFragments, mergeFragments).
// Nodes inside a fragment are addressed by child-index paths from the
// fragment root, so updates work identically over the in-process cluster
// and TCP sites.
package views

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/xmltree"
)

// Message kinds of the view-maintenance protocol.
const (
	// KindApplyUpdate applies content updates to one fragment and returns
	// the recomputed triplet.
	KindApplyUpdate = "views.applyUpdate"
	// KindSplit performs splitFragments(v) at the fragment's site,
	// optionally shipping the new fragment to another site.
	KindSplit = "views.split"
	// KindAdopt installs a shipped fragment at a site and returns its
	// triplet.
	KindAdopt = "views.adopt"
	// KindMerge performs mergeFragments(v): the fragment absorbs one of
	// its sub-fragments (fetched from its site if remote).
	KindMerge = "views.merge"
	// KindYield removes a fragment from a site and returns its subtree.
	KindYield = "views.yield"
	// KindRegisterProg registers a standing program (a subscription's
	// prepared query batch) for a set of fragments at their site: the
	// site keeps the program's triplets incrementally maintained across
	// updates and pushes a Delta whenever a fragment's root formulas
	// flip. The response carries the per-fragment baseline triplets.
	KindRegisterProg = "views.registerProg"
	// KindSetParent re-journals a stored fragment under a new parent — a
	// split that moves a subtree containing virtual nodes re-parents the
	// referenced sub-fragments, and ones stored away from the split site
	// are fixed through this message so their persisted Parent never goes
	// stale. The fragment's content is unchanged, so its version (and any
	// cached triplets) stays valid.
	KindSetParent = "views.setParent"
)

// OpKind is the content-update operation type.
type OpKind uint8

const (
	// OpInsert is insNode(A, v): insert a node labeled Label (with
	// optional Text) as the last child of the node at Path.
	OpInsert OpKind = iota
	// OpDelete is delNode(v): delete the node at Path (and its subtree).
	OpDelete
	// OpSetText replaces the text content of the node at Path. (A
	// convenience composite of delNode/insNode on text, needed by every
	// realistic workload — e.g. a stock's sell price changing.)
	OpSetText
)

// UpdateOp is one primitive update, addressed by the child-index path from
// the fragment root (empty path = the root itself).
type UpdateOp struct {
	Op    OpKind
	Path  []int
	Label string // OpInsert
	Text  string // OpInsert, OpSetText
}

// ErrBadUpdate is wrapped by update decoding/application failures.
var ErrBadUpdate = errors.New("views: bad update")

// NodeAt resolves a child-index path from root.
func NodeAt(root *xmltree.Node, path []int) (*xmltree.Node, error) {
	n := root
	for depth, i := range path {
		if i < 0 || i >= len(n.Children) {
			return nil, fmt.Errorf("%w: index %d out of range at depth %d", ErrBadUpdate, i, depth)
		}
		n = n.Children[i]
	}
	return n, nil
}

// PathOf computes the child-index path of a node within its fragment
// (climbing Parent pointers to the fragment root).
func PathOf(node *xmltree.Node) []int {
	var rev []int
	for n := node; n.Parent != nil; n = n.Parent {
		idx := -1
		for i, c := range n.Parent.Children {
			if c == n {
				idx = i
				break
			}
		}
		rev = append(rev, idx)
	}
	path := make([]int, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path
}

// Touched reports the nodes one applied op affected, in the vocabulary
// of eval.Plane.Patch: a freshly inserted subtree root, a node whose
// in-place inputs changed (a setText target, or the parent a child was
// deleted from), and a detached subtree root.
type Touched struct {
	Fresh   *xmltree.Node
	Dirty   *xmltree.Node
	Removed *xmltree.Node
}

// Apply executes the op against a fragment root, mutating it in place.
func (op UpdateOp) Apply(root *xmltree.Node) error {
	_, err := op.ApplyTracked(root)
	return err
}

// ApplyTracked executes the op and reports which nodes it touched, so
// incremental maintenance can recompute only the affected spines.
func (op UpdateOp) ApplyTracked(root *xmltree.Node) (Touched, error) {
	n, err := NodeAt(root, op.Path)
	if err != nil {
		return Touched{}, err
	}
	switch op.Op {
	case OpInsert:
		if n.Virtual {
			return Touched{}, fmt.Errorf("%w: cannot insert under a virtual node", ErrBadUpdate)
		}
		c := n.AppendChild(xmltree.NewElement(op.Label, op.Text))
		return Touched{Fresh: c}, nil
	case OpDelete:
		if n.Parent == nil {
			return Touched{}, fmt.Errorf("%w: cannot delete the fragment root", ErrBadUpdate)
		}
		if len(n.VirtualNodes()) > 0 {
			return Touched{}, fmt.Errorf("%w: subtree contains virtual nodes; merge sub-fragments first", ErrBadUpdate)
		}
		parent := n.Parent
		parent.RemoveChild(n)
		return Touched{Dirty: parent, Removed: n}, nil
	case OpSetText:
		if n.Virtual {
			return Touched{}, fmt.Errorf("%w: virtual nodes carry no text", ErrBadUpdate)
		}
		n.Text = op.Text
		return Touched{Dirty: n}, nil
	default:
		return Touched{}, fmt.Errorf("%w: unknown op %d", ErrBadUpdate, op.Op)
	}
}

// --- codecs ----------------------------------------------------------------

func appendOp(dst []byte, op UpdateOp) []byte {
	dst = append(dst, byte(op.Op))
	dst = binary.AppendUvarint(dst, uint64(len(op.Path)))
	for _, i := range op.Path {
		dst = binary.AppendUvarint(dst, uint64(i))
	}
	dst = binary.AppendUvarint(dst, uint64(len(op.Label)))
	dst = append(dst, op.Label...)
	dst = binary.AppendUvarint(dst, uint64(len(op.Text)))
	dst = append(dst, op.Text...)
	return dst
}

type opReader struct {
	buf []byte
	pos int
}

func (r *opReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at %d", ErrBadUpdate, r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *opReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.buf)-r.pos) {
		return "", fmt.Errorf("%w: string overruns buffer", ErrBadUpdate)
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *opReader) op() (UpdateOp, error) {
	var op UpdateOp
	if r.pos >= len(r.buf) {
		return op, fmt.Errorf("%w: truncated op", ErrBadUpdate)
	}
	op.Op = OpKind(r.buf[r.pos])
	r.pos++
	n, err := r.uvarint()
	if err != nil {
		return op, err
	}
	if n > uint64(len(r.buf)-r.pos) {
		return op, fmt.Errorf("%w: path overruns buffer", ErrBadUpdate)
	}
	op.Path = make([]int, n)
	for i := range op.Path {
		v, err := r.uvarint()
		if err != nil {
			return op, err
		}
		op.Path[i] = int(v)
	}
	if op.Label, err = r.str(); err != nil {
		return op, err
	}
	if op.Text, err = r.str(); err != nil {
		return op, err
	}
	return op, nil
}

// applyUpdateReq: program, fragment ID, ops.
func encodeApplyUpdateReq(prog []byte, id xmltree.FragmentID, ops []UpdateOp) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(prog)))
	dst = append(dst, prog...)
	dst = binary.AppendUvarint(dst, uint64(uint32(id)))
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for _, op := range ops {
		dst = appendOp(dst, op)
	}
	return dst
}

func decodeApplyUpdateReq(buf []byte) (prog []byte, id xmltree.FragmentID, ops []UpdateOp, err error) {
	r := &opReader{buf: buf}
	pn, err := r.uvarint()
	if err != nil {
		return nil, 0, nil, err
	}
	if pn > uint64(len(buf)-r.pos) {
		return nil, 0, nil, fmt.Errorf("%w: program overruns buffer", ErrBadUpdate)
	}
	prog = buf[r.pos : r.pos+int(pn)]
	r.pos += int(pn)
	idRaw, err := r.uvarint()
	if err != nil {
		return nil, 0, nil, err
	}
	id = xmltree.FragmentID(uint32(idRaw))
	opn, err := r.uvarint()
	if err != nil {
		return nil, 0, nil, err
	}
	if opn > uint64(len(buf)-r.pos)+1 {
		return nil, 0, nil, fmt.Errorf("%w: op count overruns buffer", ErrBadUpdate)
	}
	ops = make([]UpdateOp, opn)
	for i := range ops {
		if ops[i], err = r.op(); err != nil {
			return nil, 0, nil, err
		}
	}
	if r.pos != len(buf) {
		return nil, 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadUpdate, len(buf)-r.pos)
	}
	return prog, id, ops, nil
}

// tripletSizeResp: encoded triplet plus the fragment's new size.
func encodeTripletSizeResp(triplet []byte, size int) []byte {
	dst := binary.AppendUvarint(nil, uint64(size))
	dst = binary.AppendUvarint(dst, uint64(len(triplet)))
	return append(dst, triplet...)
}

func decodeTripletSizeResp(buf []byte) (triplet []byte, size int, err error) {
	r := &opReader{buf: buf}
	sz, err := r.uvarint()
	if err != nil {
		return nil, 0, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if n > uint64(len(buf)-r.pos) {
		return nil, 0, fmt.Errorf("%w: triplet overruns buffer", ErrBadUpdate)
	}
	triplet = buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	if r.pos != len(buf) {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadUpdate, len(buf)-r.pos)
	}
	return triplet, int(sz), nil
}

// registerReq: program, fragment IDs.
func encodeRegisterReq(prog []byte, ids []xmltree.FragmentID) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(prog)))
	dst = append(dst, prog...)
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = binary.AppendUvarint(dst, uint64(uint32(id)))
	}
	return dst
}

func decodeRegisterReq(buf []byte) (prog []byte, ids []xmltree.FragmentID, err error) {
	r := &opReader{buf: buf}
	pn, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if pn > uint64(len(buf)-r.pos) {
		return nil, nil, fmt.Errorf("%w: program overruns buffer", ErrBadUpdate)
	}
	prog = buf[r.pos : r.pos+int(pn)]
	r.pos += int(pn)
	cnt, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if cnt > uint64(len(buf)-r.pos)+1 {
		return nil, nil, fmt.Errorf("%w: id list overruns buffer", ErrBadUpdate)
	}
	ids = make([]xmltree.FragmentID, cnt)
	for i := range ids {
		v, verr := r.uvarint()
		if verr != nil {
			return nil, nil, verr
		}
		ids[i] = xmltree.FragmentID(uint32(v))
	}
	if r.pos != len(buf) {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadUpdate, len(buf)-r.pos)
	}
	return prog, ids, nil
}

// RegItem is one fragment's registration baseline: its triplet under the
// standing program, computed at the given version.
type RegItem struct {
	Frag    xmltree.FragmentID
	Version uint64
	Triplet []byte
}

func encodeRegisterResp(items []RegItem) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(items)))
	for _, it := range items {
		dst = binary.AppendUvarint(dst, uint64(uint32(it.Frag)))
		dst = binary.AppendUvarint(dst, it.Version)
		dst = binary.AppendUvarint(dst, uint64(len(it.Triplet)))
		dst = append(dst, it.Triplet...)
	}
	return dst
}

func decodeRegisterResp(buf []byte) ([]RegItem, error) {
	r := &opReader{buf: buf}
	cnt, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if cnt > uint64(len(buf)-r.pos)+1 {
		return nil, fmt.Errorf("%w: item count overruns buffer", ErrBadUpdate)
	}
	items := make([]RegItem, cnt)
	for i := range items {
		idRaw, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		items[i].Frag = xmltree.FragmentID(uint32(idRaw))
		if items[i].Version, err = r.uvarint(); err != nil {
			return nil, err
		}
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(buf)-r.pos) {
			return nil, fmt.Errorf("%w: triplet overruns buffer", ErrBadUpdate)
		}
		items[i].Triplet = buf[r.pos : r.pos+int(n)]
		r.pos += int(n)
	}
	if r.pos != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadUpdate, len(buf)-r.pos)
	}
	return items, nil
}

// Delta is one pushed maintenance notification: after an update to Frag,
// the standing program FP's root formulas changed from the previous
// version's. Flip words record which lanes flipped per vector (all-zero
// when only the formula structure changed — possible with virtual
// nodes); Triplet is the full new encoding, so a subscriber re-solves
// without a round trip.
type Delta struct {
	Frag                  xmltree.FragmentID
	Version               uint64
	FP                    uint64
	FlipV, FlipCV, FlipDV uint64
	Triplet               []byte
}

// Encode renders the delta in the wire form DecodeDelta reads.
func (d Delta) Encode() []byte {
	dst := binary.AppendUvarint(nil, uint64(uint32(d.Frag)))
	dst = binary.AppendUvarint(dst, d.Version)
	dst = binary.AppendUvarint(dst, d.FP)
	dst = binary.AppendUvarint(dst, d.FlipV)
	dst = binary.AppendUvarint(dst, d.FlipCV)
	dst = binary.AppendUvarint(dst, d.FlipDV)
	dst = binary.AppendUvarint(dst, uint64(len(d.Triplet)))
	return append(dst, d.Triplet...)
}

// DecodeDelta parses a pushed delta payload.
func DecodeDelta(buf []byte) (Delta, error) {
	var d Delta
	r := &opReader{buf: buf}
	idRaw, err := r.uvarint()
	if err != nil {
		return d, err
	}
	d.Frag = xmltree.FragmentID(uint32(idRaw))
	if d.Version, err = r.uvarint(); err != nil {
		return d, err
	}
	if d.FP, err = r.uvarint(); err != nil {
		return d, err
	}
	if d.FlipV, err = r.uvarint(); err != nil {
		return d, err
	}
	if d.FlipCV, err = r.uvarint(); err != nil {
		return d, err
	}
	if d.FlipDV, err = r.uvarint(); err != nil {
		return d, err
	}
	n, err := r.uvarint()
	if err != nil {
		return d, err
	}
	if n > uint64(len(buf)-r.pos) {
		return d, fmt.Errorf("%w: delta triplet overruns buffer", ErrBadUpdate)
	}
	d.Triplet = buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	if r.pos != len(buf) {
		return d, fmt.Errorf("%w: %d trailing bytes", ErrBadUpdate, len(buf)-r.pos)
	}
	return d, nil
}

// splitReq: program, fragment, path of the split node, the new fragment's
// ID, and the site that should adopt it ("" keeps it at the same site).
func encodeSplitReq(prog []byte, id xmltree.FragmentID, path []int, newID xmltree.FragmentID, target string) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(prog)))
	dst = append(dst, prog...)
	dst = binary.AppendUvarint(dst, uint64(uint32(id)))
	dst = binary.AppendUvarint(dst, uint64(len(path)))
	for _, i := range path {
		dst = binary.AppendUvarint(dst, uint64(i))
	}
	dst = binary.AppendUvarint(dst, uint64(uint32(newID)))
	dst = binary.AppendUvarint(dst, uint64(len(target)))
	return append(dst, target...)
}

func decodeSplitReq(buf []byte) (prog []byte, id xmltree.FragmentID, path []int, newID xmltree.FragmentID, target string, err error) {
	r := &opReader{buf: buf}
	pn, err := r.uvarint()
	if err != nil {
		return
	}
	if pn > uint64(len(buf)-r.pos) {
		err = fmt.Errorf("%w: program overruns buffer", ErrBadUpdate)
		return
	}
	prog = buf[r.pos : r.pos+int(pn)]
	r.pos += int(pn)
	idRaw, err := r.uvarint()
	if err != nil {
		return
	}
	id = xmltree.FragmentID(uint32(idRaw))
	n, err := r.uvarint()
	if err != nil {
		return
	}
	if n > uint64(len(buf)-r.pos) {
		err = fmt.Errorf("%w: path overruns buffer", ErrBadUpdate)
		return
	}
	path = make([]int, n)
	for i := range path {
		v, verr := r.uvarint()
		if verr != nil {
			err = verr
			return
		}
		path[i] = int(v)
	}
	newRaw, err := r.uvarint()
	if err != nil {
		return
	}
	newID = xmltree.FragmentID(uint32(newRaw))
	target, err = r.str()
	if err != nil {
		return
	}
	if r.pos != len(buf) {
		err = fmt.Errorf("%w: %d trailing bytes", ErrBadUpdate, len(buf)-r.pos)
	}
	return
}

// splitResp: two (triplet, size) pairs — the revised fragment and the new
// fragment — followed by the sub-fragments the split subtree carried away
// (their parent is now the new fragment).
func encodeSplitResp(ownTriplet []byte, ownSize int, newTriplet []byte, newSize int, moved []xmltree.FragmentID) []byte {
	dst := encodeTripletSizeResp(ownTriplet, ownSize)
	dst = append(dst, encodeTripletSizeResp(newTriplet, newSize)...)
	dst = binary.AppendUvarint(dst, uint64(len(moved)))
	for _, id := range moved {
		dst = binary.AppendUvarint(dst, uint64(uint32(id)))
	}
	return dst
}

func decodeSplitResp(buf []byte) (own []byte, ownSize int, nw []byte, newSize int, moved []xmltree.FragmentID, err error) {
	// encodeTripletSizeResp is self-delimiting; walk the boundaries.
	r := &opReader{buf: buf}
	block := func() ([]byte, int, error) {
		sz, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		n, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		if n > uint64(len(buf)-r.pos) {
			return nil, 0, fmt.Errorf("%w: triplet overruns buffer", ErrBadUpdate)
		}
		t := buf[r.pos : r.pos+int(n)]
		r.pos += int(n)
		return t, int(sz), nil
	}
	if own, ownSize, err = block(); err != nil {
		return
	}
	if nw, newSize, err = block(); err != nil {
		return
	}
	cnt, err := r.uvarint()
	if err != nil {
		return
	}
	if cnt > uint64(len(buf)-r.pos)+1 {
		err = fmt.Errorf("%w: moved list overruns buffer", ErrBadUpdate)
		return
	}
	for i := uint64(0); i < cnt; i++ {
		v, verr := r.uvarint()
		if verr != nil {
			err = verr
			return
		}
		moved = append(moved, xmltree.FragmentID(uint32(v)))
	}
	if r.pos != len(buf) {
		err = fmt.Errorf("%w: %d trailing bytes", ErrBadUpdate, len(buf)-r.pos)
	}
	return
}

// setParentReq: fragment ID and its new parent fragment ID.
func encodeSetParentReq(id, parent xmltree.FragmentID) []byte {
	dst := binary.AppendUvarint(nil, uint64(uint32(id)))
	return binary.AppendUvarint(dst, uint64(uint32(parent)))
}

func decodeSetParentReq(buf []byte) (id, parent xmltree.FragmentID, err error) {
	r := &opReader{buf: buf}
	idRaw, err := r.uvarint()
	if err != nil {
		return
	}
	parentRaw, err := r.uvarint()
	if err != nil {
		return
	}
	if r.pos != len(buf) {
		err = fmt.Errorf("%w: %d trailing bytes", ErrBadUpdate, len(buf)-r.pos)
		return
	}
	return xmltree.FragmentID(uint32(idRaw)), xmltree.FragmentID(uint32(parentRaw)), nil
}

// adoptReq: program, fragment ID, parent fragment ID, subtree bytes.
func encodeAdoptReq(prog []byte, id, parent xmltree.FragmentID, subtree []byte) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(prog)))
	dst = append(dst, prog...)
	dst = binary.AppendUvarint(dst, uint64(uint32(id)))
	dst = binary.AppendUvarint(dst, uint64(parent+1))
	dst = binary.AppendUvarint(dst, uint64(len(subtree)))
	return append(dst, subtree...)
}

func decodeAdoptReq(buf []byte) (prog []byte, id, parent xmltree.FragmentID, subtree []byte, err error) {
	r := &opReader{buf: buf}
	pn, err := r.uvarint()
	if err != nil {
		return
	}
	if pn > uint64(len(buf)-r.pos) {
		err = fmt.Errorf("%w: program overruns buffer", ErrBadUpdate)
		return
	}
	prog = buf[r.pos : r.pos+int(pn)]
	r.pos += int(pn)
	idRaw, err := r.uvarint()
	if err != nil {
		return
	}
	id = xmltree.FragmentID(uint32(idRaw))
	parentRaw, err := r.uvarint()
	if err != nil {
		return
	}
	parent = xmltree.FragmentID(uint32(parentRaw)) - 1
	n, err := r.uvarint()
	if err != nil {
		return
	}
	if n > uint64(len(buf)-r.pos) {
		err = fmt.Errorf("%w: subtree overruns buffer", ErrBadUpdate)
		return
	}
	subtree = buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	if r.pos != len(buf) {
		err = fmt.Errorf("%w: %d trailing bytes", ErrBadUpdate, len(buf)-r.pos)
	}
	return
}

// fragIDReq: a bare fragment ID (yield requests).
func encodeFragIDReq(id xmltree.FragmentID) []byte {
	return binary.AppendUvarint(nil, uint64(uint32(id)))
}

func decodeFragIDReq(buf []byte) (xmltree.FragmentID, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 || n != len(buf) {
		return 0, fmt.Errorf("%w: bad fragment id request", ErrBadUpdate)
	}
	return xmltree.FragmentID(uint32(v)), nil
}

// mergeReq: program, parent fragment, child fragment, and the site holding
// the child ("" = same site).
func encodeMergeReq(prog []byte, id, child xmltree.FragmentID, childSite string) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(prog)))
	dst = append(dst, prog...)
	dst = binary.AppendUvarint(dst, uint64(uint32(id)))
	dst = binary.AppendUvarint(dst, uint64(uint32(child)))
	dst = binary.AppendUvarint(dst, uint64(len(childSite)))
	return append(dst, childSite...)
}

func decodeMergeReq(buf []byte) (prog []byte, id, child xmltree.FragmentID, childSite string, err error) {
	r := &opReader{buf: buf}
	pn, err := r.uvarint()
	if err != nil {
		return
	}
	if pn > uint64(len(buf)-r.pos) {
		err = fmt.Errorf("%w: program overruns buffer", ErrBadUpdate)
		return
	}
	prog = buf[r.pos : r.pos+int(pn)]
	r.pos += int(pn)
	idRaw, err := r.uvarint()
	if err != nil {
		return
	}
	id = xmltree.FragmentID(uint32(idRaw))
	childRaw, err := r.uvarint()
	if err != nil {
		return
	}
	child = xmltree.FragmentID(uint32(childRaw))
	childSite, err = r.str()
	if err != nil {
		return
	}
	if r.pos != len(buf) {
		err = fmt.Errorf("%w: %d trailing bytes", ErrBadUpdate, len(buf)-r.pos)
	}
	return
}

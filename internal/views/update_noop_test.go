package views

import (
	"context"
	"testing"

	"repro/internal/xpath"
)

// TestUpdateEmptyOpsIsNoOp: an empty update batch is a true no-op — no
// site visit (message counters frozen), no re-solve, zero
// MaintenanceCost — for both nil and empty-slice spellings. Guards the
// early return in View.Update against regressing into a site round trip
// that would bump the fragment version and invalidate cached triplets
// for nothing.
func TestUpdateEmptyOpsIsNoOp(t *testing.T) {
	c, _, st := deploy(t)
	ctx := context.Background()
	prog := xpath.MustCompileString(`//stock[code = "GOOG" && sell = "373"]`)
	v, err := Materialize(ctx, c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}
	before := v.Answer()
	msgsBefore := make(map[string]uint64)
	for _, id := range st.Sites() {
		site, _ := c.Site(id)
		msgsBefore[string(id)] = site.Stats().Snapshot().MessagesIn
	}
	for _, ops := range [][]UpdateOp{nil, {}} {
		mc, err := v.Update(ctx, 3, ops)
		if err != nil {
			t.Fatal(err)
		}
		if mc.Recomputed || mc.Bytes != 0 || mc.Steps != 0 || len(mc.SitesVisited) != 0 {
			t.Errorf("empty update cost %+v, want all-zero MaintenanceCost", mc)
		}
	}
	for _, id := range st.Sites() {
		site, _ := c.Site(id)
		if got := site.Stats().Snapshot().MessagesIn; got != msgsBefore[string(id)] {
			t.Errorf("site %s received %d messages during empty updates, want 0",
				id, got-msgsBefore[string(id)])
		}
	}
	if v.Answer() != before {
		t.Error("empty update changed the view answer")
	}
}

package views

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/boolexpr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// MaintenanceCost is the accounting of one maintenance operation, so tests
// (and EXPERIMENTS.md) can verify the paper's bounds: traffic independent
// of |T| and of the update size; recomputation localized to the updated
// fragment.
type MaintenanceCost struct {
	Bytes        int64
	Steps        int64
	SolveWork    int64
	SitesVisited []frag.SiteID
	Recomputed   bool // whether evalST had to re-run
	Elapsed      time.Duration
}

// View is a materialized Boolean XPath view M(q, T): the source tree, the
// cached answer, and — per Section 5 — the triplets of every fragment. The
// view lives at a "home" site (the paper's site S storing the state).
//
// Triplets are stored as ids into one long-lived arena: formulas arriving
// from the sites are hash-consed on decode, so the per-update "did the
// triplet change at all?" comparison — the gate that lets incremental
// maintenance terminate without re-solving — is a handful of integer
// compares instead of a structural formula walk.
type View struct {
	tr   cluster.Transport
	home frag.SiteID
	prog *xpath.Program
	// maxInflight bounds the site calls a Materialize/Refresh fan-out
	// keeps in flight (0 = unbounded), mirroring the engine's bound.
	maxInflight int

	mu       sync.Mutex
	st       *frag.SourceTree
	arena    *boolexpr.Arena
	triplets map[xmltree.FragmentID]eval.ArenaTriplet
	ans      bool
	nextID   xmltree.FragmentID
}

// arenaCompactAt bounds arena growth across a long-lived view's updates:
// once the arena holds this many nodes, the live triplets are re-interned
// into a fresh arena and the garbage of superseded triplets is dropped.
const arenaCompactAt = 1 << 16

// maybeCompact re-interns the live triplets into a fresh arena once the
// current one has accumulated too many dead nodes. It must run at most
// once per maintenance operation, BEFORE any triplet of that operation is
// decoded: compaction invalidates every id of the old arena, so decoded-
// but-not-yet-stored triplets must never straddle it. Callers hold v.mu.
func (v *View) maybeCompact() {
	if v.arena.Len() < arenaCompactAt {
		return
	}
	fresh := boolexpr.NewArena()
	memo := make(map[boolexpr.NodeID]*boolexpr.Formula)
	reintern := make(map[*boolexpr.Formula]boolexpr.NodeID)
	conv := func(ids []boolexpr.NodeID) []boolexpr.NodeID {
		out := make([]boolexpr.NodeID, len(ids))
		for i, id := range ids {
			out[i] = fresh.Import(v.arena.Export(id, memo), reintern)
		}
		return out
	}
	for id, t := range v.triplets {
		v.triplets[id] = eval.ArenaTriplet{V: conv(t.V), CV: conv(t.CV), DV: conv(t.DV)}
	}
	v.arena = fresh
}

// decodeTriplet interns a wire triplet into the view arena. Callers hold
// v.mu and have called maybeCompact at the top of the operation.
func (v *View) decodeTriplet(buf []byte) (eval.ArenaTriplet, error) {
	return eval.DecodeTripletArena(v.arena, buf)
}

// Materialize computes the view's initial state by running stage 2 of
// ParBoX over all sites and solving the equation system at the home site.
func Materialize(ctx context.Context, tr cluster.Transport, home frag.SiteID,
	st *frag.SourceTree, prog *xpath.Program) (*View, error) {
	return MaterializeBounded(ctx, tr, home, st, prog, 0)
}

// MaterializeBounded is Materialize with the fan-out's in-flight site
// calls capped at maxInflight (0 = unbounded); the bound sticks to the
// view and applies to later Refresh calls too.
func MaterializeBounded(ctx context.Context, tr cluster.Transport, home frag.SiteID,
	st *frag.SourceTree, prog *xpath.Program, maxInflight int) (*View, error) {
	v := &View{
		tr:          tr,
		home:        home,
		prog:        prog,
		maxInflight: maxInflight,
		st:          st.Clone(),
		arena:       boolexpr.NewArena(),
		triplets:    make(map[xmltree.FragmentID]eval.ArenaTriplet, st.Count()),
	}
	for _, id := range st.Fragments() {
		if id >= v.nextID {
			v.nextID = id + 1
		}
	}
	// One scatter/gather round over all sites (the same fan-out layer the
	// query engine uses), then intern the triplets into the view arena.
	ts, err := core.GatherTriplets(ctx, tr, home, st, prog, maxInflight)
	if err != nil {
		return nil, fmt.Errorf("views: materialize: %w", err)
	}
	for _, id := range st.Fragments() {
		if t, ok := ts[id]; ok {
			v.triplets[id] = eval.ImportTriplet(v.arena, t)
		}
	}
	ans, _, err := eval.SolveArena(v.st, v.arena, v.triplets, prog)
	if err != nil {
		return nil, err
	}
	v.ans = ans
	return v, nil
}

// SetTransport replaces the transport used by subsequent maintenance
// calls. Callers that materialize through a per-run wrapper (tracing,
// metering) use it to hand the long-lived view the durable transport.
func (v *View) SetTransport(tr cluster.Transport) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.tr = tr
}

// Answer returns the cached answer — reading a materialized view costs
// nothing.
func (v *View) Answer() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.ans
}

// Query returns the view's query program.
func (v *View) Query() *xpath.Program { return v.prog }

// SourceTree returns a copy of the view's source tree.
func (v *View) SourceTree() *frag.SourceTree {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.st.Clone()
}

// Update applies content updates (insNode/delNode/setText) to fragment id
// and incrementally maintains the answer: only the owning site is visited,
// only that fragment is re-evaluated, and the equation system is re-solved
// at the home site only if the fragment's triplet actually changed.
func (v *View) Update(ctx context.Context, id xmltree.FragmentID, ops []UpdateOp) (MaintenanceCost, error) {
	start := time.Now()
	v.mu.Lock()
	defer v.mu.Unlock()
	v.maybeCompact()
	var mc MaintenanceCost
	entry, ok := v.st.Entry(id)
	if !ok {
		return mc, fmt.Errorf("views: unknown fragment %d", id)
	}
	if len(ops) == 0 {
		// Nothing to apply: a true no-op — no site visit, no version bump,
		// no cache invalidation, zero MaintenanceCost.
		return mc, nil
	}
	resp, cost, err := v.tr.Call(ctx, v.home, entry.Site, cluster.Request{
		Kind:    KindApplyUpdate,
		Payload: encodeApplyUpdateReq(v.prog.Encode(), id, ops),
	})
	if err != nil {
		return mc, err
	}
	mc.Bytes = int64(cost.ReqBytes + cost.RespBytes)
	mc.Steps = cost.Steps
	mc.SitesVisited = append(mc.SitesVisited, entry.Site)
	tb, size, err := decodeTripletSizeResp(resp.Payload)
	if err != nil {
		return mc, err
	}
	t, err := v.decodeTriplet(tb)
	if err != nil {
		return mc, err
	}
	entry.Size = size
	// "The triplet is then compared with the one stored ... if they are
	// identical, incremental evaluation terminates without changing ans."
	// Both triplets live in the view arena, so this is an id compare.
	if old, ok := v.triplets[id]; ok && old.Equal(t) {
		mc.Elapsed = time.Since(start)
		return mc, nil
	}
	v.triplets[id] = t
	ans, work, err := eval.SolveArena(v.st, v.arena, v.triplets, v.prog)
	if err != nil {
		return mc, err
	}
	v.ans = ans
	mc.SolveWork = work
	mc.Recomputed = true
	mc.Elapsed = time.Since(start)
	return mc, nil
}

// Split performs splitFragments at the node addressed by path inside
// fragment id; the subtree becomes a new fragment assigned to target
// (which may equal the current site). The answer is unaffected — only the
// source tree and the two triplets change, exactly as in Section 5.
// It returns the new fragment's ID.
func (v *View) Split(ctx context.Context, id xmltree.FragmentID, path []int, target frag.SiteID) (xmltree.FragmentID, MaintenanceCost, error) {
	start := time.Now()
	v.mu.Lock()
	defer v.mu.Unlock()
	v.maybeCompact()
	var mc MaintenanceCost
	entry, ok := v.st.Entry(id)
	if !ok {
		return 0, mc, fmt.Errorf("views: unknown fragment %d", id)
	}
	if target == "" {
		target = entry.Site
	}
	newID := v.nextID
	resp, cost, err := v.tr.Call(ctx, v.home, entry.Site, cluster.Request{
		Kind:    KindSplit,
		Payload: encodeSplitReq(v.prog.Encode(), id, path, newID, string(target)),
	})
	if err != nil {
		return 0, mc, err
	}
	v.nextID++
	mc.Bytes = int64(cost.ReqBytes + cost.RespBytes)
	mc.Steps = cost.Steps
	mc.SitesVisited = append(mc.SitesVisited, entry.Site)
	if target != entry.Site {
		mc.SitesVisited = append(mc.SitesVisited, target)
	}
	ownB, ownSize, newB, newSize, moved, err := decodeSplitResp(resp.Payload)
	if err != nil {
		return 0, mc, err
	}
	own, err := v.decodeTriplet(ownB)
	if err != nil {
		return 0, mc, err
	}
	nw, err := v.decodeTriplet(newB)
	if err != nil {
		return 0, mc, err
	}
	entry.Size = ownSize
	v.triplets[id] = own
	v.triplets[newID] = nw
	if err := v.st.SetEntry(frag.Entry{Frag: newID, Parent: id, Site: target, Size: newSize}); err != nil {
		return 0, mc, err
	}
	// Sub-fragments whose virtual nodes rode along in the split subtree
	// now nest under newID: re-parent them in the source tree, and — for
	// ones stored away from the split site, which already re-journaled its
	// own — durably at their sites, so the persisted Parent relation never
	// goes stale.
	for _, child := range moved {
		ce, ok := v.st.Entry(child)
		if !ok {
			return 0, mc, fmt.Errorf("views: split of %d moved unknown fragment %d", id, child)
		}
		childSite := ce.Site
		if err := v.st.SetEntry(frag.Entry{Frag: child, Parent: newID, Site: ce.Site, Size: ce.Size}); err != nil {
			return 0, mc, err
		}
		if childSite == entry.Site {
			continue
		}
		_, cost, err := v.tr.Call(ctx, v.home, childSite, cluster.Request{
			Kind:    KindSetParent,
			Payload: encodeSetParentReq(child, newID),
		})
		if err != nil {
			return 0, mc, fmt.Errorf("views: re-parenting fragment %d at %s: %w", child, childSite, err)
		}
		mc.Bytes += int64(cost.ReqBytes + cost.RespBytes)
		seen := false
		for _, s := range mc.SitesVisited {
			if s == childSite {
				seen = true
				break
			}
		}
		if !seen {
			mc.SitesVisited = append(mc.SitesVisited, childSite)
		}
	}
	mc.Elapsed = time.Since(start)
	return newID, mc, nil
}

// Merge performs mergeFragments: fragment id absorbs its sub-fragment
// child. The answer is unaffected; the source tree loses an entry and the
// merged fragment's triplet is replaced.
func (v *View) Merge(ctx context.Context, id, child xmltree.FragmentID) (MaintenanceCost, error) {
	start := time.Now()
	v.mu.Lock()
	defer v.mu.Unlock()
	v.maybeCompact()
	var mc MaintenanceCost
	entry, ok := v.st.Entry(id)
	if !ok {
		return mc, fmt.Errorf("views: unknown fragment %d", id)
	}
	centry, ok := v.st.Entry(child)
	if !ok {
		return mc, fmt.Errorf("views: unknown fragment %d", child)
	}
	if centry.Parent != id {
		return mc, fmt.Errorf("views: fragment %d is not a sub-fragment of %d", child, id)
	}
	if len(centry.Children) > 0 {
		return mc, fmt.Errorf("views: fragment %d still has sub-fragments; merge bottom-up", child)
	}
	childSite := ""
	if centry.Site != entry.Site {
		childSite = string(centry.Site)
	}
	resp, cost, err := v.tr.Call(ctx, v.home, entry.Site, cluster.Request{
		Kind:    KindMerge,
		Payload: encodeMergeReq(v.prog.Encode(), id, child, childSite),
	})
	if err != nil {
		return mc, err
	}
	mc.Bytes = int64(cost.ReqBytes + cost.RespBytes)
	mc.Steps = cost.Steps
	mc.SitesVisited = append(mc.SitesVisited, entry.Site)
	if childSite != "" {
		mc.SitesVisited = append(mc.SitesVisited, centry.Site)
	}
	tb, size, err := decodeTripletSizeResp(resp.Payload)
	if err != nil {
		return mc, err
	}
	t, err := v.decodeTriplet(tb)
	if err != nil {
		return mc, err
	}
	if err := v.st.RemoveEntry(child); err != nil {
		return mc, err
	}
	delete(v.triplets, child)
	entry2, _ := v.st.Entry(id)
	entry2.Size = size
	v.triplets[id] = t
	mc.Elapsed = time.Since(start)
	return mc, nil
}

// Refresh recomputes the view from scratch (every site visited); tests use
// it as the oracle the incremental path must match.
func (v *View) Refresh(ctx context.Context) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	arena := boolexpr.NewArena()
	triplets := make(map[xmltree.FragmentID]eval.ArenaTriplet, v.st.Count())
	ts, err := core.GatherTriplets(ctx, v.tr, v.home, v.st, v.prog, v.maxInflight)
	if err != nil {
		return err
	}
	for _, id := range v.st.Fragments() {
		if t, ok := ts[id]; ok {
			triplets[id] = eval.ImportTriplet(arena, t)
		}
	}
	ans, _, err := eval.SolveArena(v.st, arena, triplets, v.prog)
	if err != nil {
		return err
	}
	v.arena = arena
	v.triplets = triplets
	v.ans = ans
	return nil
}

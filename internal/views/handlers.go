package views

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// RegisterHandlers installs the view-maintenance handlers on a site. tr is
// the transport the site uses to ship subtrees during cross-site
// splitFragments/mergeFragments.
func RegisterHandlers(site *cluster.Site, tr cluster.Transport) {
	site.Handle(KindApplyUpdate, handleApplyUpdate)
	site.Handle(KindSplit, handleSplit(tr))
	site.Handle(KindAdopt, handleAdopt)
	site.Handle(KindMerge, handleMerge(tr))
	site.Handle(KindYield, handleYield)
	site.Handle(KindSetParent, handleSetParent)
	site.Handle(KindRegisterProg, handleRegisterProg)
}

func decodeProg(buf []byte) (*xpath.Program, error) {
	prog, err := xpath.DecodeProgram(buf)
	if err != nil {
		return nil, fmt.Errorf("views: %w", err)
	}
	return prog, nil
}

// handleApplyUpdate applies content updates to one fragment and brings
// its triplets current — the paper's localized recomputation, sharpened
// to the touched spines: a retained eval.Plane is patched in O(depth +
// changed) per maintained program, the triplet cache is patched in place
// at the post-update version (no invalidation miss on the next visit),
// and standing programs whose root formulas flipped publish a Delta.
func handleApplyUpdate(_ context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
	progBytes, id, ops, err := decodeApplyUpdateReq(req.Payload)
	if err != nil {
		return cluster.Response{}, err
	}
	prog, err := decodeProg(progBytes)
	if err != nil {
		return cluster.Response{}, err
	}
	fr, ok := site.Fragment(id)
	if !ok {
		return cluster.Response{}, fmt.Errorf("views: site %s does not store fragment %d", site.ID(), id)
	}
	fm := maintOf(site).fragment(id)
	fm.mu.Lock()
	defer fm.mu.Unlock()
	var fresh, dirty, removed []*xmltree.Node
	for i, op := range ops {
		tch, err := op.ApplyTracked(fr.Root)
		if err != nil {
			// Ops apply in place, so earlier ops of the batch have already
			// mutated the tree. Bump before failing: the half-applied state
			// is what the site now serves, and it must not be served
			// against pre-batch cached triplets (or, durably, resurrect as
			// the pre-batch tree after a restart). The retained planes and
			// baselines no longer match either state — drop them.
			if i > 0 {
				site.BumpFragment(fr)
			}
			fm.reset()
			return cluster.Response{}, fmt.Errorf("views: op %d: %w", i, err)
		}
		if tch.Fresh != nil {
			fresh = append(fresh, tch.Fresh)
		}
		if tch.Dirty != nil {
			dirty = append(dirty, tch.Dirty)
		}
		if tch.Removed != nil {
			removed = append(removed, tch.Removed)
		}
	}
	// The fragment's tree changed: advance its version. Stale cached
	// triplets are invalidated by the version key; the patched entries
	// stored below make the new version hit immediately.
	version := site.BumpFragment(fr)

	// Maintain the requesting program (its triplet is the response) and
	// every other maintained program — standing subscriptions included.
	reqFP := prog.Fingerprint()
	pm := fm.prog(prog, false)
	enc, delta, changed, steps, err := pm.recompute(site, fr, fresh, dirty, removed)
	if err != nil {
		fm.reset()
		return cluster.Response{}, err
	}
	pm.patchAndPush(site, id, version, enc, delta, changed)
	total := steps
	for fp, other := range fm.progs {
		if fp == reqFP {
			continue
		}
		oenc, odelta, ochanged, s, err := other.recompute(site, fr, fresh, dirty, removed)
		total += s
		if err != nil {
			// The shared tree is fine (the requesting program evaluated
			// it); only this program's maintenance failed. Drop it.
			delete(fm.progs, fp)
			continue
		}
		other.patchAndPush(site, id, version, oenc, odelta, ochanged)
	}
	return cluster.Response{
		Payload: encodeTripletSizeResp(enc, fr.Size()),
		Steps:   total,
	}, nil
}

// handleSplit is splitFragments(v) at the owning site: the subtree at the
// path becomes fragment newID (shipped to the target site if it differs),
// and both affected triplets are recomputed and returned.
func handleSplit(tr cluster.Transport) cluster.Handler {
	return func(ctx context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
		progBytes, id, path, newID, target, err := decodeSplitReq(req.Payload)
		if err != nil {
			return cluster.Response{}, err
		}
		prog, err := decodeProg(progBytes)
		if err != nil {
			return cluster.Response{}, err
		}
		fr, ok := site.Fragment(id)
		if !ok {
			return cluster.Response{}, fmt.Errorf("views: site %s does not store fragment %d", site.ID(), id)
		}
		node, err := NodeAt(fr.Root, path)
		if err != nil {
			return cluster.Response{}, err
		}
		if node.Parent == nil {
			return cluster.Response{}, fmt.Errorf("%w: cannot split at the fragment root", ErrBadUpdate)
		}
		if node.Virtual {
			return cluster.Response{}, fmt.Errorf("%w: cannot split at a virtual node", ErrBadUpdate)
		}
		// The new fragment is installed (and journaled) BEFORE the owning
		// fragment's subtree is replaced by the virtual node: a crash
		// between the two appends then leaves at worst a duplicate — the
		// subtree both inline in the stored parent and as an unreferenced
		// new fragment, which recovery drops — never a stored parent whose
		// virtual node references content no site holds. Encoding the
		// subtree does not look at parent pointers, so journaling it while
		// still attached writes exactly the post-split content.
		newFrag := &frag.Fragment{ID: newID, Parent: id, Root: node}

		var newTripletBytes []byte
		var newSize int
		var steps int64
		if target == "" || frag.SiteID(target) == site.ID() {
			site.AddFragment(newFrag)
			t, s, err := eval.BottomUp(newFrag.Root, prog)
			if err != nil {
				return cluster.Response{}, err
			}
			steps += s
			newTripletBytes = t.Encode()
			newSize = newFrag.Size()
		} else {
			// Ship the subtree to the adopting site, which computes and
			// returns the new fragment's triplet.
			resp, _, err := tr.Call(ctx, site.ID(), frag.SiteID(target), cluster.Request{
				Kind:    KindAdopt,
				Payload: encodeAdoptReq(progBytes, newID, id, xmltree.Encode(node)),
			})
			if err != nil {
				return cluster.Response{}, fmt.Errorf("views: adoption by %s failed: %w", target, err)
			}
			newTripletBytes, newSize, err = decodeTripletSizeResp(resp.Payload)
			if err != nil {
				return cluster.Response{}, err
			}
		}

		// Sub-fragments referenced from inside the moving subtree now nest
		// under newID; collect them while the subtree is still attached.
		var moved []xmltree.FragmentID
		for _, v := range node.VirtualNodes() {
			moved = append(moved, v.Frag)
		}

		if !node.Parent.ReplaceChild(node, xmltree.NewVirtual(newID)) {
			return cluster.Response{}, fmt.Errorf("views: corrupt fragment %d", id)
		}
		// The split mutated the owning fragment in place (subtree replaced
		// by a virtual node); node-keyed maintenance planes are stale.
		site.BumpFragment(fr)
		maintOf(site).invalidate(id)

		// Re-journal the moved sub-fragments stored at this site under
		// their new parent, so the persisted Parent relation stays exact.
		// Ones stored elsewhere are fixed by the view through
		// KindSetParent; a crash before either lands is repaired (with a
		// warning) by Restore's structural verification. Content is
		// untouched, so versions — and cached triplets — stay valid.
		for _, sub := range moved {
			site.SetFragmentParent(sub, newID)
		}

		own, s, err := eval.BottomUp(fr.Root, prog)
		if err != nil {
			return cluster.Response{}, err
		}
		steps += s
		return cluster.Response{
			Payload: encodeSplitResp(own.Encode(), fr.Size(), newTripletBytes, newSize, moved),
			Steps:   steps,
		}, nil
	}
}

// handleSetParent re-journals a stored fragment under a new parent after
// a split moved its referencing virtual node into another fragment.
func handleSetParent(_ context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
	id, parent, err := decodeSetParentReq(req.Payload)
	if err != nil {
		return cluster.Response{}, err
	}
	if !site.SetFragmentParent(id, parent) {
		return cluster.Response{}, fmt.Errorf("views: site %s does not store fragment %d", site.ID(), id)
	}
	return cluster.Response{}, nil
}

// handleAdopt installs a shipped fragment and computes its triplet.
func handleAdopt(_ context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
	progBytes, id, parent, subtree, err := decodeAdoptReq(req.Payload)
	if err != nil {
		return cluster.Response{}, err
	}
	prog, err := decodeProg(progBytes)
	if err != nil {
		return cluster.Response{}, err
	}
	root, err := xmltree.Decode(subtree)
	if err != nil {
		return cluster.Response{}, err
	}
	fr := &frag.Fragment{ID: id, Parent: parent, Root: root}
	site.AddFragment(fr)
	// A re-adopted fragment ID must not inherit planes keyed to the old
	// incarnation's nodes.
	maintOf(site).invalidate(id)
	t, steps, err := eval.BottomUp(root, prog)
	if err != nil {
		return cluster.Response{}, err
	}
	return cluster.Response{
		Payload: encodeTripletSizeResp(t.Encode(), fr.Size()),
		Steps:   steps,
	}, nil
}

// handleMerge is mergeFragments(v): the fragment absorbs sub-fragment
// child, pulling its subtree from childSite when remote, and returns the
// recomputed triplet of the merged fragment.
func handleMerge(tr cluster.Transport) cluster.Handler {
	return func(ctx context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
		progBytes, id, childID, childSite, err := decodeMergeReq(req.Payload)
		if err != nil {
			return cluster.Response{}, err
		}
		prog, err := decodeProg(progBytes)
		if err != nil {
			return cluster.Response{}, err
		}
		fr, ok := site.Fragment(id)
		if !ok {
			return cluster.Response{}, fmt.Errorf("views: site %s does not store fragment %d", site.ID(), id)
		}
		// Locate the virtual node for the child.
		var vnode *xmltree.Node
		for _, v := range fr.Root.VirtualNodes() {
			if v.Frag == childID {
				vnode = v
				break
			}
		}
		if vnode == nil {
			return cluster.Response{}, fmt.Errorf("views: fragment %d has no virtual node for %d", id, childID)
		}
		// Obtain the child subtree. A locally stored child is read but not
		// yet removed: the merged-into fragment's new content must be
		// journaled (BumpFragment below) BEFORE the child's deletion, so a
		// crash between the two appends leaves at worst a duplicate — the
		// absorbed subtree plus a no-longer-referenced child fragment,
		// which recovery drops — never a deleted child that the stored
		// parent still references.
		var childRoot *xmltree.Node
		removeLocal := false
		if childSite == "" || frag.SiteID(childSite) == site.ID() {
			cfr, ok := site.Fragment(childID)
			if !ok {
				return cluster.Response{}, fmt.Errorf("views: site %s does not store fragment %d", site.ID(), childID)
			}
			childRoot = cfr.Root
			removeLocal = true
		} else {
			resp, _, err := tr.Call(ctx, site.ID(), frag.SiteID(childSite), cluster.Request{
				Kind:    KindYield,
				Payload: encodeFragIDReq(childID),
			})
			if err != nil {
				return cluster.Response{}, fmt.Errorf("views: yield from %s failed: %w", childSite, err)
			}
			if childRoot, err = xmltree.Decode(resp.Payload); err != nil {
				return cluster.Response{}, err
			}
		}
		if !vnode.Parent.ReplaceChild(vnode, childRoot) {
			return cluster.Response{}, fmt.Errorf("views: corrupt fragment %d", id)
		}
		// The merged-into fragment absorbed a subtree; node-keyed
		// maintenance planes are stale.
		site.BumpFragment(fr)
		m := maintOf(site)
		m.invalidate(id)
		if removeLocal {
			site.RemoveFragment(childID)
			m.drop(childID)
		}
		t, steps, err := eval.BottomUp(fr.Root, prog)
		if err != nil {
			return cluster.Response{}, err
		}
		return cluster.Response{
			Payload: encodeTripletSizeResp(t.Encode(), fr.Size()),
			Steps:   steps,
		}, nil
	}
}

// handleYield removes a fragment from the site and returns its encoded
// subtree.
func handleYield(_ context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
	id, err := decodeFragIDReq(req.Payload)
	if err != nil {
		return cluster.Response{}, err
	}
	fr, ok := site.Fragment(id)
	if !ok {
		return cluster.Response{}, fmt.Errorf("views: site %s does not store fragment %d", site.ID(), id)
	}
	site.RemoveFragment(id)
	maintOf(site).drop(id)
	return cluster.Response{Payload: xmltree.Encode(fr.Root)}, nil
}

package views

import (
	"bytes"
	"context"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// This file is the site side of incremental triplet maintenance: instead
// of invalidating a fragment's cached triplets on update and paying a
// full bottomUp on the next visit, the update handler recomputes only
// the touched-node-to-root spines (eval.Plane) and patches the triplet
// cache in place at the post-update version. Standing programs —
// registered through KindRegisterProg by subscriptions — are maintained
// on every update and, when the fragment's root formulas actually flip,
// a Delta is published through cluster.Site.PushDelta (fanned out to
// in-process observers and, via the TCP server's push frames, to
// subscribed connections).

// maintKey is the site-state key the maintenance state lives under.
const maintKey = "views.maint"

// maxMaintProgs bounds the maintained programs per fragment: each holds
// an O(|F|) word plane, so request-local programs are evicted FIFO past
// the bound. Standing (subscribed) programs are never evicted.
const maxMaintProgs = 16

type siteMaint struct {
	mu    sync.Mutex
	frags map[xmltree.FragmentID]*fragMaint
}

type fragMaint struct {
	mu    sync.Mutex
	progs map[uint64]*progMaint
	order []uint64 // insertion FIFO for eviction
}

// progMaint is one maintained (fragment, program) pair: the spine plane
// (nil outside the single-word kernel's domain) and the last root state,
// both the words (for O(1) flip diffing) and the encoding (retained so a
// no-op update re-stores the identical bytes instead of re-encoding).
type progMaint struct {
	prog     *xpath.Program
	standing bool
	plane    *eval.Plane
	haveWords              bool
	lastVW, lastCW, lastDW uint64
	lastEnc                []byte
}

func maintOf(site *cluster.Site) *siteMaint {
	return site.GetOrPut(maintKey, func() any {
		return &siteMaint{frags: make(map[xmltree.FragmentID]*fragMaint)}
	}).(*siteMaint)
}

// fragment returns (creating if needed) the maintenance state of one
// fragment. Callers lock the returned fragMaint around any use.
func (m *siteMaint) fragment(id xmltree.FragmentID) *fragMaint {
	m.mu.Lock()
	defer m.mu.Unlock()
	fm, ok := m.frags[id]
	if !ok {
		fm = &fragMaint{progs: make(map[uint64]*progMaint)}
		m.frags[id] = fm
	}
	return fm
}

// invalidate drops all retained planes and baselines of one fragment
// after a structural change (split, adopt, merge) rebuilt its tree out
// from under the node-keyed planes. Standing registrations survive; the
// next update recomputes their baseline in full.
func (m *siteMaint) invalidate(id xmltree.FragmentID) {
	m.mu.Lock()
	fm, ok := m.frags[id]
	m.mu.Unlock()
	if !ok {
		return
	}
	fm.mu.Lock()
	fm.reset()
	fm.mu.Unlock()
}

// drop forgets a fragment's maintenance state entirely (yield/remove).
func (m *siteMaint) drop(id xmltree.FragmentID) {
	m.mu.Lock()
	delete(m.frags, id)
	m.mu.Unlock()
}

func (fm *fragMaint) reset() {
	for _, pm := range fm.progs {
		pm.plane = nil
		pm.haveWords = false
		pm.lastEnc = nil
	}
}

// prog returns (creating if needed) the maintenance entry for p,
// evicting the oldest non-standing entry past the per-fragment bound.
// The caller holds fm.mu.
func (fm *fragMaint) prog(p *xpath.Program, standing bool) *progMaint {
	fp := p.Fingerprint()
	pm, ok := fm.progs[fp]
	if !ok {
		for len(fm.progs) >= maxMaintProgs {
			if !fm.evictOne() {
				break
			}
		}
		pm = &progMaint{prog: p}
		fm.progs[fp] = pm
		fm.order = append(fm.order, fp)
	}
	if standing {
		pm.standing = true
	}
	return pm
}

// evictOne removes the oldest-registered non-standing entry, reporting
// whether one was found.
func (fm *fragMaint) evictOne() bool {
	for i, fp := range fm.order {
		pm, live := fm.progs[fp]
		if !live {
			continue
		}
		if pm.standing {
			continue
		}
		delete(fm.progs, fp)
		fm.order = append(fm.order[:i], fm.order[i+1:]...)
		return true
	}
	return false
}

// recompute brings pm current with the fragment's tree after a batch of
// applied ops (the touched nodes in Plane.Patch vocabulary; all nil for
// a from-scratch baseline). It returns the new root encoding, the root
// flip delta (meaningful only when changed and the plane path ran), and
// whether the root formulas changed at all. The caller holds fm.mu.
func (pm *progMaint) recompute(site *cluster.Site, fr *frag.Fragment, fresh, dirty, removed []*xmltree.Node) (enc []byte, delta eval.TripletDelta, changed bool, steps int64, err error) {
	stats := site.Stats()
	oldEnc := pm.lastEnc
	oldVW, oldCW, oldDW, hadWords := pm.lastVW, pm.lastCW, pm.lastDW, pm.haveWords

	spined := false
	if pm.plane != nil && pm.plane.Root() == fr.Root {
		s, ok := pm.plane.Patch(fresh, dirty, removed)
		steps += s
		if ok {
			spined = true
		} else {
			pm.plane = nil
		}
	}
	if !spined {
		plane, s, ok := eval.BuildPlane(fr.Root, pm.prog)
		steps += s
		stats.FullRecomputes.Add(1)
		if ok {
			pm.plane = plane
		} else {
			// Outside the single-word kernel's domain (virtual nodes or a
			// wide program): the general evaluator, with byte-level diffing.
			pm.plane = nil
			t, s2, err := eval.BottomUp(fr.Root, pm.prog)
			steps += s2
			if err != nil {
				return nil, delta, false, steps, err
			}
			enc = t.Encode()
			pm.haveWords = false
			changed = oldEnc == nil || !bytes.Equal(oldEnc, enc)
			if !changed {
				stats.NoopUpdates.Add(1)
				enc = oldEnc
			}
			pm.lastEnc = enc
			return enc, delta, changed, steps, nil
		}
	} else {
		stats.SpineRecomputes.Add(1)
	}

	vw, cw, dw := pm.plane.RootWords()
	if hadWords {
		delta = eval.TripletDelta{V: oldVW ^ vw, CV: oldCW ^ cw, DV: oldDW ^ dw}
		changed = !delta.Zero()
	} else {
		changed = true
	}
	if !changed && oldEnc != nil {
		// Same root formulas: the update is a no-op for every cached
		// query of this program — reuse the identical encoding.
		stats.NoopUpdates.Add(1)
		enc = oldEnc
	} else {
		enc = eval.ConstTriplet(len(pm.prog.Subs), vw, cw, dw).Encode()
	}
	pm.lastVW, pm.lastCW, pm.lastDW, pm.haveWords = vw, cw, dw, true
	pm.lastEnc = enc
	return enc, delta, changed, steps, nil
}

// patchAndPush stores pm's new encoding in the triplet cache and the
// durable store at the post-update version, and — for a standing program
// whose root actually changed — publishes the Delta. The caller holds
// fm.mu.
func (pm *progMaint) patchAndPush(site *cluster.Site, id xmltree.FragmentID, version uint64, enc []byte, delta eval.TripletDelta, changed bool) {
	fp := pm.prog.Fingerprint()
	core.StoreTriplet(site, id, version, fp, enc)
	site.PersistTriplet(id, version, fp, enc)
	if pm.standing && changed {
		site.PushDelta(Delta{
			Frag:    id,
			Version: version,
			FP:      fp,
			FlipV:   delta.V,
			FlipCV:  delta.CV,
			FlipDV:  delta.DV,
			Triplet: enc,
		}.Encode())
	}
}

// handleRegisterProg registers a standing program for a set of fragments
// and returns their baseline triplets. Registration is idempotent; a
// repeat call answers from the maintained state with zero evaluation.
func handleRegisterProg(_ context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
	progBytes, ids, err := decodeRegisterReq(req.Payload)
	if err != nil {
		return cluster.Response{}, err
	}
	prog, err := decodeProg(progBytes)
	if err != nil {
		return cluster.Response{}, err
	}
	m := maintOf(site)
	items := make([]RegItem, 0, len(ids))
	var steps int64
	for _, id := range ids {
		fr, ok := site.Fragment(id)
		if !ok {
			return cluster.Response{}, fmt.Errorf("views: site %s does not store fragment %d", site.ID(), id)
		}
		fm := m.fragment(id)
		fm.mu.Lock()
		pm := fm.prog(prog, true)
		if pm.lastEnc == nil {
			enc, _, _, s, err := pm.recompute(site, fr, nil, nil, nil)
			steps += s
			if err != nil {
				fm.mu.Unlock()
				return cluster.Response{}, err
			}
			pm.lastEnc = enc
		}
		version := site.FragmentVersion(id)
		core.StoreTriplet(site, id, version, prog.Fingerprint(), pm.lastEnc)
		site.PersistTriplet(id, version, prog.Fingerprint(), pm.lastEnc)
		items = append(items, RegItem{Frag: id, Version: version, Triplet: pm.lastEnc})
		fm.mu.Unlock()
	}
	return cluster.Response{Payload: encodeRegisterResp(items), Steps: steps}, nil
}

// RegisterProg registers prog as a standing program for fragments ids at
// the site reachable as to, returning each fragment's baseline triplet.
func RegisterProg(ctx context.Context, tr cluster.Transport, from, to frag.SiteID, prog *xpath.Program, ids []xmltree.FragmentID) ([]RegItem, error) {
	resp, _, err := tr.Call(ctx, from, to, cluster.Request{
		Kind:    KindRegisterProg,
		Payload: encodeRegisterReq(prog.Encode(), ids),
	})
	if err != nil {
		return nil, err
	}
	return decodeRegisterResp(resp.Payload)
}

package views

import (
	"context"
	"testing"

	"repro/internal/boolexpr"
	"repro/internal/core"
	"repro/internal/xpath"
)

// TestArenaCompactionKeepsViewConsistent: maintenance operations after a
// compaction must keep working on valid ids. The arena is inflated past
// the compaction threshold with junk nodes (simulating a long-lived view's
// accumulated garbage), then updates and a split/merge cycle run — each
// public operation compacts at most once, at its start, so every id it
// stores belongs to the post-compaction arena.
func TestArenaCompactionKeepsViewConsistent(t *testing.T) {
	c, forest, st := deploy(t)
	ctx := context.Background()
	prog := xpath.MustCompileString(`//stock[code = "GOOG" && sell = "376"]`)
	v, err := Materialize(ctx, c, "S0", st, prog)
	if err != nil {
		t.Fatal(err)
	}

	inflate := func() {
		v.mu.Lock()
		for i := 0; v.arena.Len() < arenaCompactAt; i++ {
			x := v.arena.Var(boolexpr.Var{Frag: 9000, Vec: boolexpr.VecV, Q: int32(i)})
			y := v.arena.Var(boolexpr.Var{Frag: 9001, Vec: boolexpr.VecDV, Q: int32(i)})
			v.arena.Or2(x, y)
		}
		v.mu.Unlock()
	}

	f3, _ := forest.Fragment(3)
	sell := f3.Root.FindAll("sell")[0]

	// Updates across a compaction boundary: flip true, compact, flip back.
	for round, price := range []string{"376", "373", "376"} {
		inflate()
		if _, err := v.Update(ctx, 3, []UpdateOp{{Op: OpSetText, Path: PathOf(sell), Text: price}}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got, want := v.Answer(), oracle(t, forest, prog); got != want {
			t.Fatalf("round %d: Answer = %v, oracle %v", round, got, want)
		}
		v.mu.Lock()
		if v.arena.Len() >= arenaCompactAt {
			t.Fatalf("round %d: arena not compacted (%d nodes)", round, v.arena.Len())
		}
		v.mu.Unlock()
	}

	// After a split the test-side forest no longer reflects the deployed
	// layout; the oracle becomes a fresh engine over the view's source
	// tree.
	engineOracle := func(label string) {
		t.Helper()
		eng := core.NewEngine(c, "S0", v.SourceTree(), c.Cost())
		rep, err := eng.ParBoX(ctx, prog)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if rep.Answer != v.Answer() {
			t.Fatalf("%s: view %v diverged from fresh evaluation %v", label, v.Answer(), rep.Answer)
		}
	}

	// A split decodes TWO triplets in one operation; with the arena at the
	// threshold both must land in the same (post-compaction) arena.
	inflate()
	f1, _ := forest.Fragment(1)
	target := f1.Root.Children[0]
	newID, _, err := v.Split(ctx, 1, PathOf(target), "S1")
	if err != nil {
		t.Fatal(err)
	}
	engineOracle("after split")
	// Updating after the split exercises SolveArena over the mix of
	// re-interned and freshly decoded triplets.
	inflate()
	if _, err := v.Update(ctx, 3, []UpdateOp{{Op: OpSetText, Path: PathOf(sell), Text: "373"}}); err != nil {
		t.Fatal(err)
	}
	engineOracle("after post-split update")

	inflate()
	if _, err := v.Merge(ctx, 1, newID); err != nil {
		t.Fatal(err)
	}
	if err := v.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	engineOracle("after merge+refresh")
}

package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/frag"
	"repro/internal/xmltree"
)

// Replication support — the paper's Section 8 lists "other optimization
// techniques for xml query processing, in the presence of replication" as
// planned work, citing [1]. Here a fragment may be stored at several
// sites; before a query runs, a placement strategy picks one replica per
// fragment, producing the source tree ParBoX evaluates against. Because
// ParBoX's traffic is tiny and data never moves, re-planning per query is
// free — the coordinator just derives a different S_T.

// ReplicaMap lists, per fragment, every site holding a copy. Every
// fragment needs at least one replica.
type ReplicaMap map[xmltree.FragmentID][]frag.SiteID

// PlacementStrategy selects replicas.
type PlacementStrategy int

const (
	// PlaceFirst picks each fragment's first listed replica (the paper's
	// implicit single-copy behaviour when each fragment has one site).
	PlaceFirst PlacementStrategy = iota
	// PlaceMinSites greedily minimizes the number of distinct sites
	// consulted (fewer visits and messages; good over high-latency links).
	PlaceMinSites
	// PlaceBalanced greedily minimizes the maximum aggregated fragment
	// size per site — the paper's parallel-computation bound
	// O(|q|·max_Si|F_Si|) — for the fastest stage 2.
	PlaceBalanced
)

func (s PlacementStrategy) String() string {
	switch s {
	case PlaceFirst:
		return "first"
	case PlaceMinSites:
		return "min-sites"
	case PlaceBalanced:
		return "balanced"
	default:
		return fmt.Sprintf("PlacementStrategy(%d)", int(s))
	}
}

// ErrNoReplica is returned when a fragment has no replica listed.
var ErrNoReplica = errors.New("core: fragment has no replica")

// PlanPlacement chooses one site per fragment. sizes gives |F_j| (used by
// PlaceBalanced; zero sizes degrade it to arbitrary-but-deterministic).
func PlanPlacement(replicas ReplicaMap, sizes map[xmltree.FragmentID]int, strategy PlacementStrategy) (frag.Assignment, error) {
	ids := make([]xmltree.FragmentID, 0, len(replicas))
	for id, sites := range replicas {
		if len(sites) == 0 {
			return nil, fmt.Errorf("%w: %d", ErrNoReplica, id)
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	assign := make(frag.Assignment, len(ids))

	switch strategy {
	case PlaceFirst:
		for _, id := range ids {
			assign[id] = replicas[id][0]
		}

	case PlaceMinSites:
		// Greedy set cover: repeatedly pick the site covering the most
		// unassigned fragments (ties broken by site name for
		// determinism).
		unassigned := make(map[xmltree.FragmentID]bool, len(ids))
		for _, id := range ids {
			unassigned[id] = true
		}
		for len(unassigned) > 0 {
			counts := make(map[frag.SiteID]int)
			for id := range unassigned {
				for _, s := range replicas[id] {
					counts[s]++
				}
			}
			var best frag.SiteID
			bestN := -1
			var sites []frag.SiteID
			for s := range counts {
				sites = append(sites, s)
			}
			sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
			for _, s := range sites {
				if counts[s] > bestN {
					best, bestN = s, counts[s]
				}
			}
			for id := range unassigned {
				for _, s := range replicas[id] {
					if s == best {
						assign[id] = best
						delete(unassigned, id)
						break
					}
				}
			}
		}

	case PlaceBalanced:
		// Longest-processing-time greedy: biggest fragments first, each
		// to its least-loaded replica site.
		order := append([]xmltree.FragmentID(nil), ids...)
		sort.Slice(order, func(i, j int) bool {
			if sizes[order[i]] != sizes[order[j]] {
				return sizes[order[i]] > sizes[order[j]]
			}
			return order[i] < order[j]
		})
		load := make(map[frag.SiteID]int)
		for _, id := range order {
			cands := append([]frag.SiteID(nil), replicas[id]...)
			sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
			best := cands[0]
			for _, s := range cands[1:] {
				if load[s] < load[best] {
					best = s
				}
			}
			assign[id] = best
			load[best] += sizes[id]
		}

	default:
		return nil, fmt.Errorf("core: unknown placement strategy %v", strategy)
	}
	return assign, nil
}

// DeployReplicated stores every replica of every fragment at its sites
// (copies are cloned so sites do not share trees), registers handlers,
// and returns an engine over the placement chosen by the strategy. Use
// Replan to derive engines for other strategies over the same cluster
// without moving any data.
func DeployReplicated(c *cluster.Cluster, forest *frag.Forest, replicas ReplicaMap, strategy PlacementStrategy) (*Engine, error) {
	sizes := make(map[xmltree.FragmentID]int, forest.Count())
	for _, id := range forest.IDs() {
		fr, ok := forest.Fragment(id)
		if !ok {
			return nil, fmt.Errorf("core: missing fragment %d", id)
		}
		sites, ok := replicas[id]
		if !ok || len(sites) == 0 {
			return nil, fmt.Errorf("%w: %d", ErrNoReplica, id)
		}
		sizes[id] = fr.Size()
		for _, siteID := range sites {
			site := c.AddSite(siteID)
			site.AddFragment(&frag.Fragment{ID: fr.ID, Parent: fr.Parent, Root: fr.Root.Clone()})
		}
	}
	for _, siteID := range c.Sites() {
		RegisterHandlers(c.AddSite(siteID), c, c.Cost())
	}
	return Replan(c, forest, replicas, strategy)
}

// Replan derives a new engine for a different placement strategy over an
// already-deployed replicated cluster.
func Replan(c *cluster.Cluster, forest *frag.Forest, replicas ReplicaMap, strategy PlacementStrategy) (*Engine, error) {
	sizes := make(map[xmltree.FragmentID]int, forest.Count())
	for _, id := range forest.IDs() {
		fr, _ := forest.Fragment(id)
		sizes[id] = fr.Size()
	}
	assign, err := PlanPlacement(replicas, sizes, strategy)
	if err != nil {
		return nil, err
	}
	st, err := frag.BuildSourceTree(forest, assign)
	if err != nil {
		return nil, err
	}
	rootEntry, _ := st.Entry(st.Root())
	return NewEngine(c, rootEntry.Site, st, c.Cost()), nil
}

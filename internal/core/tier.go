package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/frag"
	"repro/internal/xmltree"
)

// ErrFragmentUnavailable is the loud-degradation contract of the serving
// tier: a query touching a fragment with zero live replicas fails with
// this error instead of returning a silently partial answer. Callers test
// with errors.Is.
var ErrFragmentUnavailable = errors.New("core: fragment has no live replica")

// Tier is the replica-aware serving tier's view from the engine
// (implemented by internal/serve; core must not import it). A nil tier
// means static placement: the engine serves its deploy-time source tree
// unchanged.
type Tier interface {
	// PlanRound resolves every fragment to its best live replica and
	// returns the resulting source tree for one round. It fails with (a
	// wrapped) ErrFragmentUnavailable when some fragment has no live
	// replica.
	PlanRound() (*frag.SourceTree, error)
	// Reassign re-places the given fragments after a failed scatter job,
	// excluding the listed sites on top of everything the tier already
	// considers down. The result groups the fragments by chosen site.
	Reassign(ids []xmltree.FragmentID, exclude map[frag.SiteID]bool) (map[frag.SiteID][]xmltree.FragmentID, error)
	// Started/Finished bracket every engine call to a site: the passive
	// health signal (Finished's err is nil on success; rtt is measured
	// wall time).
	Started(site frag.SiteID)
	Finished(site frag.SiteID, rtt time.Duration, err error)
	// Recheck synchronously probes every known site, refreshing health
	// state — the engine calls it between round-level retries so a
	// re-plan sees failures the coordinator did not observe directly.
	Recheck(ctx context.Context)
}

// HedgePlanner is the optional hedging capability of a serving tier
// (asserted with a type switch, so Tier implementers that predate it
// keep compiling). PlanHedge picks the next-best live replica able to
// serve all of ids besides primary, and the delay to arm the hedge
// timer with — the primary's observed latency p95, or the deployment's
// fixed override. ok=false declines (no other replica, hedging off).
type HedgePlanner interface {
	PlanHedge(primary frag.SiteID, ids []xmltree.FragmentID) (alt frag.SiteID, delay time.Duration, ok bool)
}

// HedgeLossReporter is the optional feedback half of hedging: when a
// hedge wins its race, the primary's call is cancelled and never yields
// an RTT sample, so the planner is told the primary took *at least*
// elapsed. Tiers use it to keep routing scores honest for replicas that
// are consistently hedged around (see serve.Tier.HedgeLost).
type HedgeLossReporter interface {
	HedgeLost(primary frag.SiteID, elapsed time.Duration)
}

// tierHedge adapts a tier's HedgePlanner to a scatter round's hedge
// hook, building the speculative job with the same constructor the round
// uses for failover re-placement. nil when the tier cannot hedge. Only
// pure jobs — where mk(site, ids) is equivalent on any replica — may
// pass a non-nil result to scatterHedged.
func tierHedge[T any](t Tier, mk func(site frag.SiteID, ids []xmltree.FragmentID) scatterJob[T]) scatterHedge[T] {
	hp, ok := t.(HedgePlanner)
	if !ok {
		return nil
	}
	lr, _ := t.(HedgeLossReporter)
	return func(j scatterJob[T]) (hedgePlan[T], bool) {
		if len(j.frags) == 0 {
			return hedgePlan[T]{}, false
		}
		alt, delay, ok := hp.PlanHedge(j.to, j.frags)
		if !ok {
			return hedgePlan[T]{}, false
		}
		plan := hedgePlan[T]{alt: mk(alt, j.frags), delay: delay}
		if lr != nil {
			primary := j.to
			plan.lost = func(elapsed time.Duration) { lr.HedgeLost(primary, elapsed) }
		}
		return plan, true
	}
}

// SetTier attaches a serving tier: from now on every run plans its own
// source tree through the tier (per-round replica routing) and failed
// scatter jobs fail over to other live replicas. Call during setup,
// before the engine serves; nil detaches.
func (e *Engine) SetTier(t Tier) { e.tier = t }

// Tier returns the attached serving tier (nil for static placement).
func (e *Engine) Tier() Tier { return e.tier }

// forRound returns the engine to run one round with: with a tier
// attached, a shallow copy bound to a freshly planned source tree
// (engines are cheap per-run views, so the copy is idiomatic); without
// one — or when this engine already IS a per-round copy — the engine
// itself. Every public algorithm entry calls it first, so nested
// dispatches (Hybrid → ParBoX) do not double-plan.
func (e *Engine) forRound() (*Engine, error) {
	if e.tier == nil || e.planned {
		return e, nil
	}
	st, err := e.tier.PlanRound()
	if err != nil {
		return nil, err
	}
	er := *e
	er.st = st
	er.planned = true
	return &er, nil
}

// obs returns the scatter-level observation hook feeding the tier's
// passive health signals, or nil without a tier.
func (e *Engine) obs() tierObs {
	t := e.tier
	if t == nil {
		return nil
	}
	return func(to frag.SiteID) func(error) {
		t.Started(to)
		start := time.Now()
		return func(err error) { t.Finished(to, time.Since(start), err) }
	}
}

// Round retries are bounded by the engine's per-query retry budget
// (SetRetryPolicy; backoff.DefaultBudget without one) — sites can keep
// dying mid-round, and each retry backs off, re-probes and excludes
// them.

// retryableRoundErr reports whether a failed round is worth re-planning:
// cancellation is the caller's choice and ErrFragmentUnavailable cannot
// improve without a replica coming back.
func retryableRoundErr(err error) bool {
	return err != nil &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, ErrFragmentUnavailable)
}

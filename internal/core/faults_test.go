package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/fixtures"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// deployFaulty builds the Fig. 2 deployment behind a fault-injecting
// transport. Handlers are registered with the faulty transport so that
// site-to-site hops (FullDist, NaiveDistributed) are also subject to
// faults.
func deployFaulty(t *testing.T) (*cluster.FaultyTransport, *Engine) {
	t.Helper()
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	st, err := fixtures.Fig2SourceTree(forest)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultCostModel())
	ft := &cluster.FaultyTransport{Inner: c}
	for _, siteID := range st.Sites() {
		site := c.AddSite(siteID)
		for _, id := range st.FragmentsAt(siteID) {
			fr, _ := forest.Fragment(id)
			site.AddFragment(fr)
		}
		RegisterHandlers(site, ft, c.Cost())
	}
	return ft, NewEngine(ft, "S0", st, c.Cost())
}

func TestAlgorithmsSurfaceSiteFailure(t *testing.T) {
	prog := xpath.MustCompileString(`//stock[code = "YHOO"]`)
	ctx := context.Background()
	for _, algo := range Algorithms() {
		ft, eng := deployFaulty(t)
		ft.FailSites = map[frag.SiteID]bool{"S2": true}
		_, err := eng.Run(ctx, algo, prog)
		if err == nil {
			t.Errorf("%s: succeeded with S2 down", algo)
			continue
		}
		if !errors.Is(err, cluster.ErrInjected) {
			t.Errorf("%s: error %v does not wrap the injected fault", algo, err)
		}
	}
}

func TestAlgorithmsSurfaceCorruptResponses(t *testing.T) {
	prog := xpath.MustCompileString(`//stock[code = "YHOO"]`)
	ctx := context.Background()
	for algo, kind := range map[Algorithm]string{
		AlgoParBoX:           KindEvalQual,
		AlgoNaiveCentralized: KindFetchFragments,
		AlgoNaiveDistributed: KindEvalFragDist,
		AlgoFullDist:         KindResolve,
		AlgoLazy:             KindEvalQual,
	} {
		ft, eng := deployFaulty(t)
		ft.CorruptKinds = map[string]bool{kind: true}
		if _, err := eng.Run(ctx, algo, prog); err == nil {
			t.Errorf("%s: accepted a truncated %s response", algo, kind)
		}
	}
}

func TestSelectSurfacesFailure(t *testing.T) {
	ft, eng := deployFaulty(t)
	ft.FailKinds = map[string]bool{KindSelect: true}
	sp, err := xpath.CompileSelectString(`//stock`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.SelectParBoX(context.Background(), sp); err == nil {
		t.Error("selection succeeded with pass 2 blocked")
	}
}

func TestEveryNthFailureNeverHangs(t *testing.T) {
	// Sweep a failure raster over every algorithm; every run must either
	// produce the right answer or an error — never hang, never lie.
	prog := xpath.MustCompileString(`//stock[code = "YHOO"]`)
	for n := 1; n <= 6; n++ {
		for _, algo := range Algorithms() {
			ft, eng := deployFaulty(t)
			ft.FailEveryN = n
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			rep, err := eng.Run(ctx, algo, prog)
			cancel()
			if err == nil && !rep.Answer {
				t.Errorf("%s with FailEveryN=%d returned a wrong answer", algo, n)
			}
		}
	}
}

// TestConcurrentQueries runs many queries of different shapes through one
// engine concurrently; results must stay independent and correct.
func TestConcurrentQueries(t *testing.T) {
	_, eng, orig := deployFig2(t)
	ctx := context.Background()
	type job struct {
		src  string
		algo Algorithm
	}
	var jobs []job
	for _, src := range fig2Queries {
		for _, algo := range []Algorithm{AlgoParBoX, AlgoFullDist, AlgoLazy} {
			jobs = append(jobs, job{src, algo})
		}
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		for k := 0; k < 3; k++ {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				prog := xpath.MustCompileString(j.src)
				want := false
				if w, _, err := evalCentral(orig, prog); err == nil {
					want = w
				}
				rep, err := eng.Run(ctx, j.algo, prog)
				if err != nil {
					t.Errorf("%s(%q): %v", j.algo, j.src, err)
					return
				}
				if rep.Answer != want {
					t.Errorf("%s(%q) = %v, want %v", j.algo, j.src, rep.Answer, want)
				}
			}(j)
		}
	}
	wg.Wait()
}

// evalCentral is a tiny adapter for the concurrency test.
func evalCentral(root *xmltree.Node, prog *xpath.Program) (bool, int64, error) {
	return eval.Evaluate(root, prog)
}

package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/obs"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// runState is the per-query state FullDistParBoX caches at a site between
// stage 2 (evalQualKeep) and stage 3 (resolve): the program, the site's
// copy of the source tree, and the local triplets.
type runState struct {
	prog     *xpath.Program
	st       *frag.SourceTree
	mu       sync.Mutex
	triplets map[xmltree.FragmentID]eval.Triplet
	// remaining counts the local fragments not yet resolved; the state
	// self-destructs at zero, since evalDistrST resolves every fragment
	// exactly once — no cleanup round trip is needed on the happy path.
	remaining int
}

func runStateKey(runKey string) string { return "parbox.run." + runKey }

// RegisterHandlers installs the ParBoX protocol handlers on a site. tr is
// the transport the site uses to reach its peers (needed by the recursive
// NaiveDistributed and FullDistParBoX handlers) and cost is the cost model
// the site uses to report modeled times for its own computation.
//
// The same registration serves the in-process cluster and a TCP site
// daemon.
func RegisterHandlers(site *cluster.Site, tr cluster.Transport, cost cluster.CostModel) {
	site.Handle(KindEvalQual, handleEvalQual(false))
	site.Handle(KindEvalQualKeep, handleEvalQual(true))
	site.Handle(KindResolve, handleResolve(tr, cost))
	site.Handle(KindCleanup, handleCleanup)
	site.Handle(KindFetchFragments, handleFetchFragments)
	site.Handle(KindEvalFragDist, handleEvalFragDist(tr, cost))
	site.Handle(KindSelect, handleSelect)
	site.Handle(KindCount, handleCount)
	site.SetAdmissionEstimator(admissionEstimate(site))
}

// admissionEstimate prices a request for the site's admission controller
// in fragment nodes: an evaluation or fetch touching big fragments
// weighs proportionally more against the cost watermark than one
// touching leaves. Unknown kinds (and undecodable payloads — they will
// fail in the handler anyway) weigh the minimum.
func admissionEstimate(site *cluster.Site) func(req cluster.Request) int64 {
	sizeOf := func(ids []xmltree.FragmentID) int64 {
		var total int64
		for _, id := range ids {
			if fr, ok := site.Fragment(id); ok {
				total += int64(fr.Size())
			}
		}
		return total
	}
	return func(req cluster.Request) int64 {
		switch req.Kind {
		case KindEvalQual, KindEvalQualKeep:
			if q, err := decodeEvalQualReq(req.Payload); err == nil {
				return sizeOf(q.ids)
			}
		case KindFetchFragments:
			if ids, err := decodeFetchReq(req.Payload); err == nil {
				return sizeOf(ids)
			}
		case KindSelect, KindCount:
			if _, id, _, _, err := decodeSelectReq(req.Payload); err == nil {
				return sizeOf([]xmltree.FragmentID{id})
			}
		}
		return 1
	}
}

// handleEvalQual is Procedure evalQual (Fig. 3b): run bottomUp over each
// requested locally stored fragment and return the triplets in request
// order. With keep=true the triplets are cached for a later resolve.
//
// A site's fragments are independent (each bottomUp pass owns its arena),
// so they are evaluated in parallel on a worker pool sized to the host —
// the within-site analogue of the paper's across-site stage-2 parallelism.
//
// When the request carries a program fingerprint (q.fp != 0; the serving
// paths send it, see Engine.EnableTripletCache), the site's versioned
// triplet cache is consulted first: fragments unchanged since the same
// program last visited answer from their memoized encoding with zero
// bottomUp steps, and only the remaining fragments are evaluated. The
// response reports hits and misses so coordinator- and cluster-level
// accounting can see the cache working.
func handleEvalQual(keep bool) cluster.Handler {
	return func(ctx context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
		q, err := decodeEvalQualReq(req.Payload)
		if err != nil {
			return cluster.Response{}, err
		}
		var state *runState
		if keep {
			if q.st == nil {
				return cluster.Response{}, fmt.Errorf("%w: evalQualKeep without source tree", ErrBadMessage)
			}
			state = &runState{prog: q.prog, st: q.st, triplets: make(map[xmltree.FragmentID]eval.Triplet)}
		}
		if q.fp != 0 && !keep {
			return evalQualCached(ctx, site, q)
		}
		bctx, bsp := obs.StartSpan(ctx, string(site.ID()), "bottomUp")
		fts, steps, err := evalFragments(bctx, site, q.prog, q.ids)
		if bsp != nil {
			bsp.SetAttr("fragments", int64(len(q.ids)))
			bsp.SetAttr("steps", steps)
			bsp.End()
		}
		if err != nil {
			return cluster.Response{}, err
		}
		if keep {
			for _, ft := range fts {
				state.triplets[ft.id] = ft.triplet
			}
			state.remaining = len(state.triplets)
			site.Put(runStateKey(q.runKey), state)
		}
		_, esp := obs.StartSpan(ctx, string(site.ID()), "encode")
		payload := encodeEvalQualResp(fts)
		esp.End()
		return cluster.Response{Payload: payload, Steps: steps}, nil
	}
}

// evalQualCached is handleEvalQual's fast path through the site's
// versioned triplet cache: split the requested fragments into hits
// (answered by memoized encodings) and misses (evaluated on the worker
// pool, then memoized at the version observed before evaluation — a
// concurrent maintenance bump makes such an entry mismatch on its next
// lookup and recompute, so staleness is self-healing).
func evalQualCached(ctx context.Context, site *cluster.Site, q evalQualReq) (cluster.Response, error) {
	cache := siteTripletCache(site)
	fts := make([]fragTriplet, len(q.ids))
	vers := make([]uint64, len(q.ids))
	var missIdx []int
	var missIDs []xmltree.FragmentID
	_, csp := obs.StartSpan(ctx, string(site.ID()), "triplet-cache")
	for i, id := range q.ids {
		vers[i] = site.FragmentVersion(id)
		if enc, ok := cache.lookup(id, vers[i], q.fp); ok {
			fts[i] = fragTriplet{id: id, enc: enc}
		} else {
			missIdx = append(missIdx, i)
			missIDs = append(missIDs, id)
		}
	}
	if csp != nil {
		csp.SetAttr("hits", int64(len(q.ids)-len(missIDs)))
		csp.SetAttr("misses", int64(len(missIDs)))
		csp.End()
	}
	var steps int64
	if len(missIDs) > 0 {
		bctx, bsp := obs.StartSpan(ctx, string(site.ID()), "bottomUp")
		mfts, s, err := evalFragments(bctx, site, q.prog, missIDs)
		if bsp != nil {
			bsp.SetAttr("fragments", int64(len(missIDs)))
			bsp.SetAttr("steps", s)
			bsp.End()
		}
		if err != nil {
			return cluster.Response{}, err
		}
		steps = s
		for j, i := range missIdx {
			enc := mfts[j].triplet.Encode()
			fts[i] = fragTriplet{id: q.ids[i], enc: enc}
			cache.store(q.ids[i], vers[i], q.fp, enc)
			// Journal the fill so a restarted site warm-starts its cache
			// (no-op without an attached durable store).
			site.PersistTriplet(q.ids[i], vers[i], q.fp, enc)
		}
	}
	_, esp := obs.StartSpan(ctx, string(site.ID()), "encode")
	payload := encodeEvalQualResp(fts)
	esp.End()
	return cluster.Response{
		Payload:     payload,
		Steps:       steps,
		CacheHits:   int64(len(q.ids) - len(missIDs)),
		CacheMisses: int64(len(missIDs)),
	}, nil
}

// evalFragments runs BottomUp over the given locally stored fragments,
// fanning out over a bounded worker pool, and returns the triplets in
// request order plus the summed step count.
func evalFragments(ctx context.Context, site *cluster.Site, prog *xpath.Program, ids []xmltree.FragmentID) ([]fragTriplet, int64, error) {
	// Programs decoded off the wire arrive without a compiled lane kernel;
	// compile it once here rather than racing to build it (each winning
	// once, wasting the losers' work) inside the first fragment of every
	// worker.
	prog.PrecompileKernel()
	fts := make([]fragTriplet, len(ids))
	evalOne := func(i int, id xmltree.FragmentID) (int64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		fr, ok := site.Fragment(id)
		if !ok {
			return 0, fmt.Errorf("core: site %s does not store fragment %d", site.ID(), id)
		}
		t, s, err := eval.BottomUp(fr.Root, prog)
		if err != nil {
			return s, fmt.Errorf("core: fragment %d: %w", id, err)
		}
		fts[i] = fragTriplet{id: id, triplet: t}
		return s, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers <= 1 {
		var steps int64
		for i, id := range ids {
			s, err := evalOne(i, id)
			steps += s
			if err != nil {
				return nil, steps, err
			}
		}
		return fts, steps, nil
	}
	// On the first failure the shared context is cancelled so sibling
	// workers stop at their next fragment instead of finishing work whose
	// result will be discarded. Errors are collected per index and the
	// request-order-first one is reported, keeping the error deterministic
	// across runs (the sequential path's behaviour).
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg    sync.WaitGroup
		next  atomic.Int64
		steps atomic.Int64
	)
	errs := make([]error, len(ids))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				s, err := evalOne(i, ids[i])
				steps.Add(s)
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, steps.Load(), err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, steps.Load(), err
		}
	}
	return fts, steps.Load(), nil
}

// handleResolve is the per-fragment unification step of Procedure
// evalDistrST: gather the resolved triplets of the fragment's
// sub-fragments from their sites (in parallel), substitute them into the
// local triplet, and return a variable-free triplet. The paper formulates
// this as children pushing triplets to parents; pulling from the parent
// side is traffic- and topology-equivalent (see DESIGN.md).
func handleResolve(tr cluster.Transport, cost cluster.CostModel) cluster.Handler {
	return func(ctx context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
		runKey, id, err := decodeResolveReq(req.Payload)
		if err != nil {
			return cluster.Response{}, err
		}
		stateAny, ok := site.Get(runStateKey(runKey))
		if !ok {
			return cluster.Response{}, fmt.Errorf("core: site %s has no state for run %q (evalQualKeep first)", site.ID(), runKey)
		}
		state := stateAny.(*runState)
		state.mu.Lock()
		own, ok := state.triplets[id]
		state.mu.Unlock()
		if !ok {
			return cluster.Response{}, fmt.Errorf("core: run %q has no triplet for fragment %d at %s", runKey, id, site.ID())
		}
		entry, ok := state.st.Entry(id)
		if !ok {
			return cluster.Response{}, fmt.Errorf("core: fragment %d not in source tree", id)
		}

		// Gather children in parallel, as the sites at one level of S_T
		// work concurrently in the paper.
		type childResult struct {
			id    xmltree.FragmentID
			t     eval.Triplet
			stats resolveStats
			err   error
		}
		results := make(chan childResult, len(entry.Children))
		for _, child := range entry.Children {
			go func(child xmltree.FragmentID) {
				centry, ok := state.st.Entry(child)
				if !ok {
					results <- childResult{id: child, err: fmt.Errorf("core: fragment %d not in source tree", child)}
					return
				}
				resp, cc, err := tr.Call(ctx, site.ID(), centry.Site, cluster.Request{
					Kind:    KindResolve,
					Payload: encodeResolveReq(runKey, child),
				})
				if err != nil {
					results <- childResult{id: child, err: err}
					return
				}
				t, cst, err := decodeResolveResp(resp.Payload)
				// The child's reported makespan plus this round trip; the
				// hop's own traffic joins the nested totals.
				cst.simNanos += int64(cc.Net)
				if site.ID() != centry.Site {
					cst.bytes += int64(cc.ReqBytes + cc.RespBytes)
					cst.messages += 2
				}
				results <- childResult{id: child, t: t, stats: cst, err: err}
			}(child)
		}
		subs := make(map[xmltree.FragmentID]eval.Triplet, len(entry.Children))
		var agg resolveStats
		var firstErr error
		for range entry.Children {
			res := <-results
			if res.err != nil && firstErr == nil {
				firstErr = res.err
			}
			if res.err == nil {
				subs[res.id] = res.t
				if res.stats.simNanos > agg.simNanos {
					agg.simNanos = res.stats.simNanos // parallel: makespan is the max
				}
				agg.bytes += res.stats.bytes
				agg.messages += res.stats.messages
				agg.steps += res.stats.steps
			}
		}
		if firstErr != nil {
			return cluster.Response{}, firstErr
		}
		resolved, work, err := eval.ResolveTriplet(id, own, subs, state.prog)
		if err != nil {
			return cluster.Response{}, err
		}
		agg.simNanos += int64(cost.ComputeTime(work))
		agg.steps += work
		// Every fragment is resolved exactly once per run; drop the run
		// state once this site's last fragment has been resolved.
		state.mu.Lock()
		state.remaining--
		done := state.remaining <= 0
		state.mu.Unlock()
		if done {
			site.Delete(runStateKey(runKey))
		}
		return cluster.Response{Payload: encodeResolveResp(resolved, agg), Steps: work}, nil
	}
}

// handleCleanup drops cached run state.
func handleCleanup(_ context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
	site.Delete(runStateKey(string(req.Payload)))
	return cluster.Response{}, nil
}

// handleFetchFragments ships whole fragments, the data movement
// NaiveCentralized pays for.
func handleFetchFragments(ctx context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
	ids, err := decodeFetchReq(req.Payload)
	if err != nil {
		return cluster.Response{}, err
	}
	frs := make([]*frag.Fragment, 0, len(ids))
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return cluster.Response{}, err
		}
		fr, ok := site.Fragment(id)
		if !ok {
			return cluster.Response{}, fmt.Errorf("core: site %s does not store fragment %d", site.ID(), id)
		}
		frs = append(frs, fr)
	}
	return cluster.Response{Payload: encodeFetchResp(frs)}, nil
}

// handleEvalFragDist is NaiveDistributed's per-fragment step: evaluate the
// fragment locally, then sequentially descend into each sub-fragment's
// site, blocking until it answers — the distributed bottom-up traversal
// whose control passes "forth and back" between sites. The response is a
// variable-free triplet plus the accumulated modeled time of the whole
// (sequential) sub-computation.
func handleEvalFragDist(tr cluster.Transport, cost cluster.CostModel) cluster.Handler {
	return func(ctx context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
		prog, st, id, err := decodeEvalFragDistReq(req.Payload)
		if err != nil {
			return cluster.Response{}, err
		}
		fr, ok := site.Fragment(id)
		if !ok {
			return cluster.Response{}, fmt.Errorf("core: site %s does not store fragment %d", site.ID(), id)
		}
		own, steps, err := eval.BottomUp(fr.Root, prog)
		if err != nil {
			return cluster.Response{}, err
		}
		entry, ok := st.Entry(id)
		if !ok {
			return cluster.Response{}, fmt.Errorf("core: fragment %d not in source tree", id)
		}
		var agg resolveStats
		subs := make(map[xmltree.FragmentID]eval.Triplet, len(entry.Children))
		for _, child := range entry.Children {
			centry, ok := st.Entry(child)
			if !ok {
				return cluster.Response{}, fmt.Errorf("core: fragment %d not in source tree", child)
			}
			resp, cc, err := tr.Call(ctx, site.ID(), centry.Site, cluster.Request{
				Kind:    KindEvalFragDist,
				Payload: encodeEvalFragDistReq(prog, st, child),
			})
			if err != nil {
				return cluster.Response{}, err
			}
			t, cst, err := decodeResolveResp(resp.Payload)
			if err != nil {
				return cluster.Response{}, err
			}
			subs[child] = t
			agg.simNanos += cst.simNanos + int64(cc.Net) // sequential: children add up
			agg.bytes += cst.bytes
			agg.messages += cst.messages
			agg.steps += cst.steps
			if site.ID() != centry.Site {
				agg.bytes += int64(cc.ReqBytes + cc.RespBytes)
				agg.messages += 2
			}
		}
		resolved, work, err := eval.ResolveTriplet(id, own, subs, prog)
		if err != nil {
			return cluster.Response{}, err
		}
		agg.simNanos += int64(cost.ComputeTime(steps + work))
		agg.steps += steps + work
		return cluster.Response{Payload: encodeResolveResp(resolved, agg), Steps: steps + work}, nil
	}
}

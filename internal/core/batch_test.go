package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestBatchMatchesIndividual(t *testing.T) {
	_, eng, orig := deployFig2(t)
	ctx := context.Background()
	exprs := make([]xpath.Expr, len(fig2Queries))
	for i, src := range fig2Queries {
		e, err := xpath.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		exprs[i] = e
	}
	prog, roots := xpath.CompileBatch(exprs)
	rep, err := eng.ParBoXBatch(ctx, prog, roots)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Answers) != len(exprs) {
		t.Fatalf("%d answers for %d queries", len(rep.Answers), len(exprs))
	}
	for i, e := range exprs {
		want, _, err := eval.Evaluate(orig, xpath.Compile(e))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Answers[i] != want {
			t.Errorf("batch answer %d (%s) = %v, want %v", i, e, rep.Answers[i], want)
		}
	}
	// One visit per remote site, for the WHOLE batch.
	if rep.Visits["S1"] != 1 || rep.Visits["S2"] != 1 {
		t.Errorf("batch visits = %v, want one per site", rep.Visits)
	}
}

// TestBatchSharingSavesWork: the shared program of overlapping queries is
// smaller than the sum of the individual programs, so one batch round
// performs fewer steps than the individual rounds combined.
func TestBatchSharingSavesWork(t *testing.T) {
	_, eng, _ := deployFig2(t)
	ctx := context.Background()
	srcs := []string{
		`//stock[code = "GOOG"]`,
		`//stock[code = "GOOG"] && //market[name = "NYSE"]`,
		`//stock[code = "GOOG"] || //stock[code = "YHOO"]`,
	}
	exprs := make([]xpath.Expr, len(srcs))
	sumSizes := 0
	for i, src := range srcs {
		exprs[i] = xpath.MustParse(src)
		sumSizes += xpath.Compile(exprs[i]).QListSize()
	}
	prog, roots := xpath.CompileBatch(exprs)
	if prog.QListSize() >= sumSizes {
		t.Errorf("shared program has %d entries, individual sum %d — no sharing?", prog.QListSize(), sumSizes)
	}
	rep, err := eng.ParBoXBatch(ctx, prog, roots)
	if err != nil {
		t.Fatal(err)
	}
	var individual int64
	for _, e := range exprs {
		r, err := eng.ParBoX(ctx, xpath.Compile(e))
		if err != nil {
			t.Fatal(err)
		}
		individual += r.TotalSteps
	}
	if rep.TotalSteps >= individual {
		t.Errorf("batch steps %d not below individual total %d", rep.TotalSteps, individual)
	}
}

// TestPropBatchAgreesWithCentralized: random batches over random
// fragmented documents.
func TestPropBatchAgreesWithCentralized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 2 + r.Intn(50)})
		orig := tree.Clone()
		forest := frag.NewForest(tree)
		if err := forest.SplitRandom(r, 1+r.Intn(6)); err != nil {
			return false
		}
		sites := []frag.SiteID{"S0", "S1", "S2"}
		assign := make(frag.Assignment)
		for _, id := range forest.IDs() {
			assign[id] = sites[r.Intn(len(sites))]
		}
		c := cluster.New(cluster.DefaultCostModel())
		eng, err := Deploy(c, forest, assign)
		if err != nil {
			return false
		}
		n := 1 + r.Intn(6)
		exprs := make([]xpath.Expr, n)
		for i := range exprs {
			exprs[i] = xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true})
		}
		prog, roots := xpath.CompileBatch(exprs)
		if prog.Validate() != nil {
			return false
		}
		rep, err := eng.ParBoXBatch(context.Background(), prog, roots)
		if err != nil {
			t.Logf("batch: %v (seed %d)", err, seed)
			return false
		}
		for i, e := range exprs {
			want, _, err := eval.Evaluate(orig, xpath.Compile(e))
			if err != nil {
				return false
			}
			if rep.Answers[i] != want {
				t.Logf("batch[%d] (%q) = %v, want %v (seed %d)", i, e.String(), rep.Answers[i], want, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBatchIdenticalQueriesShareEverything(t *testing.T) {
	e := xpath.MustParse(`//stock[code = "GOOG"]`)
	prog, roots := xpath.CompileBatch([]xpath.Expr{e, e, e})
	if roots[0] != roots[1] || roots[1] != roots[2] {
		t.Errorf("identical queries got distinct roots: %v", roots)
	}
	single := xpath.Compile(e)
	if prog.QListSize() != single.QListSize() {
		t.Errorf("batch of identical queries has %d entries, single has %d",
			prog.QListSize(), single.QListSize())
	}
}

func TestBatchEmptyAndBadRoots(t *testing.T) {
	_, eng, _ := deployFig2(t)
	ctx := context.Background()
	prog, roots := xpath.CompileBatch(nil)
	rep, err := eng.ParBoXBatch(ctx, prog, roots)
	if err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if len(rep.Answers) != 0 {
		t.Errorf("empty batch returned answers: %v", rep.Answers)
	}
	if _, err := eng.ParBoXBatch(ctx, prog, []int32{99}); err == nil {
		t.Error("out-of-range root accepted")
	}
}

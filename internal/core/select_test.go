package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/fixtures"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// absPath is the document-root-relative path of a node.
func absPath(node *xmltree.Node) []int {
	var rev []int
	for n := node; n.Parent != nil; n = n.Parent {
		for i, c := range n.Parent.Children {
			if c == n {
				rev = append(rev, i)
				break
			}
		}
	}
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// absolutize converts a fragment-relative selection path into a
// document-absolute one: the virtual node that stands for the fragment
// occupies exactly the position the subtree had before the split, so the
// prefix is the (recursively absolutized) path of that virtual node.
func absolutize(t *testing.T, forest *frag.Forest, id xmltree.FragmentID, rel []int) []int {
	t.Helper()
	fr, ok := forest.Fragment(id)
	if !ok {
		t.Fatalf("missing fragment %d", id)
	}
	if fr.Parent == frag.NoParent {
		return rel
	}
	parent, _ := forest.Fragment(fr.Parent)
	var vnode *xmltree.Node
	for _, v := range parent.Root.VirtualNodes() {
		if v.Frag == id {
			vnode = v
			break
		}
	}
	if vnode == nil {
		t.Fatalf("fragment %d has no virtual node in its parent", id)
	}
	prefix := absolutize(t, forest, fr.Parent, absPath(vnode))
	return append(append([]int(nil), prefix...), rel...)
}

func TestSelectParBoXOnFig2(t *testing.T) {
	forest, orig, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultCostModel())
	eng, err := Deploy(c, forest, frag.Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, src := range []string{
		`//stock`,
		`//stock[code = "GOOG"]/sell`,
		`//market[name = "NASDAQ"]`,
		`broker/name`,
		`//nothing`,
	} {
		sp, err := xpath.CompileSelectString(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		rep, err := eng.SelectParBoX(ctx, sp)
		if err != nil {
			t.Fatalf("SelectParBoX(%q): %v", src, err)
		}
		// Oracle over the unfragmented original.
		e, _ := xpath.Parse(src)
		want, err := xpath.SelectRaw(e, orig)
		if err != nil {
			t.Fatal(err)
		}
		wantSet := make(map[string]bool, len(want))
		for _, n := range want {
			wantSet[fmt.Sprint(absPath(n))] = true
		}
		if rep.Count != len(wantSet) {
			t.Errorf("%q: selected %d, want %d", src, rep.Count, len(wantSet))
			continue
		}
		for id, paths := range rep.Paths {
			for _, rel := range paths {
				key := fmt.Sprint(absolutize(t, forest, id, rel))
				if !wantSet[key] {
					t.Errorf("%q: spurious selection %s in F%d", src, key, id)
				}
			}
		}
	}
}

// TestSelectVisitsBound: pass 1 visits each site once; pass 2 adds at most
// one visit per fragment reached, so total visits per site ≤ 1+card(F_Si).
func TestSelectVisitsBound(t *testing.T) {
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultCostModel())
	eng, err := Deploy(c, forest, frag.Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := xpath.CompileSelectString(`//stock`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.SelectParBoX(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Visits["S2"]; got > 3 { // 1 (pass 1) + 2 fragments
		t.Errorf("S2 visits = %d, want ≤ 3", got)
	}
	if got := rep.Visits["S1"]; got > 2 {
		t.Errorf("S1 visits = %d, want ≤ 2", got)
	}
}

// TestSelectSkipsDeadFragments: fragments no live state can reach are not
// contacted in pass 2.
func TestSelectSkipsDeadFragments(t *testing.T) {
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultCostModel())
	eng, err := Deploy(c, forest, frag.Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"})
	if err != nil {
		t.Fatal(err)
	}
	// Selecting broker names: paths of length ≤ 2 from the root never
	// enter the market fragments F1/F2/F3... F1 is under broker, so the
	// child chain dies at the market level. Use a path that cannot cross
	// into any sub-fragment: the root's immediate broker children.
	sp, err := xpath.CompileSelectString(`broker`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.SelectParBoX(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count != 2 {
		t.Fatalf("selected %d brokers, want 2", rep.Count)
	}
	// Pass 2 must not have visited S1/S2 at all: 1 visit each (pass 1).
	if got := rep.Visits["S1"]; got != 1 {
		t.Errorf("S1 visits = %d, want 1 (pass 2 should skip it)", got)
	}
	if got := rep.Visits["S2"]; got != 1 {
		t.Errorf("S2 visits = %d, want 1 (pass 2 should skip it)", got)
	}
}

// TestPropSelectDistributedMatchesOracle is the selection analogue of the
// central differential property: any fragmentation, any path query.
func TestPropSelectDistributedMatchesOracle(t *testing.T) {
	f := func(seed int64, sizeRaw, splitRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 2 + int(sizeRaw%60)})
		orig := tree.Clone()
		forest := frag.NewForest(tree)
		if err := forest.SplitRandom(r, 1+int(splitRaw%8)); err != nil {
			return false
		}
		sites := []frag.SiteID{"S0", "S1", "S2"}
		assign := make(frag.Assignment)
		for _, id := range forest.IDs() {
			assign[id] = sites[r.Intn(len(sites))]
		}
		c := cluster.New(cluster.DefaultCostModel())
		eng, err := Deploy(c, forest, assign)
		if err != nil {
			return false
		}
		var e xpath.Expr
		for {
			e = xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true})
			if _, ok := e.(*xpath.Path); ok {
				break
			}
		}
		sp, err := xpath.CompileSelect(e)
		if err != nil {
			return false
		}
		rep, err := eng.SelectParBoX(context.Background(), sp)
		if err != nil {
			t.Logf("SelectParBoX(%q): %v (seed %d)", e.String(), err, seed)
			return false
		}
		want, err := xpath.SelectRaw(e, orig)
		if err != nil {
			return false
		}
		wantSet := make(map[string]bool, len(want))
		for _, n := range want {
			wantSet[fmt.Sprint(absPath(n))] = true
		}
		if rep.Count != len(wantSet) {
			t.Logf("%q: got %d, want %d (seed %d)", e.String(), rep.Count, len(wantSet), seed)
			return false
		}
		for id, paths := range rep.Paths {
			for _, rel := range paths {
				if !wantSet[fmt.Sprint(absolutize(t, forest, id, rel))] {
					t.Logf("%q: spurious selection in F%d (seed %d)", e.String(), id, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSelectCodecErrors(t *testing.T) {
	if _, _, _, _, err := decodeSelectReq(nil); err == nil {
		t.Error("empty select request accepted")
	}
	if _, _, err := decodeSelectResp([]byte{200}); err == nil {
		t.Error("bad select response accepted")
	}
	sp, err := xpath.CompileSelectString(`//a`)
	if err != nil {
		t.Fatal(err)
	}
	req := encodeSelectReq(encodeSelectProgram(sp), 1, eval.StartArrival(), nil)
	sp2, id, arr, cv, err := decodeSelectReq(req)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || arr != eval.StartArrival() || len(cv) != 0 || len(sp2.Chain) != len(sp.Chain) {
		t.Errorf("select request round trip mismatch: id=%d arr=%+v", id, arr)
	}
	// Response round trip with paths and forwards.
	paths := [][]int{{0, 1}, {2}}
	fwd := map[xmltree.FragmentID]eval.Arrival{7: {States: 5, Sticky: 4}}
	gotPaths, gotFwd, err := decodeSelectResp(encodeSelectResp(paths, fwd))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPaths) != 2 || fmt.Sprint(gotPaths) != fmt.Sprint(paths) {
		t.Errorf("paths round trip: %v", gotPaths)
	}
	if gotFwd[7] != (eval.Arrival{States: 5, Sticky: 4}) {
		t.Errorf("forward round trip: %+v", gotFwd)
	}
}

package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// KindSelect is the pass-2 message of SelectParBoX: propagate NFA states
// through one fragment and return the selected paths plus the arrivals for
// its sub-fragments.
const KindSelect = "parbox.select"

// SelectReport is the outcome of a distributed selection query (Section 8
// extension: data-selection XPath with partial evaluation).
type SelectReport struct {
	// Paths holds, per fragment, the selected nodes as child-index paths
	// from the fragment root.
	Paths map[xmltree.FragmentID][][]int
	// Count is the total number of selected nodes.
	Count int
	// Accounting, as in Report.
	SimTime    time.Duration
	Wall       time.Duration
	Bytes      int64
	Messages   int64
	TotalSteps int64
	Visits     map[frag.SiteID]int64
	// Failovers counts failed site calls re-placed onto surviving
	// replicas by the serving tier (always zero without one).
	Failovers int64
	// Hedges/HedgeWins count speculative duplicate calls issued and won
	// (see Report; zero with hedging disabled).
	Hedges, HedgeWins int64
}

// SelectParBoX evaluates a data-selection path query:
//
//	pass 1 — ordinary ParBoX stage 2 (each site visited once) plus a full
//	         solve, yielding the constant V/DV vectors of every fragment;
//	pass 2 — top-down NFA propagation fragment by fragment down the source
//	         tree; fragments no live state reaches are skipped entirely.
//
// With the per-fragment pass-2 scheduling used here a site is visited at
// most 1 + card(F_Si) times; the paper's Section 8 remark sketches an "at
// most twice" schedule, which batches pass 2 per site (see DESIGN.md).
func (e *Engine) SelectParBoX(ctx context.Context, sp *xpath.SelectProgram) (SelectReport, error) {
	e, err := e.forRound()
	if err != nil {
		return SelectReport{}, err
	}
	start := time.Now()
	rec := newRecorder()

	// Pass 1: collect triplets from every site, through the
	// scatter/gather layer.
	sites := e.st.Sites()
	mk := func(site frag.SiteID, ids []xmltree.FragmentID) scatterJob[[]fragTriplet] {
		return e.evalQualJob(sp.Bool, 0, site, ids)
	}
	jobs := make([]scatterJob[[]fragTriplet], len(sites))
	for i, site := range sites {
		jobs[i] = mk(site, e.st.FragmentsAt(site))
	}
	perSite, simPass1, err := scatterHedged(ctx, e.tr, e.coord, e.maxInflight, rec, jobs, e.obs(), e.failoverRetry(rec, mk), e.hedgeHook(mk))
	if err != nil {
		return SelectReport{}, err
	}
	triplets := make(map[xmltree.FragmentID]eval.Triplet, e.st.Count())
	for _, fts := range perSite {
		for _, ft := range fts {
			triplets[ft.id] = ft.triplet
		}
	}
	vecs, solveWork, err := eval.SolveAll(e.st, triplets, sp.Bool)
	if err != nil {
		return SelectReport{}, err
	}
	rec.steps += solveWork
	sim := simPass1 + e.cost.ComputeTime(solveWork)

	// Pass 2: walk the source tree top-down, level by level; fragments at
	// one level run in parallel, levels are sequential (states flow
	// downward).
	rep := SelectReport{Paths: make(map[xmltree.FragmentID][][]int)}
	pending := map[xmltree.FragmentID]eval.Arrival{e.st.Root(): eval.StartArrival()}
	spBytes := encodeSelectProgram(sp)
	type selResult struct {
		paths   [][]int
		forward map[xmltree.FragmentID]eval.Arrival
	}
	for len(pending) > 0 {
		ids := sortedFragmentIDs(pending)
		jobs := make([]scatterJob[selResult], len(ids))
		for i, id := range ids {
			entry, ok := e.st.Entry(id)
			if !ok {
				return SelectReport{}, fmt.Errorf("core: fragment %d not in source tree", id)
			}
			// Ship the resolved vectors of this fragment's children only.
			childVecs := make(map[xmltree.FragmentID]eval.BoolVecs, len(entry.Children))
			for _, c := range entry.Children {
				childVecs[c] = vecs[c]
			}
			jobs[i] = scatterJob[selResult]{
				to: entry.Site,
				req: cluster.Request{
					Kind:    KindSelect,
					Payload: encodeSelectReq(spBytes, id, pending[id], childVecs),
				},
				dec: func(resp cluster.Response, _ cluster.CallCost) (selResult, error) {
					paths, fwd, err := decodeSelectResp(resp.Payload)
					return selResult{paths: paths, forward: fwd}, err
				},
			}
		}
		level, simLevel, err := scatterWith(ctx, e.tr, e.coord, e.maxInflight, rec, jobs, e.obs(), nil)
		if err != nil {
			return SelectReport{}, err
		}
		next := make(map[xmltree.FragmentID]eval.Arrival)
		for i, res := range level {
			if len(res.paths) > 0 {
				rep.Paths[ids[i]] = res.paths
				rep.Count += len(res.paths)
			}
			for c, arr := range res.forward {
				prev := next[c]
				prev.States |= arr.States
				prev.Sticky |= arr.Sticky
				next[c] = prev
			}
		}
		sim += simLevel
		pending = next
	}
	rep.SimTime = sim
	rep.Wall = time.Since(start)
	a := rec.snapshot()
	rep.Bytes = a.bytes
	rep.Messages = a.messages
	rep.TotalSteps = a.steps
	rep.Visits = a.visits
	rep.Failovers = a.failovers
	rep.Hedges = a.hedges
	rep.HedgeWins = a.hedgeWins
	return rep, nil
}

// handleSelect is the site side of pass 2.
func handleSelect(_ context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
	sp, id, arr, childVecs, err := decodeSelectReq(req.Payload)
	if err != nil {
		return cluster.Response{}, err
	}
	fr, ok := site.Fragment(id)
	if !ok {
		return cluster.Response{}, fmt.Errorf("core: site %s does not store fragment %d", site.ID(), id)
	}
	res, err := eval.SelectFragment(fr.Root, sp, childVecs, arr)
	if err != nil {
		return cluster.Response{}, err
	}
	return cluster.Response{Payload: encodeSelectResp(res.Selected, res.Forward), Steps: res.Steps}, nil
}

// --- codecs ------------------------------------------------------------

func encodeSelectProgram(sp *xpath.SelectProgram) []byte {
	dst := appendBytes(nil, sp.Bool.Encode())
	dst = binary.AppendUvarint(dst, uint64(len(sp.Chain)))
	for _, s := range sp.Chain {
		dst = append(dst, byte(s.Kind))
		dst = binary.AppendUvarint(dst, uint64(s.Test+1))
	}
	return dst
}

func decodeSelectProgram(r *reader) (*xpath.SelectProgram, error) {
	pb, err := r.bytes()
	if err != nil {
		return nil, err
	}
	prog, err := xpath.DecodeProgram(pb)
	if err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 || n > xpath.MaxSelectChain {
		return nil, fmt.Errorf("%w: chain length %d", ErrBadMessage, n)
	}
	sp := &xpath.SelectProgram{Bool: prog, Chain: make([]xpath.SelectStep, n)}
	for i := range sp.Chain {
		if r.pos >= len(r.buf) {
			return nil, fmt.Errorf("%w: truncated chain", ErrBadMessage)
		}
		kind := xpath.SelectKind(r.buf[r.pos])
		r.pos++
		if kind > xpath.SDescOrSelf {
			return nil, fmt.Errorf("%w: bad select kind %d", ErrBadMessage, kind)
		}
		testRaw, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		test := int32(testRaw) - 1
		if test >= int32(len(prog.Subs)) {
			return nil, fmt.Errorf("%w: chain test %d out of range", ErrBadMessage, test)
		}
		sp.Chain[i] = xpath.SelectStep{Kind: kind, Test: test}
	}
	return sp, nil
}

func appendBoolVec(dst []byte, v []bool) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	var cur byte
	nbits := 0
	for _, b := range v {
		if b {
			cur |= 1 << nbits
		}
		nbits++
		if nbits == 8 {
			dst = append(dst, cur)
			cur, nbits = 0, 0
		}
	}
	if nbits > 0 {
		dst = append(dst, cur)
	}
	return dst
}

func (r *reader) boolVec() ([]bool, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nbytes := (int(n) + 7) / 8
	if n > uint64(8*(len(r.buf)-r.pos)) {
		return nil, fmt.Errorf("%w: bool vector overruns buffer", ErrBadMessage)
	}
	v := make([]bool, n)
	for i := range v {
		v[i] = r.buf[r.pos+i/8]&(1<<(i%8)) != 0
	}
	r.pos += nbytes
	return v, nil
}

func encodeSelectReq(spBytes []byte, id xmltree.FragmentID, arr eval.Arrival,
	childVecs map[xmltree.FragmentID]eval.BoolVecs) []byte {
	dst := appendBytes(nil, spBytes)
	dst = binary.AppendUvarint(dst, uint64(uint32(id)))
	dst = binary.AppendUvarint(dst, arr.States)
	dst = binary.AppendUvarint(dst, arr.Sticky)
	dst = binary.AppendUvarint(dst, uint64(len(childVecs)))
	// Deterministic order for reproducible byte counts.
	ids := make([]xmltree.FragmentID, 0, len(childVecs))
	for c := range childVecs {
		ids = append(ids, c)
	}
	for i := 0; i < len(ids)-1; i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, c := range ids {
		dst = binary.AppendUvarint(dst, uint64(uint32(c)))
		dst = appendBoolVec(dst, childVecs[c].V)
		dst = appendBoolVec(dst, childVecs[c].DV)
	}
	return dst
}

func decodeSelectReq(buf []byte) (*xpath.SelectProgram, xmltree.FragmentID, eval.Arrival, map[xmltree.FragmentID]eval.BoolVecs, error) {
	r := &reader{buf: buf}
	spb, err := r.bytes()
	if err != nil {
		return nil, 0, eval.Arrival{}, nil, err
	}
	sp, err := decodeSelectProgram(&reader{buf: spb})
	if err != nil {
		return nil, 0, eval.Arrival{}, nil, err
	}
	idRaw, err := r.uvarint()
	if err != nil {
		return nil, 0, eval.Arrival{}, nil, err
	}
	states, err := r.uvarint()
	if err != nil {
		return nil, 0, eval.Arrival{}, nil, err
	}
	sticky, err := r.uvarint()
	if err != nil {
		return nil, 0, eval.Arrival{}, nil, err
	}
	nc, err := r.uvarint()
	if err != nil {
		return nil, 0, eval.Arrival{}, nil, err
	}
	if nc > uint64(len(buf)) {
		return nil, 0, eval.Arrival{}, nil, fmt.Errorf("%w: child count %d", ErrBadMessage, nc)
	}
	childVecs := make(map[xmltree.FragmentID]eval.BoolVecs, nc)
	for i := uint64(0); i < nc; i++ {
		cRaw, err := r.uvarint()
		if err != nil {
			return nil, 0, eval.Arrival{}, nil, err
		}
		v, err := r.boolVec()
		if err != nil {
			return nil, 0, eval.Arrival{}, nil, err
		}
		dv, err := r.boolVec()
		if err != nil {
			return nil, 0, eval.Arrival{}, nil, err
		}
		childVecs[xmltree.FragmentID(uint32(cRaw))] = eval.BoolVecs{V: v, DV: dv}
	}
	if err := r.done(); err != nil {
		return nil, 0, eval.Arrival{}, nil, err
	}
	return sp, xmltree.FragmentID(uint32(idRaw)), eval.Arrival{States: states, Sticky: sticky}, childVecs, nil
}

func encodeSelectResp(paths [][]int, forward map[xmltree.FragmentID]eval.Arrival) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(paths)))
	for _, p := range paths {
		dst = binary.AppendUvarint(dst, uint64(len(p)))
		for _, i := range p {
			dst = binary.AppendUvarint(dst, uint64(i))
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(forward)))
	ids := make([]xmltree.FragmentID, 0, len(forward))
	for c := range forward {
		ids = append(ids, c)
	}
	for i := 0; i < len(ids)-1; i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, c := range ids {
		dst = binary.AppendUvarint(dst, uint64(uint32(c)))
		dst = binary.AppendUvarint(dst, forward[c].States)
		dst = binary.AppendUvarint(dst, forward[c].Sticky)
	}
	return dst
}

func decodeSelectResp(buf []byte) ([][]int, map[xmltree.FragmentID]eval.Arrival, error) {
	r := &reader{buf: buf}
	np, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if np > uint64(len(buf))+1 {
		return nil, nil, fmt.Errorf("%w: path count %d", ErrBadMessage, np)
	}
	paths := make([][]int, 0, np)
	for i := uint64(0); i < np; i++ {
		plen, err := r.uvarint()
		if err != nil {
			return nil, nil, err
		}
		if plen > uint64(len(buf)-r.pos)+1 {
			return nil, nil, fmt.Errorf("%w: path length %d", ErrBadMessage, plen)
		}
		p := make([]int, plen)
		for j := range p {
			v, err := r.uvarint()
			if err != nil {
				return nil, nil, err
			}
			p[j] = int(v)
		}
		paths = append(paths, p)
	}
	nf, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if nf > uint64(len(buf))+1 {
		return nil, nil, fmt.Errorf("%w: forward count %d", ErrBadMessage, nf)
	}
	forward := make(map[xmltree.FragmentID]eval.Arrival, nf)
	for i := uint64(0); i < nf; i++ {
		cRaw, err := r.uvarint()
		if err != nil {
			return nil, nil, err
		}
		states, err := r.uvarint()
		if err != nil {
			return nil, nil, err
		}
		sticky, err := r.uvarint()
		if err != nil {
			return nil, nil, err
		}
		forward[xmltree.FragmentID(uint32(cRaw))] = eval.Arrival{States: states, Sticky: sticky}
	}
	return paths, forward, r.done()
}

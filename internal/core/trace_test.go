package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fixtures"
	"repro/internal/frag"
	"repro/internal/xpath"
)

// deployTraced builds the Fig. 2 deployment behind a tracing transport.
func deployTraced(t *testing.T) (*cluster.Tracer, *Engine) {
	t.Helper()
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	st, err := fixtures.Fig2SourceTree(forest)
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultCostModel())
	tracer := cluster.NewTracer()
	tt := &cluster.TracingTransport{Inner: c, Tracer: tracer}
	for _, siteID := range st.Sites() {
		site := c.AddSite(siteID)
		for _, id := range st.FragmentsAt(siteID) {
			fr, _ := forest.Fragment(id)
			site.AddFragment(fr)
		}
		RegisterHandlers(site, tt, c.Cost())
	}
	return tracer, NewEngine(tt, "S0", st, c.Cost())
}

// TestTraceParBoXMessageFlow pins the protocol shape of ParBoX: exactly
// one evalQual request per remote site and nothing else.
func TestTraceParBoXMessageFlow(t *testing.T) {
	tracer, eng := deployTraced(t)
	prog := xpath.MustCompileString(`//stock[code = "YHOO"]`)
	if _, err := eng.ParBoX(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	events := tracer.Events()
	if len(events) != 2 {
		t.Fatalf("ParBoX produced %d remote calls, want 2:\n%s", len(events), tracer)
	}
	targets := map[frag.SiteID]bool{}
	for _, e := range events {
		if e.Kind != KindEvalQual {
			t.Errorf("unexpected message kind %s", e.Kind)
		}
		if e.From != "S0" {
			t.Errorf("message from %s, want the coordinator", e.From)
		}
		targets[e.To] = true
	}
	if !targets["S1"] || !targets["S2"] {
		t.Errorf("targets = %v, want S1 and S2", targets)
	}
}

// TestTraceFullDistMessageFlow pins FullDist: one evalQualKeep per remote
// site, then resolve hops following the source tree (S0→S1 for F1, S1→S2
// for F2, S0→S2 for F3) — and no cleanup messages on the happy path.
func TestTraceFullDistMessageFlow(t *testing.T) {
	tracer, eng := deployTraced(t)
	prog := xpath.MustCompileString(`//stock[code = "YHOO"]`)
	if _, err := eng.FullDist(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	counts := tracer.KindCounts()
	if counts[KindEvalQualKeep] != 2 {
		t.Errorf("evalQualKeep count = %d, want 2", counts[KindEvalQualKeep])
	}
	if counts[KindResolve] != 3 {
		t.Errorf("resolve count = %d, want 3 (F1, F2, F3)", counts[KindResolve])
	}
	if counts[KindCleanup] != 0 {
		t.Errorf("cleanup count = %d, want 0 on the happy path", counts[KindCleanup])
	}
	// The S1→S2 hop (resolving F2 from F1's site) must appear.
	found := false
	for _, e := range tracer.Events() {
		if e.Kind == KindResolve && e.From == "S1" && e.To == "S2" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing S1→S2 resolve hop:\n%s", tracer)
	}
}

func TestTracerRendering(t *testing.T) {
	tracer, eng := deployTraced(t)
	prog := xpath.MustCompileString(`//broker`)
	if _, err := eng.ParBoX(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	s := tracer.String()
	if !strings.Contains(s, "S0→S1") || !strings.Contains(s, KindEvalQual) {
		t.Errorf("trace rendering:\n%s", s)
	}
	tracer.Reset()
	if len(tracer.Events()) != 0 {
		t.Error("Reset did not clear the trace")
	}
}

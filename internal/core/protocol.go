// Package core implements the paper's distributed query evaluation
// algorithms over the cluster substrate:
//
//   - ParBoX           (Section 3: partial evaluation, one visit per site)
//   - NaiveCentralized (Section 3: ship all fragments to the coordinator)
//   - NaiveDistributed (Section 3: distributed sequential traversal)
//   - HybridParBoX     (Section 4: tipping-point switch)
//   - FullDistParBoX   (Section 4: distributed evalST, no coordinator
//     bottleneck, no variables on the wire)
//   - LazyParBoX       (Section 4: level-by-level evaluation)
//
// All site-side behaviour is expressed as message handlers registered with
// RegisterHandlers, so the same algorithms run unchanged over the
// in-process simulated LAN and over real TCP sites.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/boolexpr"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Message kinds of the ParBoX protocol.
const (
	// KindEvalQual asks a site to run Procedure evalQual: evaluate the
	// query program over a list of locally stored fragments and return the
	// triplets (stage 2 of ParBoX).
	KindEvalQual = "parbox.evalQual"
	// KindEvalQualKeep is KindEvalQual plus caching of the triplets (and
	// the source tree) at the site under a run key, as FullDistParBoX
	// requires for its distributed third phase.
	KindEvalQualKeep = "parbox.evalQualKeep"
	// KindResolve asks a site to produce the fully resolved
	// (variable-free) triplet of one fragment, recursively gathering its
	// sub-fragments' resolved triplets from their sites (Procedure
	// evalDistrST; see DESIGN.md on the pull-vs-push inversion).
	KindResolve = "parbox.resolve"
	// KindCleanup drops the cached state of a run key.
	KindCleanup = "parbox.cleanup"
	// KindFetchFragments ships whole fragments to the caller
	// (NaiveCentralized).
	KindFetchFragments = "parbox.fetchFragments"
	// KindEvalFragDist evaluates one fragment and recursively descends
	// into its sub-fragments' sites (NaiveDistributed).
	KindEvalFragDist = "parbox.evalFragDist"
)

// ErrBadMessage is wrapped by all payload decoding failures.
var ErrBadMessage = errors.New("core: malformed message payload")

// --- small codec helpers -------------------------------------------------

type reader struct {
	buf []byte
	pos int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrBadMessage, r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)-r.pos) {
		return nil, fmt.Errorf("%w: length %d exceeds buffer", ErrBadMessage, n)
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

func (r *reader) done() error {
	if r.pos != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(r.buf)-r.pos)
	}
	return nil
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendFragIDs(dst []byte, ids []xmltree.FragmentID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = binary.AppendUvarint(dst, uint64(uint32(id)))
	}
	return dst
}

func (r *reader) fragIDs() ([]xmltree.FragmentID, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)-r.pos)+1 {
		return nil, fmt.Errorf("%w: fragment count %d exceeds buffer", ErrBadMessage, n)
	}
	ids := make([]xmltree.FragmentID, n)
	for i := range ids {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		ids[i] = xmltree.FragmentID(uint32(v))
	}
	return ids, nil
}

// --- evalQual ------------------------------------------------------------

// evalQualReq: program, fragment IDs, (for the Keep variant) the run key
// and encoded source tree, and the program fingerprint (0 when the caller
// does not want the site's versioned triplet cache consulted).
type evalQualReq struct {
	prog   *xpath.Program
	ids    []xmltree.FragmentID
	runKey string
	st     *frag.SourceTree // only for KindEvalQualKeep
	fp     uint64           // nonzero enables the site triplet cache
}

func encodeEvalQualReq(q evalQualReq) []byte {
	dst := appendBytes(nil, q.prog.Encode())
	dst = appendFragIDs(dst, q.ids)
	dst = appendBytes(dst, []byte(q.runKey))
	if q.st != nil {
		dst = appendBytes(dst, q.st.Encode())
	} else {
		dst = appendBytes(dst, nil)
	}
	return binary.AppendUvarint(dst, q.fp)
}

func decodeEvalQualReq(buf []byte) (evalQualReq, error) {
	r := &reader{buf: buf}
	var q evalQualReq
	pb, err := r.bytes()
	if err != nil {
		return q, err
	}
	if q.prog, err = xpath.DecodeProgram(pb); err != nil {
		return q, err
	}
	if q.ids, err = r.fragIDs(); err != nil {
		return q, err
	}
	rk, err := r.bytes()
	if err != nil {
		return q, err
	}
	q.runKey = string(rk)
	stb, err := r.bytes()
	if err != nil {
		return q, err
	}
	if len(stb) > 0 {
		if q.st, err = frag.DecodeSourceTree(stb); err != nil {
			return q, err
		}
	}
	if q.fp, err = r.uvarint(); err != nil {
		return q, err
	}
	return q, r.done()
}

// evalQualResp: per fragment, its ID and encoded triplet. A fragTriplet
// carries either a live triplet or its pre-computed encoding (enc != nil;
// the cache hit path hands back memoized bytes without re-encoding).
type fragTriplet struct {
	id      xmltree.FragmentID
	triplet eval.Triplet
	enc     []byte
}

// encodedSize returns the entry's wire size without encoding.
func (ft *fragTriplet) encodedSize() int {
	if ft.enc != nil {
		return len(ft.enc)
	}
	return ft.triplet.EncodedSize()
}

func encodeEvalQualResp(fts []fragTriplet) []byte {
	// Presize exactly (triplet sizes are known without encoding) so the
	// whole response is one allocation and triplets append in place
	// instead of each being encoded into a throwaway buffer first.
	sizes := make([]int, len(fts))
	size := boolexpr.UvarintLen(uint64(len(fts)))
	for i := range fts {
		sizes[i] = fts[i].encodedSize()
		size += boolexpr.UvarintLen(uint64(uint32(fts[i].id))) + boolexpr.UvarintLen(uint64(sizes[i])) + sizes[i]
	}
	dst := make([]byte, 0, size)
	dst = binary.AppendUvarint(dst, uint64(len(fts)))
	for i := range fts {
		dst = binary.AppendUvarint(dst, uint64(uint32(fts[i].id)))
		dst = binary.AppendUvarint(dst, uint64(sizes[i]))
		if fts[i].enc != nil {
			dst = append(dst, fts[i].enc...)
		} else {
			dst = fts[i].triplet.AppendEncoded(dst)
		}
	}
	return dst
}

// decodeEvalQualResp parses an evalQual response. A non-nil slab receives
// the decoded formulas (the coordinator drains a whole site's triplets —
// often a whole run's — through one slab; see boolexpr.Slab).
func decodeEvalQualResp(buf []byte, slab *boolexpr.Slab) ([]fragTriplet, error) {
	r := &reader{buf: buf}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf))+1 {
		return nil, fmt.Errorf("%w: triplet count %d exceeds buffer", ErrBadMessage, n)
	}
	fts := make([]fragTriplet, 0, n)
	for i := uint64(0); i < n; i++ {
		idRaw, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		tb, err := r.bytes()
		if err != nil {
			return nil, err
		}
		var t eval.Triplet
		if slab != nil {
			t, err = eval.DecodeTripletSlab(tb, slab)
		} else {
			t, err = eval.DecodeTriplet(tb)
		}
		if err != nil {
			return nil, err
		}
		fts = append(fts, fragTriplet{id: xmltree.FragmentID(uint32(idRaw)), triplet: t})
	}
	return fts, r.done()
}

// --- resolve ---------------------------------------------------------------

// resolveReq: run key plus the fragment to resolve.
func encodeResolveReq(runKey string, id xmltree.FragmentID) []byte {
	dst := appendBytes(nil, []byte(runKey))
	return binary.AppendUvarint(dst, uint64(uint32(id)))
}

func decodeResolveReq(buf []byte) (string, xmltree.FragmentID, error) {
	r := &reader{buf: buf}
	rk, err := r.bytes()
	if err != nil {
		return "", 0, err
	}
	idRaw, err := r.uvarint()
	if err != nil {
		return "", 0, err
	}
	return string(rk), xmltree.FragmentID(uint32(idRaw)), r.done()
}

// resolveStats is the accounting a recursive computation reports upward:
// the modeled time of the whole sub-computation (for the deterministic
// parallel makespan) and the nested traffic, which the coordinator cannot
// observe directly because sites call each other.
type resolveStats struct {
	simNanos int64
	bytes    int64
	messages int64
	steps    int64
}

// resolveResp: the resolved triplet plus the sub-computation's stats.
func encodeResolveResp(t eval.Triplet, st resolveStats) []byte {
	dst := binary.AppendUvarint(nil, uint64(st.simNanos))
	dst = binary.AppendUvarint(dst, uint64(st.bytes))
	dst = binary.AppendUvarint(dst, uint64(st.messages))
	dst = binary.AppendUvarint(dst, uint64(st.steps))
	return appendBytes(dst, t.Encode())
}

func decodeResolveResp(buf []byte) (eval.Triplet, resolveStats, error) {
	r := &reader{buf: buf}
	var st resolveStats
	sim, err := r.uvarint()
	if err != nil {
		return eval.Triplet{}, st, err
	}
	st.simNanos = int64(sim)
	b, err := r.uvarint()
	if err != nil {
		return eval.Triplet{}, st, err
	}
	st.bytes = int64(b)
	m, err := r.uvarint()
	if err != nil {
		return eval.Triplet{}, st, err
	}
	st.messages = int64(m)
	sp, err := r.uvarint()
	if err != nil {
		return eval.Triplet{}, st, err
	}
	st.steps = int64(sp)
	tb, err := r.bytes()
	if err != nil {
		return eval.Triplet{}, st, err
	}
	t, err := eval.DecodeTriplet(tb)
	if err != nil {
		return eval.Triplet{}, st, err
	}
	return t, st, r.done()
}

// --- fetchFragments --------------------------------------------------------

func encodeFetchReq(ids []xmltree.FragmentID) []byte {
	return appendFragIDs(nil, ids)
}

func decodeFetchReq(buf []byte) ([]xmltree.FragmentID, error) {
	r := &reader{buf: buf}
	ids, err := r.fragIDs()
	if err != nil {
		return nil, err
	}
	return ids, r.done()
}

// fetchResp: per fragment: ID, parent+1, encoded subtree.
func encodeFetchResp(frs []*frag.Fragment) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(frs)))
	for _, fr := range frs {
		dst = binary.AppendUvarint(dst, uint64(uint32(fr.ID)))
		dst = binary.AppendUvarint(dst, uint64(fr.Parent+1))
		dst = appendBytes(dst, xmltree.Encode(fr.Root))
	}
	return dst
}

func decodeFetchResp(buf []byte) ([]*frag.Fragment, error) {
	r := &reader{buf: buf}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf))+1 {
		return nil, fmt.Errorf("%w: fragment count %d exceeds buffer", ErrBadMessage, n)
	}
	frs := make([]*frag.Fragment, 0, n)
	for i := uint64(0); i < n; i++ {
		idRaw, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		parentRaw, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		tb, err := r.bytes()
		if err != nil {
			return nil, err
		}
		root, err := xmltree.Decode(tb)
		if err != nil {
			return nil, err
		}
		frs = append(frs, &frag.Fragment{
			ID:     xmltree.FragmentID(uint32(idRaw)),
			Parent: xmltree.FragmentID(uint32(parentRaw)) - 1,
			Root:   root,
		})
	}
	return frs, r.done()
}

// --- evalFragDist ------------------------------------------------------------

// evalFragDistReq: program, source tree, fragment to evaluate.
func encodeEvalFragDistReq(prog *xpath.Program, st *frag.SourceTree, id xmltree.FragmentID) []byte {
	dst := appendBytes(nil, prog.Encode())
	dst = appendBytes(dst, st.Encode())
	return binary.AppendUvarint(dst, uint64(uint32(id)))
}

func decodeEvalFragDistReq(buf []byte) (*xpath.Program, *frag.SourceTree, xmltree.FragmentID, error) {
	r := &reader{buf: buf}
	pb, err := r.bytes()
	if err != nil {
		return nil, nil, 0, err
	}
	prog, err := xpath.DecodeProgram(pb)
	if err != nil {
		return nil, nil, 0, err
	}
	stb, err := r.bytes()
	if err != nil {
		return nil, nil, 0, err
	}
	st, err := frag.DecodeSourceTree(stb)
	if err != nil {
		return nil, nil, 0, err
	}
	idRaw, err := r.uvarint()
	if err != nil {
		return nil, nil, 0, err
	}
	return prog, st, xmltree.FragmentID(uint32(idRaw)), r.done()
}

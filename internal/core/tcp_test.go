package core

import (
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/fixtures"
	"repro/internal/frag"
	"repro/internal/xpath"
)

// TestAlgorithmsOverTCP runs the full running example over real sockets:
// S1 and S2 served by TCP site daemons, S0 (the coordinator) local, the
// same handlers as the in-process cluster, and every algorithm end to end.
// FullDist and NaiveDistributed exercise site→site hops over the sockets.
func TestAlgorithmsOverTCP(t *testing.T) {
	forest, orig, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	st, err := fixtures.Fig2SourceTree(forest)
	if err != nil {
		t.Fatal(err)
	}
	cost := cluster.DefaultCostModel()

	// One shared transport: the coordinator and the remote sites all route
	// through it. Sites capture it before the listener ports exist, so the
	// address map is installed afterwards via SetAddrs.
	tr := cluster.NewTCPTransport(nil)
	defer tr.Close()

	var servers []*cluster.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	addrs := make(map[frag.SiteID]string)
	for _, siteID := range st.Sites() {
		site := cluster.NewSite(siteID)
		for _, id := range st.FragmentsAt(siteID) {
			fr, _ := forest.Fragment(id)
			site.AddFragment(fr)
		}
		RegisterHandlers(site, tr, cost)
		if siteID == "S0" {
			tr.Local(site) // the coordinator's own site: no sockets
			continue
		}
		srv, err := cluster.Serve(site, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs[siteID] = srv.Addr()
	}
	tr.SetAddrs(addrs)

	eng := NewEngine(tr, "S0", st, cost)
	ctx := context.Background()
	for _, src := range []string{
		`//stock[code/text() = "YHOO"]`,
		`//stock[code = "GOOG" && buy = "370"]`,
		`//nothing`,
	} {
		prog := xpath.MustCompileString(src)
		want, _, err := eval.Evaluate(orig, prog)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range Algorithms() {
			rep, err := eng.Run(ctx, algo, prog)
			if err != nil {
				t.Errorf("%s(%q) over TCP: %v", algo, src, err)
				continue
			}
			if rep.Answer != want {
				t.Errorf("%s(%q) over TCP = %v, want %v", algo, src, rep.Answer, want)
			}
		}
	}
	if tr.Metrics().TotalBytes() == 0 {
		t.Error("no bytes recorded over TCP")
	}
}

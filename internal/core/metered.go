package core

import (
	"context"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/frag"
)

// MeteredTransport wraps a transport and accumulates the standard per-run
// accounting (the recorder's rules: self-calls are free, remote calls
// count request+response bytes, two messages and one visit) for callers
// driving operations that do not report their own accounting, e.g. view
// materialization. The modeled time is the sum of call costs, matching a
// sequential request loop.
type MeteredTransport struct {
	inner cluster.Transport
	rec   *recorder

	mu  sync.Mutex
	sim time.Duration
}

// NewMeteredTransport wraps inner with accounting.
func NewMeteredTransport(inner cluster.Transport) *MeteredTransport {
	return &MeteredTransport{inner: inner, rec: newRecorder()}
}

// Call forwards to the wrapped transport, recording successful calls.
func (m *MeteredTransport) Call(ctx context.Context, from, to frag.SiteID, req cluster.Request) (cluster.Response, cluster.CallCost, error) {
	resp, cost, err := m.inner.Call(ctx, from, to, req)
	if err != nil {
		return resp, cost, err
	}
	m.rec.record(from, to, cost, resp)
	m.mu.Lock()
	m.sim += cost.Total()
	m.mu.Unlock()
	return resp, cost, nil
}

// Fill copies the observed accounting into a Report.
func (m *MeteredTransport) Fill(rep *Report) {
	m.rec.fill(rep)
	m.mu.Lock()
	rep.SimTime = m.sim
	m.mu.Unlock()
}

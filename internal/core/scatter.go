package core

import (
	"context"
	"errors"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/frag"
	"repro/internal/xmltree"
)

// sortedFragmentIDs returns a map's fragment-ID keys in ascending
// order — the deterministic scatter order of per-fragment rounds.
func sortedFragmentIDs[V any](m map[xmltree.FragmentID]V) []xmltree.FragmentID {
	ids := make([]xmltree.FragmentID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// scatterJob is one call of a scatter round: the target site, the
// request, and how to decode the response. dec runs concurrently with
// the other jobs' decodes (on the goroutine that received the reply),
// so it must touch only job-local state or synchronize explicitly; the
// call cost is passed in for callers that aggregate their own cost
// notion (NaiveCentralized sums transfer times over its serialized
// coordinator link).
type scatterJob[T any] struct {
	to  frag.SiteID
	req cluster.Request
	dec func(resp cluster.Response, cost cluster.CallCost) (T, error)
}

// scatter is the engine's single fan-out/fan-in primitive, replacing
// the per-algorithm goroutine loops:
//
//   - jobs are issued through the transport's async path
//     (cluster.Go), so over the v2 TCP transport every call to one
//     site pipelines onto a single multiplexed connection;
//   - at most limit calls are in flight at once (limit ≤ 0 means
//     unbounded — every job launches immediately);
//   - the first failure cancels the round's remaining calls
//     (cancel-on-first-error), and the reported error is deterministic:
//     the lowest-job-index failure that is not a cancellation echo;
//   - results merge in job order — out[i] is job i's decoded value —
//     so callers that fold them are deterministic regardless of
//     completion order;
//   - accounting goes to rec (nil to skip) exactly as Engine.call
//     records it, and the returned duration is the round's modeled
//     makespan: the max of the successful calls' cost.Total().
func scatter[T any](ctx context.Context, tr cluster.Transport, from frag.SiteID, limit int, rec *recorder, jobs []scatterJob[T]) ([]T, time.Duration, error) {
	n := len(jobs)
	out := make([]T, n)
	if n == 0 {
		return out, 0, nil
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type arrival struct {
		idx  int
		cost cluster.CallCost
		err  error
	}
	arrivals := make(chan arrival, n)
	sem := make(chan struct{}, limit)
	for i := range jobs {
		go func(i int, j scatterJob[T]) {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				arrivals <- arrival{idx: i, err: ctx.Err()}
				return
			}
			r := <-cluster.Go(ctx, tr, from, j.to, j.req)
			<-sem
			if r.Err != nil {
				arrivals <- arrival{idx: i, err: r.Err}
				return
			}
			if rec != nil {
				rec.record(from, j.to, r.Cost, r.Resp)
			}
			v, err := j.dec(r.Resp, r.Cost)
			if err != nil {
				arrivals <- arrival{idx: i, cost: r.Cost, err: err}
				return
			}
			out[i] = v
			arrivals <- arrival{idx: i, cost: r.Cost}
		}(i, jobs[i])
	}
	var sim time.Duration
	errs := make([]error, n)
	failed := false
	for range jobs {
		a := <-arrivals
		if a.err != nil {
			errs[a.idx] = a.err
			failed = true
			cancel() // stop the round's remaining work
			continue
		}
		if a.cost.Total() > sim {
			sim = a.cost.Total()
		}
	}
	if failed {
		// The genuine failure, not a sibling's cancellation echo; if
		// everything is a cancellation (the parent context expired), the
		// lowest index still wins.
		for _, err := range errs {
			if err != nil && !errors.Is(err, context.Canceled) {
				return nil, sim, err
			}
		}
		for _, err := range errs {
			if err != nil {
				return nil, sim, err
			}
		}
	}
	return out, sim, nil
}

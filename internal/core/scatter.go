package core

import (
	"context"
	"errors"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/frag"
	"repro/internal/xmltree"
)

// sortedFragmentIDs returns a map's fragment-ID keys in ascending
// order — the deterministic scatter order of per-fragment rounds.
func sortedFragmentIDs[V any](m map[xmltree.FragmentID]V) []xmltree.FragmentID {
	ids := make([]xmltree.FragmentID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// scatterJob is one call of a scatter round: the target site, the
// request, and how to decode the response. dec runs concurrently with
// the other jobs' decodes (on the goroutine that received the reply),
// so it must touch only job-local state or synchronize explicitly; the
// call cost is passed in for callers that aggregate their own cost
// notion (NaiveCentralized sums transfer times over its serialized
// coordinator link).
type scatterJob[T any] struct {
	to  frag.SiteID
	req cluster.Request
	dec func(resp cluster.Response, cost cluster.CallCost) (T, error)
	// frags lists the fragments this job serves, for failover re-planning
	// (scatterWith's retry hook); empty for jobs that are not per-fragment
	// work.
	frags []xmltree.FragmentID
}

// tierObs is the serving tier's per-call observation hook: called with
// the target site as a call launches; the returned func is called with
// the transport error (nil on success) when it completes. nil disables
// observation.
type tierObs func(to frag.SiteID) func(error)

// scatterRetry is scatterWith's failover hook: given a job that failed at
// the transport (site dead, timeout — not a decode error), return the
// replacement jobs that re-place its fragments on other replicas. A
// non-nil error fails the round with that error (no replica left); an
// empty replacement set declines, letting the original error stand. The
// hook runs serially on the round's collector goroutine.
type scatterRetry[T any] func(j scatterJob[T], err error) ([]scatterJob[T], error)

// hedgePlan is one armed hedge: the equivalent job on the next-best
// replica, the delay to arm the hedge timer with (the primary site's
// latency p95), and an optional loss-feedback hook — called with how
// long the primary had been outstanding when the hedge won, the only
// latency evidence a cancelled loser ever produces.
type hedgePlan[T any] struct {
	alt   scatterJob[T]
	delay time.Duration
	lost  func(elapsed time.Duration)
}

// scatterHedge is the speculative-retry hook: given a job about to
// launch, return the hedge plan for it. If the primary has not answered
// when the timer fires, the hedge launches and the first answer wins;
// the loser's context is cancelled. Only sound for pure jobs — work any
// replica can serve identically — so the hook declines (ok=false)
// everything else.
type scatterHedge[T any] func(j scatterJob[T]) (hedgePlan[T], bool)

// scatter is the engine's single fan-out/fan-in primitive, replacing
// the per-algorithm goroutine loops:
//
//   - jobs are issued through the transport's async path
//     (cluster.Go), so over the v2 TCP transport every call to one
//     site pipelines onto a single multiplexed connection;
//   - at most limit calls are in flight at once (limit ≤ 0 means
//     unbounded — every job launches immediately);
//   - the first failure cancels the round's remaining calls
//     (cancel-on-first-error), and the reported error is deterministic:
//     the lowest-job-index failure that is not a cancellation echo;
//   - results merge in job order — out[i] is job i's decoded value —
//     so callers that fold them are deterministic regardless of
//     completion order;
//   - accounting goes to rec (nil to skip) exactly as Engine.call
//     records it, and the returned duration is the round's modeled
//     makespan: the max of the successful calls' cost.Total().
func scatter[T any](ctx context.Context, tr cluster.Transport, from frag.SiteID, limit int, rec *recorder, jobs []scatterJob[T]) ([]T, time.Duration, error) {
	return scatterWith(ctx, tr, from, limit, rec, jobs, nil, nil)
}

// scatterWith is scatter plus the serving tier's hooks: obs observes
// every call for passive health tracking, and retry turns a transport
// failure into replacement jobs on other replicas (in-flight failover).
// With a retry hook the job list is dynamic, so results merge in launch
// order (originals first, replacements appended) — the serving callers
// fold triplets into a map and are order-insensitive; without one the
// out[i]-is-job-i contract of scatter holds exactly.
func scatterWith[T any](ctx context.Context, tr cluster.Transport, from frag.SiteID, limit int, rec *recorder,
	jobs []scatterJob[T], obs tierObs, retry scatterRetry[T]) ([]T, time.Duration, error) {
	return scatterHedged(ctx, tr, from, limit, rec, jobs, obs, retry, nil)
}

// scatterHedged is scatterWith plus the hedging hook: jobs the hook
// accepts race a speculative duplicate on another replica once the
// primary has been quiet past the hedge delay. The first answer wins and
// is the only one recorded (a hedge must never double-count bytes,
// messages or steps); the loser is cancelled and its outcome feeds only
// the tier's health observation (where cancellation is neutral).
func scatterHedged[T any](ctx context.Context, tr cluster.Transport, from frag.SiteID, limit int, rec *recorder,
	jobs []scatterJob[T], obs tierObs, retry scatterRetry[T], hedge scatterHedge[T]) ([]T, time.Duration, error) {
	n := len(jobs)
	if n == 0 {
		return make([]T, 0), 0, nil
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type arrival struct {
		idx  int
		val  T
		ok   bool
		cost cluster.CallCost
		err  error
		// transport marks failures of the call itself (the failover
		// trigger) as opposed to decode errors (a protocol bug another
		// replica would reproduce).
		transport bool
		job       scatterJob[T]
	}
	arrivals := make(chan arrival, n)
	sem := make(chan struct{}, limit)
	// issue runs one attempt of a job, bracketing it with the tier's
	// health observation.
	issue := func(callCtx context.Context, j scatterJob[T]) cluster.Reply {
		var done func(error)
		if obs != nil {
			done = obs(j.to)
		}
		r := <-cluster.Go(callCtx, tr, from, j.to, j.req)
		if done != nil {
			done(r.Err)
		}
		return r
	}
	var launch func(idx int, j scatterJob[T])
	launch = func(idx int, j scatterJob[T]) {
		go func() {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				arrivals <- arrival{idx: idx, err: ctx.Err(), transport: true, job: j}
				return
			}
			var plan hedgePlan[T]
			hedged := false
			if hedge != nil {
				plan, hedged = hedge(j)
			}
			var r cluster.Reply
			won := j
			if !hedged {
				r = issue(ctx, j)
			} else {
				hj, delay := plan.alt, plan.delay
				// Race the primary against a delayed speculative duplicate.
				// The hedge shares the primary's concurrency slot: it is a
				// duplicate of admitted work, not new work, so it must not
				// queue behind (or starve) unlaunched jobs.
				type hres struct {
					r   cluster.Reply
					alt bool
				}
				res := make(chan hres, 2)
				primCtx, primCancel := context.WithCancel(ctx)
				altCtx, altCancel := context.WithCancel(ctx)
				primStart := time.Now()
				go func() { res <- hres{issue(primCtx, j), false} }()
				timer := time.NewTimer(delay)
				launched := false
				outstanding := 1
				var primFail cluster.Reply
				havePrimFail := false
				for decided := false; !decided; {
					select {
					case a := <-res:
						outstanding--
						switch {
						case a.r.Err == nil:
							r = a.r
							if a.alt {
								won = hj
								if rec != nil {
									rec.hedgeWin()
								}
								// The cancelled primary took at least this
								// long — the planner's only latency evidence
								// about a replica it keeps hedging around.
								if plan.lost != nil {
									plan.lost(time.Since(primStart))
								}
							}
							decided = true
						case outstanding > 0:
							// One attempt failed but its sibling is still
							// running: hold out for the sibling's answer.
							if !a.alt {
								primFail, havePrimFail = a.r, true
							}
						default:
							// No attempt left. Report the primary's failure
							// (deterministic, and the retry hook re-places
							// against the primary's site).
							if !a.alt || !havePrimFail {
								r = a.r
							} else {
								r = primFail
							}
							decided = true
						}
					case <-timer.C:
						if !launched {
							launched = true
							outstanding++
							if rec != nil {
								rec.hedge()
							}
							go func() { res <- hres{issue(altCtx, hj), true} }()
						}
					}
				}
				timer.Stop()
				primCancel() // cancel the loser; the winner already answered
				altCancel()
			}
			<-sem
			if r.Err != nil {
				arrivals <- arrival{idx: idx, err: r.Err, transport: true, job: j}
				return
			}
			if rec != nil {
				rec.record(from, won.to, r.Cost, r.Resp)
			}
			v, err := won.dec(r.Resp, r.Cost)
			if err != nil {
				arrivals <- arrival{idx: idx, cost: r.Cost, err: err, job: j}
				return
			}
			arrivals <- arrival{idx: idx, val: v, ok: true, cost: r.Cost}
		}()
	}
	for i := range jobs {
		launch(i, jobs[i])
	}
	var sim time.Duration
	vals := make(map[int]T, n)
	errs := make(map[int]error)
	next := n // next launch index (replacement jobs extend the round)
	pending := n
	failed := false
	for pending > 0 {
		a := <-arrivals
		pending--
		if a.ok {
			vals[a.idx] = a.val
			if a.cost.Total() > sim {
				sim = a.cost.Total()
			}
			continue
		}
		if retry != nil && a.transport && !failed && ctx.Err() == nil && !errors.Is(a.err, context.Canceled) {
			repl, rerr := retry(a.job, a.err)
			if rerr != nil {
				errs[a.idx] = rerr
				failed = true
				cancel()
				continue
			}
			if len(repl) > 0 {
				for _, rj := range repl {
					launch(next, rj)
					next++
					pending++
				}
				continue
			}
		}
		errs[a.idx] = a.err
		failed = true
		cancel() // stop the round's remaining work
	}
	if failed {
		// The genuine failure, not a sibling's cancellation echo; if
		// everything is a cancellation (the parent context expired), the
		// lowest index still wins.
		for idx := 0; idx < next; idx++ {
			if err := errs[idx]; err != nil && !errors.Is(err, context.Canceled) {
				return nil, sim, err
			}
		}
		for idx := 0; idx < next; idx++ {
			if err := errs[idx]; err != nil {
				return nil, sim, err
			}
		}
	}
	out := make([]T, 0, len(vals))
	for idx := 0; idx < next; idx++ {
		if v, ok := vals[idx]; ok {
			out = append(out, v)
		}
	}
	return out, sim, nil
}

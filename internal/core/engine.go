package core

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/boolexpr"
	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Report is the outcome of one distributed evaluation: the answer plus the
// accounting the paper's experiments plot.
type Report struct {
	Algorithm Algorithm
	Answer    bool
	// SimTime is the deterministic modeled elapsed (parallel) time: network
	// transfers per the cost model plus per-site computation at
	// StepsPerSecond, maxed over concurrent branches and summed over
	// sequential phases. The figures are plotted from this.
	SimTime time.Duration
	// Wall is the measured wall-clock duration of the run.
	Wall time.Duration
	// TotalSteps is the summed node×subquery computation over all sites,
	// including the coordinator's solve work.
	TotalSteps int64
	// Bytes is the total remote payload traffic of this run.
	Bytes int64
	// Messages counts remote requests+responses.
	Messages int64
	// Visits counts, per site, the requests it served for other sites.
	Visits map[frag.SiteID]int64
	// SolveWork is the formula work of the coordinator's evalST phase.
	SolveWork int64
	// CacheHits/CacheMisses count fragments answered from the sites'
	// versioned triplet caches versus fragments that ran bottomUp, summed
	// over the run (both zero when the cache is disabled).
	CacheHits, CacheMisses int64
	// Failovers counts recoveries this run needed: scatter jobs re-placed
	// onto another replica after a site failure, plus whole-round retries.
	// Zero without a serving tier.
	Failovers int64
	// Hedges counts speculative duplicate calls this run issued against a
	// slow replica's next-best sibling; HedgeWins counts how many of them
	// answered first. Only the winning attempt of a hedged pair is
	// reflected in Bytes/Messages/TotalSteps. Zero with hedging disabled.
	Hedges, HedgeWins int64
}

// Engine evaluates queries over one fragmented document hosted on a
// cluster. It is the coordinating site of the paper: it holds the source
// tree and speaks the ParBoX protocol to the participating sites.
type Engine struct {
	tr    cluster.Transport
	coord frag.SiteID
	st    *frag.SourceTree
	cost  cluster.CostModel
	// cache, when set, makes the Boolean serving paths (ParBoX,
	// ParBoXBatch) send the program fingerprint with every evalQual
	// request, enabling the sites' versioned triplet caches. Set it before
	// the engine starts serving (EnableTripletCache); it is read without
	// synchronization.
	cache bool
	// maxInflight bounds how many site calls any single run of this
	// engine keeps in flight at once through the scatter/gather layer
	// (0 = unbounded). Set during setup (SetMaxInflight); read without
	// synchronization.
	maxInflight int
	// tier, when set, is the replica-aware serving tier: every run plans
	// its source tree through it and failed scatter jobs fail over to
	// other live replicas (see tier.go). Set during setup (SetTier); read
	// without synchronization.
	tier Tier
	// planned marks a per-round engine copy whose st already came from
	// tier.PlanRound, so nested dispatches do not re-plan.
	planned bool
	// retryPol shapes the per-query retry discipline: round retries sleep
	// with exponential backoff and full jitter, and round- plus job-level
	// retries together draw from one budget per Run. Zero value = package
	// defaults. Set during setup (SetRetryPolicy); read without
	// synchronization.
	retryPol backoff.Policy
	// rr is the live retry budget of the Run this engine copy serves
	// (nil on engines used outside Run — direct algorithm calls keep the
	// old unbudgeted failover behavior, bounded by the exclusion set).
	rr *backoff.Retry
}

// SetRetryPolicy shapes the engine's retry discipline: every Run gets a
// fresh budget from the policy, consumed by both whole-round retries
// (which sleep, exponential backoff + full jitter, floored at any
// server-provided retry-after hint) and job-level failover re-placements
// (which never sleep — they run on the round's collector). Call during
// setup, before the engine serves.
func (e *Engine) SetRetryPolicy(pol backoff.Policy) { e.retryPol = pol }

// SetMaxInflight bounds the number of concurrent site calls per run
// (0 = unbounded). Call it during setup, before the engine serves.
func (e *Engine) SetMaxInflight(n int) {
	if n < 0 {
		n = 0
	}
	e.maxInflight = n
}

// EnableTripletCache turns the sites' versioned per-fragment triplet cache
// on or off for this engine's ParBoX/ParBoXBatch runs. Call it during
// setup, before the engine serves concurrent queries.
func (e *Engine) EnableTripletCache(on bool) { e.cache = on }

// fingerprint returns the cache key to send with evalQual requests: the
// program's fingerprint when caching is enabled, else 0 (cache bypassed).
func (e *Engine) fingerprint(prog *xpath.Program) uint64 {
	if !e.cache {
		return 0
	}
	return prog.Fingerprint()
}

// runSeq issues process-wide unique run sequence numbers. It is shared by
// every Engine: engines are cheap per-run views over (transport,
// coordinator, source tree) that may be created concurrently against the
// same sites, so a per-engine counter would collide on the sites' keyed
// run state.
var runSeq atomic.Int64

// runNonce distinguishes coordinator *processes*: two coordinators with
// the same site name — concurrent `parbox remote` invocations against
// shared site daemons — would otherwise both start their sequence at 1
// and collide on the sites' keyed run state (one run's self-destructing
// state tearing down the other's). Fixed width keeps the run key's wire
// length, and with it byte accounting, stable across processes and runs.
var runNonce = func() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.BigEndian.Uint64(b[:])
}()

// NewEngine builds an engine for the document described by st, coordinated
// from site coord. The cost model must match the one the sites were
// registered with for the modeled times to be coherent.
func NewEngine(tr cluster.Transport, coord frag.SiteID, st *frag.SourceTree, cost cluster.CostModel) *Engine {
	return &Engine{tr: tr, coord: coord, st: st, cost: cost}
}

// SourceTree returns the engine's source tree.
func (e *Engine) SourceTree() *frag.SourceTree { return e.st }

// Coordinator returns the coordinating site.
func (e *Engine) Coordinator() frag.SiteID { return e.coord }

// Run dispatches to the given algorithm. Run (and every per-algorithm
// method it dispatches to) is safe for concurrent use: each run owns its
// recorder, and the state FullDistParBoX caches at the sites is keyed by a
// unique run key.
func (e *Engine) Run(ctx context.Context, algo Algorithm, prog *xpath.Program) (Report, error) {
	// One retry budget per query, shared between the round retries below
	// and job-level failover inside the rounds.
	run := *e
	run.rr = backoff.New(e.retryPol)
	rep, err := run.runOnce(ctx, algo, prog)
	if err == nil || e.tier == nil {
		return rep, err
	}
	// Round-level failover: a failed round re-probes site health and
	// re-plans onto the surviving replicas. This covers the algorithms
	// without job-level failover (nested hops the coordinator never
	// observed directly, e.g. FullDist's resolve cascade). Retries back
	// off with jitter — immediate re-runs against a saturated or flapping
	// site are the retry storms this exists to prevent — and honor any
	// shed's retry-after hint as the delay floor.
	for attempt := 1; retryableRoundErr(err) && ctx.Err() == nil; attempt++ {
		d, ok := run.rr.Next(cluster.RetryAfterHint(err))
		if !ok {
			break // per-query budget spent
		}
		if backoff.Sleep(ctx, d) != nil {
			break
		}
		e.tier.Recheck(ctx)
		rep, err = run.runOnce(ctx, algo, prog)
		if err == nil {
			rep.Failovers += int64(attempt)
			return rep, nil
		}
	}
	return rep, err
}

func (e *Engine) runOnce(ctx context.Context, algo Algorithm, prog *xpath.Program) (Report, error) {
	switch algo {
	case AlgoParBoX:
		return e.ParBoX(ctx, prog)
	case AlgoNaiveCentralized:
		return e.NaiveCentralized(ctx, prog)
	case AlgoNaiveDistributed:
		return e.NaiveDistributed(ctx, prog)
	case AlgoHybrid:
		return e.Hybrid(ctx, prog)
	case AlgoFullDist:
		return e.FullDist(ctx, prog)
	case AlgoLazy:
		return e.Lazy(ctx, prog)
	default:
		return Report{}, fmt.Errorf("core: unknown algorithm %v", algo)
	}
}

// recorder accumulates per-run accounting from call costs.
type recorder struct {
	mu          sync.Mutex
	bytes       int64
	messages    int64
	steps       int64
	cacheHits   int64
	cacheMisses int64
	failovers   int64
	hedges      int64
	hedgeWins   int64
	visits      map[frag.SiteID]int64
}

func newRecorder() *recorder { return &recorder{visits: make(map[frag.SiteID]int64)} }

func (r *recorder) record(from, to frag.SiteID, cost cluster.CallCost, resp cluster.Response) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.steps += cost.Steps
	r.cacheHits += resp.CacheHits
	r.cacheMisses += resp.CacheMisses
	if from != to {
		r.bytes += int64(cost.ReqBytes + cost.RespBytes)
		r.messages += 2
		r.visits[to]++
	}
}

// failover counts one job-level failover (a scatter job re-placed onto
// another replica).
func (r *recorder) failover() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failovers++
}

// hedge counts one speculative duplicate launched; hedgeWin counts one
// whose answer beat the primary's.
func (r *recorder) hedge() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hedges++
}

func (r *recorder) hedgeWin() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hedgeWins++
}

// accounting is a consistent copy of a recorder's counters; every report
// type fills its common fields from one snapshot so the copy rules live
// in a single place.
type accounting struct {
	bytes       int64
	messages    int64
	steps       int64
	cacheHits   int64
	cacheMisses int64
	failovers   int64
	hedges      int64
	hedgeWins   int64
	visits      map[frag.SiteID]int64
}

func (r *recorder) snapshot() accounting {
	r.mu.Lock()
	defer r.mu.Unlock()
	visits := make(map[frag.SiteID]int64, len(r.visits))
	for k, v := range r.visits {
		visits[k] = v
	}
	return accounting{
		bytes: r.bytes, messages: r.messages, steps: r.steps,
		cacheHits: r.cacheHits, cacheMisses: r.cacheMisses,
		failovers: r.failovers, hedges: r.hedges, hedgeWins: r.hedgeWins,
		visits: visits,
	}
}

func (r *recorder) fill(rep *Report) {
	a := r.snapshot()
	rep.Bytes = a.bytes
	rep.Messages = a.messages
	rep.TotalSteps = a.steps
	rep.CacheHits = a.cacheHits
	rep.CacheMisses = a.cacheMisses
	rep.Failovers = a.failovers
	rep.Hedges = a.hedges
	rep.HedgeWins = a.hedgeWins
	rep.Visits = a.visits
}

// call is a thin wrapper recording accounting (and, with a tier
// attached, feeding its passive health signals).
func (e *Engine) call(ctx context.Context, rec *recorder, to frag.SiteID, req cluster.Request) (cluster.Response, cluster.CallCost, error) {
	var done func(error)
	if o := e.obs(); o != nil {
		done = o(to)
	}
	resp, cost, err := e.tr.Call(ctx, e.coord, to, req)
	if done != nil {
		done(err)
	}
	if err != nil {
		return resp, cost, err
	}
	rec.record(e.coord, to, cost, resp)
	return resp, cost, nil
}

// evalQualJob builds one stage-2 scatter job: ask site for the triplets
// of ids. It carries the fragment list, so a failed job can fail over.
func (e *Engine) evalQualJob(prog *xpath.Program, fp uint64, site frag.SiteID, ids []xmltree.FragmentID) scatterJob[[]fragTriplet] {
	return scatterJob[[]fragTriplet]{
		to:    site,
		frags: ids,
		req: cluster.Request{
			Kind:    KindEvalQual,
			Payload: encodeEvalQualReq(evalQualReq{prog: prog, ids: ids, fp: fp}),
		},
		// One slab per site response: every triplet of the response
		// decodes into chunked storage instead of node-by-node allocs.
		dec: func(resp cluster.Response, _ cluster.CallCost) ([]fragTriplet, error) {
			return decodeEvalQualResp(resp.Payload, boolexpr.NewSlab())
		},
	}
}

// failoverRetry returns scatterWith's in-flight failover hook (nil
// without a tier): a job that failed at the transport re-places its
// fragments onto other live replicas through the tier, excluding every
// site that already failed this round. When some fragment has no replica
// left, the round fails with (a wrapped) ErrFragmentUnavailable — the
// loud-degradation contract. The hook runs serially on the round's
// collector goroutine, so the exclusion set needs no lock.
func (e *Engine) failoverRetry(rec *recorder, mk func(site frag.SiteID, ids []xmltree.FragmentID) scatterJob[[]fragTriplet]) scatterRetry[[]fragTriplet] {
	return tierRetry(e.tier, e.rr, rec, mk)
}

// hedgeHook is tierHedge bound to this engine's tier, for the triplet
// fan-outs (nil without a hedging-capable tier).
func (e *Engine) hedgeHook(mk func(site frag.SiteID, ids []xmltree.FragmentID) scatterJob[[]fragTriplet]) scatterHedge[[]fragTriplet] {
	return tierHedge(e.tier, mk)
}

// tierRetry is failoverRetry generalized over the job result type, for
// fan-outs that carry something other than triplets (NaiveCentralized
// fetches whole fragments). Sound only when the work is a pure function
// of the fragment list — any replica can serve it; stages that depend on
// per-site cached run state (FullDist's stage 2, the two-pass
// propagation levels) must not re-place jobs and instead recover by
// round retry.
//
// Re-placements draw on the query's shared retry budget (rr) but never
// sleep — the hook runs on the round's collector goroutine, and the
// re-placed job targets a different site, so the backoff delay belongs
// to same-site retries only. With the budget spent the hook declines and
// the original error stands; nil rr (a direct algorithm call outside
// Run) keeps the unbudgeted behavior, naturally bounded by the growing
// exclusion set.
func tierRetry[T any](t Tier, rr *backoff.Retry, rec *recorder, mk func(site frag.SiteID, ids []xmltree.FragmentID) scatterJob[T]) scatterRetry[T] {
	if t == nil {
		return nil
	}
	excluded := make(map[frag.SiteID]bool)
	return func(j scatterJob[T], _ error) ([]scatterJob[T], error) {
		if len(j.frags) == 0 {
			return nil, nil
		}
		if rr != nil {
			if _, ok := rr.Next(0); !ok {
				return nil, nil
			}
		}
		excluded[j.to] = true
		placement, err := t.Reassign(j.frags, excluded)
		if err != nil {
			// Exhausting this round's exclusion set does not mean the
			// replicas are gone — a shed means "try later" and a flake may
			// pass next time. With a retry budget, decline: the original
			// transport error stands, and if it is retryable the round-level
			// retry backs off (honoring any retry-after hint), re-probes and
			// re-plans from scratch. Genuinely dead replicas still fail
			// loudly — the re-planned round sees them Down and fails with
			// ErrFragmentUnavailable at planning. Without a budget (legacy
			// direct algorithm calls) keep the immediate loud failure.
			if rr != nil {
				return nil, nil
			}
			return nil, err
		}
		sites := make([]frag.SiteID, 0, len(placement))
		for s := range placement {
			sites = append(sites, s)
		}
		sort.Slice(sites, func(a, b int) bool { return sites[a] < sites[b] })
		jobs := make([]scatterJob[T], 0, len(sites))
		for _, s := range sites {
			jobs = append(jobs, mk(s, placement[s]))
		}
		rec.failover()
		return jobs, nil
	}
}

// ParBoX is Algorithm ParBoX (Fig. 3a): broadcast the QList to every site
// holding fragments (each visited exactly once), collect the triplets
// computed in parallel, and solve the Boolean equation system over the
// source tree.
func (e *Engine) ParBoX(ctx context.Context, prog *xpath.Program) (Report, error) {
	e, err := e.forRound()
	if err != nil {
		return Report{}, err
	}
	start := time.Now()
	rec := newRecorder()

	// Stage 1: identify the participating sites from the source tree.
	sites := e.st.Sites()

	// Stage 2: evalQual on every site, through the scatter/gather layer.
	fp := e.fingerprint(prog)
	mk := func(site frag.SiteID, ids []xmltree.FragmentID) scatterJob[[]fragTriplet] {
		return e.evalQualJob(prog, fp, site, ids)
	}
	jobs := make([]scatterJob[[]fragTriplet], len(sites))
	for i, site := range sites {
		jobs[i] = mk(site, e.st.FragmentsAt(site))
	}
	perSite, simStage2, err := scatterHedged(ctx, e.tr, e.coord, e.maxInflight, rec, jobs, e.obs(), e.failoverRetry(rec, mk), e.hedgeHook(mk))
	if err != nil {
		return Report{}, err
	}
	triplets := make(map[xmltree.FragmentID]eval.Triplet, e.st.Count())
	for _, fts := range perSite {
		for _, ft := range fts {
			triplets[ft.id] = ft.triplet
		}
	}

	// Stage 3: solve the equation system at the coordinator.
	ans, work, err := eval.Solve(e.st, triplets, prog)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		Algorithm: AlgoParBoX,
		Answer:    ans,
		SimTime:   simStage2 + e.cost.ComputeTime(work),
		Wall:      time.Since(start),
		SolveWork: work,
	}
	rec.steps += work
	rec.fill(&rep)
	return rep, nil
}

// NaiveCentralized collects every fragment at the coordinating site and
// evaluates centrally — O(|T|) communication, the data-shipping baseline.
// Fetches fan out in parallel, but the modeled time charges all transfers
// to the coordinator's link, which is the bottleneck resource.
func (e *Engine) NaiveCentralized(ctx context.Context, prog *xpath.Program) (Report, error) {
	e, err := e.forRound()
	if err != nil {
		return Report{}, err
	}
	start := time.Now()
	rec := newRecorder()
	sites := e.st.Sites()

	var local []*frag.Fragment
	var jobs []scatterJob[[]*frag.Fragment]
	// The coordinator's link is the bottleneck resource: its transfer
	// times add up rather than overlap, so the modeled time is the SUM of
	// the fetches' network costs, accumulated here (decoders run
	// concurrently) instead of taking scatter's parallel makespan.
	var netNanos atomic.Int64
	// Fetching is a pure function of the fragment list, so a dead site's
	// fetch can fail over to any other replica (tierRetry below).
	mkFetch := func(site frag.SiteID, ids []xmltree.FragmentID) scatterJob[[]*frag.Fragment] {
		return scatterJob[[]*frag.Fragment]{
			to:    site,
			frags: ids,
			req: cluster.Request{
				Kind:    KindFetchFragments,
				Payload: encodeFetchReq(ids),
			},
			dec: func(resp cluster.Response, cost cluster.CallCost) ([]*frag.Fragment, error) {
				netNanos.Add(int64(cost.Net))
				return decodeFetchResp(resp.Payload)
			},
		}
	}
	for _, site := range sites {
		ids := e.st.FragmentsAt(site)
		if site == e.coord {
			// The coordinator's own fragments are read from local storage.
			for _, id := range ids {
				fr, err := e.localFragment(id)
				if err != nil {
					return Report{}, err
				}
				local = append(local, fr)
			}
			continue
		}
		jobs = append(jobs, mkFetch(site, ids))
	}
	fetched, _, err := scatterHedged(ctx, e.tr, e.coord, e.maxInflight, rec, jobs, e.obs(), tierRetry(e.tier, e.rr, rec, mkFetch), tierHedge(e.tier, mkFetch))
	if err != nil {
		return Report{}, err
	}
	frs := local
	for _, part := range fetched {
		frs = append(frs, part...)
	}
	simTransfer := time.Duration(netNanos.Load())

	forest, err := frag.FromFragments(frs, e.st.Root())
	if err != nil {
		return Report{}, fmt.Errorf("core: reassembling fetched fragments: %w", err)
	}
	doc, err := forest.Assemble()
	if err != nil {
		return Report{}, err
	}
	ans, steps, err := eval.Evaluate(doc, prog)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		Algorithm: AlgoNaiveCentralized,
		Answer:    ans,
		SimTime:   simTransfer + e.cost.ComputeTime(steps),
		Wall:      time.Since(start),
	}
	rec.steps += steps
	rec.fill(&rep)
	return rep, nil
}

// localFragment reads a fragment from the coordinator's own site storage.
func (e *Engine) localFragment(id xmltree.FragmentID) (*frag.Fragment, error) {
	type fragmentStore interface {
		Site(frag.SiteID) (*cluster.Site, bool)
	}
	if c, ok := e.tr.(fragmentStore); ok {
		if s, ok := c.Site(e.coord); ok {
			if fr, ok := s.Fragment(id); ok {
				return fr, nil
			}
		}
	}
	return nil, fmt.Errorf("core: coordinator %s does not store fragment %d locally", e.coord, id)
}

// NaiveDistributed performs the distributed sequential bottom-up traversal
// of Section 3: control passes from a fragment to each of its
// sub-fragments' sites in turn, so a site is visited once per fragment it
// stores and nothing runs in parallel.
func (e *Engine) NaiveDistributed(ctx context.Context, prog *xpath.Program) (Report, error) {
	e, err := e.forRound()
	if err != nil {
		return Report{}, err
	}
	start := time.Now()
	rec := newRecorder()
	rootEntry, ok := e.st.Entry(e.st.Root())
	if !ok {
		return Report{}, fmt.Errorf("core: source tree has no root entry")
	}
	resp, cost, err := e.call(ctx, rec, rootEntry.Site, cluster.Request{
		Kind:    KindEvalFragDist,
		Payload: encodeEvalFragDistReq(prog, e.st, e.st.Root()),
	})
	if err != nil {
		return Report{}, err
	}
	t, stats, err := decodeResolveResp(resp.Payload)
	if err != nil {
		return Report{}, err
	}
	ansF := t.V[prog.Root()]
	ans, okc := ansF.ConstValue()
	if !okc {
		return Report{}, fmt.Errorf("core: NaiveDistributed produced a residual answer %v", ansF)
	}
	rep := Report{
		Algorithm: AlgoNaiveDistributed,
		Answer:    ans,
		SimTime:   time.Duration(stats.simNanos) + cost.Net,
		Wall:      time.Since(start),
	}
	rec.fill(&rep)
	// The recursion's nested calls are invisible to the coordinator's
	// recorder; fold in what the response reported. (Per-site visit
	// counts of the nested hops live in the cluster metrics.)
	rep.TotalSteps = stats.steps
	rep.Bytes += stats.bytes
	rep.Messages += stats.messages
	return rep, nil
}

// Hybrid is HybridParBoX (Section 4): ParBoX while card(F) < |T|/|q|,
// NaiveCentralized past the tipping point (pathological fragmentations
// where shipping formulas costs more than shipping the data).
func (e *Engine) Hybrid(ctx context.Context, prog *xpath.Program) (Report, error) {
	e, err0 := e.forRound()
	if err0 != nil {
		return Report{}, err0
	}
	cardF := e.st.Count()
	sizeT := e.st.TotalSize()
	q := prog.QListSize()
	var rep Report
	var err error
	if cardF*q < sizeT {
		rep, err = e.ParBoX(ctx, prog)
	} else {
		rep, err = e.NaiveCentralized(ctx, prog)
	}
	if err != nil {
		return rep, err
	}
	rep.Algorithm = AlgoHybrid
	return rep, nil
}

// FullDist is FullDistParBoX (Section 4): stage 2 caches the triplets at
// the sites (each holding a copy of the source tree), and the third phase
// runs evalDistrST — triplets are unified site-by-site up the source tree,
// so no variables ever travel and the coordinator is no bottleneck.
func (e *Engine) FullDist(ctx context.Context, prog *xpath.Program) (Report, error) {
	e, err := e.forRound()
	if err != nil {
		return Report{}, err
	}
	start := time.Now()
	rec := newRecorder()
	// Zero-padded so the key's wire length is independent of how many
	// runs preceded this one — byte accounting stays differentially
	// comparable across transports and runs.
	runKey := fmt.Sprintf("%s-%016x-%010d", e.coord, runNonce, runSeq.Add(1))
	sites := e.st.Sites()

	// Stage 2 (parallel): evalQual with caching.
	jobs := make([]scatterJob[struct{}], len(sites))
	for i, site := range sites {
		jobs[i] = scatterJob[struct{}]{
			to: site,
			req: cluster.Request{
				Kind: KindEvalQualKeep,
				Payload: encodeEvalQualReq(evalQualReq{
					prog:   prog,
					ids:    e.st.FragmentsAt(site),
					runKey: runKey,
					st:     e.st,
				}),
			},
			dec: func(cluster.Response, cluster.CallCost) (struct{}, error) { return struct{}{}, nil },
		}
	}
	_, simStage2, err := scatterWith(ctx, e.tr, e.coord, e.maxInflight, rec, jobs, e.obs(), nil)
	if err != nil {
		e.cleanup(ctx, rec, runKey)
		return Report{}, err
	}

	// Stage 3: resolve the root fragment; unification cascades down/up the
	// source tree between the sites themselves.
	rootEntry, _ := e.st.Entry(e.st.Root())
	resp, cost, err := e.call(ctx, rec, rootEntry.Site, cluster.Request{
		Kind:    KindResolve,
		Payload: encodeResolveReq(runKey, e.st.Root()),
	})
	if err != nil {
		e.cleanup(ctx, rec, runKey)
		return Report{}, err
	}
	t, stats, err := decodeResolveResp(resp.Payload)
	if err != nil {
		e.cleanup(ctx, rec, runKey)
		return Report{}, err
	}
	// No cleanup on success: run states self-destruct once each site's
	// last fragment has been resolved, keeping the per-site visit count at
	// the paper's 1 + card(F_Si).
	ansF := t.V[prog.Root()]
	ans, okc := ansF.ConstValue()
	if !okc {
		return Report{}, fmt.Errorf("core: FullDistParBoX produced a residual answer %v", ansF)
	}
	rep := Report{
		Algorithm: AlgoFullDist,
		Answer:    ans,
		SimTime:   simStage2 + time.Duration(stats.simNanos) + cost.Net,
		Wall:      time.Since(start),
	}
	rec.fill(&rep)
	rep.Bytes += stats.bytes
	rep.Messages += stats.messages
	// stats.steps covers the entire resolve recursion including the root
	// frame, which the recorder also saw via the root call; remove the
	// duplicate.
	rep.TotalSteps += stats.steps - resp.Steps
	return rep, nil
}

// cleanup drops a failed run's cached state at every site, fanned out
// asynchronously and best effort: failures must not mask the result,
// and one site's failure must not stop the others' cleanup (so no
// cancel-on-first-error scatter here).
func (e *Engine) cleanup(ctx context.Context, rec *recorder, runKey string) {
	sites := e.st.Sites()
	replies := make([]<-chan cluster.Reply, len(sites))
	for i, site := range sites {
		replies[i] = cluster.Go(ctx, e.tr, e.coord, site, cluster.Request{Kind: KindCleanup, Payload: []byte(runKey)})
	}
	for _, ch := range replies {
		<-ch
	}
}

// Lazy is LazyParBoX (Section 4): evaluate the source tree in increasing
// depths, attempting to solve the partial equation system after each step,
// and stop as soon as the answer no longer depends on deeper fragments.
// Per the paper, the first step covers the coordinator AND the fragments
// at depth 1 ("LazyParBoX initially evaluates a query only in the
// coordinator and in the fragments of depth 1"); each further step
// descends one level. Within a step sites work in parallel; steps are
// sequential.
func (e *Engine) Lazy(ctx context.Context, prog *xpath.Program) (Report, error) {
	e, err := e.forRound()
	if err != nil {
		return Report{}, err
	}
	start := time.Now()
	rec := newRecorder()
	triplets := make(map[xmltree.FragmentID]eval.Triplet, e.st.Count())
	var simTotal time.Duration
	var solveWork int64

	levels := e.st.Levels()
	var steps [][]xmltree.FragmentID
	if len(levels) >= 2 {
		first := append(append([]xmltree.FragmentID(nil), levels[0]...), levels[1]...)
		steps = append([][]xmltree.FragmentID{first}, levels[2:]...)
	} else {
		steps = levels
	}
	for _, level := range steps {
		// Group this level's fragments by site; each site evaluates its
		// fragments of this level only. Sites sort for a deterministic
		// scatter order.
		yieldSites := make(map[frag.SiteID][]xmltree.FragmentID)
		for _, id := range level {
			entry, _ := e.st.Entry(id)
			yieldSites[entry.Site] = append(yieldSites[entry.Site], id)
		}
		levelSites := make([]frag.SiteID, 0, len(yieldSites))
		for site := range yieldSites {
			levelSites = append(levelSites, site)
		}
		sort.Slice(levelSites, func(i, j int) bool { return levelSites[i] < levelSites[j] })
		mk := func(site frag.SiteID, ids []xmltree.FragmentID) scatterJob[[]fragTriplet] {
			return e.evalQualJob(prog, 0, site, ids)
		}
		jobs := make([]scatterJob[[]fragTriplet], len(levelSites))
		for i, site := range levelSites {
			jobs[i] = mk(site, yieldSites[site])
		}
		perSite, simLevel, err := scatterHedged(ctx, e.tr, e.coord, e.maxInflight, rec, jobs, e.obs(), e.failoverRetry(rec, mk), e.hedgeHook(mk))
		if err != nil {
			return Report{}, err
		}
		for _, fts := range perSite {
			for _, ft := range fts {
				triplets[ft.id] = ft.triplet
			}
		}
		simTotal += simLevel

		ans, work, resolved, err := eval.SolvePartial(e.st, triplets, prog)
		solveWork += work
		simTotal += e.cost.ComputeTime(work)
		if err != nil {
			return Report{}, err
		}
		if resolved {
			rep := Report{
				Algorithm: AlgoLazy,
				Answer:    ans,
				SimTime:   simTotal,
				Wall:      time.Since(start),
				SolveWork: solveWork,
			}
			rec.steps += solveWork
			rec.fill(&rep)
			return rep, nil
		}
	}
	return Report{}, fmt.Errorf("core: LazyParBoX exhausted all levels without resolving (inconsistent source tree?)")
}

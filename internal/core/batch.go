package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/boolexpr"
	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// BatchReport is the outcome of evaluating a batch of Boolean queries in
// one ParBoX round.
type BatchReport struct {
	// Answers are in the order the queries were given to CompileBatch.
	Answers    []bool
	SimTime    time.Duration
	Wall       time.Duration
	Bytes      int64
	Messages   int64
	TotalSteps int64
	SolveWork  int64
	Visits     map[frag.SiteID]int64
	// CacheHits/CacheMisses count fragments served from the sites'
	// versioned triplet caches versus evaluated, when caching is enabled.
	CacheHits, CacheMisses int64
}

// ParBoXBatch answers a whole batch of Boolean queries with a single
// ParBoX round: one shared QList (compiled with xpath.CompileBatch), one
// visit per site, one equation solve. For a dissemination system with N
// overlapping subscriptions, this costs one traversal of each fragment
// instead of N — the per-node work is the shared program's size, which
// hash-consing keeps below the sum of the individual sizes.
func (e *Engine) ParBoXBatch(ctx context.Context, prog *xpath.Program, roots []int32) (BatchReport, error) {
	start := time.Now()
	rec := newRecorder()
	sites := e.st.Sites()

	type siteResult struct {
		fts []fragTriplet
		sim time.Duration
		err error
	}
	fp := e.fingerprint(prog)
	results := make(chan siteResult, len(sites))
	for _, site := range sites {
		go func(site frag.SiteID) {
			resp, cost, err := e.call(ctx, rec, site, cluster.Request{
				Kind:    KindEvalQual,
				Payload: encodeEvalQualReq(evalQualReq{prog: prog, ids: e.st.FragmentsAt(site), fp: fp}),
			})
			if err != nil {
				results <- siteResult{err: err}
				return
			}
			fts, err := decodeEvalQualResp(resp.Payload, boolexpr.NewSlab())
			results <- siteResult{fts: fts, sim: cost.Total(), err: err}
		}(site)
	}
	triplets := make(map[xmltree.FragmentID]eval.Triplet, e.st.Count())
	var simStage2 time.Duration
	var firstErr error
	for range sites {
		res := <-results
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		if res.sim > simStage2 {
			simStage2 = res.sim
		}
		for _, ft := range res.fts {
			triplets[ft.id] = ft.triplet
		}
	}
	if firstErr != nil {
		return BatchReport{}, firstErr
	}
	answers, work, err := eval.SolveMulti(e.st, triplets, prog, roots)
	if err != nil {
		return BatchReport{}, fmt.Errorf("core: batch solve: %w", err)
	}
	rep := BatchReport{
		Answers:   answers,
		SimTime:   simStage2 + e.cost.ComputeTime(work),
		Wall:      time.Since(start),
		SolveWork: work,
	}
	rec.steps += work
	a := rec.snapshot()
	rep.Bytes = a.bytes
	rep.Messages = a.messages
	rep.TotalSteps = a.steps
	rep.CacheHits = a.cacheHits
	rep.CacheMisses = a.cacheMisses
	rep.Visits = a.visits
	return rep, nil
}

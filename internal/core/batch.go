package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// BatchReport is the outcome of evaluating a batch of Boolean queries in
// one ParBoX round.
type BatchReport struct {
	// Answers are in the order the queries were given to CompileBatch.
	Answers    []bool
	SimTime    time.Duration
	Wall       time.Duration
	Bytes      int64
	Messages   int64
	TotalSteps int64
	SolveWork  int64
	Visits     map[frag.SiteID]int64
	// CacheHits/CacheMisses count fragments served from the sites'
	// versioned triplet caches versus evaluated, when caching is enabled.
	CacheHits, CacheMisses int64
	// Failovers counts scatter jobs this round re-placed onto another
	// replica after a site failure (zero without a serving tier).
	Failovers int64
	// Hedges/HedgeWins count speculative duplicate calls issued and won
	// (see Report; zero with hedging disabled).
	Hedges, HedgeWins int64
}

// ParBoXBatch answers a whole batch of Boolean queries with a single
// ParBoX round: one shared QList (compiled with xpath.CompileBatch), one
// visit per site, one equation solve. For a dissemination system with N
// overlapping subscriptions, this costs one traversal of each fragment
// instead of N — the per-node work is the shared program's size, which
// hash-consing keeps below the sum of the individual sizes.
func (e *Engine) ParBoXBatch(ctx context.Context, prog *xpath.Program, roots []int32) (BatchReport, error) {
	e, err := e.forRound()
	if err != nil {
		return BatchReport{}, err
	}
	start := time.Now()
	rec := newRecorder()
	sites := e.st.Sites()

	fp := e.fingerprint(prog)
	mk := func(site frag.SiteID, ids []xmltree.FragmentID) scatterJob[[]fragTriplet] {
		return e.evalQualJob(prog, fp, site, ids)
	}
	jobs := make([]scatterJob[[]fragTriplet], len(sites))
	for i, site := range sites {
		jobs[i] = mk(site, e.st.FragmentsAt(site))
	}
	perSite, simStage2, err := scatterHedged(ctx, e.tr, e.coord, e.maxInflight, rec, jobs, e.obs(), e.failoverRetry(rec, mk), e.hedgeHook(mk))
	if err != nil {
		return BatchReport{}, err
	}
	triplets := make(map[xmltree.FragmentID]eval.Triplet, e.st.Count())
	for _, fts := range perSite {
		for _, ft := range fts {
			triplets[ft.id] = ft.triplet
		}
	}
	answers, work, err := eval.SolveMulti(e.st, triplets, prog, roots)
	if err != nil {
		return BatchReport{}, fmt.Errorf("core: batch solve: %w", err)
	}
	rep := BatchReport{
		Answers:   answers,
		SimTime:   simStage2 + e.cost.ComputeTime(work),
		Wall:      time.Since(start),
		SolveWork: work,
	}
	rec.steps += work
	a := rec.snapshot()
	rep.Bytes = a.bytes
	rep.Messages = a.messages
	rep.TotalSteps = a.steps
	rep.CacheHits = a.cacheHits
	rep.CacheMisses = a.cacheMisses
	rep.Failovers = a.failovers
	rep.Hedges = a.hedges
	rep.HedgeWins = a.hedgeWins
	rep.Visits = a.visits
	return rep, nil
}

package core

import (
	"fmt"
	"strings"
)

// Algorithm identifies one of the implemented distributed evaluation
// algorithms. The zero value is AlgoParBoX, the paper's headline
// algorithm, so an unset algorithm option always means "the good one".
type Algorithm uint8

const (
	// AlgoParBoX is Algorithm ParBoX (Section 3): partial evaluation,
	// every site visited exactly once, O(|q|·card(F)) traffic.
	AlgoParBoX Algorithm = iota
	// AlgoNaiveCentralized ships every fragment to the coordinator and
	// evaluates centrally (Section 3 baseline).
	AlgoNaiveCentralized
	// AlgoNaiveDistributed is the sequential distributed bottom-up
	// traversal (Section 3 baseline).
	AlgoNaiveDistributed
	// AlgoHybrid is HybridParBoX (Section 4): ParBoX until the
	// formula-vs-data tipping point, NaiveCentralized past it.
	AlgoHybrid
	// AlgoFullDist is FullDistParBoX (Section 4): distributed evalST, no
	// coordinator bottleneck.
	AlgoFullDist
	// AlgoLazy is LazyParBoX (Section 4): level-by-level evaluation with
	// early exit.
	AlgoLazy

	numAlgorithms // sentinel; keep last
)

// algorithmNames maps each Algorithm to its canonical surface name, as
// printed by String, accepted by ParseAlgorithm, and used in CLI flags.
var algorithmNames = [numAlgorithms]string{
	AlgoParBoX:           "parbox",
	AlgoNaiveCentralized: "central",
	AlgoNaiveDistributed: "distrib",
	AlgoHybrid:           "hybrid",
	AlgoFullDist:         "fulldist",
	AlgoLazy:             "lazy",
}

// String returns the algorithm's canonical name.
func (a Algorithm) String() string {
	if !a.Valid() {
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
	return algorithmNames[a]
}

// Valid reports whether a names an implemented algorithm.
func (a Algorithm) Valid() bool { return a < numAlgorithms }

// Algorithms lists every implemented algorithm.
func Algorithms() []Algorithm {
	out := make([]Algorithm, numAlgorithms)
	for i := range out {
		out[i] = Algorithm(i)
	}
	return out
}

// AlgorithmNames lists the canonical names of every implemented
// algorithm, in the Algorithms order.
func AlgorithmNames() []string {
	return append([]string(nil), algorithmNames[:]...)
}

// ParseAlgorithm maps a canonical name (case-insensitive) back to its
// Algorithm. The error of an unknown name includes the valid set.
func ParseAlgorithm(s string) (Algorithm, error) {
	want := strings.ToLower(strings.TrimSpace(s))
	for a, name := range algorithmNames {
		if name == want {
			return Algorithm(a), nil
		}
	}
	// No "core:" prefix: the facade and CLI surface this text verbatim.
	return 0, fmt.Errorf("unknown algorithm %q (valid: %s)", s, strings.Join(algorithmNames[:], ", "))
}

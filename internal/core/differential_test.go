package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestPropAlgorithmsMatchLegacyEvaluator is the end-to-end differential
// test of the bitset/arena rewrite: on random trees, random fragmentations
// and random QLists, the four paper algorithms — ParBoX, NaiveCentralized,
// FullDistParBoX and LazyParBoX, all now running on the two-plane
// evaluator — must each return the answer the preserved pointer-formula
// reference implementation (LegacyBottomUp + LegacySolve) computes for the
// same deployment.
func TestPropAlgorithmsMatchLegacyEvaluator(t *testing.T) {
	algos := []Algorithm{AlgoParBoX, AlgoNaiveCentralized, AlgoFullDist, AlgoLazy}
	ctx := context.Background()
	f := func(seed int64, sizeRaw, splitRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 2 + int(sizeRaw%60)})
		forest := frag.NewForest(tree)
		if err := forest.SplitRandom(r, 1+int(splitRaw%8)); err != nil {
			return false
		}
		sites := []frag.SiteID{"S0", "S1", "S2"}
		assign := make(frag.Assignment)
		for _, id := range forest.IDs() {
			assign[id] = sites[r.Intn(len(sites))]
		}
		// The coordinator must store the root fragment for the local-read
		// path of NaiveCentralized.
		assign[forest.RootID()] = "S0"
		q := xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true})
		prog := xpath.Compile(q)

		// Reference answer: the legacy pointer-formula pipeline.
		legacyTriplets := make(map[xmltree.FragmentID]eval.Triplet, forest.Count())
		for _, id := range forest.IDs() {
			fr, _ := forest.Fragment(id)
			lt, _, err := eval.LegacyBottomUp(fr.Root, prog)
			if err != nil {
				return false
			}
			legacyTriplets[id] = lt
		}
		st, err := frag.BuildSourceTree(forest, assign)
		if err != nil {
			return false
		}
		want, _, err := eval.LegacySolve(st, legacyTriplets, prog)
		if err != nil {
			t.Logf("LegacySolve(%q): %v", q.String(), err)
			return false
		}

		c := cluster.New(cluster.DefaultCostModel())
		eng, err := Deploy(c, forest, assign)
		if err != nil {
			return false
		}
		for _, algo := range algos {
			rep, err := eng.Run(ctx, algo, prog)
			if err != nil {
				t.Logf("%s(%q): %v (seed %d)", algo, q.String(), err, seed)
				return false
			}
			if rep.Answer != want {
				t.Logf("%s(%q) = %v, legacy reference = %v (seed %d)", algo, q.String(), rep.Answer, want, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

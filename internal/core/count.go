package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// KindCount is the aggregation variant of pass 2: propagate the selection
// automaton but return only the per-fragment match count. Section 8 of
// the paper singles out "numerical and aggregating computations over
// large data sets" as a natural beneficiary of partial evaluation — the
// response shrinks from a path list to a single integer, so the traffic
// bound drops back to O(|q|·card(F)) regardless of how many nodes match.
const KindCount = "parbox.count"

// CountReport is the outcome of a distributed COUNT query.
type CountReport struct {
	Count   int64
	PerSite map[frag.SiteID]int64
	// Accounting, as in Report.
	SimTime    time.Duration
	Wall       time.Duration
	Bytes      int64
	Messages   int64
	TotalSteps int64
	Visits     map[frag.SiteID]int64
}

// CountParBoX counts the nodes a path query selects, without materializing
// their identities anywhere: pass 1 as in SelectParBoX, pass 2 returns one
// integer per fragment.
func (e *Engine) CountParBoX(ctx context.Context, sp *xpath.SelectProgram) (CountReport, error) {
	start := time.Now()
	rec := newRecorder()

	sites := e.st.Sites()
	type siteResult struct {
		fts []fragTriplet
		sim time.Duration
		err error
	}
	results := make(chan siteResult, len(sites))
	for _, site := range sites {
		go func(site frag.SiteID) {
			resp, cost, err := e.call(ctx, rec, site, cluster.Request{
				Kind:    KindEvalQual,
				Payload: encodeEvalQualReq(evalQualReq{prog: sp.Bool, ids: e.st.FragmentsAt(site)}),
			})
			if err != nil {
				results <- siteResult{err: err}
				return
			}
			fts, err := decodeEvalQualResp(resp.Payload, nil)
			results <- siteResult{fts: fts, sim: cost.Total(), err: err}
		}(site)
	}
	triplets := make(map[xmltree.FragmentID]eval.Triplet, e.st.Count())
	var sim time.Duration
	var firstErr error
	for range sites {
		res := <-results
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		if res.sim > sim {
			sim = res.sim
		}
		for _, ft := range res.fts {
			triplets[ft.id] = ft.triplet
		}
	}
	if firstErr != nil {
		return CountReport{}, firstErr
	}
	vecs, solveWork, err := eval.SolveAll(e.st, triplets, sp.Bool)
	if err != nil {
		return CountReport{}, err
	}
	rec.steps += solveWork
	sim += e.cost.ComputeTime(solveWork)

	rep := CountReport{PerSite: make(map[frag.SiteID]int64)}
	spBytes := encodeSelectProgram(sp)
	pending := map[xmltree.FragmentID]eval.Arrival{e.st.Root(): eval.StartArrival()}
	for len(pending) > 0 {
		type countResult struct {
			site    frag.SiteID
			count   int64
			forward map[xmltree.FragmentID]eval.Arrival
			sim     time.Duration
			err     error
		}
		results := make(chan countResult, len(pending))
		for id, arr := range pending {
			entry, ok := e.st.Entry(id)
			if !ok {
				return CountReport{}, fmt.Errorf("core: fragment %d not in source tree", id)
			}
			childVecs := make(map[xmltree.FragmentID]eval.BoolVecs, len(entry.Children))
			for _, c := range entry.Children {
				childVecs[c] = vecs[c]
			}
			go func(id xmltree.FragmentID, site frag.SiteID, arr eval.Arrival, childVecs map[xmltree.FragmentID]eval.BoolVecs) {
				resp, cost, err := e.call(ctx, rec, site, cluster.Request{
					Kind:    KindCount,
					Payload: encodeSelectReq(spBytes, id, arr, childVecs),
				})
				if err != nil {
					results <- countResult{site: site, err: err}
					return
				}
				count, fwd, err := decodeCountResp(resp.Payload)
				results <- countResult{site: site, count: count, forward: fwd, sim: cost.Total(), err: err}
			}(id, entry.Site, arr, childVecs)
		}
		next := make(map[xmltree.FragmentID]eval.Arrival)
		var simLevel time.Duration
		for range pending {
			res := <-results
			if res.err != nil {
				if firstErr == nil {
					firstErr = res.err
				}
				continue
			}
			if res.sim > simLevel {
				simLevel = res.sim
			}
			rep.Count += res.count
			rep.PerSite[res.site] += res.count
			for c, arr := range res.forward {
				prev := next[c]
				prev.States |= arr.States
				prev.Sticky |= arr.Sticky
				next[c] = prev
			}
		}
		if firstErr != nil {
			return CountReport{}, firstErr
		}
		sim += simLevel
		pending = next
	}
	rep.SimTime = sim
	rep.Wall = time.Since(start)
	a := rec.snapshot()
	rep.Bytes = a.bytes
	rep.Messages = a.messages
	rep.TotalSteps = a.steps
	rep.Visits = a.visits
	return rep, nil
}

// handleCount is the site side: SelectFragment, but only the count leaves
// the site.
func handleCount(_ context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
	sp, id, arr, childVecs, err := decodeSelectReq(req.Payload)
	if err != nil {
		return cluster.Response{}, err
	}
	fr, ok := site.Fragment(id)
	if !ok {
		return cluster.Response{}, fmt.Errorf("core: site %s does not store fragment %d", site.ID(), id)
	}
	res, err := eval.SelectFragment(fr.Root, sp, childVecs, arr)
	if err != nil {
		return cluster.Response{}, err
	}
	return cluster.Response{
		Payload: encodeCountResp(int64(len(res.Selected)), res.Forward),
		Steps:   res.Steps,
	}, nil
}

func encodeCountResp(count int64, forward map[xmltree.FragmentID]eval.Arrival) []byte {
	dst := binary.AppendUvarint(nil, uint64(count))
	return append(dst, encodeSelectResp(nil, forward)...)
}

func decodeCountResp(buf []byte) (int64, map[xmltree.FragmentID]eval.Arrival, error) {
	r := &reader{buf: buf}
	count, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	paths, fwd, err := decodeSelectResp(buf[r.pos:])
	if err != nil {
		return 0, nil, err
	}
	if len(paths) != 0 {
		return 0, nil, fmt.Errorf("%w: count response carries paths", ErrBadMessage)
	}
	return int64(count), fwd, nil
}

package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// KindCount is the aggregation variant of pass 2: propagate the selection
// automaton but return only the per-fragment match count. Section 8 of
// the paper singles out "numerical and aggregating computations over
// large data sets" as a natural beneficiary of partial evaluation — the
// response shrinks from a path list to a single integer, so the traffic
// bound drops back to O(|q|·card(F)) regardless of how many nodes match.
const KindCount = "parbox.count"

// CountReport is the outcome of a distributed COUNT query.
type CountReport struct {
	Count   int64
	PerSite map[frag.SiteID]int64
	// Accounting, as in Report.
	SimTime    time.Duration
	Wall       time.Duration
	Bytes      int64
	Messages   int64
	TotalSteps int64
	Visits     map[frag.SiteID]int64
	// Failovers counts failed site calls re-placed onto surviving
	// replicas by the serving tier (always zero without one).
	Failovers int64
	// Hedges/HedgeWins count speculative duplicate calls issued and won
	// (see Report; zero with hedging disabled).
	Hedges, HedgeWins int64
}

// CountParBoX counts the nodes a path query selects, without materializing
// their identities anywhere: pass 1 as in SelectParBoX, pass 2 returns one
// integer per fragment.
func (e *Engine) CountParBoX(ctx context.Context, sp *xpath.SelectProgram) (CountReport, error) {
	e, err := e.forRound()
	if err != nil {
		return CountReport{}, err
	}
	start := time.Now()
	rec := newRecorder()

	sites := e.st.Sites()
	mk := func(site frag.SiteID, ids []xmltree.FragmentID) scatterJob[[]fragTriplet] {
		return e.evalQualJob(sp.Bool, 0, site, ids)
	}
	jobs := make([]scatterJob[[]fragTriplet], len(sites))
	for i, site := range sites {
		jobs[i] = mk(site, e.st.FragmentsAt(site))
	}
	perSite, sim, err := scatterHedged(ctx, e.tr, e.coord, e.maxInflight, rec, jobs, e.obs(), e.failoverRetry(rec, mk), e.hedgeHook(mk))
	if err != nil {
		return CountReport{}, err
	}
	triplets := make(map[xmltree.FragmentID]eval.Triplet, e.st.Count())
	for _, fts := range perSite {
		for _, ft := range fts {
			triplets[ft.id] = ft.triplet
		}
	}
	vecs, solveWork, err := eval.SolveAll(e.st, triplets, sp.Bool)
	if err != nil {
		return CountReport{}, err
	}
	rec.steps += solveWork
	sim += e.cost.ComputeTime(solveWork)

	rep := CountReport{PerSite: make(map[frag.SiteID]int64)}
	spBytes := encodeSelectProgram(sp)
	pending := map[xmltree.FragmentID]eval.Arrival{e.st.Root(): eval.StartArrival()}
	type countResult struct {
		count   int64
		forward map[xmltree.FragmentID]eval.Arrival
	}
	for len(pending) > 0 {
		ids := sortedFragmentIDs(pending)
		levelSites := make([]frag.SiteID, len(ids))
		jobs := make([]scatterJob[countResult], len(ids))
		for i, id := range ids {
			entry, ok := e.st.Entry(id)
			if !ok {
				return CountReport{}, fmt.Errorf("core: fragment %d not in source tree", id)
			}
			levelSites[i] = entry.Site
			childVecs := make(map[xmltree.FragmentID]eval.BoolVecs, len(entry.Children))
			for _, c := range entry.Children {
				childVecs[c] = vecs[c]
			}
			jobs[i] = scatterJob[countResult]{
				to: entry.Site,
				req: cluster.Request{
					Kind:    KindCount,
					Payload: encodeSelectReq(spBytes, id, pending[id], childVecs),
				},
				dec: func(resp cluster.Response, _ cluster.CallCost) (countResult, error) {
					count, fwd, err := decodeCountResp(resp.Payload)
					return countResult{count: count, forward: fwd}, err
				},
			}
		}
		level, simLevel, err := scatterWith(ctx, e.tr, e.coord, e.maxInflight, rec, jobs, e.obs(), nil)
		if err != nil {
			return CountReport{}, err
		}
		next := make(map[xmltree.FragmentID]eval.Arrival)
		for i, res := range level {
			rep.Count += res.count
			rep.PerSite[levelSites[i]] += res.count
			for c, arr := range res.forward {
				prev := next[c]
				prev.States |= arr.States
				prev.Sticky |= arr.Sticky
				next[c] = prev
			}
		}
		sim += simLevel
		pending = next
	}
	rep.SimTime = sim
	rep.Wall = time.Since(start)
	a := rec.snapshot()
	rep.Bytes = a.bytes
	rep.Messages = a.messages
	rep.TotalSteps = a.steps
	rep.Visits = a.visits
	rep.Failovers = a.failovers
	rep.Hedges = a.hedges
	rep.HedgeWins = a.hedgeWins
	return rep, nil
}

// handleCount is the site side: SelectFragment, but only the count leaves
// the site.
func handleCount(_ context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
	sp, id, arr, childVecs, err := decodeSelectReq(req.Payload)
	if err != nil {
		return cluster.Response{}, err
	}
	fr, ok := site.Fragment(id)
	if !ok {
		return cluster.Response{}, fmt.Errorf("core: site %s does not store fragment %d", site.ID(), id)
	}
	res, err := eval.SelectFragment(fr.Root, sp, childVecs, arr)
	if err != nil {
		return cluster.Response{}, err
	}
	return cluster.Response{
		Payload: encodeCountResp(int64(len(res.Selected)), res.Forward),
		Steps:   res.Steps,
	}, nil
}

func encodeCountResp(count int64, forward map[xmltree.FragmentID]eval.Arrival) []byte {
	dst := binary.AppendUvarint(nil, uint64(count))
	return append(dst, encodeSelectResp(nil, forward)...)
}

func decodeCountResp(buf []byte) (int64, map[xmltree.FragmentID]eval.Arrival, error) {
	r := &reader{buf: buf}
	count, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	paths, fwd, err := decodeSelectResp(buf[r.pos:])
	if err != nil {
		return 0, nil, err
	}
	if len(paths) != 0 {
		return 0, nil, fmt.Errorf("%w: count response carries paths", ErrBadMessage)
	}
	return int64(count), fwd, nil
}

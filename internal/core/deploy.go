package core

import (
	"repro/internal/cluster"
	"repro/internal/frag"
)

// Deploy places the fragments of a forest onto the in-process cluster per
// the assignment, registers the ParBoX protocol handlers on every involved
// site, and returns the source tree plus an engine coordinating from the
// root fragment's site (the paper's convention: the coordinating site
// stores the root fragment).
//
// Deploy does not copy fragment trees; the forest must not be mutated
// while the cluster serves queries, except through the view-maintenance
// layer, which owns that protocol.
func Deploy(c *cluster.Cluster, forest *frag.Forest, assign frag.Assignment) (*Engine, error) {
	st, err := frag.BuildSourceTree(forest, assign)
	if err != nil {
		return nil, err
	}
	for _, id := range forest.IDs() {
		fr, _ := forest.Fragment(id)
		site := c.AddSite(assign[id])
		site.AddFragment(fr)
	}
	for _, siteID := range st.Sites() {
		site := c.AddSite(siteID)
		RegisterHandlers(site, c, c.Cost())
	}
	rootEntry, _ := st.Entry(st.Root())
	return NewEngine(c, rootEntry.Site, st, c.Cost()), nil
}

package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/fixtures"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// deployFig2 deploys the running example (Fig. 2) on a fresh cluster.
func deployFig2(t *testing.T) (*cluster.Cluster, *Engine, *xmltree.Node) {
	t.Helper()
	forest, orig, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultCostModel())
	eng, err := Deploy(c, forest, frag.Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"})
	if err != nil {
		t.Fatal(err)
	}
	return c, eng, orig
}

var fig2Queries = []string{
	`//stock[code/text() = "YHOO"]`,
	`//stock[code/text() = "MSFT"]`,
	`/portofolio/broker/name = "Merill Lynch"`,
	`//stock[code = "GOOG" && sell = "373"]`,
	`!(//stock[code = "YHOO"]) || //market[name = "NYSE"]`,
	`//broker && //market && //stock`,
	`//a && //b`,
}

func TestAllAlgorithmsAgreeOnFig2(t *testing.T) {
	_, eng, orig := deployFig2(t)
	ctx := context.Background()
	for _, src := range fig2Queries {
		prog := xpath.MustCompileString(src)
		want, _, err := eval.Evaluate(orig, prog)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range Algorithms() {
			rep, err := eng.Run(ctx, algo, prog)
			if err != nil {
				t.Errorf("%s(%q): %v", algo, src, err)
				continue
			}
			if rep.Answer != want {
				t.Errorf("%s(%q) = %v, want %v", algo, src, rep.Answer, want)
			}
			if rep.Algorithm != algo {
				t.Errorf("%s reported algorithm %q", algo, rep.Algorithm)
			}
		}
	}
}

// TestParBoXVisitsOnce pins the paper's headline guarantee (Fig. 4 row
// ParBoX): every site is visited exactly once, even S2 which stores two
// fragments.
func TestParBoXVisitsOnce(t *testing.T) {
	_, eng, _ := deployFig2(t)
	prog := xpath.MustCompileString(fig2Queries[0])
	rep, err := eng.ParBoX(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Visits["S1"]; got != 1 {
		t.Errorf("S1 visits = %d, want 1", got)
	}
	if got := rep.Visits["S2"]; got != 1 {
		t.Errorf("S2 visits = %d, want 1 (it stores F2 AND F3)", got)
	}
	if got := rep.Visits["S0"]; got != 0 {
		t.Errorf("coordinator visits = %d, want 0 (local work is free)", got)
	}
}

// TestNaiveDistributedVisits pins the card(F_Si) visits of the
// NaiveDistributed row: S2 stores two fragments and is visited twice.
func TestNaiveDistributedVisits(t *testing.T) {
	_, eng, _ := deployFig2(t)
	prog := xpath.MustCompileString(fig2Queries[0])
	rep, err := eng.NaiveDistributed(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Visits["S2"]; got != 2 {
		// The coordinator's recorder only sees its own calls; count from
		// the cluster metrics instead.
		t.Logf("coordinator-recorded visits: %v", rep.Visits)
	}
}

// TestNaiveDistributedVisitsViaMetrics counts S2's visits from the global
// cluster metrics, which see the nested site-to-site calls.
func TestNaiveDistributedVisitsViaMetrics(t *testing.T) {
	c, eng, _ := deployFig2(t)
	prog := xpath.MustCompileString(fig2Queries[0])
	c.Metrics().Reset()
	if _, err := eng.NaiveDistributed(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics().Site("S2").Visits; got != 2 {
		t.Errorf("S2 visits = %d, want 2 (one per fragment stored)", got)
	}
	if got := c.Metrics().Site("S1").Visits; got != 1 {
		t.Errorf("S1 visits = %d, want 1", got)
	}
}

// TestParBoXTrafficIndependentOfData: the communication of ParBoX must not
// grow with |T| (Fig. 4: O(|q|·card(F))), while NaiveCentralized's must.
func TestParBoXTrafficIndependentOfData(t *testing.T) {
	build := func(padding int) *Engine {
		doc := fixtures.Portfolio()
		// Pad the Merill market (which becomes F1 at S1) with extra stocks.
		market := doc.Children[0].Children[1]
		for i := 0; i < padding; i++ {
			market.AppendChild(fixtures.Stock("PAD", "1", "2"))
		}
		forest := frag.NewForest(doc)
		if _, err := forest.Split(market); err != nil {
			t.Fatal(err)
		}
		c := cluster.New(cluster.DefaultCostModel())
		eng, err := Deploy(c, forest, frag.Assignment{0: "S0", 1: "S1"})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	prog := xpath.MustCompileString(fig2Queries[0])
	ctx := context.Background()

	small, large := build(5), build(500)
	repS, err := small.ParBoX(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	repL, err := large.ParBoX(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if repS.Bytes != repL.Bytes {
		t.Errorf("ParBoX traffic grew with data size: %d vs %d bytes", repS.Bytes, repL.Bytes)
	}
	cenS, err := small.NaiveCentralized(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	cenL, err := large.NaiveCentralized(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if cenL.Bytes <= cenS.Bytes {
		t.Errorf("NaiveCentralized traffic did not grow with data: %d vs %d", cenS.Bytes, cenL.Bytes)
	}
	if cenL.Bytes < 10*repL.Bytes {
		t.Errorf("expected centralized traffic (%d) to dwarf ParBoX traffic (%d)", cenL.Bytes, repL.Bytes)
	}
}

// TestLazyStopsEarly reproduces the Section 4 example: LazyParBoX's first
// step evaluates the coordinator plus the depth-1 fragments; a query that
// resolves there must never touch the depth-2 fragment F2.
func TestLazyStopsEarly(t *testing.T) {
	c, eng, _ := deployFig2(t)
	// Satisfied in F0 itself: after the first step the partial system
	// already answers true, so S2 is visited once (for F3, depth 1) and
	// never again for F2 (depth 2).
	prog := xpath.MustCompileString(`/portofolio/broker/name = "Bache"`)
	c.Metrics().Reset()
	rep, err := eng.Lazy(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Answer {
		t.Fatal("expected true")
	}
	if got := c.Metrics().Site("S1").Visits; got != 1 {
		t.Errorf("S1 visits = %d, want 1 (first step covers depth 1)", got)
	}
	if got := c.Metrics().Site("S2").Visits; got != 1 {
		t.Errorf("S2 visits = %d, want 1 (F3 in step 1; F2 must be skipped)", got)
	}
	// A query needing the depth-2 fragment F2 forces a second step at S2.
	c.Metrics().Reset()
	prog2 := xpath.MustCompileString(`//stock[code = "GOOG" && buy = "370"]`) // GOOG/370 lives in F2
	rep2, err := eng.Lazy(context.Background(), prog2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Answer {
		t.Fatal("expected true")
	}
	if got := c.Metrics().Site("S2").Visits; got != 2 {
		t.Errorf("S2 visits = %d, want 2 (steps 1 and 2)", got)
	}
}

// TestHybridTippingPoint: with card(F)·|q| ≥ |T| Hybrid must choose the
// centralized plan (shipping data beats shipping formulas in the
// pathological regime).
func TestHybridTippingPoint(t *testing.T) {
	// Tiny fragments: a chain of 6 nodes, every node its own fragment.
	doc := xmltree.NewElement("n0", "")
	cur := doc
	for i := 1; i < 6; i++ {
		cur = cur.AppendChild(xmltree.NewElement("n", ""))
	}
	forest := frag.NewForest(doc)
	for {
		var next *xmltree.Node
		forest.Validate()
		for _, id := range forest.IDs() {
			fr, _ := forest.Fragment(id)
			fr.Root.Walk(func(n *xmltree.Node) {
				if next == nil && !n.Virtual && n.Parent != nil {
					next = n
				}
			})
			if next != nil {
				break
			}
		}
		if next == nil {
			break
		}
		if _, err := forest.Split(next); err != nil {
			t.Fatal(err)
		}
	}
	if forest.Count() != 6 {
		t.Fatalf("pathological fragmentation has %d fragments, want 6", forest.Count())
	}
	c := cluster.New(cluster.DefaultCostModel())
	assign := frag.Assignment{}
	for i, id := range forest.IDs() {
		assign[id] = frag.SiteID([]string{"S0", "S1", "S2"}[i%3])
	}
	// Pin the root fragment's assignment so the coordinator stays S0.
	assign[forest.RootID()] = "S0"
	eng, err := Deploy(c, forest, assign)
	if err != nil {
		t.Fatal(err)
	}
	prog := xpath.MustCompileString(`//n`) // |QList| = 4 ≥ |T|/card(F) = 1
	c.Metrics().Reset()
	rep, err := eng.Hybrid(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Answer {
		t.Error("expected //n true")
	}
	// The centralized branch fetches fragments; detect it by the request
	// kind having reached S1 (fetch, not evalQual). Cheap proxy: compare
	// against a direct ParBoX run's byte count — hybrid must differ.
	parbox, err := eng.ParBoX(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes >= parbox.Bytes {
		t.Logf("hybrid bytes %d, parbox bytes %d", rep.Bytes, parbox.Bytes)
	}
	// And on a data-heavy benign deployment (card(F)·|q| << |T|), Hybrid
	// must pick ParBoX: its traffic equals ParBoX's byte for byte.
	doc2 := fixtures.Portfolio()
	market := doc2.Children[0].Children[1]
	for i := 0; i < 500; i++ {
		market.AppendChild(fixtures.Stock("PAD", "1", "2"))
	}
	forest2 := frag.NewForest(doc2)
	if _, err := forest2.Split(market); err != nil {
		t.Fatal(err)
	}
	c2 := cluster.New(cluster.DefaultCostModel())
	eng2, err := Deploy(c2, forest2, frag.Assignment{0: "S0", 1: "S1"})
	if err != nil {
		t.Fatal(err)
	}
	prog2 := xpath.MustCompileString(fig2Queries[0])
	h, err := eng2.Hybrid(context.Background(), prog2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng2.ParBoX(context.Background(), prog2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bytes != p.Bytes {
		t.Errorf("Hybrid on a benign fragmentation sent %d bytes, ParBoX %d — expected the ParBoX branch", h.Bytes, p.Bytes)
	}
}

// TestFullDistNoVariablesOnWire: FullDistParBoX responses carry resolved
// triplets only. We verify via its reported answer plus the fact that the
// resolve of the root returned a constant — and that, unlike ParBoX, the
// coordinator's solve work is zero.
func TestFullDistShape(t *testing.T) {
	_, eng, orig := deployFig2(t)
	prog := xpath.MustCompileString(fig2Queries[0])
	rep, err := eng.FullDist(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := eval.Evaluate(orig, prog)
	if rep.Answer != want {
		t.Errorf("answer %v, want %v", rep.Answer, want)
	}
	if rep.SolveWork != 0 {
		t.Errorf("FullDist should not solve at the coordinator, SolveWork = %d", rep.SolveWork)
	}
}

func TestErrorPaths(t *testing.T) {
	_, eng, _ := deployFig2(t)
	ctx := context.Background()
	prog := xpath.MustCompileString(fig2Queries[0])

	if _, err := eng.Run(ctx, Algorithm(99), prog); err == nil {
		t.Error("unknown algorithm must fail")
	}

	// Cancelled context must fail promptly.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := eng.ParBoX(cctx, prog); err == nil {
		t.Error("cancelled context must fail")
	}

	// A site that is missing a fragment must produce an error, not a wrong
	// answer.
	c2 := cluster.New(cluster.DefaultCostModel())
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := Deploy(c2, forest, frag.Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"})
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := c2.Site("S2")
	s2.RemoveFragment(3)
	if _, err := eng2.ParBoX(ctx, prog); err == nil {
		t.Error("ParBoX with a missing fragment must fail")
	}
	if _, err := eng2.NaiveCentralized(ctx, prog); err == nil {
		t.Error("NaiveCentralized with a missing fragment must fail")
	}
	if _, err := eng2.FullDist(ctx, prog); err == nil {
		t.Error("FullDist with a missing fragment must fail")
	}

	// Resolve without prior evalQualKeep must fail.
	_, _, err = c2.Call(ctx, "S0", "S1", cluster.Request{
		Kind:    KindResolve,
		Payload: encodeResolveReq("ghost", 1),
	})
	if err == nil || !strings.Contains(err.Error(), "no state") {
		t.Errorf("resolve without state: %v", err)
	}
}

// TestPropAllAlgorithmsAgree is the cross-algorithm differential property:
// for random documents, fragmentations, assignments and queries, all six
// algorithms return the centralized answer.
func TestPropAllAlgorithmsAgree(t *testing.T) {
	f := func(seed int64, sizeRaw, splitRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 2 + int(sizeRaw%60)})
		orig := tree.Clone()
		forest := frag.NewForest(tree)
		if err := forest.SplitRandom(r, 1+int(splitRaw%8)); err != nil {
			return false
		}
		sites := []frag.SiteID{"S0", "S1", "S2"}
		assign := make(frag.Assignment)
		for _, id := range forest.IDs() {
			assign[id] = sites[r.Intn(len(sites))]
		}
		c := cluster.New(cluster.DefaultCostModel())
		eng, err := Deploy(c, forest, assign)
		if err != nil {
			return false
		}
		q := xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true})
		prog := xpath.Compile(q)
		want, _, err := eval.Evaluate(orig, prog)
		if err != nil {
			return false
		}
		ctx := context.Background()
		for _, algo := range Algorithms() {
			rep, err := eng.Run(ctx, algo, prog)
			if err != nil {
				t.Logf("%s(%q): %v (seed %d)", algo, q.String(), err, seed)
				return false
			}
			if rep.Answer != want {
				t.Logf("%s(%q) = %v, want %v (seed %d)", algo, q.String(), rep.Answer, want, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestSimTimesPositive sanity-checks the modeled times: remote work must
// produce positive simulated durations, and ParBoX's must be below
// NaiveCentralized's on a data-heavy layout.
func TestSimTimesOrdering(t *testing.T) {
	doc := fixtures.Portfolio()
	market := doc.Children[0].Children[1]
	for i := 0; i < 3000; i++ {
		market.AppendChild(fixtures.Stock("PAD", "1", "2"))
	}
	forest := frag.NewForest(doc)
	if _, err := forest.Split(market); err != nil {
		t.Fatal(err)
	}
	c := cluster.New(cluster.DefaultCostModel())
	eng, err := Deploy(c, forest, frag.Assignment{0: "S0", 1: "S1"})
	if err != nil {
		t.Fatal(err)
	}
	prog := xpath.MustCompileString(fig2Queries[0])
	ctx := context.Background()
	p, err := eng.ParBoX(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	n, err := eng.NaiveCentralized(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if p.SimTime <= 0 || n.SimTime <= 0 {
		t.Errorf("non-positive sim times: parbox %v, central %v", p.SimTime, n.SimTime)
	}
	if p.SimTime >= n.SimTime {
		t.Errorf("ParBoX sim %v not better than centralized %v on a data-heavy layout", p.SimTime, n.SimTime)
	}
}

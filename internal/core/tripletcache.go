package core

import (
	"sync"

	"repro/internal/boolexpr"
	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/xmltree"
)

// tripletCache is a site's versioned memo of computed partial answers: the
// encoded triplet of a fragment, keyed by (fragment, program fingerprint)
// and guarded by the fragment's version. As long as a fragment has not
// changed since a program last visited it, evalQual answers straight from
// the cache — zero bottomUp steps — and the coordinator merely re-solves
// the equation system. Any maintenance that touches the fragment bumps its
// site version (cluster.Site.BumpFragment), so the next lookup observes a
// version mismatch, evicts the stale entry and recomputes; entries of
// untouched fragments are unaffected.
//
// Values are the immutable wire encoding (not decoded formulas): a hit is
// returned by reference into the response with no re-encoding, and the
// bytes are safe to share across concurrent requests.
type tripletCache struct {
	mu      sync.Mutex
	entries map[tcKey]*tcEntry
	// order is a FIFO of insertions for bounded-size eviction; keys already
	// evicted (or replaced) are skipped when popped.
	order        []tcKey
	hits, misses int64
}

type tcKey struct {
	id xmltree.FragmentID
	fp uint64
}

type tcEntry struct {
	version uint64
	enc     []byte
}

// maxTripletCacheEntries bounds a site's cache. Entries are one encoded
// triplet each (hundreds of bytes, O(|q|·virtual-nodes), never O(|F|)), so
// the bound caps memory at roughly a megabyte per site while comfortably
// holding a dissemination system's standing query set.
const maxTripletCacheEntries = 4096

// tripletCacheKey is the site-state key the cache lives under.
const tripletCacheKey = "parbox.tripletCache"

// siteTripletCache returns the site's cache, creating it on first use.
func siteTripletCache(site *cluster.Site) *tripletCache {
	return site.GetOrPut(tripletCacheKey, func() any {
		return &tripletCache{entries: make(map[tcKey]*tcEntry)}
	}).(*tripletCache)
}

// lookup returns the cached encoding of fragment id under program fp, if
// present and computed at exactly the given fragment version. A version
// mismatch misses; the stale entry is left in place for the follow-up
// store to overwrite — deleting it here would orphan its key in the
// eviction FIFO, growing order without bound and making a later duplicate
// key evict a live entry.
func (c *tripletCache) lookup(id xmltree.FragmentID, version, fp uint64) ([]byte, bool) {
	k := tcKey{id: id, fp: fp}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok || e.version != version {
		c.misses++
		return nil, false
	}
	c.hits++
	return e.enc, true
}

// store memoizes the encoding of fragment id (at the given version) under
// program fp, evicting oldest-inserted entries past the size bound.
func (c *tripletCache) store(id xmltree.FragmentID, version, fp uint64, enc []byte) {
	k := tcKey{id: id, fp: fp}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[k]; !exists {
		c.order = append(c.order, k)
	}
	c.entries[k] = &tcEntry{version: version, enc: enc}
	for len(c.entries) > maxTripletCacheEntries && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		if victim != k {
			delete(c.entries, victim)
		} else {
			// Never evict the entry just stored; re-queue it.
			c.order = append(c.order, victim)
		}
	}
}

// stats returns the cache's cumulative hit/miss counters.
func (c *tripletCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// StoreTriplet installs an externally computed triplet encoding in the
// site's cache, keyed at the given fragment version. Incremental
// maintenance (views.applyUpdate) uses it to patch the cache in place at
// the post-update version — turning what used to be an invalidation (and
// a full bottomUp on the next visit) into an immediate hit. enc must be
// immutable once stored.
func StoreTriplet(site *cluster.Site, id xmltree.FragmentID, version, fp uint64, enc []byte) {
	siteTripletCache(site).store(id, version, fp, enc)
}

// TripletRestorer installs recovered triplet-cache entries at restarted
// sites, sharing one decode slab across the whole restore loop (the
// decoded formulas are validation-only and discarded; the slab's chunks
// amortize to one allocation per batch). Not safe for concurrent use —
// restores run during single-threaded site setup.
type TripletRestorer struct {
	slab *boolexpr.Slab
}

// NewTripletRestorer creates a restorer for one recovery pass.
func NewTripletRestorer() *TripletRestorer {
	return &TripletRestorer{slab: boolexpr.NewSlab()}
}

// Restore installs one recovered entry, provided it is still alive: the
// fragment's restored version must equal the version the entry was
// computed at, and the encoding must decode — a dead or undecodable entry
// is rejected (and reported false) rather than ever served. Restore
// entries after the site's fragment versions (cluster.Site.RestoreVersion)
// and before it serves queries.
func (r *TripletRestorer) Restore(site *cluster.Site, id xmltree.FragmentID, version, fp uint64, enc []byte) bool {
	if fp == 0 || version == 0 || site.FragmentVersion(id) != version {
		return false
	}
	if _, err := eval.DecodeTripletSlab(enc, r.slab); err != nil {
		return false
	}
	siteTripletCache(site).store(id, version, fp, enc)
	return true
}

package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmark"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// replicatedSetup builds a 5-fragment star document where every fragment
// is replicated at 2–3 of the 4 sites.
func replicatedSetup(t *testing.T) (*frag.Forest, ReplicaMap, *cluster.Cluster) {
	t.Helper()
	root, sites, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       9,
		Parents:    xmark.StarParents(5),
		MBs:        []float64{0.2, 1.0, 0.4, 0.4, 0.2},
		NodesPerMB: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := xmark.Fragment(root, sites)
	if err != nil {
		t.Fatal(err)
	}
	replicas := ReplicaMap{
		0: {"S0", "S1"},
		1: {"S1", "S2", "S3"},
		2: {"S2", "S0"},
		3: {"S3", "S1"},
		4: {"S0", "S2", "S3"},
	}
	return forest, replicas, cluster.New(cluster.DefaultCostModel())
}

func TestReplicatedCorrectAcrossStrategies(t *testing.T) {
	forest, replicas, c := replicatedSetup(t)
	orig, err := forest.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	prog := xpath.MustCompileString(xmark.Queries[8])
	want, _, err := eval.Evaluate(orig, prog)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := DeployReplicated(c, forest, replicas, PlaceFirst)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, strategy := range []PlacementStrategy{PlaceFirst, PlaceMinSites, PlaceBalanced} {
		eng2, err := Replan(c, forest, replicas, strategy)
		if err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		for _, algo := range []Algorithm{AlgoParBoX, AlgoFullDist, AlgoLazy} {
			rep, err := eng2.Run(ctx, algo, prog)
			if err != nil {
				t.Errorf("%v/%s: %v", strategy, algo, err)
				continue
			}
			if rep.Answer != want {
				t.Errorf("%v/%s = %v, want %v", strategy, algo, rep.Answer, want)
			}
		}
	}
	_ = eng
}

func TestPlaceMinSitesReducesSiteCount(t *testing.T) {
	forest, replicas, _ := replicatedSetup(t)
	sizes := map[xmltree.FragmentID]int{}
	for _, id := range forest.IDs() {
		fr, _ := forest.Fragment(id)
		sizes[id] = fr.Size()
	}
	countSites := func(a frag.Assignment) int {
		set := map[frag.SiteID]bool{}
		for _, s := range a {
			set[s] = true
		}
		return len(set)
	}
	minA, err := PlanPlacement(replicas, sizes, PlaceMinSites)
	if err != nil {
		t.Fatal(err)
	}
	firstA, err := PlanPlacement(replicas, sizes, PlaceFirst)
	if err != nil {
		t.Fatal(err)
	}
	if countSites(minA) > countSites(firstA) {
		t.Errorf("min-sites used %d sites, first used %d", countSites(minA), countSites(firstA))
	}
	// For this replica map, two sites suffice (S1 covers {0,1,3}, and S0
	// or S2 covers {2,4}); greedy set cover must find ≤ 3.
	if countSites(minA) > 2 {
		t.Errorf("min-sites used %d sites, want ≤ 2: %v", countSites(minA), minA)
	}
}

func TestPlaceBalancedReducesMakespan(t *testing.T) {
	forest, replicas, _ := replicatedSetup(t)
	sizes := map[xmltree.FragmentID]int{}
	for _, id := range forest.IDs() {
		fr, _ := forest.Fragment(id)
		sizes[id] = fr.Size()
	}
	maxLoad := func(a frag.Assignment) int {
		load := map[frag.SiteID]int{}
		for id, s := range a {
			load[s] += sizes[id]
		}
		max := 0
		for _, l := range load {
			if l > max {
				max = l
			}
		}
		return max
	}
	balA, err := PlanPlacement(replicas, sizes, PlaceBalanced)
	if err != nil {
		t.Fatal(err)
	}
	minA, err := PlanPlacement(replicas, sizes, PlaceMinSites)
	if err != nil {
		t.Fatal(err)
	}
	if maxLoad(balA) > maxLoad(minA) {
		t.Errorf("balanced max load %d exceeds min-sites' %d", maxLoad(balA), maxLoad(minA))
	}
	// And the balanced plan's ParBoX makespan beats the min-sites plan's
	// on this size-skewed layout.
	_, _, c := replicatedSetup(t)
	if _, err := DeployReplicated(c, forest, replicas, PlaceFirst); err != nil {
		t.Fatal(err)
	}
	prog := xpath.MustCompileString(xmark.Queries[8])
	ctx := context.Background()
	engBal, err := Replan(c, forest, replicas, PlaceBalanced)
	if err != nil {
		t.Fatal(err)
	}
	engMin, err := Replan(c, forest, replicas, PlaceMinSites)
	if err != nil {
		t.Fatal(err)
	}
	repBal, err := engBal.ParBoX(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	repMin, err := engMin.ParBoX(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	if repBal.SimTime > repMin.SimTime {
		t.Errorf("balanced %v slower than min-sites %v", repBal.SimTime, repMin.SimTime)
	}
}

func TestPlanPlacementErrors(t *testing.T) {
	if _, err := PlanPlacement(ReplicaMap{0: nil}, nil, PlaceFirst); err == nil {
		t.Error("empty replica list accepted")
	}
	if _, err := PlanPlacement(ReplicaMap{0: {"S0"}}, nil, PlacementStrategy(99)); err == nil {
		t.Error("unknown strategy accepted")
	}
	forest, _, c := replicatedSetup(t)
	if _, err := DeployReplicated(c, forest, ReplicaMap{0: {"S0"}}, PlaceFirst); err == nil {
		t.Error("missing replicas for fragments 1..4 accepted")
	}
}

// TestPropReplicatedAgreesWithCentralized: random replica maps never change
// answers, under every strategy.
func TestPropReplicatedAgreesWithCentralized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 2 + r.Intn(50)})
		orig := tree.Clone()
		forest := frag.NewForest(tree)
		if err := forest.SplitRandom(r, 1+r.Intn(5)); err != nil {
			return false
		}
		all := []frag.SiteID{"S0", "S1", "S2", "S3"}
		replicas := ReplicaMap{}
		for _, id := range forest.IDs() {
			n := 1 + r.Intn(3)
			perm := r.Perm(len(all))
			var sites []frag.SiteID
			for _, p := range perm[:n] {
				sites = append(sites, all[p])
			}
			replicas[id] = sites
		}
		c := cluster.New(cluster.DefaultCostModel())
		if _, err := DeployReplicated(c, forest, replicas, PlaceFirst); err != nil {
			return false
		}
		q := xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true})
		prog := xpath.Compile(q)
		want, _, err := eval.Evaluate(orig, prog)
		if err != nil {
			return false
		}
		for _, strategy := range []PlacementStrategy{PlaceFirst, PlaceMinSites, PlaceBalanced} {
			eng, err := Replan(c, forest, replicas, strategy)
			if err != nil {
				return false
			}
			rep, err := eng.ParBoX(context.Background(), prog)
			if err != nil || rep.Answer != want {
				t.Logf("%v(%q): %v answer=%v want=%v (seed %d)", strategy, q.String(), err, rep.Answer, want, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCountParBoX(t *testing.T) {
	forest, replicas, c := replicatedSetup(t)
	orig, err := forest.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := DeployReplicated(c, forest, replicas, PlaceBalanced)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, src := range []string{`//item`, `//person/name`, `//nothing`, `//item[location = "Kenya"]`} {
		sp, err := xpath.CompileSelectString(src)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.CountParBoX(ctx, sp)
		if err != nil {
			t.Fatalf("CountParBoX(%q): %v", src, err)
		}
		e, _ := xpath.Parse(src)
		want, err := xpath.SelectRaw(e, orig)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Count != int64(len(want)) {
			t.Errorf("count(%q) = %d, want %d", src, rep.Count, len(want))
		}
		var perSite int64
		for _, n := range rep.PerSite {
			perSite += n
		}
		if perSite != rep.Count {
			t.Errorf("per-site counts sum to %d, total %d", perSite, rep.Count)
		}
	}
	// Counting must be cheaper on the wire than full selection when many
	// nodes match.
	sp, _ := xpath.CompileSelectString(`//item`)
	cnt, err := eng.CountParBoX(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := eng.SelectParBoX(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Count != int64(sel.Count) {
		t.Fatalf("count %d != selection %d", cnt.Count, sel.Count)
	}
	if cnt.Bytes >= sel.Bytes {
		t.Errorf("count traffic %d not below selection traffic %d", cnt.Bytes, sel.Bytes)
	}
}

package core

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// RequestTriplets asks one site to run Procedure evalQual over the given
// locally stored fragments and returns the resulting triplets by fragment.
// The view-maintenance layer uses it to (re)compute partial answers for
// exactly one fragment after an update — the paper's localized
// recomputation.
func RequestTriplets(ctx context.Context, tr cluster.Transport, from, to frag.SiteID,
	prog *xpath.Program, ids []xmltree.FragmentID) (map[xmltree.FragmentID]eval.Triplet, cluster.CallCost, error) {
	resp, cost, err := tr.Call(ctx, from, to, cluster.Request{
		Kind:    KindEvalQual,
		Payload: encodeEvalQualReq(evalQualReq{prog: prog, ids: ids}),
	})
	if err != nil {
		return nil, cost, err
	}
	fts, err := decodeEvalQualResp(resp.Payload, nil)
	if err != nil {
		return nil, cost, err
	}
	out := make(map[xmltree.FragmentID]eval.Triplet, len(fts))
	for _, ft := range fts {
		out[ft.id] = ft.triplet
	}
	return out, cost, nil
}

// GatherTriplets runs Procedure evalQual at every site of the source
// tree through the engine's scatter/gather layer — one visit per site,
// at most maxInflight calls in flight at once (0 = all together), first
// error cancels the round — and returns every fragment's triplet. The
// views layer materializes and refreshes through it; accounting flows
// through whatever metering transport tr wraps.
func GatherTriplets(ctx context.Context, tr cluster.Transport, from frag.SiteID,
	st *frag.SourceTree, prog *xpath.Program, maxInflight int) (map[xmltree.FragmentID]eval.Triplet, error) {
	sites := st.Sites()
	jobs := make([]scatterJob[[]fragTriplet], len(sites))
	for i, site := range sites {
		jobs[i] = scatterJob[[]fragTriplet]{
			to: site,
			req: cluster.Request{
				Kind:    KindEvalQual,
				Payload: encodeEvalQualReq(evalQualReq{prog: prog, ids: st.FragmentsAt(site)}),
			},
			dec: func(resp cluster.Response, _ cluster.CallCost) ([]fragTriplet, error) {
				return decodeEvalQualResp(resp.Payload, nil)
			},
		}
	}
	perSite, _, err := scatter(ctx, tr, from, maxInflight, nil, jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[xmltree.FragmentID]eval.Triplet, st.Count())
	for _, fts := range perSite {
		for _, ft := range fts {
			out[ft.id] = ft.triplet
		}
	}
	return out, nil
}

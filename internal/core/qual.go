package core

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// RequestTriplets asks one site to run Procedure evalQual over the given
// locally stored fragments and returns the resulting triplets by fragment.
// The view-maintenance layer uses it to (re)compute partial answers for
// exactly one fragment after an update — the paper's localized
// recomputation.
func RequestTriplets(ctx context.Context, tr cluster.Transport, from, to frag.SiteID,
	prog *xpath.Program, ids []xmltree.FragmentID) (map[xmltree.FragmentID]eval.Triplet, cluster.CallCost, error) {
	resp, cost, err := tr.Call(ctx, from, to, cluster.Request{
		Kind:    KindEvalQual,
		Payload: encodeEvalQualReq(evalQualReq{prog: prog, ids: ids}),
	})
	if err != nil {
		return nil, cost, err
	}
	fts, err := decodeEvalQualResp(resp.Payload, nil)
	if err != nil {
		return nil, cost, err
	}
	out := make(map[xmltree.FragmentID]eval.Triplet, len(fts))
	for _, ft := range fts {
		out[ft.id] = ft.triplet
	}
	return out, cost, nil
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// RenderTrace writes an indented tree of the record's spans. Orphan
// spans (parent missing from the set — e.g. dropped over a ring
// limit) render as additional roots so nothing is silently hidden.
func RenderTrace(w io.Writer, rec TraceRecord) {
	fmt.Fprintf(w, "trace %016x %s (%v, %d spans)\n", rec.TraceID, rec.Root, rec.Dur, len(rec.Spans))
	byID := make(map[uint64]int, len(rec.Spans))
	children := make(map[uint64][]int, len(rec.Spans))
	for i, s := range rec.Spans {
		byID[s.ID] = i
	}
	var roots []int
	for i, s := range rec.Spans {
		if _, ok := byID[s.Parent]; s.Parent != 0 && ok {
			children[s.Parent] = append(children[s.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	order := func(idx []int) {
		sort.Slice(idx, func(a, b int) bool {
			sa, sb := rec.Spans[idx[a]], rec.Spans[idx[b]]
			if sa.Start != sb.Start {
				return sa.Start < sb.Start
			}
			return sa.ID < sb.ID
		})
	}
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := rec.Spans[i]
		for j := 0; j < depth; j++ {
			io.WriteString(w, "  ")
		}
		fmt.Fprintf(w, "- %s", s.Name)
		if s.Site != "" {
			fmt.Fprintf(w, " @%s", s.Site)
		}
		fmt.Fprintf(w, " %v", time.Duration(s.Dur))
		for _, a := range s.Attrs {
			fmt.Fprintf(w, " %s=%d", a.Key, a.Val)
		}
		io.WriteString(w, "\n")
		kids := children[s.ID]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	order(roots)
	for _, r := range roots {
		walk(r, 1)
	}
}

package obs

import (
	"context"
	"sync"
	"time"
)

// Collector accumulates the spans of one trace. It is safe for
// concurrent use (hedged requests record duplicates from both arms;
// scatter workers record in parallel) and bounded so a runaway trace
// cannot grow without limit.
type Collector struct {
	mu    sync.Mutex
	spans []Span
	limit int
	drop  uint64
}

// defaultCollectorLimit bounds spans retained per trace.
const defaultCollectorLimit = 8192

// NewCollector returns a Collector retaining at most the default
// per-trace span limit.
func NewCollector() *Collector { return &Collector{limit: defaultCollectorLimit} }

// Add records spans into the collector, dropping past the limit.
func (c *Collector) Add(spans ...Span) {
	if c == nil || len(spans) == 0 {
		return
	}
	c.mu.Lock()
	room := c.limit - len(c.spans)
	if room > len(spans) {
		room = len(spans)
	}
	if room > 0 {
		c.spans = append(c.spans, spans[:room]...)
	}
	c.drop += uint64(len(spans) - room)
	c.mu.Unlock()
}

// Spans returns a copy of the collected spans.
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// Dropped reports how many spans were discarded over the limit.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drop
}

// TraceContext is the per-request tracing state carried through
// context.Context: the trace ID, the current parent span, and the
// collector receiving finished spans.
type TraceContext struct {
	TraceID   uint64
	SpanID    uint64 // current parent span; children attach here
	Collector *Collector
}

type traceCtxKey struct{}

// WithTrace returns ctx carrying tc. A zero TraceID or nil Collector
// disables tracing (FromContext will report !ok).
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// FromContext extracts the active trace, if any. The single map-free
// context lookup is the entire cost of observability when tracing is
// off.
func FromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	if !ok || tc.TraceID == 0 || tc.Collector == nil {
		return TraceContext{}, false
	}
	return tc, true
}

// ActiveSpan is an in-progress span started by StartSpan. A nil
// ActiveSpan (tracing off) is valid: every method is a no-op.
type ActiveSpan struct {
	tc    TraceContext
	span  Span
	start time.Time
}

// StartSpan begins a named span as a child of ctx's current span and
// returns a context whose current span is the new one (so nested
// StartSpan calls build the tree). When ctx carries no trace it
// returns (ctx, nil) at the cost of one context lookup.
func StartSpan(ctx context.Context, site, name string) (context.Context, *ActiveSpan) {
	tc, ok := FromContext(ctx)
	if !ok {
		return ctx, nil
	}
	sp := &ActiveSpan{
		tc: tc,
		span: Span{
			TraceID: tc.TraceID,
			ID:      NewSpanID(),
			Parent:  tc.SpanID,
			Site:    site,
			Name:    name,
		},
		start: time.Now(),
	}
	sp.span.Start = sp.start.UnixNano()
	child := tc
	child.SpanID = sp.span.ID
	return WithTrace(ctx, child), sp
}

// SetAttr attaches an integer attribute to the span.
func (a *ActiveSpan) SetAttr(key string, val int64) {
	if a == nil {
		return
	}
	a.span.Attrs = append(a.span.Attrs, Attr{Key: key, Val: val})
}

// End finishes the span and delivers it to the trace's collector.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.span.Dur = time.Since(a.start).Nanoseconds()
	a.tc.Collector.Add(a.span)
}

package obs

import (
	"encoding/binary"
	"sync/atomic"
)

// SiteStats is the always-on per-site counter block: the paper's four
// evaluation quantities (visits, messages, bytes, computation steps)
// plus cache, shedding, and deadline counters, and a latency
// histogram of served requests. Every field is atomic so the hot path
// (Site.dispatch) updates it without locks; daemons expose it over
// /metrics and the obs.stats RPC that powers `parbox top`.
type SiteStats struct {
	Visits          atomic.Uint64
	MessagesIn      atomic.Uint64
	MessagesOut     atomic.Uint64
	BytesIn         atomic.Uint64
	BytesOut        atomic.Uint64
	Steps           atomic.Uint64
	CacheHits       atomic.Uint64
	CacheMisses     atomic.Uint64
	Sheds           atomic.Uint64
	DeadlineExpired atomic.Uint64
	Errors          atomic.Uint64
	// Update-path maintenance health (views.applyUpdate / standing
	// subscriptions): how triplets were brought current after edits, and
	// how many root-flip deltas went out to subscribers.
	SpineRecomputes atomic.Uint64
	FullRecomputes  atomic.Uint64
	NoopUpdates     atomic.Uint64
	DeltasPushed    atomic.Uint64
	Latency         Histogram
}

// SiteStatsSnapshot is the plain, wire-encodable copy of SiteStats.
type SiteStatsSnapshot struct {
	Site            string
	Visits          uint64
	MessagesIn      uint64
	MessagesOut     uint64
	BytesIn         uint64
	BytesOut        uint64
	Steps           uint64
	CacheHits       uint64
	CacheMisses     uint64
	Sheds           uint64
	DeadlineExpired uint64
	Errors          uint64
	SpineRecomputes uint64
	FullRecomputes  uint64
	NoopUpdates     uint64
	DeltasPushed    uint64
	Latency         HistSnapshot
}

// Snapshot copies the counters. Not atomic across fields; fine for
// monitoring.
func (s *SiteStats) Snapshot() SiteStatsSnapshot {
	return SiteStatsSnapshot{
		Visits:          s.Visits.Load(),
		MessagesIn:      s.MessagesIn.Load(),
		MessagesOut:     s.MessagesOut.Load(),
		BytesIn:         s.BytesIn.Load(),
		BytesOut:        s.BytesOut.Load(),
		Steps:           s.Steps.Load(),
		CacheHits:       s.CacheHits.Load(),
		CacheMisses:     s.CacheMisses.Load(),
		Sheds:           s.Sheds.Load(),
		DeadlineExpired: s.DeadlineExpired.Load(),
		Errors:          s.Errors.Load(),
		SpineRecomputes: s.SpineRecomputes.Load(),
		FullRecomputes:  s.FullRecomputes.Load(),
		NoopUpdates:     s.NoopUpdates.Load(),
		DeltasPushed:    s.DeltasPushed.Load(),
		Latency:         s.Latency.Snapshot(),
	}
}

// Encode appends a uvarint framing of the snapshot to dst. Histogram
// buckets are encoded sparsely (index,count pairs) since most of the
// 64 log buckets are empty.
func (s SiteStatsSnapshot) Encode(dst []byte) []byte {
	dst = appendString(dst, s.Site)
	for _, v := range [...]uint64{
		s.Visits, s.MessagesIn, s.MessagesOut, s.BytesIn, s.BytesOut,
		s.Steps, s.CacheHits, s.CacheMisses, s.Sheds, s.DeadlineExpired,
		s.Errors, s.SpineRecomputes, s.FullRecomputes, s.NoopUpdates,
		s.DeltasPushed,
	} {
		dst = binary.AppendUvarint(dst, v)
	}
	dst = binary.AppendUvarint(dst, uint64(s.Latency.Sum))
	dst = binary.AppendUvarint(dst, s.Latency.Count)
	nonzero := 0
	for _, c := range s.Latency.Counts {
		if c != 0 {
			nonzero++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(nonzero))
	for i, c := range s.Latency.Counts {
		if c != 0 {
			dst = binary.AppendUvarint(dst, uint64(i))
			dst = binary.AppendUvarint(dst, c)
		}
	}
	return dst
}

// DecodeSiteStats decodes an Encode buffer.
func DecodeSiteStats(buf []byte) (SiteStatsSnapshot, error) {
	var s SiteStatsSnapshot
	var err error
	off := 0
	if s.Site, off, err = readString(buf, off); err != nil {
		return s, err
	}
	for _, p := range [...]*uint64{
		&s.Visits, &s.MessagesIn, &s.MessagesOut, &s.BytesIn, &s.BytesOut,
		&s.Steps, &s.CacheHits, &s.CacheMisses, &s.Sheds, &s.DeadlineExpired,
		&s.Errors, &s.SpineRecomputes, &s.FullRecomputes, &s.NoopUpdates,
		&s.DeltasPushed,
	} {
		if *p, off, err = readUvarint(buf, off); err != nil {
			return s, err
		}
	}
	var u uint64
	if u, off, err = readUvarint(buf, off); err != nil {
		return s, err
	}
	s.Latency.Sum = int64(u)
	if s.Latency.Count, off, err = readUvarint(buf, off); err != nil {
		return s, err
	}
	var nonzero uint64
	if nonzero, off, err = readUvarint(buf, off); err != nil {
		return s, err
	}
	if nonzero > HistBuckets {
		return s, errSpanDecode
	}
	for i := uint64(0); i < nonzero; i++ {
		var idx, c uint64
		if idx, off, err = readUvarint(buf, off); err != nil {
			return s, err
		}
		if idx >= HistBuckets {
			return s, errSpanDecode
		}
		if c, off, err = readUvarint(buf, off); err != nil {
			return s, err
		}
		s.Latency.Counts[idx] = c
	}
	return s, nil
}

// Package obs is the observability layer: per-query distributed trace
// spans propagated over wire v2, log-bucketed latency histograms, and
// the live introspection plane (/metrics, /tracez, parbox top).
//
// The package is dependency-free (stdlib only) and deliberately does
// not import any other internal package — sites are identified by
// plain strings so cluster, core, serve, and the cmd binaries can all
// depend on it without cycles.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the number of log2 buckets in a Histogram. Bucket i
// holds values in [2^i, 2^(i+1)), so 64 buckets cover every positive
// int64 — nanosecond latencies from 1ns to ~292 years with at most 2×
// relative error, no configuration, no allocation.
const HistBuckets = 64

// Histogram is a lock-free log2-bucketed histogram of non-negative
// int64 samples (typically nanoseconds or bytes). Observe is safe for
// concurrent use; quantiles are extracted from a Snapshot.
type Histogram struct {
	counts [HistBuckets]atomic.Uint64
	sum    atomic.Int64
	count  atomic.Uint64
}

// bucketOf returns the bucket index for v: floor(log2(v)), with all
// values < 1 clamped into bucket 0.
func bucketOf(v int64) int {
	if v < 2 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// bucketHigh returns the exclusive upper bound of bucket i.
func bucketHigh(i int) int64 {
	if i >= 62 {
		return 1<<62 + (1<<62 - 1) // avoid overflow; top buckets saturate
	}
	return 1 << (i + 1)
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot returns a point-in-time copy suitable for quantile
// extraction and wire encoding. The copy is not atomic across buckets
// (samples may land between loads) — fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// Quantile is shorthand for h.Snapshot().Quantile(q).
func (h *Histogram) Quantile(q float64) int64 { return h.Snapshot().Quantile(q) }

// HistSnapshot is a plain (non-atomic) histogram value. It doubles as
// a mutex-guarded accumulator for callers that already hold a lock
// (cluster.Metrics, serve's health tracker) — call Observe under that
// lock — and as the copyable snapshot form of Histogram.
type HistSnapshot struct {
	Counts [HistBuckets]uint64
	Sum    int64
	Count  uint64
}

// Observe records one sample into the snapshot. NOT safe for
// concurrent use — the caller must serialize (or use Histogram).
func (s *HistSnapshot) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	s.Counts[bucketOf(v)]++
	s.Sum += v
	s.Count++
}

// Merge adds other's samples into s.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Sum += other.Sum
	s.Count += other.Count
}

// Mean returns the mean sample, or 0 with no samples.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1),
// linearly interpolated inside the containing log bucket, so the
// estimate is within the bucket's 2× bounds of the true value. Returns
// 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) >= target {
			low := int64(0)
			if i > 0 {
				low = 1 << i
			}
			high := bucketHigh(i)
			frac := (target - float64(prev)) / float64(c)
			return low + int64(frac*float64(high-low))
		}
	}
	return bucketHigh(HistBuckets - 1)
}

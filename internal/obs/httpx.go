package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"
)

// MuxConfig wires the introspection endpoints to their data sources.
// Nil sources disable the corresponding endpoint's body (the route
// still responds, reporting the feature as unavailable).
type MuxConfig struct {
	// Metrics fills the Prometheus exposition for /metrics.
	Metrics func(*Prom)
	// Healthz reports liveness for /healthz: ok plus a short detail
	// body (e.g. per-site health states).
	Healthz func() (ok bool, detail string)
	// Tracez returns the retained traces for /tracez.
	Tracez func() []TraceRecord
}

// NewMux builds the introspection HTTP handler: /metrics (Prometheus
// text), /healthz, /tracez (?min=duration filters to slow traces),
// and /debug/pprof/*. Stdlib only.
func NewMux(cfg MuxConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var p Prom
		if cfg.Metrics != nil {
			cfg.Metrics(&p)
		}
		fmt.Fprint(w, p.String())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		ok, detail := true, "ok\n"
		if cfg.Healthz != nil {
			ok, detail = cfg.Healthz()
		}
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprint(w, detail)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var min time.Duration
		if v := r.URL.Query().Get("min"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad min duration: "+err.Error(), http.StatusBadRequest)
				return
			}
			min = d
		}
		if cfg.Tracez == nil {
			fmt.Fprintln(w, "tracing not enabled")
			return
		}
		recs := cfg.Tracez()
		shown := 0
		// Newest first: the most recent slow queries are what an
		// operator is hunting.
		for i := len(recs) - 1; i >= 0; i-- {
			if recs[i].Dur < min {
				continue
			}
			RenderTrace(w, recs[i])
			shown++
		}
		fmt.Fprintf(w, "%d/%d traces shown (min=%v)\n", shown, len(recs), min)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

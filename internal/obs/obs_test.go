package obs

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000) // 1µs .. 1ms in ns
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	s := h.Snapshot()
	// Log buckets guarantee at most 2x relative error.
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 500_000}, {0.95, 950_000}, {0.99, 990_000}} {
		got := s.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Errorf("q%v = %d, want within 2x of %d", tc.q, got, tc.want)
		}
	}
	if s.Quantile(1) < s.Quantile(0.5) {
		t.Errorf("quantiles not monotone")
	}
	var empty HistSnapshot
	if empty.Quantile(0.95) != 0 {
		t.Errorf("empty quantile should be 0")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Sum() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample not clamped: sum=%d count=%d", h.Sum(), h.Count())
	}
}

func TestSpanCodecRoundTrip(t *testing.T) {
	spans := []Span{
		{TraceID: 7, ID: 1, Parent: 0, Site: "s0", Name: "root", Start: 123456789, Dur: 42},
		{TraceID: 7, ID: 2, Parent: 1, Site: "s1", Name: "call core.evalQual", Start: 123456800, Dur: 17,
			Attrs: []Attr{{Key: "steps", Val: 99}, {Key: "lane", Val: -3}}},
	}
	buf := EncodeSpans(nil, spans)
	got, n, err := DecodeSpans(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(got, spans) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, spans)
	}
	// Empty set encodes to a single zero-count byte.
	if empty := EncodeSpans(nil, nil); len(empty) != 1 {
		t.Fatalf("empty spans encode to %d bytes, want 1", len(empty))
	}
}

func TestSpanDecodeRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeSpans([]byte{}); err == nil {
		t.Error("empty buffer should fail")
	}
	// Count says 1, no body.
	if _, _, err := DecodeSpans([]byte{1}); err == nil {
		t.Error("truncated span should fail")
	}
	// Absurd count is rejected before allocating.
	big := EncodeSpans(nil, nil)
	big[0] = 0xff
	if _, _, err := DecodeSpans(append([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}, 0)); err == nil {
		t.Error("oversized count should fail")
	}
	_ = big
}

func TestCollectorBounded(t *testing.T) {
	c := &Collector{limit: 4}
	for i := 0; i < 10; i++ {
		c.Add(Span{ID: uint64(i + 1)})
	}
	if got := len(c.Spans()); got != 4 {
		t.Fatalf("retained %d spans, want 4", got)
	}
	if c.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", c.Dropped())
	}
}

func TestStartSpanNesting(t *testing.T) {
	col := NewCollector()
	ctx := WithTrace(context.Background(), TraceContext{TraceID: 9, SpanID: 100, Collector: col})
	ctx2, parent := StartSpan(ctx, "s0", "outer")
	_, child := StartSpan(ctx2, "s0", "inner")
	child.SetAttr("k", 5)
	child.End()
	parent.End()
	spans := col.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	inner, outer := spans[0], spans[1]
	if inner.Parent != outer.ID {
		t.Errorf("inner.Parent = %d, want %d", inner.Parent, outer.ID)
	}
	if outer.Parent != 100 {
		t.Errorf("outer.Parent = %d, want 100", outer.Parent)
	}
	if v, ok := inner.Attr("k"); !ok || v != 5 {
		t.Errorf("attr k = %d,%v", v, ok)
	}
	// No trace in context: all no-ops.
	ctx3, sp := StartSpan(context.Background(), "s0", "off")
	if sp != nil || ctx3 != context.Background() {
		t.Error("untraced StartSpan should return nil span and same ctx")
	}
	sp.SetAttr("x", 1)
	sp.End()
}

func TestTraceRingEviction(t *testing.T) {
	r := NewTraceRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(TraceRecord{TraceID: uint64(i)})
	}
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("retained %d, want 3", len(recs))
	}
	for i, want := range []uint64{3, 4, 5} {
		if recs[i].TraceID != want {
			t.Errorf("recs[%d] = %d, want %d", i, recs[i].TraceID, want)
		}
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
}

func TestSiteStatsCodec(t *testing.T) {
	var st SiteStats
	st.Visits.Store(3)
	st.BytesIn.Store(1024)
	st.CacheHits.Store(7)
	st.Latency.Observe(5000)
	st.Latency.Observe(9000)
	snap := st.Snapshot()
	snap.Site = "alpha"
	buf := snap.Encode(nil)
	got, err := DecodeSiteStats(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, snap)
	}
}

func TestPromExposition(t *testing.T) {
	var p Prom
	p.Counter("parbox_test_total", "help text", 3, "site", "s0")
	p.Counter("parbox_test_total", "help text", 4, "site", "s1")
	var h HistSnapshot
	h.Observe(1500)
	h.Observe(3000)
	p.Histogram("parbox_lat_seconds", "latency", h, 1e9)
	out := p.String()
	if strings.Count(out, "# HELP parbox_test_total") != 1 {
		t.Errorf("family header should appear once:\n%s", out)
	}
	for _, want := range []string{
		`parbox_test_total{site="s0"} 3`,
		`parbox_test_total{site="s1"} 4`,
		`parbox_lat_seconds_bucket{le="+Inf"} 2`,
		"parbox_lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMuxEndpoints(t *testing.T) {
	ring := NewTraceRing(8)
	ring.Add(TraceRecord{TraceID: 1, Root: "q1", Dur: 5 * time.Millisecond,
		Spans: []Span{{TraceID: 1, ID: 1, Name: "root", Dur: int64(5 * time.Millisecond)}}})
	ring.Add(TraceRecord{TraceID: 2, Root: "q2", Dur: 50 * time.Millisecond})
	mux := NewMux(MuxConfig{
		Metrics: func(p *Prom) { p.Counter("parbox_up", "up", 1) },
		Healthz: func() (bool, string) { return true, "all up\n" },
		Tracez:  ring.Records,
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}
	if out := get("/metrics"); !strings.Contains(out, "parbox_up 1") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/healthz"); !strings.Contains(out, "all up") {
		t.Errorf("/healthz = %q", out)
	}
	if out := get("/tracez"); !strings.Contains(out, "q1") || !strings.Contains(out, "q2") {
		t.Errorf("/tracez missing traces:\n%s", out)
	}
	if out := get("/tracez?min=10ms"); strings.Contains(out, "q1") || !strings.Contains(out, "q2") {
		t.Errorf("/tracez?min=10ms filter wrong:\n%s", out)
	}
}

func TestRenderTraceTree(t *testing.T) {
	rec := TraceRecord{TraceID: 5, Root: "query", Dur: time.Millisecond, Spans: []Span{
		{TraceID: 5, ID: 1, Name: "exec", Start: 10, Dur: 1000},
		{TraceID: 5, ID: 2, Parent: 1, Site: "s1", Name: "rpc", Start: 20, Dur: 400},
		{TraceID: 5, ID: 3, Parent: 2, Site: "s1", Name: "handle", Start: 25, Dur: 300},
		{TraceID: 5, ID: 9, Parent: 77, Name: "orphan", Start: 30, Dur: 10},
	}}
	var b strings.Builder
	RenderTrace(&b, rec)
	out := b.String()
	if !strings.Contains(out, "  - exec") ||
		!strings.Contains(out, "    - rpc @s1") ||
		!strings.Contains(out, "      - handle @s1") ||
		!strings.Contains(out, "  - orphan") {
		t.Errorf("tree rendering wrong:\n%s", out)
	}
}

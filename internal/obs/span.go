package obs

import (
	"encoding/binary"
	"errors"
	"math/rand/v2"
)

// Attr is one integer-valued span attribute (lane index, step count,
// cache hits…). Keeping values integral keeps the wire codec compact
// and allocation-light.
type Attr struct {
	Key string
	Val int64
}

// Span is one timed operation inside a query's trace. Spans form a
// tree through Parent; the tree — parent/child structure plus
// durations — is the contract. Start is the recording machine's
// UnixNano, so absolute offsets between spans recorded on different
// machines are subject to clock skew (durations are not).
type Span struct {
	TraceID uint64
	ID      uint64
	Parent  uint64 // 0 = root of its trace
	Site    string
	Name    string
	Start   int64 // UnixNano on the recording machine
	Dur     int64 // nanoseconds
	Attrs   []Attr
}

// Attr returns the value of the named attribute and whether it is set.
func (s Span) Attr(key string) (int64, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// NewTraceID returns a random non-zero trace ID. Zero means "tracing
// off" on the wire, so it is never issued.
func NewTraceID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// NewSpanID returns a random non-zero span ID.
func NewSpanID() uint64 { return NewTraceID() }

// Decode limits: a response frame may piggyback at most maxWireSpans
// spans, and strings/attribute lists are individually bounded, so a
// hostile frame cannot balloon the decoder.
const (
	maxWireSpans    = 4096
	maxWireSpanStr  = 256
	maxWireSpanAttr = 64
)

// EncodeSpans appends a compact uvarint framing of spans to dst:
//
//	uvarint count
//	per span: uvarint traceID, id, parent,
//	          uvarint len+site, uvarint len+name,
//	          uvarint start, uvarint dur,
//	          uvarint nattrs, per attr: uvarint len+key, varint val
func EncodeSpans(dst []byte, spans []Span) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(spans)))
	for _, s := range spans {
		dst = binary.AppendUvarint(dst, s.TraceID)
		dst = binary.AppendUvarint(dst, s.ID)
		dst = binary.AppendUvarint(dst, s.Parent)
		dst = appendString(dst, s.Site)
		dst = appendString(dst, s.Name)
		dst = binary.AppendUvarint(dst, uint64(s.Start))
		dst = binary.AppendUvarint(dst, uint64(s.Dur))
		dst = binary.AppendUvarint(dst, uint64(len(s.Attrs)))
		for _, a := range s.Attrs {
			dst = appendString(dst, a.Key)
			dst = binary.AppendVarint(dst, a.Val)
		}
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

var errSpanDecode = errors.New("obs: malformed span encoding")

// DecodeSpans decodes an EncodeSpans buffer. It returns the spans and
// the number of bytes consumed.
func DecodeSpans(buf []byte) ([]Span, int, error) {
	off := 0
	n, k := binary.Uvarint(buf[off:])
	if k <= 0 || n > maxWireSpans {
		return nil, 0, errSpanDecode
	}
	off += k
	if n == 0 {
		return nil, off, nil
	}
	spans := make([]Span, 0, n)
	for i := uint64(0); i < n; i++ {
		var s Span
		var err error
		if s.TraceID, off, err = readUvarint(buf, off); err != nil {
			return nil, 0, err
		}
		if s.ID, off, err = readUvarint(buf, off); err != nil {
			return nil, 0, err
		}
		if s.Parent, off, err = readUvarint(buf, off); err != nil {
			return nil, 0, err
		}
		if s.Site, off, err = readString(buf, off); err != nil {
			return nil, 0, err
		}
		if s.Name, off, err = readString(buf, off); err != nil {
			return nil, 0, err
		}
		var u uint64
		if u, off, err = readUvarint(buf, off); err != nil {
			return nil, 0, err
		}
		s.Start = int64(u)
		if u, off, err = readUvarint(buf, off); err != nil {
			return nil, 0, err
		}
		s.Dur = int64(u)
		var na uint64
		if na, off, err = readUvarint(buf, off); err != nil {
			return nil, 0, err
		}
		if na > maxWireSpanAttr {
			return nil, 0, errSpanDecode
		}
		if na > 0 {
			s.Attrs = make([]Attr, 0, na)
			for j := uint64(0); j < na; j++ {
				var a Attr
				if a.Key, off, err = readString(buf, off); err != nil {
					return nil, 0, err
				}
				v, k := binary.Varint(buf[off:])
				if k <= 0 {
					return nil, 0, errSpanDecode
				}
				a.Val = v
				off += k
				s.Attrs = append(s.Attrs, a)
			}
		}
		spans = append(spans, s)
	}
	return spans, off, nil
}

func readUvarint(buf []byte, off int) (uint64, int, error) {
	v, k := binary.Uvarint(buf[off:])
	if k <= 0 {
		return 0, 0, errSpanDecode
	}
	return v, off + k, nil
}

func readString(buf []byte, off int) (string, int, error) {
	n, off, err := readUvarint(buf, off)
	if err != nil {
		return "", 0, err
	}
	if n > maxWireSpanStr || off+int(n) > len(buf) {
		return "", 0, errSpanDecode
	}
	return string(buf[off : off+int(n)]), off + int(n), nil
}

package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Prom builds Prometheus text exposition format (version 0.0.4) by
// hand — the introspection plane is stdlib-only by design. Metric
// families must be emitted contiguously: call Counter/Gauge with the
// same name back to back for multiple label sets; the writer emits
// the # HELP/# TYPE header once per family.
type Prom struct {
	b    strings.Builder
	last string
}

func (p *Prom) header(name, typ, help string) {
	if p.last != name {
		fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		p.last = name
	}
}

// labelBlock renders {k="v",...} from alternating key/value pairs.
func labelBlock(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter emits one counter sample. labels are alternating key/value
// pairs.
func (p *Prom) Counter(name, help string, v float64, labels ...string) {
	p.header(name, "counter", help)
	fmt.Fprintf(&p.b, "%s%s %g\n", name, labelBlock(labels), v)
}

// Gauge emits one gauge sample.
func (p *Prom) Gauge(name, help string, v float64, labels ...string) {
	p.header(name, "gauge", help)
	fmt.Fprintf(&p.b, "%s%s %g\n", name, labelBlock(labels), v)
}

// Histogram emits a full Prometheus histogram family from a snapshot:
// cumulative _bucket{le=...} series for every non-empty log bucket,
// plus _sum and _count. scale divides raw sample units into the
// exposed unit (1e9 turns nanoseconds into seconds).
func (p *Prom) Histogram(name, help string, s HistSnapshot, scale float64, labels ...string) {
	p.header(name, "histogram", help)
	if scale <= 0 {
		scale = 1
	}
	lb := labelBlock(labels)
	sep := "{"
	if lb != "" {
		sep = lb[:len(lb)-1] + ","
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(&p.b, "%s_bucket%sle=\"%g\"} %d\n", name, sep, float64(bucketHigh(i))/scale, cum)
	}
	fmt.Fprintf(&p.b, "%s_bucket%sle=\"+Inf\"} %d\n", name, sep, s.Count)
	fmt.Fprintf(&p.b, "%s_sum%s %g\n", name, lb, float64(s.Sum)/scale)
	fmt.Fprintf(&p.b, "%s_count%s %d\n", name, lb, s.Count)
}

// String returns the exposition text built so far.
func (p *Prom) String() string { return p.b.String() }

// SiteStatsProm emits the standard per-site metric families under the
// parbox_site_* namespace, family-major so a multi-site exposition
// stays contiguous (the text format requires each family to appear
// exactly once). Both the daemon /metrics endpoint (one site) and the
// coordinator (every site, labeled) use it so the schema stays in one
// place.
func (p *Prom) SiteStatsProm(sites ...SiteStatsSnapshot) {
	each := func(name, help string, get func(SiteStatsSnapshot) uint64) {
		for _, s := range sites {
			p.Counter(name, help, float64(get(s)), "site", s.Site)
		}
	}
	each("parbox_site_visits_total", "Site visits (requests dispatched to this site).",
		func(s SiteStatsSnapshot) uint64 { return s.Visits })
	each("parbox_site_messages_in_total", "Messages received by this site.",
		func(s SiteStatsSnapshot) uint64 { return s.MessagesIn })
	each("parbox_site_messages_out_total", "Messages sent by this site.",
		func(s SiteStatsSnapshot) uint64 { return s.MessagesOut })
	each("parbox_site_bytes_in_total", "Request payload bytes received.",
		func(s SiteStatsSnapshot) uint64 { return s.BytesIn })
	each("parbox_site_bytes_out_total", "Response payload bytes sent.",
		func(s SiteStatsSnapshot) uint64 { return s.BytesOut })
	each("parbox_site_steps_total", "Computation steps executed.",
		func(s SiteStatsSnapshot) uint64 { return s.Steps })
	each("parbox_site_cache_hits_total", "Triplet-cache hits.",
		func(s SiteStatsSnapshot) uint64 { return s.CacheHits })
	each("parbox_site_cache_misses_total", "Triplet-cache misses.",
		func(s SiteStatsSnapshot) uint64 { return s.CacheMisses })
	each("parbox_site_sheds_total", "Requests shed by admission control.",
		func(s SiteStatsSnapshot) uint64 { return s.Sheds })
	each("parbox_site_deadline_expired_total", "Requests aborted on an expired deadline.",
		func(s SiteStatsSnapshot) uint64 { return s.DeadlineExpired })
	each("parbox_site_errors_total", "Requests that returned an error.",
		func(s SiteStatsSnapshot) uint64 { return s.Errors })
	each("parbox_site_spine_recomputes_total", "Updates maintained by spine recomputation (touched-to-root only).",
		func(s SiteStatsSnapshot) uint64 { return s.SpineRecomputes })
	each("parbox_site_full_recomputes_total", "Updates maintained by full fragment recomputation (spine fallback).",
		func(s SiteStatsSnapshot) uint64 { return s.FullRecomputes })
	each("parbox_site_noop_updates_total", "Updates whose recomputation reproduced identical root formulas.",
		func(s SiteStatsSnapshot) uint64 { return s.NoopUpdates })
	each("parbox_site_deltas_pushed_total", "Triplet deltas pushed to standing subscribers.",
		func(s SiteStatsSnapshot) uint64 { return s.DeltasPushed })
	for _, s := range sites {
		p.Histogram("parbox_site_request_seconds", "Service latency of dispatched requests.", s.Latency, 1e9, "site", s.Site)
	}
}

// SortedKeys returns map keys in sorted order — a small helper for
// deterministic exposition and tables.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

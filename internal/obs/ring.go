package obs

import (
	"sync"
	"time"
)

// TraceRecord is one completed trace retained for /tracez: the trace
// ID, what ran (a query string or request kind), how long it took, and
// the full span set when available.
type TraceRecord struct {
	TraceID uint64
	Root    string
	Dur     time.Duration
	At      time.Time
	Spans   []Span
}

// TraceRing is a bounded, concurrency-safe ring of completed traces.
// Adding past capacity overwrites the oldest record, so a long-lived
// daemon retains the most recent N traces at constant memory.
type TraceRing struct {
	mu    sync.Mutex
	recs  []TraceRecord
	start int
	n     int
	total uint64
}

// DefaultTraceRingSize is the per-site /tracez retention.
const DefaultTraceRingSize = 256

// NewTraceRing returns a ring retaining the last capacity records
// (DefaultTraceRingSize when capacity <= 0).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceRingSize
	}
	return &TraceRing{recs: make([]TraceRecord, capacity)}
}

// Add records one completed trace, evicting the oldest at capacity.
func (r *TraceRing) Add(rec TraceRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.n < len(r.recs) {
		r.recs[(r.start+r.n)%len(r.recs)] = rec
		r.n++
	} else {
		r.recs[r.start] = rec
		r.start = (r.start + 1) % len(r.recs)
	}
	r.total++
	r.mu.Unlock()
}

// Records returns the retained traces, oldest first.
func (r *TraceRing) Records() []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.recs[(r.start+i)%len(r.recs)])
	}
	return out
}

// Total reports how many traces have ever been added (including
// evicted ones).
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/frag"
	"repro/internal/xmltree"
)

func testFragment(id, parent xmltree.FragmentID, label string) *frag.Fragment {
	root := xmltree.NewElement(label, "t",
		xmltree.NewElement("a", "x"),
		xmltree.NewElement("b", "", xmltree.NewVirtual(id+100)),
	)
	return &frag.Fragment{ID: id, Parent: parent, Root: root}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, f *frag.Fragment, v uint64) {
	t.Helper()
	if err := s.PutFragment(f, v); err != nil {
		t.Fatalf("PutFragment(%d): %v", f.ID, err)
	}
}

func checkFragment(t *testing.T, s *Store, want *frag.Fragment, wantV uint64) {
	t.Helper()
	got, v, ok, err := s.LoadFragment(want.ID)
	if err != nil || !ok {
		t.Fatalf("LoadFragment(%d) = ok=%v err=%v", want.ID, ok, err)
	}
	if v != wantV {
		t.Errorf("fragment %d version = %d, want %d", want.ID, v, wantV)
	}
	if got.Parent != want.Parent {
		t.Errorf("fragment %d parent = %d, want %d", want.ID, got.Parent, want.Parent)
	}
	if !got.Root.Equal(want.Root) {
		t.Errorf("fragment %d tree = %s, want %s", want.ID, got.Root, want.Root)
	}
}

func TestPutLoadAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	f0 := testFragment(0, frag.NoParent, "root")
	f1 := testFragment(1, 0, "sub")
	mustPut(t, s, f0, 1)
	mustPut(t, s, f1, 1)
	// Overwrite f1 with mutated content at a later version.
	f1.Root.AppendChild(xmltree.NewElement("c", "new"))
	mustPut(t, s, f1, 7)
	checkFragment(t, s, f0, 1)
	checkFragment(t, s, f1, 7)

	// Crash (no Close) and recover from the WAL alone.
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	checkFragment(t, s2, f0, 1)
	checkFragment(t, s2, f1, 7)
	if got := s2.FragmentIDs(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("FragmentIDs = %v, want [0 1]", got)
	}
}

func TestDeleteKeepsVersionCounter(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	f := testFragment(3, 0, "gone")
	mustPut(t, s, f, 4)
	if err := s.DeleteFragment(3, 5); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := s.LoadFragment(3); ok {
		t.Fatal("deleted fragment still loads")
	}

	for _, reopen := range []bool{false, true} {
		st := s
		if reopen {
			st = mustOpen(t, dir, Options{})
			defer st.Close()
		}
		if v := st.Versions()[3]; v != 5 {
			t.Errorf("reopen=%v: dead version = %d, want 5", reopen, v)
		}
	}

	// Checkpoint persists the dead counter via the snapshot too.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, dir, Options{})
	defer s3.Close()
	if v := s3.Versions()[3]; v != 5 {
		t.Errorf("post-checkpoint dead version = %d, want 5", v)
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	frs := make([]*frag.Fragment, 5)
	for i := range frs {
		frs[i] = testFragment(xmltree.FragmentID(i), frag.NoParent, "f")
		mustPut(t, s, frs[i], uint64(i)+1)
	}
	if err := s.PutTriplet(0, 1, 99, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WALBytes != 0 || st.Segments != 1 || st.SnapshotSeq == 0 {
		t.Fatalf("post-checkpoint stats = %+v", st)
	}
	// Only the fresh segment and the snapshot remain on disk.
	var wals, snaps int
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".wal"):
			wals++
		case strings.HasSuffix(e.Name(), ".snap"):
			snaps++
		}
	}
	if wals != 1 || snaps != 1 {
		t.Fatalf("on disk: %d wals, %d snaps; want 1 and 1", wals, snaps)
	}
	// Everything still loads, before and after a reopen.
	for i, fr := range frs {
		checkFragment(t, s, fr, uint64(i)+1)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	for i, fr := range frs {
		checkFragment(t, s2, fr, uint64(i)+1)
	}
	trips, err := s2.Triplets()
	if err != nil || len(trips) != 1 {
		t.Fatalf("Triplets = %v, %v; want 1 entry", trips, err)
	}
	if trips[0].Frag != 0 || trips[0].FP != 99 || string(trips[0].Enc) != "\x01\x02\x03" {
		t.Errorf("recovered triplet = %+v", trips[0])
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	f0 := testFragment(0, frag.NoParent, "kept")
	mustPut(t, s, f0, 1)
	// Crash mid-append: garbage (a torn record) at the WAL tail.
	walPath := filepath.Join(dir, segName(1))
	s.closeFiles()
	wf, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write([]byte{0x42, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	wf.Close()

	s2 := mustOpen(t, dir, Options{})
	checkFragment(t, s2, f0, 1)
	// Appends continue cleanly past the truncation point.
	f1 := testFragment(1, 0, "after")
	mustPut(t, s2, f1, 1)
	s3 := mustOpen(t, dir, Options{})
	defer s3.Close()
	checkFragment(t, s3, f0, 1)
	checkFragment(t, s3, f1, 1)
}

func TestMidLogCorruptionInFinalSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		mustPut(t, s, testFragment(xmltree.FragmentID(i), frag.NoParent, "f"), 1)
	}
	s.closeFiles()
	// Flip a byte inside the SECOND record's body: later records are
	// intact, so this is damage in the middle of the log — acknowledged
	// fragments 2-4 must not be silently dropped as a "torn tail".
	path := filepath.Join(dir, segName(1))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := int64(buf[magicLen]) | int64(buf[magicLen+1])<<8 |
		int64(buf[magicLen+2])<<16 | int64(buf[magicLen+3])<<24
	second := int64(magicLen) + recordHeaderLen + firstLen
	buf[second+recordHeaderLen+3] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open silently truncated mid-log corruption with valid records after it")
	}
}

func TestCorruptEarlierSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 256, CheckpointBytes: -1})
	for i := 0; i < 8; i++ {
		mustPut(t, s, testFragment(xmltree.FragmentID(i), frag.NoParent, "f"), 1)
	}
	if s.Stats().Segments < 2 {
		t.Fatalf("want multiple segments, got %d", s.Stats().Segments)
	}
	s.closeFiles()
	// Flip a byte inside the FIRST segment's first record body: that is
	// not a crash tail, it is real corruption.
	path := filepath.Join(dir, segName(1))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[magicLen+recordHeaderLen+3] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded on a corrupt non-final segment")
	}
}

func TestSegmentRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 512, CheckpointBytes: -1})
	want := make(map[xmltree.FragmentID]uint64)
	for i := 0; i < 20; i++ {
		id := xmltree.FragmentID(i % 5)
		want[id]++
		mustPut(t, s, testFragment(id, frag.NoParent, "r"), want[id])
	}
	if s.Stats().Segments < 2 {
		t.Fatalf("want rotation, got %d segment(s)", s.Stats().Segments)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	for id, v := range want {
		if got := s2.Versions()[id]; got != v {
			t.Errorf("fragment %d version = %d, want %d", id, got, v)
		}
	}
}

func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{SegmentBytes: 256, CheckpointBytes: 1024})
	for i := 0; i < 40; i++ {
		mustPut(t, s, testFragment(xmltree.FragmentID(i%3), frag.NoParent, "a"), uint64(i)+1)
	}
	// Auto-checkpoints run on a background goroutine; give one a moment.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().SnapshotSeq == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.Stats(); st.SnapshotSeq == 0 {
		t.Fatalf("no auto checkpoint ran: %+v", st)
	}
	s.Close()
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	if got := len(s2.FragmentIDs()); got != 3 {
		t.Errorf("recovered %d fragments, want 3", got)
	}
}

func TestTripletVersionFiltering(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustPut(t, s, testFragment(0, frag.NoParent, "f"), 1)
	if err := s.PutTriplet(0, 1, 11, []byte("old")); err != nil {
		t.Fatal(err)
	}
	// The fragment moves on; the cached entry is now stale.
	mustPut(t, s, testFragment(0, frag.NoParent, "f2"), 2)
	if err := s.PutTriplet(0, 2, 22, []byte("new")); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	trips, err := s2.Triplets()
	if err != nil {
		t.Fatal(err)
	}
	if len(trips) != 1 || trips[0].FP != 22 || string(trips[0].Enc) != "new" {
		t.Fatalf("Triplets = %+v, want only the fp=22 entry", trips)
	}
}

func TestGracefulCloseCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	f := testFragment(0, frag.NoParent, "x")
	mustPut(t, s, f, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.PutFragment(f, 4); err == nil {
		t.Fatal("PutFragment succeeded on a closed store")
	}
	s2 := mustOpen(t, dir, Options{})
	defer s2.Close()
	checkFragment(t, s2, f, 3)
	if st := s2.Stats(); st.SnapshotSeq == 0 {
		t.Errorf("Close did not checkpoint: %+v", st)
	}
}

func TestFreshDirIsEmpty(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	if !s.Empty() {
		t.Fatal("fresh store is not Empty")
	}
	mustPut(t, s, testFragment(0, frag.NoParent, "x"), 1)
	if s.Empty() {
		t.Fatal("seeded store reports Empty")
	}
}

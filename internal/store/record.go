// Package store is a per-site durable fragment store: a segmented
// append-only WAL of fragment mutations plus periodic snapshots, giving a
// site crash recovery with exact fragment-version restoration (so the
// serving layer's versioned triplet cache warm-starts) and a disk-backed
// fragment table that lets a site host more fragments than fit in RAM.
//
// On-disk layout (one directory per site):
//
//	wal-<seq>.wal    append-only segments of mutation records
//	snap-<seq>.snap  the latest snapshot; replay starts at segment <seq>
//	*.tmp            in-progress snapshot writes (ignored and removed)
//
// Both file kinds open with an 8-byte magic and then hold a stream of
// length-prefixed, CRC-checked records:
//
//	uint32 LE body length | uint32 LE CRC-32C of body | body
//
// The body's first byte is the record kind; fragment content rides in the
// existing xmltree wire encoding and cached triplets in the boolexpr-based
// triplet encoding, so the WAL introduces no third codec for trees or
// formulas. Numbers are uvarints, matching those codecs.
//
// Recovery replays the newest valid snapshot and then every segment at or
// after its sequence number. A torn record at the tail of the final
// segment — the expected shape of a crash — is truncated away; a bad
// record anywhere else is reported as corruption.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/xmltree"
)

// Record kinds.
const (
	// recPut logs a fragment's full content (add or in-place mutation):
	// id, parent, version, then the xmltree encoding of the tree.
	recPut = byte(1)
	// recDelete logs a fragment's removal: id, version. The version
	// counter survives the fragment, keeping version-keyed caches safe
	// against id reuse.
	recDelete = byte(2)
	// recVersion sets a version counter without content — snapshots use it
	// to persist the counters of removed fragments.
	recVersion = byte(3)
	// recTriplet logs a memoized triplet-cache entry: id, fragment
	// version, program fingerprint, then the triplet's wire encoding.
	recTriplet = byte(4)
	// recSnapEnd is the snapshot footer: the count of preceding records.
	// A snapshot without a matching footer is not trusted.
	recSnapEnd = byte(5)
)

const (
	walMagic  = "PBXWAL1\n"
	snapMagic = "PBXSNP1\n"
	magicLen  = 8

	// recordHeaderLen is the length+CRC prefix of every record.
	recordHeaderLen = 8

	// maxRecordBytes bounds the body length a reader accepts, refusing
	// absurd allocations from corrupt length prefixes.
	maxRecordBytes = 1 << 28
)

// ErrCorrupt is wrapped by recovery failures that indicate real on-disk
// corruption (as opposed to the tolerated torn tail of the last segment).
var ErrCorrupt = errors.New("store: corrupt log")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// rawID round-trips a FragmentID (including frag.NoParent, -1) through a
// uvarint the way the xmltree codec encodes virtual-node ids.
func rawID(id xmltree.FragmentID) uint64 { return uint64(uint32(id)) }

func idFromRaw(v uint64) (xmltree.FragmentID, error) {
	if v > 0xffffffff {
		return 0, fmt.Errorf("%w: fragment id %d overflows", ErrCorrupt, v)
	}
	return xmltree.FragmentID(uint32(v)), nil
}

// putBody builds a recPut body around an already-encoded tree and returns
// it with the offset of the tree bytes within the body (the byte range the
// index remembers, so loads and snapshot copies never re-encode).
func putBody(id, parent xmltree.FragmentID, version uint64, tree []byte) (body []byte, payloadOff int) {
	body = make([]byte, 0, 1+3*binary.MaxVarintLen64+len(tree))
	body = append(body, recPut)
	body = binary.AppendUvarint(body, rawID(id))
	body = binary.AppendUvarint(body, rawID(parent))
	body = binary.AppendUvarint(body, version)
	payloadOff = len(body)
	body = append(body, tree...)
	return body, payloadOff
}

func deleteBody(id xmltree.FragmentID, version uint64) []byte {
	body := make([]byte, 0, 1+2*binary.MaxVarintLen64)
	body = append(body, recDelete)
	body = binary.AppendUvarint(body, rawID(id))
	body = binary.AppendUvarint(body, version)
	return body
}

func versionBody(id xmltree.FragmentID, version uint64) []byte {
	body := make([]byte, 0, 1+2*binary.MaxVarintLen64)
	body = append(body, recVersion)
	body = binary.AppendUvarint(body, rawID(id))
	body = binary.AppendUvarint(body, version)
	return body
}

func tripletBody(id xmltree.FragmentID, version, fp uint64, enc []byte) (body []byte, payloadOff int) {
	body = make([]byte, 0, 1+3*binary.MaxVarintLen64+len(enc))
	body = append(body, recTriplet)
	body = binary.AppendUvarint(body, rawID(id))
	body = binary.AppendUvarint(body, version)
	body = binary.AppendUvarint(body, fp)
	payloadOff = len(body)
	body = append(body, enc...)
	return body, payloadOff
}

func snapEndBody(count uint64) []byte {
	body := make([]byte, 0, 1+binary.MaxVarintLen64)
	body = append(body, recSnapEnd)
	body = binary.AppendUvarint(body, count)
	return body
}

// record is a decoded record body. Payload bytes (tree or triplet
// encoding) are identified by their offset within the body rather than
// copied: the replay loop turns the offset into a file location for the
// in-memory index.
type record struct {
	kind       byte
	id         xmltree.FragmentID
	parent     xmltree.FragmentID
	version    uint64
	fp         uint64
	payloadOff int
	count      uint64 // recSnapEnd
}

// decodeRecord parses one record body. Payload bytes are not validated
// here — a tree or triplet that passes the CRC but fails its own codec is
// surfaced when first decoded (LoadFragment / triplet restore).
func decodeRecord(body []byte) (record, error) {
	if len(body) == 0 {
		return record{}, fmt.Errorf("%w: empty record body", ErrCorrupt)
	}
	r := record{kind: body[0]}
	pos := 1
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad uvarint in record kind %d", ErrCorrupt, r.kind)
		}
		pos += n
		return v, nil
	}
	uvID := func() (xmltree.FragmentID, error) {
		v, err := uv()
		if err != nil {
			return 0, err
		}
		return idFromRaw(v)
	}
	var err error
	switch r.kind {
	case recPut:
		if r.id, err = uvID(); err != nil {
			return record{}, err
		}
		if r.parent, err = uvID(); err != nil {
			return record{}, err
		}
		if r.version, err = uv(); err != nil {
			return record{}, err
		}
		r.payloadOff = pos
	case recDelete, recVersion:
		if r.id, err = uvID(); err != nil {
			return record{}, err
		}
		if r.version, err = uv(); err != nil {
			return record{}, err
		}
		if pos != len(body) {
			return record{}, fmt.Errorf("%w: %d trailing bytes in record kind %d", ErrCorrupt, len(body)-pos, r.kind)
		}
	case recTriplet:
		if r.id, err = uvID(); err != nil {
			return record{}, err
		}
		if r.version, err = uv(); err != nil {
			return record{}, err
		}
		if r.fp, err = uv(); err != nil {
			return record{}, err
		}
		r.payloadOff = pos
	case recSnapEnd:
		if r.count, err = uv(); err != nil {
			return record{}, err
		}
		if pos != len(body) {
			return record{}, fmt.Errorf("%w: trailing bytes in snapshot footer", ErrCorrupt)
		}
	default:
		return record{}, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, r.kind)
	}
	return record{kind: r.kind, id: r.id, parent: r.parent, version: r.version,
		fp: r.fp, payloadOff: r.payloadOff, count: r.count}, nil
}

// frameRecord appends the length+CRC header and body to dst.
func frameRecord(dst, body []byte) []byte {
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// tailIsTorn reports whether the segment's remainder past off holds no
// further intact record — the shape of a genuine crash, where the torn
// bytes are the last thing ever written. Any CRC-valid, decodable record
// after the bad region proves the damage is mid-log corruption instead
// (later appends succeeded, so the log cannot have been torn here), which
// callers must report rather than silently truncate away.
func tailIsTorn(f *os.File, off, size int64) bool {
	n := size - off
	if n <= recordHeaderLen {
		return true
	}
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		return true
	}
	for p := int64(1); p+recordHeaderLen <= n; p++ {
		bl := int64(binary.LittleEndian.Uint32(buf[p : p+4]))
		if bl > maxRecordBytes || bl > n-p-recordHeaderLen {
			continue
		}
		body := buf[p+recordHeaderLen : p+recordHeaderLen+bl]
		if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(buf[p+4:p+8]) {
			continue
		}
		if _, err := decodeRecord(body); err == nil {
			return false
		}
	}
	return true
}

// readRecord reads the record starting at off in f. It returns the body
// and the offset just past the record. io.EOF exactly at off means a clean
// end of the stream; every other failure (short header, short body, bad
// length, CRC mismatch) is reported as ErrCorrupt with the offset, which
// the caller maps to either tail truncation or a hard corruption error.
func readRecord(f *os.File, off, size int64) ([]byte, int64, error) {
	if off == size {
		return nil, off, io.EOF
	}
	if size-off < recordHeaderLen {
		return nil, off, fmt.Errorf("%w: torn record header at offset %d", ErrCorrupt, off)
	}
	var hdr [recordHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, off, fmt.Errorf("store: reading header at %d: %w", off, err)
	}
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxRecordBytes {
		return nil, off, fmt.Errorf("%w: record length %d at offset %d exceeds limit", ErrCorrupt, n, off)
	}
	if size-off-recordHeaderLen < n {
		return nil, off, fmt.Errorf("%w: torn record body at offset %d", ErrCorrupt, off)
	}
	body := make([]byte, n)
	if _, err := f.ReadAt(body, off+recordHeaderLen); err != nil {
		return nil, off, fmt.Errorf("store: reading body at %d: %w", off, err)
	}
	if crc32.Checksum(body, crcTable) != crc {
		return nil, off, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
	}
	return body, off + recordHeaderLen + n, nil
}

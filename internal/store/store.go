package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/frag"
	"repro/internal/xmltree"
)

// Options parameterize a Store. The zero value picks the defaults.
type Options struct {
	// SegmentBytes rotates the active WAL segment once it exceeds this
	// size. Default 1 MiB.
	SegmentBytes int64
	// CheckpointBytes auto-checkpoints (snapshot + WAL truncation) once
	// the WAL has grown past this many bytes since the last snapshot.
	// Default 8 MiB; negative disables auto-checkpointing.
	CheckpointBytes int64
	// SyncWrites fsyncs after every appended record. Off by default: an OS
	// that stays up preserves unsynced writes across a process crash, and
	// checkpoints always sync.
	SyncWrites bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 8 << 20
	}
	return o
}

// loc addresses a payload (encoded tree or triplet) inside one of the
// store's open files. Files are only closed and deleted at checkpoint,
// which rewrites every live loc first, so a loc is valid for as long as
// the index holds it.
type loc struct {
	f   *os.File
	off int64
	n   int
}

func (l loc) read() ([]byte, error) {
	buf := make([]byte, l.n)
	if _, err := l.f.ReadAt(buf, l.off); err != nil {
		return nil, err
	}
	return buf, nil
}

type fragMeta struct {
	version uint64
	parent  xmltree.FragmentID
	tree    loc
}

type tripKey struct {
	id xmltree.FragmentID
	fp uint64
}

type tripMeta struct {
	version uint64
	enc     loc
}

// maxTripletEntries bounds the in-memory triplet index (and thereby the
// snapshot's triplet section). The sites' own caches hold 4096 entries;
// double that comfortably covers a standing query set.
const maxTripletEntries = 8192

// TripletEntry is one recovered triplet-cache entry: the encoded triplet a
// program (identified by its fingerprint) computed over a fragment at the
// given version.
type TripletEntry struct {
	Frag    xmltree.FragmentID
	Version uint64
	FP      uint64
	Enc     []byte
}

// Stats summarizes a store's on-disk state.
type Stats struct {
	LiveFragments  int
	DeadVersions   int
	CachedTriplets int
	Segments       int
	WALBytes       int64 // record bytes in segments newer than the snapshot
	SnapshotSeq    int64 // 0 when no snapshot exists yet
}

// Store is a site's durable fragment store. All methods are safe for
// concurrent use. Errors from the underlying files are sticky: after the
// first failed append every subsequent mutation returns the same error, so
// a half-written log is never extended.
type Store struct {
	dir  string
	opts Options

	mu    sync.Mutex
	frags map[xmltree.FragmentID]*fragMeta
	dead  map[xmltree.FragmentID]uint64
	trips map[tripKey]*tripMeta

	files    map[int64]*os.File // open WAL segments by sequence number
	seq      int64              // active (highest) segment
	w        *os.File           // == files[seq]
	wOff     int64
	walBytes int64 // appended since the last checkpoint (replayed bytes count)

	snap     *os.File
	snapSeq  int64
	snapPath string

	// cpMu serializes checkpoints (background auto, explicit Checkpoint,
	// Close); it is always acquired before mu. cpInFlight marks a
	// scheduled background auto-checkpoint, so the threshold does not
	// spawn one goroutine per append while it waits.
	cpMu       sync.Mutex
	cpInFlight bool

	scratch []byte
	err     error
	closed  bool
}

func segName(seq int64) string  { return fmt.Sprintf("wal-%016d.wal", seq) }
func snapName(seq int64) string { return fmt.Sprintf("snap-%016d.snap", seq) }

// Open opens (creating if necessary) the store in dir and recovers its
// state: the newest valid snapshot is loaded, segments at or after it are
// replayed, and a torn tail on the final segment is truncated away so
// appends resume cleanly.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:   dir,
		opts:  opts.withDefaults(),
		frags: make(map[xmltree.FragmentID]*fragMeta),
		dead:  make(map[xmltree.FragmentID]uint64),
		trips: make(map[tripKey]*tripMeta),
		files: make(map[int64]*os.File),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	segs := make(map[int64]string)
	var snapSeqs []int64
	for _, e := range entries {
		name := e.Name()
		var seq int64
		switch {
		case len(name) > 4 && name[len(name)-4:] == ".tmp":
			os.Remove(filepath.Join(dir, name)) // abandoned snapshot write
		case matchesSeq(name, "wal-", ".wal", &seq):
			segs[seq] = filepath.Join(dir, name)
		case matchesSeq(name, "snap-", ".snap", &seq):
			snapSeqs = append(snapSeqs, seq)
		}
	}

	// Newest valid snapshot wins; an invalid newer one (which atomic
	// rename should prevent — it indicates disk-level damage) falls back
	// to its predecessor rather than silently starting empty.
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })
	var snapErr error
	for _, seq := range snapSeqs {
		if err := s.loadSnapshot(filepath.Join(dir, snapName(seq)), seq); err != nil {
			if snapErr == nil {
				snapErr = err
			}
			s.resetState()
			continue
		}
		break
	}
	if s.snap == nil && snapErr != nil {
		return nil, snapErr
	}

	var segSeqs []int64
	for seq := range segs {
		if seq >= s.snapSeq {
			segSeqs = append(segSeqs, seq)
		} else {
			os.Remove(segs[seq]) // fully covered by the snapshot
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	for _, seq := range snapSeqs {
		if seq < s.snapSeq {
			os.Remove(filepath.Join(dir, snapName(seq)))
		}
	}
	for i, seq := range segSeqs {
		last := i == len(segSeqs)-1
		if err := s.replaySegment(segs[seq], seq, last); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	if s.w == nil {
		seq := s.snapSeq
		if seq == 0 {
			seq = 1
		}
		if err := s.createSegment(seq); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	return s, nil
}

func matchesSeq(name, prefix, suffix string, seq *int64) bool {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	var v int64
	for _, c := range name[len(prefix) : len(prefix)+16] {
		if c < '0' || c > '9' {
			return false
		}
		v = v*10 + int64(c-'0')
	}
	*seq = v
	return v > 0
}

func (s *Store) resetState() {
	if s.snap != nil {
		s.snap.Close()
		s.snap = nil
	}
	s.snapSeq, s.snapPath = 0, ""
	s.frags = make(map[xmltree.FragmentID]*fragMeta)
	s.dead = make(map[xmltree.FragmentID]uint64)
	s.trips = make(map[tripKey]*tripMeta)
}

func (s *Store) closeFiles() {
	for _, f := range s.files {
		f.Close()
	}
	if s.snap != nil {
		s.snap.Close()
	}
}

// loadSnapshot reads and applies one snapshot file. The file must carry
// the magic, a record stream, and a trailing footer whose count matches —
// anything else rejects the snapshot.
func (s *Store) loadSnapshot(path string, seq int64) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	size := st.Size()
	if err := checkMagic(f, snapMagic); err != nil {
		f.Close()
		return err
	}
	off := int64(magicLen)
	var count uint64
	footer := false
	for {
		body, next, err := readRecord(f, off, size)
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("store: snapshot %s: %w", filepath.Base(path), err)
		}
		rec, err := decodeRecord(body)
		if err != nil {
			f.Close()
			return fmt.Errorf("store: snapshot %s: %w", filepath.Base(path), err)
		}
		if footer {
			f.Close()
			return fmt.Errorf("%w: snapshot %s has records after its footer", ErrCorrupt, filepath.Base(path))
		}
		if rec.kind == recSnapEnd {
			if rec.count != count {
				f.Close()
				return fmt.Errorf("%w: snapshot %s footer count %d, want %d", ErrCorrupt, filepath.Base(path), rec.count, count)
			}
			footer = true
			off = next
			continue
		}
		s.applyRecord(rec, body, f, off+recordHeaderLen)
		count++
		off = next
	}
	if !footer {
		f.Close()
		return fmt.Errorf("%w: snapshot %s has no footer", ErrCorrupt, filepath.Base(path))
	}
	s.snap, s.snapSeq, s.snapPath = f, seq, path
	return nil
}

// replaySegment applies one WAL segment. On the last segment a torn tail
// is truncated in place (the crash shape); elsewhere it is corruption. The
// segment's file stays open: the index points into it, and the last one
// becomes the append target.
func (s *Store) replaySegment(path string, seq int64, last bool) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	size := st.Size()
	if err := checkMagic(f, walMagic); err != nil {
		if !last {
			f.Close()
			return err
		}
		// A crash during segment creation can leave a torn magic; rewrite
		// the segment as empty.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		size = magicLen
	}
	// truncateTail drops a genuinely torn tail so appends resume from the
	// last intact record; a bad record with valid records after it (or in
	// a non-final segment) is real corruption and must not be swallowed.
	truncateTail := func(off int64, cause error) (int64, error) {
		if !last || !tailIsTorn(f, off, size) {
			return 0, fmt.Errorf("store: segment %s: %w", filepath.Base(path), cause)
		}
		if terr := f.Truncate(off); terr != nil {
			return 0, fmt.Errorf("store: truncating torn tail: %w", terr)
		}
		return off, nil
	}
	off := int64(magicLen)
	for {
		body, next, err := readRecord(f, off, size)
		if err != nil {
			if err == io.EOF {
				break
			}
			if size, err = truncateTail(off, err); err != nil {
				f.Close()
				return err
			}
			break
		}
		rec, err := decodeRecord(body)
		if err == nil && rec.kind == recSnapEnd {
			// Never written to WALs.
			err = fmt.Errorf("%w: snapshot footer in a segment", ErrCorrupt)
		}
		if err != nil {
			if size, err = truncateTail(off, err); err != nil {
				f.Close()
				return err
			}
			break
		}
		s.applyRecord(rec, body, f, off+recordHeaderLen)
		off = next
	}
	s.files[seq] = f
	s.walBytes += size - magicLen
	if last {
		s.seq, s.w, s.wOff = seq, f, size
	}
	return nil
}

func checkMagic(f *os.File, magic string) error {
	var buf [magicLen]byte
	if _, err := f.ReadAt(buf[:], 0); err != nil {
		return fmt.Errorf("%w: missing magic", ErrCorrupt)
	}
	if string(buf[:]) != magic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[:])
	}
	return nil
}

// applyRecord folds one decoded record into the in-memory index. bodyOff
// is the file offset of the record body, so payload locs address the tree
// or triplet bytes directly.
func (s *Store) applyRecord(rec record, body []byte, f *os.File, bodyOff int64) {
	switch rec.kind {
	case recPut:
		s.frags[rec.id] = &fragMeta{
			version: rec.version,
			parent:  rec.parent,
			tree:    loc{f: f, off: bodyOff + int64(rec.payloadOff), n: len(body) - rec.payloadOff},
		}
		delete(s.dead, rec.id)
	case recDelete:
		delete(s.frags, rec.id)
		s.dead[rec.id] = rec.version
	case recVersion:
		if _, live := s.frags[rec.id]; !live {
			s.dead[rec.id] = rec.version
		}
	case recTriplet:
		s.insertTriplet(tripKey{id: rec.id, fp: rec.fp}, &tripMeta{
			version: rec.version,
			enc:     loc{f: f, off: bodyOff + int64(rec.payloadOff), n: len(body) - rec.payloadOff},
		})
	}
}

// insertTriplet stores a triplet index entry under the size bound,
// dropping an arbitrary other entry when full (the WAL record stays; the
// next checkpoint reclaims the space).
func (s *Store) insertTriplet(k tripKey, m *tripMeta) {
	if _, exists := s.trips[k]; !exists && len(s.trips) >= maxTripletEntries {
		for victim := range s.trips {
			if victim != k {
				delete(s.trips, victim)
				break
			}
		}
	}
	s.trips[k] = m
}

// createSegment opens a fresh active segment with the given sequence.
func (s *Store) createSegment(seq int64) error {
	path := filepath.Join(s.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.files[seq] = f
	s.seq, s.w, s.wOff = seq, f, magicLen
	return nil
}

// appendLocked frames and appends one record body to the active segment,
// rotating first if the segment is full, and returns the file offset of
// the body. Callers hold s.mu and have checked s.err.
func (s *Store) appendLocked(body []byte) (*os.File, int64, error) {
	if s.wOff >= s.opts.SegmentBytes {
		if err := s.createSegment(s.seq + 1); err != nil {
			return nil, 0, err
		}
	}
	s.scratch = frameRecord(s.scratch[:0], body)
	if _, err := s.w.WriteAt(s.scratch, s.wOff); err != nil {
		return nil, 0, fmt.Errorf("store: append: %w", err)
	}
	bodyOff := s.wOff + recordHeaderLen
	s.wOff += int64(len(s.scratch))
	s.walBytes += int64(len(s.scratch))
	if s.opts.SyncWrites {
		if err := s.w.Sync(); err != nil {
			return nil, 0, fmt.Errorf("store: sync: %w", err)
		}
	}
	return s.w, bodyOff, nil
}

func (s *Store) fail(err error) error {
	if err != nil && s.err == nil {
		s.err = err
	}
	return err
}

func (s *Store) checkLocked() error {
	if s.closed {
		return fmt.Errorf("store: %s is closed", s.dir)
	}
	return s.err
}

// PutFragment logs the fragment's full content at the given version: an
// add, or an in-place mutation (view-maintenance update, split, merge).
func (s *Store) PutFragment(f *frag.Fragment, version uint64) error {
	tree := xmltree.Encode(f.Root)
	body, payloadOff := putBody(f.ID, f.Parent, version, tree)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLocked(); err != nil {
		return err
	}
	file, bodyOff, err := s.appendLocked(body)
	if err != nil {
		return s.fail(err)
	}
	s.frags[f.ID] = &fragMeta{
		version: version,
		parent:  f.Parent,
		tree:    loc{f: file, off: bodyOff + int64(payloadOff), n: len(tree)},
	}
	delete(s.dead, f.ID)
	s.maybeCheckpointLocked()
	return nil
}

// DeleteFragment logs a fragment's removal. Its version counter survives.
func (s *Store) DeleteFragment(id xmltree.FragmentID, version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLocked(); err != nil {
		return err
	}
	if _, _, err := s.appendLocked(deleteBody(id, version)); err != nil {
		return s.fail(err)
	}
	delete(s.frags, id)
	s.dead[id] = version
	s.maybeCheckpointLocked()
	return nil
}

// PutTriplet logs a triplet-cache entry so a restart can warm-start the
// site's versioned triplet cache.
func (s *Store) PutTriplet(id xmltree.FragmentID, version, fp uint64, enc []byte) error {
	body, payloadOff := tripletBody(id, version, fp, enc)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkLocked(); err != nil {
		return err
	}
	file, bodyOff, err := s.appendLocked(body)
	if err != nil {
		return s.fail(err)
	}
	s.insertTriplet(tripKey{id: id, fp: fp}, &tripMeta{
		version: version,
		enc:     loc{f: file, off: bodyOff + int64(payloadOff), n: len(enc)},
	})
	s.maybeCheckpointLocked()
	return nil
}

// LoadFragment reads a live fragment's latest persisted content from disk.
// ok is false for fragments the store does not (or no longer) hold.
func (s *Store) LoadFragment(id xmltree.FragmentID) (*frag.Fragment, uint64, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, ok := s.frags[id]
	if !ok {
		return nil, 0, false, nil
	}
	buf, err := meta.tree.read()
	if err != nil {
		return nil, 0, false, s.fail(fmt.Errorf("store: loading fragment %d: %w", id, err))
	}
	root, err := xmltree.Decode(buf)
	if err != nil {
		return nil, 0, false, fmt.Errorf("store: fragment %d: %w", id, err)
	}
	return &frag.Fragment{ID: id, Parent: meta.parent, Root: root}, meta.version, true, nil
}

// Empty reports whether the store holds no state at all (a fresh
// directory, as opposed to one a previous deployment wrote).
func (s *Store) Empty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frags) == 0 && len(s.dead) == 0 && len(s.trips) == 0
}

// FragmentIDs returns the live fragments' IDs in ascending order.
func (s *Store) FragmentIDs() []xmltree.FragmentID {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]xmltree.FragmentID, 0, len(s.frags))
	for id := range s.frags {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Versions returns every fragment version counter the store knows — live
// fragments at their current version and removed fragments at their final
// one. Restoring all of them keeps version-keyed caches monotonic across
// arbitrarily many restarts.
func (s *Store) Versions() map[xmltree.FragmentID]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[xmltree.FragmentID]uint64, len(s.frags)+len(s.dead))
	for id, m := range s.frags {
		out[id] = m.version
	}
	for id, v := range s.dead {
		out[id] = v
	}
	return out
}

// Triplets returns the persisted triplet-cache entries whose fragment
// still exists at the recorded version — exactly the entries a restarted
// site may serve without risking a dead cache hit.
func (s *Store) Triplets() ([]TripletEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []TripletEntry
	for k, m := range s.trips {
		fm, live := s.frags[k.id]
		if !live || fm.version != m.version {
			continue
		}
		enc, err := m.enc.read()
		if err != nil {
			return nil, s.fail(fmt.Errorf("store: loading triplet for fragment %d: %w", k.id, err))
		}
		out = append(out, TripletEntry{Frag: k.id, Version: m.version, FP: k.fp, Enc: enc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Frag != out[j].Frag {
			return out[i].Frag < out[j].Frag
		}
		return out[i].FP < out[j].FP
	})
	return out, nil
}

// Stats summarizes the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		LiveFragments:  len(s.frags),
		DeadVersions:   len(s.dead),
		CachedTriplets: len(s.trips),
		Segments:       len(s.files),
		WALBytes:       s.walBytes,
		SnapshotSeq:    s.snapSeq,
	}
}

// Err returns the store's sticky error, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// maybeCheckpointLocked schedules a background checkpoint once the WAL
// passes the threshold. It runs asynchronously on the store's own mutex:
// mutations arrive via site methods that hold the site lock, and a
// multi-megabyte snapshot written inline would stall every read on the
// site for its whole duration.
// maybeCheckpointLocked schedules a background checkpoint once the WAL
// passes the threshold. Callers hold s.mu; the checkpoint goroutine only
// briefly re-acquires it for the index-copy and install phases, so
// neither appends (often made under the site lock) nor reads stall
// behind a multi-megabyte snapshot write.
func (s *Store) maybeCheckpointLocked() {
	if s.opts.CheckpointBytes < 0 || s.walBytes < s.opts.CheckpointBytes || s.cpInFlight {
		return
	}
	s.cpInFlight = true
	go func() {
		s.checkpoint(s.opts.CheckpointBytes)
		s.mu.Lock()
		s.cpInFlight = false
		s.mu.Unlock()
	}()
}

// Checkpoint writes a snapshot of the store's full state (live fragments,
// dead version counters, valid triplet entries) to a new file — written to
// a temp path, synced, then atomically renamed — and truncates the WAL:
// every older segment and snapshot is deleted, and appends continue in a
// fresh segment. Recovery after a checkpoint replays only the snapshot
// plus whatever the newer segments accumulate.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	err := s.checkLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.checkpoint(0)
}

// cpState is the phase-1 copy of the index a checkpoint streams from.
type cpState struct {
	fragIDs  []xmltree.FragmentID
	frags    map[xmltree.FragmentID]fragMeta
	deadIDs  []xmltree.FragmentID
	dead     map[xmltree.FragmentID]uint64
	tripKeys []tripKey
	trips    map[tripKey]tripMeta
}

// checkpoint runs the three-phase snapshot+truncate, serialized by cpMu.
// s.mu is held only for phase 1 (rotate the WAL and copy the index) and
// phase 3 (install the new locations and delete superseded files); the
// snapshot write itself streams without any store lock, so concurrent
// appends and loads proceed — they land in segments at or after the
// rotation point and are replayed on top of the snapshot at recovery.
// minWAL skips the run when the WAL shrank below the auto threshold
// before the scheduled goroutine got to it (0 = run unconditionally).
func (s *Store) checkpoint(minWAL int64) error {
	s.cpMu.Lock()
	defer s.cpMu.Unlock()

	// Phase 1 — rotate and copy.
	s.mu.Lock()
	if err := s.checkLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	if s.walBytes < minWAL {
		s.mu.Unlock()
		return nil
	}
	oldFiles := make(map[int64]*os.File, len(s.files))
	oldSet := make(map[*os.File]bool, len(s.files))
	for seq, f := range s.files {
		oldFiles[seq] = f
		oldSet[f] = true
	}
	newSeq := s.seq + 1
	if err := s.createSegment(newSeq); err != nil {
		err = s.fail(err)
		s.mu.Unlock()
		return err
	}
	absorbed := s.walBytes
	st := cpState{
		frags: make(map[xmltree.FragmentID]fragMeta, len(s.frags)),
		dead:  make(map[xmltree.FragmentID]uint64, len(s.dead)),
		trips: make(map[tripKey]tripMeta),
	}
	for id, m := range s.frags {
		st.fragIDs = append(st.fragIDs, id)
		st.frags[id] = *m
	}
	for id, v := range s.dead {
		st.deadIDs = append(st.deadIDs, id)
		st.dead[id] = v
	}
	// Only triplets valid at the current fragment versions are carried
	// over; the rest are garbage-collected by this checkpoint.
	for k, m := range s.trips {
		if fm, live := s.frags[k.id]; live && fm.version == m.version {
			st.tripKeys = append(st.tripKeys, k)
			st.trips[k] = *m
		}
	}
	s.mu.Unlock()
	// Sorted, for a deterministic snapshot file.
	sort.Slice(st.fragIDs, func(i, j int) bool { return st.fragIDs[i] < st.fragIDs[j] })
	sort.Slice(st.deadIDs, func(i, j int) bool { return st.deadIDs[i] < st.deadIDs[j] })
	sort.Slice(st.tripKeys, func(i, j int) bool {
		if st.tripKeys[i].id != st.tripKeys[j].id {
			return st.tripKeys[i].id < st.tripKeys[j].id
		}
		return st.tripKeys[i].fp < st.tripKeys[j].fp
	})

	// Phase 2 — stream the snapshot, lock-free. The copied locs stay
	// readable throughout: only phase 3 of a checkpoint deletes files, and
	// cpMu guarantees no other checkpoint runs.
	f, snapPath, newFragLocs, newTripLocs, err := s.writeSnapshot(newSeq, &st)
	if err != nil {
		s.mu.Lock()
		if !s.closed {
			s.fail(err)
		}
		s.mu.Unlock()
		return err
	}

	// Phase 3 — install and truncate.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		// The renamed snapshot is valid on disk and the next Open will use
		// it; this instance just releases the handle.
		f.Close()
		return s.err
	}
	for id, nl := range newFragLocs {
		if cur, ok := s.frags[id]; ok && oldSet[cur.tree.f] && cur.version == st.frags[id].version {
			cur.tree = nl
		}
	}
	for k, nt := range newTripLocs {
		if cur, ok := s.trips[k]; ok && oldSet[cur.enc.f] && cur.version == st.trips[k].version {
			cur.enc = nt
		}
	}
	// Anything still pointing into a file that is about to be deleted was
	// not carried over (a stale triplet): drop it rather than dangle.
	for k, cur := range s.trips {
		if oldSet[cur.enc.f] {
			delete(s.trips, k)
		}
	}
	for seq, old := range oldFiles {
		old.Close()
		delete(s.files, seq)
		os.Remove(filepath.Join(s.dir, segName(seq)))
	}
	if s.snap != nil {
		s.snap.Close()
		os.Remove(s.snapPath)
	}
	syncDir(s.dir)
	s.snap, s.snapSeq, s.snapPath = f, newSeq, snapPath
	s.walBytes -= absorbed
	return nil
}

// writeSnapshot streams a phase-1 index copy into snap-<newSeq> (temp +
// fsync + atomic rename) and returns the open file plus the payload
// locations of everything it wrote. It takes no store lock.
func (s *Store) writeSnapshot(newSeq int64, st *cpState) (*os.File, string, map[xmltree.FragmentID]loc, map[tripKey]loc, error) {
	tmpPath := filepath.Join(s.dir, snapName(newSeq)+".tmp")
	f, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, "", nil, nil, fmt.Errorf("store: checkpoint: %w", err)
	}
	abort := func(err error) (*os.File, string, map[xmltree.FragmentID]loc, map[tripKey]loc, error) {
		f.Close()
		os.Remove(tmpPath)
		return nil, "", nil, nil, err
	}
	if _, err := f.WriteAt([]byte(snapMagic), 0); err != nil {
		return abort(fmt.Errorf("store: checkpoint: %w", err))
	}
	off := int64(magicLen)
	var count uint64
	var scratch []byte // local: s.scratch belongs to concurrent appends
	write := func(body []byte) (int64, error) {
		scratch = frameRecord(scratch[:0], body)
		if _, err := f.WriteAt(scratch, off); err != nil {
			return 0, fmt.Errorf("store: checkpoint: %w", err)
		}
		bodyOff := off + recordHeaderLen
		off += int64(len(scratch))
		count++
		return bodyOff, nil
	}

	// Live fragments, copied byte-for-byte from their locs — no
	// re-encoding.
	newFragLocs := make(map[xmltree.FragmentID]loc, len(st.fragIDs))
	for _, id := range st.fragIDs {
		m := st.frags[id]
		tree, err := m.tree.read()
		if err != nil {
			return abort(fmt.Errorf("store: checkpoint: fragment %d: %w", id, err))
		}
		body, payloadOff := putBody(id, m.parent, m.version, tree)
		bodyOff, err := write(body)
		if err != nil {
			return abort(err)
		}
		newFragLocs[id] = loc{f: f, off: bodyOff + int64(payloadOff), n: len(tree)}
	}
	// Version counters of removed fragments.
	for _, id := range st.deadIDs {
		if _, err := write(versionBody(id, st.dead[id])); err != nil {
			return abort(err)
		}
	}
	// Still-valid triplet entries.
	newTripLocs := make(map[tripKey]loc, len(st.tripKeys))
	for _, k := range st.tripKeys {
		m := st.trips[k]
		enc, err := m.enc.read()
		if err != nil {
			return abort(fmt.Errorf("store: checkpoint: triplet for fragment %d: %w", k.id, err))
		}
		body, payloadOff := tripletBody(k.id, m.version, k.fp, enc)
		bodyOff, err := write(body)
		if err != nil {
			return abort(err)
		}
		newTripLocs[k] = loc{f: f, off: bodyOff + int64(payloadOff), n: len(enc)}
	}

	if _, err := write(snapEndBody(count)); err != nil {
		return abort(err)
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("store: checkpoint: %w", err))
	}
	snapPath := filepath.Join(s.dir, snapName(newSeq))
	if err := os.Rename(tmpPath, snapPath); err != nil {
		return abort(fmt.Errorf("store: checkpoint: %w", err))
	}
	syncDir(s.dir)
	return f, snapPath, newFragLocs, newTripLocs, nil
}

// OpenSeedable opens dir for a deployment start. A store holding state
// but no snapshot is a seeding that crashed part-way (the post-seed
// checkpoint is the completion marker, and nothing is served before
// seeding completes), so its files are wiped — store files only — and the
// dir reopened empty. A completed store is returned as-is; the caller
// decides whether existing state is acceptable.
func OpenSeedable(dir string, opts Options) (*Store, error) {
	st, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	if !st.Empty() && st.Stats().SnapshotSeq == 0 {
		st.Discard()
		if err := Wipe(dir); err != nil {
			return nil, err
		}
		return Open(dir, opts)
	}
	return st, nil
}

// Wipe removes the store-owned files (WAL segments, snapshots, temp
// files) from dir, leaving anything else — an operator may have pointed a
// data dir at a directory that also holds foreign files, which a reseed
// must never delete. The directory itself is kept.
func Wipe(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: wipe: %w", err)
	}
	var seq int64
	for _, e := range entries {
		name := e.Name()
		owned := matchesSeq(name, "wal-", ".wal", &seq) ||
			matchesSeq(name, "snap-", ".snap", &seq) ||
			(len(name) > 4 && name[len(name)-4:] == ".tmp")
		if !owned {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("store: wipe: %w", err)
		}
	}
	return nil
}

// syncDir best-effort fsyncs a directory so renames and creations are
// durable; not all platforms support it, so errors are ignored.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Discard closes the store's files WITHOUT checkpointing, leaving the
// on-disk state exactly as Open found it (plus any appends made through
// this instance). Refusal and error paths use it so inspecting a store
// never stamps it with a snapshot — Close's checkpoint doubles as the
// seed-completion marker, which a rejected store must not acquire.
func (s *Store) Discard() {
	s.cpMu.Lock()
	defer s.cpMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closeFiles()
		s.closed = true
	}
}

// Close checkpoints (when the store is healthy and the WAL holds anything)
// and closes every file. It waits for any in-flight background checkpoint
// first (via the checkpoint serialization). A store that is dropped
// without Close recovers via WAL replay instead — that is the crash path.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	dirty := s.err == nil && s.walBytes > 0
	s.mu.Unlock()
	var cpErr error
	if dirty {
		cpErr = s.checkpoint(1)
	} else {
		// Still serialize with a running background checkpoint so its
		// phase 3 never installs into a closed store's file set.
		s.cpMu.Lock()
		s.cpMu.Unlock() //nolint:staticcheck // barrier, not a critical section
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return cpErr
	}
	s.closeFiles()
	s.closed = true
	if cpErr != nil {
		return cpErr
	}
	return s.err
}

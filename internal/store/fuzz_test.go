package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/frag"
	"repro/internal/xmltree"
)

// fuzzRecordSeeds are framed record streams — the shapes Open replays —
// plus torn and corrupt tails.
func fuzzRecordSeeds() [][]byte {
	tree := xmltree.Encode(xmltree.NewElement("a", "x",
		xmltree.NewElement("b", ""), xmltree.NewVirtual(7)))
	put, _ := putBody(0, frag.NoParent, 3, tree)
	trip, _ := tripletBody(2, 5, 0xfeed, []byte{1, 2, 3, 4})
	var stream []byte
	for _, body := range [][]byte{put, deleteBody(1, 9), versionBody(4, 2), trip} {
		stream = frameRecord(stream, body)
	}
	return [][]byte{
		nil,
		stream,
		stream[:len(stream)-3],            // torn final record
		append(bytes.Clone(stream), 0xff), // garbage tail
		frameRecord(nil, snapEndBody(0)),  // snapshot footer inside a WAL
		{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}, // absurd length prefix
	}
}

// FuzzWALReplay feeds an arbitrary byte stream to the WAL decoder the way
// a crash would leave it on disk: Open must never panic; it either repairs
// a genuinely torn tail or rejects mid-log corruption with an error; and
// accepted state must survive a checkpointed close and a second recovery
// byte-for-byte (versions, parents, trees and triplets identical) — the
// decoder/snapshot parity that keeps recovery idempotent.
func FuzzWALReplay(f *testing.F) {
	for _, seed := range fuzzRecordSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := append([]byte(walMagic), data...)
		if err := os.WriteFile(filepath.Join(dir, segName(1)), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			// Mid-log damage (a bad record with intact records after it)
			// is reported, never silently truncated; only a genuinely torn
			// tail is repaired. Either way: no panic.
			return
		}
		state1, ok := captureState(t, s)
		// Close checkpoints whatever replayed; recovery through the
		// snapshot must reproduce the WAL-replayed state exactly.
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if !ok {
			// A CRC-valid record carrying an undecodable tree: the load
			// surfaced a codec error. Still no panic, and reopening must
			// agree it is undecodable rather than crash.
			s2, err := Open(dir, Options{})
			if err == nil {
				s2.Close()
			}
			return
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("re-Open after checkpoint: %v", err)
		}
		defer s2.Close()
		state2, ok2 := captureState(t, s2)
		if !ok2 {
			t.Fatal("state became undecodable after checkpoint")
		}
		if !reflect.DeepEqual(state1.versions, state2.versions) {
			t.Fatalf("versions diverged: %v vs %v", state1.versions, state2.versions)
		}
		if !reflect.DeepEqual(state1.trees, state2.trees) {
			t.Fatalf("trees diverged: %v vs %v", state1.trees, state2.trees)
		}
		if !reflect.DeepEqual(state1.triplets, state2.triplets) {
			t.Fatalf("triplets diverged: %v vs %v", state1.triplets, state2.triplets)
		}
	})
}

type fuzzState struct {
	versions map[xmltree.FragmentID]uint64
	trees    map[xmltree.FragmentID]string
	triplets map[tripKey]string
}

// captureState loads everything the store recovered. ok is false when a
// payload that passed the CRC fails its own codec (possible only for
// fuzzer-built records) — callers then only assert crash-freedom.
func captureState(t *testing.T, s *Store) (fuzzState, bool) {
	t.Helper()
	st := fuzzState{
		versions: s.Versions(),
		trees:    make(map[xmltree.FragmentID]string),
		triplets: make(map[tripKey]string),
	}
	for _, id := range s.FragmentIDs() {
		fr, _, ok, err := s.LoadFragment(id)
		if err != nil || !ok {
			return st, false
		}
		st.trees[id] = fr.Root.String()
	}
	trips, err := s.Triplets()
	if err != nil {
		return st, false
	}
	for _, te := range trips {
		st.triplets[tripKey{id: te.Frag, fp: te.FP}] = string(te.Enc)
	}
	return st, true
}

// FuzzSnapshotLoad drives the snapshot reader: arbitrary bytes after the
// snapshot magic must either load or be rejected with an error — never a
// panic, and never a silent empty store when the footer is missing.
func FuzzSnapshotLoad(f *testing.F) {
	// A well-formed snapshot seed: records + footer.
	tree := xmltree.Encode(xmltree.NewElement("r", ""))
	put, _ := putBody(0, frag.NoParent, 1, tree)
	var good []byte
	good = frameRecord(good, put)
	good = frameRecord(good, versionBody(9, 4))
	good = frameRecord(good, snapEndBody(2))
	f.Add(good)
	f.Add(good[:len(good)-1])
	f.Add([]byte{})
	for _, seed := range fuzzRecordSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		snap := append([]byte(snapMagic), data...)
		if err := os.WriteFile(filepath.Join(dir, snapName(1)), snap, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			return // rejected, fine
		}
		defer s.Close()
		captureState(t, s)
	})
}

package frag

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmltree"
)

// SiteID names a site (machine) holding fragments. The empty SiteID is
// invalid.
type SiteID string

// Assignment maps fragments to the sites storing them — the function h of
// Section 2.1.
type Assignment map[xmltree.FragmentID]SiteID

// Entry is one node of the source tree: a fragment, where it lives, and its
// place in the fragment hierarchy.
type Entry struct {
	Frag   xmltree.FragmentID
	Parent xmltree.FragmentID // NoParent for the root fragment
	Site   SiteID
	// Size is |F_j| in nodes; HybridParBoX uses the total to locate the
	// paper's tipping point card(F) vs |T|/|q|.
	Size int
	// Depth is the fragment's depth in the fragment tree (root = 0);
	// LazyParBoX evaluates level by level.
	Depth int
	// Children are the sub-fragments, in ascending ID order.
	Children []xmltree.FragmentID
}

// SourceTree is S_T of Section 2.1: the names of the sites storing the
// fragments of T and the fragment hierarchy. It is the only structure the
// evaluation and incremental-maintenance algorithms require.
type SourceTree struct {
	entries map[xmltree.FragmentID]*Entry
	root    xmltree.FragmentID
}

// BuildSourceTree derives the source tree of a forest under an assignment.
// Every fragment must be assigned a non-empty site.
func BuildSourceTree(f *Forest, assign Assignment) (*SourceTree, error) {
	st := &SourceTree{entries: make(map[xmltree.FragmentID]*Entry), root: f.RootID()}
	for _, id := range f.IDs() {
		fr := f.frags[id]
		site, ok := assign[id]
		if !ok || site == "" {
			return nil, fmt.Errorf("frag: fragment %d has no site assignment", id)
		}
		st.entries[id] = &Entry{Frag: id, Parent: fr.Parent, Site: site, Size: fr.Size()}
	}
	if err := st.finish(); err != nil {
		return nil, err
	}
	return st, nil
}

// SourceTreeFromEntries builds a source tree directly from entries
// (Children and Depth are derived; exactly one entry must have
// Parent == NoParent). The manifest layer of the CLI tools uses it.
func SourceTreeFromEntries(entries []Entry) (*SourceTree, error) {
	st := &SourceTree{entries: make(map[xmltree.FragmentID]*Entry, len(entries))}
	rootSet := false
	for _, e := range entries {
		if e.Site == "" {
			return nil, fmt.Errorf("frag: fragment %d has no site", e.Frag)
		}
		cp := e
		cp.Children = nil
		cp.Depth = 0
		if _, dup := st.entries[e.Frag]; dup {
			return nil, fmt.Errorf("frag: duplicate fragment %d", e.Frag)
		}
		st.entries[e.Frag] = &cp
		if e.Parent == NoParent {
			if rootSet {
				return nil, errors.New("frag: multiple root fragments")
			}
			st.root = e.Frag
			rootSet = true
		}
	}
	if !rootSet {
		return nil, errors.New("frag: no root fragment")
	}
	if err := st.finish(); err != nil {
		return nil, err
	}
	return st, nil
}

// finish derives Children, Depth and validates the parent structure.
func (st *SourceTree) finish() error {
	rootSeen := false
	for id, e := range st.entries {
		if e.Parent == NoParent {
			if id != st.root {
				return fmt.Errorf("frag: fragment %d has no parent but is not the root", id)
			}
			rootSeen = true
			continue
		}
		p, ok := st.entries[e.Parent]
		if !ok {
			return fmt.Errorf("frag: fragment %d has unknown parent %d", id, e.Parent)
		}
		p.Children = append(p.Children, id)
	}
	if !rootSeen {
		return errors.New("frag: source tree has no root entry")
	}
	for _, e := range st.entries {
		sort.Slice(e.Children, func(i, j int) bool { return e.Children[i] < e.Children[j] })
	}
	// Depths via BFS; also detects unreachable entries (cycles).
	visited := 0
	queue := []xmltree.FragmentID{st.root}
	st.entries[st.root].Depth = 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		visited++
		e := st.entries[id]
		for _, c := range e.Children {
			st.entries[c].Depth = e.Depth + 1
			queue = append(queue, c)
		}
	}
	if visited != len(st.entries) {
		return errors.New("frag: source tree contains unreachable fragments (cycle?)")
	}
	return nil
}

// Root returns the root fragment's ID.
func (st *SourceTree) Root() xmltree.FragmentID { return st.root }

// Count returns card(F).
func (st *SourceTree) Count() int { return len(st.entries) }

// Entry returns the entry for a fragment.
func (st *SourceTree) Entry(id xmltree.FragmentID) (*Entry, bool) {
	e, ok := st.entries[id]
	return e, ok
}

// Fragments returns all fragment IDs in ascending order.
func (st *SourceTree) Fragments() []xmltree.FragmentID {
	ids := make([]xmltree.FragmentID, 0, len(st.entries))
	for id := range st.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Sites returns the distinct sites, sorted. Stage 1 of ParBoX uses this to
// identify which sites hold at least one fragment.
func (st *SourceTree) Sites() []SiteID {
	set := make(map[SiteID]bool)
	for _, e := range st.entries {
		set[e.Site] = true
	}
	sites := make([]SiteID, 0, len(set))
	for s := range set {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return sites
}

// FragmentsAt returns the fragments stored at a site (card(F_Si) many),
// ascending.
func (st *SourceTree) FragmentsAt(site SiteID) []xmltree.FragmentID {
	var ids []xmltree.FragmentID
	for id, e := range st.entries {
		if e.Site == site {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Site returns the site storing a fragment.
func (st *SourceTree) Site(id xmltree.FragmentID) (SiteID, bool) {
	e, ok := st.entries[id]
	if !ok {
		return "", false
	}
	return e.Site, true
}

// TopoOrder returns fragments parents-first (the root first); reversing it
// gives the children-first order Procedure evalST solves in.
func (st *SourceTree) TopoOrder() []xmltree.FragmentID {
	out := make([]xmltree.FragmentID, 0, len(st.entries))
	queue := []xmltree.FragmentID{st.root}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		out = append(out, id)
		queue = append(queue, st.entries[id].Children...)
	}
	return out
}

// Levels returns fragments grouped by depth: Levels()[d] holds the
// fragments at depth d. LazyParBoX descends one level per step.
func (st *SourceTree) Levels() [][]xmltree.FragmentID {
	var levels [][]xmltree.FragmentID
	for _, id := range st.TopoOrder() {
		d := st.entries[id].Depth
		for len(levels) <= d {
			levels = append(levels, nil)
		}
		levels[d] = append(levels[d], id)
	}
	return levels
}

// TotalSize returns |T| as recorded in the source tree (sum of fragment
// sizes, which counts virtual placeholders; the over-count is exactly
// card(F)−1 and is irrelevant for the Hybrid tipping point).
func (st *SourceTree) TotalSize() int {
	total := 0
	for _, e := range st.entries {
		total += e.Size
	}
	return total
}

// Clone returns a deep copy; sites in FullDistParBoX each hold one.
func (st *SourceTree) Clone() *SourceTree {
	c := &SourceTree{entries: make(map[xmltree.FragmentID]*Entry, len(st.entries)), root: st.root}
	for id, e := range st.entries {
		ce := *e
		ce.Children = append([]xmltree.FragmentID(nil), e.Children...)
		c.entries[id] = &ce
	}
	return c
}

// SetEntry inserts or replaces an entry and recomputes the derived
// structure; the incremental-maintenance layer uses it for
// splitFragments/mergeFragments updates. Children/Depth of the passed entry
// are ignored (they are derived).
func (st *SourceTree) SetEntry(e Entry) error {
	e.Children = nil
	cp := e
	st.entries[e.Frag] = &cp
	return st.rebuild()
}

// RemoveEntry deletes a fragment from the source tree (it must be a leaf).
func (st *SourceTree) RemoveEntry(id xmltree.FragmentID) error {
	e, ok := st.entries[id]
	if !ok {
		return fmt.Errorf("frag: no source-tree entry for fragment %d", id)
	}
	if len(e.Children) > 0 {
		return fmt.Errorf("frag: fragment %d still has sub-fragments", id)
	}
	delete(st.entries, id)
	return st.rebuild()
}

func (st *SourceTree) rebuild() error {
	for _, e := range st.entries {
		e.Children = nil
		e.Depth = 0
	}
	return st.finish()
}

// String renders the source tree as an indented outline, for logs and the
// experiment harness.
func (st *SourceTree) String() string {
	var b strings.Builder
	var rec func(id xmltree.FragmentID)
	rec = func(id xmltree.FragmentID) {
		e := st.entries[id]
		fmt.Fprintf(&b, "%sF%d @ %s (%d nodes)\n", strings.Repeat("  ", e.Depth), id, e.Site, e.Size)
		for _, c := range e.Children {
			rec(c)
		}
	}
	rec(st.root)
	return b.String()
}

// ErrBadSourceTree is wrapped by decoding failures.
var ErrBadSourceTree = errors.New("frag: malformed source tree encoding")

// Encode serializes the source tree (entry count, then per entry: fragment
// ID, parent+1, size, site string). Its size is O(card(F)) — the storage
// overhead per site that Section 4 calls "minimum".
func (st *SourceTree) Encode() []byte {
	dst := binary.AppendUvarint(nil, uint64(len(st.entries)))
	for _, id := range st.Fragments() {
		e := st.entries[id]
		dst = binary.AppendUvarint(dst, uint64(uint32(e.Frag)))
		dst = binary.AppendUvarint(dst, uint64(e.Parent+1))
		dst = binary.AppendUvarint(dst, uint64(e.Size))
		dst = binary.AppendUvarint(dst, uint64(len(e.Site)))
		dst = append(dst, e.Site...)
	}
	return dst
}

// DecodeSourceTree parses an encoded source tree and validates it.
func DecodeSourceTree(buf []byte) (*SourceTree, error) {
	pos := 0
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrBadSourceTree, pos)
		}
		pos += n
		return v, nil
	}
	count, err := uvarint()
	if err != nil {
		return nil, err
	}
	if count == 0 || count > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: bad entry count %d", ErrBadSourceTree, count)
	}
	st := &SourceTree{entries: make(map[xmltree.FragmentID]*Entry, count)}
	rootSet := false
	for i := uint64(0); i < count; i++ {
		fragRaw, err := uvarint()
		if err != nil {
			return nil, err
		}
		parentRaw, err := uvarint()
		if err != nil {
			return nil, err
		}
		size, err := uvarint()
		if err != nil {
			return nil, err
		}
		n, err := uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(buf)-pos) {
			return nil, fmt.Errorf("%w: site name length %d exceeds buffer", ErrBadSourceTree, n)
		}
		site := SiteID(buf[pos : pos+int(n)])
		pos += int(n)
		e := &Entry{
			Frag:   xmltree.FragmentID(uint32(fragRaw)),
			Parent: xmltree.FragmentID(uint32(parentRaw)) - 1,
			Site:   site,
			Size:   int(size),
		}
		if _, dup := st.entries[e.Frag]; dup {
			return nil, fmt.Errorf("%w: duplicate fragment %d", ErrBadSourceTree, e.Frag)
		}
		st.entries[e.Frag] = e
		if e.Parent == NoParent {
			if rootSet {
				return nil, fmt.Errorf("%w: multiple roots", ErrBadSourceTree)
			}
			st.root = e.Frag
			rootSet = true
		}
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSourceTree, len(buf)-pos)
	}
	if !rootSet {
		return nil, fmt.Errorf("%w: no root entry", ErrBadSourceTree)
	}
	if err := st.finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSourceTree, err)
	}
	return st, nil
}

// AssignRoundRobin distributes fragments over sites round-robin in ID
// order, always pinning the root fragment to the first site (the
// coordinator in the experiments).
func AssignRoundRobin(f *Forest, sites []SiteID) Assignment {
	a := make(Assignment, f.Count())
	ids := f.IDs()
	a[f.RootID()] = sites[0]
	i := 1
	for _, id := range ids {
		if id == f.RootID() {
			continue
		}
		a[id] = sites[i%len(sites)]
		i++
	}
	return a
}

// AssignAll maps every fragment to one site.
func AssignAll(f *Forest, site SiteID) Assignment {
	a := make(Assignment, f.Count())
	for _, id := range f.IDs() {
		a[id] = site
	}
	return a
}

package frag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

// fig2 builds the running example of Fig. 2 of the paper: the portfolio
// document split into fragments F0..F3, with F2 a sub-fragment of F1 and
// F1, F3 sub-fragments of F0.
func fig2(t *testing.T) (*Forest, *xmltree.Node) {
	t.Helper()
	stock := func(code, buy, sell string) *xmltree.Node {
		return xmltree.NewElement("stock", "",
			xmltree.NewElement("code", code),
			xmltree.NewElement("buy", buy),
			xmltree.NewElement("sell", sell))
	}
	merillMarket := xmltree.NewElement("market", "",
		xmltree.NewElement("name", "NASDAQ"),
		stock("GOOG", "370", "372"),
		stock("AAPL", "71", "65"))
	bacheNasdaq := xmltree.NewElement("market", "",
		xmltree.NewElement("name", "NASDAQ"),
		stock("GOOG", "374", "373"),
		stock("YHOO", "33", "35"))
	doc := xmltree.NewElement("portofolio", "",
		xmltree.NewElement("broker", "",
			xmltree.NewElement("name", "Merill Lynch"),
			merillMarket),
		xmltree.NewElement("broker", "",
			xmltree.NewElement("name", "Bache"),
			xmltree.NewElement("market", "",
				xmltree.NewElement("name", "NYSE"),
				stock("IBM", "80", "78")),
			bacheNasdaq))
	orig := doc.Clone()
	f := NewForest(doc)
	// F1 = Merill Lynch's market subtree; F2 = a stock inside F1; F3 =
	// Bache's NASDAQ market.
	f1, err := f.Split(merillMarket)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != 1 {
		t.Fatalf("first split got ID %d, want 1", f1)
	}
	f2, err := f.Split(merillMarket.FindAll("stock")[0])
	if err != nil {
		t.Fatal(err)
	}
	f3, err := f.Split(bacheNasdaq)
	if err != nil {
		t.Fatal(err)
	}
	if f2 != 2 || f3 != 3 {
		t.Fatalf("split IDs = %d, %d; want 2, 3", f2, f3)
	}
	return f, orig
}

func TestSplitStructure(t *testing.T) {
	f, _ := fig2(t)
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if f.Count() != 4 {
		t.Fatalf("Count = %d, want 4", f.Count())
	}
	f1, _ := f.Fragment(1)
	if f1.Parent != 0 {
		t.Errorf("F1 parent = %d, want 0", f1.Parent)
	}
	f2, _ := f.Fragment(2)
	if f2.Parent != 1 {
		t.Errorf("F2 parent = %d, want 1 (nested fragment)", f2.Parent)
	}
	f3, _ := f.Fragment(3)
	if f3.Parent != 0 {
		t.Errorf("F3 parent = %d, want 0", f3.Parent)
	}
	if subs := f1.SubFragments(); len(subs) != 1 || subs[0] != 2 {
		t.Errorf("F1 sub-fragments = %v, want [2]", subs)
	}
}

func TestSplitErrors(t *testing.T) {
	doc := xmltree.NewElement("r", "", xmltree.NewElement("a", ""))
	f := NewForest(doc)
	if _, err := f.Split(doc); err == nil {
		t.Error("splitting at the root fragment root must fail")
	}
	if _, err := f.Split(doc.Children[0]); err != nil {
		t.Fatalf("split: %v", err)
	}
	v := doc.VirtualNodes()[0]
	if _, err := f.Split(v); err == nil {
		t.Error("splitting at a virtual node must fail")
	}
	foreign := xmltree.NewElement("x", "", xmltree.NewElement("y", ""))
	if _, err := f.Split(foreign.Children[0]); err == nil {
		t.Error("splitting a foreign node must fail")
	}
}

func TestAssembleMatchesOriginal(t *testing.T) {
	f, orig := fig2(t)
	got, err := f.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig) {
		t.Errorf("Assemble mismatch:\n got %v\nwant %v", got, orig)
	}
	// Assemble must not consume the forest.
	if f.Count() != 4 {
		t.Errorf("Assemble consumed the forest: %d fragments left", f.Count())
	}
}

func TestMergeInverseOfSplit(t *testing.T) {
	f, orig := fig2(t)
	root, err := f.MergeAll()
	if err != nil {
		t.Fatal(err)
	}
	if !root.Equal(orig) {
		t.Errorf("MergeAll mismatch:\n got %v\nwant %v", root, orig)
	}
	if f.Count() != 1 {
		t.Errorf("Count after MergeAll = %d, want 1", f.Count())
	}
}

func TestMergeNonVirtualNoop(t *testing.T) {
	f, _ := fig2(t)
	fr, _ := f.Fragment(0)
	if err := f.Merge(fr.Root.Children[0]); err != nil {
		t.Errorf("merge of non-virtual node must be a no-op, got %v", err)
	}
	if f.Count() != 4 {
		t.Errorf("no-op merge changed the forest")
	}
}

func TestMergeReparentsGrandchildren(t *testing.T) {
	f, _ := fig2(t)
	// Merging F1 into F0 must make F2 a child of F0.
	f0, _ := f.Fragment(0)
	for _, v := range f0.Root.VirtualNodes() {
		if v.Frag == 1 {
			if err := f.Merge(v); err != nil {
				t.Fatal(err)
			}
		}
	}
	f2, _ := f.Fragment(2)
	if f2.Parent != 0 {
		t.Errorf("F2 parent after merging F1 = %d, want 0", f2.Parent)
	}
	if err := f.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTotalSize(t *testing.T) {
	f, orig := fig2(t)
	if got, want := f.TotalSize(), orig.Size(); got != want {
		t.Errorf("TotalSize = %d, want %d", got, want)
	}
}

// TestPropSplitAssembleIdentity: random splits never change the assembled
// document.
func TestPropSplitAssembleIdentity(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw%80)
		k := int(kRaw % 10)
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: n})
		orig := tree.Clone()
		forest := NewForest(tree)
		if err := forest.SplitRandom(r, k); err != nil {
			return false
		}
		if forest.Validate() != nil {
			return false
		}
		got, err := forest.Assemble()
		if err != nil {
			return false
		}
		if !got.Equal(orig) {
			return false
		}
		// And merge-all restores the original too.
		root, err := forest.MergeAll()
		return err == nil && root.Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func buildST(t *testing.T) (*Forest, *SourceTree) {
	t.Helper()
	f, _ := fig2(t)
	// Assignment of Fig. 2(b): F0→S0, F1→S1, F2 and F3→S2.
	st, err := BuildSourceTree(f, Assignment{0: "S0", 1: "S1", 2: "S2", 3: "S2"})
	if err != nil {
		t.Fatal(err)
	}
	return f, st
}

func TestSourceTreeStructure(t *testing.T) {
	_, st := buildST(t)
	if st.Root() != 0 || st.Count() != 4 {
		t.Fatalf("Root=%d Count=%d", st.Root(), st.Count())
	}
	sites := st.Sites()
	if len(sites) != 3 || sites[0] != "S0" || sites[2] != "S2" {
		t.Errorf("Sites = %v", sites)
	}
	if got := st.FragmentsAt("S2"); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("FragmentsAt(S2) = %v, want [2 3]", got)
	}
	e1, _ := st.Entry(1)
	if e1.Depth != 1 || e1.Parent != 0 {
		t.Errorf("F1 entry = %+v", e1)
	}
	e2, _ := st.Entry(2)
	if e2.Depth != 2 {
		t.Errorf("F2 depth = %d, want 2", e2.Depth)
	}
	levels := st.Levels()
	if len(levels) != 3 || len(levels[0]) != 1 || len(levels[1]) != 2 || len(levels[2]) != 1 {
		t.Errorf("Levels = %v", levels)
	}
	topo := st.TopoOrder()
	pos := make(map[xmltree.FragmentID]int)
	for i, id := range topo {
		pos[id] = i
	}
	for _, id := range st.Fragments() {
		e, _ := st.Entry(id)
		if e.Parent != NoParent && pos[e.Parent] > pos[id] {
			t.Errorf("TopoOrder: parent %d after child %d", e.Parent, id)
		}
	}
}

func TestBuildSourceTreeErrors(t *testing.T) {
	f, _ := fig2(t)
	if _, err := BuildSourceTree(f, Assignment{0: "S0"}); err == nil {
		t.Error("missing assignments must fail")
	}
	if _, err := BuildSourceTree(f, Assignment{0: "S0", 1: "", 2: "S2", 3: "S2"}); err == nil {
		t.Error("empty site must fail")
	}
}

func TestSourceTreeCodec(t *testing.T) {
	_, st := buildST(t)
	got, err := DecodeSourceTree(st.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Root() != st.Root() || got.Count() != st.Count() {
		t.Fatalf("round trip root/count mismatch")
	}
	for _, id := range st.Fragments() {
		a, _ := st.Entry(id)
		b, _ := got.Entry(id)
		if a.Parent != b.Parent || a.Site != b.Site || a.Size != b.Size || a.Depth != b.Depth {
			t.Errorf("entry %d: got %+v, want %+v", id, b, a)
		}
	}
}

func TestDecodeSourceTreeErrors(t *testing.T) {
	_, st := buildST(t)
	good := st.Encode()
	cases := [][]byte{
		nil,
		{0},                                   // zero entries
		good[:len(good)-1],                    // truncated
		append(good, 0),                       // trailing
		{1, 5, 7, 0, 0},                       // single entry with non-root parent (unknown)
		{2, 0, 0, 0, 1, 'a', 0, 0, 0, 1, 'a'}, // duplicate fragment 0 / two roots
	}
	for i, buf := range cases {
		if _, err := DecodeSourceTree(buf); err == nil {
			t.Errorf("case %d: DecodeSourceTree succeeded, want error", i)
		}
	}
}

func TestSetRemoveEntry(t *testing.T) {
	_, st := buildST(t)
	// Simulate splitFragments: F4 under F0 at a new site S3.
	if err := st.SetEntry(Entry{Frag: 4, Parent: 0, Site: "S3", Size: 7}); err != nil {
		t.Fatal(err)
	}
	e4, ok := st.Entry(4)
	if !ok || e4.Depth != 1 {
		t.Fatalf("F4 entry = %+v, ok=%v", e4, ok)
	}
	if err := st.RemoveEntry(4); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Entry(4); ok {
		t.Error("F4 still present after RemoveEntry")
	}
	// Removing a fragment with children must fail.
	if err := st.RemoveEntry(1); err == nil {
		t.Error("RemoveEntry(F1) must fail: F2 is its child")
	}
}

func TestCloneIndependence(t *testing.T) {
	_, st := buildST(t)
	c := st.Clone()
	if err := c.SetEntry(Entry{Frag: 9, Parent: 0, Site: "S9", Size: 1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Entry(9); ok {
		t.Error("mutating the clone leaked into the original")
	}
}

func TestAssignHelpers(t *testing.T) {
	f, _ := fig2(t)
	a := AssignRoundRobin(f, []SiteID{"S0", "S1", "S2"})
	if a[0] != "S0" {
		t.Errorf("root fragment must go to the first site, got %s", a[0])
	}
	if len(a) != 4 {
		t.Errorf("assignment covers %d fragments, want 4", len(a))
	}
	b := AssignAll(f, "X")
	for id, s := range b {
		if s != "X" {
			t.Errorf("AssignAll: fragment %d at %s", id, s)
		}
	}
}

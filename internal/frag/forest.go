// Package frag implements the fragmentation model of Section 2.1 of the
// paper: an XML tree decomposed into a collection of disjoint fragments,
// each of which may contain virtual nodes pointing at its sub-fragments.
// The package also provides the source tree S_T — the only structure the
// distributed algorithms require — and the splitFragments/mergeFragments
// primitives of Section 5.
//
// No constraints are imposed on the fragmentation: fragments may nest
// arbitrarily, appear at any level and have any size, exactly as the paper
// demands ("our fragmentation setting is the most generic possible").
package frag

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/xmltree"
)

// NoParent marks the root fragment's parent slot.
const NoParent xmltree.FragmentID = -1

// Fragment is one piece of a fragmented document: a subtree whose leaves
// may include virtual nodes standing for its sub-fragments.
type Fragment struct {
	ID     xmltree.FragmentID
	Parent xmltree.FragmentID // NoParent for the root fragment
	Root   *xmltree.Node
}

// Size returns |F_j|, the node count of the fragment including virtual
// placeholders.
func (f *Fragment) Size() int { return f.Root.Size() }

// SubFragments returns the IDs referenced by the fragment's virtual nodes,
// in document order.
func (f *Fragment) SubFragments() []xmltree.FragmentID {
	var ids []xmltree.FragmentID
	for _, v := range f.Root.VirtualNodes() {
		ids = append(ids, v.Frag)
	}
	return ids
}

// Forest is a fragmented document: a set of fragments linked by virtual
// nodes, rooted at the root fragment. Forest owns its trees; callers must
// not retain references into them across Split/Merge calls.
type Forest struct {
	frags  map[xmltree.FragmentID]*Fragment
	rootID xmltree.FragmentID
	nextID xmltree.FragmentID
	// versions tracks a monotonic per-fragment version, bumped whenever a
	// fragment's tree changes shape through Split/Merge. Deployed sites
	// keep their own counters for serving-time maintenance; the forest's
	// counters cover pre-deployment refragmentation, so any cache keyed on
	// (fragment, version) can treat "version changed" as "content may have
	// changed" across both stages.
	versions map[xmltree.FragmentID]uint64
}

// NewForest wraps a whole tree as a single root fragment with ID 0.
func NewForest(root *xmltree.Node) *Forest {
	f := &Forest{
		frags:    make(map[xmltree.FragmentID]*Fragment),
		rootID:   0,
		nextID:   1,
		versions: make(map[xmltree.FragmentID]uint64),
	}
	f.frags[0] = &Fragment{ID: 0, Parent: NoParent, Root: root}
	f.versions[0] = 1
	return f
}

// FromFragments reconstructs a forest from fragments gathered elsewhere
// (NaiveCentralized reassembles the document from shipped fragments this
// way). The result is validated.
func FromFragments(frs []*Fragment, rootID xmltree.FragmentID) (*Forest, error) {
	f := &Forest{
		frags:    make(map[xmltree.FragmentID]*Fragment, len(frs)),
		rootID:   rootID,
		versions: make(map[xmltree.FragmentID]uint64, len(frs)),
	}
	for _, fr := range frs {
		if _, dup := f.frags[fr.ID]; dup {
			return nil, fmt.Errorf("frag: duplicate fragment %d", fr.ID)
		}
		f.frags[fr.ID] = fr
		f.versions[fr.ID] = 1
		if fr.ID >= f.nextID {
			f.nextID = fr.ID + 1
		}
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// RootID returns the root fragment's ID.
func (f *Forest) RootID() xmltree.FragmentID { return f.rootID }

// Count returns card(F), the number of fragments.
func (f *Forest) Count() int { return len(f.frags) }

// IDs returns all fragment IDs in ascending order.
func (f *Forest) IDs() []xmltree.FragmentID {
	ids := make([]xmltree.FragmentID, 0, len(f.frags))
	for id := range f.frags {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Fragment returns the fragment with the given ID.
func (f *Forest) Fragment(id xmltree.FragmentID) (*Fragment, bool) {
	fr, ok := f.frags[id]
	return fr, ok
}

// TotalSize returns |T|: the number of real (non-virtual) nodes across all
// fragments.
func (f *Forest) TotalSize() int {
	total := 0
	for _, fr := range f.frags {
		fr.Root.Walk(func(n *xmltree.Node) {
			if !n.Virtual {
				total++
			}
		})
	}
	return total
}

// owner returns the fragment containing node n by climbing to its root.
func (f *Forest) owner(n *xmltree.Node) (*Fragment, error) {
	top := n
	for top.Parent != nil {
		top = top.Parent
	}
	for _, fr := range f.frags {
		if fr.Root == top {
			return fr, nil
		}
	}
	return nil, errors.New("frag: node does not belong to this forest")
}

// Split is splitFragments(v) of Section 5: the subtree rooted at v becomes
// a new fragment, and v's place in its old fragment is taken by a virtual
// node. The new fragment's ID is returned. v must be a non-virtual,
// non-fragment-root node of some fragment of the forest.
func (f *Forest) Split(v *xmltree.Node) (xmltree.FragmentID, error) {
	if v.Virtual {
		return 0, errors.New("frag: cannot split at a virtual node")
	}
	if v.Parent == nil {
		return 0, errors.New("frag: cannot split at a fragment root")
	}
	owner, err := f.owner(v)
	if err != nil {
		return 0, err
	}
	id := f.nextID
	f.nextID++
	if !v.Parent.ReplaceChild(v, xmltree.NewVirtual(id)) {
		return 0, errors.New("frag: node is not a child of its parent (corrupt tree)")
	}
	f.frags[id] = &Fragment{ID: id, Parent: owner.ID, Root: v}
	// Both trees changed shape: the owner lost a subtree, the new fragment
	// came into being.
	f.versions[owner.ID]++
	f.versions[id]++
	// Sub-fragments referenced from the moved subtree now hang off the new
	// fragment.
	for _, sub := range f.frags[id].SubFragments() {
		f.frags[sub].Parent = id
	}
	return id, nil
}

// Version returns the fragment's monotonic version (0 if it never existed
// in this forest). It advances on every Split/Merge touching the fragment.
func (f *Forest) Version(id xmltree.FragmentID) uint64 { return f.versions[id] }

// Merge is mergeFragments(v) of Section 5: the virtual node v is replaced
// by the subtree of the fragment it refers to, which disappears as a
// separate fragment. Merging a non-virtual node is a no-op, as in the
// paper ("if v is not virtual, no action is taken").
func (f *Forest) Merge(v *xmltree.Node) error {
	if !v.Virtual {
		return nil
	}
	child, ok := f.frags[v.Frag]
	if !ok {
		return fmt.Errorf("frag: virtual node refers to unknown fragment %d", v.Frag)
	}
	owner, err := f.owner(v)
	if err != nil {
		return err
	}
	if child.Parent != owner.ID {
		return fmt.Errorf("frag: fragment %d is a sub-fragment of %d, not of %d",
			child.ID, child.Parent, owner.ID)
	}
	if !v.Parent.ReplaceChild(v, child.Root) {
		return errors.New("frag: virtual node is not a child of its parent (corrupt tree)")
	}
	delete(f.frags, child.ID)
	// The owner absorbed a subtree; the child is gone but its counter stays
	// monotonic in case the id is ever reused.
	f.versions[owner.ID]++
	f.versions[child.ID]++
	// Grandchildren become children of the merged-into fragment.
	for _, sub := range child.SubFragments() {
		f.frags[sub].Parent = owner.ID
	}
	return nil
}

// MergeAll repeatedly merges until a single fragment remains, returning the
// reassembled document root. The forest is consumed.
func (f *Forest) MergeAll() (*xmltree.Node, error) {
	for len(f.frags) > 1 {
		merged := false
		root := f.frags[f.rootID]
		for _, v := range root.Root.VirtualNodes() {
			if err := f.Merge(v); err != nil {
				return nil, err
			}
			merged = true
		}
		if !merged {
			return nil, errors.New("frag: dangling fragments unreachable from the root")
		}
	}
	return f.frags[f.rootID].Root, nil
}

// Assemble reconstructs the whole document as a fresh tree, leaving the
// forest untouched. It is the reference against which the distributed
// algorithms are differentially tested.
func (f *Forest) Assemble() (*xmltree.Node, error) {
	return f.assemble(f.rootID, make(map[xmltree.FragmentID]bool))
}

func (f *Forest) assemble(id xmltree.FragmentID, busy map[xmltree.FragmentID]bool) (*xmltree.Node, error) {
	if busy[id] {
		return nil, fmt.Errorf("frag: fragment cycle through %d", id)
	}
	busy[id] = true
	defer delete(busy, id)
	fr, ok := f.frags[id]
	if !ok {
		return nil, fmt.Errorf("frag: missing fragment %d", id)
	}
	clone := fr.Root.Clone()
	for _, v := range clone.VirtualNodes() {
		sub, err := f.assemble(v.Frag, busy)
		if err != nil {
			return nil, err
		}
		if !v.Parent.ReplaceChild(v, sub) {
			return nil, errors.New("frag: corrupt clone")
		}
	}
	return clone, nil
}

// Validate checks the forest invariants: the root fragment exists, every
// virtual node references an existing fragment whose Parent matches, every
// non-root fragment is referenced by exactly one virtual node, and the
// parent relation is acyclic.
func (f *Forest) Validate() error {
	if _, ok := f.frags[f.rootID]; !ok {
		return errors.New("frag: missing root fragment")
	}
	refs := make(map[xmltree.FragmentID]int)
	for _, fr := range f.frags {
		if err := xmltree.Validate(fr.Root); err != nil {
			return fmt.Errorf("frag: fragment %d: %w", fr.ID, err)
		}
		for _, sub := range fr.SubFragments() {
			child, ok := f.frags[sub]
			if !ok {
				return fmt.Errorf("frag: fragment %d references missing fragment %d", fr.ID, sub)
			}
			if child.Parent != fr.ID {
				return fmt.Errorf("frag: fragment %d has parent %d but is referenced by %d",
					sub, child.Parent, fr.ID)
			}
			refs[sub]++
		}
	}
	for id, fr := range f.frags {
		if id == f.rootID {
			if fr.Parent != NoParent {
				return fmt.Errorf("frag: root fragment has parent %d", fr.Parent)
			}
			continue
		}
		if refs[id] != 1 {
			return fmt.Errorf("frag: fragment %d referenced by %d virtual nodes, want 1", id, refs[id])
		}
	}
	// Acyclicity: climb each fragment's parent chain.
	for id := range f.frags {
		seen := make(map[xmltree.FragmentID]bool)
		for cur := id; cur != NoParent; cur = f.frags[cur].Parent {
			if seen[cur] {
				return fmt.Errorf("frag: parent cycle through fragment %d", cur)
			}
			seen[cur] = true
		}
	}
	return nil
}

// SplitRandom performs k random splits, turning the forest into k+count
// fragments. Eligible split points are non-root, non-virtual nodes; if a
// fragment runs out of eligible nodes it simply is not split further. It is
// deterministic in r.
func (f *Forest) SplitRandom(r *rand.Rand, k int) error {
	for i := 0; i < k; i++ {
		var eligible []*xmltree.Node
		ids := f.IDs()
		for _, id := range ids {
			fr := f.frags[id]
			fr.Root.Walk(func(n *xmltree.Node) {
				if !n.Virtual && n.Parent != nil {
					eligible = append(eligible, n)
				}
			})
		}
		if len(eligible) == 0 {
			return nil
		}
		if _, err := f.Split(eligible[r.Intn(len(eligible))]); err != nil {
			return err
		}
	}
	return nil
}

package frag

import (
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func TestFromFragments(t *testing.T) {
	f, orig := fig2(t)
	// Rebuild the forest from its parts, as NaiveCentralized does with
	// shipped fragments.
	var parts []*Fragment
	for _, id := range f.IDs() {
		fr, _ := f.Fragment(id)
		parts = append(parts, &Fragment{ID: fr.ID, Parent: fr.Parent, Root: fr.Root.Clone()})
	}
	rebuilt, err := FromFragments(parts, 0)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := rebuilt.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Equal(orig) {
		t.Error("FromFragments + Assemble does not reproduce the document")
	}
}

func TestFromFragmentsErrors(t *testing.T) {
	a := &Fragment{ID: 0, Parent: NoParent, Root: xmltree.NewElement("r", "")}
	if _, err := FromFragments([]*Fragment{a, a}, 0); err == nil {
		t.Error("duplicate fragment accepted")
	}
	// Missing root.
	b := &Fragment{ID: 1, Parent: 0, Root: xmltree.NewElement("s", "")}
	if _, err := FromFragments([]*Fragment{b}, 0); err == nil {
		t.Error("missing root accepted")
	}
	// Dangling sub-fragment reference.
	c := &Fragment{ID: 0, Parent: NoParent,
		Root: xmltree.NewElement("r", "", xmltree.NewVirtual(9))}
	if _, err := FromFragments([]*Fragment{c}, 0); err == nil {
		t.Error("dangling virtual reference accepted")
	}
}

func TestSourceTreeSiteAndTotalSize(t *testing.T) {
	_, st := buildST(t)
	site, ok := st.Site(2)
	if !ok || site != "S2" {
		t.Errorf("Site(2) = %s, %v", site, ok)
	}
	if _, ok := st.Site(99); ok {
		t.Error("Site(99) should not exist")
	}
	// TotalSize counts fragment sizes (virtual placeholders included).
	total := 0
	for _, id := range st.Fragments() {
		e, _ := st.Entry(id)
		total += e.Size
	}
	if got := st.TotalSize(); got != total {
		t.Errorf("TotalSize = %d, want %d", got, total)
	}
	s := st.String()
	for _, want := range []string{"F0 @ S0", "F1 @ S1", "  F2 @ S2", "F3 @ S2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestSourceTreeFromEntriesHappyPath(t *testing.T) {
	st, err := SourceTreeFromEntries([]Entry{
		{Frag: 0, Parent: NoParent, Site: "A", Size: 10},
		{Frag: 1, Parent: 0, Site: "B", Size: 5},
		{Frag: 2, Parent: 1, Site: "A", Size: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Root() != 0 || st.Count() != 3 {
		t.Fatalf("root %d count %d", st.Root(), st.Count())
	}
	e2, _ := st.Entry(2)
	if e2.Depth != 2 {
		t.Errorf("F2 depth = %d", e2.Depth)
	}
	if got := st.FragmentsAt("A"); len(got) != 2 {
		t.Errorf("FragmentsAt(A) = %v", got)
	}
	// Cycles must be rejected.
	if _, err := SourceTreeFromEntries([]Entry{
		{Frag: 0, Parent: NoParent, Site: "A"},
		{Frag: 1, Parent: 2, Site: "A"},
		{Frag: 2, Parent: 1, Site: "A"},
	}); err == nil {
		t.Error("cycle accepted")
	}
	// Unknown parent must be rejected.
	if _, err := SourceTreeFromEntries([]Entry{
		{Frag: 0, Parent: NoParent, Site: "A"},
		{Frag: 1, Parent: 9, Site: "A"},
	}); err == nil {
		t.Error("unknown parent accepted")
	}
}

func TestMergeErrors(t *testing.T) {
	f, _ := fig2(t)
	// A virtual node pointing at an unknown fragment.
	ghost := xmltree.NewVirtual(42)
	fr, _ := f.Fragment(0)
	fr.Root.AppendChild(ghost)
	if err := f.Merge(ghost); err == nil {
		t.Error("merge of unknown fragment accepted")
	}
	fr.Root.RemoveChild(ghost)
	// A virtual node for a fragment whose parent does not match.
	wrong := xmltree.NewVirtual(2) // F2's parent is F1, not F0
	fr.Root.AppendChild(wrong)
	if err := f.Merge(wrong); err == nil {
		t.Error("merge with mismatched parent accepted")
	}
}

func TestMergeAllDangling(t *testing.T) {
	f, _ := fig2(t)
	// Orphan F2 by removing F1's virtual node: MergeAll cannot finish.
	f1, _ := f.Fragment(1)
	for _, v := range f1.Root.VirtualNodes() {
		v.Parent.RemoveChild(v)
	}
	if _, err := f.MergeAll(); err == nil {
		t.Error("MergeAll with dangling fragments must fail")
	}
}

func TestAssembleMissingFragment(t *testing.T) {
	f, _ := fig2(t)
	delete(f.frags, 2)
	if _, err := f.Assemble(); err == nil {
		t.Error("Assemble with a missing fragment must fail")
	}
}

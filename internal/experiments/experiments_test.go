package experiments

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

// testConfig keeps compute dominant over latency (as at the paper's scale)
// while staying fast: 50 paper-MB ≈ 20k nodes.
func testConfig() Config {
	return Config{NodesPerMB: 400, Seed: 1, MaxMachines: 8}
}

func TestFig7Shape(t *testing.T) {
	fig, err := Fig7(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 8 {
		t.Fatalf("%d rows", len(fig.Rows))
	}
	// ParBoX benefits from parallelism: the 8-machine run beats the
	// 1-machine run clearly.
	p1, _ := fig.Get(1, "ParBox")
	p8, _ := fig.Get(8, "ParBox")
	if p8 >= p1*0.7 {
		t.Errorf("no parallel speedup: ParBox(1)=%v ParBox(8)=%v", p1, p8)
	}
	// NaiveCentralized stays above ParBoX once data actually moves.
	for _, n := range []float64{2, 4, 8} {
		pb, _ := fig.Get(n, "ParBox")
		ce, _ := fig.Get(n, "Central")
		if ce <= pb {
			t.Errorf("n=%v: Central (%v) not above ParBox (%v)", n, ce, pb)
		}
	}
	// And the centralized baseline never drops below its own evaluation
	// lower bound (the 1-machine runtime), as the paper notes.
	c1, _ := fig.Get(1, "Central")
	for _, r := range fig.Rows {
		if r.Values["Central"] < c1*0.95 {
			t.Errorf("Central at n=%v (%v) fell below the eval lower bound %v", r.X, r.Values["Central"], c1)
		}
	}
	if !strings.Contains(fig.String(), "ParBox") {
		t.Error("rendering broken")
	}
}

func TestFig8Shape(t *testing.T) {
	fig, err := Fig8(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Runtime grows with |QList| at every machine count, and every series
	// keeps the parallel speedup.
	for _, r := range fig.Rows {
		q2 := r.Values["|QList|=2"]
		q23 := r.Values["|QList|=23"]
		if q23 <= q2 {
			t.Errorf("n=%v: |QList|=23 (%v) not above |QList|=2 (%v)", r.X, q23, q2)
		}
	}
	for _, s := range fig.Series {
		v1, _ := fig.Get(1, s)
		v8, _ := fig.Get(8, s)
		if v8 >= v1 {
			t.Errorf("%s: no speedup (%v → %v)", s, v1, v8)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	fig, err := Fig9(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// All three algorithms nearly identical when the query resolves at F0
	// (Lazy stops at depth ≤ 1; the others parallelize fully).
	for _, r := range fig.Rows {
		pb := r.Values["ParBox"]
		lz := r.Values["LZParBox"]
		fd := r.Values["FDParBox"]
		if lz > pb*1.8 {
			t.Errorf("n=%v: LZParBox (%v) should track ParBox (%v) for a depth-0 query", r.X, lz, pb)
		}
		if fd > pb*2.0 {
			t.Errorf("n=%v: FDParBox (%v) far above ParBox (%v)", r.X, fd, pb)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	fig, err := Fig10(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The Lazy runtime grows with depth (sequential descent) and clearly
	// exceeds ParBoX at the deepest point, while ParBoX ≈ FullDist.
	n := float64(8)
	pb, _ := fig.Get(n, "ParBox")
	lz, _ := fig.Get(n, "LZParBox")
	fd, _ := fig.Get(n, "FDParBox")
	if lz <= 1.5*pb {
		t.Errorf("LZParBox (%v) should clearly exceed ParBox (%v) when the target is F_n", lz, pb)
	}
	if fd > 2*pb {
		t.Errorf("FDParBox (%v) should track ParBox (%v)", fd, pb)
	}
	// Lazy is monotone-ish in n: the n=8 runtime exceeds the n=2 one.
	lz2, _ := fig.Get(2, "LZParBox")
	if lz <= lz2 {
		t.Errorf("LZParBox did not grow with depth: %v → %v", lz2, lz)
	}
}

func TestFig11Shape(t *testing.T) {
	cfg := testConfig()
	fig, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The middle-target runtime sits between ParBox and the deep-target
	// Lazy runtime.
	n := float64(8)
	pb, _ := fig.Get(n, "ParBox")
	lzMid, _ := fig.Get(n, "LZParBox")
	lzDeep, _ := deep.Get(n, "LZParBox")
	if lzMid < pb*0.9 {
		t.Errorf("LZParBox mid-target (%v) below ParBox (%v)?", lzMid, pb)
	}
	if lzMid > lzDeep*1.1 {
		t.Errorf("LZParBox mid-target (%v) above deep-target (%v)?", lzMid, lzDeep)
	}
}

func TestFig12Shape(t *testing.T) {
	fig, err := Fig12(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Linear-ish growth in data size for every query size; bigger queries
	// cost more on the same data.
	for _, s := range fig.Series {
		first := fig.Rows[0].Values[s]
		last := fig.Rows[len(fig.Rows)-1].Values[s]
		if last <= first {
			t.Errorf("%s: no growth with data size (%v → %v)", s, first, last)
		}
		// Roughly proportional: x grows ~3.8×; runtime should grow at
		// least 2× and at most ~8×.
		ratio := last / first
		if ratio < 2 || ratio > 8 {
			t.Errorf("%s: growth ratio %v, expected roughly linear", s, ratio)
		}
	}
	for _, r := range fig.Rows {
		if r.Values["|QList|=23"] <= r.Values["|QList|=2"] {
			t.Errorf("x=%v: larger query not more expensive", r.X)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	fig, err := Fig13(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Near-constant across fragment counts.
	min, max := fig.Rows[0].Values["ParBox"], fig.Rows[0].Values["ParBox"]
	for _, r := range fig.Rows {
		v := r.Values["ParBox"]
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max > min*1.15 {
		t.Errorf("Fig13 not flat: min %v, max %v", min, max)
	}
}

func TestTable4Guarantees(t *testing.T) {
	rows, err := Table4(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	byAlgo := make(map[core.Algorithm]Table4Row)
	for _, r := range rows {
		byAlgo[r.Algorithm] = r
	}
	// ParBoX: every site visited exactly once, even the one storing two
	// fragments.
	if r := byAlgo[core.AlgoParBoX]; r.MaxVisitsPerSite != 1 || r.VisitsAtSharedSite != 1 {
		t.Errorf("parbox visits: %+v", r)
	}
	// NaiveDistributed and FullDist visit the shared site once per
	// fragment stored there.
	if r := byAlgo[core.AlgoNaiveDistributed]; r.VisitsAtSharedSite != 2 {
		t.Errorf("distrib visits at shared site = %d, want 2", r.VisitsAtSharedSite)
	}
	if r := byAlgo[core.AlgoFullDist]; r.VisitsAtSharedSite < 2 {
		t.Errorf("fulldist visits at shared site = %d, want ≥ 2", r.VisitsAtSharedSite)
	}
	// Communication: centralized ships data, dwarfing ParBoX.
	if byAlgo[core.AlgoNaiveCentralized].Bytes < 5*byAlgo[core.AlgoParBoX].Bytes {
		t.Errorf("central bytes %d vs parbox %d: data shipping should dominate",
			byAlgo[core.AlgoNaiveCentralized].Bytes, byAlgo[core.AlgoParBoX].Bytes)
	}
	if s := FormatTable4(rows); !strings.Contains(s, "parbox") {
		t.Error("table rendering broken")
	}
}

func TestViewsExp(t *testing.T) {
	rows, err := ViewsExp(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// Traffic flat across 16× data growth (rows 0..2) up to varint width.
	if d := rows[2].Bytes - rows[0].Bytes; d > 8 || d < -8 {
		t.Errorf("maintenance traffic grew with data: %d vs %d", rows[0].Bytes, rows[2].Bytes)
	}
	// Only one site visited, always.
	for _, r := range rows {
		if r.SitesVisited != 1 {
			t.Errorf("update visited %d sites, want 1", r.SitesVisited)
		}
	}
	// Update-batch growth (row 3 → 4: 4 ops → 32 ops) adds only the
	// request's own op encoding, nothing data-dependent: under 1 KB.
	if d := rows[4].Bytes - rows[3].Bytes; d > 1024 {
		t.Errorf("maintenance traffic grew with update size by %d bytes", d)
	}
	// Localized recomputation: steps are bounded by one fragment's share.
	if rows[2].Steps >= 2*rows[0].Steps*16 {
		t.Errorf("steps grew superlinearly: %d vs %d", rows[0].Steps, rows[2].Steps)
	}
	if s := FormatViews(rows); !strings.Contains(s, "incr ms") {
		t.Error("views rendering broken")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.fill()
	if cfg.NodesPerMB <= 0 || cfg.Seed == 0 || cfg.MaxMachines != 10 {
		t.Errorf("fill() = %+v", cfg)
	}
	if cfg.Cost == (cluster.CostModel{}) {
		t.Error("cost model not defaulted")
	}
}

func TestSelectionExp(t *testing.T) {
	rows, err := SelectionExp(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Distributed selection must beat shipping the document, by a lot.
		if r.SelectBytes*10 > r.CentralBytes {
			t.Errorf("%s: select bytes %d not well below central %d", r.Query, r.SelectBytes, r.CentralBytes)
		}
		// Counting is never meaningfully more traffic than selecting (for
		// zero-match queries the count's fixed integer costs a couple of
		// bytes over the empty path list).
		if r.CountBytes > r.SelectBytes+16 {
			t.Errorf("%s: count bytes %d above select bytes %d", r.Query, r.CountBytes, r.SelectBytes)
		}
		// And when many nodes match, counting is strictly cheaper.
		if r.Matches > 100 && r.CountBytes >= r.SelectBytes {
			t.Errorf("%s: %d matches but count bytes %d ≥ select bytes %d",
				r.Query, r.Matches, r.CountBytes, r.SelectBytes)
		}
	}
	// The no-match query must skip pass 2 everywhere beyond the root.
	last := rows[len(rows)-1]
	if last.Matches != 0 {
		t.Fatalf("no-match query matched %d", last.Matches)
	}
	if s := FormatSelection(rows); !strings.Contains(s, "SQ1") {
		t.Error("rendering broken")
	}
}

package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/xmark"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// SelectionRow is one measurement of the Section 8 selection extension:
// SelectParBoX's traffic against the ship-everything baseline a
// centralized selection would pay.
type SelectionRow struct {
	Query        string
	Matches      int64
	SelectBytes  int64
	CountBytes   int64
	CentralBytes int64 // encoded size of all remote fragments (the baseline's transfer)
	SelectSimSec float64
	Pass2Visits  int64 // total pass-2 visits across sites (≤ card(F))
	SkippedFrags int
	TotalFrags   int
}

// SelectionExp measures the selection extension over a 6-fragment FT3-ish
// deployment: per named selection query, distributed selection/count
// traffic versus the centralized baseline, plus how many fragments the
// top-down pass never had to touch.
func SelectionExp(cfg Config) ([]SelectionRow, error) {
	cfg = cfg.fill()
	parents := []int{-1, 0, 0, 1, 1, 2}
	mbs := xmark.EvenMBs(24, 6)
	root, siteRoots, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       cfg.Seed,
		Parents:    parents,
		MBs:        mbs,
		NodesPerMB: cfg.NodesPerMB,
	})
	if err != nil {
		return nil, err
	}
	forest, err := xmark.Fragment(root, siteRoots)
	if err != nil {
		return nil, err
	}
	assign := make(frag.Assignment)
	for i := range parents {
		assign[xmltree.FragmentID(i)] = siteName(i % 4)
	}
	c := cluster.New(cfg.Cost)
	eng, err := core.Deploy(c, forest, assign)
	if err != nil {
		return nil, err
	}
	// The centralized baseline ships every remote fragment once.
	var centralBytes int64
	for _, id := range forest.IDs() {
		fr, _ := forest.Fragment(id)
		if assign[id] != eng.Coordinator() {
			centralBytes += int64(xmltree.EncodedSize(fr.Root))
		}
	}

	names := make([]string, 0, len(xmark.SelectionQueries))
	for name := range xmark.SelectionQueries {
		names = append(names, name)
	}
	sort.Strings(names)
	// A query that selects nothing demonstrates fragment skipping.
	names = append(names, "SQ0-no-match")
	queries := map[string]string{"SQ0-no-match": `nothing/here`}
	for k, v := range xmark.SelectionQueries {
		queries[k] = v
	}

	ctx := context.Background()
	var rows []SelectionRow
	for _, name := range names {
		src := queries[name]
		sp, err := xpath.CompileSelectString(src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		sel, err := eng.SelectParBoX(ctx, sp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		cnt, err := eng.CountParBoX(ctx, sp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if cnt.Count != int64(sel.Count) {
			return nil, fmt.Errorf("%s: count %d != selection %d", name, cnt.Count, sel.Count)
		}
		var pass2 int64
		for _, v := range sel.Visits {
			pass2 += v
		}
		// Pass 1 is one visit per remote site; the rest are pass 2.
		remoteSites := len(eng.SourceTree().Sites()) - 1
		pass2 -= int64(remoteSites)
		touched := len(sel.Paths)
		// Fragments with no selections may still have been visited; derive
		// skipped from pass-2 visits: each visit handles one fragment, and
		// coordinator-local fragments are handled for free. Report the
		// conservative measure: fragments that produced selections.
		rows = append(rows, SelectionRow{
			Query:        name,
			Matches:      cnt.Count,
			SelectBytes:  sel.Bytes,
			CountBytes:   cnt.Bytes,
			CentralBytes: centralBytes,
			SelectSimSec: sel.SimTime.Seconds(),
			Pass2Visits:  pass2,
			SkippedFrags: forest.Count() - touched,
			TotalFrags:   forest.Count(),
		})
	}
	return rows, nil
}

// FormatSelection renders the selection experiment.
func FormatSelection(rows []SelectionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Selection extension (Section 8) — 6 fragments / 4 sites, 24 paper-MB\n")
	fmt.Fprintf(&b, "%-18s %9s %12s %12s %14s %10s %12s\n",
		"query", "matches", "select B", "count B", "central B", "model-s", "pass2 visits")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %9d %12d %12d %14d %10.4f %12d\n",
			r.Query, r.Matches, r.SelectBytes, r.CountBytes, r.CentralBytes, r.SelectSimSec, r.Pass2Visits)
	}
	return b.String()
}

// Package experiments regenerates every figure and table of the paper's
// experimental study (Section 6) over the simulated cluster. Each
// Fig*/Table* function sweeps the same x-axis as the paper and returns a
// Figure whose series are the deterministic modeled runtimes (seconds) —
// see DESIGN.md §2 on the wall-clock → modeled-time substitution.
//
// cmd/parbox-bench prints the figures; bench_test.go wraps each in a
// testing.B benchmark; EXPERIMENTS.md records the measured shapes against
// the paper's.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/views"
	"repro/internal/xmark"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Config scales the experiments. The zero value is usable: paper-faithful
// sweeps at DefaultNodesPerMB.
type Config struct {
	// NodesPerMB converts paper megabytes to nodes
	// (xmark.DefaultNodesPerMB when 0). Benchmarks pass smaller values to
	// keep iterations fast; the figures' shapes are scale-invariant.
	NodesPerMB int
	// Seed for the workload generator (default 1).
	Seed int64
	// Cost is the LAN/CPU model (cluster.DefaultCostModel when zero).
	Cost cluster.CostModel
	// MaxMachines bounds the x-axis of the machine sweeps (default 10,
	// the paper's cluster size).
	MaxMachines int
}

func (c Config) fill() Config {
	if c.NodesPerMB <= 0 {
		c.NodesPerMB = xmark.DefaultNodesPerMB
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Cost == (cluster.CostModel{}) {
		c.Cost = cluster.DefaultCostModel()
	}
	if c.MaxMachines <= 0 {
		c.MaxMachines = 10
	}
	return c
}

// Figure is one reproduced plot: rows of x → series values (seconds,
// unless the Unit says otherwise).
type Figure struct {
	Name   string
	Title  string
	XLabel string
	Unit   string
	Series []string
	Rows   []Row
}

// Row is one x position of a figure.
type Row struct {
	X      float64
	Values map[string]float64
}

// String renders the figure as an aligned text table.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.Name, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s)
	}
	b.WriteByte('\n')
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-14.4g", r.X)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %14.4f", r.Values[s])
		}
		b.WriteByte('\n')
	}
	if f.Unit != "" {
		fmt.Fprintf(&b, "(values in %s)\n", f.Unit)
	}
	return b.String()
}

// Get returns a value from the figure (helper for assertions).
func (f *Figure) Get(x float64, series string) (float64, bool) {
	for _, r := range f.Rows {
		if r.X == x {
			v, ok := r.Values[series]
			return v, ok
		}
	}
	return 0, false
}

// deployTopology builds a document per the topology, fragments it, and
// deploys it on a fresh cluster with fragment i assigned by the site
// function.
func deployTopology(cfg Config, parents []int, mbs []float64, beacons []string,
	site func(i int) frag.SiteID) (*core.Engine, *cluster.Cluster, error) {
	root, siteRoots, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       cfg.Seed,
		Parents:    parents,
		MBs:        mbs,
		NodesPerMB: cfg.NodesPerMB,
		Beacons:    beacons,
	})
	if err != nil {
		return nil, nil, err
	}
	forest, err := xmark.Fragment(root, siteRoots)
	if err != nil {
		return nil, nil, err
	}
	assign := make(frag.Assignment, forest.Count())
	for i := range parents {
		assign[xmltree.FragmentID(i)] = site(i)
	}
	c := cluster.New(cfg.Cost)
	eng, err := core.Deploy(c, forest, assign)
	if err != nil {
		return nil, nil, err
	}
	return eng, c, nil
}

func siteName(i int) frag.SiteID { return frag.SiteID(fmt.Sprintf("S%d", i)) }

func seconds(d time.Duration) float64 { return d.Seconds() }

// Fig7 — Experiment 1: ParBoX vs NaiveCentralized over FT1, one fragment
// per machine, cumulative size fixed at 50 MB, |QList| = 8.
func Fig7(cfg Config) (*Figure, error) {
	cfg = cfg.fill()
	prog := xpath.MustCompileString(xmark.Queries[8])
	fig := &Figure{
		Name:   "Fig. 7",
		Title:  "ParBoX vs NaiveCentralized (50MB total, |QList|=8)",
		XLabel: "machines",
		Unit:   "model-seconds",
		Series: []string{"ParBox", "Central"},
	}
	ctx := context.Background()
	for n := 1; n <= cfg.MaxMachines; n++ {
		eng, _, err := deployTopology(cfg, xmark.StarParents(n), xmark.EvenMBs(50, n), nil,
			func(i int) frag.SiteID { return siteName(i) })
		if err != nil {
			return nil, err
		}
		pb, err := eng.ParBoX(ctx, prog)
		if err != nil {
			return nil, err
		}
		ce, err := eng.NaiveCentralized(ctx, prog)
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{X: float64(n), Values: map[string]float64{
			"ParBox":  seconds(pb.SimTime),
			"Central": seconds(ce.SimTime),
		}})
	}
	return fig, nil
}

// Fig8 — Experiment 1: ParBoX scalability in query size, |QList| ∈
// {2, 8, 15, 23} over the Fig. 7 sweep.
func Fig8(cfg Config) (*Figure, error) {
	cfg = cfg.fill()
	fig := &Figure{
		Name:   "Fig. 8",
		Title:  "ParBoX scalability in query size (50MB total)",
		XLabel: "machines",
		Unit:   "model-seconds",
	}
	for _, size := range xmark.QuerySizes() {
		fig.Series = append(fig.Series, fmt.Sprintf("|QList|=%d", size))
	}
	ctx := context.Background()
	for n := 1; n <= cfg.MaxMachines; n++ {
		eng, _, err := deployTopology(cfg, xmark.StarParents(n), xmark.EvenMBs(50, n), nil,
			func(i int) frag.SiteID { return siteName(i) })
		if err != nil {
			return nil, err
		}
		row := Row{X: float64(n), Values: make(map[string]float64)}
		for _, size := range xmark.QuerySizes() {
			rep, err := eng.ParBoX(ctx, xpath.MustCompileString(xmark.Queries[size]))
			if err != nil {
				return nil, err
			}
			row.Values[fmt.Sprintf("|QList|=%d", size)] = seconds(rep.SimTime)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// fig2Exp runs Experiment 2 (chain FT2, 50 MB evenly distributed) with the
// query satisfied at the fragment selected by target(n).
func fig2Exp(cfg Config, name, title string, target func(n int) int) (*Figure, error) {
	cfg = cfg.fill()
	fig := &Figure{
		Name:   name,
		Title:  title,
		XLabel: "machines",
		Unit:   "model-seconds",
		Series: []string{"ParBox", "FDParBox", "LZParBox"},
	}
	ctx := context.Background()
	for n := 1; n <= cfg.MaxMachines; n++ {
		beacons := make([]string, n)
		for i := range beacons {
			beacons[i] = xmark.BeaconName(i)
		}
		eng, _, err := deployTopology(cfg, xmark.ChainParents(n), xmark.EvenMBs(50, n), beacons,
			func(i int) frag.SiteID { return siteName(i) })
		if err != nil {
			return nil, err
		}
		prog := xpath.MustCompileString(xmark.BeaconQuery(target(n)))
		row := Row{X: float64(n), Values: make(map[string]float64)}
		for series, algo := range map[string]core.Algorithm{
			"ParBox":   core.AlgoParBoX,
			"FDParBox": core.AlgoFullDist,
			"LZParBox": core.AlgoLazy,
		} {
			rep, err := eng.Run(ctx, algo, prog)
			if err != nil {
				return nil, err
			}
			if !rep.Answer {
				return nil, fmt.Errorf("%s: beacon query unexpectedly false at n=%d", name, n)
			}
			row.Values[series] = seconds(rep.SimTime)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Fig9 — Experiment 2, query satisfied by F0.
func Fig9(cfg Config) (*Figure, error) {
	return fig2Exp(cfg, "Fig. 9", "Chain FT2, query satisfied at F0",
		func(n int) int { return 0 })
}

// Fig10 — Experiment 2, query satisfied by the deepest fragment Fn.
func Fig10(cfg Config) (*Figure, error) {
	return fig2Exp(cfg, "Fig. 10", "Chain FT2, query satisfied at Fn",
		func(n int) int { return n - 1 })
}

// Fig11 — Experiment 2, query satisfied by the middle fragment F⌈n/2⌉.
func Fig11(cfg Config) (*Figure, error) {
	return fig2Exp(cfg, "Fig. 11", "Chain FT2, query satisfied at F⌈n/2⌉",
		func(n int) int { return n / 2 })
}

// Fig12 — Experiment 3: ParBoX runtime vs data size over the natural tree
// FT3, |QList| ∈ {2, 8, 15, 23}.
func Fig12(cfg Config) (*Figure, error) {
	cfg = cfg.fill()
	fig := &Figure{
		Name:   "Fig. 12",
		Title:  "ParBoX scalability in data size (FT3)",
		XLabel: "dataset MB",
		Unit:   "model-seconds",
	}
	for _, size := range xmark.QuerySizes() {
		fig.Series = append(fig.Series, fmt.Sprintf("|QList|=%d", size))
	}
	ctx := context.Background()
	parents := xmark.FT3Parents()
	// Scales chosen so the totals sweep ≈45–160 MB as in the paper.
	for _, scale := range []float64{1.5, 2.2, 2.8, 3.5, 4.3, 5.2, 5.8, 6.5} {
		mbs := xmark.FT3MBs(scale)
		var total float64
		for _, m := range mbs {
			total += m
		}
		eng, _, err := deployTopology(cfg, parents, mbs, nil,
			func(i int) frag.SiteID { return siteName(i) })
		if err != nil {
			return nil, err
		}
		row := Row{X: total, Values: make(map[string]float64)}
		for _, size := range xmark.QuerySizes() {
			rep, err := eng.ParBoX(ctx, xpath.MustCompileString(xmark.Queries[size]))
			if err != nil {
				return nil, err
			}
			row.Values[fmt.Sprintf("|QList|=%d", size)] = seconds(rep.SimTime)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Fig13 — Experiment 4: a single site holding 50 MB split into 1..10
// fragments; ParBoX evaluation time must depend on the cumulative size
// only, not the fragment count.
func Fig13(cfg Config) (*Figure, error) {
	cfg = cfg.fill()
	prog := xpath.MustCompileString(xmark.Queries[8])
	fig := &Figure{
		Name:   "Fig. 13",
		Title:  "ParBoX on one site, 50MB in i fragments (|QList|=8)",
		XLabel: "fragments",
		Unit:   "model-seconds",
		Series: []string{"ParBox"},
	}
	ctx := context.Background()
	for n := 1; n <= cfg.MaxMachines; n++ {
		// Every fragment on the same single machine.
		eng, _, err := deployTopology(cfg, xmark.StarParents(n), xmark.EvenMBs(50, n), nil,
			func(i int) frag.SiteID { return "S0" })
		if err != nil {
			return nil, err
		}
		rep, err := eng.ParBoX(ctx, prog)
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{X: float64(n), Values: map[string]float64{
			"ParBox": seconds(rep.SimTime),
		}})
	}
	return fig, nil
}

// Table4Row is one measured row of the paper's Fig. 4 summary table.
type Table4Row struct {
	Algorithm core.Algorithm
	// MaxVisitsPerSite is the highest per-site visit count observed; the
	// paper's "Visits" column (1 for ParBoX/NaiveCentralized/Hybrid,
	// card(F_Si) for the others).
	MaxVisitsPerSite int64
	// VisitsAtSharedSite is the visit count at the site storing two
	// fragments.
	VisitsAtSharedSite int64
	TotalSteps         int64
	Bytes              int64
	SimSeconds         float64
}

// Table4 measures the summary table empirically: a 6-fragment FT1 document
// over 4 sites, with one site (S3) holding two fragments, plus an extra
// nested fragment so chains exist.
func Table4(cfg Config) ([]Table4Row, error) {
	cfg = cfg.fill()
	parents := []int{-1, 0, 0, 1, 0, 1}
	mbs := xmark.EvenMBs(12, 6)
	// Fragments 4 and 5 share site S3.
	assignments := []frag.SiteID{"S0", "S1", "S2", "S1", "S3", "S3"}
	eng, c, err := deployTopology(cfg, parents, mbs, nil,
		func(i int) frag.SiteID { return assignments[i] })
	if err != nil {
		return nil, err
	}
	prog := xpath.MustCompileString(xmark.Queries[8])
	ctx := context.Background()
	var rows []Table4Row
	for _, algo := range core.Algorithms() {
		c.Metrics().Reset()
		rep, err := eng.Run(ctx, algo, prog)
		if err != nil {
			return nil, err
		}
		snap := c.Metrics().Snapshot()
		var maxVisits int64
		for _, sm := range snap {
			if sm.Visits > maxVisits {
				maxVisits = sm.Visits
			}
		}
		rows = append(rows, Table4Row{
			Algorithm:          algo,
			MaxVisitsPerSite:   maxVisits,
			VisitsAtSharedSite: snap["S3"].Visits,
			TotalSteps:         rep.TotalSteps,
			Bytes:              rep.Bytes,
			SimSeconds:         rep.SimTime.Seconds(),
		})
	}
	return rows, nil
}

// FormatTable4 renders the measured table.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table (Fig. 4) — measured guarantees, FT1 6 fragments / 4 sites (S3 stores 2 fragments)\n")
	fmt.Fprintf(&b, "%-10s %12s %14s %14s %12s %12s\n",
		"algorithm", "max visits", "visits at S3", "total steps", "bytes", "model-sec")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12d %14d %14d %12d %12.4f\n",
			r.Algorithm, r.MaxVisitsPerSite, r.VisitsAtSharedSite, r.TotalSteps, r.Bytes, r.SimSeconds)
	}
	return b.String()
}

// ViewsRow is one measurement of the incremental-maintenance experiment.
type ViewsRow struct {
	DataMB        float64
	UpdateOps     int
	Bytes         int64
	Steps         int64
	SitesVisited  int
	IncrementalMS float64
	RecomputeMS   float64
}

// ViewsExp validates Section 5's cost claims empirically: maintenance
// traffic stays flat while data size grows 16× and update batches grow
// 32×, and incremental maintenance beats re-materialization.
func ViewsExp(cfg Config) ([]ViewsRow, error) {
	cfg = cfg.fill()
	ctx := context.Background()
	var rows []ViewsRow
	run := func(dataMB float64, ops int) error {
		eng, c, err := deployTopology(cfg, xmark.StarParents(4), xmark.EvenMBs(dataMB, 4), nil,
			func(i int) frag.SiteID { return siteName(i) })
		if err != nil {
			return err
		}
		for _, id := range eng.SourceTree().Sites() {
			site, _ := c.Site(id)
			views.RegisterHandlers(site, c)
		}
		prog := xpath.MustCompileString(`//item[name = "no such name"]`)
		v, err := views.Materialize(ctx, c, "S0", eng.SourceTree(), prog)
		if err != nil {
			return err
		}
		opList := make([]views.UpdateOp, ops)
		for i := range opList {
			opList[i] = views.UpdateOp{Op: views.OpInsert, Path: []int{0}, Label: "noise", Text: "n"}
		}
		t0 := time.Now()
		mc, err := v.Update(ctx, 1, opList)
		if err != nil {
			return err
		}
		incr := time.Since(t0)
		t1 := time.Now()
		if err := v.Refresh(ctx); err != nil {
			return err
		}
		refresh := time.Since(t1)
		rows = append(rows, ViewsRow{
			DataMB:        dataMB,
			UpdateOps:     ops,
			Bytes:         mc.Bytes,
			Steps:         mc.Steps,
			SitesVisited:  len(mc.SitesVisited),
			IncrementalMS: float64(incr.Microseconds()) / 1000,
			RecomputeMS:   float64(refresh.Microseconds()) / 1000,
		})
		return nil
	}
	for _, mb := range []float64{4, 16, 64} {
		if err := run(mb, 1); err != nil {
			return nil, err
		}
	}
	for _, ops := range []int{4, 32} {
		if err := run(16, ops); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatViews renders the incremental-maintenance measurements.
func FormatViews(rows []ViewsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Incremental maintenance (Section 5) — star FT1, 4 fragments / 4 sites\n")
	fmt.Fprintf(&b, "%-9s %8s %10s %12s %8s %14s %14s\n",
		"data MB", "ops", "bytes", "steps", "sites", "incr ms", "recompute ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9.4g %8d %10d %12d %8d %14.3f %14.3f\n",
			r.DataMB, r.UpdateOps, r.Bytes, r.Steps, r.SitesVisited, r.IncrementalMS, r.RecomputeMS)
	}
	return b.String()
}

// Package xmark generates the experiments' workload: deterministic,
// seeded XMark-style auction-site documents ("sites" in the paper's
// terminology — Section 6 generated multiple XMark sites and assigned
// fragments of them to machines).
//
// The real 2006 XMark generator (xmlgen) is closed tooling of its era; this
// package reproduces its document shape — regions with items, categories,
// people, open and closed auctions — with the element vocabulary the
// benchmark queries touch. Document size is parameterized in "paper
// megabytes": NodesPerMB scales a paper-MB to a node count, so the
// experiment harness sweeps the same x-axes as the paper's figures at a
// laptop-friendly scale (see DESIGN.md, substitutions).
package xmark

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// DefaultNodesPerMB converts the paper's megabytes to nodes: 2500 nodes per
// paper-MB makes the 50 MB documents of Experiments 1/2 ≈ 125k nodes.
const DefaultNodesPerMB = 2500

// Spec controls one generated site document.
type Spec struct {
	// Seed makes the document deterministic.
	Seed int64
	// MB is the target size in paper megabytes.
	MB float64
	// NodesPerMB scales MB to nodes (DefaultNodesPerMB when 0).
	NodesPerMB int
	// Beacon, when non-empty, plants a unique <beacon> element carrying
	// this text directly under the site root. Experiment 2's queries
	// q_F0/q_Fn/q_F⌈n/2⌉ are "carefully selected so that [they are]
	// satisfied by" one designated fragment; a beacon realizes exactly
	// that.
	Beacon string
}

func (s Spec) nodes() int {
	npm := s.NodesPerMB
	if npm <= 0 {
		npm = DefaultNodesPerMB
	}
	n := int(s.MB * float64(npm))
	if n < 16 {
		n = 16 // the fixed skeleton needs a handful of nodes
	}
	return n
}

var (
	words = []string{
		"gold", "silver", "vintage", "rare", "classic", "modern", "large",
		"small", "antique", "mint", "signed", "limited", "original", "fine",
	}
	regions    = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	countries  = []string{"United States", "Germany", "Japan", "Brazil", "Kenya", "Australia"}
	cities     = []string{"Seoul", "Edinburgh", "Boston", "Nairobi", "Osaka", "Recife"}
	firstNames = []string{"Ada", "Bela", "Chen", "Dara", "Eiji", "Fay", "Gus", "Hana"}
	lastNames  = []string{"Ahmed", "Baker", "Cole", "Diaz", "Endo", "Frey", "Gupta", "Hart"}
)

// Generate builds one XMark-style site document of roughly spec.MB paper
// megabytes. The exact node count is deterministic in the spec; the
// sections keep approximately XMark's proportions (items dominate,
// auctions next, then people).
func Generate(spec Spec) *xmltree.Node {
	r := rand.New(rand.NewSource(spec.Seed))
	budget := spec.nodes()

	site := xmltree.NewElement("site", "")
	budget--
	if spec.Beacon != "" {
		site.AppendChild(xmltree.NewElement("beacon", spec.Beacon))
		budget--
	}

	regionsEl := xmltree.NewElement("regions", "")
	site.AppendChild(regionsEl)
	regionEls := make([]*xmltree.Node, len(regions))
	for i, name := range regions {
		regionEls[i] = xmltree.NewElement(name, "")
		regionsEl.AppendChild(regionEls[i])
	}
	categoriesEl := xmltree.NewElement("categories", "")
	peopleEl := xmltree.NewElement("people", "")
	openEl := xmltree.NewElement("open_auctions", "")
	closedEl := xmltree.NewElement("closed_auctions", "")
	site.AppendChild(categoriesEl)
	site.AppendChild(peopleEl)
	site.AppendChild(openEl)
	site.AppendChild(closedEl)
	budget -= 5 + len(regions)

	// A few categories regardless of size.
	nCategories := 4
	for i := 0; i < nCategories && budget > 4; i++ {
		c := category(r, i)
		categoriesEl.AppendChild(c)
		budget -= c.Size()
	}

	// Fill the remaining budget with the proportioned sections. Shares
	// follow XMark's rough document composition.
	type section struct {
		parent *xmltree.Node
		share  float64
		build  func(*rand.Rand, int) *xmltree.Node
	}
	seq := 0
	sections := []section{
		{regionsEl, 0.50, func(r *rand.Rand, i int) *xmltree.Node { return item(r, i) }},
		{peopleEl, 0.20, func(r *rand.Rand, i int) *xmltree.Node { return person(r, i) }},
		{openEl, 0.20, func(r *rand.Rand, i int) *xmltree.Node { return openAuction(r, i) }},
		{closedEl, 0.10, func(r *rand.Rand, i int) *xmltree.Node { return closedAuction(r, i) }},
	}
	total := budget
	for si, sec := range sections {
		sectionBudget := int(float64(total) * sec.share)
		if si == len(sections)-1 {
			sectionBudget = budget // last section absorbs rounding
		}
		for sectionBudget > 0 && budget > 0 {
			n := sec.build(r, seq)
			seq++
			parent := sec.parent
			if si == 0 {
				parent = regionEls[r.Intn(len(regionEls))]
			}
			parent.AppendChild(n)
			sz := n.Size()
			sectionBudget -= sz
			budget -= sz
		}
	}
	return site
}

func pick(r *rand.Rand, ss []string) string { return ss[r.Intn(len(ss))] }

func itemName(r *rand.Rand) string {
	return pick(r, words) + " " + pick(r, words)
}

func category(r *rand.Rand, i int) *xmltree.Node {
	return xmltree.NewElement("category", "",
		xmltree.NewElement("name", fmt.Sprintf("category%d", i)),
		xmltree.NewElement("description", pick(r, words)+" goods"))
}

// item is an XMark region item: ~11 nodes.
func item(r *rand.Rand, i int) *xmltree.Node {
	return xmltree.NewElement("item", "",
		xmltree.NewElement("name", itemName(r)),
		xmltree.NewElement("location", pick(r, countries)),
		xmltree.NewElement("quantity", fmt.Sprintf("%d", 1+r.Intn(5))),
		xmltree.NewElement("payment", "Creditcard"),
		xmltree.NewElement("description", pick(r, words)+" "+pick(r, words)),
		xmltree.NewElement("shipping", "Will ship internationally"),
		xmltree.NewElement("incategory", fmt.Sprintf("category%d", r.Intn(4))),
		xmltree.NewElement("mailbox", "",
			xmltree.NewElement("mail", "",
				xmltree.NewElement("from", pick(r, firstNames)),
				xmltree.NewElement("date", fmt.Sprintf("2006-%02d-%02d", 1+r.Intn(12), 1+r.Intn(28))))))
}

// person: ~9 nodes.
func person(r *rand.Rand, i int) *xmltree.Node {
	return xmltree.NewElement("person", "",
		xmltree.NewElement("name", pick(r, firstNames)+" "+pick(r, lastNames)),
		xmltree.NewElement("emailaddress", fmt.Sprintf("mailto:p%d@example.com", i)),
		xmltree.NewElement("phone", fmt.Sprintf("+%d", 1000000+r.Intn(8999999))),
		xmltree.NewElement("address", "",
			xmltree.NewElement("street", fmt.Sprintf("%d %s St", 1+r.Intn(99), pick(r, lastNames))),
			xmltree.NewElement("city", pick(r, cities)),
			xmltree.NewElement("country", pick(r, countries)),
			xmltree.NewElement("zipcode", fmt.Sprintf("%d", 10000+r.Intn(89999)))))
}

// openAuction: ~12 nodes.
func openAuction(r *rand.Rand, i int) *xmltree.Node {
	return xmltree.NewElement("open_auction", "",
		xmltree.NewElement("initial", price(r)),
		xmltree.NewElement("bidder", "",
			xmltree.NewElement("date", fmt.Sprintf("2006-%02d-%02d", 1+r.Intn(12), 1+r.Intn(28))),
			xmltree.NewElement("personref", fmt.Sprintf("person%d", r.Intn(1000))),
			xmltree.NewElement("increase", fmt.Sprintf("%d.00", 1+r.Intn(50)))),
		xmltree.NewElement("current", price(r)),
		xmltree.NewElement("itemref", fmt.Sprintf("item%d", r.Intn(1000))),
		xmltree.NewElement("seller", fmt.Sprintf("person%d", r.Intn(1000))),
		xmltree.NewElement("quantity", fmt.Sprintf("%d", 1+r.Intn(3))),
		xmltree.NewElement("type", "Regular"),
		xmltree.NewElement("interval", "",
			xmltree.NewElement("start", "2006-01-01"),
			xmltree.NewElement("end", "2006-12-31")))
}

// closedAuction: ~8 nodes.
func closedAuction(r *rand.Rand, i int) *xmltree.Node {
	return xmltree.NewElement("closed_auction", "",
		xmltree.NewElement("seller", fmt.Sprintf("person%d", r.Intn(1000))),
		xmltree.NewElement("buyer", fmt.Sprintf("person%d", r.Intn(1000))),
		xmltree.NewElement("itemref", fmt.Sprintf("item%d", r.Intn(1000))),
		xmltree.NewElement("price", price(r)),
		xmltree.NewElement("date", fmt.Sprintf("2006-%02d-%02d", 1+r.Intn(12), 1+r.Intn(28))),
		xmltree.NewElement("quantity", "1"),
		xmltree.NewElement("annotation", pick(r, words)))
}

func price(r *rand.Rand) string {
	return fmt.Sprintf("%d.%02d", 5+r.Intn(495), r.Intn(100))
}

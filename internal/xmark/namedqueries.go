package xmark

// Named benchmark queries in the spirit of the original XMark suite,
// adapted to XBL's Boolean form (XMark's Q1, Q5, Q8... are value/join
// queries; these keep their access patterns — point lookups, structural
// scans, deep predicates — as existence tests). The pub-sub example and
// the soak tests draw from this set; TestNamedQueries pins that each one
// parses, compiles and is satisfiable on a generated site.
var NamedQueries = map[string]string{
	// BQ1: point lookup by content (XMark Q1's person lookup).
	"BQ1-person-lookup": `//person[name = "Ada Ahmed"]`,
	// BQ2: existence of a structural pattern (Q2's bidder increases).
	"BQ2-bidder-increase": `//open_auction/bidder/increase`,
	// BQ3: deep qualified path (Q5's closed auctions above a price —
	// adapted to an equality probe).
	"BQ3-closed-price": `//closed_auction[price]`,
	// BQ4: conjunction across sections (Q8/Q9 join flavour: people and
	// auctions both present).
	"BQ4-cross-section": `//person[address/country = "Japan"] && //open_auction[type = "Regular"]`,
	// BQ5: negation (Q7 counting flavour as a Boolean absence test).
	"BQ5-absence": `!(//item[payment = "Barter"])`,
	// BQ6: wildcard scan (Q6: items per region, as existence under any
	// region).
	"BQ6-region-items": `regions/*/item`,
	// BQ7: descendant chain with text probes (Q14 keyword flavour).
	"BQ7-mail-date": `//item/mailbox/mail/date`,
	// BQ8: disjunctive screening (routing-style subscription).
	"BQ8-routing": `//item[location = "Kenya"] || //item[location = "Brazil"]`,
}

// SelectionQueries are named data-selection workloads for the Section 8
// extension benchmarks: each is a plain path.
var SelectionQueries = map[string]string{
	"SQ1-item-names":   `//item/name`,
	"SQ2-kenyan-items": `//item[location = "Kenya"]`,
	"SQ3-bidders":      `//open_auction/bidder`,
	"SQ4-cities":       `//person/address/city`,
}

package xmark

// Queries are the benchmark queries of Experiments 1 and 3, keyed by their
// |QList(q)| size — the paper sweeps |QList| ∈ {2, 8, 15, 23}. The sizes
// are pinned by TestQuerySizes; all four touch element vocabulary every
// generated site contains, and all evaluate to true on any non-trivial
// site (so the whole document is always traversed, as in a worst-case
// Boolean evaluation).
var Queries = map[int]string{
	2:  `label() = site`,
	8:  `//item[quantity]`,
	15: `//person[address/city = "Seoul"] && label() = site`,
	23: `//item[quantity = "1"] && //open_auction[bidder/increase = "9.00"]`,
}

// QuerySizes lists the available |QList| values in ascending order.
func QuerySizes() []int { return []int{2, 8, 15, 23} }

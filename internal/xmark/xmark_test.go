package xmark

import (
	"math"
	"testing"

	"repro/internal/eval"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{Seed: 1, MB: 1})
	b := Generate(Spec{Seed: 1, MB: 1})
	if !a.Equal(b) {
		t.Error("same spec produced different documents")
	}
	c := Generate(Spec{Seed: 2, MB: 1})
	if a.Equal(c) {
		t.Error("different seeds produced identical documents")
	}
}

func TestGenerateSize(t *testing.T) {
	for _, mb := range []float64{0.5, 1, 5, 10} {
		doc := Generate(Spec{Seed: 7, MB: mb})
		want := mb * DefaultNodesPerMB
		got := float64(doc.Size())
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("MB=%.1f: %v nodes, want ≈%v (±5%%)", mb, got, want)
		}
		if err := xmltree.Validate(doc); err != nil {
			t.Errorf("MB=%.1f: %v", mb, err)
		}
	}
	// Custom scale.
	doc := Generate(Spec{Seed: 7, MB: 2, NodesPerMB: 500})
	if got := doc.Size(); got < 900 || got > 1100 {
		t.Errorf("custom NodesPerMB: %d nodes, want ≈1000", got)
	}
}

func TestGenerateStructure(t *testing.T) {
	doc := Generate(Spec{Seed: 3, MB: 2})
	if doc.Label != "site" {
		t.Errorf("root label = %q", doc.Label)
	}
	for _, section := range []string{"regions", "categories", "people", "open_auctions", "closed_auctions"} {
		if doc.FindFirst(section) == nil {
			t.Errorf("missing section %q", section)
		}
	}
	stats := xmltree.ComputeStats(doc)
	if stats.Labels["item"] == 0 || stats.Labels["person"] == 0 || stats.Labels["open_auction"] == 0 {
		t.Errorf("sections not populated: %v", stats.Labels)
	}
	// Items dominate, as in XMark.
	if stats.Labels["item"] < stats.Labels["person"] {
		t.Errorf("items (%d) should outnumber persons (%d)", stats.Labels["item"], stats.Labels["person"])
	}
}

func TestBeacon(t *testing.T) {
	doc := Generate(Spec{Seed: 3, MB: 0.5, Beacon: BeaconName(7)})
	prog := xpath.MustCompileString(BeaconQuery(7))
	ans, _, err := eval.Evaluate(doc, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !ans {
		t.Error("beacon query false on its own site")
	}
	other := Generate(Spec{Seed: 3, MB: 0.5, Beacon: BeaconName(8)})
	ans2, _, err := eval.Evaluate(other, prog)
	if err != nil {
		t.Fatal(err)
	}
	if ans2 {
		t.Error("beacon query true on a different site")
	}
	plain := Generate(Spec{Seed: 3, MB: 0.5})
	if plain.FindFirst("beacon") != nil {
		t.Error("beacon planted without being requested")
	}
}

func TestQuerySizes(t *testing.T) {
	for _, size := range QuerySizes() {
		src, ok := Queries[size]
		if !ok {
			t.Fatalf("no query for size %d", size)
		}
		p := xpath.MustCompileString(src)
		if got := p.QListSize(); got != size {
			t.Errorf("QListSize(%q) = %d, want %d", src, got, size)
		}
	}
	// All benchmark queries hold on a generated site, so evaluation always
	// traverses everything.
	doc := Generate(Spec{Seed: 11, MB: 3})
	for size, src := range Queries {
		ans, _, err := eval.Evaluate(doc, xpath.MustCompileString(src))
		if err != nil {
			t.Fatal(err)
		}
		if !ans {
			t.Errorf("benchmark query (size %d) %q is false on a 3MB site", size, src)
		}
	}
}

func TestBuildDocTopologies(t *testing.T) {
	for _, tc := range []struct {
		name    string
		parents []int
	}{
		{"star", StarParents(5)},
		{"chain", ChainParents(5)},
		{"ft3", FT3Parents()},
	} {
		n := len(tc.parents)
		beacons := make([]string, n)
		for i := range beacons {
			beacons[i] = BeaconName(i)
		}
		root, sites, err := BuildDoc(TreeSpec{
			Seed:       5,
			Parents:    tc.parents,
			MBs:        EvenMBs(2, n),
			NodesPerMB: 200,
			Beacons:    beacons,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(sites) != n {
			t.Fatalf("%s: %d site roots", tc.name, len(sites))
		}
		if err := xmltree.Validate(root); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		forest, err := Fragment(root, sites)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if forest.Count() != n {
			t.Errorf("%s: %d fragments, want %d", tc.name, forest.Count(), n)
		}
		if err := forest.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		// Fragment i's parent must equal the topology's parent.
		for i := 1; i < n; i++ {
			fr, ok := forest.Fragment(xmltree.FragmentID(i))
			if !ok {
				t.Fatalf("%s: missing fragment %d", tc.name, i)
			}
			if int(fr.Parent) != tc.parents[i] {
				t.Errorf("%s: fragment %d parent = %d, want %d", tc.name, i, fr.Parent, tc.parents[i])
			}
		}
		// Each beacon is found exactly in its own fragment.
		for i := 0; i < n; i++ {
			fr, _ := forest.Fragment(xmltree.FragmentID(i))
			prog := xpath.MustCompileString(BeaconQuery(i))
			tr, _, err := eval.BottomUp(fr.Root, prog)
			if err != nil {
				t.Fatal(err)
			}
			// The fragment's own DV entry for the beacon text must be
			// satisfiable only in fragment i. Leaf check: evaluate on the
			// assembled doc restricted per fragment is overkill; instead
			// assert the beacon element text.
			_ = tr
			if b := fr.Root.FindFirst("beacon"); b == nil || b.Text != BeaconName(i) {
				t.Errorf("%s: fragment %d beacon = %v", tc.name, i, b)
			}
		}
	}
}

func TestBuildDocErrors(t *testing.T) {
	if _, _, err := BuildDoc(TreeSpec{Parents: []int{0}, MBs: []float64{1}}); err == nil {
		t.Error("Parents[0] != -1 must fail")
	}
	if _, _, err := BuildDoc(TreeSpec{Parents: []int{-1, 5}, MBs: []float64{1, 1}}); err == nil {
		t.Error("forward parent must fail")
	}
	if _, _, err := BuildDoc(TreeSpec{Parents: []int{-1}, MBs: nil}); err == nil {
		t.Error("size mismatch must fail")
	}
}

func TestFT3MBs(t *testing.T) {
	mbs := FT3MBs(1)
	if len(mbs) != len(FT3Parents()) {
		t.Fatalf("FT3MBs has %d entries for %d fragments", len(mbs), len(FT3Parents()))
	}
	var total float64
	for _, m := range mbs {
		total += m
	}
	if total < 30 || total > 40 {
		t.Errorf("FT3 scale-1 total = %.1f MB", total)
	}
	mbs5 := FT3MBs(5)
	if mbs5[0] != mbs[0] {
		t.Error("F0 must stay fixed across scales")
	}
	if mbs5[1] != 50 {
		t.Errorf("F1 at scale 5 = %.1f, want 50", mbs5[1])
	}
}

func TestNamedQueries(t *testing.T) {
	doc := Generate(Spec{Seed: 4, MB: 4})
	// BQ1 needs a known person name to exist; the generator's vocabulary
	// guarantees "Ada Ahmed" appears in a 4MB site with overwhelming
	// probability — pin it.
	for name, src := range NamedQueries {
		prog, err := xpath.CompileString(src)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		ans, _, err := eval.Evaluate(doc, prog)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !ans {
			t.Errorf("%s (%s) is false on a 4MB site — workload query should be satisfiable", name, src)
		}
	}
	for name, src := range SelectionQueries {
		sp, err := xpath.CompileSelectString(src)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		sel, err := eval.SelectLocal(doc, sp)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(sel) == 0 {
			t.Errorf("%s (%s) selects nothing", name, src)
		}
	}
}

package xmark

import (
	"fmt"

	"repro/internal/frag"
	"repro/internal/xmltree"
)

// TreeSpec describes a multi-site document for the experiments: one XMark
// site per entry, arranged into a fragment hierarchy.
type TreeSpec struct {
	// Seed makes the whole document deterministic.
	Seed int64
	// Parents[i] is the index of the site under which site i's subtree is
	// attached; Parents[0] must be -1 (site 0 carries the document root).
	Parents []int
	// MBs[i] is site i's size in paper megabytes.
	MBs []float64
	// NodesPerMB scales paper megabytes to nodes (DefaultNodesPerMB if 0).
	NodesPerMB int
	// Beacons[i], when non-empty, plants a unique beacon in site i (see
	// Spec.Beacon). May be nil.
	Beacons []string
}

// BuildDoc materializes the document: site i's subtree is appended under
// site Parents[i]'s root element. It returns the document root and the
// per-site subtree roots (the split points for fragmentation).
func BuildDoc(ts TreeSpec) (*xmltree.Node, []*xmltree.Node, error) {
	if len(ts.Parents) == 0 || ts.Parents[0] != -1 {
		return nil, nil, fmt.Errorf("xmark: Parents[0] must be -1, got %v", ts.Parents)
	}
	if len(ts.MBs) != len(ts.Parents) {
		return nil, nil, fmt.Errorf("xmark: %d sizes for %d sites", len(ts.MBs), len(ts.Parents))
	}
	roots := make([]*xmltree.Node, len(ts.Parents))
	for i := range ts.Parents {
		beacon := ""
		if i < len(ts.Beacons) {
			beacon = ts.Beacons[i]
		}
		roots[i] = Generate(Spec{
			Seed:       ts.Seed + int64(i)*7919,
			MB:         ts.MBs[i],
			NodesPerMB: ts.NodesPerMB,
			Beacon:     beacon,
		})
	}
	for i := 1; i < len(ts.Parents); i++ {
		p := ts.Parents[i]
		if p < 0 || p >= i {
			return nil, nil, fmt.Errorf("xmark: Parents[%d] = %d out of range (must name an earlier site)", i, p)
		}
		roots[p].AppendChild(roots[i])
	}
	return roots[0], roots, nil
}

// Fragment splits the document of BuildDoc so that each site subtree is its
// own fragment (fragment i+... — fragment IDs follow split order, so site
// i becomes fragment i). The returned forest's fragment i corresponds to
// site i.
func Fragment(root *xmltree.Node, siteRoots []*xmltree.Node) (*frag.Forest, error) {
	forest := frag.NewForest(root)
	for i := 1; i < len(siteRoots); i++ {
		id, err := forest.Split(siteRoots[i])
		if err != nil {
			return nil, fmt.Errorf("xmark: splitting site %d: %w", i, err)
		}
		if id != xmltree.FragmentID(i) {
			return nil, fmt.Errorf("xmark: site %d became fragment %d", i, id)
		}
	}
	return forest, nil
}

// StarParents returns the FT1 topology of Fig. 6: fragments F1..Fn-1 are
// all sub-fragments of F0.
func StarParents(n int) []int {
	p := make([]int, n)
	p[0] = -1
	for i := 1; i < n; i++ {
		p[i] = 0
	}
	return p
}

// ChainParents returns the FT2 topology: Fi is a sub-fragment of Fi-1
// (the "version history" shape of Experiment 2).
func ChainParents(n int) []int {
	p := make([]int, n)
	p[0] = -1
	for i := 1; i < n; i++ {
		p[i] = i - 1
	}
	return p
}

// FT3Parents returns the "natural" two-level topology of Fig. 6 (FT3):
// eight fragments, F0 → {F1, F2, F3}, F1 → {F4, F5}, F2 → {F6},
// F3 → {F7}.
func FT3Parents() []int {
	return []int{-1, 0, 0, 0, 1, 1, 2, 3}
}

// FT3MBs scales Experiment 3's fragment sizes: F0 ≈ 10 MB fixed, F1 the
// largest (10–50 MB), the rest proportionally smaller, matching the ranges
// reported in Section 6. scale=1 gives the first iteration (≈45 MB total);
// scale=s multiplies every fragment except F0.
func FT3MBs(scale float64) []float64 {
	return []float64{
		10,          // F0: "always around 10MB"
		10 * scale,  // F1: 10MB..50MB
		3.5 * scale, // F2: 3.5MB..15MB (paper range ≈)
		3 * scale,
		2.5 * scale,
		2 * scale,
		1.5 * scale,
		0.7 * scale, // F7: 700K..3.7MB
	}
}

// EvenMBs splits total paper megabytes evenly over n fragments
// (Experiments 1, 2 and 4 keep the cumulative size constant at 50 MB).
func EvenMBs(total float64, n int) []float64 {
	mbs := make([]float64, n)
	for i := range mbs {
		mbs[i] = total / float64(n)
	}
	return mbs
}

// BeaconName returns the canonical beacon text for site i.
func BeaconName(i int) string { return fmt.Sprintf("beacon-%04d", i) }

// BeaconQuery returns the Boolean query satisfied exactly by the site
// carrying BeaconName(i) — the q_F0/q_Fn/q_F⌈n/2⌉ device of Experiment 2.
func BeaconQuery(i int) string {
	return fmt.Sprintf(`//beacon[text() = %q]`, BeaconName(i))
}

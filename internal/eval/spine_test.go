package eval

import (
	"math/rand"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// batchProg compiles the queries into one fused program (lanes are
// subquery slots, so even short batches exercise shared subexpressions).
func batchProg(t testing.TB, queries ...string) *xpath.Program {
	t.Helper()
	b := xpath.NewBatchBuilder()
	for _, q := range queries {
		e, err := xpath.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		b.Add(e)
	}
	p, _ := b.Program()
	return p
}

// spineCheck asserts the plane's root words reproduce a full BottomUp of
// the current tree — same triplet, byte-equal encoding.
func spineCheck(t *testing.T, p *Plane, root *xmltree.Node, prog *xpath.Program) {
	t.Helper()
	full, _, err := BottomUp(root, prog)
	if err != nil {
		t.Fatalf("full bottomUp: %v", err)
	}
	vw, cw, dw := p.RootWords()
	patched := ConstTriplet(len(prog.Subs), vw, cw, dw)
	if !patched.Equal(full) {
		t.Fatalf("plane triplet diverges from full recomputation\nV  %#x CV %#x DV %#x", vw, cw, dw)
	}
	pe, fe := patched.Encode(), full.Encode()
	if string(pe) != string(fe) {
		t.Fatalf("patched encoding not byte-equal to full: %d vs %d bytes", len(pe), len(fe))
	}
}

func TestSpinePatchMatchesFull(t *testing.T) {
	doc := xmltree.NewElement("a", "",
		xmltree.NewElement("b", "x"),
		xmltree.NewElement("c", "",
			xmltree.NewElement("b", "y"),
			xmltree.NewElement("d", "")),
		xmltree.NewElement("e", "z"))
	prog := batchProg(t, `//b[text() = "x"] && //c`, `//e`, `//d && //b`, `//q`)

	p, steps, ok := BuildPlane(doc, prog)
	if !ok {
		t.Fatal("BuildPlane refused an eligible fragment")
	}
	if steps != int64(doc.Size()*len(prog.Subs)) {
		t.Fatalf("build steps %d, want %d", steps, doc.Size()*len(prog.Subs))
	}
	if p.Len() != doc.Size() {
		t.Fatalf("plane holds %d nodes, tree has %d", p.Len(), doc.Size())
	}
	spineCheck(t, p, doc, prog)

	// setText on a leaf: only the leaf-to-root spine recomputes.
	leaf := doc.Children[1].Children[0] // the <b>y</b>
	leaf.Text = "x"
	steps, ok = p.Patch(nil, []*xmltree.Node{leaf}, nil)
	if !ok {
		t.Fatal("patch fell back on a plain setText")
	}
	if want := int64(3 * len(prog.Subs)); steps != want { // leaf + <c> + root
		t.Fatalf("setText patch cost %d steps, want %d", steps, want)
	}
	spineCheck(t, p, doc, prog)

	// Insert a fresh leaf: evaluated from scratch, ancestors respun.
	fresh := doc.Children[1].AppendChild(xmltree.NewElement("q", "hit"))
	if _, ok = p.Patch([]*xmltree.Node{fresh}, nil, nil); !ok {
		t.Fatal("patch fell back on an insert")
	}
	spineCheck(t, p, doc, prog)

	// Delete a subtree: entries pruned, parent respun.
	gone := doc.Children[1]
	doc.RemoveChild(gone)
	if _, ok = p.Patch(nil, []*xmltree.Node{doc}, []*xmltree.Node{gone}); !ok {
		t.Fatal("patch fell back on a delete")
	}
	spineCheck(t, p, doc, prog)
	if p.Len() != doc.Size() {
		t.Fatalf("after delete plane holds %d nodes, tree has %d", p.Len(), doc.Size())
	}
}

func TestSpinePatchCostIsSpineLocal(t *testing.T) {
	// A deep chain with wide shoulders: a single-leaf edit must cost
	// O(depth), nowhere near the fragment size.
	r := rand.New(rand.NewSource(7))
	root := xmltree.NewElement("a", "")
	cur := root
	var deepest *xmltree.Node
	for i := 0; i < 50; i++ {
		for j := 0; j < 40; j++ {
			cur.AppendChild(xmltree.NewElement("pad", ""))
		}
		cur = cur.AppendChild(xmltree.NewElement("s", ""))
		deepest = cur
	}
	_ = r
	prog := batchProg(t, `//s[text() = "hit"]`, `//pad`)
	p, buildSteps, ok := BuildPlane(root, prog)
	if !ok {
		t.Fatal("BuildPlane refused")
	}
	deepest.Text = "hit"
	patchSteps, ok := p.Patch(nil, []*xmltree.Node{deepest}, nil)
	if !ok {
		t.Fatal("patch fell back")
	}
	if patchSteps*10 > buildSteps {
		t.Fatalf("single-leaf patch cost %d steps vs %d full — not spine-local", patchSteps, buildSteps)
	}
	spineCheck(t, p, root, prog)
}

func TestBuildPlaneFallsBack(t *testing.T) {
	prog := xpath.MustCompileString(`//b`)
	virt := xmltree.NewElement("a", "",
		xmltree.NewElement("b", ""),
		xmltree.NewVirtual(7))
	if _, _, ok := BuildPlane(virt, prog); ok {
		t.Fatal("BuildPlane accepted a fragment with virtual nodes")
	}

	// A batch wider than one word is outside the single-word kernel.
	b := xpath.NewBatchBuilder()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 70; i++ {
		b.Add(xpath.RandomQuery(r, xpath.RandomSpec{MaxDepth: 3, MaxSteps: 4}))
	}
	wide, _ := b.Program()
	if wide.Kernel() != nil && wide.Kernel().Words() == 1 {
		t.Skip("random batch folded into one word")
	}
	doc := xmltree.NewElement("a", "", xmltree.NewElement("b", ""))
	if _, _, ok := BuildPlane(doc, wide); ok {
		t.Fatal("BuildPlane accepted a multi-word program")
	}
}

func TestTripletDeltaZero(t *testing.T) {
	if !(TripletDelta{}).Zero() {
		t.Fatal("zero delta not Zero")
	}
	if (TripletDelta{CV: 2}).Zero() {
		t.Fatal("non-zero delta reported Zero")
	}
}

// FuzzSpinePatch is the differential fuzzer for incremental maintenance:
// arbitrary edit sequences applied through Plane.Patch must leave root
// triplets byte-equal to a from-scratch BottomUp of the mutated tree.
// When a patch legitimately falls back (stale plane after pathological
// delete interleavings) the plane is rebuilt, mirroring the serving path.
func FuzzSpinePatch(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(6), uint8(4))
	f.Add(int64(9), uint8(120), uint8(12), uint8(17))
	f.Add(int64(-3), uint8(3), uint8(20), uint8(1))
	f.Add(int64(77), uint8(200), uint8(9), uint8(40))

	labels := []string{"a", "b", "c", "d"}
	texts := []string{"", "x", "y"}

	f.Fuzz(func(t *testing.T, seed int64, nodesRaw, editsRaw, queriesRaw uint8) {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 2 + int(nodesRaw)})
		b := xpath.NewBatchBuilder()
		nq := 1 + int(queriesRaw)%4
		for i := 0; i < nq; i++ {
			b.Add(xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true, MaxDepth: 4, MaxSteps: 6}))
		}
		prog, _ := b.Program()
		if err := prog.Validate(); err != nil {
			t.Fatalf("batch program invalid: %v", err)
		}
		if kern := prog.Kernel(); kern == nil || kern.Words() != 1 {
			t.Skip("batch spilled past one word; spine kernel out of scope")
		}
		p, _, ok := BuildPlane(tree, prog)
		if !ok {
			t.Fatalf("BuildPlane refused a virtual-free single-word fragment (%d subs)", len(prog.Subs))
		}

		collect := func() []*xmltree.Node {
			var all []*xmltree.Node
			tree.Walk(func(n *xmltree.Node) { all = append(all, n) })
			return all
		}
		edits := 1 + int(editsRaw)%16
		for k := 0; k < edits; k++ {
			// A batch of 1–3 ops patched together, as Apply delivers them.
			var fresh, dirty, removed []*xmltree.Node
			for b := 1 + r.Intn(3); b > 0; b-- {
				nodes := collect()
				switch r.Intn(3) {
				case 0: // insert (always as last child, like OpInsert)
					parent := nodes[r.Intn(len(nodes))]
					c := xmltree.NewElement(labels[r.Intn(len(labels))], texts[r.Intn(len(texts))])
					parent.AppendChild(c)
					fresh = append(fresh, c)
				case 1: // delete a non-root subtree
					if len(nodes) < 2 {
						continue
					}
					n := nodes[1+r.Intn(len(nodes)-1)]
					parent := n.Parent
					if parent == nil || !parent.RemoveChild(n) {
						continue
					}
					removed = append(removed, n)
					dirty = append(dirty, parent)
				case 2: // setText
					n := nodes[r.Intn(len(nodes))]
					n.Text = texts[r.Intn(len(texts))]
					dirty = append(dirty, n)
				}
			}
			if _, ok := p.Patch(fresh, dirty, removed); !ok {
				p, _, ok = BuildPlane(tree, prog)
				if !ok {
					t.Fatal("rebuild after fallback refused")
				}
			}
			full, _, err := BottomUp(tree, prog)
			if err != nil {
				t.Fatalf("full bottomUp after edit %d: %v", k, err)
			}
			vw, cw, dw := p.RootWords()
			patched := ConstTriplet(len(prog.Subs), vw, cw, dw)
			if !patched.Equal(full) {
				t.Fatalf("edit %d: patched triplet diverges from full recomputation", k)
			}
			if string(patched.Encode()) != string(full.Encode()) {
				t.Fatalf("edit %d: patched encoding not byte-equal", k)
			}
		}
	})
}

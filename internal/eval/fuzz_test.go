package eval

import (
	"testing"

	"repro/internal/boolexpr"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// FuzzDecodeTriplet drives the triplet wire decoder (the path every
// evalQual response crosses) with arbitrary bytes: no panics, slab and
// fresh decoding agree, and accepted triplets survive an encode/decode
// round trip.
func FuzzDecodeTriplet(f *testing.F) {
	// Seed with genuine triplets: an all-constant fragment and one with
	// virtual nodes (variables on the wire).
	doc := xmltree.NewElement("a", "",
		xmltree.NewElement("b", "x"),
		xmltree.NewElement("c", "",
			xmltree.NewElement("b", "y")))
	prog := xpath.MustCompileString(`//b[text() = "x"] && //c`)
	if t, _, err := BottomUp(doc, prog); err == nil {
		f.Add(t.Encode())
	}
	virt := xmltree.NewElement("a", "",
		xmltree.NewElement("b", ""),
		xmltree.NewVirtual(1),
		xmltree.NewVirtual(2))
	if t, _, err := BottomUp(virt, prog); err == nil {
		f.Add(t.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 1, 0, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh, errFresh := DecodeTriplet(data)
		slabbed, errSlab := DecodeTripletSlab(data, boolexpr.NewSlab())
		if (errFresh == nil) != (errSlab == nil) {
			t.Fatalf("decoders disagree: fresh=%v slab=%v", errFresh, errSlab)
		}
		if errFresh != nil {
			return
		}
		if !fresh.Equal(slabbed) {
			t.Fatal("slab-decoded triplet differs from fresh decode")
		}
		again, err := DecodeTriplet(fresh.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !fresh.Equal(again) {
			t.Fatal("round trip changed the triplet")
		}
	})
}

package eval

import (
	"math/rand"
	"testing"

	"repro/internal/boolexpr"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// FuzzDecodeTriplet drives the triplet wire decoder (the path every
// evalQual response crosses) with arbitrary bytes: no panics, slab and
// fresh decoding agree, and accepted triplets survive an encode/decode
// round trip.
func FuzzDecodeTriplet(f *testing.F) {
	// Seed with genuine triplets: an all-constant fragment and one with
	// virtual nodes (variables on the wire).
	doc := xmltree.NewElement("a", "",
		xmltree.NewElement("b", "x"),
		xmltree.NewElement("c", "",
			xmltree.NewElement("b", "y")))
	prog := xpath.MustCompileString(`//b[text() = "x"] && //c`)
	if t, _, err := BottomUp(doc, prog); err == nil {
		f.Add(t.Encode())
	}
	virt := xmltree.NewElement("a", "",
		xmltree.NewElement("b", ""),
		xmltree.NewVirtual(1),
		xmltree.NewVirtual(2))
	if t, _, err := BottomUp(virt, prog); err == nil {
		f.Add(t.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 1, 0, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh, errFresh := DecodeTriplet(data)
		slabbed, errSlab := DecodeTripletSlab(data, boolexpr.NewSlab())
		if (errFresh == nil) != (errSlab == nil) {
			t.Fatalf("decoders disagree: fresh=%v slab=%v", errFresh, errSlab)
		}
		if errFresh != nil {
			return
		}
		if !fresh.Equal(slabbed) {
			t.Fatal("slab-decoded triplet differs from fresh decode")
		}
		again, err := DecodeTriplet(fresh.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !fresh.Equal(again) {
			t.Fatal("round trip changed the triplet")
		}
	})
}

// FuzzFusedBottomUp is the differential fuzzer for the fused lane kernel:
// an arbitrary (tree, fragmentation, query batch) triple must evaluate to
// exactly the same triplets through the word-parallel kernel (BottomUp) as
// through the scalar per-lane loop (BottomUpPerLane) — same step counts,
// entry-wise equal vectors — and stay logically equivalent to the pointer
// reference (LegacyBottomUp).
func FuzzFusedBottomUp(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(3), uint8(2))
	f.Add(int64(7), uint8(120), uint8(8), uint8(10))
	f.Add(int64(42), uint8(5), uint8(0), uint8(40)) // lanes past one word
	f.Add(int64(-9), uint8(200), uint8(12), uint8(1))

	f.Fuzz(func(t *testing.T, seed int64, nodesRaw, splitRaw, queriesRaw uint8) {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 2 + int(nodesRaw)})
		forest := frag.NewForest(tree)
		if err := forest.SplitRandom(r, 1+int(splitRaw%14)); err != nil {
			t.Skip()
		}
		b := xpath.NewBatchBuilder()
		nq := 1 + int(queriesRaw)%48
		for i := 0; i < nq; i++ {
			b.Add(xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true, MaxDepth: 4, MaxSteps: 6}))
		}
		prog, _ := b.Program()
		if err := prog.Validate(); err != nil {
			t.Fatalf("batch program invalid: %v", err)
		}
		for _, id := range forest.IDs() {
			fr, _ := forest.Fragment(id)
			fused, fusedSteps, err := BottomUp(fr.Root, prog)
			if err != nil {
				t.Fatalf("fragment %d fused: %v", id, err)
			}
			lane, laneSteps, err := BottomUpPerLane(fr.Root, prog)
			if err != nil {
				t.Fatalf("fragment %d per-lane: %v", id, err)
			}
			if fusedSteps != laneSteps {
				t.Fatalf("fragment %d: fused %d steps, per-lane %d", id, fusedSteps, laneSteps)
			}
			if !fused.Equal(lane) {
				t.Fatalf("fragment %d: fused kernel diverges from per-lane evaluator (%d lanes)\n%s",
					id, len(prog.Subs), prog)
			}
			legacy, _, err := LegacyBottomUp(fr.Root, prog)
			if err != nil {
				t.Fatalf("fragment %d legacy: %v", id, err)
			}
			if !equivalentTriplets(r, fused, legacy) {
				t.Fatalf("fragment %d: fused kernel not equivalent to LegacyBottomUp", id)
			}
		}
	})
}

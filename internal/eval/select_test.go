package eval

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixtures"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// pathKey canonicalizes a child-index path for set comparison.
func pathKey(p []int) string { return fmt.Sprint(p) }

// absolutePathOf computes the child-index path of node from the root of
// the whole (unfragmented) tree.
func absolutePathOf(node *xmltree.Node) []int {
	var rev []int
	for n := node; n.Parent != nil; n = n.Parent {
		for i, c := range n.Parent.Children {
			if c == n {
				rev = append(rev, i)
				break
			}
		}
	}
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

func selectOracle(t *testing.T, src string, root *xmltree.Node) map[string]bool {
	t.Helper()
	e, err := xpath.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := xpath.SelectRaw(e, root)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		set[pathKey(absolutePathOf(n))] = true
	}
	return set
}

func TestSelectLocalAgainstOracle(t *testing.T) {
	doc := fixtures.Portfolio()
	queries := []string{
		`//stock`,
		`//stock[code = "GOOG"]`,
		`broker/market`,
		`//market[name = "NASDAQ"]/stock/code`,
		`.`,
		`//name`,
		`broker//code`,
		`//nothing`,
		`*`,
		`/portofolio/broker`,
	}
	for _, src := range queries {
		sp, err := xpath.CompileSelectString(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		got, err := SelectLocal(doc, sp)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		gotSet := make(map[string]bool, len(got))
		for _, p := range got {
			if gotSet[pathKey(p)] {
				t.Errorf("%q: duplicate selection %v", src, p)
			}
			gotSet[pathKey(p)] = true
		}
		want := selectOracle(t, src, doc)
		if len(gotSet) != len(want) {
			t.Errorf("%q: selected %d nodes, want %d", src, len(gotSet), len(want))
			continue
		}
		for k := range want {
			if !gotSet[k] {
				t.Errorf("%q: missing selection %s", src, k)
			}
		}
	}
}

// TestPropSelectLocalMatchesOracle: random path queries over random trees
// select exactly the oracle's node set.
func TestPropSelectLocalMatchesOracle(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 1 + int(sizeRaw%60)})
		var e xpath.Expr
		for {
			e = xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true})
			if _, ok := e.(*xpath.Path); ok {
				break
			}
		}
		sp, err := xpath.CompileSelect(e)
		if err != nil {
			return false
		}
		got, err := SelectLocal(tree, sp)
		if err != nil {
			t.Logf("SelectLocal(%q): %v", e.String(), err)
			return false
		}
		want, err := xpath.SelectRaw(e, tree)
		if err != nil {
			return false
		}
		wantSet := make(map[string]bool, len(want))
		for _, n := range want {
			wantSet[pathKey(absolutePathOf(n))] = true
		}
		if len(got) != len(wantSet) {
			t.Logf("%q: got %d, want %d (seed %d)", e.String(), len(got), len(wantSet), seed)
			return false
		}
		for _, p := range got {
			if !wantSet[pathKey(p)] {
				t.Logf("%q: spurious %v (seed %d)", e.String(), p, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestSelectFragmentForwarding(t *testing.T) {
	// Fragment with a virtual node: live states crossing the boundary
	// must be reported, not silently dropped.
	root := xmltree.NewElement("r", "",
		xmltree.NewElement("a", ""),
		xmltree.NewVirtual(5))
	sp, err := xpath.CompileSelectString(`//a`)
	if err != nil {
		t.Fatal(err)
	}
	vecs := map[xmltree.FragmentID]BoolVecs{
		5: {V: make([]bool, len(sp.Bool.Subs)), DV: make([]bool, len(sp.Bool.Subs))},
	}
	res, err := SelectFragment(root, sp, vecs, StartArrival())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 {
		t.Errorf("selected %d nodes in the local fragment, want 1 (the <a/>)", len(res.Selected))
	}
	fwd, ok := res.Forward[5]
	if !ok || fwd.States == 0 {
		t.Errorf("no states forwarded to the sub-fragment: %+v", res.Forward)
	}
	if fwd.Sticky == 0 {
		t.Error("descendant-or-self state must be sticky across the boundary")
	}
}

func TestSelectFragmentMissingSubVals(t *testing.T) {
	root := xmltree.NewElement("r", "", xmltree.NewVirtual(9))
	sp, err := xpath.CompileSelectString(`//a[b]`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SelectFragment(root, sp, nil, StartArrival()); err == nil {
		t.Error("missing sub-fragment vectors must fail")
	}
}

func TestSolveAll(t *testing.T) {
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	st, err := fixtures.Fig2SourceTree(forest)
	if err != nil {
		t.Fatal(err)
	}
	prog := xpath.MustCompileString(`//stock[code = "YHOO"]`)
	triplets, _, err := EvaluateAll(forest, prog)
	if err != nil {
		t.Fatal(err)
	}
	vecs, _, err := SolveAll(st, triplets, prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 4 {
		t.Fatalf("resolved %d fragments", len(vecs))
	}
	// The root fragment's V[last] is the query answer (true).
	if !vecs[0].V[prog.Root()] {
		t.Error("SolveAll root answer should be true")
	}
	// Missing triplet must fail.
	delete(triplets, 3)
	if _, _, err := SolveAll(st, triplets, prog); err == nil {
		t.Error("SolveAll with a missing triplet must fail")
	}
}

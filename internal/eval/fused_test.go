package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// randBatchProgram compiles 1..qMax random queries into one shared batch
// program, the fused multi-lane shape the kernel exists for.
func randBatchProgram(r *rand.Rand, qMax int) (*xpath.Program, []int32) {
	b := xpath.NewBatchBuilder()
	nq := 1 + r.Intn(qMax)
	for i := 0; i < nq; i++ {
		b.Add(xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true}))
	}
	return b.Program()
}

// TestPropFusedMatchesPerLane: over random fragmented documents and random
// BATCH programs, the fused-kernel BottomUp and the scalar per-lane
// BottomUpPerLane produce identical triplets (exact structural equality —
// the two paths differ only on the constant plane, where every entry is a
// decided boolean) and identical step counts; both agree with
// LegacyBottomUp up to logical equivalence.
func TestPropFusedMatchesPerLane(t *testing.T) {
	f := func(seed int64, sizeRaw, splitRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 2 + int(sizeRaw%80)})
		forest := frag.NewForest(tree)
		if err := forest.SplitRandom(r, 1+int(splitRaw%10)); err != nil {
			return false
		}
		prog, _ := randBatchProgram(r, 6)
		for _, id := range forest.IDs() {
			fr, _ := forest.Fragment(id)
			fused, fusedSteps, err := BottomUp(fr.Root, prog)
			if err != nil {
				t.Logf("BottomUp(F%d): %v", id, err)
				return false
			}
			lane, laneSteps, err := BottomUpPerLane(fr.Root, prog)
			if err != nil {
				t.Logf("BottomUpPerLane(F%d): %v", id, err)
				return false
			}
			if fusedSteps != laneSteps {
				t.Logf("F%d steps: fused=%d per-lane=%d", id, fusedSteps, laneSteps)
				return false
			}
			if !fused.Equal(lane) {
				t.Logf("F%d triplets diverge (seed %d)\nprogram:\n%s", id, seed, prog)
				return false
			}
			legacy, _, err := LegacyBottomUp(fr.Root, prog)
			if err != nil {
				return false
			}
			if !equivalentTriplets(r, fused, legacy) {
				t.Logf("F%d fused vs legacy diverge (seed %d)", id, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestFusedMultiWordBatch drives the multi-word (lanes > 64) kernel path,
// which single queries never reach: 80 distinct subscriptions fused into
// one program, fused vs per-lane vs legacy on every fragment, and the
// solved batch answers must match per-query central evaluation.
func TestFusedMultiWordBatch(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 160, MaxChildren: 5})
	orig := tree.Clone()
	forest := frag.NewForest(tree)
	if err := forest.SplitRandom(r, 8); err != nil {
		t.Fatal(err)
	}
	assign := make(frag.Assignment)
	for _, id := range forest.IDs() {
		assign[id] = frag.SiteID("S0")
	}
	st, err := frag.BuildSourceTree(forest, assign)
	if err != nil {
		t.Fatal(err)
	}

	b := xpath.NewBatchBuilder()
	var exprs []xpath.Expr
	for b.Lanes() <= 130 {
		e := xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true, MaxDepth: 4, MaxSteps: 6})
		exprs = append(exprs, e)
		b.Add(e)
	}
	prog, roots := b.Program()
	if len(prog.Subs) <= 64 {
		t.Fatalf("batch stayed single-word (%d lanes)", len(prog.Subs))
	}

	triplets := make(map[xmltree.FragmentID]Triplet, forest.Count())
	for _, id := range forest.IDs() {
		fr, _ := forest.Fragment(id)
		fused, fusedSteps, err := BottomUp(fr.Root, prog)
		if err != nil {
			t.Fatal(err)
		}
		lane, laneSteps, err := BottomUpPerLane(fr.Root, prog)
		if err != nil {
			t.Fatal(err)
		}
		if fusedSteps != laneSteps || !fused.Equal(lane) {
			t.Fatalf("fragment %d: fused and per-lane diverge on %d lanes", id, len(prog.Subs))
		}
		legacy, _, err := LegacyBottomUp(fr.Root, prog)
		if err != nil {
			t.Fatal(err)
		}
		if !equivalentTriplets(r, fused, legacy) {
			t.Fatalf("fragment %d: fused vs legacy diverge", id)
		}
		triplets[id] = fused
	}

	answers, _, err := SolveMulti(st, triplets, prog, roots)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range exprs {
		single := xpath.Compile(e)
		want, _, err := Evaluate(orig, single)
		if err != nil {
			t.Fatal(err)
		}
		if answers[i] != want {
			t.Errorf("query %d (%q): batch=%v central=%v", i, e.String(), answers[i], want)
		}
	}
}

// TestBottomUpSteadyStateAllocs pins the pooled scratch: after a warm-up
// pass, repeated BottomUpArena over the same fragment runs with zero
// traversal allocations on the constant plane (the arena, scratch vectors
// and frame stack all come from pools).
func TestBottomUpSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pinning is meaningless under the race runtime")
	}
	r := rand.New(rand.NewSource(3))
	tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 300, MaxChildren: 4})
	b := xpath.NewBatchBuilder()
	for i := 0; i < 8; i++ {
		b.Add(xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true}))
	}
	prog, _ := b.Program()
	run := func() {
		a := getArena()
		if _, _, err := BottomUpArena(a, tree, prog); err != nil {
			t.Fatal(err)
		}
		putArena(a)
	}
	run() // warm pools
	if allocs := testing.AllocsPerRun(30, run); allocs > 4 {
		t.Errorf("steady-state constant-plane BottomUp allocates %.0f objects per run, want ~0", allocs)
	}
}

package eval

import (
	"errors"
	"fmt"

	"repro/internal/boolexpr"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// This file preserves the original pointer-formula evaluator verbatim. It
// is NOT on any production path: BottomUp and Solve now run on the
// bitset/arena planes (see bottomup.go, solve.go). The legacy code is kept
// as the reference implementation that the differential property tests
// compare against — two independently written evaluators agreeing on
// random trees, fragmentations and QLists is the correctness argument for
// the optimized core.

// LegacyBottomUp is the original Procedure bottomUp: one pointer Formula
// per node×subquery, with constant folding in the constructors. Semantics
// and step accounting are identical to BottomUp.
func LegacyBottomUp(root *xmltree.Node, prog *xpath.Program) (Triplet, int64, error) {
	if root == nil {
		return Triplet{}, 0, errors.New("eval: nil fragment root")
	}
	if root.Virtual {
		return Triplet{}, 0, errors.New("eval: fragment root is a virtual node")
	}
	n := len(prog.Subs)
	var steps int64

	type frame struct {
		node   *xmltree.Node
		next   int // next child index to process
		cv, dv []*boolexpr.Formula
	}
	// Popped frames' vectors are recycled through a free list: the
	// traversal allocates O(depth) vectors instead of O(|F_j|).
	var pool [][]*boolexpr.Formula
	newVec := func() []*boolexpr.Formula {
		if len(pool) > 0 {
			v := pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			for i := range v {
				v[i] = boolexpr.False()
			}
			return v
		}
		v := make([]*boolexpr.Formula, n)
		for i := range v {
			v[i] = boolexpr.False()
		}
		return v
	}
	stack := []*frame{{node: root, cv: newVec(), dv: newVec()}}
	var result Triplet

	for len(stack) > 0 {
		f := stack[len(stack)-1]
		// Fold in virtual children directly; descend into real ones.
		descended := false
		for f.next < len(f.node.Children) {
			c := f.node.Children[f.next]
			f.next++
			if c.Virtual {
				steps += int64(n)
				for i := 0; i < n; i++ {
					vVar := boolexpr.NewVar(boolexpr.Var{Frag: int32(c.Frag), Vec: boolexpr.VecV, Q: int32(i)})
					dVar := boolexpr.NewVar(boolexpr.Var{Frag: int32(c.Frag), Vec: boolexpr.VecDV, Q: int32(i)})
					f.cv[i] = boolexpr.Or(f.cv[i], vVar)
					f.dv[i] = boolexpr.Or(f.dv[i], dVar)
				}
				continue
			}
			stack = append(stack, &frame{node: c, cv: newVec(), dv: newVec()})
			descended = true
			break
		}
		if descended {
			continue
		}
		// All children folded: evaluate the nine cases at this node.
		steps += int64(n)
		v := newVec()
		legacyEvalCasesInto(v, f.node, prog, f.cv, f.dv)
		stack = stack[:len(stack)-1]
		if len(stack) == 0 {
			result = Triplet{V: v, CV: f.cv, DV: f.dv}
			break
		}
		p := stack[len(stack)-1]
		for i := 0; i < n; i++ {
			p.cv[i] = boolexpr.Or(p.cv[i], v[i])    // line 4 of bottomUp
			p.dv[i] = boolexpr.Or(p.dv[i], f.dv[i]) // line 5 of bottomUp
		}
		// The child's vectors only carried formula POINTERS upward; the
		// slices themselves are free for reuse.
		pool = append(pool, v, f.cv, f.dv)
	}
	return result, steps, nil
}

// legacyEvalCasesInto computes the value vector V_v at node v (lines 6-17
// of Procedure bottomUp), updating dv to descendant-or-self as it goes
// (line 17). The write to dv[i] must happen inside the loop: a later
// subquery //q_i reads dv[i] and expects it to include V_v (the paper's
// left-to-right processing order).
func legacyEvalCasesInto(v []*boolexpr.Formula, node *xmltree.Node, prog *xpath.Program, cv, dv []*boolexpr.Formula) {
	for i, sq := range prog.Subs {
		var f *boolexpr.Formula
		switch sq.Kind {
		case xpath.KTrue: // (c0) ε
			f = boolexpr.True()
		case xpath.KLabel: // (c1) label() = l
			f = boolexpr.Const(node.Label == sq.Str)
		case xpath.KText: // (c2) text() = str
			f = boolexpr.Const(node.Text == sq.Str)
		case xpath.KChild: // (c3) */q
			f = cv[sq.A]
		case xpath.KFilter: // (c4) ε[q]/q'
			f = v[sq.A]
			if sq.B >= 0 {
				f = boolexpr.CompFm(f, v[sq.B], boolexpr.AND)
			}
		case xpath.KDesc: // (c5) //q
			f = dv[sq.A]
		case xpath.KOr: // (c6)
			f = boolexpr.CompFm(v[sq.A], v[sq.B], boolexpr.OR)
		case xpath.KAnd: // (c7)
			f = boolexpr.CompFm(v[sq.A], v[sq.B], boolexpr.AND)
		case xpath.KNot: // (c8)
			f = boolexpr.CompFm(v[sq.A], nil, boolexpr.NEG)
		default:
			panic(fmt.Sprintf("eval: unknown subquery kind %v", sq.Kind))
		}
		v[i] = f
		dv[i] = boolexpr.Or(f, dv[i]) // line 17
	}
}

// LegacySolve is the original Procedure evalST over pointer formulas:
// per-entry Formula.Subst re-walks with no memoization. Reference
// implementation for the differential tests.
func LegacySolve(st *frag.SourceTree, triplets map[xmltree.FragmentID]Triplet, prog *xpath.Program) (bool, int64, error) {
	n := len(prog.Subs)
	root := st.Root()
	env := make(map[boolexpr.Var]*boolexpr.Formula, 2*n*len(triplets))
	lookup := func(v boolexpr.Var) (*boolexpr.Formula, bool) {
		f, ok := env[v]
		return f, ok
	}
	var work int64
	var rootV []*boolexpr.Formula

	topo := st.TopoOrder()
	for i := len(topo) - 1; i >= 0; i-- { // children before parents
		id := topo[i]
		t, ok := triplets[id]
		if !ok {
			return false, work, fmt.Errorf("eval: missing triplet for fragment %d", id)
		}
		if len(t.V) != n || len(t.DV) != n {
			return false, work, fmt.Errorf("eval: fragment %d triplet has wrong arity", id)
		}
		var resolvedV []*boolexpr.Formula
		for _, vec := range []struct {
			kind boolexpr.VecKind
			fs   []*boolexpr.Formula
		}{
			{boolexpr.VecV, t.V},
			{boolexpr.VecDV, t.DV},
		} {
			for q, f := range vec.fs {
				work += int64(f.Size())
				g := f.Subst(lookup)
				env[boolexpr.Var{Frag: int32(id), Vec: vec.kind, Q: int32(q)}] = g
				if vec.kind == boolexpr.VecV {
					if resolvedV == nil {
						resolvedV = make([]*boolexpr.Formula, n)
					}
					resolvedV[q] = g
				}
			}
		}
		if id == root {
			rootV = resolvedV
		}
	}
	if rootV == nil {
		return false, work, fmt.Errorf("eval: missing triplet for root fragment %d", root)
	}
	ansF := rootV[prog.Root()]
	if v, ok := ansF.ConstValue(); ok {
		return v, work, nil
	}
	return false, work, ErrUnresolved
}

package eval

import (
	"errors"
	"fmt"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Selection evaluation (the Section 8 extension). Per fragment, the second
// pass of SelectParBoX runs in two phases:
//
//  1. a bottom-up sweep evaluating every guard subquery at every node —
//     virtual nodes contribute the (now known, constant) V/DV values of
//     their sub-fragments, so guards are plain booleans;
//  2. a top-down sweep propagating the chain's NFA states: a node reached
//     in the final state is selected, and states arriving at a virtual
//     node are recorded for forwarding to the sub-fragment's site.

// BoolVecs carries the resolved (constant) V and DV vectors of a
// sub-fragment, produced by solving the pass-1 equation system.
type BoolVecs struct {
	V, DV []bool
}

// BoolVecsOf extracts constant vectors from a resolved triplet.
func BoolVecsOf(t Triplet) (BoolVecs, error) {
	out := BoolVecs{V: make([]bool, len(t.V)), DV: make([]bool, len(t.DV))}
	for i, f := range t.V {
		v, ok := f.ConstValue()
		if !ok {
			return BoolVecs{}, fmt.Errorf("eval: V[%d] not constant: %v", i, f)
		}
		out.V[i] = v
	}
	for i, f := range t.DV {
		v, ok := f.ConstValue()
		if !ok {
			return BoolVecs{}, fmt.Errorf("eval: DV[%d] not constant: %v", i, f)
		}
		out.DV[i] = v
	}
	return out, nil
}

// Arrival is the NFA state set crossing a fragment boundary.
type Arrival struct {
	// States has bit i set when chain step i is a candidate to match at
	// the fragment root.
	States uint64
	// Sticky marks descendant-or-self states, which keep propagating to
	// every node below.
	Sticky uint64
}

// StartArrival is the machine's start at the document root.
func StartArrival() Arrival { return Arrival{States: 1} }

// SelectResult is one fragment's pass-2 outcome.
type SelectResult struct {
	// Selected are the selected nodes, as child-index paths from the
	// fragment root (in document order, duplicates removed).
	Selected [][]int
	// Forward holds the arrivals for each sub-fragment whose virtual node
	// was reached by live states.
	Forward map[xmltree.FragmentID]Arrival
	// Steps is the computation performed (node×subquery units plus one
	// unit per node for the top-down sweep).
	Steps int64
}

// SelectFragment runs both pass-2 phases over one fragment. subVals must
// contain the resolved vectors for every sub-fragment referenced by the
// fragment's virtual nodes.
func SelectFragment(root *xmltree.Node, sp *xpath.SelectProgram,
	subVals map[xmltree.FragmentID]BoolVecs, in Arrival) (SelectResult, error) {
	if root == nil || root.Virtual {
		return SelectResult{}, errors.New("eval: bad fragment root")
	}
	masks, steps, err := guardMasks(root, sp, subVals)
	if err != nil {
		return SelectResult{}, err
	}
	res := SelectResult{Forward: make(map[xmltree.FragmentID]Arrival)}
	res.Steps = steps

	type frame struct {
		node *xmltree.Node
		in   Arrival
	}
	stack := []frame{{node: root, in: in}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Steps++
		arr, sticky := f.in.States, f.in.Sticky
		var childStates uint64
		mask := masks[f.node]
		last := len(sp.Chain) - 1
		for i := 0; i <= last; i++ {
			bit := uint64(1) << i
			if arr&bit == 0 {
				continue
			}
			if mask&bit == 0 {
				continue // guard failed: the state dies here
			}
			if i == last {
				// Selected: materialize the path only now, by climbing to
				// the fragment root — selections are typically sparse, and
				// carrying paths through the traversal would cost
				// O(depth²) on pathological chains.
				res.Selected = append(res.Selected, fragmentPath(root, f.node))
				continue
			}
			next := uint64(1) << (i + 1)
			switch sp.Chain[i+1].Kind {
			case xpath.SSelf:
				arr |= next
			case xpath.SDescOrSelf:
				arr |= next
				sticky |= next
			case xpath.SChild:
				childStates |= next
			}
		}
		childArr := Arrival{States: childStates | sticky, Sticky: sticky}
		if childArr.States == 0 {
			continue
		}
		// Children in reverse so selection order stays document order.
		for ci := len(f.node.Children) - 1; ci >= 0; ci-- {
			c := f.node.Children[ci]
			if c.Virtual {
				prev := res.Forward[c.Frag]
				prev.States |= childArr.States
				prev.Sticky |= childArr.Sticky
				res.Forward[c.Frag] = prev
				continue
			}
			stack = append(stack, frame{node: c, in: childArr})
		}
	}
	return res, nil
}

// fragmentPath climbs parent pointers up to the fragment root, producing
// the node's child-index path.
func fragmentPath(root, node *xmltree.Node) []int {
	var rev []int
	for n := node; n != root && n.Parent != nil; n = n.Parent {
		idx := -1
		for i, c := range n.Parent.Children {
			if c == n {
				idx = i
				break
			}
		}
		rev = append(rev, idx)
	}
	path := make([]int, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path
}

// guardMasks evaluates the Bool program bottom-up at every node, returning
// per node a bitmask over chain positions: bit i set iff chain step i's
// guard holds at the node (untested steps are always set).
func guardMasks(root *xmltree.Node, sp *xpath.SelectProgram,
	subVals map[xmltree.FragmentID]BoolVecs) (map[*xmltree.Node]uint64, int64, error) {
	n := len(sp.Bool.Subs)
	masks := make(map[*xmltree.Node]uint64)
	var steps int64

	type frame struct {
		node   *xmltree.Node
		next   int
		cv, dv []bool
	}
	stack := []*frame{{node: root, cv: make([]bool, n), dv: make([]bool, n)}}
	var badFrag xmltree.FragmentID = -1
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		descended := false
		for f.next < len(f.node.Children) {
			c := f.node.Children[f.next]
			f.next++
			if c.Virtual {
				steps += int64(n)
				sv, ok := subVals[c.Frag]
				if !ok || len(sv.V) != n || len(sv.DV) != n {
					badFrag = c.Frag
					break
				}
				for i := 0; i < n; i++ {
					f.cv[i] = f.cv[i] || sv.V[i]
					f.dv[i] = f.dv[i] || sv.DV[i]
				}
				continue
			}
			stack = append(stack, &frame{node: c, cv: make([]bool, n), dv: make([]bool, n)})
			descended = true
			break
		}
		if badFrag >= 0 {
			return nil, steps, fmt.Errorf("eval: missing resolved vectors for sub-fragment %d", badFrag)
		}
		if descended {
			continue
		}
		steps += int64(n)
		v := evalCasesBool(f.node, sp.Bool, f.cv, f.dv)
		var mask uint64
		for i, step := range sp.Chain {
			if step.Test < 0 || v[step.Test] {
				mask |= uint64(1) << i
			}
		}
		masks[f.node] = mask
		stack = stack[:len(stack)-1]
		if len(stack) == 0 {
			break
		}
		p := stack[len(stack)-1]
		for i := 0; i < n; i++ {
			p.cv[i] = p.cv[i] || v[i]
			p.dv[i] = p.dv[i] || f.dv[i]
		}
	}
	return masks, steps, nil
}

// evalCasesBool is evalCases over plain booleans (all inputs constant).
func evalCasesBool(node *xmltree.Node, prog *xpath.Program, cv, dv []bool) []bool {
	v := make([]bool, len(prog.Subs))
	for i, sq := range prog.Subs {
		var b bool
		switch sq.Kind {
		case xpath.KTrue:
			b = true
		case xpath.KLabel:
			b = node.Label == sq.Str
		case xpath.KText:
			b = node.Text == sq.Str
		case xpath.KChild:
			b = cv[sq.A]
		case xpath.KFilter:
			b = v[sq.A]
			if sq.B >= 0 {
				b = b && v[sq.B]
			}
		case xpath.KDesc:
			b = dv[sq.A]
		case xpath.KOr:
			b = v[sq.A] || v[sq.B]
		case xpath.KAnd:
			b = v[sq.A] && v[sq.B]
		case xpath.KNot:
			b = !v[sq.A]
		default:
			panic(fmt.Sprintf("eval: unknown subquery kind %v", sq.Kind))
		}
		v[i] = b
		dv[i] = b || dv[i]
	}
	return v
}

// SelectLocal evaluates a selection query over a complete tree (no virtual
// nodes), returning selected nodes as paths — the centralized baseline and
// test oracle adapter.
func SelectLocal(root *xmltree.Node, sp *xpath.SelectProgram) ([][]int, error) {
	res, err := SelectFragment(root, sp, nil, StartArrival())
	if err != nil {
		return nil, err
	}
	if len(res.Forward) != 0 {
		return nil, errors.New("eval: SelectLocal over a fragmented tree")
	}
	return res.Selected, nil
}
